GO ?= go

.PHONY: build test race vet fuzz-smoke verify bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz pass over every Fuzz* target (FUZZTIME=5s by default).
fuzz-smoke:
	FUZZTIME=$(or $(FUZZTIME),5s) ./scripts/verify.sh

# The full gate: vet + build + race tests + fuzz smoke.
verify:
	./scripts/verify.sh

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable bench trajectory: BENCH_<date>.json with ns/op,
# MB/s, and bits/cycle for the width × telemetry system matrix.
bench-json:
	./scripts/bench.sh
