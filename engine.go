package gigapos

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"repro/internal/prof"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// This file implements the sharded line-card engine: N independent PPP
// links partitioned across worker goroutines, each worker stepping its
// links in lockstep — advance the virtual clock, queue a batch of
// datagrams, move the wire bytes, drain the receive queues. The paper's
// P5 reaches 2.488 Gb/s on one 32-bit datapath; a line card multiplies
// that by packing many channels side by side, and this engine is that
// scale-out axis in software. Every per-frame path underneath it
// (AppendFrame, the tokenizer arena, the double-buffered queues) is
// allocation-free in the steady state, so aggregate throughput scales
// with cores instead of with the garbage collector.

// EngineConfig sizes a line-card engine.
type EngineConfig struct {
	// Links is the number of bidirectional link pairs (default 1). Each
	// pair is two Links wired back to back in loopback.
	Links int
	// Shards is the number of worker goroutines the links are
	// partitioned across (default GOMAXPROCS, capped at Links). A link
	// pair is owned by exactly one shard; Links are not concurrency-safe
	// and the engine never shares one across workers.
	Shards int
	// Link is the per-endpoint configuration template. Magic numbers
	// are derived per endpoint so loopback negotiation never collides.
	Link LinkConfig
	// PayloadSize is the IPv4 datagram size generated per step
	// (default 512 octets).
	PayloadSize int
	// Batch is how many datagrams each endpoint queues per step
	// (default 8).
	Batch int
	// Transport, when non-nil, supplies the line transports carrying
	// port i's wire octets instead of the direct in-process loopback:
	// return both endpoints of a pair (transport.NewPipePair, or two
	// sockets meeting on loopback), or — with Role RoleA or RoleZ —
	// just the local side, nil for the other. The engine owns the
	// returned transports and closes them with Close.
	Transport func(port int) (a, z transport.LineTransport)
	// Role selects which side of each port this engine instantiates.
	// RoleLoopback (the default) builds both; RoleA and RoleZ build a
	// single-ended engine whose peer runs in another process, reached
	// through the Transport hook (required for those roles).
	Role EngineRole
}

// EngineRole selects the engine's side of each port.
type EngineRole int

// The engine roles.
const (
	// RoleLoopback instantiates both endpoints of every port.
	RoleLoopback EngineRole = iota
	// RoleA instantiates only the a-side endpoints (magic 0xA0000001+2i,
	// address 10.x.y.1) — the listener half of a two-process pair.
	RoleA
	// RoleZ instantiates only the z-side endpoints (magic 0xA0000002+2i,
	// address 10.x.y.2) — the dialer half.
	RoleZ
)

func (c EngineConfig) links() int {
	if c.Links <= 0 {
		return 1
	}
	return c.Links
}

func (c EngineConfig) shards() int {
	s := c.Shards
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if n := c.links(); s > n {
		s = n
	}
	return s
}

func (c EngineConfig) payloadSize() int {
	if c.PayloadSize <= 0 {
		return 512
	}
	return c.PayloadSize
}

func (c EngineConfig) batch() int {
	if c.Batch <= 0 {
		return 8
	}
	return c.Batch
}

// EngineStats is an aggregate snapshot across every shard.
type EngineStats struct {
	// Links and Shards echo the resolved topology.
	Links, Shards int
	// Steps is the number of engine steps run.
	Steps uint64
	// Datagrams is the number of network-layer datagrams delivered
	// end to end (both directions of every pair).
	Datagrams uint64
	// PayloadBytes is the delivered network-layer octet count.
	PayloadBytes uint64
	// LineBytes is the wire octet count moved between endpoints —
	// flags, stuffing and FCS included. This is the SONET payload rate:
	// divide by wall time for the engine's aggregate line rate.
	LineBytes uint64
	// RxErrors sums damaged-frame counts across every endpoint.
	RxErrors uint64
}

// enginePort is one port's endpoints plus its traffic state: both
// links of a loopback pair, or a single link in a remote-role engine
// (z nil). When transports carry the wire (tpa/tpz non-nil) the direct
// Output→Input move is replaced with Flush/Poll through them. A port
// is owned exclusively by one shard worker.
type enginePort struct {
	a, z     *Link          // z is nil in a remote-role engine
	tpa, tpz *TransportPort // nil for the direct loopback wire

	txBatch [][]byte   // batch of generated datagrams (shared template)
	rxTmp   []Datagram // reusable drain scratch
}

func (p *enginePort) step(now int64, s *engineShard) {
	// sp is nil until ArmProfile; every stamp is then a single
	// predictable branch. On a sampled step each stamp charges the time
	// since the previous one to its stage — the taxonomy in
	// prof.Stage's doc comment maps one-to-one onto the calls here.
	sp := s.prof
	p.a.Advance(now)
	if p.z != nil {
		p.z.Advance(now)
	}
	sp.Stamp(prof.StageControl)
	if p.ready() {
		p.a.SendIPv4Batch(p.txBatch)
		if p.z != nil {
			p.z.SendIPv4Batch(p.txBatch)
		}
	}
	sp.Stamp(prof.StageEncode)
	if p.tpa != nil {
		n := p.tpa.Flush()
		if p.tpz != nil {
			n += p.tpz.Flush()
		}
		s.lineBytes += uint64(n)
		sp.Stamp(prof.StageLine)
		p.tpa.Poll(now)
		if p.tpz != nil {
			p.tpz.Poll(now)
		}
		sp.Stamp(prof.StageTokenize)
	} else {
		if out := p.a.Output(); len(out) > 0 {
			s.lineBytes += uint64(len(out))
			sp.Stamp(prof.StageLine)
			p.z.Input(out)
			sp.Stamp(prof.StageTokenize)
		}
		if out := p.z.Output(); len(out) > 0 {
			s.lineBytes += uint64(len(out))
			sp.Stamp(prof.StageLine)
			p.a.Input(out)
			sp.Stamp(prof.StageTokenize)
		}
	}
	p.rxTmp = p.a.ReceivedInto(p.rxTmp[:0])
	if p.z != nil {
		p.rxTmp = p.z.ReceivedInto(p.rxTmp)
	}
	sp.Stamp(prof.StageDrain)
	for i := range p.rxTmp {
		s.payloadBytes += uint64(len(p.rxTmp[i].Payload))
	}
	s.datagrams += uint64(len(p.rxTmp))
	sp.Stamp(prof.StageDeliver)
}

func (p *enginePort) ready() bool {
	return p.a.IPReady() && (p.z == nil || p.z.IPReady())
}

// engineShard is one worker: a private set of ports, a private clock,
// and plain counters nobody else touches while the worker runs. The
// Run barrier (channel send, WaitGroup wait) publishes them.
type engineShard struct {
	id    int
	ports []*enginePort
	now   int64

	datagrams    uint64
	payloadBytes uint64
	lineBytes    uint64

	// prof is nil until Engine.ArmProfile; the driver sets it between
	// Runs, and the next steps-channel send publishes it to the worker.
	prof *prof.ShardProfile

	steps chan int
}

func (s *engineShard) run(wg *sync.WaitGroup) {
	// The pprof label makes CPU/goroutine samples attributable per
	// shard (p5_shard=N) whenever a profile is captured; with no
	// profile active it costs nothing per step.
	pprof.Do(context.Background(), pprof.Labels("p5_shard", strconv.Itoa(s.id)),
		func(context.Context) {
			for n := range s.steps {
				sp := s.prof
				sp.BatchStart()
				for i := 0; i < n; i++ {
					s.now++
					sp.StepStart()
					for _, p := range s.ports {
						p.step(s.now, s)
					}
					sp.StepEnd()
				}
				sp.BatchEnd()
				wg.Done()
			}
		})
}

// Engine is a sharded line card: EngineConfig.Links loopback PPP pairs
// partitioned across EngineConfig.Shards persistent workers. Drive it
// from one goroutine: Run blocks until every shard finishes its steps,
// and between Runs the engine (and its Links) may be inspected freely.
type Engine struct {
	cfg    EngineConfig
	shards []*engineShard
	wg     sync.WaitGroup
	closed bool

	steps uint64

	// prof is the stage-cost collector (nil until ArmProfile).
	prof *prof.Collector

	// Telemetry mirrors (nil until Instrument).
	telDatagrams *telemetry.Counter
	telPayload   *telemetry.Counter
	telLine      *telemetry.Counter
	telSteps     *telemetry.Counter
}

// NewEngine builds the engine and starts its shard workers (idle until
// Run). Links start administratively open with the physical layer up;
// call BringUp to complete negotiation before measuring.
func NewEngine(cfg EngineConfig) *Engine {
	e := &Engine{cfg: cfg}
	nLinks, nShards := cfg.links(), cfg.shards()
	payload := make([]byte, cfg.payloadSize())
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	e.shards = make([]*engineShard, nShards)
	for i := range e.shards {
		e.shards[i] = &engineShard{id: i, steps: make(chan int)}
	}
	if cfg.Role != RoleLoopback && cfg.Transport == nil {
		panic("gigapos: EngineConfig.Role RoleA/RoleZ requires a Transport hook")
	}
	for i := 0; i < nLinks; i++ {
		acfg, zcfg := cfg.Link, cfg.Link
		// Distinct, nonzero magic numbers per endpoint: loopback
		// negotiation must never look like a looped-back line. The
		// derivation is shared by both remote roles, so two single-ended
		// engines meeting over sockets agree on who is who.
		acfg.Magic = uint32(0xA0000001 + i*2)
		zcfg.Magic = uint32(0xA0000002 + i*2)
		if acfg.IPAddr == ([4]byte{}) {
			acfg.IPAddr = [4]byte{10, byte(i >> 8), byte(i), 1}
			zcfg.IPAddr = [4]byte{10, byte(i >> 8), byte(i), 2}
		}
		if cfg.Role == RoleZ {
			acfg = zcfg // a single-ended engine's local link sits in slot a
		}
		p := &enginePort{a: NewLink(acfg)}
		if cfg.Role == RoleLoopback {
			p.z = NewLink(zcfg)
		}
		if cfg.Transport != nil {
			ta, tz := cfg.Transport(i)
			if cfg.Role == RoleZ && tz != nil {
				ta = tz // the z-side hook result backs the local (slot a) link
			}
			if ta == nil {
				panic(fmt.Sprintf("gigapos: Transport(%d) returned no local endpoint", i))
			}
			p.tpa = NewTransportPort(p.a, ta)
			if p.z != nil {
				if tz == nil {
					panic(fmt.Sprintf("gigapos: Transport(%d) returned no z endpoint for a loopback engine", i))
				}
				p.tpz = NewTransportPort(p.z, tz)
			}
		}
		p.txBatch = make([][]byte, cfg.batch())
		for j := range p.txBatch {
			p.txBatch[j] = payload
		}
		p.a.Open()
		p.a.Up()
		if p.z != nil {
			p.z.Open()
			p.z.Up()
		}
		sh := e.shards[i%nShards]
		sh.ports = append(sh.ports, p)
	}
	for _, s := range e.shards {
		go s.run(&e.wg)
	}
	return e
}

// Run advances every shard n steps in parallel and blocks until all
// finish. One step is one virtual clock tick on every link: control
// timers, one transmit batch per direction (once negotiated), a full
// wire exchange, and a receive drain.
func (e *Engine) Run(n int) {
	if e.closed || n <= 0 {
		return
	}
	e.wg.Add(len(e.shards))
	for _, s := range e.shards {
		s.steps <- n
	}
	e.wg.Wait()
	e.steps += uint64(n)
	if e.prof != nil {
		e.prof.Join()
	}
	e.syncTelemetry()
}

// ArmProfile arms per-shard stage cost accounting: sampled monotonic
// stamps around every worker-loop stage, barrier-wait and imbalance
// accounting at each Run join, and (when reg is non-nil) the
// prof_stage_ns / prof_barrier_wait_ns / prof_shard_imbalance
// telemetry series labelled engine=name, shard=N. Call between Runs;
// the next Run's channel send publishes the profiles to the workers.
// The steady state stays allocation-free; the verify gate holds the
// armed engine bench within 2% of the disarmed one.
func (e *Engine) ArmProfile(reg *telemetry.Registry, name string, cfg prof.Config) *prof.Collector {
	e.prof = prof.New(reg, name, len(e.shards), cfg)
	for i, s := range e.shards {
		s.prof = e.prof.Shard(i)
	}
	return e.prof
}

// Profile returns the collector armed by ArmProfile (nil before).
func (e *Engine) Profile() *prof.Collector { return e.prof }

// PortBringUp identifies one port that missed the bring-up deadline,
// with each side's IP readiness (ZReady is true for a single-ended
// port — the peer's state is not observable from here).
type PortBringUp struct {
	Port           int
	AReady, ZReady bool
}

// BringUpResult reports a bring-up attempt: whether every port
// converged, how many steps were spent, and which ports (if any)
// failed to negotiate within the deadline.
type BringUpResult struct {
	Ready  bool
	Steps  int
	Failed []PortBringUp
}

// String renders the result for logs: "ready in N steps" or the
// failed-port list.
func (r BringUpResult) String() string {
	if r.Ready {
		return fmt.Sprintf("ready in %d steps", r.Steps)
	}
	s := fmt.Sprintf("%d port(s) not converged after %d steps:", len(r.Failed), r.Steps)
	for _, f := range r.Failed {
		s += fmt.Sprintf(" port %d (a=%v z=%v)", f.Port, f.AReady, f.ZReady)
	}
	return s
}

// BringUp runs the engine until every port has negotiated LCP and IPCP
// or the deadline of maxSteps ticks expires, and reports which ports
// failed to converge.
func (e *Engine) BringUp(maxSteps int) BringUpResult {
	steps := 0
	for steps < maxSteps {
		e.Run(8)
		steps += 8
		if e.Ready() {
			return BringUpResult{Ready: true, Steps: steps}
		}
	}
	res := BringUpResult{Ready: e.Ready(), Steps: steps}
	if res.Ready {
		return res
	}
	for i := 0; i < e.cfg.links(); i++ {
		a, z := e.Port(i)
		pb := PortBringUp{Port: i, AReady: a.IPReady(), ZReady: z == nil || z.IPReady()}
		if !pb.AReady || !pb.ZReady {
			res.Failed = append(res.Failed, pb)
		}
	}
	return res
}

// Ready reports whether every pair has both directions IP-ready. Call
// only between Runs.
func (e *Engine) Ready() bool {
	for _, s := range e.shards {
		for _, p := range s.ports {
			if !p.ready() {
				return false
			}
		}
	}
	return true
}

// Stats aggregates counters across every shard. Call only between Runs.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Links:  e.cfg.links(),
		Shards: len(e.shards),
		Steps:  e.steps,
	}
	for _, s := range e.shards {
		st.Datagrams += s.datagrams
		st.PayloadBytes += s.payloadBytes
		st.LineBytes += s.lineBytes
		for _, p := range s.ports {
			st.RxErrors += p.a.RxErrors
			if p.z != nil {
				st.RxErrors += p.z.RxErrors
			}
		}
	}
	return st
}

// Port returns the i'th link pair for inspection (a, z; z is nil in a
// remote-role engine). Call only between Runs; the port's shard owns
// the links while Run executes.
func (e *Engine) Port(i int) (a, z *Link) {
	s := e.shards[i%len(e.shards)]
	p := s.ports[i/len(e.shards)]
	return p.a, p.z
}

// EachTransport visits every line transport the engine owns, named
// port<i>_a / port<i>_z — the hook status boards and instrumentation
// build on. Call only between Runs.
func (e *Engine) EachTransport(fn func(name string, t transport.LineTransport)) {
	for i := 0; i < e.cfg.links(); i++ {
		s := e.shards[i%len(e.shards)]
		p := s.ports[i/len(e.shards)]
		if p.tpa != nil {
			fn(fmt.Sprintf("port%d_a", i), p.tpa.T)
		}
		if p.tpz != nil {
			fn(fmt.Sprintf("port%d_z", i), p.tpz.T)
		}
	}
}

// InstrumentTransports exports the transport_* series for every line
// transport the engine owns (no-op on a direct-loopback engine).
func (e *Engine) InstrumentTransports(reg *telemetry.Registry) {
	e.EachTransport(func(name string, t transport.LineTransport) {
		transport.Instrument(reg, name, t)
	})
}

// TransportStats sums the counters of every line transport the engine
// owns. Call only between Runs.
func (e *Engine) TransportStats() transport.Stats {
	var sum transport.Stats
	e.EachTransport(func(_ string, t transport.LineTransport) {
		st := t.Stats()
		sum.TxChunks += st.TxChunks
		sum.TxBytes += st.TxBytes
		sum.RxChunks += st.RxChunks
		sum.RxBytes += st.RxBytes
		sum.TxDropped += st.TxDropped
		sum.RxDropped += st.RxDropped
		sum.RxBadVersion += st.RxBadVersion
		sum.Reconnects += st.Reconnects
		sum.Resets += st.Resets
		sum.KeepaliveProbes += st.KeepaliveProbes
		sum.KeepaliveMisses += st.KeepaliveMisses
		sum.QueueDepth += st.QueueDepth
		if st.QueueHighWater > sum.QueueHighWater {
			sum.QueueHighWater = st.QueueHighWater
		}
	})
	return sum
}

// Close stops the shard workers and closes any line transports the
// engine owns. The engine must not be Run again.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.steps)
	}
	for _, s := range e.shards {
		for _, p := range s.ports {
			if p.tpa != nil {
				p.tpa.T.Close()
			}
			if p.tpz != nil {
				p.tpz.T.Close()
			}
		}
	}
}

// Instrument exports the engine's aggregate counters to reg, refreshed
// at the end of every Run — the same sync-mirror pattern the Link
// probes use, so a live scrape never races a shard worker.
func (e *Engine) Instrument(reg *telemetry.Registry, name string) {
	lbl := telemetry.L("engine", name)
	e.telDatagrams = reg.Counter("engine_datagrams_total",
		"Network-layer datagrams delivered end to end, both directions.", lbl)
	e.telPayload = reg.Counter("engine_payload_bytes_total",
		"Delivered network-layer octets.", lbl)
	e.telLine = reg.Counter("engine_line_bytes_total",
		"Wire octets moved between endpoints (flags, stuffing, FCS).", lbl)
	e.telSteps = reg.Counter("engine_steps_total",
		"Engine steps (virtual clock ticks) run.", lbl)
	reg.Gauge("engine_links", "Configured link pairs.", lbl).Set(int64(e.cfg.links()))
	reg.Gauge("engine_shards", "Worker goroutines.", lbl).Set(int64(len(e.shards)))
	e.syncTelemetry()
}

func (e *Engine) syncTelemetry() {
	if e.telSteps == nil {
		return
	}
	st := e.Stats()
	e.telDatagrams.Set(st.Datagrams)
	e.telPayload.Set(st.PayloadBytes)
	e.telLine.Set(st.LineBytes)
	e.telSteps.Set(st.Steps)
}

// String summarises the engine topology.
func (e *Engine) String() string {
	return fmt.Sprintf("Engine{links=%d shards=%d batch=%d payload=%dB}",
		e.cfg.links(), len(e.shards), e.cfg.batch(), e.cfg.payloadSize())
}
