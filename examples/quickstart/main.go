// Quickstart: transmit IP datagrams through the cycle-accurate 32-bit
// P5 loopback system and read the results back through the Protocol OAM
// register map — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"

	gigapos "repro"
)

func main() {
	// A 32-bit P5: transmitter → line → receiver, one 4-octet word per
	// clock, exactly the paper's architecture.
	sys := gigapos.NewSystem(gigapos.Width32)

	// Program the OAM like a host CPU would: MAPOS-style address 0x05,
	// shared flags between back-to-back frames.
	sys.OAM.Write(gigapos.RegAddress, 0x05)
	sys.OAM.Write(gigapos.RegCtrl, sys.OAM.Read(gigapos.RegCtrl)|0x08 /* shared flags */)

	// Queue three datagrams; the payloads deliberately contain flag and
	// escape characters to exercise the byte sorter.
	payloads := [][]byte{
		[]byte("hello gigabit PPP"),
		{0x7E, 0x7D, 0x7E, 0x7D, 0x01, 0x02},
		[]byte{0x31, 0x33, 0x7E, 0x96}, // the paper's stuffing example
	}
	for _, p := range payloads {
		sys.Send(gigapos.TxJob{Protocol: gigapos.ProtoIPv4, Payload: p})
	}

	// Clock the system until every octet has drained.
	if !sys.RunUntilIdle(100000) {
		panic("system did not drain")
	}

	for i, f := range sys.Received() {
		if f.Err != nil {
			fmt.Printf("frame %d: REJECTED: %v\n", i, f.Err)
			continue
		}
		fmt.Printf("frame %d: %v payload=%q\n", i, f.Frame, f.Frame.Payload)
	}

	fmt.Printf("\nOAM status registers:\n")
	fmt.Printf("  tx frames : %d\n", sys.OAM.Read(0x40))
	fmt.Printf("  escaped   : %d octets\n", sys.OAM.Read(0x44))
	fmt.Printf("  rx good   : %d\n", sys.OAM.Read(0x4C))
	fmt.Printf("  cycles    : %d (%.1f ns at 78.125 MHz)\n",
		sys.Sim.Now(), float64(sys.Sim.Now())*12.8)
}
