// MAPOS LAN: the reason the P5's address field is programmable. Three
// nodes hang off a MAPOS switch (RFC 2171); each node's framer is a
// cycle-accurate P5 whose HDLC address register is programmed through
// the OAM with the address the switch assigns via NSP. Unicast frames
// are switched by address; broadcast floods.
package main

import (
	"fmt"

	gigapos "repro"
	"repro/internal/mapos"
)

// node couples a MAPOS endpoint with a P5 hardware framer: outbound
// frames go datagram → P5 transmitter → line bytes → (decoded) → switch.
type node struct {
	id  int
	sys *gigapos.System
	nd  *mapos.Node
	got []string
}

func main() {
	const n = 3
	sw := mapos.NewSwitch(n)
	nodes := make([]*node, n)

	for i := 0; i < n; i++ {
		i := i
		nd := &node{id: i, sys: gigapos.NewSystem(gigapos.Width32)}
		nodes[i] = nd
		nd.nd = mapos.NewNode(
			// Transmit path: push the frame through the node's P5
			// datapath (loopback wiring doubles as serialiser +
			// deserialiser), then hand the recovered frame to the
			// switch — every octet really traversed the framer.
			func(f *mapos.Frame) {
				nd.sys.Send(gigapos.TxJob{
					Address:  byte(f.Dest),
					Protocol: f.Protocol,
					Payload:  f.Payload,
				})
				nd.sys.RunUntilIdle(1_000_000)
				for _, rx := range nd.sys.Received() {
					if rx.Err != nil {
						panic(rx.Err)
					}
					sw.Ingress(i, &mapos.Frame{
						Dest:     mapos.Address(rx.Frame.Address),
						Protocol: rx.Frame.Protocol,
						Payload:  rx.Frame.Payload,
					})
				}
			},
			func(src mapos.Address, payload []byte) {
				nd.got = append(nd.got, fmt.Sprintf("from %v: %q", src, payload))
			},
		)
		sw.Attach(i, func(src mapos.Address, f *mapos.Frame) { nd.nd.Deliver(src, f) })
	}

	// The P5 receivers must accept any MAPOS address the switch routes
	// (each node's own unicast address arrives in NSP replies).
	for _, nd := range nodes {
		nd.sys.OAM.Write(gigapos.RegCtrl, nd.sys.OAM.Read(gigapos.RegCtrl)|0x20 /* any address */)
	}

	// NSP address acquisition, then program each P5's address register —
	// the paper's "programmable so that it is compatible with MAPOS".
	for _, nd := range nodes {
		nd.nd.AcquireAddress()
		nd.sys.OAM.Write(gigapos.RegAddress, uint32(nd.nd.Addr))
		fmt.Printf("node %d acquired MAPOS address %v; P5 address register = %#02x\n",
			nd.id, nd.nd.Addr, nd.sys.OAM.Read(gigapos.RegAddress))
	}

	fmt.Println()
	nodes[0].nd.SendIP(nodes[2].nd.Addr, []byte("unicast 0->2 over P5 framers"))
	nodes[2].nd.SendIP(nodes[0].nd.Addr, []byte("unicast 2->0"))
	nodes[1].nd.SendIP(mapos.Broadcast, []byte("broadcast from node 1"))

	for _, nd := range nodes {
		fmt.Printf("node %d inbox:\n", nd.id)
		for _, m := range nd.got {
			fmt.Printf("  %s\n", m)
		}
	}
	fmt.Printf("\nswitch: %d unicast forwarded, %d flooded, %d NSP handled, %d dropped\n",
		sw.Forwarded, sw.Flooded, sw.NSPHandled, sw.Dropped)
}
