// Wireless reliable transmission: the paper notes the P5 control field
// "may be configured via the LCP to use sequence numbers and
// acknowledgements for reliable data transmission. This is of
// particular use in noisy environments such as wireless networks."
// (RFC 1663 numbered mode.)
//
// This example runs the same noisy channel twice — once in normal
// unnumbered mode, once in numbered mode — and compares delivery.
package main

import (
	"fmt"
	"math/rand"

	gigapos "repro"
)

// noisyRun sends n datagrams over a channel that corrupts a fraction of
// transmissions; returns how many arrived and the retransmit count.
func noisyRun(reliableMode bool, loss float64, n int, seed int64) (delivered int, retransmits uint64) {
	rng := rand.New(rand.NewSource(seed))
	a := gigapos.NewLink(gigapos.LinkConfig{
		Magic: 1, Reliable: reliableMode, ReliablePeriod: 4,
		ReliableMaxRetries: 100, IPAddr: [4]byte{10, 9, 0, 1},
	})
	b := gigapos.NewLink(gigapos.LinkConfig{
		Magic: 2, Reliable: reliableMode, ReliablePeriod: 4,
		ReliableMaxRetries: 100, IPAddr: [4]byte{10, 9, 0, 2},
	})
	a.Open()
	b.Open()
	a.Up()
	b.Up()

	now := int64(0)
	shuttle := func(rounds int, lossy bool) {
		for i := 0; i < rounds; i++ {
			if out := a.Output(); len(out) > 0 {
				if lossy && rng.Float64() < loss {
					out[len(out)/2] ^= 0x10 // burst hits the frame; FCS kills it
				}
				b.Input(out)
			}
			if out := b.Output(); len(out) > 0 {
				if lossy && rng.Float64() < loss {
					out[len(out)/2] ^= 0x10
				}
				a.Input(out)
			}
			now += 2
			a.Advance(now)
			b.Advance(now)
		}
	}
	shuttle(100, false) // clean bring-up
	for i := 0; i < n; i++ {
		if err := a.SendIPv4([]byte{byte(i), 0xDE, 0xAD}); err != nil {
			panic(err)
		}
		shuttle(20, true)
	}
	shuttle(300, false) // drain retransmissions
	delivered = len(b.Received())
	_, _, retransmits, _ = a.ReliableStats()
	return delivered, retransmits
}

func main() {
	const n = 100
	const loss = 0.2

	fmt.Printf("channel: %0.f%% of transmissions hit by noise, %d datagrams\n\n", loss*100, n)

	d1, _ := noisyRun(false, loss, n, 7)
	fmt.Printf("unnumbered mode (default PPP):\n")
	fmt.Printf("  delivered %d/%d — every frame the noise touched is gone\n\n", d1, n)

	d2, retr := noisyRun(true, loss, n, 7)
	fmt.Printf("numbered mode (RFC 1663, LAPB window):\n")
	fmt.Printf("  delivered %d/%d, in order, via %d retransmissions\n", d2, n, retr)
}
