// Multilink bundle: RFC 1990 aggregation of several P5 channels. Four
// 8-bit P5 framers (625 Mb/s each) carry fragments of the same datagram
// stream in parallel; the far end reassembles in order — the classic
// route to rates above a single channel before a faster interface (the
// paper's 32-bit P5) exists. One member link is then cut mid-stream to
// show loss detection discarding only the packets it touched.
package main

import (
	"fmt"

	gigapos "repro"
	"repro/internal/mp"
	"repro/internal/netsim"
)

func main() {
	const nLinks = 4

	// Each member link is a full cycle-accurate 8-bit P5 loopback.
	systems := make([]*gigapos.System, nLinks)
	for i := range systems {
		systems[i] = gigapos.NewSystem(gigapos.Width8)
	}

	rx := &mp.Receiver{Format: mp.LongSeq, NLinks: nLinks}
	var delivered [][]byte
	rx.Deliver = func(p []byte) { delivered = append(delivered, p) }

	cut := -1 // link to damage, -1 = none
	tx := &mp.Sender{Format: mp.LongSeq, MaxFrag: 128}
	for i := 0; i < nLinks; i++ {
		i := i
		tx.Links = append(tx.Links, func(frag []byte) {
			if i == cut {
				return // the fibre is dark
			}
			// Fragment rides a P5 frame across link i.
			systems[i].Send(gigapos.TxJob{Protocol: mp.Proto, Payload: frag})
			systems[i].RunUntilIdle(1_000_000)
			for _, f := range systems[i].Received() {
				if f.Err == nil {
					rx.Receive(i, f.Frame.Payload)
				}
			}
		})
	}

	gen := netsim.NewGen(4, netsim.Fixed(700), 0.02)
	fmt.Printf("bundle: %d × 8-bit P5 links (625 Mb/s each = %.1f Gb/s aggregate)\n\n",
		nLinks, float64(nLinks)*0.625)

	sent := 0
	for i := 0; i < 30; i++ {
		tx.Send(gen.Next())
		sent++
	}
	fmt.Printf("phase 1: %d datagrams sent, %d reassembled in order, %d lost\n",
		sent, rx.Delivered, rx.Lost)

	// Cut link 2 mid-stream: fragments routed to it vanish.
	cut = 2
	for i := 0; i < 10; i++ {
		tx.Send(gen.Next())
		sent++
	}
	cut = -1
	// Healthy traffic lets the receiver prove the gaps and move on.
	for i := 0; i < 30; i++ {
		tx.Send(gen.Next())
		sent++
	}
	fmt.Printf("phase 2: link 2 cut for 10 datagrams → delivered %d/%d total, %d loss events detected\n",
		rx.Delivered, sent, rx.Lost)
	fmt.Printf("\nper-link P5 frame counts: ")
	for i, s := range systems {
		fmt.Printf("link%d=%d ", i, s.OAM.Read(0x40))
	}
	fmt.Println()
}
