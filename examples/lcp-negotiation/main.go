// LCP negotiation walkthrough: traces the RFC 1661 option-negotiation
// automaton — the protocol machinery behind the P5's Protocol OAM —
// through a bring-up with disagreements: one side requests header
// compression the other refuses (Configure-Reject), proposes an MRU
// below the minimum (Configure-Nak), and both sides accidentally pick
// the same magic number (looped-link suspicion, resolved by a random
// replacement).
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/lcp"
)

func main() {
	ra := rand.New(rand.NewSource(17))
	rb := rand.New(rand.NewSource(34))

	pa := lcp.NewLCPPolicy(0xCAFEBABE)
	pa.WantMRU = 64 // below MinMRU: will be naked up to 128
	pa.WantPFC = true
	pa.Rand = ra.Uint32
	pb := lcp.NewLCPPolicy(0xCAFEBABE) // same magic: loopback suspicion
	pb.Rand = rb.Uint32

	var queueA, queueB []*lcp.Packet
	name := map[*lcp.Automaton]string{}

	var a, b *lcp.Automaton
	a = lcp.NewAutomaton(func(p *lcp.Packet) {
		fmt.Printf("  %s sends %v id=%d (%d option bytes)\n", name[a], p.Code, p.ID, len(p.Data))
		queueB = append(queueB, clone(p))
	}, pa, lcp.Hooks{Up: func() { fmt.Println("  >>> A: this-layer-up") }})
	b = lcp.NewAutomaton(func(p *lcp.Packet) {
		fmt.Printf("  %s sends %v id=%d (%d option bytes)\n", name[b], p.Code, p.ID, len(p.Data))
		queueA = append(queueA, clone(p))
	}, pb, lcp.Hooks{Up: func() { fmt.Println("  >>> B: this-layer-up") }})
	name[a], name[b] = "A", "B"

	fmt.Println("phase 1: administrative open + lower layer up")
	a.Open()
	b.Open()
	a.Up()
	b.Up()

	fmt.Println("\nphase 2: negotiation")
	for round := 0; len(queueA)+len(queueB) > 0 && round < 50; round++ {
		if len(queueB) > 0 {
			p := queueB[0]
			queueB = queueB[1:]
			b.Receive(p)
		}
		if len(queueA) > 0 {
			p := queueA[0]
			queueA = queueA[1:]
			a.Receive(p)
		}
	}

	fmt.Println("\nresult:")
	fmt.Printf("  A state=%v  MRU=%d  magic=%#x  PFC=%v  (loopback suspected %d time(s))\n",
		a.State(), pa.Local.MRU, pa.Local.Magic, pa.Local.PFC, pa.LoopbackSuspected)
	fmt.Printf("  B state=%v  MRU=%d  magic=%#x  (loopback suspected %d time(s))\n",
		b.State(), pb.Local.MRU, pb.Local.Magic, pb.LoopbackSuspected)

	fmt.Println("\nphase 3: keepalive echo on the opened link")
	a.Receive(&lcp.Packet{Code: lcp.EchoRequest, ID: 99, Data: []byte{0, 0, 0, 0}})

	fmt.Println("\nphase 4: orderly shutdown")
	a.Close()
	for round := 0; len(queueA)+len(queueB) > 0 && round < 10; round++ {
		if len(queueB) > 0 {
			p := queueB[0]
			queueB = queueB[1:]
			b.Receive(p)
		}
		if len(queueA) > 0 {
			p := queueA[0]
			queueA = queueA[1:]
			a.Receive(p)
		}
	}
	fmt.Printf("  final states: A=%v B=%v\n", a.State(), b.State())
}

func clone(p *lcp.Packet) *lcp.Packet {
	return &lcp.Packet{Code: p.Code, ID: p.ID, Data: append([]byte(nil), p.Data...)}
}
