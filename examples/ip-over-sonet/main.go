// IP over SDH/SONET: the paper's system context, end to end. Two PPP
// endpoints negotiate LCP and IPCP, then exchange IPv4 datagrams whose
// byte stream is carried inside STM-16 (2.488 Gb/s) SDH transport
// frames — byte-synchronous HDLC mapping, scrambling, and B1/B3 parity
// monitoring included. A burst of line noise is injected to show the
// layered error detection: SONET parity flags the frame, the PPP FCS
// rejects the damaged datagram, and everything else is delivered.
package main

import (
	"fmt"

	gigapos "repro"
	"repro/internal/netsim"
	"repro/internal/sonet"
)

// carry moves a PPP byte stream across an STM-16 section, optionally
// corrupting one octet per frame index in mangle.
func carry(stream []byte, mangle map[int]bool) (out []byte, df *sonet.Deframer) {
	pos := 0
	fr := sonet.NewFramer(sonet.STM16, func() (byte, bool) {
		if pos < len(stream) {
			pos++
			return stream[pos-1], true
		}
		return 0, false
	})
	df = sonet.NewDeframer(sonet.STM16, func(b byte) { out = append(out, b) })
	for i := 0; pos < len(stream); i++ {
		f := fr.NextFrame()
		if mangle[i] {
			f[len(f)/2] ^= 0x20 // noise burst mid-frame
		}
		df.Feed(f)
	}
	df.Feed(fr.NextFrame()) // one fill frame to flush
	return out, df
}

func main() {
	a := gigapos.NewLink(gigapos.LinkConfig{
		Magic: 0xA5A5A5A5, IPAddr: [4]byte{192, 0, 2, 1},
	})
	b := gigapos.NewLink(gigapos.LinkConfig{
		Magic: 0x5A5A5A5A, IPAddr: [4]byte{192, 0, 2, 2},
	})

	// Bring the link up: LCP negotiation followed by IPCP.
	a.Open()
	b.Open()
	a.Up()
	b.Up()
	for i := 0; i < 32 && !(a.IPReady() && b.IPReady()); i++ {
		if out := a.Output(); len(out) > 0 {
			b.Input(out)
		}
		if out := b.Output(); len(out) > 0 {
			a.Input(out)
		}
	}
	fmt.Printf("LCP opened: %v/%v, IPCP opened: %v/%v\n", a.Opened(), b.Opened(), a.IPReady(), b.IPReady())
	fmt.Printf("addresses : a=%v  b=%v\n\n", ip(a.LocalIP()), ip(b.LocalIP()))

	// Generate an IMIX workload with a little escape-density.
	gen := netsim.NewGen(7, netsim.IMIX{}, 0.05)
	datagrams := gen.Burst(72 * 1024)
	for _, d := range datagrams {
		if err := a.SendIPv4(d); err != nil {
			panic(err)
		}
	}
	fmt.Printf("sending %d IPv4 datagrams (%d octets) over STM-16 (%.2f Gb/s line)\n",
		len(datagrams), gen.Octets, sonet.STM16.LineRate()/1e9)

	// Carry the stream over SONET, corrupting transport frame 2.
	rx, df := carry(a.Output(), map[int]bool{1: true})
	b.Input(rx)

	got := b.Received()
	fmt.Printf("\nSDH section   : %d frames OK, B1 parity errors: %d, B3 path errors: %d\n",
		df.FramesOK, df.B1Errors, df.B3Errors)
	fmt.Printf("PPP layer     : %d datagrams delivered, %d frames rejected by FCS\n",
		len(got), b.RxErrors)

	// Verify every delivered datagram parses as valid IPv4.
	valid := 0
	for _, d := range got {
		if _, ok := netsim.ParseIPv4(d.Payload); ok {
			valid++
		}
	}
	fmt.Printf("IP layer      : %d/%d delivered datagrams have valid headers\n", valid, len(got))
	fmt.Printf("\nthe noise burst was caught twice: by SDH B1/B3 parity and by the\nPPP 32-bit FCS; only the damaged datagrams were lost.\n")
}

func ip(a [4]byte) string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}
