package gigapos

import (
	"repro/internal/auth"
	"repro/internal/ppp"
)

// This file adds the RFC 1661 authentication phase to the Link: when
// either side's LCP demands an authentication protocol (option 3), the
// network phase (IPCP, numbered mode) is gated behind a successful
// PAP (RFC 1334) or CHAP (RFC 1994) exchange.

// Authentication protocol selectors for LinkConfig.RequireAuth.
const (
	AuthPAP  = auth.ProtoPAP
	AuthCHAP = auth.ProtoCHAP
)

// AuthConfig is the authentication part of a LinkConfig.
type AuthConfig struct {
	// Require demands the peer authenticate with this protocol
	// (AuthPAP or AuthCHAP); zero demands nothing.
	Require uint16
	// Secrets is the authenticator's table: identity → secret.
	Secrets map[string]string
	// Identity and Secret are this node's own credentials for
	// answering a peer's demand.
	Identity, Secret string
	// Name identifies this node in CHAP challenges (defaults to
	// Identity).
	Name string
	// Rand supplies CHAP challenge bytes; a deterministic fallback
	// seeded by the LCP magic is used when nil (fine for simulation,
	// not for production).
	Rand func() byte
}

type linkAuth struct {
	cfg AuthConfig

	papSrv  *auth.PAPServer
	papCli  *auth.PAPClient
	chapSrv *auth.CHAPServer
	chapCli *auth.CHAPClient

	// peerOK: the peer satisfied our demand; weOK: we satisfied the
	// peer's (trivially true when not demanded).
	started bool
}

func (a *AuthConfig) name() string {
	if a.Name != "" {
		return a.Name
	}
	return a.Identity
}

// initAuth builds the endpoints configured for this link.
func (l *Link) initAuth() {
	a := &linkAuth{cfg: l.cfg.Auth}
	l.auth = a
	send := func(proto uint16) func(*auth.Packet) {
		return func(p *auth.Packet) {
			f := &ppp.Frame{Protocol: proto, Payload: p.Marshal(nil)}
			l.out = ppp.Encode(l.out, f, l.lcpTxConfig(), true)
		}
	}
	rnd := a.cfg.Rand
	if rnd == nil {
		seed := l.cfg.Magic*0x9E3779B1 + 0x1234567
		rnd = func() byte {
			seed = seed*1664525 + 1013904223
			return byte(seed >> 16)
		}
	}
	switch a.cfg.Require {
	case AuthPAP:
		a.papSrv = &auth.PAPServer{Secrets: a.cfg.Secrets, Send: send(auth.ProtoPAP)}
	case AuthCHAP:
		a.chapSrv = &auth.CHAPServer{Name: a.cfg.name(), Secrets: a.cfg.Secrets,
			Rand: rnd, Send: send(auth.ProtoCHAP)}
	}
	if a.cfg.Identity != "" {
		a.papCli = &auth.PAPClient{PeerID: a.cfg.Identity, Password: a.cfg.Secret,
			Send: send(auth.ProtoPAP)}
		a.chapCli = &auth.CHAPClient{Name: a.cfg.Identity, Secret: a.cfg.Secret,
			Send: send(auth.ProtoCHAP)}
	}
	// Advertise what we demand and what we can answer.
	l.lcpPol.RequireAuth = a.cfg.Require
	if a.cfg.Identity != "" {
		l.lcpPol.CanAuth = map[uint16]bool{AuthPAP: true, AuthCHAP: true}
	}
}

// startAuthPhase begins the exchanges after LCP opens.
func (l *Link) startAuthPhase() {
	a := l.auth
	a.started = true
	if a.chapSrv != nil {
		a.chapSrv.Challenge()
	}
	// PAP is initiated by the authenticatee.
	if l.lcpPol.AuthDemanded == auth.ProtoPAP && a.papCli != nil {
		a.papCli.Start()
	}
	l.maybeEnterNetworkPhase()
}

// authSatisfied reports whether both directions' demands are met.
func (l *Link) authSatisfied() bool {
	if l.auth == nil {
		return true
	}
	a := l.auth
	if a.papSrv != nil && a.papSrv.Result() != auth.Success {
		return false
	}
	if a.chapSrv != nil && a.chapSrv.Result() != auth.Success {
		return false
	}
	switch l.lcpPol.AuthDemanded {
	case auth.ProtoPAP:
		if a.papCli == nil || a.papCli.Result() != auth.Success {
			return false
		}
	case auth.ProtoCHAP:
		if a.chapCli == nil || a.chapCli.Result() != auth.Success {
			return false
		}
	}
	return true
}

// authFailed reports a definitive failure in either direction.
func (l *Link) authFailed() bool {
	if l.auth == nil {
		return false
	}
	a := l.auth
	if a.papSrv != nil && a.papSrv.Result() == auth.Failure {
		return true
	}
	if a.chapSrv != nil && a.chapSrv.Result() == auth.Failure {
		return true
	}
	if a.papCli != nil && a.papCli.Result() == auth.Failure {
		return true
	}
	if a.chapCli != nil && a.chapCli.Result() == auth.Failure {
		return true
	}
	return false
}

// maybeEnterNetworkPhase advances to IPCP (and numbered mode) once
// authentication is complete; on failure the link is torn down, as
// RFC 1661 §3.5 prescribes.
func (l *Link) maybeEnterNetworkPhase() {
	if !l.Opened() || l.networkUp {
		return
	}
	if l.authFailed() {
		l.AuthFailures++
		l.lcpA.Close()
		return
	}
	if !l.authSatisfied() {
		return
	}
	l.networkUp = true
	l.ipcpA.Up()
	if l.station != nil {
		l.station.Connect()
	}
}

// AuthenticatedPeer returns the identity the peer proved, if any.
func (l *Link) AuthenticatedPeer() string {
	if l.auth == nil {
		return ""
	}
	if l.auth.papSrv != nil {
		return l.auth.papSrv.Peer
	}
	if l.auth.chapSrv != nil {
		return l.auth.chapSrv.Peer
	}
	return ""
}

// authFrame dispatches a received PAP/CHAP packet.
func (l *Link) authFrame(f *ppp.Frame) {
	if l.auth == nil || !l.Opened() {
		return
	}
	p, err := auth.Parse(f.Payload)
	if err != nil {
		l.RxBadAuth++
		return
	}
	a := l.auth
	switch f.Protocol {
	case auth.ProtoPAP:
		// Code 1 is a request toward our server; replies go to the
		// client.
		if p.Code == 1 {
			if a.papSrv != nil {
				a.papSrv.Receive(p)
			}
		} else if a.papCli != nil {
			a.papCli.Receive(p)
		}
	case auth.ProtoCHAP:
		// Responses go to the server; challenges and verdicts to the
		// client.
		if p.Code == 2 {
			if a.chapSrv != nil {
				a.chapSrv.Receive(p)
			}
		} else if a.chapCli != nil {
			a.chapCli.Receive(p)
		}
	}
	l.maybeEnterNetworkPhase()
}
