package gigapos

import (
	"testing"

	"repro/internal/lcp"
	"repro/internal/telemetry"
)

// TestLinkInstrumentTelemetry brings an instrumented pair up, runs LQM
// long enough for round-trip samples, cuts the line to provoke the
// supervisor, and checks the exported series and trace events.
func TestLinkInstrumentTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(512)
	cfg := LinkConfig{
		EchoPeriod: 4, EchoMisses: 2,
		Supervise: true, RetryMin: 4, RetryMax: 64,
		LQMPeriod: 5,
		WantVJ:    true, AllowVJ: true,
	}
	cfg.Magic, cfg.IPAddr = 0x1111, [4]byte{10, 0, 0, 1}
	a := NewLink(cfg)
	cfg.Magic, cfg.IPAddr = 0x2222, [4]byte{10, 0, 0, 2}
	b := NewLink(cfg)
	a.Instrument(reg, tr, "a")
	b.Instrument(reg, tr, "b")

	a.Open()
	b.Open()
	a.Up()
	b.Up()
	now := int64(0)
	run := func(ticks int, cut bool) {
		for i := 0; i < ticks; i++ {
			now++
			tick(a, b, now, cut)
		}
	}
	run(200, false)
	if !a.Opened() || !b.Opened() {
		t.Fatal("links did not open")
	}
	// A non-TCP datagram exercises the VJ TYPE_IP path.
	if err := a.SendIPv4([]byte{0x45, 0, 0, 20, 0x11, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	run(5, false)

	snap := reg.Snapshot("up")
	get := func(series string) float64 {
		v, ok := snap.Get(series)
		if !ok {
			t.Fatalf("series %s missing", series)
		}
		return v
	}
	if v := get(`link_lcp_state{link="a"}`); v != float64(lcp.Opened) {
		t.Errorf("lcp state gauge = %v, want %d", v, lcp.Opened)
	}
	if get(`link_lcp_transitions_total{link="a"}`) == 0 {
		t.Error("no LCP transitions counted")
	}
	if get(`link_rx_frames_total{link="b"}`) == 0 {
		t.Error("no rx frames counted")
	}
	if get(`link_lqm_rtt_samples_total{link="a"}`) == 0 {
		t.Error("no LQM round-trip samples")
	}
	if get(`link_lqm_rtt{link="a"}`) <= 0 {
		t.Error("LQM RTT gauge never set")
	}
	if get(`link_vj_out_ip_total{link="a"}`) == 0 {
		t.Error("VJ TYPE_IP counter not exported")
	}

	// Cut the line: echoes go unanswered, the link drops, and the
	// supervisor retries until the line heals.
	run(40, true)
	if a.Opened() {
		t.Fatal("link survived the cut")
	}
	run(400, false)
	if !a.Opened() {
		t.Fatal("supervisor did not recover the link")
	}
	snap = reg.Snapshot("healed")
	for _, series := range []string{
		`link_echo_timeouts_total{link="a"}`,
		`link_supervisor_restarts_total{link="a"}`,
		`link_supervisor_recoveries_total{link="a"}`,
	} {
		if v, ok := snap.Get(series); !ok || v == 0 {
			t.Errorf("%s = %v (present=%v), want nonzero", series, v, ok)
		}
	}

	want := map[string]bool{"lcp-transition": false, "echo-timeout": false, "restart": false, "recovered": false}
	for _, e := range tr.Events() {
		if _, ok := want[e.Name]; ok && e.Scope == "link:a" {
			want[e.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace event %q never emitted for link:a", name)
		}
	}
}
