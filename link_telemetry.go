package gigapos

import (
	"repro/internal/lcp"
	"repro/internal/telemetry"
)

// linkTelemetry holds a Link's probe state: the registry mirrors for
// its plain counters (refreshed on every Advance — the control-plane
// cadence, so no hot-path cost) and the shared event tracer.
type linkTelemetry struct {
	tracer *telemetry.Tracer
	scope  string
	sync   func()
}

// trace emits a structured event on the link's tracer (no-op while
// uninstrumented) and mirrors it into the flight recorder's black-box
// ring when one is armed, so captures carry the protocol history that
// led up to the trigger.
func (l *Link) trace(name, detail string, v1, v2 int64) {
	if l.fl != nil {
		l.fl.rec.Event(l.now, name, detail, v1, v2)
	}
	if l.tel == nil || l.tel.tracer == nil {
		return
	}
	l.tel.tracer.Emit(l.now, l.tel.scope, name, detail, v1, v2)
}

// Instrument exports the link's protocol counters to reg — every
// series labelled {link=name} — and emits structured events (LCP/IPCP
// state transitions, supervisor actions, echo timeouts) to tr, which
// may be nil to disable tracing. Call once, before traffic.
func (l *Link) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer, name string) {
	lbl := telemetry.L("link", name)
	type tap struct {
		c    *telemetry.Counter
		read func() uint64
	}
	taps := []tap{
		{reg.Counter("link_rx_frames_total", "HDLC frames accepted by the endpoint.", lbl),
			func() uint64 { return l.RxFrames }},
		{reg.Counter("link_rx_errors_total", "Damaged or undecodable frames (FCS failures included).", lbl),
			func() uint64 { return l.RxErrors }},
		{reg.Counter("link_protocol_rejects_total", "Protocol-Reject packets sent.", lbl),
			func() uint64 { return l.ProtocolRejects }},
		{reg.Counter("link_echo_timeouts_total", "Dead-peer teardowns from unanswered echoes.", lbl),
			func() uint64 { return l.EchoTimeouts }},
		{reg.Counter("link_auth_failures_total", "Authentication phase failures.", lbl),
			func() uint64 { return l.AuthFailures }},
		{reg.Counter("link_lcp_tx_packets_total", "LCP control packets sent.", lbl),
			func() uint64 { return l.lcpA.TxPackets }},
		{reg.Counter("link_lcp_rx_packets_total", "LCP control packets received.", lbl),
			func() uint64 { return l.lcpA.RxPackets }},
		{reg.Counter("link_lcp_timeouts_total", "LCP restart-timer expiries.", lbl),
			func() uint64 { return l.lcpA.Timeouts }},
	}
	gauges := []struct {
		g    *telemetry.Gauge
		read func() int64
	}{
		{reg.Gauge("link_lcp_state", "LCP automaton state (RFC 1661 ordinal).", lbl),
			func() int64 { return int64(l.lcpA.State()) }},
		{reg.Gauge("link_ipcp_state", "IPCP automaton state (RFC 1661 ordinal).", lbl),
			func() int64 { return int64(l.ipcpA.State()) }},
	}
	if l.vjTx != nil {
		taps = append(taps,
			tap{reg.Counter("link_vj_out_ip_total", "Datagrams sent uncompressible (TYPE_IP).", lbl),
				func() uint64 { return l.vjTx.OutIP }},
			tap{reg.Counter("link_vj_out_uncompressed_total", "Datagrams sent as VJ UNCOMPRESSED_TCP.", lbl),
				func() uint64 { return l.vjTx.OutUncompressed }},
			tap{reg.Counter("link_vj_out_compressed_total", "Datagrams sent as VJ COMPRESSED_TCP (hits).", lbl),
				func() uint64 { return l.vjTx.OutCompressed }},
			tap{reg.Counter("link_vj_saved_octets_total", "Header octets elided by VJ compression.", lbl),
				func() uint64 { return l.vjTx.SavedOctets }})
	}
	if l.monitor != nil {
		taps = append(taps,
			tap{reg.Counter("link_lqm_reports_out_total", "Link-Quality-Reports emitted.", lbl),
				func() uint64 { return uint64(l.monitor.OutLQRs) }},
			tap{reg.Counter("link_lqm_reports_in_total", "Link-Quality-Reports received.", lbl),
				func() uint64 { return uint64(l.monitor.InLQRs) }},
			tap{reg.Counter("link_lqm_rtt_samples_total", "Completed report round-trip measurements.", lbl),
				func() uint64 { return l.monitor.RTTSamples }})
		gauges = append(gauges,
			struct {
				g    *telemetry.Gauge
				read func() int64
			}{reg.Gauge("link_lqm_rtt", "Last report round-trip (virtual time units).", lbl),
				func() int64 { return l.monitor.LastRTT }},
			struct {
				g    *telemetry.Gauge
				read func() int64
			}{reg.Gauge("link_lqm_quality", "Quality verdict: 0 unknown, 1 good, 2 bad.", lbl),
				func() int64 { return int64(l.monitor.Quality()) }})
	}
	if l.sup != nil {
		taps = append(taps,
			tap{reg.Counter("link_supervisor_restarts_total", "Supervised re-open attempts.", lbl),
				func() uint64 { return l.sup.Restarts }},
			tap{reg.Counter("link_supervisor_recoveries_total", "Returns to Opened after an outage.", lbl),
				func() uint64 { return l.sup.Recoveries }},
			tap{reg.Counter("link_supervisor_defect_outages_total", "Service-affecting defect windows.", lbl),
				func() uint64 { return l.sup.DefectOutages }},
			tap{reg.Counter("link_supervisor_lqm_restarts_total", "Restarts from Bad quality verdicts.", lbl),
				func() uint64 { return l.sup.LQMRestarts }})
	}

	l.tel = &linkTelemetry{
		tracer: tr,
		scope:  "link:" + name,
		sync: func() {
			for _, t := range taps {
				t.c.Set(t.read())
			}
			for _, g := range gauges {
				g.g.Set(g.read())
			}
		},
	}

	lcpTrans := reg.Counter("link_lcp_transitions_total", "LCP automaton state transitions.", lbl)
	l.lcpA.OnTransition = func(from, to lcp.State) {
		lcpTrans.Inc()
		l.trace("lcp-transition", from.String()+"->"+to.String(), int64(from), int64(to))
	}
	ipcpTrans := reg.Counter("link_ipcp_transitions_total", "IPCP automaton state transitions.", lbl)
	l.ipcpA.OnTransition = func(from, to lcp.State) {
		ipcpTrans.Inc()
		l.trace("ipcp-transition", from.String()+"->"+to.String(), int64(from), int64(to))
	}
	l.tel.sync()
}

// SyncTelemetry refreshes the link's exported mirrors immediately
// (Advance also does this every call). No-op when uninstrumented.
func (l *Link) SyncTelemetry() {
	if l.tel != nil {
		l.tel.sync()
	}
}
