package gigapos

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/p5"
	"repro/internal/ppp"
	"repro/internal/rtl"
)

// TestSoakSystemWithRandomErrors is a long deterministic soak of the
// full cycle-accurate system under random line errors: every sent frame
// must be accounted for — delivered intact or rejected with an error —
// and the OAM counters must reconcile exactly. No frame may be
// delivered with a corrupted payload (undetected error).
func TestSoakSystemWithRandomErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, w := range []int{1, 4} {
		for _, errRate := range []float64{0, 0.001, 0.01} {
			w, errRate := w, errRate
			sys := p5.NewSystem(w)
			rng := netsim.NewRand(uint64(w)*1000 + uint64(errRate*10000))
			if errRate > 0 {
				sys.Line.Corrupt = func(f rtl.Flit, cycle int64) rtl.Flit {
					if rng.Float64() < errRate {
						lane := rng.Intn(f.N)
						f.SetByte(lane, f.Byte(lane)^byte(1<<uint(rng.Intn(8))))
					}
					return f
				}
			}
			gen := netsim.NewGen(99, netsim.IMIX{}, 0.05)
			const nFrames = 120
			var want [][]byte
			for i := 0; i < nFrames; i++ {
				d := gen.Next()
				want = append(want, d)
				sys.Send(p5.TxJob{Protocol: ppp.ProtoIPv4, Payload: d})
			}
			if !sys.RunUntilIdle(100_000_000) {
				t.Fatalf("w=%d err=%v: system wedged", w, errRate)
			}
			got := sys.Received()
			// Errors can merge or split frames (a corrupted flag joins
			// two frames; a flag-valued corruption splits one), so the
			// count may differ — but good frames must match a sent
			// payload exactly, in order.
			goodIdx := 0
			var good, bad int
			for _, f := range got {
				if f.Err != nil {
					bad++
					continue
				}
				good++
				// Find this payload at or after goodIdx.
				found := false
				for j := goodIdx; j < len(want); j++ {
					if string(f.Frame.Payload) == string(want[j]) {
						goodIdx = j + 1
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("w=%d err=%v: delivered frame matches no sent payload (undetected corruption?)", w, errRate)
				}
			}
			if errRate == 0 {
				if good != nFrames || bad != 0 {
					t.Fatalf("w=%d clean line: good=%d bad=%d", w, good, bad)
				}
			} else if good == 0 {
				t.Fatalf("w=%d err=%v: nothing survived", w, errRate)
			}
			// OAM reconciliation.
			if uint64(good) != uint64(sys.OAM.Read(p5.RegRxGood)) {
				t.Errorf("w=%d err=%v: RxGood=%d counted %d", w, errRate, sys.OAM.Read(p5.RegRxGood), good)
			}
			if uint64(bad) != uint64(sys.OAM.Read(p5.RegRxBad)) {
				t.Errorf("w=%d err=%v: RxBad=%d counted %d", w, errRate, sys.OAM.Read(p5.RegRxBad), bad)
			}
		}
	}
}

// TestSoakBufferInvariants drives dense escape traffic through both
// widths and asserts the resynchronisation buffers never exceed their
// configured capacity — the paper's low-memory claim as an invariant.
func TestSoakBufferInvariants(t *testing.T) {
	for _, w := range []int{1, 4} {
		sys := p5.NewSystem(w)
		gen := netsim.NewGen(3, netsim.Uniform{Min: 40, Max: 600}, 0.5)
		for i := 0; i < 60; i++ {
			sys.Send(p5.TxJob{Protocol: ppp.ProtoIPv4, Payload: gen.Next()})
		}
		if !sys.RunUntilIdle(100_000_000) {
			t.Fatalf("w=%d: wedged", w)
		}
		if hw := sys.Tx.Escape.HighWater(); hw > 4*w {
			t.Errorf("w=%d: tx resync high water %d exceeds %d", w, hw, 4*w)
		}
		if hw := sys.Rx.Escape.HighWater(); hw > 4*w+1 {
			// +1: the in-band end-of-frame marker entry.
			t.Errorf("w=%d: rx resync high water %d exceeds %d", w, hw, 4*w+1)
		}
		for _, f := range sys.Received() {
			if f.Err != nil {
				t.Fatalf("w=%d: %v", w, f.Err)
			}
		}
	}
}
