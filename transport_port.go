package gigapos

import (
	"math/rand/v2"

	"repro/internal/flight"
	"repro/internal/transport"
)

// TransportPort binds one Link endpoint to a LineTransport: the glue
// that takes the engine off loopback. Each tick it flushes the link's
// pending wire output into the transport, ticks the transport's
// housekeeping (keepalive, reconnection), maps dead-peer transitions
// onto the supervisor's defect machinery as AlarmTransportLOS, and
// feeds received chunks back into the link.
//
// The ownership contracts line up without copies on the receive side:
// transport.Recv payloads stay valid until the second-following Recv,
// and Link.InputBatch never retains its chunks. On transmit,
// transport.Send does not retain the Link.Output buffer.
//
// Like Link, a TransportPort is driven from one goroutine.
type TransportPort struct {
	Link *Link
	T    transport.LineTransport

	// TxLineBytes and RxLineBytes count wire octets offered to and
	// accepted from the transport.
	TxLineBytes, RxLineBytes uint64

	sawUp    bool // transport has been up at least once
	wasUp    bool // liveness seen by the previous Poll
	rxChunks [][]byte

	// Correlation plumbing (ArmCorrelation): the armed recorder, the
	// transport's freeze side channel and latency meter, and the peer
	// freeze currently being serviced (stamped onto the capture its
	// Trigger produces).
	rec         *flight.Recorder
	fz          transport.Freezer
	lm          transport.LatencyMeter
	pending     transport.FreezeInfo
	havePending bool
	rxFreezes   []transport.FreezeInfo
}

// NewTransportPort binds l to t.
func NewTransportPort(l *Link, t transport.LineTransport) *TransportPort {
	return &TransportPort{Link: l, T: t}
}

// ArmCorrelation joins the port's flight recorder to the transport's
// freeze side channel, turning isolated black-box dumps into
// correlated capture pairs (DESIGN.md §16): a local trigger on the
// correlation leader mints a shared incident ID and freeze-pings the
// peer; the peer either back-stamps the ID onto the capture its own
// detection already produced, or dumps fresh under reason
// "peer-freeze". Every capture is additionally stamped with the
// transport's clock/tick offset estimates — the p5trace -join
// alignment inputs. Reports false (and arms nothing) when the
// transport has no freeze channel (Pipe). Call after ArmFlight, before
// traffic.
func (p *TransportPort) ArmCorrelation(rec *flight.Recorder) bool {
	fz, ok := p.T.(transport.Freezer)
	if !ok || rec == nil {
		return false
	}
	p.rec = rec
	p.fz = fz
	p.lm, _ = p.T.(transport.LatencyMeter)
	rec.Correlate = p.correlate
	return true
}

// correlate runs inside Recorder.Trigger, before the capture file is
// written.
func (p *TransportPort) correlate(c *flight.Capture) {
	if p.lm != nil {
		lat := p.lm.Latency()
		c.ClockOffsetNS = lat.ClockOffsetNS
		c.TickOffset = lat.TickOffset
	}
	if p.havePending {
		// Servicing a peer freeze: adopt its incident, never re-ping —
		// the ping-pong stops here.
		c.Incident = p.pending.Incident
		c.FromPeer = true
		c.PeerNow = p.pending.Tick
		c.PeerWallNs = p.pending.WallNs
		return
	}
	if c.Reason == "transport-los" {
		// A symmetric outage fires local detection on both ends. Only
		// the leader mints the ID; the follower captures uncorrelated
		// and adopts the leader's ID when its freeze ping lands.
		if !p.fz.CorrelationLeader() {
			return
		}
	} else if !p.T.Up() {
		// Any other trigger on a dead line (supervisor restarts cycling
		// through a blackout) stays uncorrelated: the queued ping would
		// only land after recovery, far outside the peer's loss horizon,
		// spraying spurious peer-freeze dumps.
		return
	}
	c.Incident = rand.Uint64() | 1
	p.fz.SendFreeze(transport.FreezeInfo{
		Incident: c.Incident,
		Reason:   c.Reason,
		Tick:     c.Now,
		WallNs:   c.WallNs,
	})
}

// drainFreezes services peer freeze pings: a recent uncorrelated local
// capture inside the loss horizon adopts the incident ID; otherwise
// the black box is dumped fresh under "peer-freeze".
func (p *TransportPort) drainFreezes() {
	p.rxFreezes = p.fz.Freezes(p.rxFreezes[:0])
	for _, f := range p.rxFreezes {
		if p.rec.AdoptIncident(f.Incident, f.Reason, f.Tick, f.WallNs) {
			continue
		}
		p.pending = f
		p.havePending = true
		p.rec.Trigger("peer-freeze")
		p.havePending = false
	}
}

// Flush moves the link's pending wire output into the transport and
// returns the octet count.
func (p *TransportPort) Flush() int {
	out := p.Link.Output()
	if len(out) == 0 {
		return 0
	}
	p.TxLineBytes += uint64(len(out))
	p.T.Send(out)
	return len(out)
}

// Poll ticks the transport, escalates liveness edges into the link's
// defect supervisor, and feeds received chunks into the link. It
// returns the received octet count.
//
// The first time the transport comes up nothing is reported — the
// supervisor starts with the line presumed healthy, and alarming a
// still-dialing socket at startup would fire a spurious outage. After
// that, down edges raise AlarmTransportLOS (outage, flight capture,
// LCP Down) and up edges clear it (immediate supervised re-open).
func (p *TransportPort) Poll(now int64) int {
	p.T.Tick(now)
	up := p.T.Up()
	switch {
	case up && !p.sawUp:
		p.sawUp, p.wasUp = true, true
	case p.sawUp && up != p.wasUp:
		p.wasUp = up
		if up {
			p.Link.NotifyDefects(0)
		} else {
			p.Link.NotifyDefects(AlarmTransportLOS)
		}
	}
	p.rxChunks = p.T.Recv(p.rxChunks[:0])
	n := 0
	for _, c := range p.rxChunks {
		n += len(c)
	}
	p.RxLineBytes += uint64(n)
	p.Link.InputBatch(p.rxChunks)
	if p.fz != nil {
		p.drainFreezes()
	}
	return n
}

// Tick runs one full port tick for standalone use (outside the engine,
// which interleaves Flush and Poll with its stage accounting): advance
// the link clock, flush transmit, poll receive.
func (p *TransportPort) Tick(now int64) {
	p.Link.Advance(now)
	p.Flush()
	p.Poll(now)
}
