package gigapos

import "repro/internal/transport"

// TransportPort binds one Link endpoint to a LineTransport: the glue
// that takes the engine off loopback. Each tick it flushes the link's
// pending wire output into the transport, ticks the transport's
// housekeeping (keepalive, reconnection), maps dead-peer transitions
// onto the supervisor's defect machinery as AlarmTransportLOS, and
// feeds received chunks back into the link.
//
// The ownership contracts line up without copies on the receive side:
// transport.Recv payloads stay valid until the second-following Recv,
// and Link.InputBatch never retains its chunks. On transmit,
// transport.Send does not retain the Link.Output buffer.
//
// Like Link, a TransportPort is driven from one goroutine.
type TransportPort struct {
	Link *Link
	T    transport.LineTransport

	// TxLineBytes and RxLineBytes count wire octets offered to and
	// accepted from the transport.
	TxLineBytes, RxLineBytes uint64

	sawUp    bool // transport has been up at least once
	wasUp    bool // liveness seen by the previous Poll
	rxChunks [][]byte
}

// NewTransportPort binds l to t.
func NewTransportPort(l *Link, t transport.LineTransport) *TransportPort {
	return &TransportPort{Link: l, T: t}
}

// Flush moves the link's pending wire output into the transport and
// returns the octet count.
func (p *TransportPort) Flush() int {
	out := p.Link.Output()
	if len(out) == 0 {
		return 0
	}
	p.TxLineBytes += uint64(len(out))
	p.T.Send(out)
	return len(out)
}

// Poll ticks the transport, escalates liveness edges into the link's
// defect supervisor, and feeds received chunks into the link. It
// returns the received octet count.
//
// The first time the transport comes up nothing is reported — the
// supervisor starts with the line presumed healthy, and alarming a
// still-dialing socket at startup would fire a spurious outage. After
// that, down edges raise AlarmTransportLOS (outage, flight capture,
// LCP Down) and up edges clear it (immediate supervised re-open).
func (p *TransportPort) Poll(now int64) int {
	p.T.Tick(now)
	up := p.T.Up()
	switch {
	case up && !p.sawUp:
		p.sawUp, p.wasUp = true, true
	case p.sawUp && up != p.wasUp:
		p.wasUp = up
		if up {
			p.Link.NotifyDefects(0)
		} else {
			p.Link.NotifyDefects(AlarmTransportLOS)
		}
	}
	p.rxChunks = p.T.Recv(p.rxChunks[:0])
	n := 0
	for _, c := range p.rxChunks {
		n += len(c)
	}
	p.RxLineBytes += uint64(n)
	p.Link.InputBatch(p.rxChunks)
	return n
}

// Tick runs one full port tick for standalone use (outside the engine,
// which interleaves Flush and Poll with its stage accounting): advance
// the link clock, flush transmit, poll receive.
func (p *TransportPort) Tick(now int64) {
	p.Link.Advance(now)
	p.Flush()
	p.Poll(now)
}
