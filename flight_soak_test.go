package gigapos

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/sonet"
	"repro/internal/telemetry"
)

// TestChaosSoakFlightRecorder is the armed counterpart of the chaos
// soak: a supervised pair rides an STM-1 section through two LOS line
// cuts and a corruption burst with the flight recorder attached on both
// ends and live IPv4 traffic flowing a→b. The headline assertions are
// the black-box bookkeeping invariants — every supervisor restart and
// every defect outage dumped exactly one capture, every capture file on
// disk decodes losslessly back to its in-memory twin — plus a live
// latency observatory: the e2e histogram carries resolvable exemplars,
// the per-stage histograms sampled real frames, and the SLO evaluator
// burned budget through the outage windows.
func TestChaosSoakFlightRecorder(t *testing.T) {
	const fb = 2430 // STM-1 frame bytes; one frame per direction per tick

	cfg := LinkConfig{
		EchoPeriod: 8, EchoMisses: 2,
		Supervise: true, RetryMin: 8, RetryMax: 128,
	}
	cfg.Magic, cfg.IPAddr = 0xAAAA, [4]byte{10, 0, 0, 1}
	a := NewLink(cfg)
	cfg.Magic, cfg.IPAddr = 0xBBBB, [4]byte{10, 0, 0, 2}
	b := NewLink(cfg)

	// Arm before traffic: recorders on both ends, paired so deliveries
	// at b complete a's departure pipe, with an SLO on the receive side.
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	fcfg := flight.Config{Dir: dir, Horizon: 256}
	ra := flight.NewRecorder(reg, "soak_a", fcfg)
	rb := flight.NewRecorder(reg, "soak_b", fcfg)
	a.ArmFlight(ra)
	b.ArmFlight(rb)
	JoinFlight(a, b)
	slo := b.FlightSLO(reg, "soak", flight.SLOConfig{})

	// SONET carry a→b with the fault injector in the middle; b→a is a
	// clean direct line (same topology as the unarmed soak).
	var aQueue, bQueue []byte
	fa := sonet.NewFramer(sonet.STM1, func() (byte, bool) {
		if len(aQueue) == 0 {
			return 0, false
		}
		by := aQueue[0]
		aQueue = aQueue[1:]
		return by, true
	})
	dfB := sonet.NewDeframer(sonet.STM1, func(by byte) { bQueue = append(bQueue, by) })
	dfB.Defects.OnEvent = func(sonet.DefectEvent) {
		b.NotifyDefects(uint32(dfB.Defects.Active()))
	}

	var script fault.Script
	script.LOS(120*fb, 120*fb)           // line cut #1: 120 frames
	script.Corrupt(400*fb+300, 48, 0x0F) // scorched octets mid-recovery era
	script.LOS(480*fb, 60*fb)            // line cut #2: 60 frames
	inj := fault.NewInjector(script)

	payload := make([]byte, 64)
	payload[0] = 0x45
	var sent, delivered int
	now := int64(0)
	tickOnce := func(impair bool) {
		now++
		a.Advance(now)
		b.Advance(now)
		if a.IPReady() {
			if err := a.SendIPv4(payload); err == nil {
				sent++
			}
		}
		aQueue = append(aQueue, a.Output()...)
		frame := fa.NextFrame()
		if impair {
			frame = inj.Apply(frame)
		}
		dfB.Feed(frame)
		if len(bQueue) > 0 {
			b.Input(bQueue)
			bQueue = nil
		}
		delivered += len(b.Received())
		if out := b.Output(); len(out) > 0 {
			a.Input(out)
		}
	}

	a.Open()
	b.Open()
	a.Up()
	b.Up()
	for i := 0; i < 30; i++ {
		tickOnce(false)
	}
	if !a.IPReady() || !b.IPReady() {
		t.Fatal("links did not open on the clean line")
	}

	for i := 0; i < 640; i++ {
		tickOnce(true)
	}
	if !inj.Done() {
		t.Fatalf("script not fully fired at pos %d", inj.Pos())
	}
	healBudget := 0
	for !(a.IPReady() && b.IPReady()) {
		tickOnce(false)
		healBudget++
		if healBudget > 400 {
			t.Fatalf("links did not heal within budget: a=%v b=%v",
				a.lcpA.State(), b.lcpA.State())
		}
	}
	// Let the loss horizon retire anything cut down by the second LOS.
	for i := 0; i < 300; i++ {
		tickOnce(false)
	}

	// Black-box invariant: exactly one capture per trigger, on both
	// ends. a is blind to the defects (its receive line is clean), so
	// its captures are all echo-driven supervisor restarts; b dumps once
	// per defect outage and once per restart.
	supA, supB := a.Supervisor(), b.Supervisor()
	if supA.Restarts == 0 || supB.Restarts == 0 {
		t.Fatalf("soak produced no restarts (a=%d b=%d) — scenario did not bite",
			supA.Restarts, supB.Restarts)
	}
	if got := ra.CapturesFor("supervisor-restart"); got != supA.Restarts {
		t.Errorf("a: %d supervisor-restart captures, want %d (one per restart)", got, supA.Restarts)
	}
	if got := rb.CapturesFor("supervisor-restart"); got != supB.Restarts {
		t.Errorf("b: %d supervisor-restart captures, want %d (one per restart)", got, supB.Restarts)
	}
	if supB.DefectOutages != 2 {
		t.Errorf("b saw %d defect outages, want 2 (one per LOS window)", supB.DefectOutages)
	}
	if got := rb.CapturesFor("defect-outage"); got != supB.DefectOutages {
		t.Errorf("b: %d defect-outage captures, want %d (one per outage)", got, supB.DefectOutages)
	}
	if ra.LastErr() != nil || rb.LastErr() != nil {
		t.Fatalf("capture write errors: a=%v b=%v", ra.LastErr(), rb.LastErr())
	}

	// Every capture landed on disk and decodes losslessly.
	files, err := filepath.Glob(filepath.Join(dir, "*.p5fr"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(files), int(ra.Captures()+rb.Captures()); got != want {
		t.Errorf("%d capture files on disk, want %d", got, want)
	}
	for _, c := range append(ra.Recent(), rb.Recent()...) {
		rc, err := flight.ReadFile(filepath.Join(dir, c.Filename()))
		if err != nil {
			t.Fatalf("%s: %v", c.Filename(), err)
		}
		if rc.Link != c.Link || rc.Reason != c.Reason || rc.Seq != c.Seq || rc.Now != c.Now {
			t.Errorf("%s: header mismatch after round trip: %+v", c.Filename(), rc)
		}
		if !bytes.Equal(rc.RxWire, c.RxWire) || !bytes.Equal(rc.TxWire, c.TxWire) {
			t.Errorf("%s: wire rings not byte-identical after round trip", c.Filename())
		}
		if len(rc.Events) != len(c.Events) || len(rc.Regs) != len(c.Regs) {
			t.Errorf("%s: events/regs truncated: %d/%d events, %d/%d regs",
				c.Filename(), len(rc.Events), len(c.Events), len(rc.Regs), len(c.Regs))
		}
	}

	// Latency observatory: the a→b pipe tracked the soak's datagrams,
	// the LOS windows surfaced as losses, and the e2e histogram carries
	// at least one exemplar that resolves to a concrete tagged frame.
	if ra.Tracked() == 0 || delivered == 0 {
		t.Fatalf("no traffic observed: tracked=%d delivered=%d", ra.Tracked(), delivered)
	}
	if ra.Lost() == 0 {
		t.Error("two line cuts produced no tracked losses")
	}
	exs := ra.Exemplars()
	if len(exs) == 0 {
		t.Fatal("e2e histogram has no exemplars")
	}
	for _, ex := range exs {
		if ex.ID == 0 || ex.ID > ra.Tracked() {
			t.Errorf("exemplar frame id %d not resolvable (tracked %d)", ex.ID, ra.Tracked())
		}
		if ex.Value < 0 {
			t.Errorf("exemplar latency %d < 0", ex.Value)
		}
	}
	if ra.StageHistogram(flight.StageEncode).Count() == 0 {
		t.Error("encode stage histogram sampled nothing")
	}
	if rb.StageHistogram(flight.StageFCS).Count() == 0 {
		t.Error("fcs stage histogram sampled nothing")
	}

	// SLO evaluator: the outage loss (percent-scale against a 0.1%
	// objective) must have burned budget and tripped the alarm.
	if slo.WorstBurnMilli() <= 0 {
		t.Errorf("worst burn %d milli after two line cuts, want > 0", slo.WorstBurnMilli())
	}
	if !slo.Alarmed() {
		t.Error("SLO never alarmed through the outage windows")
	}

	// The series all land in the shared registry exposition, and the
	// /slo board document round-trips through its JSON codec.
	var prom bytes.Buffer
	reg.WritePrometheus(&prom)
	for _, want := range []string{
		`flight_frames_tracked_total{link="soak_a"}`,
		`flight_captures_total{link="soak_b"}`,
		`slo_worst_burn_rate{slo="soak"}`,
		`slo_error_budget_remaining{slo="soak"}`,
	} {
		if !bytes.Contains(prom.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %s", want)
		}
	}
	board := flight.NewBoard()
	board.Attach(ra)
	board.Attach(rb)
	board.AttachSLO(slo)
	var js bytes.Buffer
	if err := board.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	doc, err := flight.ReadBoard(&js)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.SLOs) != 1 || doc.SLOs[0].Name != "soak" || !doc.SLOs[0].Alarm {
		t.Errorf("board SLO row wrong: %+v", doc.SLOs)
	}
	if len(doc.Links) != 2 || doc.Links[0].Tracked != ra.Tracked() {
		t.Errorf("board link rows wrong: %+v", doc.Links)
	}

	t.Logf("sent=%d delivered=%d tracked=%d lost=%d p99=%d ticks; captures a=%d b=%d; worst burn=%d milli",
		sent, delivered, ra.Tracked(), ra.Lost(), ra.P99(),
		ra.Captures(), rb.Captures(), slo.WorstBurnMilli())
}

// TestLinkSteadyStateZeroAllocFlightArmed re-runs the PR-4 zero-alloc
// invariant with the flight recorder armed on both ends: tagging,
// FIFO matching, exemplar upkeep, wire-ring taps and sampled stage
// stamps must all ride the steady-state path without allocating.
func TestLinkSteadyStateZeroAllocFlightArmed(t *testing.T) {
	a, z := newTestPair(t, LinkConfig{}, LinkConfig{})
	a.ArmFlight(flight.NewRecorder(nil, "za", flight.Config{}))
	z.ArmFlight(flight.NewRecorder(nil, "zz", flight.Config{}))
	JoinFlight(a, z)

	payload := make([]byte, 512)
	batch := [][]byte{payload, payload, payload, payload}
	var rx []Datagram
	now := int64(1000)
	step := func() {
		now++
		a.Advance(now)
		z.Advance(now)
		if _, err := a.SendIPv4Batch(batch); err != nil {
			t.Fatalf("SendIPv4Batch: %v", err)
		}
		z.Input(a.Output())
		rx = z.ReceivedInto(rx[:0])
	}
	// Warm every buffer (and the exemplar store) to steady state.
	for i := 0; i < 16; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("armed steady-state link step allocates %.1f times per run, want 0", avg)
	}
	fr := a.Flight()
	if fr.Tracked() == 0 || fr.InFlight() != 0 {
		t.Fatalf("recorder did not track the run: tracked=%d inflight=%d", fr.Tracked(), fr.InFlight())
	}
	if fr.Lost() != 0 {
		t.Fatalf("loopback run recorded %d losses", fr.Lost())
	}
	if len(fr.Exemplars()) == 0 {
		t.Fatal("no exemplars after a tracked run")
	}
}
