package gigapos

import (
	"bytes"
	"math/rand"
	"testing"
)

// pump shuttles bytes between two links until both go quiet.
func pump(t *testing.T, a, b *Link, budget int) {
	t.Helper()
	for i := 0; i < budget; i++ {
		moved := false
		if out := a.Output(); len(out) > 0 {
			b.Input(out)
			moved = true
		}
		if out := b.Output(); len(out) > 0 {
			a.Input(out)
			moved = true
		}
		if !moved {
			return
		}
	}
	t.Fatal("links did not quiesce")
}

func bringUp(t *testing.T, a, b *Link) {
	t.Helper()
	a.Open()
	b.Open()
	a.Up()
	b.Up()
	pump(t, a, b, 1000)
	if !a.Opened() || !b.Opened() {
		t.Fatal("LCP did not open")
	}
	if !a.IPReady() || !b.IPReady() {
		t.Fatal("IPCP did not open")
	}
}

func TestLinkBringUp(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 0x1111, IPAddr: [4]byte{10, 0, 0, 1}})
	b := NewLink(LinkConfig{Magic: 0x2222, IPAddr: [4]byte{10, 0, 0, 2}})
	bringUp(t, a, b)
	if a.LocalIP() != [4]byte{10, 0, 0, 1} || a.PeerIP() != [4]byte{10, 0, 0, 2} {
		t.Errorf("a addresses: local %v peer %v", a.LocalIP(), a.PeerIP())
	}
}

func TestLinkDataTransfer(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2}})
	bringUp(t, a, b)
	payload := []byte{0x45, 0, 0, 20, 0x7E, 0x7D, 1, 2, 3}
	if err := a.SendIPv4(payload); err != nil {
		t.Fatal(err)
	}
	pump(t, a, b, 100)
	got := b.Received()
	if len(got) != 1 || got[0].Protocol != ProtoIPv4 || !bytes.Equal(got[0].Payload, payload) {
		t.Fatalf("received %+v", got)
	}
}

func TestLinkSendBeforeOpenFails(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1})
	if err := a.SendIPv4([]byte{1}); err != ErrLinkDown {
		t.Errorf("err = %v, want ErrLinkDown", err)
	}
}

func TestLinkHeaderCompressionNegotiation(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, WantPFC: true, WantACFC: true,
		AllowPFC: true, AllowACFC: true, IPAddr: [4]byte{10, 0, 0, 1}})
	b := NewLink(LinkConfig{Magic: 2, AllowPFC: true, AllowACFC: true,
		IPAddr: [4]byte{10, 0, 0, 2}})
	bringUp(t, a, b)
	// b grants PFC/ACFC to a's receive direction; b's transmit toward a
	// is therefore compressed. Verify data still round trips both ways.
	pay := bytes.Repeat([]byte{0xAA}, 40)
	if err := b.SendIPv4(pay); err != nil {
		t.Fatal(err)
	}
	if err := a.SendIPv4(pay); err != nil {
		t.Fatal(err)
	}
	pump(t, a, b, 100)
	if got := a.Received(); len(got) != 1 || !bytes.Equal(got[0].Payload, pay) {
		t.Fatalf("a received %+v", got)
	}
	if got := b.Received(); len(got) != 1 || !bytes.Equal(got[0].Payload, pay) {
		t.Fatalf("b received %+v", got)
	}
}

func TestLinkFCS16(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, FCS: FCS16, IPAddr: [4]byte{10, 0, 0, 1}})
	b := NewLink(LinkConfig{Magic: 2, FCS: FCS16, IPAddr: [4]byte{10, 0, 0, 2}})
	bringUp(t, a, b)
	if err := a.SendIPv4([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	pump(t, a, b, 100)
	if got := b.Received(); len(got) != 1 {
		t.Fatalf("received %+v", got)
	}
}

func TestLinkDynamicAddressAssignment(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1}) // no address: request one
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{192, 168, 0, 1},
		AssignPeer: [4]byte{192, 168, 0, 42}})
	bringUp(t, a, b)
	if a.LocalIP() != [4]byte{192, 168, 0, 42} {
		t.Errorf("assigned address = %v", a.LocalIP())
	}
}

func TestLinkSameMagicStillConverges(t *testing.T) {
	ra := rand.New(rand.NewSource(1))
	rb := rand.New(rand.NewSource(2))
	a := NewLink(LinkConfig{Magic: 0xDEAD, Rand: ra.Uint32, IPAddr: [4]byte{10, 0, 0, 1}})
	b := NewLink(LinkConfig{Magic: 0xDEAD, Rand: rb.Uint32, IPAddr: [4]byte{10, 0, 0, 2}})
	bringUp(t, a, b)
}

func TestLinkCorruptedFramesCounted(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2}})
	bringUp(t, a, b)
	if err := a.SendIPv4([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	out := a.Output()
	// Flip a payload bit (not a flag).
	for i := 2; i < len(out); i++ {
		if out[i] != 0x7E && out[i] != 0x7D && out[i]^0x04 != 0x7E && out[i]^0x04 != 0x7D {
			out[i] ^= 0x04
			break
		}
	}
	b.Input(out)
	if got := b.Received(); len(got) != 0 {
		t.Fatalf("corrupt frame delivered: %+v", got)
	}
	if b.RxErrors == 0 {
		t.Error("corruption not counted")
	}
}

func TestLinkTerminate(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2}})
	bringUp(t, a, b)
	a.Close()
	pump(t, a, b, 100)
	if a.Opened() {
		t.Error("a still opened after close")
	}
	if b.Opened() {
		t.Error("b still opened after peer terminate")
	}
	if err := a.SendIPv4([]byte{1}); err != ErrLinkDown {
		t.Error("send after close must fail")
	}
}

func TestWidthHelpers(t *testing.T) {
	if Width8.Octets() != 1 || Width8.Bits() != 8 {
		t.Error("Width8")
	}
	if Width32.Octets() != 4 || Width32.Bits() != 32 {
		t.Error("Width32")
	}
}

func TestFacadeSystemSmoke(t *testing.T) {
	sys := NewSystem(Width32)
	sys.Send(TxJob{Protocol: ProtoIPv4, Payload: []byte{1, 2, 3, 4}})
	if !sys.RunUntilIdle(100000) {
		t.Fatal("system did not drain")
	}
	got := sys.Received()
	if len(got) != 1 || got[0].Err != nil {
		t.Fatalf("received %+v", got)
	}
}

func TestFacadeSynthesize(t *testing.T) {
	rows8 := Synthesize(Width8)
	rows32 := Synthesize(Width32)
	if len(rows8) != 2 || len(rows32) != 2 {
		t.Fatal("row counts")
	}
	if rows32[0].LUTs <= rows8[0].LUTs {
		t.Error("32-bit system must be larger")
	}
	if len(EscapeModuleTable()) != 2 {
		t.Error("escape module table")
	}
	if r := AreaRatios(); r.EscapeGenLUT < 10 {
		t.Errorf("ratios = %+v", r)
	}
}

func TestLinkDownAndRecovery(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2}})
	bringUp(t, a, b)
	// Physical bounce.
	a.Down()
	b.Down()
	if a.Opened() || a.IPReady() {
		t.Fatal("link still up after Down")
	}
	a.Output() // discard stale traffic
	b.Output()
	a.Up()
	b.Up()
	pump(t, a, b, 1000)
	if !a.IPReady() || !b.IPReady() {
		t.Fatal("did not recover after bounce")
	}
}

func TestLinkHasOutputAndMRU(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, MRU: 900, IPAddr: [4]byte{10, 0, 0, 1}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2}})
	if a.HasOutput() {
		t.Error("fresh link has output")
	}
	a.Open()
	if !a.HasOutput() {
		// Output only appears after Up (scr fires on Up via Starting).
		a.Up()
	}
	b.Open()
	b.Up()
	pump(t, a, b, 1000)
	if !a.Opened() {
		t.Fatal("bring-up failed")
	}
	// b's transmit direction is governed by a's requested MRU.
	if got := b.NegotiatedMRU(); got != 900 {
		t.Errorf("b NegotiatedMRU = %d, want 900", got)
	}
	a.SendIPv4([]byte{1})
	if !a.HasOutput() {
		t.Error("no output after send")
	}
}

func TestReliableStatsWithoutStation(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1})
	if tx, rx, re, rj := a.ReliableStats(); tx+rx+re+rj != 0 {
		t.Error("stats on non-reliable link")
	}
	if a.Reliable() {
		t.Error("Reliable() on plain link")
	}
}

func TestAuthNameDefaultsToIdentity(t *testing.T) {
	c := AuthConfig{Identity: "zoe"}
	if c.name() != "zoe" {
		t.Errorf("name = %q", c.name())
	}
	c.Name = "gw"
	if c.name() != "gw" {
		t.Errorf("name = %q", c.name())
	}
}

func TestAuthenticatedPeerPAP(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1},
		Auth: AuthConfig{Require: AuthPAP, Secrets: map[string]string{"u": "p"}}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2},
		Auth: AuthConfig{Identity: "u", Secret: "p"}})
	a.Open()
	b.Open()
	a.Up()
	b.Up()
	pump(t, a, b, 1000)
	if a.AuthenticatedPeer() != "u" {
		t.Errorf("peer = %q", a.AuthenticatedPeer())
	}
	if b.AuthenticatedPeer() != "" {
		t.Errorf("non-authenticator peer = %q", b.AuthenticatedPeer())
	}
}

func TestEchoKeepaliveSustainsLink(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, EchoPeriod: 10, IPAddr: [4]byte{10, 0, 0, 1}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2}})
	bringUp(t, a, b)
	now := int64(0)
	for i := 0; i < 10; i++ {
		now += 10
		a.Advance(now)
		pump(t, a, b, 100) // echoes answered promptly
	}
	if !a.Opened() {
		t.Fatal("healthy link went down")
	}
	if a.EchoTimeouts != 0 {
		t.Errorf("EchoTimeouts = %d", a.EchoTimeouts)
	}
}

func TestEchoKeepaliveDetectsDeadPeer(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, EchoPeriod: 10, EchoMisses: 3, IPAddr: [4]byte{10, 0, 0, 1}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2}})
	bringUp(t, a, b)
	// Peer goes silent: discard everything a sends.
	now := int64(0)
	for i := 0; i < 8 && a.Opened(); i++ {
		now += 10
		a.Advance(now)
		a.Output() // into the void
	}
	if a.Opened() {
		t.Fatal("dead peer not detected")
	}
	if a.EchoTimeouts != 1 {
		t.Errorf("EchoTimeouts = %d", a.EchoTimeouts)
	}
}
