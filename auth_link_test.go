package gigapos

import "testing"

func TestLinkCHAPAuthentication(t *testing.T) {
	// a is the access server demanding CHAP; b dials in.
	a := NewLink(LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1},
		Auth: AuthConfig{Require: AuthCHAP, Name: "server",
			Secrets: map[string]string{"bob": "hunter2"}}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2},
		Auth: AuthConfig{Identity: "bob", Secret: "hunter2"}})
	a.Open()
	b.Open()
	a.Up()
	b.Up()
	pump(t, a, b, 1000)
	if !a.Opened() || !b.Opened() {
		t.Fatal("LCP did not open")
	}
	if !a.IPReady() || !b.IPReady() {
		t.Fatal("network phase not reached after CHAP")
	}
	if a.AuthenticatedPeer() != "bob" {
		t.Errorf("authenticated peer = %q", a.AuthenticatedPeer())
	}
	// Data flows normally afterwards.
	if err := b.SendIPv4([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	pump(t, a, b, 100)
	if got := a.Received(); len(got) != 1 {
		t.Fatalf("received %d", len(got))
	}
}

func TestLinkPAPAuthentication(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1},
		Auth: AuthConfig{Require: AuthPAP,
			Secrets: map[string]string{"alice": "pw1"}}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2},
		Auth: AuthConfig{Identity: "alice", Secret: "pw1"}})
	a.Open()
	b.Open()
	a.Up()
	b.Up()
	pump(t, a, b, 1000)
	if !a.IPReady() || !b.IPReady() {
		t.Fatal("network phase not reached after PAP")
	}
	if a.AuthenticatedPeer() != "alice" {
		t.Errorf("peer = %q", a.AuthenticatedPeer())
	}
}

func TestLinkAuthFailureTearsDown(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1},
		Auth: AuthConfig{Require: AuthCHAP, Name: "server",
			Secrets: map[string]string{"bob": "hunter2"}}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2},
		Auth: AuthConfig{Identity: "bob", Secret: "WRONG"}})
	a.Open()
	b.Open()
	a.Up()
	b.Up()
	pump(t, a, b, 1000)
	if a.IPReady() || b.IPReady() {
		t.Fatal("network phase reached with bad credentials")
	}
	if a.AuthFailures == 0 {
		t.Error("failure not counted")
	}
	if a.Opened() {
		t.Error("authenticator should have closed the link")
	}
}

func TestLinkNoCredentialsGetsRejectedDemand(t *testing.T) {
	// b has no credentials at all: it rejects a's auth option; a's
	// policy keeps demanding (nak/rej loop ends in a's option being
	// dropped or the link stuck) — the link must not silently open the
	// network phase as authenticated.
	a := NewLink(LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1},
		Auth: AuthConfig{Require: AuthCHAP, Name: "server",
			Secrets: map[string]string{"bob": "hunter2"}}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2}})
	a.Open()
	b.Open()
	a.Up()
	b.Up()
	pump(t, a, b, 1000)
	if a.AuthenticatedPeer() != "" {
		t.Error("phantom authentication")
	}
	if a.IPReady() {
		t.Error("server must not reach network phase without auth")
	}
}

func TestLinkMutualCHAP(t *testing.T) {
	// Both sides demand CHAP of each other.
	a := NewLink(LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1},
		Auth: AuthConfig{Require: AuthCHAP, Name: "east",
			Secrets:  map[string]string{"west": "w-secret"},
			Identity: "east", Secret: "e-secret"}})
	b := NewLink(LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2},
		Auth: AuthConfig{Require: AuthCHAP, Name: "west",
			Secrets:  map[string]string{"east": "e-secret"},
			Identity: "west", Secret: "w-secret"}})
	a.Open()
	b.Open()
	a.Up()
	b.Up()
	pump(t, a, b, 1000)
	if !a.IPReady() || !b.IPReady() {
		t.Fatal("mutual CHAP did not complete")
	}
	if a.AuthenticatedPeer() != "west" || b.AuthenticatedPeer() != "east" {
		t.Errorf("peers: %q / %q", a.AuthenticatedPeer(), b.AuthenticatedPeer())
	}
}
