#!/bin/sh
# verify.sh — the repo's full verification gate:
#   go vet, go build, go test -race, and a short fuzz smoke of every
#   Fuzz* target (5s each by default; FUZZTIME overrides).
#
# Usage: ./scripts/verify.sh   (or: make verify)
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${FUZZTIME:-5s}"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (telemetry concurrency gate) =="
# The telemetry registry/tracer promise lock-free concurrent scraping;
# run their concurrency tests under the race detector first and with
# more iterations so a probe-side data race fails loudly before the
# full suite runs.
go test -race -count 2 ./internal/telemetry

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke ($FUZZTIME per target) =="
# Each fuzz target must run alone: `go test -fuzz` accepts only one
# match per package invocation.
go list ./... | while read -r pkg; do
    dir=$(go list -f '{{.Dir}}' "$pkg")
    targets=$(grep -ho 'func Fuzz[A-Za-z0-9_]*' "$dir"/*_test.go 2>/dev/null |
        sed 's/func //' | sort -u) || true
    [ -n "$targets" ] || continue
    for t in $targets; do
        echo "-- $pkg $t"
        go test -run '^$' -fuzz "^${t}\$" -fuzztime "$FUZZTIME" "$pkg"
    done
done

echo "verify: OK"
