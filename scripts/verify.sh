#!/bin/sh
# verify.sh — the repo's full verification gate:
#   go vet, go build, go test -race, the flight-recorder and
#   stage-profile overhead gates, the chaos/transport smokes, a 30s
#   differential fuzz of the fused RX kernel (FUSED_FUZZTIME overrides),
#   a decode-throughput floor vs the newest BENCH_*.json snapshot, the
#   benchmark trend gate, and a short fuzz smoke of every Fuzz* target
#   (5s each by default; FUZZTIME overrides).
#
# Usage: ./scripts/verify.sh   (or: make verify)
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${FUZZTIME:-5s}"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (telemetry concurrency gate) =="
# The telemetry registry/tracer promise lock-free concurrent scraping;
# run their concurrency tests under the race detector first and with
# more iterations so a probe-side data race fails loudly before the
# full suite runs.
go test -race -count 2 ./internal/telemetry

echo "== go test -race =="
go test -race ./...

echo "== flight recorder overhead gate =="
# The armed encode benchmark must stay zero-alloc and within
# FLIGHT_OVERHEAD_PCT (default 5) percent of the unarmed baseline —
# the recorder's contract is an invisible transmit fast path.
FLIGHT_BENCHTIME="${FLIGHT_BENCHTIME:-5000x}"
bench_out=$(go test -run '^$' -bench '^BenchmarkLinkEncodeSteady(Flight)?$' \
    -benchtime "$FLIGHT_BENCHTIME" -count 3 -benchmem .)
printf '%s\n' "$bench_out"
printf '%s\n' "$bench_out" | awk -v tol="${FLIGHT_OVERHEAD_PCT:-5}" '
$1 ~ /^BenchmarkLinkEncodeSteady(-[0-9]+)?$/ {
    if (nb == 0 || $3 < base) base = $3     # best-of-count: noise floor
    nb++
}
$1 ~ /^BenchmarkLinkEncodeSteadyFlight(-[0-9]+)?$/ {
    if (na == 0 || $3 < armed) armed = $3
    na++
    if ($(NF-1) + 0 != 0) { bad_allocs = $(NF-1) }
}
END {
    if (nb == 0 || na == 0) { print "flight gate: benchmark output missing"; exit 1 }
    if (bad_allocs != "") { printf "flight gate: armed allocs/op = %s, want 0\n", bad_allocs; exit 1 }
    if (armed > base * (1 + tol / 100)) {
        printf "flight gate: armed %.0f ns/op vs base %.0f ns/op exceeds %s%%\n", armed, base, tol
        exit 1
    }
    printf "flight gate: OK (armed %.0f ns/op vs base %.0f ns/op, 0 allocs, tol %s%%)\n", armed, base, tol
}'

echo "== stage-profile overhead gate =="
# The armed engine benchmark (stage cost accounting, default 1-in-32
# sampling) must stay zero-alloc and within PROF_OVERHEAD_PCT
# (default 8) percent of the disarmed baseline at shards=1 — the
# observatory's contract is that watching the hot path does not bend
# it. The stamp cost itself is ~0.01% of a step (E17); the ns/op
# tolerance exists to catch armed-path pathologies, and is set to what
# best-of-count floors actually converge to on a steal-prone host —
# the fused RX kernel halved the step time (E18), so the same absolute
# wall noise is now a larger fraction of it. The allocs/op == 0
# assertion below is exact and carries the gate.
PROF_BENCHTIME="${PROF_BENCHTIME:-2000x}"
prof_out=$(go test -run '^$' \
    -bench '^BenchmarkEngineAggregate(Profiled)?$/^links=8$/^shards=1$' \
    -benchtime "$PROF_BENCHTIME" -count "${PROF_GATE_COUNT:-6}" -benchmem .)
printf '%s\n' "$prof_out"
printf '%s\n' "$prof_out" | awk -v tol="${PROF_OVERHEAD_PCT:-8}" '
$1 ~ /^BenchmarkEngineAggregate\/links=8\/shards=1(-[0-9]+)?$/ {
    if (nb == 0 || $3 < base) base = $3     # best-of-count: noise floor
    nb++
}
$1 ~ /^BenchmarkEngineAggregateProfiled\/links=8\/shards=1(-[0-9]+)?$/ {
    if (na == 0 || $3 < armed) armed = $3
    na++
    if ($(NF-1) + 0 != 0) { bad_allocs = $(NF-1) }
}
END {
    if (nb == 0 || na == 0) { print "prof gate: benchmark output missing"; exit 1 }
    if (bad_allocs != "") { printf "prof gate: armed allocs/op = %s, want 0\n", bad_allocs; exit 1 }
    if (armed > base * (1 + tol / 100)) {
        printf "prof gate: armed %.0f ns/op vs base %.0f ns/op exceeds %s%%\n", armed, base, tol
        exit 1
    }
    printf "prof gate: OK (armed %.0f ns/op vs base %.0f ns/op, 0 allocs, tol %s%%)\n", armed, base, tol
}'

echo "== armed latency-tracing gate =="
# The distributed-observatory steady state — real UDP loopback pair,
# v2 latency-tracing header, flight recorders and capture correlation
# armed — must stay exactly 0 allocs/op: tracing rides the pooled
# buffers or it does not ship.
LAT_BENCHTIME="${LAT_BENCHTIME:-5000x}"
lat_out=$(go test -run '^$' -bench '^BenchmarkTransportUDPSteady$' \
    -benchtime "$LAT_BENCHTIME" -count 3 -benchmem .)
printf '%s\n' "$lat_out"
printf '%s\n' "$lat_out" | awk '
/--- FAIL/ { failed = 1 }
$1 ~ /^BenchmarkTransportUDPSteady(-[0-9]+)?$/ && $NF == "allocs/op" {
    n++
    if ($(NF-1) + 0 != 0) { bad_allocs = $(NF-1) }
}
END {
    if (failed) { print "latency gate: benchmark run FAILed"; exit 1 }
    if (n == 0) { print "latency gate: benchmark output missing"; exit 1 }
    if (bad_allocs != "") { printf "latency gate: armed allocs/op = %s, want 0\n", bad_allocs; exit 1 }
    printf "latency gate: OK (%d runs, 0 allocs/op with tracing + correlation armed)\n", n
}'

echo "== chaos scenario smoke =="
# Run the committed protection drills end-to-end through the p5sim
# -scenario mode: a failed SLO assertion makes p5sim exit non-zero
# and names the .p5fr captures, failing this gate.
scen_bin="$(mktemp -d)/p5sim"
go build -o "$scen_bin" ./cmd/p5sim
for drill in fiber-cut dual-cut noise-resync; do
    echo "-- scenarios/$drill.json"
    "$scen_bin" -scenario "scenarios/$drill.json"
done

echo "== transport chaos smoke (two p5sim processes over UDP loopback) =="
# Two p5sim halves interconnect over real UDP sockets; a 250-tick
# stall window is scripted on the listener's line. Keepalive probes
# keep flowing through a stall, so both halves must ride it out and
# resynchronise losslessly: zero LCP renegotiations, zero rx errors.
net_port=$((20000 + $$ % 20000))
net_dir="$(dirname "$scen_bin")"
"$scen_bin" -listen "127.0.0.1:$net_port" -engine 2 -frames 3000 \
    -net-stall 500:750 > "$net_dir/netA.log" 2>&1 &
net_pid=$!
sleep 1
"$scen_bin" -dial "127.0.0.1:$net_port" -engine 2 -frames 3000 \
    > "$net_dir/netZ.log" 2>&1
wait "$net_pid"
cat "$net_dir/netA.log" "$net_dir/netZ.log"
for log in "$net_dir/netA.log" "$net_dir/netZ.log"; do
    grep '^NET-REPORT ' "$log" | awk '{
        for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
        if (v["delivered"] + 0 == 0) { print "transport smoke: nothing delivered"; exit 1 }
        if (v["renegotiations"] + 0 != 0) {
            printf "transport smoke: %s LCP renegotiations riding the stall, want 0\n", v["renegotiations"]; exit 1
        }
        if (v["rx_errors"] + 0 != 0) { printf "transport smoke: rx_errors=%s, want 0\n", v["rx_errors"]; exit 1 }
        found = 1
    }
    END { if (!found) { print "transport smoke: no NET-REPORT line"; exit 1 } }'
done
echo "transport smoke: OK (stall ridden out, zero renegotiations)"

echo "== distributed fleet smoke (two instances, one board, correlated captures) =="
# Two p5sim instances interconnect over UDP with flight recorders and
# telemetry endpoints armed; a scripted blackout cuts the line mid-run.
# The gate asserts the three distributed-observatory claims end to end:
# `p5stat -fleet` renders both instances in one board, the blackout
# yields exactly one transport-los capture per end, and the pair shares
# an incident ID that `p5trace -join` merges into one timeline.
fleet_port=$((21000 + $$ % 20000))
tport_a=$((fleet_port + 211))
tport_z=$((fleet_port + 212))
fdir_a="$net_dir/flightA"
fdir_z="$net_dir/flightZ"
mkdir -p "$fdir_a" "$fdir_z"
go build -o "$net_dir/p5stat" ./cmd/p5stat
go build -o "$net_dir/p5trace" ./cmd/p5trace
"$scen_bin" -listen "127.0.0.1:$fleet_port" -engine 1 -frames 3000 \
    -net-blackout 500:1100 -flight "$fdir_a" \
    -telemetry "127.0.0.1:$tport_a" > "$net_dir/fleetA.log" 2>&1 &
fleet_a_pid=$!
sleep 1
"$scen_bin" -dial "127.0.0.1:$fleet_port" -engine 1 -frames 3000 \
    -flight "$fdir_z" \
    -telemetry "127.0.0.1:$tport_z" > "$net_dir/fleetZ.log" 2>&1 &
fleet_z_pid=$!
# The -telemetry endpoints serve forever; poll for the reports, scrape,
# then kill both halves.
fleet_up=0
for _ in $(seq 1 120); do
    if grep -q '^NET-REPORT ' "$net_dir/fleetA.log" 2>/dev/null &&
       grep -q '^NET-REPORT ' "$net_dir/fleetZ.log" 2>/dev/null; then
        fleet_up=1
        break
    fi
    sleep 1
done
if [ "$fleet_up" != 1 ]; then
    echo "fleet smoke: instances never reported"
    cat "$net_dir/fleetA.log" "$net_dir/fleetZ.log"
    exit 1
fi
cat "$net_dir/fleetA.log" "$net_dir/fleetZ.log"
"$net_dir/p5stat" -fleet "127.0.0.1:$tport_a,127.0.0.1:$tport_z" > "$net_dir/fleet-board.txt"
cat "$net_dir/fleet-board.txt"
for want in "127.0.0.1:$tport_a" "127.0.0.1:$tport_z" "wire v2" "oneway-p50" "port0"; do
    grep -q -- "$want" "$net_dir/fleet-board.txt" || {
        echo "fleet smoke: board is missing \"$want\""
        exit 1
    }
done
kill "$fleet_a_pid" "$fleet_z_pid" 2>/dev/null || true
wait "$fleet_a_pid" "$fleet_z_pid" 2>/dev/null || true
los_a=$(ls "$fdir_a"/*transport-los.p5fr 2>/dev/null | wc -l)
los_z=$(ls "$fdir_z"/*transport-los.p5fr 2>/dev/null | wc -l)
if [ "$los_a" -ne 1 ] || [ "$los_z" -ne 1 ]; then
    echo "fleet smoke: transport-los captures A=$los_a Z=$los_z, want exactly 1 each"
    ls -l "$fdir_a" "$fdir_z"
    exit 1
fi
"$net_dir/p5trace" -join "$fdir_a"/*transport-los.p5fr "$fdir_z"/*transport-los.p5fr \
    > "$net_dir/fleet-join.txt"
cat "$net_dir/fleet-join.txt"
grep -q '^incident ' "$net_dir/fleet-join.txt" || {
    echo "fleet smoke: joined timeline missing incident header"
    exit 1
}
echo "fleet smoke: OK (one board, one correlated capture pair, joined timeline)"
rm -rf "$(dirname "$scen_bin")"

echo "== fused decode fuzz smoke (${FUSED_FUZZTIME:-30s}) =="
# The fused single-pass destuff+CRC kernel is gated by its differential
# fuzzer: a longer dedicated run than the generic smoke below, because
# this target compares two live decoder implementations (span-fused vs
# byte-at-a-time reference) and any divergence is a correctness bug in
# the receive hot path.
go test -run '^$' -fuzz '^FuzzFusedDecode$' \
    -fuzztime "${FUSED_FUZZTIME:-30s}" ./internal/hdlc

echo "== decode throughput floor gate =="
# The fused RX kernel's headline number must not regress: run the
# steady-state decode benchmark live and compare its MB/s against the
# newest BENCH_*.json snapshot. More than DECODE_FLOOR_PCT (default 20)
# percent below the snapshot fails. With no snapshot this is a no-op.
# The default matches the host's observed same-day wall-clock spread
# (996-1218 MB/s under steal, ~20% around the mean): the snapshot may
# catch a fast phase and this gate a slow one. It still fails on any
# real kernel regression; the deterministic 0 allocs/op gates above
# are the noise-immune protection.
snap=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1)
if [ -n "$snap" ]; then
    snap_mbs=$(grep -o '"name": "BenchmarkLinkDecodeSteady"[^}]*' "$snap" |
        grep -o '"MB_per_s": [0-9.]*' | awk '{print $2}')
    if [ -n "$snap_mbs" ]; then
        DECODE_BENCHTIME="${DECODE_BENCHTIME:-5000x}"
        dec_out=$(go test -run '^$' -bench '^BenchmarkLinkDecodeSteady$' \
            -benchtime "$DECODE_BENCHTIME" -count 3 -benchmem .)
        printf '%s\n' "$dec_out"
        printf '%s\n' "$dec_out" | awk -v snap="$snap_mbs" \
            -v tol="${DECODE_FLOOR_PCT:-20}" -v file="$snap" '
        $1 ~ /^BenchmarkLinkDecodeSteady(-[0-9]+)?$/ {
            for (i = 2; i < NF; i++)
                if ($(i + 1) == "MB/s" && $i + 0 > best) best = $i + 0
        }
        END {
            if (best == 0) { print "decode floor: benchmark output missing MB/s"; exit 1 }
            floor = snap * (1 - tol / 100)
            if (best < floor) {
                printf "decode floor: %.0f MB/s vs snapshot %.0f MB/s (%s) exceeds -%s%%\n", \
                    best, snap, file, tol
                exit 1
            }
            printf "decode floor: OK (%.0f MB/s vs snapshot %.0f MB/s in %s, tol %s%%)\n", \
                best, snap, file, tol
        }'
    else
        echo "decode floor: no BenchmarkLinkDecodeSteady in $snap, skipping"
    fi
else
    echo "decode floor: no BENCH_*.json snapshot, skipping"
fi

echo "== benchmark trend =="
# Compare the two newest BENCH_*.json snapshots; >10% ns/op regression
# fails. With fewer than two snapshots this is a no-op.
./scripts/bench-trend

echo "== fuzz smoke ($FUZZTIME per target) =="
# Each fuzz target must run alone: `go test -fuzz` accepts only one
# match per package invocation.
go list ./... | while read -r pkg; do
    dir=$(go list -f '{{.Dir}}' "$pkg")
    targets=$(grep -ho 'func Fuzz[A-Za-z0-9_]*' "$dir"/*_test.go 2>/dev/null |
        sed 's/func //' | sort -u) || true
    [ -n "$targets" ] || continue
    for t in $targets; do
        echo "-- $pkg $t"
        go test -run '^$' -fuzz "^${t}\$" -fuzztime "$FUZZTIME" "$pkg"
    done
done

echo "verify: OK"
