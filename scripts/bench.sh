#!/bin/sh
# bench.sh — machine-readable benchmark trajectory:
#   runs the BenchmarkSystemSteady matrix (datapath width × telemetry
#   on/off), the sharded line-card engine scale-out
#   (BenchmarkEngineAggregate, plus its stage-profiled twin
#   BenchmarkEngineAggregateProfiled), the steady-state link fast
#   paths (BenchmarkLinkEncodeSteady / BenchmarkLinkEncodeSteadyFlight /
#   BenchmarkLinkDecodeSteady), the fused RX kernel escape-density
#   sweep (BenchmarkTokenizerFeed), and the armed distributed-
#   observatory socket loop (BenchmarkTransportUDPSteady), and writes
#   BENCH_<date>.json with ns/op, MB/s, allocs/op and the custom
#   metrics (bits/cycle, frames/s, Gbps-line) per variant, so
#   successive PRs can be compared without scraping test logs.
#
# Usage: ./scripts/bench.sh [outfile]   (or: make bench-json)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_$(date +%Y%m%d).json}"
benchtime="${BENCHTIME:-3x}"

raw=$(go test -run '^$' \
    -bench '^(BenchmarkSystemSteady|BenchmarkEngineAggregate|BenchmarkEngineAggregateProfiled|BenchmarkLinkEncodeSteady|BenchmarkLinkEncodeSteadyFlight|BenchmarkLinkDecodeSteady|BenchmarkTokenizerFeed|BenchmarkTransportUDPSteady)$' \
    -benchtime "$benchtime" -benchmem .)

printf '%s\n' "$raw" | awk -v date="$(date +%Y-%m-%d)" -v go="$(go version | awk '{print $3}')" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", date, go
    n = 0
}
/^Benchmark(System|EngineAggregate|LinkEncodeSteady|LinkDecodeSteady|TokenizerFeed|TransportUDPSteady)/ {
    # BenchmarkSystemSteady/width=8bit/telemetry=false-8  5  17448822 ns/op  1.72 MB/s  7.779 bits/cycle  0 B/op  0 allocs/op
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[\/]/, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { printf "\n  ]\n}\n" }
' > "$out"

echo "bench.sh: wrote $out"
