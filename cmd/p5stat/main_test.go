package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fixtureServer serves a registry snapshot and trace the way p5sim
// does, with counters that advance on every /metrics scrape so the
// interval mode has a delta to show.
func fixtureServer(t *testing.T) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(64)
	cycles := reg.Counter("p5_cycles_total", "clock")
	busy := reg.Counter("p5_unit_busy_cycles_total", "busy", telemetry.L("unit", "framer"))
	occ := reg.Counter("p5_wire_occupied_cycles_total", "occ", telemetry.L("wire", "tx.line"))
	stall := reg.Counter("p5_wire_stalls_total", "stall", telemetry.L("wire", "tx.line"))
	xfer := reg.Counter("p5_wire_transfers_total", "xfer", telemetry.L("wire", "tx.line"))
	frames := reg.Counter("p5_tx_frames_total", "frames")
	depth := reg.Gauge("p5_tx_sorter_occupancy", "fifo")
	depth.Set(3)
	tr.Emit(100, "sonet", "defect-raise", "LOS", 4, 4)
	advance := func() {
		cycles.Add(1000)
		busy.Add(600)
		occ.Add(250)
		stall.Add(40)
		xfer.Add(900)
		frames.Add(10)
	}
	advance()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg.WritePrometheus(w)
		advance()
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) { tr.WriteJSON(w) })
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write([]byte(`{
		 "slos": [{"name": "port0", "window_ticks": 2048, "loss_target": 0.001,
		  "p99_budget_ticks": 8, "failover_budget_ticks": 400,
		  "loss_burn": 5.25, "p99_burn": 0.5, "failover_burn": 0,
		  "worst_burn": 5.25, "budget_remaining": 0.4, "p99_ticks": 4, "alarm": true}],
		 "links": [{"link": "port0_a", "tracked": 900, "lost": 3, "in_flight": 2,
		  "p99_ticks": 4, "captures": 1,
		  "exemplars": [{"le": 4, "id": 117, "value": 3, "at": 5000, "seq": 116},
		   {"le": 9223372036854775807, "id": 903, "value": 700, "at": 9000, "seq": 902}]}]}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, reg
}

func TestSLOBoardReport(t *testing.T) {
	srv, _ := fixtureServer(t)
	var out bytes.Buffer
	if err := run(&out, srv.URL, 0, 0, false, true, true, false, ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"slo board:",
		"port0", "5.25", "40.0%", "ALARM", // burn, budget remaining, alarm flag
		"port0_a", "900", // link row: tracked
		"exemplars port0_a:",
		"117",  // resolvable frame id
		"+Inf", // overflow bucket rendered symbolically
	} {
		if !strings.Contains(got, want) {
			t.Errorf("slo report missing %q:\n%s", want, got)
		}
	}
}

func TestSLOWithoutExemplarsOmitsThem(t *testing.T) {
	srv, _ := fixtureServer(t)
	var out bytes.Buffer
	if err := run(&out, srv.URL, 0, 0, false, true, false, false, ""); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "exemplars ") {
		t.Errorf("-slo alone leaked exemplar rows:\n%s", out.String())
	}
}

func TestSnapshotReport(t *testing.T) {
	srv, _ := fixtureServer(t)
	var out bytes.Buffer
	if err := run(&out, srv.URL, 0, 0, true, false, false, false, ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"p5: 1000 cycles",
		"framer", "60.0", // busy% = 600/1000
		"tx.line", "25.0", "4.0", // occ%, stall%
		"p5_tx_frames_total",
		"defect-raise", // -events trailer
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestIntervalDeltaReport(t *testing.T) {
	srv, _ := fixtureServer(t)
	var out bytes.Buffer
	if err := run(&out, srv.URL, time.Millisecond, 2, false, false, false, false, ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Each window advances by exactly one step, so the delta equals the
	// per-scrape increment, not the lifetime total.
	if !strings.Contains(got, "p5: 1000 cycles") {
		t.Errorf("window delta not computed:\n%s", got)
	}
	if strings.Count(got, "--- window") != 2 {
		t.Errorf("want 2 window reports:\n%s", got)
	}
	if !strings.Contains(got, "rate/s") {
		t.Errorf("interval report missing rate column:\n%s", got)
	}
}

// TestBenchTrendMode pins the -bench contract the verify gate relies
// on: OK exit on clean trends, a named benchmark in the error when one
// regresses, markdown side output, and a no-op on fresh checkouts.
func TestBenchTrendMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("BENCH_1.json", `{"benchmarks":[
		{"name":"BenchmarkA","ns_per_op":1000},
		{"name":"BenchmarkGone","ns_per_op":50}]}`)

	// One snapshot: nothing to diff, success.
	var out bytes.Buffer
	if err := runBench(&out, dir, 10, ""); err != nil {
		t.Fatalf("single snapshot: %v", err)
	}
	if !strings.Contains(out.String(), "need 2") {
		t.Errorf("single-snapshot note missing:\n%s", out.String())
	}

	// Clean pair with churn: still success, churn annotated.
	write("BENCH_2.json", `{"benchmarks":[
		{"name":"BenchmarkA","ns_per_op":1010},
		{"name":"BenchmarkNew","ns_per_op":70}]}`)
	out.Reset()
	md := filepath.Join(dir, "TREND.md")
	if err := runBench(&out, dir, 10, md); err != nil {
		t.Fatalf("clean pair: %v", err)
	}
	for _, want := range []string{"new      BenchmarkNew", "gone     BenchmarkGone", "trend: OK"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("clean report missing %q:\n%s", want, out.String())
		}
	}
	if b, err := os.ReadFile(md); err != nil || !strings.Contains(string(b), "# Benchmark trend") {
		t.Errorf("markdown report: err=%v body=%q", err, b)
	}

	// Regressed pair: error names the benchmark.
	write("BENCH_3.json", `{"benchmarks":[{"name":"BenchmarkA","ns_per_op":2000}]}`)
	out.Reset()
	err := runBench(&out, dir, 10, "")
	if err == nil {
		t.Fatal("regression did not fail")
	}
	if !strings.Contains(err.Error(), "BenchmarkA") {
		t.Errorf("regression error does not name the benchmark: %v", err)
	}
}

func TestReplayTraceFile(t *testing.T) {
	tr := telemetry.NewTracer(16)
	tr.Emit(1, "link:a", "restart", "", 40, 8)
	tr.Emit(9, "link:a", "recovered", "", 1, 0)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, "", 0, 0, false, false, false, false, path); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "trace: 2 events") ||
		!strings.Contains(got, "link:a/restart") ||
		!strings.Contains(got, "link:a/recovered") {
		t.Errorf("replay output:\n%s", got)
	}
}

// TestTransportTable renders the -transport column set from a
// socket-backed run's transport_* series.
func TestTransportTable(t *testing.T) {
	reg := telemetry.NewRegistry()
	lbl := telemetry.L("line", "port0_a")
	reg.Gauge("transport_up", "live", lbl).Set(1)
	reg.Counter("transport_tx_chunks_total", "tx", lbl).Add(120)
	reg.Counter("transport_rx_chunks_total", "rx", lbl).Add(118)
	reg.Counter("transport_reconnects_total", "reconn", lbl).Add(2)
	reg.Counter("transport_resets_total", "resets", lbl).Add(3)
	reg.Counter("transport_keepalive_probes_total", "probes", lbl).Add(40)
	reg.Counter("transport_keepalive_misses_total", "misses", lbl).Add(5)
	reg.Counter("transport_tx_dropped_total", "txd", lbl).Add(7)
	reg.Counter("transport_rx_dropped_total", "rxd", lbl).Add(1)
	reg.Gauge("transport_queue_depth", "q", lbl).Set(4)
	reg.Gauge("transport_queue_high_water", "qhw", lbl).Set(11)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg.WritePrometheus(w)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var out bytes.Buffer
	if err := run(&out, srv.URL, 0, 0, false, false, false, true, ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	i := strings.Index(got, "transport lines:")
	if i < 0 {
		t.Fatalf("no transport table:\n%s", got)
	}
	row := ""
	for _, line := range strings.Split(got[i:], "\n") {
		if strings.Contains(line, "port0_a") {
			row = line
			break
		}
	}
	if row == "" {
		t.Fatalf("no port0_a row:\n%s", got)
	}
	for _, want := range []string{"up", "120", "118", "2", "3", "40", "5", "7", "1", "4", "11"} {
		if !strings.Contains(row, want) {
			t.Errorf("row %q missing %q", row, want)
		}
	}

	// Without any transport series the table degrades to a note.
	empty := telemetry.NewRegistry()
	emux := http.NewServeMux()
	emux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		empty.WritePrometheus(w)
	})
	esrv := httptest.NewServer(emux)
	defer esrv.Close()
	out.Reset()
	if err := run(&out, esrv.URL, 0, 0, false, false, false, true, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no transport_* series") {
		t.Errorf("empty run output: %q", out.String())
	}
}
