// Command p5stat renders a columnar per-stage utilisation and stall
// report from a running p5sim telemetry endpoint — the software
// equivalent of watching the pipeline's occupancy LEDs. It attaches to
// the Prometheus exposition at /metrics (shared with any ordinary
// scraper), groups series by instrument prefix (p5, p5tx, p5rx,
// sonet), and derives busy and stall percentages from the cycle
// counters.
//
// With -interval the endpoint is rescraped periodically and each
// report shows the delta window, so live runs read as rates rather
// than lifetime totals. With -events the structured trace at /trace is
// dumped after the tables; -replay FILE formats a saved JSON trace
// (the /trace or telemetry.WriteJSON format) without attaching to
// anything. With -slo the error-budget board at /slo is rendered after
// the tables (burn rates, budget remaining, alarms, per-link loss);
// -exemplars adds each link's latency exemplars — bucket upper bound,
// frame id, and the tick it was observed — so a p99 outlier resolves
// to a concrete frame.
//
// With -transport the per-line transport table is rendered after the
// stage tables (socket-backed p5sim runs export the transport_* series):
// liveness, chunk counters, reconnects and resets, keepalive probe and
// miss counts, and send-queue backpressure high-water marks.
//
// With -bench p5stat leaves the live endpoint alone and becomes the
// bench trend analyser: it loads every BENCH_*.json snapshot from -dir
// (written by scripts/bench.sh), prints the per-benchmark time series
// with a regression verdict for the two newest snapshots, and exits
// non-zero naming the worst regressed benchmark when any ns/op grew
// more than -trend-pct. -md FILE additionally writes a markdown trend
// report. Benchmarks appearing or disappearing between snapshots are
// annotated, never an error; fewer than two snapshots is a no-op.
//
// With -fleet ADDR,ADDR,... p5stat becomes the fleet board: every
// address's /metrics and /status are scraped, merged under per-instance
// labels, and rendered as one columnar view — instance identity
// (health, uptime, wire version, armed subsystems), per-line transport
// state with one-way latency p50/p99 and RTT p50, and the SLO
// burn-rate/alarm rows across all instances. Unreachable instances
// render as DOWN rows instead of failing the board.
//
// Usage:
//
//	p5stat [-url http://127.0.0.1:8080] [-interval 2s] [-n 5] [-events] [-slo] [-exemplars] [-transport]
//	p5stat -fleet 127.0.0.1:8080,127.0.0.1:8081
//	p5stat -replay trace.json
//	p5stat -bench [-dir .] [-trend-pct 10] [-md TREND.md]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/flight"
	"repro/internal/obsnet"
	"repro/internal/telemetry"
	"repro/internal/trend"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "p5sim telemetry endpoint base URL")
	interval := flag.Duration("interval", 0, "rescrape period (0 = one snapshot report)")
	count := flag.Int("n", 0, "stop after this many interval reports (0 = run until killed)")
	events := flag.Bool("events", false, "dump the structured event trace from /trace after the report")
	transportTab := flag.Bool("transport", false, "render the per-line transport table (liveness, reconnects, keepalive misses, queue high-water) from the transport_* series")
	slo := flag.Bool("slo", false, "render the error-budget board from /slo after the report")
	exemplars := flag.Bool("exemplars", false, "with the /slo board, list each link's latency exemplars")
	replay := flag.String("replay", "", "format events from a saved JSON trace file instead of attaching")
	fleet := flag.String("fleet", "", "comma-separated telemetry addresses; render the cross-instance fleet board instead of attaching to one endpoint")
	bench := flag.Bool("bench", false, "analyse BENCH_*.json trend snapshots instead of attaching")
	dir := flag.String("dir", ".", "with -bench, directory holding the BENCH_*.json snapshots")
	trendPct := flag.Float64("trend-pct", 10, "with -bench, ns/op growth beyond this percent is a regression")
	md := flag.String("md", "", "with -bench, also write a markdown trend report to this file")
	flag.Parse()

	if *bench {
		if err := runBench(os.Stdout, *dir, *trendPct, *md); err != nil {
			fmt.Fprintln(os.Stderr, "p5stat:", err)
			os.Exit(1)
		}
		return
	}
	if *fleet != "" {
		if err := runFleet(os.Stdout, *fleet); err != nil {
			fmt.Fprintln(os.Stderr, "p5stat:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, *url, *interval, *count, *events, *slo, *exemplars, *transportTab, *replay); err != nil {
		fmt.Fprintln(os.Stderr, "p5stat:", err)
		os.Exit(1)
	}
}

// runFleet is the fleet-board mode: scrape every listed instance and
// render the cross-instance board. A fully dark fleet is an error (a
// typo'd address list should not exit 0); partial reachability is the
// board's job to show.
func runFleet(w io.Writer, addrList string) error {
	var addrs []string
	for _, a := range strings.Split(addrList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("-fleet: no addresses")
	}
	instances := obsnet.ScrapeAll(addrs)
	if err := obsnet.WriteFleetBoard(w, instances); err != nil {
		return err
	}
	alive := 0
	for _, in := range instances {
		if in.Err == nil {
			alive++
		}
	}
	if alive == 0 {
		return fmt.Errorf("no instance reachable (%d scraped)", len(instances))
	}
	return nil
}

// runBench is the trend-analytics mode. A regression is an error — the
// message names the worst benchmark so CI fails with a culprit, not
// just a threshold.
func runBench(w io.Writer, dir string, tolPct float64, mdPath string) error {
	snaps, err := trend.Load(dir)
	if err != nil {
		return err
	}
	r := trend.Analyze(snaps, tolPct)
	if err := r.WriteText(w); err != nil {
		return err
	}
	if mdPath != "" {
		f, err := os.Create(mdPath)
		if err != nil {
			return err
		}
		if err := r.WriteMarkdown(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trend: markdown report written to %s\n", mdPath)
	}
	if len(r.Regressions) > 0 {
		worst := r.Regressions[0]
		return fmt.Errorf("bench regression: %s %+.1f%% (%.0f -> %.0f ns/op, tolerance %g%%)",
			worst.Name, worst.DeltaPct, worst.OldNs, worst.NewNs, tolPct)
	}
	return nil
}

func run(w io.Writer, url string, interval time.Duration, count int, events, slo, exemplars, transportTab bool, replay string) error {
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return err
		}
		defer f.Close()
		evs, err := telemetry.ReadEvents(f)
		if err != nil {
			return fmt.Errorf("%s: %v", replay, err)
		}
		writeEvents(w, evs)
		return nil
	}

	cur, err := scrape(url + "/metrics")
	if err != nil {
		return err
	}
	trailers := func() error {
		if transportTab {
			writeTransport(w, cur)
		}
		if events {
			if err := dumpTrace(w, url); err != nil {
				return err
			}
		}
		if slo || exemplars {
			return dumpSLO(w, url, exemplars)
		}
		return nil
	}
	if interval <= 0 {
		report(w, cur, nil, 0)
		return trailers()
	}
	for i := 0; count == 0 || i < count; i++ {
		time.Sleep(interval)
		prev := cur
		if cur, err = scrape(url + "/metrics"); err != nil {
			return err
		}
		fmt.Fprintf(w, "--- window %s ---\n", interval)
		report(w, cur, prev, interval.Seconds())
	}
	return trailers()
}

// dumpSLO renders the /slo error-budget board: per-objective burn
// rates and, with exemplars, the concrete frames behind the latency
// histogram's slow buckets.
func dumpSLO(w io.Writer, base string, exemplars bool) error {
	resp, err := http.Get(base + "/slo")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/slo: HTTP %d", resp.StatusCode)
	}
	doc, err := flight.ReadBoard(resp.Body)
	if err != nil {
		return err
	}
	writeBoard(w, doc, exemplars)
	return nil
}

func writeBoard(w io.Writer, doc flight.BoardJSON, exemplars bool) {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	if len(doc.SLOs) > 0 {
		fmt.Fprintln(w, "slo board:")
		fmt.Fprintln(tw, "\tslo\tloss burn\tp99 burn\tfailover burn\tworst\tbudget left\tp99 ticks\talarm\t")
		for _, s := range doc.SLOs {
			alarm := "-"
			if s.Alarm {
				alarm = "ALARM"
			}
			fmt.Fprintf(tw, "\t%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f%%\t%d\t%s\t\n",
				s.Name, s.LossBurn, s.P99Burn, s.FailoverBurn, s.WorstBurn,
				100*s.BudgetRemaining, s.P99Ticks, alarm)
		}
		tw.Flush()
	}
	if len(doc.Links) > 0 {
		fmt.Fprintln(tw, "\tlink\ttracked\tlost\tin flight\tp99 ticks\tcaptures\t")
		for _, l := range doc.Links {
			fmt.Fprintf(tw, "\t%s\t%d\t%d\t%d\t%d\t%d\t\n",
				l.Link, l.Tracked, l.Lost, l.InFlight, l.P99Ticks, l.Captures)
		}
		tw.Flush()
	}
	if !exemplars {
		return
	}
	for _, l := range doc.Links {
		if len(l.Exemplars) == 0 {
			continue
		}
		fmt.Fprintf(w, "exemplars %s:\n", l.Link)
		fmt.Fprintln(tw, "\tbucket ≤\tlatency\tframe id\tat tick\t")
		for _, ex := range l.Exemplars {
			le := fmt.Sprintf("%d", ex.LE)
			if ex.LE == math.MaxInt64 {
				le = "+Inf"
			}
			fmt.Fprintf(tw, "\t%s\t%d\t%d\t%d\t\n", le, ex.Value, ex.ID, ex.At)
		}
		tw.Flush()
	}
}

// writeTransport renders the per-line transport table from the
// transport_* series family (exported by socket-backed p5sim runs):
// liveness, chunk counters, connection churn, keepalive health,
// send-queue backpressure, and wire-level latency (one-way p50/p99 from
// the sampled wall stamps, RTT p50 from keepalive probes), one row per
// line label.
func writeTransport(w io.Writer, cur []telemetry.Series) {
	type row struct{ vals map[string]float64 }
	rows := map[string]*row{}
	names := []string{}
	for _, s := range cur {
		if !strings.HasPrefix(s.Name, "transport_") {
			continue
		}
		line := s.Label("line")
		if line == "" {
			continue
		}
		r := rows[line]
		if r == nil {
			r = &row{vals: map[string]float64{}}
			rows[line] = r
			names = append(names, line)
		}
		r.vals[s.Name] = s.Value
	}
	if len(names) == 0 {
		fmt.Fprintln(w, "transport: no transport_* series (not a socket-backed run?)")
		return
	}
	sort.Strings(names)
	// Latency columns come from the per-line histograms rather than the
	// flattened gauge map — quantiles need the bucket structure.
	quant := func(line, name string, q float64) string {
		v, ok := telemetry.SeriesQuantile(cur, name, q, telemetry.L("line", line))
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	fmt.Fprintln(w, "transport lines:")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "\tline\tup\ttx\trx\toneway-p50µs\toneway-p99µs\trtt-p50µs\treconn\tresets\tprobes\tmisses\ttx-drop\trx-drop\tq\tq-hw\t")
	for _, n := range names {
		v := rows[n].vals
		up := "down"
		if v["transport_up"] == 1 {
			up = "up"
		}
		fmt.Fprintf(tw, "\t%s\t%s\t%.0f\t%.0f\t%s\t%s\t%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t\n",
			n, up,
			v["transport_tx_chunks_total"], v["transport_rx_chunks_total"],
			quant(n, "transport_oneway_latency_us", 0.50),
			quant(n, "transport_oneway_latency_us", 0.99),
			quant(n, "transport_rtt_us", 0.50),
			v["transport_reconnects_total"], v["transport_resets_total"],
			v["transport_keepalive_probes_total"], v["transport_keepalive_misses_total"],
			v["transport_tx_dropped_total"], v["transport_rx_dropped_total"],
			v["transport_queue_depth"], v["transport_queue_high_water"])
	}
	tw.Flush()
}

// scrape fetches and parses one Prometheus exposition.
func scrape(url string) ([]telemetry.Series, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return telemetry.ParseText(resp.Body)
}

func dumpTrace(w io.Writer, base string) error {
	resp, err := http.Get(base + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/trace: HTTP %d", resp.StatusCode)
	}
	evs, err := telemetry.ReadEvents(resp.Body)
	if err != nil {
		return err
	}
	writeEvents(w, evs)
	return nil
}

func writeEvents(w io.Writer, evs []telemetry.Event) {
	fmt.Fprintf(w, "trace: %d events\n", len(evs))
	for _, e := range evs {
		fmt.Fprintln(w, " ", e.String())
	}
}

// report renders the per-prefix stage tables. prev (from an earlier
// scrape) turns counters into window deltas; elapsed > 0 adds a
// per-second rate column.
func report(w io.Writer, cur, prev []telemetry.Series, elapsed float64) {
	prevVal := map[string]float64{}
	for _, s := range prev {
		prevVal[s.Full] = s.Value
	}
	// delta is the windowed value of one series: counters (by the
	// _total naming convention) are differenced against the previous
	// scrape; gauges always show the instantaneous value.
	delta := func(s telemetry.Series) float64 {
		if strings.HasSuffix(s.Name, "_total") {
			return s.Value - prevVal[s.Full]
		}
		return s.Value
	}

	byPrefix := map[string][]telemetry.Series{}
	for _, s := range cur {
		p := s.Name
		if i := strings.IndexByte(p, '_'); i > 0 {
			p = p[:i]
		}
		byPrefix[p] = append(byPrefix[p], s)
	}
	prefixes := make([]string, 0, len(byPrefix))
	for p := range byPrefix {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)

	for _, p := range prefixes {
		group := byPrefix[p]
		cycles := 0.0
		var units, wires, rest []telemetry.Series
		for _, s := range group {
			switch {
			case s.Name == p+"_cycles_total":
				cycles = delta(s)
			case s.Name == p+"_unit_busy_cycles_total":
				units = append(units, s)
			case strings.HasPrefix(s.Name, p+"_wire_"):
				wires = append(wires, s)
			default:
				rest = append(rest, s)
			}
		}
		if cycles > 0 {
			fmt.Fprintf(w, "%s: %.0f cycles\n", p, cycles)
		} else {
			fmt.Fprintf(w, "%s:\n", p)
		}
		pct := func(v float64) string {
			if cycles <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", 100*v/cycles)
		}

		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
		if len(units) > 0 {
			fmt.Fprintln(tw, "\tunit\tbusy%\t")
			sort.Slice(units, func(i, j int) bool { return units[i].Label("unit") < units[j].Label("unit") })
			for _, s := range units {
				fmt.Fprintf(tw, "\t%s\t%s\t\n", s.Label("unit"), pct(delta(s)))
			}
		}
		if len(wires) > 0 {
			// Regroup the three wire families by wire name.
			type wireRow struct{ occ, stall, xfer float64 }
			rows := map[string]*wireRow{}
			names := []string{}
			at := func(n string) *wireRow {
				if rows[n] == nil {
					rows[n] = &wireRow{}
					names = append(names, n)
				}
				return rows[n]
			}
			for _, s := range wires {
				n := s.Label("wire")
				switch s.Name {
				case p + "_wire_occupied_cycles_total":
					at(n).occ = delta(s)
				case p + "_wire_stalls_total":
					at(n).stall = delta(s)
				case p + "_wire_transfers_total":
					at(n).xfer = delta(s)
				}
			}
			sort.Strings(names)
			fmt.Fprintln(tw, "\twire\tocc%\tstall%\ttransfers\t")
			for _, n := range names {
				r := rows[n]
				fmt.Fprintf(tw, "\t%s\t%s\t%s\t%.0f\t\n", n, pct(r.occ), pct(r.stall), r.xfer)
			}
		}
		if len(rest) > 0 {
			if elapsed > 0 {
				fmt.Fprintln(tw, "\tseries\tvalue\trate/s\t")
			} else {
				fmt.Fprintln(tw, "\tseries\tvalue\t")
			}
			for _, s := range rest {
				v := delta(s)
				if elapsed > 0 {
					fmt.Fprintf(tw, "\t%s\t%g\t%.1f\t\n", s.Full, v, v/elapsed)
				} else {
					fmt.Fprintf(tw, "\t%s\t%g\t\n", s.Full, v)
				}
			}
		}
		tw.Flush()
	}
}
