package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/crc"
	"repro/internal/flight"
	"repro/internal/hdlc"
	"repro/internal/ppp"
)

// dumpCapture decodes a flight-recorder black-box file (.p5fr): the
// trigger metadata, the register snapshot, the trace events leading up
// to the trigger, and the captured wire streams re-tokenized into
// annotated HDLC frames.
func dumpCapture(w io.Writer, path string, fcsBits int) error {
	c, err := flight.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "capture %s\n", path)
	fmt.Fprintf(w, "  link=%s reason=%s seq=%d now=%d wall=%s\n",
		c.Link, c.Reason, c.Seq, c.Now,
		time.Unix(0, c.WallNs).UTC().Format(time.RFC3339Nano))
	if len(c.Regs) > 0 {
		fmt.Fprintln(w, "registers:")
		for _, r := range c.Regs {
			fmt.Fprintf(w, "  %-24s %d\n", r.Name, r.Value)
		}
	}
	fmt.Fprintf(w, "events: %d\n", len(c.Events))
	for _, e := range c.Events {
		fmt.Fprintln(w, " ", e.String())
	}
	dumpWire(w, "rx", c.RxBase, c.RxWire, fcsBits)
	dumpWire(w, "tx", c.TxBase, c.TxWire, fcsBits)
	return nil
}

// dumpWire re-runs frame delineation over a captured raw octet stream.
// The ring usually starts mid-frame, so the first token is often
// damaged — that is annotated, not hidden.
func dumpWire(w io.Writer, dir string, base uint64, wire []byte, fcsBits int) {
	if len(wire) == 0 {
		fmt.Fprintf(w, "%s wire: empty\n", dir)
		return
	}
	fmt.Fprintf(w, "%s wire: %d octets from stream offset %d\n", dir, len(wire), base)
	cfg := ppp.Config{AnyAddress: true}
	if fcsBits == 16 {
		cfg.FCS = crc.FCS16Mode
	}
	var tk hdlc.Tokenizer
	for i, t := range tk.Feed(nil, wire) {
		switch {
		case t.Err != nil:
			fmt.Fprintf(w, "  frame %3d: %4d octets  damaged: %v\n", i, len(t.Body), t.Err)
		default:
			var f ppp.Frame
			if err := ppp.DecodeBodyInto(&f, t.Body, cfg); err != nil {
				fmt.Fprintf(w, "  frame %3d: %4d octets  undecodable: %v\n", i, len(t.Body), err)
				continue
			}
			fmt.Fprintf(w, "  frame %3d: %4d octets  proto=%s payload=%d%s\n",
				i, len(t.Body), protoName(f.Protocol), len(f.Payload), payloadPreview(f.Payload))
		}
	}
}

func protoName(p uint16) string {
	switch p {
	case ppp.ProtoIPv4:
		return "IPv4"
	case ppp.ProtoIPv6:
		return "IPv6"
	case ppp.ProtoVJC:
		return "VJ-comp"
	case ppp.ProtoVJU:
		return "VJ-uncomp"
	case ppp.ProtoIPCP:
		return "IPCP"
	case ppp.ProtoLCP:
		return "LCP"
	case ppp.ProtoPAP:
		return "PAP"
	case ppp.ProtoLQR:
		return "LQR"
	case ppp.ProtoCHAP:
		return "CHAP"
	}
	return fmt.Sprintf("0x%04X", p)
}

// payloadPreview shows the first few payload octets so a capture reads
// like a protocol trace without drowning in hex.
func payloadPreview(p []byte) string {
	if len(p) == 0 {
		return ""
	}
	n := len(p)
	ell := ""
	if n > 8 {
		n, ell = 8, " ..."
	}
	return fmt.Sprintf("  [% X%s]", p[:n], ell)
}
