// Command p5trace prints cycle-by-cycle traces of the 32-bit escape
// units handling the exact situations of the paper's Figures 5 and 6:
// a flag character in an arbitrary lane expanding the word (stuffing)
// and an escape character collapsing it (destuffing bubble).
//
// Usage:
//
//	p5trace [-fig 5|6] [-cycles N] [-vcd file.vcd]
//	p5trace -capture FILE [-fcs 16|32]
//	p5trace -join A.p5fr B.p5fr
//
// With -vcd, a Value Change Dump of the traced signals is also written,
// viewable in GTKWave. With -capture, a flight-recorder black-box dump
// (.p5fr) is decoded instead: trigger metadata, register snapshot,
// trace events, and the captured wire streams re-tokenized into
// annotated HDLC frames. With -join, two captures sharing one incident
// ID (the correlated pair a distributed trigger dumps on both ends of a
// line) are merged: their tick domains are aligned using the clock and
// tick offsets estimated by the transport's latency tracing, and both
// black boxes render as one two-sided incident timeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/flight"
	"repro/internal/obsnet"
	"repro/internal/p5"
	"repro/internal/rtl"
)

func flitString(f rtl.Flit, ok bool) string {
	if !ok {
		return "--          "
	}
	var b strings.Builder
	for i := 0; i < f.N; i++ {
		fmt.Fprintf(&b, "%02X ", f.Byte(i))
	}
	for i := f.N; i < 4; i++ {
		b.WriteString(".. ")
	}
	tags := ""
	if f.SOF {
		tags += "S"
	}
	if f.EOF {
		tags += "E"
	}
	return b.String() + tags
}

func main() {
	fig := flag.Int("fig", 5, "figure to trace (5 = escape generate, 6 = escape detect)")
	cycles := flag.Int("cycles", 16, "cycles to trace")
	vcdPath := flag.String("vcd", "", "also write a Value Change Dump to this file")
	capture := flag.String("capture", "", "decode a flight-recorder capture file (.p5fr) and exit")
	join := flag.Bool("join", false, "merge the two correlated .p5fr captures given as arguments into one incident timeline")
	fcsBits := flag.Int("fcs", 32, "FCS mode used when re-framing captured wire bytes (16 or 32)")
	flag.Parse()

	if *join {
		if err := joinCaptures(os.Stdout, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "p5trace:", err)
			os.Exit(1)
		}
		return
	}
	if *capture != "" {
		if err := dumpCapture(os.Stdout, *capture, *fcsBits); err != nil {
			fmt.Fprintln(os.Stderr, "p5trace:", err)
			os.Exit(1)
		}
		return
	}

	var vcd *rtl.VCD
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p5trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		vcd = rtl.NewVCD(f)
	}

	switch *fig {
	case 5:
		trace5(*cycles, vcd)
	case 6:
		trace6(*cycles, vcd)
	default:
		fmt.Println("p5trace: -fig must be 5 or 6")
	}
	if vcd != nil {
		fmt.Printf("\nVCD written to %s\n", *vcdPath)
	}
}

// joinCaptures loads a correlated capture pair and renders the merged
// two-sided incident timeline.
func joinCaptures(w *os.File, paths []string) error {
	if len(paths) != 2 {
		return fmt.Errorf("-join needs exactly two capture files, got %d", len(paths))
	}
	a, err := flight.ReadFile(paths[0])
	if err != nil {
		return fmt.Errorf("%s: %v", paths[0], err)
	}
	b, err := flight.ReadFile(paths[1])
	if err != nil {
		return fmt.Errorf("%s: %v", paths[1], err)
	}
	j, err := obsnet.Join(a, b)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "joined captures %s + %s\n", paths[0], paths[1])
	return j.WriteTimeline(w)
}

// trace5 reproduces Figure 5: the word 7E 12 34 56 enters the Escape
// Generate unit; 7E expands to 7D 5E, producing five octets that must
// be re-sorted across word boundaries.
func trace5(n int, vcd *rtl.VCD) {
	fmt.Println("Figure 5 — Escape Generate data organisation")
	fmt.Println("input frame: 7E 12 34 56 9A BC DE F0 (flag in lane 0 of word 0)")
	fmt.Println()
	sim := &rtl.Sim{}
	src := &rtl.Source{Out: sim.Wire("in")}
	out := sim.Wire("out")
	gen := &p5.EscapeGen{In: src.Out, Out: out, W: 4}
	sink := rtl.NewSink(out)
	sim.Add(src, gen, sink)
	src.FeedBytes([]byte{0x7E, 0x12, 0x34, 0x56, 0x9A, 0xBC, 0xDE, 0xF0}, 4)

	if vcd != nil {
		vcd.WatchWire("input", src.Out, 4)
		vcd.WatchWire("line", out, 4)
		vcd.Watch("resync_occupancy", 8, func() (uint64, bool) {
			return uint64(gen.Occupancy()), true
		})
	}
	fmt.Printf("%5s  %-16s %8s  %-16s\n", "cycle", "input word", "buffer", "line word out")
	for c := 0; c < n; c++ {
		in, inOK := src.Out.Peek()
		outStart := len(sink.Flits)
		occ := gen.Occupancy()
		sim.Cycle()
		if vcd != nil {
			vcd.Sample(sim.Now())
		}
		outStr := "--"
		if len(sink.Flits) > outStart {
			outStr = flitString(sink.Flits[len(sink.Flits)-1], true)
		}
		fmt.Printf("%5d  %-16s %5d B   %-16s\n", c, flitString(in, inOK), occ, outStr)
	}
	fmt.Printf("\nline stream: % X\n", sink.Data)
	fmt.Println("note the extra 7D octet after the opening flag and the one-octet")
	fmt.Println("shift of every subsequent word — the paper's Figure 5 reorganisation.")
}

// trace6 reproduces Figure 6: the stuffed stream 7D 5E 12 ... enters the
// receiver; deleting 7D leaves a bubble the sorter must close.
func trace6(n int, vcd *rtl.VCD) {
	fmt.Println("Figure 6 — Escape Detect data organisation")
	fmt.Println("line: 7E 7D 5E 12 34 56 9A BC DE 7E (escaped flag in the payload)")
	fmt.Println()
	sim := &rtl.Sim{}
	src := &rtl.Source{}
	regs := p5.NewRegs()
	rx := p5.NewReceiver(sim, 4, regs)
	src.Out = rx.In
	sim.Add(src)
	// Hand-built line stream (no FCS — we watch the sorter, not CRC).
	line := []byte{0x7E, 0x7D, 0x5E, 0x12, 0x34, 0x56, 0x9A, 0xBC, 0xDE, 0x7E, 0x7E, 0x7E}
	src.FeedBytes(line, 4)

	// Watch the escape-detect output wire.
	det := rx.Escape
	if vcd != nil {
		vcd.WatchWire("line", src.Out, 4)
		vcd.WatchWire("destuffed", det.Out, 4)
		vcd.Watch("resync_occupancy", 8, func() (uint64, bool) {
			return uint64(det.Occupancy()), true
		})
	}
	fmt.Printf("%5s  %-16s %8s  %-16s\n", "cycle", "line word in", "buffer", "destuffed out")
	for c := 0; c < n; c++ {
		in, inOK := src.Out.Peek()
		outF, outOK := det.Out.Peek()
		occ := det.Occupancy()
		sim.Cycle()
		if vcd != nil {
			vcd.Sample(sim.Now())
		}
		fmt.Printf("%5d  %-16s %5d B   %-16s\n", c, flitString(in, inOK), occ, flitString(outF, outOK))
	}
	fmt.Println("\nthe deleted 7D leaves a one-octet bubble; the following octets")
	fmt.Println("slide forward one lane — the paper's Figure 6 compaction.")
}
