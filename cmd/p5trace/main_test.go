package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flight"
	"repro/internal/ppp"
	"repro/internal/telemetry"
)

func TestDumpCaptureAnnotatesFrames(t *testing.T) {
	// Build a wire stream of two clean PPP frames, wrap it in a capture
	// file, and check the decoder re-frames and annotates both.
	var cfg ppp.Config
	wire := ppp.AppendFrame(nil, &ppp.Frame{
		Protocol: ppp.ProtoIPv4, Payload: []byte{0x45, 0, 0, 4, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2},
	}, cfg, false)
	wire = ppp.AppendFrame(wire, &ppp.Frame{
		Protocol: ppp.ProtoLCP, Payload: []byte{1, 1, 0, 4},
	}, cfg, false)

	c := &flight.Capture{
		Link: "a", Reason: "fcs-burst", Seq: 3, Now: 1234, WallNs: 42,
		RxBase: 100, RxWire: wire,
		Events: []telemetry.Event{{Seq: 1, At: 1200, Scope: "flight:a", Name: "fcs-burst", V1: 8, V2: 128}},
		Regs:   []flight.RegSample{{Name: "rx_frames", Value: 7}},
	}
	dir := t.TempDir()
	if err := c.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, c.Filename())

	var out bytes.Buffer
	if err := dumpCapture(&out, path, 32); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"link=a reason=fcs-burst seq=3 now=1234",
		"rx_frames",
		"fcs-burst",
		"rx wire: ", "stream offset 100",
		"proto=IPv4 payload=10",
		"proto=LCP payload=4",
		"tx wire: empty",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestDumpCaptureAnnotatesDamage(t *testing.T) {
	// A truncated ring start and a corrupted FCS must be annotated, not
	// dropped silently.
	var cfg ppp.Config
	wire := ppp.AppendFrame(nil, &ppp.Frame{Protocol: ppp.ProtoIPv4, Payload: []byte{1, 2, 3, 4}}, cfg, false)
	bad := ppp.AppendFrame(nil, &ppp.Frame{Protocol: ppp.ProtoIPv4, Payload: []byte{5, 6, 7, 8}}, cfg, false)
	bad[5] ^= 0xFF // damage inside the body: FCS check fails
	// Start mid-frame: drop the opening flag and first body octets.
	stream := append(append(wire[4:], bad...), 0x7E)

	c := &flight.Capture{Link: "z", Reason: "oam", RxWire: stream}
	dir := t.TempDir()
	if err := c.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, c.Filename())
	var out bytes.Buffer
	if err := dumpCapture(&out, path, 32); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "damaged:") && !strings.Contains(got, "undecodable:") {
		t.Errorf("damage not annotated:\n%s", got)
	}
}

func TestDumpCaptureRejectsGarbage(t *testing.T) {
	p := filepath.Join(t.TempDir(), "junk.p5fr")
	if err := writeTestFile(p, []byte("not a capture")); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := dumpCapture(&out, p, 32); err == nil {
		t.Fatal("garbage file decoded without error")
	}
}

func writeTestFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
