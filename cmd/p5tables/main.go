// Command p5tables prints the reproduction of the paper's synthesis
// evaluation: Table 1 (8-bit P5), Table 2 (32-bit P5), Table 3 (Escape
// Generate module), the headline area ratios, and the timing analysis
// (critical path and achievable line rate per technology).
//
// Usage:
//
//	p5tables [-table 1|2|3] [-ratios] [-timing]
//
// With no flags, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/synth"
)

func main() {
	table := flag.Int("table", 0, "print only one table (1, 2 or 3)")
	ratios := flag.Bool("ratios", false, "print only the area ratios")
	timing := flag.Bool("timing", false, "print only the timing analysis")
	scaling := flag.Bool("scaling", false, "print only the width scaling study")
	flag.Parse()

	all := *table == 0 && !*ratios && !*timing && !*scaling

	if all || *table == 1 {
		fmt.Print(synth.FormatSystemTable("Table 1 — P5 8-bit implementation (paper: ~184 LUTs / 84 FFs)",
			synth.SystemTable(1, synth.XCV50, synth.XC2V40)))
		fmt.Println()
	}
	if all || *table == 2 {
		fmt.Print(synth.FormatSystemTable("Table 2 — P5 32-bit implementation (paper: ~2230 LUTs / 841 FFs)",
			synth.SystemTable(4, synth.XCV600, synth.XC2V1000)))
		fmt.Println()
	}
	if all || *table == 3 {
		fmt.Print(synth.FormatModuleTable(synth.XC2V40, synth.EscapeGenerateTable(synth.XC2V40)))
		fmt.Println("(paper: 32-bit = 492 LUTs (96%) / 168 FFs (32%); 8-bit = 22 LUTs / 6 FFs)")
		fmt.Println()
	}
	if all || *ratios {
		r := synth.ComputeRatios()
		fmt.Println("Area ratios, 32-bit / 8-bit")
		fmt.Printf("  full system     : %5.1fx LUTs, %5.1fx FFs\n", r.SystemLUT, r.SystemFF)
		fmt.Printf("  datapath (no OAM): %4.1fx LUTs, %5.1fx FFs\n", r.DatapathLUT, r.DatapathFF)
		fmt.Printf("  escape generate : %5.1fx LUTs, %5.1fx FFs   (paper: 25x / 28x)\n",
			r.EscapeGenLUT, r.EscapeGenFF)
		fmt.Println("  (paper system ratio: ~11x — see EXPERIMENTS.md E8 for the deviation analysis)")
		fmt.Println()
	}
	if all || *timing {
		fmt.Println("Timing analysis (paper: 6-LUT critical path on both technologies)")
		for _, w := range []int{1, 4} {
			tot := synth.Total(synth.Inventory(w))
			fmt.Printf("  %2d-bit system, depth %d LUTs:\n", w*8, tot.Depth)
			for _, tech := range []synth.Tech{synth.Virtex, synth.VirtexII} {
				post := tech.FMaxMHz(tot.Depth, true)
				fmt.Printf("    %-12s pre %6.1f MHz, post %6.1f MHz → %5.2f Gb/s (need %.3f MHz: %v)\n",
					tech.Name, tech.FMaxMHz(tot.Depth, false), post,
					synth.LineRateGbps(post, w), synth.RequiredMHz, post >= synth.RequiredMHz)
			}
		}
		fmt.Println()
	}
	if all || *scaling {
		fmt.Print(synth.FormatScalingTable(synth.ScalingTable()))
		fmt.Println()
	}
	if *table != 0 && *table != 1 && *table != 2 && *table != 3 {
		fmt.Fprintln(os.Stderr, "p5tables: -table must be 1, 2 or 3")
		os.Exit(2)
	}
	// Per-module breakdown rounds out the report.
	if all {
		for _, w := range []int{1, 4} {
			fmt.Printf("Module inventory, %d-bit P5\n", w*8)
			fmt.Printf("  %-18s %6s %6s %6s\n", "module", "LUTs", "FFs", "depth")
			for _, m := range synth.Inventory(w) {
				fmt.Printf("  %-18s %6d %6d %6d\n", m.Name, m.Cost.LUTs, m.Cost.FFs, m.Cost.Depth)
			}
			tot := synth.Total(synth.Inventory(w))
			fmt.Printf("  %-18s %6d %6d %6d\n\n", "TOTAL", tot.LUTs, tot.FFs, tot.Depth)
		}
	}
}
