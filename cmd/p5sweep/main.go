// Command p5sweep runs the evaluation grid — datapath width × payload
// escape density — through the cycle-accurate P5 in parallel across all
// CPU cores and prints the goodput surface (the expanded form of the
// paper's throughput evaluation, experiments E6 and E11).
//
// Usage:
//
//	p5sweep [-frames N] [-workers N] [-bufcaps 8,16,32]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/netsim"
	"repro/internal/p5"
	"repro/internal/ppp"
	"repro/internal/sweep"
	"repro/internal/synth"
)

func measure(frames int) func(sweep.Point) sweep.Result {
	return func(pt sweep.Point) sweep.Result {
		gen := netsim.NewGen(42, netsim.Fixed(1500), pt.Density)
		sys := p5.NewSystem(pt.Width)
		sys.Tx.Escape.BufCap = pt.BufCap
		var bits int64
		for i := 0; i < frames; i++ {
			d := gen.Next()
			bits += int64(len(d)) * 8
			sys.Send(p5.TxJob{Protocol: ppp.ProtoIPv4, Payload: d})
		}
		if !sys.RunUntilIdle(100_000_000) {
			return sweep.Result{Point: pt, Err: fmt.Errorf("did not drain")}
		}
		for _, f := range sys.Received() {
			if f.Err != nil {
				return sweep.Result{Point: pt, Err: f.Err}
			}
		}
		return sweep.Result{
			Point:        pt,
			BitsPerCycle: float64(bits) / float64(sys.Sim.Now()),
			Stalls:       sys.Tx.Escape.InputStalls,
			HighWater:    sys.Tx.Escape.HighWater(),
		}
	}
}

func main() {
	frames := flag.Int("frames", 40, "datagrams per grid point")
	workers := flag.Int("workers", 0, "worker goroutines (0 = all cores)")
	bufArg := flag.String("bufcaps", "", "comma-separated resync buffer capacities to sweep")
	flag.Parse()

	widths := []int{1, 2, 4, 8}
	densities := []float64{0, 0.01, 0.05, 0.25, 0.5, 1.0}
	var bufCaps []int
	if *bufArg != "" {
		for _, s := range strings.Split(*bufArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "p5sweep: bad -bufcaps:", err)
				os.Exit(2)
			}
			bufCaps = append(bufCaps, v)
		}
	}

	points := sweep.Grid(widths, densities, bufCaps)
	fmt.Printf("sweeping %d grid points (%d datagrams each) across workers...\n\n",
		len(points), *frames)
	results := sweep.Run(points, *workers, measure(*frames))

	fmt.Printf("goodput in Gb/s at the 78.125 MHz target clock\n")
	fmt.Printf("%8s", "width")
	for _, d := range densities {
		fmt.Printf(" %8.0f%%", d*100)
	}
	if len(bufCaps) > 0 {
		fmt.Printf("   (per bufcap row)")
	}
	fmt.Println("  ← escape density")
	rows := 1
	if len(bufCaps) > 0 {
		rows = len(bufCaps)
	}
	for wi, w := range widths {
		for r := 0; r < rows; r++ {
			label := fmt.Sprintf("%d-bit", w*8)
			if len(bufCaps) > 0 {
				label = fmt.Sprintf("%d-bit/%d", w*8, bufCaps[r])
			}
			fmt.Printf("%8s", label)
			for di := range densities {
				res := results[wi*len(densities)*rows+di*rows+r]
				if res.Err != nil {
					fmt.Printf(" %9s", "ERR")
					continue
				}
				fmt.Printf(" %9.3f", res.BitsPerCycle*synth.RequiredMHz/1e3)
			}
			fmt.Println()
		}
	}
	fmt.Printf("\n(every cell is a full cycle-accurate Tx→line→Rx simulation;")
	fmt.Printf(" the 32-bit row at 0%% density is the paper's 2.5 Gb/s headline)\n")
}
