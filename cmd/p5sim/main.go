// Command p5sim runs the cycle-accurate P5 loopback system over a
// synthetic IP workload and reports the measured line performance —
// the simulation counterpart of the paper's 2.5 Gb/s headline.
//
// Usage:
//
//	p5sim [-width 8|32] [-frames N] [-size imix|N] [-density F] [-errors F] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/netsim"
	"repro/internal/p5"
	"repro/internal/ppp"
	"repro/internal/rtl"
	"repro/internal/synth"
)

func main() {
	width := flag.Int("width", 32, "datapath width in bits (8 or 32)")
	frames := flag.Int("frames", 100, "datagrams to send")
	sizeArg := flag.String("size", "imix", "datagram sizes: 'imix' or a fixed byte count")
	density := flag.Float64("density", 0.02, "payload escape density (0..1)")
	errRate := flag.Float64("errors", 0, "per-word probability of a line bit error")
	seed := flag.Uint64("seed", 1, "workload seed")
	verbose := flag.Bool("v", false, "print per-frame dispositions")
	flag.Parse()

	w := *width / 8
	if w != 1 && w != 4 {
		fmt.Fprintln(os.Stderr, "p5sim: -width must be 8 or 32")
		os.Exit(2)
	}
	var dist netsim.SizeDist = netsim.IMIX{}
	if *sizeArg != "imix" {
		n, err := strconv.Atoi(*sizeArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p5sim: bad -size:", err)
			os.Exit(2)
		}
		dist = netsim.Fixed(n)
	}

	gen := netsim.NewGen(*seed, dist, *density)
	sys := p5.NewSystem(w)

	if *errRate > 0 {
		rng := netsim.NewRand(*seed ^ 0xBEEF)
		sys.Line.Corrupt = func(f rtl.Flit, cycle int64) rtl.Flit {
			if rng.Float64() < *errRate {
				lane := rng.Intn(f.N)
				f.SetByte(lane, f.Byte(lane)^byte(1<<uint(rng.Intn(8))))
			}
			return f
		}
	}

	var payloadBits int64
	for i := 0; i < *frames; i++ {
		d := gen.Next()
		payloadBits += int64(len(d)) * 8
		sys.Send(p5.TxJob{Protocol: ppp.ProtoIPv4, Payload: d})
	}
	if !sys.RunUntilIdle(200_000_000) {
		fmt.Fprintln(os.Stderr, "p5sim: system did not drain")
		os.Exit(1)
	}

	good, bad := 0, 0
	for i, f := range sys.Received() {
		if f.Err != nil {
			bad++
			if *verbose {
				fmt.Printf("frame %4d: %v\n", i, f.Err)
			}
			continue
		}
		good++
		if *verbose {
			fmt.Printf("frame %4d: %v\n", i, f.Frame)
		}
	}

	cycles := sys.Sim.Now()
	bitsPerCycle := float64(payloadBits) / float64(cycles)
	depth := synth.Total(synth.Inventory(w)).Depth
	fmaxV2 := synth.VirtexII.FMaxMHz(depth, true)

	fmt.Printf("P5 %d-bit loopback simulation\n", *width)
	fmt.Printf("  datagrams        : %d sent, %d delivered, %d rejected\n", *frames, good, bad)
	fmt.Printf("  payload          : %d bits in %d cycles = %.2f bits/cycle\n",
		payloadBits, cycles, bitsPerCycle)
	fmt.Printf("  @ 78.125 MHz     : %.3f Gb/s goodput (paper line rate: %.1f Gb/s)\n",
		bitsPerCycle*synth.RequiredMHz/1000, float64(*width)*78.125/1000)
	fmt.Printf("  @ Virtex-II fmax : %.3f Gb/s (%.1f MHz post-layout)\n",
		bitsPerCycle*fmaxV2/1000, fmaxV2)
	fmt.Printf("  escapes inserted : %d octets; tx stalls %d; resync high-water %d/%d octets\n",
		sys.Tx.Escape.Escaped, sys.Tx.Escape.InputStalls,
		sys.Tx.Escape.HighWater(), 4*w)
	fmt.Printf("  OAM status       : rx-good=%d rx-bad=%d fcs-err=%d aborts=%d runts=%d\n",
		sys.OAM.Read(p5.RegRxGood), sys.OAM.Read(p5.RegRxBad),
		sys.OAM.Read(p5.RegRxFCSErr), sys.OAM.Read(p5.RegRxAborts),
		sys.OAM.Read(p5.RegRxRunts))
}
