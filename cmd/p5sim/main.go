// Command p5sim runs the cycle-accurate P5 over a synthetic IP workload
// and reports the measured line performance — the simulation
// counterpart of the paper's 2.5 Gb/s headline. With -sonet the line
// octets ride an STM-1 SDH section through a scripted fault injector
// (byte slips, duplications, timed LOS line cuts), and the OAM status
// dump includes the live SONET alarm state and latched interrupt
// causes.
//
// With -telemetry ADDR the run is instrumented through the telemetry
// registry and, after the report, an HTTP endpoint stays up serving
// the Prometheus text exposition at /metrics, expvar JSON at
// /debug/vars, Go profiles under /debug/pprof/, and the structured
// event trace at /trace — scrape it with p5stat or curl, ^C to exit.
//
// With -protect two software PPP endpoints ride a 1+1 protected STM-1
// line pair (GR-253 linear APS, bidirectional, revertive): the working
// line is cut under live traffic, the APS controller moves the receive
// selector to the protection line inside the 50 ms switch budget
// without an LCP/IPCP renegotiation, and after the line heals the
// group reverts through wait-to-restore. The report shows the switch
// record and the OAM protection registers; -telemetry exposes
// aps_switches_total and the aps_switch_duration histogram.
//
// With -engine N the run is the sharded software line card instead of
// the cycle-accurate model: N loopback PPP link pairs partitioned
// across -shards worker goroutines (default GOMAXPROCS), every
// per-frame path allocation-free, reporting aggregate delivered
// frames/s and line-rate Gb/s. -frames sets the measured step count
// and -size the datagram size.
//
// With -listen or -dial the engine's link pairs are split across two
// p5sim processes interconnected by real UDP or TCP sockets (-net-transport,
// link i on base port + i): the listener runs the A half, the dialer the
// Z half, each supervised end-to-end — keepalive dead-peer detection
// escalates a dark line into a transport-LOS defect and the link
// supervisor renegotiates when the line returns. -net-stall and
// -net-blackout script transport chaos windows; the run ends with a
// machine-greppable NET-REPORT line, and -telemetry additionally serves
// the transport /health and /status endpoints plus the transport_*
// series (render with p5stat -transport).
//
// With -scenario FILE the run is a declarative chaos drill: the JSON
// file describes a multi-node SONET ring (UPSR or BLSR), the circuits
// riding it, an IMIX traffic profile, scripted faults (fibre cuts,
// noise bursts, node failures), and SLO assertions. p5sim builds the
// ring, runs the drill, prints the graded report, and exits non-zero
// if any assertion fails — with the paths of the .p5fr flight
// captures that hold the evidence. Committed drills live under
// scenarios/.
//
// With -flight DIR (in the -protect and -engine modes) every link is
// armed with the always-on flight recorder: per-frame latency
// histograms with exemplars, SLO burn-rate gauges in /metrics, the
// error-budget board at /slo (render with p5stat -slo), and black-box
// captures (.p5fr, decode with p5trace -capture) written to DIR on
// every defect escalation, APS switch, FCS burst, or supervisor
// restart.
//
// With -prof DIR the run is the performance observatory: CPU, heap,
// allocs, mutex, block, and goroutine profiles are captured for the
// whole run and written to DIR (inspect with go tool pprof). In the
// -engine mode the worker loop additionally arms per-shard stage cost
// accounting — the report gains a stage-by-stage ns/step breakdown,
// barrier wait, and shard imbalance, and the prof_* series join
// /metrics. Combined with -flight, every black-box capture also drops
// a tagged profile snapshot next to its .p5fr file, and in -protect
// the host can demand a snapshot through the OAM RegProfCtrl register.
// Whenever telemetry is armed, runtime/metrics (GC pauses, scheduler
// latency, goroutine count) are exported as runtime_* gauges.
//
// Usage:
//
//	p5sim [-width 8|32] [-frames N] [-size imix|N] [-density F] [-errors F] [-v]
//	      [-telemetry ADDR] [-flight DIR] [-prof DIR]
//	      [-sonet] [-slip-every N] [-los-windows N] [-los-frames N] [-dup-every N]
//	      [-protect]
//	      [-engine N] [-shards N]
//	      [-listen HOST:PORT | -dial HOST:PORT] [-net-transport udp|tcp]
//	      [-net-keepalive N] [-tick-us N] [-net-stall FROM:TO] [-net-blackout FROM:TO]
//	      [-scenario FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"time"

	gigapos "repro"
	"repro/internal/aps"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/netsim"
	"repro/internal/p5"
	"repro/internal/ppp"
	"repro/internal/prof"
	"repro/internal/rtl"
	"repro/internal/sonet"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// simConfig is one p5sim run, decoupled from flag parsing so tests can
// drive run() directly.
type simConfig struct {
	width   int
	frames  int
	size    string
	density float64
	errRate float64
	seed    uint64
	verbose bool

	// telemetryAddr, when non-empty, serves the exposition endpoints
	// after the run (":0" picks a free port).
	telemetryAddr string

	// flightDir, when non-empty, arms the flight recorder in the
	// -protect and -engine modes and writes black-box captures there.
	flightDir string

	// profDir, when non-empty, captures runtime profiles for the whole
	// run into this directory and (in the -engine mode) arms per-shard
	// stage cost accounting.
	profDir string
	// profSession is the live capture started by run(); modes stop it
	// through stopProf after their report.
	profSession *prof.Session

	sonetMode bool
	faults    fault.RandomConfig

	// protectMode runs the 1+1 APS failover scenario; cutFrames is the
	// length of the scripted working-line cut in STM-1 frame times.
	protectMode bool
	cutFrames   int

	// engineLinks, when nonzero, runs the sharded line-card engine with
	// this many loopback link pairs across engineShards workers.
	engineLinks  int
	engineShards int

	// scenarioFile, when non-empty, runs a declarative chaos drill from
	// this JSON file on a simulated SONET ring and exits non-zero if any
	// of the drill's assertions fail.
	scenarioFile string

	// net holds the -listen/-dial socket line-card configuration; the
	// mode is active when either address is set.
	net netConfig

	// mountExtra, when non-nil, adds mode-specific handlers (the
	// transport /health and /status board) to the telemetry mux.
	mountExtra func(*http.ServeMux)

	// scrape, when set, is called with the endpoint base URL while the
	// server is up; the server is then shut down instead of lingering.
	// Test hook — nil in normal operation.
	scrape func(baseURL string)
}

// usageError marks bad invocations (exit status 2 rather than 1).
type usageError string

func (e usageError) Error() string { return string(e) }

func main() {
	cfg := simConfig{}
	flag.IntVar(&cfg.width, "width", 32, "datapath width in bits (8 or 32)")
	flag.IntVar(&cfg.frames, "frames", 100, "datagrams to send")
	flag.StringVar(&cfg.size, "size", "imix", "datagram sizes: 'imix' or a fixed byte count")
	flag.Float64Var(&cfg.density, "density", 0.02, "payload escape density (0..1)")
	flag.Float64Var(&cfg.errRate, "errors", 0, "per-word probability of a line bit error")
	flag.Uint64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.BoolVar(&cfg.verbose, "v", false, "print per-frame dispositions")
	flag.StringVar(&cfg.telemetryAddr, "telemetry", "", "serve /metrics, /debug/vars, /debug/pprof/, /trace on this address after the run")
	flag.StringVar(&cfg.flightDir, "flight", "", "arm the flight recorder (with -protect or -engine); write .p5fr captures to this directory")
	flag.StringVar(&cfg.profDir, "prof", "", "capture CPU/heap/mutex/block profiles for the run into this directory; with -engine, arm per-shard stage accounting")
	flag.BoolVar(&cfg.sonetMode, "sonet", false, "carry the line over an STM-1 section with fault injection")
	flag.BoolVar(&cfg.protectMode, "protect", false, "run the 1+1 APS failover scenario (working-line cut of -los-frames frames)")
	flag.IntVar(&cfg.engineLinks, "engine", 0, "run the sharded line-card engine with this many loopback link pairs")
	flag.IntVar(&cfg.engineShards, "shards", 0, "engine worker goroutines (default GOMAXPROCS)")
	flag.StringVar(&cfg.scenarioFile, "scenario", "", "run a declarative chaos drill (JSON, see scenarios/) on a simulated ring")
	flag.StringVar(&cfg.net.listen, "listen", "", "run the listener half of a two-process link over real sockets, binding HOST:PORT (link i uses PORT+i)")
	flag.StringVar(&cfg.net.dial, "dial", "", "run the dialer half of a two-process link, connecting to the peer's HOST:PORT")
	flag.StringVar(&cfg.net.proto, "net-transport", "udp", "socket transport for -listen/-dial: udp or tcp")
	flag.Int64Var(&cfg.net.keepalive, "net-keepalive", 64, "transport keepalive probe period in virtual ticks")
	flag.IntVar(&cfg.net.tickUS, "tick-us", 50, "wall-clock microseconds per virtual tick in network mode")
	netStall := flag.String("net-stall", "", "hold port 0's transmit chunks in the tick window FROM:TO (after convergence), releasing them when it ends")
	netBlackout := flag.String("net-blackout", "", "cut port 0's line completely in the tick window FROM:TO (after convergence)")
	slipEvery := flag.Int("slip-every", 0, "sonet: mean octets between byte slips (0 = none)")
	losWindows := flag.Int("los-windows", 0, "sonet: number of timed line cuts")
	losFrames := flag.Int("los-frames", 30, "sonet: length of each line cut in STM-1 frames")
	dupEvery := flag.Int("dup-every", 0, "sonet: mean octets between 16-octet duplications (0 = none)")
	flag.Parse()
	cfg.faults = fault.RandomConfig{
		SlipEvery:  *slipEvery,
		LOSWindows: *losWindows,
		LOSLen:     *losFrames * sonet.STM1.FrameBytes(),
		DupEvery:   *dupEvery,
	}
	cfg.cutFrames = *losFrames
	var werr error
	if cfg.net.stallFrom, cfg.net.stallTo, werr = parseWindow(*netStall); werr != nil {
		fmt.Fprintln(os.Stderr, "p5sim: bad -net-stall:", werr)
		os.Exit(2)
	}
	if cfg.net.blackoutFrom, cfg.net.blackoutTo, werr = parseWindow(*netBlackout); werr != nil {
		fmt.Fprintln(os.Stderr, "p5sim: bad -net-blackout:", werr)
		os.Exit(2)
	}

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "p5sim:", err)
		if _, ok := err.(usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run executes one simulation per cfg, writing the report to out.
func run(cfg simConfig, out io.Writer) error {
	if cfg.flightDir != "" {
		// Capture writes land in Recorder.LastErr, not the report —
		// create the directory up front so a missing one is a loud
		// startup error instead of silently lost captures.
		if err := os.MkdirAll(cfg.flightDir, 0o755); err != nil {
			return fmt.Errorf("-flight: %w", err)
		}
	}
	if cfg.profDir != "" {
		s, err := prof.StartSession(cfg.profDir, prof.SessionConfig{})
		if err != nil {
			return fmt.Errorf("-prof: %w", err)
		}
		cfg.profSession = s
	}
	if cfg.scenarioFile != "" {
		return runScenario(cfg, out)
	}
	if cfg.net.listen != "" || cfg.net.dial != "" {
		return runNet(cfg, cfg.net, out)
	}
	if cfg.engineLinks > 0 {
		return runEngine(cfg, out)
	}
	if cfg.protectMode {
		return runProtect(cfg, out)
	}
	if cfg.sonetMode {
		return runSONET(cfg, out)
	}
	return runLoopback(cfg, out)
}

// stopProf ends the run-wide profile capture and reports the files. It
// runs from serveTelemetry — after every mode's report, before the
// endpoint (which may linger forever) comes up.
func stopProf(cfg simConfig, out io.Writer) error {
	if cfg.profSession == nil {
		return nil
	}
	files, err := cfg.profSession.Stop()
	if err != nil {
		return fmt.Errorf("-prof: %w", err)
	}
	fmt.Fprintf(out, "  profiles         : %d written to %s (go tool pprof %s/cpu.pprof)\n",
		len(files), cfg.profDir, cfg.profDir)
	return nil
}

// flightProfiler builds the flight-capture profile hook: every
// black-box dump drops a tagged runtime profile snapshot next to its
// .p5fr file. Nil when -prof is not armed.
func flightProfiler(cfg simConfig) func(*flight.Capture) {
	if cfg.profDir == "" {
		return nil
	}
	return func(c *flight.Capture) {
		prof.WriteSnapshot(cfg.profDir, fmt.Sprintf("flight-%s-%d", c.Reason, c.Seq))
	}
}

// parseCommon validates the flag combinations shared by both modes and
// returns the byte width and size distribution.
func parseCommon(cfg simConfig) (int, netsim.SizeDist, error) {
	w := cfg.width / 8
	if w != 1 && w != 4 {
		return 0, nil, usageError("-width must be 8 or 32")
	}
	var dist netsim.SizeDist = netsim.IMIX{}
	if cfg.size != "imix" {
		n, err := strconv.Atoi(cfg.size)
		if err != nil {
			return 0, nil, usageError("bad -size: " + err.Error())
		}
		dist = netsim.Fixed(n)
	}
	return w, dist, nil
}

// newTelemetry builds the registry/tracer pair when the run should be
// instrumented (a serve address or a scrape hook is configured).
func newTelemetry(cfg simConfig) (*telemetry.Registry, *telemetry.Tracer) {
	if cfg.telemetryAddr == "" && cfg.scrape == nil {
		return nil, nil
	}
	reg := telemetry.NewRegistry()
	// Instrumented runs always carry the Go runtime's own vitals —
	// GC pauses, scheduler latency, goroutine count — refreshed at
	// every scrape through the registry's sampler hook.
	prof.ExportRuntime(reg)
	return reg, telemetry.NewTracer(4096)
}

// serveTelemetry starts the exposition endpoint after a run, mounting
// the flight board at /slo when one exists. With a scrape hook the
// server lives only for the hook call; otherwise it lingers until the
// process is killed so the operator can attach p5stat, curl /metrics,
// or pull a profile.
func serveTelemetry(cfg simConfig, reg *telemetry.Registry, tr *telemetry.Tracer, board *flight.Board, out io.Writer) error {
	if err := stopProf(cfg, out); err != nil {
		return err
	}
	if reg == nil {
		return nil
	}
	addr := cfg.telemetryAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	telemetry.Publish(reg, "p5sim")
	mux := telemetry.Mux(reg, tr)
	endpoints := "/debug/vars /debug/pprof/ /trace"
	if board != nil {
		mux.Handle("/slo", board.Handler())
		endpoints += " /slo"
	}
	if cfg.mountExtra != nil {
		cfg.mountExtra(mux)
		endpoints += " /health /status"
	}
	srv, err := telemetry.ServeHandler(addr, mux)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  telemetry        : http://%s/metrics (%s)\n", srv.Addr, endpoints)
	if cfg.scrape != nil {
		cfg.scrape("http://" + srv.Addr)
		return srv.Close()
	}
	select {} // serve until interrupted
}

// flightSummary renders the one-line flight report: aggregate frames
// tracked/lost, captures dumped, and the worst SLO burn across the
// board.
func flightSummary(out io.Writer, board *flight.Board, dir string) {
	doc := board.Snapshot()
	var tracked, lost, captures uint64
	exemplars := 0
	for _, l := range doc.Links {
		tracked += l.Tracked
		lost += l.Lost
		captures += l.Captures
		exemplars += len(l.Exemplars)
	}
	worst, alarm := 0.0, false
	for _, s := range doc.SLOs {
		if s.WorstBurn > worst {
			worst = s.WorstBurn
		}
		alarm = alarm || s.Alarm
	}
	fmt.Fprintf(out, "  flight           : tracked=%d lost=%d captures=%d exemplars=%d worst-burn=%.2f alarm=%v dir=%s\n",
		tracked, lost, captures, exemplars, worst, alarm, dir)
}

// runEngine is the -engine mode: the sharded software line card. N
// loopback PPP pairs negotiate in parallel, then run -frames engine
// steps of steady-state bidirectional traffic; the report is the
// aggregate delivered rate and the wire rate the pairs sustained.
func runEngine(cfg simConfig, out io.Writer) error {
	size := 512
	if cfg.size != "imix" {
		n, err := strconv.Atoi(cfg.size)
		if err != nil || n <= 0 {
			return usageError("bad -size: want a positive byte count")
		}
		size = n
	}
	steps := cfg.frames
	if steps <= 0 {
		steps = 1000
	}
	e := gigapos.NewEngine(gigapos.EngineConfig{
		Links:       cfg.engineLinks,
		Shards:      cfg.engineShards,
		PayloadSize: size,
		Batch:       8,
	})
	defer e.Close()
	reg, tr := newTelemetry(cfg)
	if reg != nil {
		e.Instrument(reg, "linecard")
	}
	var col *prof.Collector
	if cfg.profDir != "" {
		col = e.ArmProfile(reg, "linecard", prof.Config{})
	}
	var board *flight.Board
	if cfg.flightDir != "" {
		board = e.ArmFlight(reg, flight.Config{Dir: cfg.flightDir, Profiler: flightProfiler(cfg)})
	}

	if bu := e.BringUp(1024); !bu.Ready {
		return fmt.Errorf("engine bring-up failed: %s", bu)
	}
	e.Run(32) // settle buffers at steady-state capacity
	start := e.Stats()
	t0 := time.Now()
	e.Run(steps)
	elapsed := time.Since(t0)
	st := e.Stats()

	delivered := st.Datagrams - start.Datagrams
	payload := st.PayloadBytes - start.PayloadBytes
	line := st.LineBytes - start.LineBytes
	secs := elapsed.Seconds()

	fmt.Fprintf(out, "Sharded line-card engine (software PPP, fused CRC+stuff fast path)\n")
	fmt.Fprintf(out, "  topology         : %d link pairs on %d shard workers (GOMAXPROCS=%d)\n",
		st.Links, st.Shards, runtime.GOMAXPROCS(0))
	fmt.Fprintf(out, "  traffic          : %d steps, %d-octet datagrams, batch 8 per direction\n",
		steps, size)
	fmt.Fprintf(out, "  delivered        : %d datagrams, %d payload octets (rx-errors=%d)\n",
		delivered, payload, st.RxErrors)
	fmt.Fprintf(out, "  aggregate        : %.0f frames/s, %.3f Gb/s payload, %.3f Gb/s line\n",
		float64(delivered)/secs, float64(payload)*8/secs/1e9, float64(line)*8/secs/1e9)
	fmt.Fprintf(out, "  paper scale      : %.2fx the 2.488 Gb/s STM-16 line rate\n",
		float64(line)*8/secs/1e9/2.488)
	if col != nil {
		sum := col.Summary()
		fmt.Fprintf(out, "  stage profile    : %d shards, %d/%d steps sampled, shard imbalance %d‰\n",
			sum.Shards, sum.Sampled, sum.Steps, sum.ImbalancePerMille)
		for st := prof.Stage(0); int(st) < prof.NumStages; st++ {
			if sum.StageCount[st] == 0 {
				continue
			}
			fmt.Fprintf(out, "    %-9s: %8.0f ns/step (%d samples)\n",
				st, sum.PerStep(st), sum.StageCount[st])
		}
	}
	if board != nil {
		flightSummary(out, board, cfg.flightDir)
	}
	return serveTelemetry(cfg, reg, tr, board, out)
}

// runLoopback is the default pipeline: transmitter and receiver share
// one simulation with the line model looping octets straight back.
func runLoopback(cfg simConfig, out io.Writer) error {
	w, dist, err := parseCommon(cfg)
	if err != nil {
		return err
	}
	gen := netsim.NewGen(cfg.seed, dist, cfg.density)
	sys := p5.NewSystem(w)
	reg, tr := newTelemetry(cfg)
	if reg != nil {
		sys.Instrument(reg, "p5")
	}

	if cfg.errRate > 0 {
		rng := netsim.NewRand(cfg.seed ^ 0xBEEF)
		sys.Line.Corrupt = func(f rtl.Flit, cycle int64) rtl.Flit {
			if rng.Float64() < cfg.errRate {
				lane := rng.Intn(f.N)
				f.SetByte(lane, f.Byte(lane)^byte(1<<uint(rng.Intn(8))))
			}
			return f
		}
	}

	var payloadBits int64
	for i := 0; i < cfg.frames; i++ {
		d := gen.Next()
		payloadBits += int64(len(d)) * 8
		sys.Send(p5.TxJob{Protocol: ppp.ProtoIPv4, Payload: d})
	}
	if !sys.RunUntilIdle(200_000_000) {
		return fmt.Errorf("system did not drain")
	}
	sys.SyncTelemetry()

	good, bad := 0, 0
	for i, f := range sys.Received() {
		if f.Err != nil {
			bad++
			if cfg.verbose {
				fmt.Fprintf(out, "frame %4d: %v\n", i, f.Err)
			}
			continue
		}
		good++
		if cfg.verbose {
			fmt.Fprintf(out, "frame %4d: %v\n", i, f.Frame)
		}
	}

	cycles := sys.Sim.Now()
	bitsPerCycle := float64(payloadBits) / float64(cycles)
	depth := synth.Total(synth.Inventory(w)).Depth
	fmaxV2 := synth.VirtexII.FMaxMHz(depth, true)

	fmt.Fprintf(out, "P5 %d-bit loopback simulation\n", cfg.width)
	fmt.Fprintf(out, "  datagrams        : %d sent, %d delivered, %d rejected\n", cfg.frames, good, bad)
	fmt.Fprintf(out, "  payload          : %d bits in %d cycles = %.2f bits/cycle\n",
		payloadBits, cycles, bitsPerCycle)
	fmt.Fprintf(out, "  @ 78.125 MHz     : %.3f Gb/s goodput (paper line rate: %.1f Gb/s)\n",
		bitsPerCycle*synth.RequiredMHz/1000, float64(cfg.width)*78.125/1000)
	fmt.Fprintf(out, "  @ Virtex-II fmax : %.3f Gb/s (%.1f MHz post-layout)\n",
		bitsPerCycle*fmaxV2/1000, fmaxV2)
	fmt.Fprintf(out, "  escapes inserted : %d octets; tx stalls %d; resync high-water %d/%d octets\n",
		sys.Tx.Escape.Escaped, sys.Tx.Escape.InputStalls,
		sys.Tx.Escape.HighWater(), 4*w)
	fmt.Fprintf(out, "  OAM status       : rx-good=%d rx-bad=%d fcs-err=%d aborts=%d runts=%d\n",
		sys.OAM.Read(p5.RegRxGood), sys.OAM.Read(p5.RegRxBad),
		sys.OAM.Read(p5.RegRxFCSErr), sys.OAM.Read(p5.RegRxAborts),
		sys.OAM.Read(p5.RegRxRunts))
	fmt.Fprintf(out, "  OAM interrupts   : stat=%#x causes=[%s]\n",
		sys.OAM.Read(p5.RegIntStat), causeNames(sys.OAM.Read(p5.RegIntStat)))
	return serveTelemetry(cfg, reg, tr, nil, out)
}

// causeNames decodes an interrupt status word into its mnemonics.
func causeNames(stat uint32) string {
	s := ""
	for _, c := range p5.IntCauseNames {
		if stat&c.Bit != 0 {
			if s != "" {
				s += " "
			}
			s += c.Name
		}
	}
	return s
}

// runSONET is the -sonet pipeline: P5 transmitter → STM-1 section with
// a scripted fault injector → P5 receiver, with the deframer's defect
// monitor wired into the OAM alarm register. Transmit and receive run
// on separate simulations, so their telemetry uses distinct prefixes
// (p5tx/p5rx) plus "sonet" for the section itself.
func runSONET(cfg simConfig, out io.Writer) error {
	w, dist, err := parseCommon(cfg)
	if err != nil {
		return err
	}
	gen := netsim.NewGen(cfg.seed, dist, cfg.density)
	reg, tr := newTelemetry(cfg)

	regs := p5.NewRegs()

	// Transmit: run the P5 transmitter to completion, collecting its
	// line octets.
	txSim := &rtl.Sim{}
	tx := p5.NewTransmitter(txSim, w, regs)
	sink := rtl.NewSink(tx.Out)
	txSim.Add(sink)
	var txSync func()
	if reg != nil {
		txSim.Instrument(reg, "p5tx")
		txSync = p5.InstrumentTransmitter(reg, "p5tx", txSim, tx)
	}
	var payloadBits int64
	for i := 0; i < cfg.frames; i++ {
		d := gen.Next()
		payloadBits += int64(len(d)) * 8
		tx.Framer.Enqueue(p5.TxJob{Protocol: ppp.ProtoIPv4, Payload: d})
	}
	if !txSim.RunUntil(func() bool { return !tx.Busy() && txSim.Drained() }, 200_000_000) {
		return fmt.Errorf("transmitter did not drain")
	}

	// Section: map into STM-1 transport frames, pass each frame through
	// the deterministic fault injector, demap.
	line := sink.Data
	pos := 0
	fr := sonet.NewFramer(sonet.STM1, func() (byte, bool) {
		if pos < len(line) {
			pos++
			return line[pos-1], true
		}
		return 0, false
	})
	var recovered []byte
	df := sonet.NewDeframer(sonet.STM1, func(b byte) { recovered = append(recovered, b) })

	rxSim := &rtl.Sim{}
	src := &rtl.Source{}
	rx := p5.NewReceiver(rxSim, w, regs)
	src.Out = rx.In
	rxSim.Add(src)
	var rxSync func()
	if reg != nil {
		rxSim.Instrument(reg, "p5rx")
		rxSync = p5.InstrumentReceiver(reg, "p5rx", rxSim, rx)
	}
	oam := p5.NewOAM(regs, tx, rx)
	oam.AttachSection(df)
	oam.Write(p5.RegIntMask, p5.IntOOF|p5.IntLOF|p5.IntLOS|p5.IntSDeg|p5.IntSFail)
	var sectionSync func()
	if reg != nil {
		// After AttachSection so the OAM's defect hook stays chained.
		sectionSync = df.Instrument(reg, tr, "sonet")
	}

	nFrames := (len(line)+sonet.STM1.PayloadBytes()-1)/sonet.STM1.PayloadBytes() + 2
	script := fault.Random(netsim.NewRand(cfg.seed^0xFA17), int64(nFrames*sonet.STM1.FrameBytes()), cfg.faults)
	inj := fault.NewInjector(script)
	for i := 0; i < nFrames; i++ {
		df.Feed(inj.Apply(fr.NextFrame()))
	}
	// Recovery tail: enough clean frame times for any line cut still in
	// progress to end and the defect hysteresis to integrate back in.
	tail := cfg.faults.LOSLen/sonet.STM1.FrameBytes() + 40
	for i := 0; i < tail; i++ {
		df.Feed(inj.Apply(fr.NextFrame()))
	}

	// Receive: feed the demapped octet stream to the P5 receiver.
	src.FeedBytes(recovered, w)
	if !rxSim.RunUntil(func() bool {
		return src.Pending() == 0 && !rx.Busy() && rxSim.Drained()
	}, 200_000_000) {
		return fmt.Errorf("receiver did not drain")
	}
	if reg != nil {
		txSync()
		rxSync()
		sectionSync()
		txSim.SyncTelemetry()
		rxSim.SyncTelemetry()
	}

	good, bad := 0, 0
	for i, f := range rx.Control.Queue {
		if f.Err != nil {
			bad++
			if cfg.verbose {
				fmt.Fprintf(out, "frame %4d: %v\n", i, f.Err)
			}
			continue
		}
		good++
		if cfg.verbose {
			fmt.Fprintf(out, "frame %4d: %v\n", i, f.Frame)
		}
	}

	fmt.Fprintf(out, "P5 %d-bit over STM-1 SDH section\n", cfg.width)
	fmt.Fprintf(out, "  datagrams        : %d sent, %d delivered, %d rejected\n", cfg.frames, good, bad)
	if len(script.Ops) > 0 {
		fmt.Fprintf(out, "  fault script     : %s\n", script.String())
	} else {
		fmt.Fprintf(out, "  fault script     : (clean line)\n")
	}
	fmt.Fprintf(out, "  injector         : slips +%d/-%d dup=%d los-octets=%d bit-errors=%d\n",
		inj.Stats.Inserted, inj.Stats.Deleted, inj.Stats.Duplicated,
		inj.Stats.LOSOctets, inj.Stats.BitErrors)
	fmt.Fprintf(out, "  section          : frames ok=%d errored=%d resyncs=%d b1=%d b3=%d\n",
		df.FramesOK, df.FramesErrored,
		oam.Read(p5.RegResyncs), oam.Read(p5.RegB1Errors), oam.Read(p5.RegB3Errors))
	fmt.Fprintf(out, "  alarms           : reg=%#x active=[%v] raises=%d clears=%d\n",
		oam.Read(p5.RegAlarm), oam.Alarms(),
		oam.Read(p5.RegDefectRaise), oam.Read(p5.RegDefectClear))
	fmt.Fprintf(out, "  OAM status       : rx-good=%d rx-bad=%d fcs-err=%d aborts=%d runts=%d\n",
		oam.Read(p5.RegRxGood), oam.Read(p5.RegRxBad),
		oam.Read(p5.RegRxFCSErr), oam.Read(p5.RegRxAborts), oam.Read(p5.RegRxRunts))
	fmt.Fprintf(out, "  OAM interrupts   : stat=%#x irq=%v causes=[%s]\n",
		oam.Read(p5.RegIntStat), regs.IRQ(), causeNames(oam.Read(p5.RegIntStat)))
	return serveTelemetry(cfg, reg, tr, nil, out)
}

// runProtect is the -protect scenario: two supervised PPP endpoints on
// a 1+1 protected STM-1 pair, a scripted working-line cut under live
// traffic, APS failover, and revert through wait-to-restore. One tick
// = one 125 µs frame time per direction, so the GR-253 50 ms switch
// budget is 400 ticks.
func runProtect(cfg simConfig, out io.Writer) error {
	const (
		fb        = 2430 // STM-1 frame bytes
		warmTicks = 30
		preTicks  = 50
		wtrTicks  = 100
	)
	cut := cfg.cutFrames
	if cut <= 0 {
		cut = 30
	}
	reg, tr := newTelemetry(cfg)

	lcfg := gigapos.LinkConfig{
		EchoPeriod: 8, EchoMisses: 3,
		Supervise: true, RetryMin: 8, RetryMax: 128,
	}
	pcfg := gigapos.ProtectionConfig{APS: aps.Config{
		Bidirectional: true, Revertive: true, WaitToRestore: wtrTicks,
	}}
	lcfg.Magic, lcfg.IPAddr = 0xAAAA, [4]byte{10, 0, 0, 1}
	a := gigapos.NewProtectedLink(lcfg, pcfg)
	lcfg.Magic, lcfg.IPAddr = 0xBBBB, [4]byte{10, 0, 0, 2}
	b := gigapos.NewProtectedLink(lcfg, pcfg)
	if reg != nil {
		b.Instrument(reg, tr, "link")
	}
	oam := &p5.OAM{Regs: p5.NewRegs()}
	oam.AttachAPS(b.Ctrl)
	oam.Write(p5.RegIntMask, p5.IntAPSSwitch|p5.IntFlightDump|p5.IntSLOBurn|p5.IntProfDump)
	if cfg.profDir != "" {
		// Host-demanded profile snapshots through the OAM register
		// block, alongside the run-wide session capture.
		profDir := cfg.profDir
		oam.AttachProfiler(func() error {
			_, err := prof.WriteSnapshot(profDir, "oam")
			return err
		})
	}

	// Flight recorder: arm both endpoints so a→b latency resolves, put
	// the SLO on the receiving side, and expose dumps through the OAM
	// interrupt causes. Armed before traffic, as the recorder requires.
	var board *flight.Board
	var recA, recB *flight.Recorder
	if cfg.flightDir != "" {
		fcfg := flight.Config{Dir: cfg.flightDir, Profiler: flightProfiler(cfg)}
		recA = flight.NewRecorder(reg, "prot_a", fcfg)
		recB = flight.NewRecorder(reg, "prot_b", fcfg)
		a.ArmFlight(recA)
		b.ArmFlight(recB)
		gigapos.JoinFlight(a.Link, b.Link)
		slo := b.FlightSLO(reg, "prot", flight.SLOConfig{})
		oam.AttachFlight(recB, slo)
		board = flight.NewBoard()
		board.Attach(recA)
		board.Attach(recB)
		board.AttachSLO(slo)
	}

	// The scripted per-line scenario: only the a→b working line is cut.
	var wScript, pScript fault.Script
	wScript.LOS(int64(warmTicks+preTicks)*fb, cut*fb)
	pair := fault.NewPair(wScript, pScript)

	var now int64
	tick := func() {
		now++
		a.Advance(now)
		b.Advance(now)
		wa, pa := a.NextFrames()
		wb, pb := b.NextFrames()
		b.FeedWorking(pair.Apply(0, wa))
		b.FeedProtect(pair.Apply(1, pa))
		a.FeedWorking(wb)
		a.FeedProtect(pb)
	}

	a.Open()
	a.Up()
	b.Open()
	b.Up()
	for i := 0; i < warmTicks; i++ {
		tick()
	}
	if !a.Opened() || !b.Opened() || !a.IPReady() || !b.IPReady() {
		return fmt.Errorf("protected pair did not open")
	}

	// Live traffic a→b: one sequenced datagram per tick.
	var seq, delivered, renegotiated int
	drain := func() {
		for _, d := range b.Received() {
			if len(d.Payload) >= 8 && d.Payload[0] == 0x45 {
				delivered++
			}
		}
		if !b.Opened() || !b.IPReady() {
			renegotiated++
		}
	}
	total := preTicks + cut + wtrTicks + 150
	for i := 0; i < total; i++ {
		seq++
		pl := make([]byte, 40)
		pl[0] = 0x45
		pl[4], pl[5], pl[6], pl[7] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
		if err := a.SendIPv4(pl); err != nil {
			return fmt.Errorf("send %d: %w", seq, err)
		}
		tick()
		drain()
	}

	st := b.Ctrl.Stats
	fmt.Fprintf(out, "1+1 protected PPP over STM-1 (GR-253 linear APS, bidirectional, revertive)\n")
	fmt.Fprintf(out, "  working-line cut : %d frames (%.1f ms of dead line)\n", cut, float64(cut)*0.125)
	fmt.Fprintf(out, "  traffic          : %d sent, %d delivered, %d lost in the switch windows\n",
		seq, delivered, seq-delivered)
	fmt.Fprintf(out, "  aps              : switches=%d to-protect=%d to-working=%d remote-wins=%d\n",
		st.Switches, st.ToProtect, st.ToWorking, st.RemoteWins)
	fmt.Fprintf(out, "  switch time      : %d frame times (budget 400 = 50 ms); selector now on %v\n",
		st.LastSwitchTook, b.Active())
	fmt.Fprintf(out, "  session          : lcp-renegotiations=%d supervisor-restarts=%d (hitless = 0/0)\n",
		renegotiated, b.Supervisor().Restarts)
	fmt.Fprintf(out, "  standby selector : %d payload octets recovered hot and discarded\n",
		b.DiscardedStandbyOctets)
	fmt.Fprintf(out, "  OAM aps regs     : state=%#x rx=%#04x tx=%#04x switches=%d\n",
		oam.Read(p5.RegAPSState), oam.Read(p5.RegAPSRx),
		oam.Read(p5.RegAPSTx), oam.Read(p5.RegAPSSwitches))
	fmt.Fprintf(out, "  OAM interrupts   : stat=%#x irq=%v causes=[%s]\n",
		oam.Read(p5.RegIntStat), oam.Regs.IRQ(), causeNames(oam.Read(p5.RegIntStat)))
	if board != nil {
		fmt.Fprintf(out, "  flight captures  : aps-switch=%d total=%d (p99 %d ticks a→b); OAM RegFlightCtrl=%d\n",
			recB.CapturesFor("aps-switch"), recB.Captures(), recA.P99(),
			oam.Read(p5.RegFlightCtrl))
		flightSummary(out, board, cfg.flightDir)
	}
	return serveTelemetry(cfg, reg, tr, board, out)
}
