// Command p5sim runs the cycle-accurate P5 over a synthetic IP workload
// and reports the measured line performance — the simulation
// counterpart of the paper's 2.5 Gb/s headline. With -sonet the line
// octets ride an STM-1 SDH section through a scripted fault injector
// (byte slips, duplications, timed LOS line cuts), and the OAM status
// dump includes the live SONET alarm state and latched interrupt
// causes.
//
// Usage:
//
//	p5sim [-width 8|32] [-frames N] [-size imix|N] [-density F] [-errors F] [-v]
//	      [-sonet] [-slip-every N] [-los-windows N] [-los-frames N] [-dup-every N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/p5"
	"repro/internal/ppp"
	"repro/internal/rtl"
	"repro/internal/sonet"
	"repro/internal/synth"
)

func main() {
	width := flag.Int("width", 32, "datapath width in bits (8 or 32)")
	frames := flag.Int("frames", 100, "datagrams to send")
	sizeArg := flag.String("size", "imix", "datagram sizes: 'imix' or a fixed byte count")
	density := flag.Float64("density", 0.02, "payload escape density (0..1)")
	errRate := flag.Float64("errors", 0, "per-word probability of a line bit error")
	seed := flag.Uint64("seed", 1, "workload seed")
	verbose := flag.Bool("v", false, "print per-frame dispositions")
	sonetMode := flag.Bool("sonet", false, "carry the line over an STM-1 section with fault injection")
	slipEvery := flag.Int("slip-every", 0, "sonet: mean octets between byte slips (0 = none)")
	losWindows := flag.Int("los-windows", 0, "sonet: number of timed line cuts")
	losFrames := flag.Int("los-frames", 30, "sonet: length of each line cut in STM-1 frames")
	dupEvery := flag.Int("dup-every", 0, "sonet: mean octets between 16-octet duplications (0 = none)")
	flag.Parse()

	if *sonetMode {
		runSONET(*width, *frames, *sizeArg, *density, *seed, *verbose,
			fault.RandomConfig{
				SlipEvery:  *slipEvery,
				LOSWindows: *losWindows,
				LOSLen:     *losFrames * sonet.STM1.FrameBytes(),
				DupEvery:   *dupEvery,
			})
		return
	}

	w := *width / 8
	if w != 1 && w != 4 {
		fmt.Fprintln(os.Stderr, "p5sim: -width must be 8 or 32")
		os.Exit(2)
	}
	var dist netsim.SizeDist = netsim.IMIX{}
	if *sizeArg != "imix" {
		n, err := strconv.Atoi(*sizeArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p5sim: bad -size:", err)
			os.Exit(2)
		}
		dist = netsim.Fixed(n)
	}

	gen := netsim.NewGen(*seed, dist, *density)
	sys := p5.NewSystem(w)

	if *errRate > 0 {
		rng := netsim.NewRand(*seed ^ 0xBEEF)
		sys.Line.Corrupt = func(f rtl.Flit, cycle int64) rtl.Flit {
			if rng.Float64() < *errRate {
				lane := rng.Intn(f.N)
				f.SetByte(lane, f.Byte(lane)^byte(1<<uint(rng.Intn(8))))
			}
			return f
		}
	}

	var payloadBits int64
	for i := 0; i < *frames; i++ {
		d := gen.Next()
		payloadBits += int64(len(d)) * 8
		sys.Send(p5.TxJob{Protocol: ppp.ProtoIPv4, Payload: d})
	}
	if !sys.RunUntilIdle(200_000_000) {
		fmt.Fprintln(os.Stderr, "p5sim: system did not drain")
		os.Exit(1)
	}

	good, bad := 0, 0
	for i, f := range sys.Received() {
		if f.Err != nil {
			bad++
			if *verbose {
				fmt.Printf("frame %4d: %v\n", i, f.Err)
			}
			continue
		}
		good++
		if *verbose {
			fmt.Printf("frame %4d: %v\n", i, f.Frame)
		}
	}

	cycles := sys.Sim.Now()
	bitsPerCycle := float64(payloadBits) / float64(cycles)
	depth := synth.Total(synth.Inventory(w)).Depth
	fmaxV2 := synth.VirtexII.FMaxMHz(depth, true)

	fmt.Printf("P5 %d-bit loopback simulation\n", *width)
	fmt.Printf("  datagrams        : %d sent, %d delivered, %d rejected\n", *frames, good, bad)
	fmt.Printf("  payload          : %d bits in %d cycles = %.2f bits/cycle\n",
		payloadBits, cycles, bitsPerCycle)
	fmt.Printf("  @ 78.125 MHz     : %.3f Gb/s goodput (paper line rate: %.1f Gb/s)\n",
		bitsPerCycle*synth.RequiredMHz/1000, float64(*width)*78.125/1000)
	fmt.Printf("  @ Virtex-II fmax : %.3f Gb/s (%.1f MHz post-layout)\n",
		bitsPerCycle*fmaxV2/1000, fmaxV2)
	fmt.Printf("  escapes inserted : %d octets; tx stalls %d; resync high-water %d/%d octets\n",
		sys.Tx.Escape.Escaped, sys.Tx.Escape.InputStalls,
		sys.Tx.Escape.HighWater(), 4*w)
	fmt.Printf("  OAM status       : rx-good=%d rx-bad=%d fcs-err=%d aborts=%d runts=%d\n",
		sys.OAM.Read(p5.RegRxGood), sys.OAM.Read(p5.RegRxBad),
		sys.OAM.Read(p5.RegRxFCSErr), sys.OAM.Read(p5.RegRxAborts),
		sys.OAM.Read(p5.RegRxRunts))
	fmt.Printf("  OAM interrupts   : stat=%#x causes=[%s]\n",
		sys.OAM.Read(p5.RegIntStat), causeNames(sys.OAM.Read(p5.RegIntStat)))
}

// causeNames decodes an interrupt status word into its mnemonics.
func causeNames(stat uint32) string {
	s := ""
	for _, c := range p5.IntCauseNames {
		if stat&c.Bit != 0 {
			if s != "" {
				s += " "
			}
			s += c.Name
		}
	}
	return s
}

// runSONET is the -sonet pipeline: P5 transmitter → STM-1 section with
// a scripted fault injector → P5 receiver, with the deframer's defect
// monitor wired into the OAM alarm register.
func runSONET(width, frames int, sizeArg string, density float64, seed uint64,
	verbose bool, faults fault.RandomConfig) {
	w := width / 8
	if w != 1 && w != 4 {
		fmt.Fprintln(os.Stderr, "p5sim: -width must be 8 or 32")
		os.Exit(2)
	}
	var dist netsim.SizeDist = netsim.IMIX{}
	if sizeArg != "imix" {
		n, err := strconv.Atoi(sizeArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p5sim: bad -size:", err)
			os.Exit(2)
		}
		dist = netsim.Fixed(n)
	}
	gen := netsim.NewGen(seed, dist, density)

	regs := p5.NewRegs()

	// Transmit: run the P5 transmitter to completion, collecting its
	// line octets.
	txSim := &rtl.Sim{}
	tx := p5.NewTransmitter(txSim, w, regs)
	sink := rtl.NewSink(tx.Out)
	txSim.Add(sink)
	var payloadBits int64
	for i := 0; i < frames; i++ {
		d := gen.Next()
		payloadBits += int64(len(d)) * 8
		tx.Framer.Enqueue(p5.TxJob{Protocol: ppp.ProtoIPv4, Payload: d})
	}
	if !txSim.RunUntil(func() bool { return !tx.Busy() && txSim.Drained() }, 200_000_000) {
		fmt.Fprintln(os.Stderr, "p5sim: transmitter did not drain")
		os.Exit(1)
	}

	// Section: map into STM-1 transport frames, pass each frame through
	// the deterministic fault injector, demap.
	line := sink.Data
	pos := 0
	fr := sonet.NewFramer(sonet.STM1, func() (byte, bool) {
		if pos < len(line) {
			pos++
			return line[pos-1], true
		}
		return 0, false
	})
	var recovered []byte
	df := sonet.NewDeframer(sonet.STM1, func(b byte) { recovered = append(recovered, b) })

	rxSim := &rtl.Sim{}
	src := &rtl.Source{}
	rx := p5.NewReceiver(rxSim, w, regs)
	src.Out = rx.In
	rxSim.Add(src)
	oam := p5.NewOAM(regs, tx, rx)
	oam.AttachSection(df)
	oam.Write(p5.RegIntMask, p5.IntOOF|p5.IntLOF|p5.IntLOS|p5.IntSDeg|p5.IntSFail)

	nFrames := (len(line)+sonet.STM1.PayloadBytes()-1)/sonet.STM1.PayloadBytes() + 2
	script := fault.Random(netsim.NewRand(seed^0xFA17), int64(nFrames*sonet.STM1.FrameBytes()), faults)
	inj := fault.NewInjector(script)
	for i := 0; i < nFrames; i++ {
		df.Feed(inj.Apply(fr.NextFrame()))
	}
	// Recovery tail: enough clean frame times for any line cut still in
	// progress to end and the defect hysteresis to integrate back in.
	tail := faults.LOSLen/sonet.STM1.FrameBytes() + 40
	for i := 0; i < tail; i++ {
		df.Feed(inj.Apply(fr.NextFrame()))
	}

	// Receive: feed the demapped octet stream to the P5 receiver.
	src.FeedBytes(recovered, w)
	if !rxSim.RunUntil(func() bool {
		return src.Pending() == 0 && !rx.Busy() && rxSim.Drained()
	}, 200_000_000) {
		fmt.Fprintln(os.Stderr, "p5sim: receiver did not drain")
		os.Exit(1)
	}

	good, bad := 0, 0
	for i, f := range rx.Control.Queue {
		if f.Err != nil {
			bad++
			if verbose {
				fmt.Printf("frame %4d: %v\n", i, f.Err)
			}
			continue
		}
		good++
		if verbose {
			fmt.Printf("frame %4d: %v\n", i, f.Frame)
		}
	}

	fmt.Printf("P5 %d-bit over STM-1 SDH section\n", width)
	fmt.Printf("  datagrams        : %d sent, %d delivered, %d rejected\n", frames, good, bad)
	if len(script.Ops) > 0 {
		fmt.Printf("  fault script     : %s\n", script.String())
	} else {
		fmt.Printf("  fault script     : (clean line)\n")
	}
	fmt.Printf("  injector         : slips +%d/-%d dup=%d los-octets=%d bit-errors=%d\n",
		inj.Stats.Inserted, inj.Stats.Deleted, inj.Stats.Duplicated,
		inj.Stats.LOSOctets, inj.Stats.BitErrors)
	fmt.Printf("  section          : frames ok=%d errored=%d resyncs=%d b1=%d b3=%d\n",
		df.FramesOK, df.FramesErrored,
		oam.Read(p5.RegResyncs), oam.Read(p5.RegB1Errors), oam.Read(p5.RegB3Errors))
	fmt.Printf("  alarms           : reg=%#x active=[%v] raises=%d clears=%d\n",
		oam.Read(p5.RegAlarm), oam.Alarms(),
		oam.Read(p5.RegDefectRaise), oam.Read(p5.RegDefectClear))
	fmt.Printf("  OAM status       : rx-good=%d rx-bad=%d fcs-err=%d aborts=%d runts=%d\n",
		oam.Read(p5.RegRxGood), oam.Read(p5.RegRxBad),
		oam.Read(p5.RegRxFCSErr), oam.Read(p5.RegRxAborts), oam.Read(p5.RegRxRunts))
	fmt.Printf("  OAM interrupts   : stat=%#x irq=%v causes=[%s]\n",
		oam.Read(p5.RegIntStat), regs.IRQ(), causeNames(oam.Read(p5.RegIntStat)))
}
