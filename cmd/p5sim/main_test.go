package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/sonet"
	"repro/internal/telemetry"
)

// scrapeMetrics GETs base+path and returns the body.
func scrapeGet(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// seriesMap scrapes /metrics and parses it into series name → value.
func seriesMap(t *testing.T, base string) map[string]float64 {
	t.Helper()
	code, body := scrapeGet(t, base, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	parsed, err := telemetry.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	out := make(map[string]float64, len(parsed))
	for _, s := range parsed {
		out[s.Full] = s.Value
	}
	return out
}

// TestLoopbackTelemetryScrape is the acceptance path: a framed burst
// with injected line errors, then an HTTP scrape of /metrics must show
// nonzero per-stage occupancy, stall, and FCS-error series, and the
// debug endpoints must answer.
func TestLoopbackTelemetryScrape(t *testing.T) {
	var series map[string]float64
	cfg := simConfig{
		width: 8, frames: 20, size: "imix", density: 0.02,
		errRate: 0.001, seed: 7,
		telemetryAddr: "127.0.0.1:0",
		scrape: func(base string) {
			series = seriesMap(t, base)
			if code, body := scrapeGet(t, base, "/debug/vars"); code != http.StatusOK {
				t.Errorf("/debug/vars status %d", code)
			} else if !bytes.Contains(body, []byte(`"p5sim"`)) {
				t.Error("/debug/vars does not include the published registry")
			}
			if code, _ := scrapeGet(t, base, "/debug/pprof/"); code != http.StatusOK {
				t.Errorf("/debug/pprof/ status %d", code)
			}
			if code, _ := scrapeGet(t, base, "/trace"); code != http.StatusOK {
				t.Errorf("/trace status %d", code)
			}
		},
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if series == nil {
		t.Fatal("scrape hook never ran")
	}
	if !strings.Contains(out.String(), "telemetry        : http://") {
		t.Error("report does not mention the telemetry endpoint")
	}
	for _, name := range []string{
		`p5_cycles_total`,
		`p5_wire_occupied_cycles_total{wire="tx.line"}`,
		`p5_wire_stalls_total{wire="tx.body"}`,
		`p5_unit_busy_cycles_total{unit="framer"}`,
		`p5_tx_frames_total`,
		`p5_tx_stall_cycles_total`,
		`p5_rx_fcs_errors_total`,
		`p5_line_words_total`,
	} {
		if v, ok := series[name]; !ok || v == 0 {
			t.Errorf("series %s = %v (present=%v), want nonzero", name, v, ok)
		}
	}
}

// TestSONETTelemetryScrape runs the -sonet pipeline with byte slips and
// a line cut, and checks the section/defect series and trace events
// appear alongside the per-direction pipeline series.
func TestSONETTelemetryScrape(t *testing.T) {
	var series map[string]float64
	var trace []telemetry.Event
	cfg := simConfig{
		width: 8, frames: 20, size: "imix", density: 0.02, seed: 3,
		sonetMode: true,
		faults: fault.RandomConfig{
			SlipEvery:  4000,
			LOSWindows: 1,
			LOSLen:     10 * sonet.STM1.FrameBytes(),
		},
		telemetryAddr: "127.0.0.1:0",
		scrape: func(base string) {
			series = seriesMap(t, base)
			code, body := scrapeGet(t, base, "/trace")
			if code != http.StatusOK {
				t.Fatalf("/trace status %d", code)
			}
			var err error
			trace, err = telemetry.ReadEvents(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("decode /trace: %v", err)
			}
		},
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if series == nil {
		t.Fatal("scrape hook never ran")
	}
	for _, name := range []string{
		`p5tx_cycles_total`,
		`p5tx_tx_frames_total`,
		`p5tx_unit_busy_cycles_total{unit="escape_gen"}`,
		`p5rx_rx_frames_good_total`,
		`p5rx_unit_busy_cycles_total{unit="delineator"}`,
		`sonet_frames_ok_total`,
		`sonet_resyncs_total`,
		`sonet_defect_raises_total`,
		`sonet_defect_clears_total`,
	} {
		if v, ok := series[name]; !ok || v == 0 {
			t.Errorf("series %s = %v (present=%v), want nonzero", name, v, ok)
		}
	}
	raises := 0
	for _, e := range trace {
		if e.Scope == "sonet" && e.Name == "defect-raise" {
			raises++
		}
	}
	if raises == 0 {
		t.Error("no defect-raise trace events from the line cut")
	}
}

// TestProtectTelemetryScrape is the protection acceptance path: the
// -protect failover scenario must expose the APS switch counter and
// the switch-duration histogram through /metrics, emit aps switch
// trace events, and report a hitless run (no LCP renegotiation).
func TestProtectTelemetryScrape(t *testing.T) {
	var series map[string]float64
	var trace []telemetry.Event
	cfg := simConfig{
		protectMode: true, cutFrames: 30,
		telemetryAddr: "127.0.0.1:0",
		scrape: func(base string) {
			series = seriesMap(t, base)
			code, body := scrapeGet(t, base, "/trace")
			if code != http.StatusOK {
				t.Fatalf("/trace status %d", code)
			}
			var err error
			trace, err = telemetry.ReadEvents(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("decode /trace: %v", err)
			}
		},
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if series == nil {
		t.Fatal("scrape hook never ran")
	}
	if got := series[`aps_switches_total`]; got != 2 {
		t.Errorf("aps_switches_total = %v, want 2 (failover + revert)", got)
	}
	if got := series[`aps_switch_duration_count`]; got != 2 {
		t.Errorf("aps_switch_duration_count = %v, want 2", got)
	}
	// Both switches completed inside the 50 ms budget bucket.
	if got := series[`aps_switch_duration_bucket{le="400"}`]; got != 2 {
		t.Errorf(`duration bucket le=400 = %v, want 2`, got)
	}
	for _, name := range []string{
		`aps_to_protect_total`, `aps_to_working_total`,
		`link_working_b2_errors_total`, // the cut corrupts line parity before LOS bites
		`link_protect_frames_ok_total`,
		`link_standby_discarded_octets_total`,
	} {
		if v, ok := series[name]; !ok || v == 0 {
			t.Errorf("series %s = %v (present=%v), want nonzero", name, v, ok)
		}
	}
	if got := series[`aps_active`]; got != 0 {
		t.Errorf("aps_active = %v, want 0 (reverted to working)", got)
	}
	switches := 0
	for _, e := range trace {
		if e.Scope == "aps" && e.Name == "switch" {
			switches++
		}
	}
	if switches != 2 {
		t.Errorf("aps switch trace events = %d, want 2", switches)
	}
	if !strings.Contains(out.String(), "lcp-renegotiations=0") {
		t.Errorf("report does not show a hitless run:\n%s", out.String())
	}
}

// TestProtectFlightScrape re-runs the failover scenario with the
// flight recorder armed: the APS switch must dump exactly one capture
// per selector movement (decodable from disk), the SLO burn gauges and
// latency histograms must appear in /metrics, and /slo must serve the
// error-budget board.
func TestProtectFlightScrape(t *testing.T) {
	dir := t.TempDir()
	var series map[string]float64
	var board flight.BoardJSON
	cfg := simConfig{
		protectMode: true, cutFrames: 30,
		telemetryAddr: "127.0.0.1:0",
		flightDir:     dir,
		scrape: func(base string) {
			series = seriesMap(t, base)
			code, body := scrapeGet(t, base, "/slo")
			if code != http.StatusOK {
				t.Fatalf("/slo status %d", code)
			}
			var err error
			board, err = flight.ReadBoard(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("decode /slo: %v", err)
			}
		},
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if series == nil {
		t.Fatal("scrape hook never ran")
	}
	for _, name := range []string{
		`flight_frames_tracked_total{link="prot_a"}`,
		`flight_e2e_latency_ticks_count{link="prot_a"}`,
		`slo_worst_burn_rate{slo="prot"}`,
		`slo_error_budget_remaining{slo="prot"}`,
		`flight_captures_total{link="prot_b"}`,
	} {
		if _, ok := series[name]; !ok {
			t.Errorf("series %s missing from /metrics", name)
		}
	}
	if got := series[`flight_captures_total{link="prot_b"}`]; got != 2 {
		t.Errorf("captures = %v, want 2 (failover + revert)", got)
	}
	var slos, links int
	for _, s := range board.SLOs {
		if s.Name == "prot" {
			slos++
		}
	}
	for _, l := range board.Links {
		if l.Link == "prot_a" && l.Tracked > 0 {
			links++
		}
	}
	if slos != 1 || links != 1 {
		t.Errorf("/slo board missing entries: slos=%d links=%d\n%+v", slos, links, board)
	}
	// Both ends dump on each selector movement; check the receiving
	// side's two files decode back losslessly.
	files, err := filepath.Glob(filepath.Join(dir, "prot_b-*.p5fr"))
	if err != nil || len(files) != 2 {
		t.Fatalf("prot_b capture files = %v (err=%v), want 2", files, err)
	}
	for _, f := range files {
		c, err := flight.ReadFile(f)
		if err != nil {
			t.Errorf("decode %s: %v", f, err)
			continue
		}
		if c.Reason != "aps-switch" || len(c.Events) == 0 {
			t.Errorf("%s: reason=%q events=%d, want aps-switch with events", f, c.Reason, len(c.Events))
		}
	}
	if !strings.Contains(out.String(), "flight captures  : aps-switch=2") {
		t.Errorf("report missing the flight capture line:\n%s", out.String())
	}
}

// TestEngineModeScrape runs the -engine line card and checks the report
// plus the exported aggregate series.
func TestEngineModeScrape(t *testing.T) {
	var series map[string]float64
	var board flight.BoardJSON
	cfg := simConfig{
		engineLinks: 4, engineShards: 2,
		frames: 200, size: "256",
		telemetryAddr: "127.0.0.1:0",
		flightDir:     t.TempDir(),
		scrape: func(base string) {
			series = seriesMap(t, base)
			code, body := scrapeGet(t, base, "/slo")
			if code != http.StatusOK {
				t.Fatalf("/slo status %d", code)
			}
			var err error
			board, err = flight.ReadBoard(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("decode /slo: %v", err)
			}
		},
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if series == nil {
		t.Fatal("scrape hook never ran")
	}
	for _, name := range []string{
		`engine_datagrams_total{engine="linecard"}`,
		`engine_payload_bytes_total{engine="linecard"}`,
		`engine_line_bytes_total{engine="linecard"}`,
		`engine_steps_total{engine="linecard"}`,
		`engine_links{engine="linecard"}`,
		`engine_shards{engine="linecard"}`,
		`flight_frames_tracked_total{link="port0_a"}`,
	} {
		if v, ok := series[name]; !ok || v == 0 {
			t.Errorf("series %s = %v (present=%v), want nonzero", name, v, ok)
		}
	}
	// The burn gauge is present and zero on a clean run.
	if v, ok := series[`slo_worst_burn_rate{slo="port0"}`]; !ok || v != 0 {
		t.Errorf(`slo_worst_burn_rate{slo="port0"} = %v (present=%v), want 0`, v, ok)
	}
	if len(board.SLOs) != 4 || len(board.Links) != 8 {
		t.Errorf("/slo board: %d slos %d links, want 4/8", len(board.SLOs), len(board.Links))
	}
	for _, l := range board.Links {
		if l.Lost != 0 {
			t.Errorf("clean engine run lost %d frames on %s", l.Lost, l.Link)
		}
	}
	report := out.String()
	for _, want := range []string{
		"4 link pairs on 2 shard workers",
		"rx-errors=0",
		"frames/s",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestEngineProfMode runs the -engine line card with the performance
// observatory armed: the profile files land in the directory, the
// report carries the stage breakdown, and the prof_* and runtime_*
// series join the exposition.
func TestEngineProfMode(t *testing.T) {
	profDir := t.TempDir()
	var series map[string]float64
	cfg := simConfig{
		engineLinks: 4, engineShards: 2,
		frames: 200, size: "256",
		telemetryAddr: "127.0.0.1:0",
		profDir:       profDir,
		scrape:        func(base string) { series = seriesMap(t, base) },
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if series == nil {
		t.Fatal("scrape hook never ran")
	}
	for _, name := range []string{
		`prof_stage_ns_total{engine="linecard",shard="0",stage="encode"}`,
		`prof_stage_ns_total{engine="linecard",shard="1",stage="tokenize"}`,
		`prof_barrier_wait_ns_total{engine="linecard",shard="0"}`,
		`prof_sampled_steps_total{engine="linecard"}`,
		`runtime_goroutines`,
		`runtime_heap_bytes`,
	} {
		if v, ok := series[name]; !ok || v == 0 {
			t.Errorf("series %s = %v (present=%v), want nonzero", name, v, ok)
		}
	}
	report := out.String()
	for _, want := range []string{
		"stage profile    : 2 shards,",
		"tokenize :",
		"barrier  :",
		"profiles         : 6 written to " + profDir,
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	for _, f := range []string{"cpu.pprof", "heap.pprof", "mutex.pprof",
		"block.pprof", "allocs.pprof", "goroutine.pprof"} {
		st, err := os.Stat(filepath.Join(profDir, f))
		if err != nil {
			t.Errorf("%s: %v", f, err)
		} else if st.Size() == 0 {
			t.Errorf("%s: empty profile", f)
		}
	}
}

// TestRunRejectsBadFlags pins the usage-error path.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(simConfig{width: 16, frames: 1, size: "imix"}, &out); err == nil {
		t.Fatal("width 16 accepted")
	} else if _, ok := err.(usageError); !ok {
		t.Fatalf("want usageError, got %T", err)
	}
	if err := run(simConfig{width: 8, frames: 1, size: "bogus"}, &out); err == nil {
		t.Fatal("bad size accepted")
	}
	if err := run(simConfig{engineLinks: 2, frames: 1, size: "bogus"}, &out); err == nil {
		t.Fatal("bad engine size accepted")
	}
}

// TestScenarioMode runs the committed fiber-cut drill through the
// -scenario path (PASS, report names the drill) and a deliberately
// impossible drill (FAIL, non-nil error, report points at the .p5fr
// captures).
func TestScenarioMode(t *testing.T) {
	var out bytes.Buffer
	cfg := simConfig{
		scenarioFile: filepath.Join("..", "..", "scenarios", "fiber-cut.json"),
		flightDir:    t.TempDir(),
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("fiber-cut drill failed: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{`Chaos drill "fiber-cut"`, "verdict          : PASS"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// An impossible drill: assert zero switches across a fibre cut.
	bad := filepath.Join(t.TempDir(), "impossible.json")
	js := `{
	  "name": "impossible", "ring": {"nodes": 4},
	  "circuits": [{"name": "c0", "a": 0, "b": 2, "slot": 0}],
	  "duration": 600,
	  "events": [{"at": 100, "action": "cut", "between": [0, 1]}],
	  "assert": {"circuits": [{"circuit": "c0", "switches": 0}]}
	}`
	if err := os.WriteFile(bad, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err := run(simConfig{scenarioFile: bad, flightDir: t.TempDir()}, &out)
	if err == nil {
		t.Fatalf("impossible drill passed:\n%s", out.String())
	}
	if _, ok := err.(usageError); ok {
		t.Fatalf("assertion failure reported as usage error: %v", err)
	}
	report = out.String()
	for _, want := range []string{"verdict          : FAIL", "scenario-fail", ".p5fr"} {
		if !strings.Contains(report, want) {
			t.Errorf("failure report missing %q:\n%s", want, report)
		}
	}

	// A missing file is a usage error (exit 2), not a drill failure.
	if err := run(simConfig{scenarioFile: "no-such.json"}, &out); err == nil {
		t.Fatal("missing scenario file accepted")
	} else if _, ok := err.(usageError); !ok {
		t.Fatalf("want usageError for missing file, got %T", err)
	}
}
