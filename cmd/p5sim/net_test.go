package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
)

// freeUDPPort reserves and releases a loopback UDP port for the test
// to hand to both halves.
func freeUDPPort(t *testing.T) int {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := c.LocalAddr().(*net.UDPAddr).Port
	c.Close()
	return port
}

// netReport extracts the NET-REPORT key=value fields from a run's
// output.
func netReport(t *testing.T, out string) map[string]string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "NET-REPORT ") {
			continue
		}
		kv := make(map[string]string)
		for _, f := range strings.Fields(line)[1:] {
			k, v, ok := strings.Cut(f, "=")
			if ok {
				kv[k] = v
			}
		}
		return kv
	}
	t.Fatalf("no NET-REPORT line in output:\n%s", out)
	return nil
}

// TestNetModeUDPTwoHalves drives both halves of the -listen/-dial mode
// in one process over real UDP loopback sockets, with a stall window
// scripted on the listener's line. Both halves must converge, ride the
// stall out with zero LCP renegotiations, and the listener's telemetry
// endpoint must serve /health, /status and the transport_* series.
func TestNetModeUDPTwoHalves(t *testing.T) {
	addr := fmt.Sprintf("127.0.0.1:%d", freeUDPPort(t))
	common := simConfig{frames: 600, size: "imix", engineLinks: 1}
	common.net = netConfig{proto: "udp", keepalive: 64, tickUS: 20}

	var healthCode int
	var statusDoc struct {
		Healthy bool `json:"healthy"`
		Info    struct {
			Start          string `json:"start"`
			WireVersion    int    `json:"wire_version"`
			FlightArmed    bool   `json:"flight_armed"`
			LatencyTracing bool   `json:"latency_tracing"`
		} `json:"info"`
		Transports []struct {
			Name string `json:"name"`
			Up   bool   `json:"up"`
		} `json:"transports"`
	}
	var series map[string]float64

	lcfg := common
	lcfg.net.listen = addr
	lcfg.net.stallFrom, lcfg.net.stallTo = 100, 200
	lcfg.telemetryAddr = "127.0.0.1:0"
	lcfg.scrape = func(base string) {
		healthCode, _ = scrapeGet(t, base, "/health")
		code, body := scrapeGet(t, base, "/status")
		if code != http.StatusOK {
			t.Errorf("/status code %d", code)
		} else if err := json.Unmarshal(body, &statusDoc); err != nil {
			t.Errorf("/status JSON: %v", err)
		}
		series = seriesMap(t, base)
	}
	var lout bytes.Buffer
	lerr := make(chan error, 1)
	go func() { lerr <- run(lcfg, &lout) }()

	dcfg := common
	dcfg.net.dial = addr
	var dout bytes.Buffer
	if err := run(dcfg, &dout); err != nil {
		t.Fatalf("dialer: %v\n%s", err, dout.String())
	}
	if err := <-lerr; err != nil {
		t.Fatalf("listener: %v\n%s", err, lout.String())
	}

	lr, dr := netReport(t, lout.String()), netReport(t, dout.String())
	if lr["role"] != "A" || dr["role"] != "Z" {
		t.Errorf("roles: listener=%s dialer=%s", lr["role"], dr["role"])
	}
	for name, r := range map[string]map[string]string{"listener": lr, "dialer": dr} {
		if r["delivered"] == "0" {
			t.Errorf("%s delivered nothing: %v", name, r)
		}
		if r["renegotiations"] != "0" {
			t.Errorf("%s saw %s LCP renegotiations riding the stall, want 0", name, r["renegotiations"])
		}
		if r["rx_errors"] != "0" {
			t.Errorf("%s rx_errors = %s, want 0", name, r["rx_errors"])
		}
	}

	if healthCode != http.StatusOK {
		t.Errorf("/health code %d, want 200", healthCode)
	}
	if !statusDoc.Healthy || len(statusDoc.Transports) != 1 || !statusDoc.Transports[0].Up {
		t.Errorf("/status document: %+v", statusDoc)
	}
	// The fleet-facing identity block: wire version for skew detection,
	// armed flags, and a parseable start stamp.
	if statusDoc.Info.WireVersion != 2 || !statusDoc.Info.LatencyTracing || statusDoc.Info.FlightArmed {
		t.Errorf("/status info block: %+v", statusDoc.Info)
	}
	if statusDoc.Info.Start == "" {
		t.Error("/status info.start is empty")
	}
	for _, k := range []string{"oneway_p50_us", "oneway_p99_us", "rtt_p50_us"} {
		if _, ok := lr[k]; !ok {
			t.Errorf("NET-REPORT missing %s: %v", k, lr)
		}
	}
	for _, want := range []string{
		`transport_up{line="port0_a"}`,
		`transport_tx_chunks_total{line="port0_a"}`,
		`transport_rx_chunks_total{line="port0_a"}`,
		`transport_keepalive_probes_total{line="port0_a"}`,
		`transport_oneway_latency_us_count{line="port0_a"}`,
		`transport_rtt_us_count{line="port0_a"}`,
	} {
		if _, ok := series[want]; !ok {
			t.Errorf("series %s missing from /metrics", want)
		}
	}
	if series[`transport_up{line="port0_a"}`] != 1 {
		t.Errorf("transport_up = %v, want 1", series[`transport_up{line="port0_a"}`])
	}
	if series[`transport_tx_chunks_total{line="port0_a"}`] == 0 {
		t.Error("transport_tx_chunks_total is zero after a measured run")
	}
}

// TestNetModeFlagValidation covers the usage errors.
func TestNetModeFlagValidation(t *testing.T) {
	var out bytes.Buffer
	cfg := simConfig{}
	cfg.net = netConfig{listen: "127.0.0.1:1", dial: "127.0.0.1:2", proto: "udp"}
	if err := run(cfg, &out); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Errorf("listen+dial: err = %v", err)
	}
	cfg.net = netConfig{listen: "127.0.0.1:1", proto: "sctp"}
	if err := run(cfg, &out); err == nil || !strings.Contains(err.Error(), "udp or tcp") {
		t.Errorf("bad proto: err = %v", err)
	}
	if _, _, err := parseWindow("50:40"); err == nil {
		t.Error("inverted window accepted")
	}
	if from, to, err := parseWindow("10:20"); err != nil || from != 10 || to != 20 {
		t.Errorf("parseWindow(10:20) = %d,%d,%v", from, to, err)
	}
	if from, to, err := parseWindow(""); err != nil || from != 0 || to != 0 {
		t.Errorf("parseWindow(\"\") = %d,%d,%v", from, to, err)
	}
}
