package main

import (
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	gigapos "repro"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/transport"
)

// netConfig is the -listen/-dial socket line-card mode: this process
// runs one half of the link pairs and interconnects with a peer p5sim
// over real UDP or TCP sockets. Link i uses base port + i.
type netConfig struct {
	listen string // bind address (the A half)
	dial   string // peer address (the Z half)
	proto  string // "udp" or "tcp"

	// keepalive is the probe period in virtual ticks (misses fixed at
	// the transport default of 3).
	keepalive int64
	// tickUS paces the engine: microseconds of wall time per virtual
	// tick, so two processes advance their keepalive and retry windows
	// at comparable rates.
	tickUS int

	// stall/blackout, when To > From, script a chaos window on port 0's
	// local transport, in ticks relative to the start of the measured
	// phase. A stall holds data chunks and releases them when the
	// window ends (keepalives keep flowing — the link must ride it out
	// without an LCP renegotiation); a blackout cuts the line entirely
	// and must escalate into a transport-LOS defect.
	stallFrom, stallTo       int64
	blackoutFrom, blackoutTo int64
}

// parseWindow parses a "FROM:TO" tick window ("" = none).
func parseWindow(s string) (from, to int64, err error) {
	if s == "" {
		return 0, 0, nil
	}
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want FROM:TO, got %q", s)
	}
	if from, err = strconv.ParseInt(a, 10, 64); err != nil {
		return 0, 0, err
	}
	if to, err = strconv.ParseInt(b, 10, 64); err != nil {
		return 0, 0, err
	}
	if to <= from || from < 0 {
		return 0, 0, fmt.Errorf("want 0 <= FROM < TO, got %q", s)
	}
	return from, to, nil
}

// portAddr shifts the port of host:port by i, so link i gets its own
// socket pair.
func portAddr(addr string, i int) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", err
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", err
	}
	return net.JoinHostPort(host, strconv.Itoa(p+i)), nil
}

// netTransport opens one line transport endpoint for the given role.
func netTransport(nc netConfig, tcfg transport.Config, i int) (transport.LineTransport, error) {
	if nc.proto == "tcp" {
		c := transport.TCPConfig{Config: tcfg}
		var err error
		if nc.listen != "" {
			if c.ListenAddr, err = portAddr(nc.listen, i); err != nil {
				return nil, err
			}
		} else {
			if c.DialAddr, err = portAddr(nc.dial, i); err != nil {
				return nil, err
			}
		}
		return transport.NewTCP(c)
	}
	c := transport.UDPConfig{Config: tcfg}
	var err error
	if nc.listen != "" {
		if c.ListenAddr, err = portAddr(nc.listen, i); err != nil {
			return nil, err
		}
	} else {
		if c.DialAddr, err = portAddr(nc.dial, i); err != nil {
			return nil, err
		}
	}
	return transport.NewUDP(c)
}

// runNet is the -listen/-dial mode: this process's half of the link
// pairs brought up against a peer p5sim across real sockets, with
// optional scripted transport chaos, then a measured traffic phase.
// The NET-REPORT line at the end is machine-greppable (verify.sh's
// transport smoke gate parses it).
func runNet(cfg simConfig, nc netConfig, out io.Writer) error {
	if (nc.listen == "") == (nc.dial == "") {
		return usageError("network mode needs exactly one of -listen or -dial")
	}
	if nc.proto != "udp" && nc.proto != "tcp" {
		return usageError("-net-transport must be udp or tcp")
	}
	links := cfg.engineLinks
	if links <= 0 {
		links = 1
	}
	size := 256
	if cfg.size != "imix" {
		n, err := strconv.Atoi(cfg.size)
		if err != nil || n <= 0 {
			return usageError("bad -size: want a positive byte count")
		}
		size = n
	}
	steps := cfg.frames
	if steps <= 0 {
		steps = 2000
	}
	role, roleName := gigapos.RoleA, "A"
	if nc.dial != "" {
		role, roleName = gigapos.RoleZ, "Z"
	}

	// Build the transports up front so a bad address fails before the
	// engine spins up, and so port 0's endpoint can be wrapped in the
	// chaos adapter.
	tcfg := transport.Config{KeepalivePeriod: nc.keepalive, RetryMin: 8, RetryMax: 256}
	endpoints := make([]transport.LineTransport, links)
	for i := range endpoints {
		t, err := netTransport(nc, tcfg, i)
		if err != nil {
			return fmt.Errorf("port %d: %w", i, err)
		}
		endpoints[i] = t
	}
	var chaos *fault.Transport
	wantChaos := nc.stallTo > nc.stallFrom || nc.blackoutTo > nc.blackoutFrom
	if wantChaos {
		chaos = fault.WrapTransport(endpoints[0])
		endpoints[0] = chaos
	}

	e := gigapos.NewEngine(gigapos.EngineConfig{
		Links:       links,
		Shards:      cfg.engineShards,
		PayloadSize: size,
		Batch:       4,
		Role:        role,
		Link: gigapos.LinkConfig{
			Supervise: true, RetryMin: 8, RetryMax: 256,
			// Real sockets put multiple ticks of latency under every
			// control round trip; the RFC default restart timer would
			// retire each request before its ack lands.
			RestartPeriod: 24,
		},
		Transport: func(port int) (a, z transport.LineTransport) {
			if role == gigapos.RoleZ {
				return nil, endpoints[port]
			}
			return endpoints[port], nil
		},
	})
	defer e.Close()

	reg, tr := newTelemetry(cfg)
	status := transport.NewStatusBoard()
	e.EachTransport(status.Add)
	cfg.mountExtra = status.Mount
	if reg != nil {
		e.Instrument(reg, "linecard")
		e.InstrumentTransports(reg)
	}
	var board *flight.Board
	if cfg.flightDir != "" {
		board = e.ArmFlight(reg, flight.Config{Dir: cfg.flightDir, Profiler: flightProfiler(cfg)})
	}
	// Socket transports always speak the v2 latency-tracing header, so
	// the fleet board can trust the armed flags it scrapes.
	status.SetInfo(cfg.flightDir != "", cfg.profDir != "", true)

	// Bring-up against the live peer: wall-clock bounded, since the
	// peer process may still be starting.
	tick := time.Duration(nc.tickUS) * time.Microsecond
	deadline := time.Now().Add(30 * time.Second)
	for !e.Ready() {
		if time.Now().After(deadline) {
			// One more short BringUp round enumerates the ports that
			// failed, so the error names them.
			return fmt.Errorf("no convergence with peer after 30s (%s)", e.BringUp(8))
		}
		e.Run(1)
		time.Sleep(tick)
	}

	// Measured phase: program the chaos windows relative to now, then
	// run the scripted steps.
	base := int64(e.Stats().Steps)
	if chaos != nil {
		if nc.stallTo > nc.stallFrom {
			chaos.Stall(base+nc.stallFrom, base+nc.stallTo)
		}
		if nc.blackoutTo > nc.blackoutFrom {
			chaos.Blackout(base+nc.blackoutFrom, base+nc.blackoutTo)
		}
	}
	restarts0 := sumRestarts(e, links)
	start := e.Stats()
	t0 := time.Now()
	for i := 0; i < steps; i++ {
		e.Run(1)
		time.Sleep(tick)
	}
	elapsed := time.Since(t0)
	st := e.Stats()
	ts := e.TransportStats()
	delivered := st.Datagrams - start.Datagrams
	payload := st.PayloadBytes - start.PayloadBytes
	renegotiations := sumRestarts(e, links) - restarts0
	var captures uint64
	if board != nil {
		for _, l := range board.Snapshot().Links {
			captures += l.Captures
		}
	}

	fmt.Fprintf(out, "Socket line-card (role %s, %s)\n", roleName, nc.proto)
	fmt.Fprintf(out, "  topology         : %d links on %d shards; keepalive every %d ticks; %v/tick\n",
		st.Links, st.Shards, nc.keepalive, tick)
	if chaos != nil {
		fmt.Fprintf(out, "  chaos            : stall=[%d:%d) blackout=[%d:%d) ticks after convergence (dropped=%d)\n",
			nc.stallFrom, nc.stallTo, nc.blackoutFrom, nc.blackoutTo, chaos.Dropped())
	}
	fmt.Fprintf(out, "  delivered        : %d datagrams, %d payload octets in %d steps (%.1fs)\n",
		delivered, payload, steps, elapsed.Seconds())
	fmt.Fprintf(out, "  transport        : tx=%d rx=%d chunks; reconnects=%d resets=%d probes=%d misses=%d\n",
		ts.TxChunks, ts.RxChunks, ts.Reconnects, ts.Resets, ts.KeepaliveProbes, ts.KeepaliveMisses)
	fmt.Fprintf(out, "  backpressure     : tx-dropped=%d rx-dropped=%d queue-high-water=%d\n",
		ts.TxDropped, ts.RxDropped, ts.QueueHighWater)
	fmt.Fprintf(out, "  session          : lcp-renegotiations=%d rx-errors=%d\n",
		renegotiations, st.RxErrors)
	// Wire-level latency from port 0's transport: one-way percentiles
	// from the sampled wall stamps, RTT from keepalive probes.
	var lat transport.Latency
	if lm, ok := endpoints[0].(transport.LatencyMeter); ok {
		lat = lm.Latency()
		fmt.Fprintf(out, "  latency          : oneway p50=%dµs p99=%dµs (%d samples); rtt p50=%dµs (%d probes); clock offset %+dns\n",
			lat.OneWayP50US, lat.OneWayP99US, lat.Samples, lat.RTTP50US, lat.RTTSamples, lat.ClockOffsetNS)
	}
	if board != nil {
		flightSummary(out, board, cfg.flightDir)
	}
	// The one-line machine-readable summary: scripts assert on this.
	fmt.Fprintf(out, "NET-REPORT role=%s transport=%s links=%d steps=%d delivered=%d rx_errors=%d renegotiations=%d reconnects=%d resets=%d tx_dropped=%d rx_dropped=%d captures=%d oneway_p50_us=%d oneway_p99_us=%d rtt_p50_us=%d\n",
		roleName, nc.proto, links, steps, delivered, st.RxErrors,
		renegotiations, ts.Reconnects, ts.Resets, ts.TxDropped, ts.RxDropped, captures,
		lat.OneWayP50US, lat.OneWayP99US, lat.RTTP50US)
	return serveTelemetry(cfg, reg, tr, board, out)
}

// sumRestarts totals supervisor restarts across this process's local
// link endpoints.
func sumRestarts(e *gigapos.Engine, links int) uint64 {
	var n uint64
	for i := 0; i < links; i++ {
		a, z := e.Port(i)
		if a != nil {
			n += a.Supervisor().Restarts
		}
		if z != nil {
			n += z.Supervisor().Restarts
		}
	}
	return n
}
