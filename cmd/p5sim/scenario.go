package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/scenario"
)

// runScenario is the -scenario mode: load a declarative chaos drill,
// run it on a simulated ring, print the graded report. A failed
// assertion names the .p5fr captures that hold the evidence and makes
// p5sim exit non-zero, so the mode slots straight into CI.
func runScenario(cfg simConfig, out io.Writer) error {
	s, err := scenario.Load(cfg.scenarioFile)
	if err != nil {
		return usageError(err.Error())
	}

	dir := cfg.flightDir
	if dir == "" {
		// Captures are the failure evidence; always land them somewhere.
		dir, err = os.MkdirTemp("", "p5sim-scenario-*")
		if err != nil {
			return err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	res, err := s.Run(scenario.RunConfig{CaptureDir: dir})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "Chaos drill %q\n", res.Scenario)
	if s.Description != "" {
		fmt.Fprintf(out, "  drill            : %s\n", s.Description)
	}
	fmt.Fprintf(out, "  ring             : %d nodes, %s, %d ticks (bring-up took %d)\n",
		s.Ring.Nodes, s.Ring.Mode, s.Duration, res.BringUpTicks)
	fmt.Fprintf(out, "  events           : %d scripted; %d section resyncs after traffic start\n",
		len(s.Events), res.Resyncs)
	for _, c := range res.Circuits {
		fmt.Fprintf(out, "  %s\n", c.Summary())
	}
	worst, alarm := 0.0, false
	for _, sl := range res.Board.SLOs {
		if sl.WorstBurn > worst {
			worst = sl.WorstBurn
		}
		alarm = alarm || sl.Alarm
	}
	fmt.Fprintf(out, "  slo              : worst-burn=%.2f alarm=%v captures=%d dir=%s\n",
		worst, alarm, len(res.CapturePaths), dir)
	if err := stopProf(cfg, out); err != nil {
		return err
	}

	// Distributed SLO block: grade the live fleet after the drill.
	if s.Fleet != nil {
		fleetFails := s.GradeFleet()
		fmt.Fprintf(out, "  fleet            : %d instances scraped, %d violations\n",
			len(s.Fleet.Instances), len(fleetFails))
		res.Failures = append(res.Failures, fleetFails...)
		res.Pass = len(res.Failures) == 0
	}

	if res.Pass {
		fmt.Fprintf(out, "  verdict          : PASS (%d assertions held)\n", s.Assert.Count()+s.Fleet.Count())
		return nil
	}
	fmt.Fprintf(out, "  verdict          : FAIL\n")
	for _, f := range res.Failures {
		name := f.Circuit
		if name == "" {
			name = "(global)"
		}
		fmt.Fprintf(out, "    FAIL %-10s %s\n", name, f.Msg)
	}
	for _, p := range res.CapturePaths {
		fmt.Fprintf(out, "    capture %s\n", p)
	}
	return fmt.Errorf("scenario %q failed %d assertion(s); flight captures in %s",
		res.Scenario, len(res.Failures), dir)
}
