package gigapos

import (
	"testing"

	"repro/internal/lcp"
)

// tick advances both endpoints one virtual time unit and, unless the
// line is cut, exchanges whatever bytes each produced.
func tick(a, b *Link, now int64, cut bool) {
	a.Advance(now)
	b.Advance(now)
	out := a.Output()
	if len(out) > 0 && !cut {
		b.Input(out)
	}
	out = b.Output()
	if len(out) > 0 && !cut {
		a.Input(out)
	}
}

// TestLCPMaxConfigureExhaustion: with no peer answering, the automaton
// retransmits Configure-Requests Max-Configure times and then gives up
// into Stopped (RFC 1661 TO- with the restart counter expired).
func TestLCPMaxConfigureExhaustion(t *testing.T) {
	a := NewLink(LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1}})
	a.lcpA.MaxConfigure = 3
	a.Open()
	a.Up()
	requests := 0
	for now := int64(1); now <= 40; now++ {
		a.Advance(now)
		if len(a.Output()) > 0 {
			requests++
		}
	}
	if st := a.lcpA.State(); st != lcp.Stopped {
		t.Fatalf("state = %v, want Stopped after Max-Configure", st)
	}
	if requests != 3 {
		t.Errorf("sent %d Configure-Requests, want 3", requests)
	}
	if a.lcpA.Timeouts < 3 {
		t.Errorf("timeouts = %d, want >= 3", a.lcpA.Timeouts)
	}
}

// TestEchoDeadPeerSupervisedHeal: the keepalive detects a silent peer
// and tears the link down; when the line returns, the supervisor brings
// it back to Opened without operator intervention.
func TestEchoDeadPeerSupervisedHeal(t *testing.T) {
	cfg := LinkConfig{
		EchoPeriod: 4, EchoMisses: 2,
		Supervise: true, RetryMin: 4, RetryMax: 64,
	}
	cfg.Magic, cfg.IPAddr = 0x1111, [4]byte{10, 0, 0, 1}
	a := NewLink(cfg)
	cfg.Magic, cfg.IPAddr = 0x2222, [4]byte{10, 0, 0, 2}
	b := NewLink(cfg)
	a.Open()
	b.Open()
	a.Up()
	b.Up()

	now := int64(0)
	run := func(ticks int, cut bool) {
		for i := 0; i < ticks; i++ {
			now++
			tick(a, b, now, cut)
		}
	}
	run(50, false)
	if !a.Opened() || !b.Opened() {
		t.Fatal("links did not open")
	}

	// Cut the line long enough for the keepalive to give up.
	run(60, true)
	if a.EchoTimeouts == 0 {
		t.Fatal("dead peer not detected")
	}
	if a.Opened() {
		t.Fatal("link still Opened across a dead line")
	}

	// Splice the line back: the supervisor re-runs LCP and IPCP.
	run(300, false)
	if !a.Opened() || !b.Opened() {
		t.Fatalf("links did not heal: a=%v b=%v", a.lcpA.State(), b.lcpA.State())
	}
	if !a.IPReady() || !b.IPReady() {
		t.Fatal("IPCP did not reopen")
	}
	sup := a.Supervisor()
	if sup.Restarts == 0 || sup.Recoveries == 0 {
		t.Errorf("supervisor stats: %+v, want restarts and a recovery", sup)
	}
}

// TestSupervisorBackoffDoubling: against a dead line, successive
// re-open attempts space out exponentially and cap at RetryMax.
func TestSupervisorBackoffDoubling(t *testing.T) {
	a := NewLink(LinkConfig{
		Magic: 1, IPAddr: [4]byte{10, 0, 0, 1},
		Supervise: true, RetryMin: 4, RetryMax: 16,
	})
	a.lcpA.MaxConfigure = 1 // give up after one unanswered request
	a.Open()
	a.Up()
	for now := int64(1); now <= 400; now++ {
		a.Advance(now)
		a.Output()
	}
	times := a.Supervisor().RetryTimes
	if len(times) < 4 {
		t.Fatalf("only %d retries in 400 units: %v", len(times), times)
	}
	// Each cycle is the LCP give-up time (restart period) plus the
	// supervisor backoff, so the gaps grow roughly 4→8→16 and then
	// hold; the ±20% retry jitter wobbles each gap but neither the
	// growth trend nor the cap.
	var gaps []int64
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i]-times[i-1])
	}
	const slack = 3 // LCP give-up time per cycle
	for _, g := range gaps {
		if g > 16*120/100+slack {
			t.Fatalf("gap %d exceeds jittered RetryMax: gaps %v", g, gaps)
		}
	}
	var capped int64
	tail := gaps[len(gaps)/2:]
	for _, g := range tail {
		capped += g
	}
	capped /= int64(len(tail))
	if gaps[0] >= capped {
		t.Errorf("no exponential growth visible: first gap %d, capped mean %d, gaps %v",
			gaps[0], capped, gaps)
	}
}

// TestSupervisorRetryJitterDesynchronizes: two links that die at the
// same instant with the same backoff config must not retry in
// lockstep — the seeded ±20% retry jitter (derived per link from
// Magic when JitterSeed is 0) spreads their schedules, so a herd of
// links orphaned by one upstream failure does not thunder back in
// phase.
func TestSupervisorRetryJitterDesynchronizes(t *testing.T) {
	mk := func(magic uint32) *Link {
		l := NewLink(LinkConfig{
			Magic: magic, IPAddr: [4]byte{10, 0, 0, 1},
			Supervise: true, RetryMin: 8, RetryMax: 64,
		})
		l.lcpA.MaxConfigure = 1 // give up after one unanswered request
		l.Open()
		l.Up()
		return l
	}
	a, b := mk(0xA0000001), mk(0xA0000002)
	for now := int64(1); now <= 600; now++ {
		a.Advance(now)
		a.Output()
		b.Advance(now)
		b.Output()
	}
	ta, tb := a.Supervisor().RetryTimes, b.Supervisor().RetryTimes
	if len(ta) < 4 || len(tb) < 4 {
		t.Fatalf("too few retries against a dead line: a=%v b=%v", ta, tb)
	}
	n := min(len(ta), len(tb))
	same := 0
	for i := 0; i < n; i++ {
		if ta[i] == tb[i] {
			same++
		}
	}
	if same == n {
		t.Fatalf("retry schedules in lockstep despite jitter: a=%v b=%v", ta, tb)
	}
}

// TestNotifyDefectsParksAndKicks: a service-affecting alarm takes the
// link down and parks the supervisor (no retries against a dead line);
// the all-clear triggers an immediate re-open.
func TestNotifyDefectsParksAndKicks(t *testing.T) {
	cfg := LinkConfig{Supervise: true, RetryMin: 4, RetryMax: 32}
	cfg.Magic, cfg.IPAddr = 1, [4]byte{10, 0, 0, 1}
	a := NewLink(cfg)
	cfg.Magic, cfg.IPAddr = 2, [4]byte{10, 0, 0, 2}
	b := NewLink(cfg)
	a.Open()
	b.Open()
	a.Up()
	b.Up()
	now := int64(0)
	run := func(ticks int, cut bool) {
		for i := 0; i < ticks; i++ {
			now++
			tick(a, b, now, cut)
		}
	}
	run(50, false)
	if !a.Opened() {
		t.Fatal("did not open")
	}

	a.NotifyDefects(AlarmLOS)
	b.NotifyDefects(AlarmLOS)
	if a.Opened() {
		t.Fatal("link survived an LOS alarm")
	}
	restartsDuring := a.Supervisor().Restarts
	run(100, true)
	if got := a.Supervisor().Restarts; got != restartsDuring {
		t.Fatalf("supervisor retried %d times against an active LOS", got-restartsDuring)
	}

	a.NotifyDefects(0)
	b.NotifyDefects(0)
	run(200, false)
	if !a.Opened() || !b.Opened() {
		t.Fatal("links did not re-open after the all-clear")
	}
	sup := a.Supervisor()
	if sup.DefectOutages != 1 {
		t.Errorf("DefectOutages = %d, want 1", sup.DefectOutages)
	}
	if sup.Recoveries == 0 {
		t.Error("no recovery recorded")
	}
}

// TestRetryTimesBounded: the retry-timestamp log is a ring — an
// endless outage keeps only the most recent retryTimesCap entries
// while Restarts counts the exact total.
func TestRetryTimesBounded(t *testing.T) {
	cfg := LinkConfig{Supervise: true, RetryMin: 8, RetryMax: 16}
	cfg.Magic, cfg.IPAddr = 0xAAAA, [4]byte{10, 0, 0, 1}
	l := NewLink(cfg)
	l.Open() // Starting: restartLCP's gate accepts

	const attempts = retryTimesCap + 36
	for i := 1; i <= attempts; i++ {
		l.restartLCP(int64(i))
		l.lcpA.Down() // back to Starting for the next attempt
	}
	sup := l.Supervisor()
	if sup.Restarts != attempts {
		t.Fatalf("Restarts = %d, want %d", sup.Restarts, attempts)
	}
	if len(sup.RetryTimes) != retryTimesCap {
		t.Fatalf("len(RetryTimes) = %d, want %d", len(sup.RetryTimes), retryTimesCap)
	}
	if got := sup.RetryTimes[len(sup.RetryTimes)-1]; got != attempts {
		t.Errorf("newest entry = %d, want %d", got, attempts)
	}
	if got := sup.RetryTimes[0]; got != attempts-retryTimesCap+1 {
		t.Errorf("oldest entry = %d, want %d (oldest dropped first)", got, attempts-retryTimesCap+1)
	}
	for i := 1; i < len(sup.RetryTimes); i++ {
		if sup.RetryTimes[i] != sup.RetryTimes[i-1]+1 {
			t.Fatalf("ring not contiguous at %d: %v", i, sup.RetryTimes[i-3:i+1])
		}
	}
}
