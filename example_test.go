package gigapos_test

import (
	"fmt"

	gigapos "repro"
)

// The minimal hardware-model tour: queue a datagram, clock the system,
// read the result.
func ExampleNewSystem() {
	sys := gigapos.NewSystem(gigapos.Width32)
	sys.Send(gigapos.TxJob{
		Protocol: gigapos.ProtoIPv4,
		Payload:  []byte{0x31, 0x33, 0x7E, 0x96}, // the paper's stuffing example
	})
	sys.RunUntilIdle(100000)
	for _, f := range sys.Received() {
		fmt.Println(f.Frame)
	}
	// Output:
	// PPP{addr=0xff ctrl=0x03 proto=0x0021 len=4}
}

// Two software endpoints negotiate LCP and IPCP, then carry IP.
func ExampleNewLink() {
	a := gigapos.NewLink(gigapos.LinkConfig{Magic: 1, IPAddr: [4]byte{10, 0, 0, 1}})
	b := gigapos.NewLink(gigapos.LinkConfig{Magic: 2, IPAddr: [4]byte{10, 0, 0, 2}})
	a.Open()
	b.Open()
	a.Up()
	b.Up()
	for i := 0; i < 8; i++ { // shuttle negotiation traffic
		b.Input(a.Output())
		a.Input(b.Output())
	}
	a.SendIPv4([]byte("datagram"))
	b.Input(a.Output())
	for _, d := range b.Received() {
		fmt.Printf("%#04x %q\n", d.Protocol, d.Payload)
	}
	// Output:
	// 0x0021 "datagram"
}

// The synthesis model reproduces the paper's area ratios.
func ExampleAreaRatios() {
	r := gigapos.AreaRatios()
	fmt.Printf("escape generate 32-bit/8-bit: %.0fx LUTs, %.0fx FFs\n",
		r.EscapeGenLUT, r.EscapeGenFF)
	// Output:
	// escape generate 32-bit/8-bit: 24x LUTs, 29x FFs
}
