package gigapos

import (
	"repro/internal/aps"
	"repro/internal/sonet"
	"repro/internal/telemetry"
)

// This file wires a Link to a 1+1 protected SONET line pair: one PPP
// endpoint, two transmit framers fed from a permanent bridge of the
// same payload stream, two supervised receive deframers, and an
// aps.Controller moving the receive selector between them. A
// service-affecting defect on one line becomes an APS switch — the
// LCP/IPCP session never notices — and only when both lines are down
// does the event reach Link.NotifyDefects and the self-healing
// supervisor's backoff path.

// ProtectionConfig configures the protected pair around a Link.
type ProtectionConfig struct {
	// Level is the SONET rate of both lines (default STM1).
	Level sonet.Level
	// APS parameterises the protection controller.
	APS aps.Config
	// Defects overrides the defect-integration thresholds applied to
	// both receive deframers (zero values keep the GR-253 defaults).
	Defects sonet.DefectConfig
}

func (c ProtectionConfig) level() sonet.Level {
	if c.Level > 0 {
		return c.Level
	}
	return sonet.STM1
}

// ProtectedLink is a Link riding a 1+1 protected line pair. Drive it
// like the unprotected arrangement, but with two line feeds: per tick,
// call Advance, transmit both NextFrames outputs, and deliver each
// received line's octets to FeedWorking / FeedProtect. The receive
// selector follows Ctrl.
type ProtectedLink struct {
	*Link
	// Ctrl is the protection controller (exported for external
	// commands — lockout, forced and manual switches — and state).
	Ctrl *aps.Controller

	fr  [2]*sonet.Framer
	df  [2]*sonet.Deframer
	txQ [2][]byte // per-line payload queues behind the permanent bridge
	rx  []byte    // selected-line payload accumulated during a Feed

	// DiscardedStandbyOctets counts payload octets recovered from the
	// standby line and dropped by the selector — the cost of keeping
	// the standby deframer hot so a switch is a pointer flip.
	DiscardedStandbyOctets uint64

	now     int64
	telSync []func()
}

// NewProtectedLink builds a Link plus its protected line pair.
func NewProtectedLink(cfg LinkConfig, pcfg ProtectionConfig) *ProtectedLink {
	pl := &ProtectedLink{Link: NewLink(cfg), Ctrl: aps.NewController(pcfg.APS)}
	level := pcfg.level()
	for i := range pl.fr {
		line := i
		pl.fr[i] = sonet.NewFramer(level, func() (byte, bool) {
			q := pl.txQ[line]
			if len(q) == 0 {
				return 0, false
			}
			pl.txQ[line] = q[1:]
			return q[0], true
		})
		pl.df[i] = sonet.NewDeframer(level, func(b byte) { pl.rx = append(pl.rx, b) })
		pl.df[i].Defects.Cfg = pcfg.Defects
	}
	// Far-end requests arrive in the protection line's K1/K2, already
	// persistence-filtered by the deframer.
	pl.df[aps.Protect].OnAPS = func(k1, k2 byte) {
		pl.Ctrl.ReceiveK1K2(pl.now, k1, k2)
	}
	return pl
}

// Active returns the line the receive selector currently follows.
func (pl *ProtectedLink) Active() aps.Line { return pl.Ctrl.Active() }

// Deframer exposes a line's receive deframer (defect monitors,
// counters) for tests and OAM attachment.
func (pl *ProtectedLink) Deframer(line aps.Line) *sonet.Deframer { return pl.df[int(line)&1] }

// Advance moves the endpoint and the protection controller one virtual
// time step. Call once per frame time, after the tick's line feeds.
func (pl *ProtectedLink) Advance(now int64) {
	pl.now = now
	pl.Link.Advance(now)
	pl.Ctrl.Advance(now)
	for _, sync := range pl.telSync {
		sync()
	}
}

// NextFrames drains the Link's pending output into both line queues —
// the permanent 1+1 head-end bridge — and builds one transmit frame
// per line. The protection line's frame carries the controller's
// current K1/K2.
func (pl *ProtectedLink) NextFrames() (working, protect []byte) {
	if out := pl.Link.Output(); len(out) > 0 {
		pl.txQ[aps.Working] = append(pl.txQ[aps.Working], out...)
		pl.txQ[aps.Protect] = append(pl.txQ[aps.Protect], out...)
	}
	pl.fr[aps.Protect].K1, pl.fr[aps.Protect].K2 = pl.Ctrl.TxK1K2()
	return pl.fr[aps.Working].NextFrame(), pl.fr[aps.Protect].NextFrame()
}

// FeedWorking delivers received working-line octets.
func (pl *ProtectedLink) FeedWorking(p []byte) { pl.feed(aps.Working, p) }

// FeedProtect delivers received protection-line octets.
func (pl *ProtectedLink) FeedProtect(p []byte) { pl.feed(aps.Protect, p) }

func (pl *ProtectedLink) feed(line aps.Line, p []byte) {
	pl.rx = nil
	pl.df[int(line)].Feed(p)
	if len(pl.rx) > 0 {
		if pl.Ctrl.Active() == line {
			pl.Link.Input(pl.rx)
		} else {
			pl.DiscardedStandbyOctets += uint64(len(pl.rx))
		}
		pl.rx = nil
	}
	pl.observe(line)
}

// observe refreshes the controller's view of one line's condition and
// decides whether the outage escalates past the protection layer: only
// with BOTH lines service-affected does the supervisor see a defect
// outage and fall back to its backoff-and-retry recovery.
func (pl *ProtectedLink) observe(line aps.Line) {
	d := pl.df[int(line)].Defects.Active()
	pl.Ctrl.SetSignal(pl.now, line,
		d&sonet.ServiceAffecting != 0, d&sonet.DefSD != 0)

	w := pl.df[aps.Working].Defects.Active()
	p := pl.df[aps.Protect].Defects.Active()
	if w&sonet.ServiceAffecting != 0 && p&sonet.ServiceAffecting != 0 {
		pl.Link.NotifyDefects(uint32(w | p))
	} else {
		pl.Link.NotifyDefects(0)
	}
}

// Instrument exports the full protected-endpoint probe set: the Link's
// protocol counters under name, the APS controller under "aps", and
// each line's deframer under name_working / name_protect. The mirrors
// refresh on every Advance.
func (pl *ProtectedLink) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer, name string) {
	pl.Link.Instrument(reg, tr, name)
	pl.telSync = append(pl.telSync,
		pl.Ctrl.Instrument(reg, tr, "aps"),
		pl.df[aps.Working].Instrument(reg, tr, name+"_working"),
		pl.df[aps.Protect].Instrument(reg, tr, name+"_protect"))
	discarded := reg.Counter(name+"_standby_discarded_octets_total",
		"Standby-line payload octets dropped by the receive selector.")
	pl.telSync = append(pl.telSync, func() {
		discarded.Set(pl.DiscardedStandbyOctets)
	})
}
