package gigapos

import (
	"fmt"

	"repro/internal/aps"
	"repro/internal/flight"
	"repro/internal/telemetry"
)

// This file arms a Link with the flight recorder (internal/flight):
// per-frame latency stamping on the transmit and receive fast paths,
// the black-box wire/event rings, capture triggers (supervisor
// restart, defect escalation, APS switch, FCS-error burst), and the
// per-link SLO evaluator. Everything here follows the fast-path rules
// of DESIGN.md §8: the armed steady state allocates nothing, and the
// transmit side pays only a pipe-ring store plus one atomic add per
// datagram.

// Default FCS-error burst trigger: eight damaged frames inside 128
// ticks dumps the black box once per burst.
const (
	flightBurstWindow    = 128
	flightBurstThreshold = 8
)

// flightState is a Link's armed recorder plus the trigger and SLO
// plumbing around it.
type flightState struct {
	rec *flight.Recorder
	// peer is the recorder of the link whose transmissions we receive;
	// deliveries here complete that pipe. Set by JoinFlight.
	peer *flight.Recorder
	slo  *flight.SLO

	burst    flight.BurstDetector
	failover int64 // last protection-switch duration in ticks
}

// ArmFlight attaches a flight recorder to the link. Arm before
// traffic, from the owning goroutine; pair both ends with JoinFlight
// so end-to-end latency resolves. The recorder's register dump gains
// the link's protocol state.
func (l *Link) ArmFlight(rec *flight.Recorder) {
	l.fl = &flightState{
		rec:   rec,
		burst: flight.BurstDetector{Window: flightBurstWindow, Threshold: flightBurstThreshold},
	}
	prev := rec.RegDump
	rec.RegDump = func(dst []flight.RegSample) []flight.RegSample {
		if prev != nil {
			dst = prev(dst)
		}
		dst = append(dst,
			flight.RegSample{Name: "rx_frames", Value: l.RxFrames},
			flight.RegSample{Name: "rx_errors", Value: l.RxErrors},
			flight.RegSample{Name: "lcp_state", Value: uint64(l.lcpA.State())},
			flight.RegSample{Name: "ipcp_state", Value: uint64(l.ipcpA.State())})
		if l.sup != nil {
			dst = append(dst,
				flight.RegSample{Name: "supervisor_restarts", Value: l.sup.Restarts},
				flight.RegSample{Name: "supervisor_outages", Value: l.sup.DefectOutages})
		}
		return dst
	}
}

// Flight returns the link's armed recorder (nil when unarmed).
func (l *Link) Flight() *flight.Recorder {
	if l.fl == nil {
		return nil
	}
	return l.fl.rec
}

// JoinFlight pairs two armed links so each side's deliveries complete
// the other side's departure pipe — the end-to-end latency span.
func JoinFlight(a, z *Link) {
	if a.fl == nil || z.fl == nil {
		return
	}
	a.fl.peer = z.fl.rec
	z.fl.peer = a.fl.rec
}

// FlightSLO attaches an SLO evaluator to an armed link, registered in
// reg under name. The objectives read the receive direction: frames
// the peer tagged for us, losses the matcher declared, the end-to-end
// p99 into this link, and the most recent protection-switch duration.
// Sampled on every Advance.
func (l *Link) FlightSLO(reg *telemetry.Registry, name string, cfg flight.SLOConfig) *flight.SLO {
	if l.fl == nil {
		return nil
	}
	fl := l.fl
	s := flight.NewSLO(reg, name, cfg, flight.Sources{
		Frames: func() uint64 {
			if fl.peer != nil {
				return fl.peer.Tracked()
			}
			return 0
		},
		Errors: func() uint64 {
			// Damaged tracked frames surface as matcher losses too (the
			// departure never matches), so the lost counter alone covers
			// both drop and corruption without double counting.
			if fl.peer != nil {
				return fl.peer.Lost()
			}
			return 0
		},
		P99: func() int64 {
			if fl.peer != nil {
				return fl.peer.P99()
			}
			return 0
		},
		Failover: func() int64 { return fl.failover },
	})
	fl.slo = s
	s.OnAlarm = func(objective string) {
		l.trace("slo-alarm", objective, s.WorstBurnMilli(), 0)
	}
	return s
}

// FlightSetFailover records a protection-switch duration for the SLO's
// failover objective (ProtectedLink.ArmFlight wires this to the APS
// controller).
func (l *Link) FlightSetFailover(ticks int64) {
	if l.fl != nil {
		l.fl.failover = ticks
	}
}

// serviceFlight runs once per Advance: expire overdue departures,
// advance the recorder clock, re-evaluate the SLO.
func (l *Link) serviceFlight(now int64) {
	fl := l.fl
	fl.rec.SetNow(now)
	fl.rec.Expire(now)
	if fl.slo != nil {
		fl.slo.Sample(now)
	}
}

// flightNoteError feeds the FCS-burst detector; crossing the threshold
// dumps the black box once per burst.
func (l *Link) flightNoteError() {
	fl := l.fl
	if fl == nil {
		return
	}
	if fl.burst.Note(l.now) {
		l.trace("fcs-burst", "", int64(fl.burst.Threshold), fl.burst.Window)
		fl.rec.Trigger("fcs-burst")
	}
}

// flightTrigger dumps the black box for a named trigger (no-op while
// unarmed).
func (l *Link) flightTrigger(reason string) {
	if l.fl != nil {
		l.fl.rec.Trigger(reason)
	}
}

// ArmFlight arms the underlying link and additionally dumps the black
// box on every APS selector movement, recording the switch duration
// for the SLO's failover objective.
func (pl *ProtectedLink) ArmFlight(rec *flight.Recorder) {
	pl.Link.ArmFlight(rec)
	prev := pl.Ctrl.OnSwitch
	pl.Ctrl.OnSwitch = func(e aps.SwitchEvent) {
		if prev != nil {
			prev(e)
		}
		pl.Link.FlightSetFailover(e.Duration)
		pl.Link.trace("aps-switch", e.Trigger.String(), int64(e.To), e.Duration)
		pl.Link.flightTrigger("aps-switch")
	}
}

// ArmFlight arms every port with recorders and SLO evaluators (series
// labelled portN_a / portN_z) and returns the /slo board aggregating
// them. Call before Run; captures and exemplars may be inspected
// between Runs. On a loopback engine both ends arm and the SLO on each
// pair's z side covers the a→z direction; a remote-role engine (z nil)
// arms its single local end, and when that end's transport carries a
// freeze side channel the recorder is also joined to it for
// cross-process capture correlation (TransportPort.ArmCorrelation).
func (e *Engine) ArmFlight(reg *telemetry.Registry, cfg flight.Config) *flight.Board {
	board := flight.NewBoard()
	i := 0
	for _, s := range e.shards {
		for _, p := range s.ports {
			ra := flight.NewRecorder(reg, fmt.Sprintf("port%d_a", i), cfg)
			p.a.ArmFlight(ra)
			board.Attach(ra)
			if p.tpa != nil {
				p.tpa.ArmCorrelation(ra)
			}
			if p.z != nil {
				rz := flight.NewRecorder(reg, fmt.Sprintf("port%d_z", i), cfg)
				p.z.ArmFlight(rz)
				JoinFlight(p.a, p.z)
				board.Attach(rz)
				if p.tpz != nil {
					p.tpz.ArmCorrelation(rz)
				}
				if slo := p.z.FlightSLO(reg, fmt.Sprintf("port%d", i), flight.SLOConfig{}); slo != nil {
					board.AttachSLO(slo)
				}
			}
			i++
		}
	}
	return board
}
