package gigapos

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/transport"
)

// These are the socket-robustness soaks: links carried by real
// transports — in-process pipes for the allocation pin, real UDP
// sockets for the chaos drills — with the transport-level fault
// adapter scripting blackouts, stalls, duplication and reorder.

// udpPair returns connected UDP endpoints on the loopback interface.
func udpPair(t *testing.T, cfg transport.Config) (ln, dl *transport.UDP) {
	t.Helper()
	ln, err := transport.NewUDP(transport.UDPConfig{Config: cfg, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	dl, err = transport.NewUDP(transport.UDPConfig{Config: cfg, DialAddr: ln.LocalAddr().String()})
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); dl.Close() })
	return ln, dl
}

// supervisedPorts builds a supervised link pair carried by the given
// transports.
func supervisedPorts(ta, tz transport.LineTransport) (a, z *TransportPort) {
	// RestartPeriod must exceed the real-socket round trip expressed in
	// virtual ticks, or every Configure-Ack arrives after its request
	// timed out and negotiation exhausts MaxConfigure.
	la := NewLink(LinkConfig{
		Magic: 0xA0000001, IPAddr: [4]byte{10, 9, 0, 1},
		Supervise: true, RetryMin: 8, RetryMax: 64, RestartPeriod: 24,
	})
	lz := NewLink(LinkConfig{
		Magic: 0xA0000002, IPAddr: [4]byte{10, 9, 0, 2},
		Supervise: true, RetryMin: 8, RetryMax: 64, RestartPeriod: 24,
	})
	la.Open()
	la.Up()
	lz.Open()
	lz.Up()
	return NewTransportPort(la, ta), NewTransportPort(lz, tz)
}

// TestTransportChaosSoakUDP is the acceptance drill for the socket
// line: two supervised links exchange traffic over real UDP loopback
// sockets; a scripted 500-tick blackout (the fault adapter mutes the
// line — data, keepalives and receive) must escalate into exactly one
// transport-LOS defect outage with exactly one flight capture per end,
// the supervisor must bring the link back once the window ends, and
// afterwards the link must hold steady — zero further renegotiations,
// and never a corrupted datagram delivered to IP.
func TestTransportChaosSoakUDP(t *testing.T) {
	kcfg := transport.Config{KeepalivePeriod: 32, KeepaliveMisses: 3}
	ln, dl := udpPair(t, kcfg)

	const blackoutFrom, blackoutTo = 1200, 1700
	chaos := fault.WrapTransport(ln).Blackout(blackoutFrom, blackoutTo)
	pa, pz := supervisedPorts(chaos, dl)

	ra := flight.NewRecorder(nil, "chaos_a", flight.Config{})
	rz := flight.NewRecorder(nil, "chaos_z", flight.Config{})
	pa.Link.ArmFlight(ra)
	pz.Link.ArmFlight(rz)

	template := make([]byte, 256)
	for i := range template {
		template[i] = byte(i*31 + 7)
	}
	var rx []Datagram
	var delivered, corrupted int
	now := int64(0)
	run := func(ticks int) {
		for i := 0; i < ticks; i++ {
			now++
			pa.Tick(now)
			pz.Tick(now)
			if pa.Link.IPReady() {
				pa.Link.SendIPv4(template)
			}
			if pz.Link.IPReady() {
				pz.Link.SendIPv4(template)
			}
			rx = pa.Link.ReceivedInto(rx[:0])
			rx = pz.Link.ReceivedInto(rx)
			for j := range rx {
				delivered++
				if !bytes.Equal(rx[j].Payload, template) {
					corrupted++
				}
			}
			// Map virtual ticks onto a little real time so the socket
			// reader goroutines keep pace with the tick loop.
			time.Sleep(50 * time.Microsecond)
		}
	}

	// Bring-up and steady traffic.
	run(1000)
	if !pa.Link.IPReady() || !pz.Link.IPReady() {
		t.Fatalf("links not up over UDP: a=%v z=%v", pa.Link.IPReady(), pz.Link.IPReady())
	}
	if delivered == 0 {
		t.Fatal("no datagrams delivered before the blackout")
	}

	// Through the blackout: dead-peer detection must fire on both ends
	// and take the links down.
	run(blackoutTo - int(now))
	if pa.Link.Opened() || pz.Link.Opened() {
		t.Fatalf("links survived a 500-tick blackout: a=%v z=%v",
			pa.Link.Opened(), pz.Link.Opened())
	}
	supA := pa.Link.Supervisor()
	if supA.DefectOutages != 1 {
		t.Fatalf("a-side defect outages = %d, want exactly 1", supA.DefectOutages)
	}
	if n := ra.CapturesFor("transport-los"); n != 1 {
		t.Fatalf("a-side transport-los flight captures = %d, want exactly 1", n)
	}
	if n := rz.CapturesFor("transport-los"); n != 1 {
		t.Fatalf("z-side transport-los flight captures = %d, want exactly 1", n)
	}

	// Recovery: the window is over; keepalives re-establish liveness,
	// the all-clear kicks the supervisor, LCP/IPCP renegotiate.
	deadline := time.Now().Add(10 * time.Second)
	for !(pa.Link.IPReady() && pz.Link.IPReady()) {
		if time.Now().After(deadline) {
			t.Fatalf("links did not recover after the blackout: a=%v z=%v",
				pa.Link.lcpA.State(), pz.Link.lcpA.State())
		}
		run(64)
	}
	supA = pa.Link.Supervisor()
	if supA.Recoveries < 1 {
		t.Fatalf("a-side recoveries = %d, want >= 1", supA.Recoveries)
	}

	// Steady state after restore: no further renegotiations, no
	// further outages, no further captures.
	restartsAfter := supA.Restarts
	deliveredBefore := delivered
	run(1500)
	if !pa.Link.IPReady() || !pz.Link.IPReady() {
		t.Fatal("links flapped after recovery")
	}
	supA = pa.Link.Supervisor()
	if supA.Restarts != restartsAfter {
		t.Fatalf("%d LCP renegotiations after restore, want 0",
			supA.Restarts-restartsAfter)
	}
	if supA.DefectOutages != 1 {
		t.Fatalf("defect outages grew to %d after restore", supA.DefectOutages)
	}
	if n := ra.CapturesFor("transport-los"); n != 1 {
		t.Fatalf("transport-los captures grew to %d after restore", n)
	}
	if delivered == deliveredBefore {
		t.Fatal("no traffic after recovery")
	}
	if corrupted != 0 {
		t.Fatalf("%d corrupted datagrams delivered to IP (of %d)", corrupted, delivered)
	}
}

// TestTransportDupReorderSoakUDP drives sustained random duplication
// and reorder through the chaos adapter over real UDP sockets: the
// sequence-number defense plus HDLC's FCS must keep every datagram
// that reaches IP intact — impairments may cost throughput, never
// correctness.
func TestTransportDupReorderSoakUDP(t *testing.T) {
	ln, dl := udpPair(t, transport.Config{})
	// Impair both directions: dup and reorder, no outright drops, so
	// sustained delivery is expected alongside the chaos.
	ca := fault.WrapTransport(ln).Randomize(101, 0, 0.10, 0.10)
	cz := fault.WrapTransport(dl).Randomize(202, 0, 0.10, 0.10)
	pa, pz := supervisedPorts(ca, cz)

	template := make([]byte, 200)
	for i := range template {
		template[i] = byte(i ^ 0x5A)
	}
	var rx []Datagram
	var delivered, corrupted int
	now := int64(0)
	for tick := 0; tick < 3000; tick++ {
		now++
		pa.Tick(now)
		pz.Tick(now)
		if pa.Link.IPReady() {
			pa.Link.SendIPv4(template)
		}
		if pz.Link.IPReady() {
			pz.Link.SendIPv4(template)
		}
		rx = pa.Link.ReceivedInto(rx[:0])
		rx = pz.Link.ReceivedInto(rx)
		for j := range rx {
			delivered++
			if !bytes.Equal(rx[j].Payload, template) {
				corrupted++
			}
		}
		time.Sleep(50 * time.Microsecond)
	}
	if ca.Duplicated() == 0 && cz.Duplicated() == 0 {
		t.Fatal("soak produced no duplications")
	}
	if delivered < 100 {
		t.Fatalf("only %d datagrams delivered under dup/reorder chaos", delivered)
	}
	if corrupted != 0 {
		t.Fatalf("%d corrupted datagrams delivered to IP (of %d)", corrupted, delivered)
	}
	// The wire-level defense must have actually engaged: duplicated
	// datagrams arrive with stale sequence numbers and are dropped
	// before the HDLC stream.
	if st := ln.Stats(); st.RxDropped == 0 {
		t.Logf("note: listener saw no stale datagrams (%+v)", st)
	}
}

// TestEngineTransportPipeZeroAlloc pins the tentpole's steady-state
// cost: an engine whose wire is carried by in-process pipe transports
// must still run allocation-free per step once warm — the transport
// seam adds queue rotation and arena copies, never garbage.
func TestEngineTransportPipeZeroAlloc(t *testing.T) {
	e := NewEngine(EngineConfig{
		Links: 2, Shards: 1, PayloadSize: 256, Batch: 4,
		Transport: func(port int) (a, z transport.LineTransport) {
			return transport.NewPipePair()
		},
	})
	defer e.Close()
	if bu := e.BringUp(1024); !bu.Ready {
		t.Fatalf("bring-up over pipe transports failed: %s", bu)
	}
	// Warm every arena and queue to steady-state capacity.
	e.Run(64)
	if avg := testing.AllocsPerRun(100, func() { e.Run(1) }); avg != 0 {
		t.Fatalf("steady-state transport step allocates %.1f times per run, want 0", avg)
	}
	st := e.Stats()
	if st.Datagrams == 0 || st.LineBytes == 0 {
		t.Fatalf("no traffic moved over pipe transports: %+v", st)
	}
	ts := e.TransportStats()
	if ts.TxChunks == 0 || ts.RxChunks == 0 {
		t.Fatalf("transport counters empty: %+v", ts)
	}
}

// TestEngineRemoteUDP interconnects two single-ended engines — the
// listener half (RoleA) and the dialer half (RoleZ) — over real UDP
// loopback sockets: the two-process p5sim topology, in one process so
// the test can observe both sides.
func TestEngineRemoteUDP(t *testing.T) {
	const nLinks = 2
	kcfg := transport.Config{KeepalivePeriod: 64, KeepaliveMisses: 5}

	listeners := make([]*transport.UDP, nLinks)
	for i := range listeners {
		ln, err := transport.NewUDP(transport.UDPConfig{Config: kcfg, ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
	}
	eA := NewEngine(EngineConfig{
		Links: nLinks, Shards: 1, PayloadSize: 256, Batch: 2,
		Link: LinkConfig{Supervise: true, RestartPeriod: 24},
		Role: RoleA,
		Transport: func(port int) (a, z transport.LineTransport) {
			return listeners[port], nil
		},
	})
	defer eA.Close()
	eZ := NewEngine(EngineConfig{
		Links: nLinks, Shards: 1, PayloadSize: 256, Batch: 2,
		Link: LinkConfig{Supervise: true, RestartPeriod: 24},
		Role: RoleZ,
		Transport: func(port int) (a, z transport.LineTransport) {
			dl, err := transport.NewUDP(transport.UDPConfig{
				Config:   kcfg,
				DialAddr: listeners[port].LocalAddr().String(),
			})
			if err != nil {
				t.Fatalf("dial port %d: %v", port, err)
			}
			return nil, dl
		},
	})
	defer eZ.Close()

	deadline := time.Now().Add(15 * time.Second)
	for !(eA.Ready() && eZ.Ready()) {
		if time.Now().After(deadline) {
			t.Fatalf("remote engines never converged: a=%v z=%v", eA.Ready(), eZ.Ready())
		}
		eA.Run(1)
		eZ.Run(1)
		time.Sleep(50 * time.Microsecond)
	}
	for i := 0; i < 2000; i++ {
		eA.Run(1)
		eZ.Run(1)
		time.Sleep(50 * time.Microsecond)
	}
	for name, e := range map[string]*Engine{"A": eA, "Z": eZ} {
		st := e.Stats()
		if st.Datagrams == 0 {
			t.Errorf("engine %s delivered no datagrams: %+v", name, st)
		}
		ts := e.TransportStats()
		if ts.TxChunks == 0 || ts.RxChunks == 0 {
			t.Errorf("engine %s transport counters empty: %+v", name, ts)
		}
		var names []string
		e.EachTransport(func(n string, _ transport.LineTransport) { names = append(names, n) })
		if len(names) != nLinks {
			t.Errorf("engine %s transports: %v, want %d", name, names, nLinks)
		}
	}
	if a, z := eA.Port(0); a == nil || z != nil {
		t.Error("RoleA engine port shape wrong: want local a, nil z")
	}
}

// TestEngineBringUpDeadline: a single-ended engine with no peer cannot
// converge; BringUp must come back within its deadline naming the
// ports that failed instead of a bare false.
func TestEngineBringUpDeadline(t *testing.T) {
	ln, err := transport.NewUDP(transport.UDPConfig{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{
		Links: 2, Shards: 1,
		Role: RoleA,
		Transport: func(port int) (a, z transport.LineTransport) {
			if port == 0 {
				return ln, nil
			}
			p1, _ := transport.NewPipePair()
			return p1, nil
		},
	})
	defer e.Close()
	bu := e.BringUp(64)
	if bu.Ready {
		t.Fatal("peerless engine reported Ready")
	}
	if bu.Steps < 64 {
		t.Fatalf("gave up after %d steps, deadline was 64", bu.Steps)
	}
	if len(bu.Failed) != 2 {
		t.Fatalf("failed ports: %+v, want both", bu.Failed)
	}
	for i, f := range bu.Failed {
		if f.Port != i || f.AReady || !f.ZReady {
			t.Fatalf("failed port %d record: %+v", i, f)
		}
	}
	if s := bu.String(); s == "" || s == fmt.Sprint(false) {
		t.Fatalf("BringUpResult.String unusable: %q", s)
	}
}

// TestTransportCorrelatedCapturesUDP is the distributed-observatory
// acceptance drill (DESIGN.md §16): a symmetric blackout over real UDP
// loopback fires local transport-LOS detection on BOTH ends, so both
// dump uncorrelated black boxes while the line is dark. The
// correlation leader mints an incident ID and freeze-pings the peer;
// the ping can only land after the window, where the follower must
// back-stamp the ID onto the capture it already wrote — leaving
// exactly one capture pair on disk sharing one nonzero incident ID,
// with no ping-pong extras.
func TestTransportCorrelatedCapturesUDP(t *testing.T) {
	kcfg := transport.Config{KeepalivePeriod: 32, KeepaliveMisses: 3}
	ln, dl := udpPair(t, kcfg)

	const blackoutFrom, blackoutTo = 1200, 1700
	chaos := fault.WrapTransport(ln).Blackout(blackoutFrom, blackoutTo)
	pa, pz := supervisedPorts(chaos, dl)

	dirA, dirZ := t.TempDir(), t.TempDir()
	ra := flight.NewRecorder(nil, "corr_a", flight.Config{Dir: dirA})
	rz := flight.NewRecorder(nil, "corr_z", flight.Config{Dir: dirZ})
	pa.Link.ArmFlight(ra)
	pz.Link.ArmFlight(rz)
	if !pa.ArmCorrelation(ra) || !pz.ArmCorrelation(rz) {
		t.Fatal("UDP transports did not expose the freeze channel")
	}

	now := int64(0)
	run := func(ticks int) {
		for i := 0; i < ticks; i++ {
			now++
			pa.Tick(now)
			pz.Tick(now)
			if pa.Link.IPReady() {
				pa.Link.SendIPv4([]byte("observe"))
			}
			if pz.Link.IPReady() {
				pz.Link.SendIPv4([]byte("observe"))
			}
			pa.Link.ReceivedInto(nil)
			pz.Link.ReceivedInto(nil)
			time.Sleep(50 * time.Microsecond)
		}
	}

	run(1000)
	if !pa.Link.IPReady() || !pz.Link.IPReady() {
		t.Fatal("links not up before the blackout")
	}
	run(blackoutTo - int(now))
	if ra.CapturesFor("transport-los") != 1 || rz.CapturesFor("transport-los") != 1 {
		t.Fatalf("transport-los captures a=%d z=%d, want 1 each",
			ra.CapturesFor("transport-los"), rz.CapturesFor("transport-los"))
	}

	// Restoration: liveness returns, the queued freeze ping flushes,
	// the follower adopts. Give it the retry budget plus slack.
	deadline := time.Now().Add(10 * time.Second)
	matched := func() (a, z *flight.Capture) {
		for _, c := range ra.Recent() {
			if c.Reason == "transport-los" {
				a = c
			}
		}
		for _, c := range rz.Recent() {
			if c.Reason == "transport-los" {
				z = c
			}
		}
		return a, z
	}
	var capA, capZ *flight.Capture
	for {
		capA, capZ = matched()
		if capA != nil && capZ != nil && capA.Incident != 0 && capZ.Incident != 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("incident never correlated: a=%+v z=%+v", capA, capZ)
		}
		run(64)
	}
	if capA.Incident != capZ.Incident {
		t.Fatalf("incident IDs differ: a=%x z=%x", capA.Incident, capZ.Incident)
	}
	// Exactly one end minted (its capture has no peer context), the
	// other adopted the leader's trigger context; nobody re-pinged.
	if (capA.PeerNow != 0) == (capZ.PeerNow != 0) {
		t.Fatalf("want one minted + one adopted capture, got a.PeerNow=%d z.PeerNow=%d",
			capA.PeerNow, capZ.PeerNow)
	}
	if n := ra.CapturesFor("peer-freeze") + rz.CapturesFor("peer-freeze"); n != 0 {
		t.Fatalf("%d peer-freeze captures — the pair should have formed by adoption", n)
	}
	if ra.CapturesFor("transport-los") != 1 || rz.CapturesFor("transport-los") != 1 {
		t.Fatalf("transport-los counts grew: a=%d z=%d, want exactly 1 each",
			ra.CapturesFor("transport-los"), rz.CapturesFor("transport-los"))
	}

	// Recovery also restarts both supervisors at once — the crossed-ping
	// shape, where each end minted its own ID for the same symmetric
	// event. Those captures must converge onto one shared ID too instead
	// of spawning ping-pong peer-freeze dumps.
	run(512)
	var restA, restZ *flight.Capture
	for _, c := range ra.Recent() {
		if c.Reason == "supervisor-restart" {
			restA = c
		}
	}
	for _, c := range rz.Recent() {
		if c.Reason == "supervisor-restart" {
			restZ = c
		}
	}
	if restA != nil && restZ != nil {
		if restA.Incident == 0 || restA.Incident != restZ.Incident {
			t.Fatalf("crossed restart pings did not converge: a=%x z=%x",
				restA.Incident, restZ.Incident)
		}
	}
	if n := ra.CapturesFor("peer-freeze") + rz.CapturesFor("peer-freeze"); n != 0 {
		t.Fatalf("%d peer-freeze captures after restart convergence", n)
	}

	// The on-disk pair must match too: the follower's file is rewritten
	// in place at adoption.
	for _, c := range []*flight.Capture{capA, capZ} {
		onDisk, err := flight.ReadFile(c.Path)
		if err != nil {
			t.Fatalf("read %s: %v", c.Path, err)
		}
		if onDisk.Incident != capA.Incident {
			t.Fatalf("%s incident on disk = %x, want %x", c.Path, onDisk.Incident, capA.Incident)
		}
	}
}
