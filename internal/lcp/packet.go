// Package lcp implements the PPP Link Control Protocol of RFC 1661: the
// control-packet codec, the full option-negotiation finite state machine
// (the "well-defined finite state machine" the P5 Transmitter/Receiver
// control units execute commands from), and the standard LCP
// configuration options (MRU, ACCM, magic number, PFC, ACFC).
//
// The state machine (Automaton) is protocol-agnostic — package ipcp
// reuses it with a different option policy, exactly as RFC 1661 intends
// the NCP family to.
package lcp

import (
	"errors"
	"fmt"
)

// Code is an LCP/NCP control packet code (RFC 1661 §5).
type Code byte

// Control packet codes.
const (
	ConfigureRequest Code = 1
	ConfigureAck     Code = 2
	ConfigureNak     Code = 3
	ConfigureReject  Code = 4
	TerminateRequest Code = 5
	TerminateAck     Code = 6
	CodeReject       Code = 7
	ProtocolReject   Code = 8
	EchoRequest      Code = 9
	EchoReply        Code = 10
	DiscardRequest   Code = 11
)

var codeNames = map[Code]string{
	ConfigureRequest: "Configure-Request",
	ConfigureAck:     "Configure-Ack",
	ConfigureNak:     "Configure-Nak",
	ConfigureReject:  "Configure-Reject",
	TerminateRequest: "Terminate-Request",
	TerminateAck:     "Terminate-Ack",
	CodeReject:       "Code-Reject",
	ProtocolReject:   "Protocol-Reject",
	EchoRequest:      "Echo-Request",
	EchoReply:        "Echo-Reply",
	DiscardRequest:   "Discard-Request",
}

func (c Code) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Code(%d)", byte(c))
}

// Packet is one LCP/NCP control packet: code, identifier, and the data
// field (options, terminate reason, magic+data, ...).
type Packet struct {
	Code Code
	ID   byte
	Data []byte
}

// Codec errors.
var (
	ErrPacketShort  = errors.New("lcp: packet shorter than header")
	ErrPacketLength = errors.New("lcp: length field exceeds packet")
	ErrOptionFormat = errors.New("lcp: malformed option")
)

// Marshal appends the wire encoding of p (code, id, 16-bit length, data)
// to dst.
func (p *Packet) Marshal(dst []byte) []byte {
	n := 4 + len(p.Data)
	dst = append(dst, byte(p.Code), p.ID, byte(n>>8), byte(n))
	return append(dst, p.Data...)
}

// ParsePacket decodes a control packet from the PPP information field.
// Octets beyond the length field are padding and are discarded (RFC 1661
// §5).
func ParsePacket(b []byte) (*Packet, error) {
	if len(b) < 4 {
		return nil, ErrPacketShort
	}
	n := int(b[2])<<8 | int(b[3])
	if n < 4 || n > len(b) {
		return nil, ErrPacketLength
	}
	return &Packet{Code: Code(b[0]), ID: b[1], Data: b[4:n]}, nil
}

// Option is one TLV configuration option.
type Option struct {
	Type byte
	Data []byte
}

// Marshal appends the option encoding (type, length-including-header,
// data) to dst.
func (o Option) Marshal(dst []byte) []byte {
	dst = append(dst, o.Type, byte(2+len(o.Data)))
	return append(dst, o.Data...)
}

// MarshalOptions appends every option in order.
func MarshalOptions(dst []byte, opts []Option) []byte {
	for _, o := range opts {
		dst = o.Marshal(dst)
	}
	return dst
}

// ParseOptions decodes a TLV option list.
func ParseOptions(b []byte) ([]Option, error) {
	var opts []Option
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, ErrOptionFormat
		}
		n := int(b[1])
		if n < 2 || n > len(b) {
			return nil, ErrOptionFormat
		}
		opts = append(opts, Option{Type: b[0], Data: append([]byte(nil), b[2:n]...)})
		b = b[n:]
	}
	return opts, nil
}

// optionsEqual reports whether two option lists are identical byte for
// byte — the test a Configure-Ack must pass (RFC 1661 §5.2).
func optionsEqual(a, b []Option) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || len(a[i].Data) != len(b[i].Data) {
			return false
		}
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				return false
			}
		}
	}
	return true
}
