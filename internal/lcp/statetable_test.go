package lcp

import (
	"testing"
)

// These tests walk the corners of the RFC 1661 §4.1 state table that the
// end-to-end handshake tests never visit: crossed events, packets in
// terminating states, administrative events out of order.

// harness builds an automaton capturing its transmissions.
type harness struct {
	a                           *Automaton
	sent                        []*Packet
	up, down, started, finished int
}

func newHarness() *harness {
	h := &harness{}
	h.a = NewAutomaton(func(p *Packet) {
		h.sent = append(h.sent, clonePacket(p))
	}, NewLCPPolicy(7), Hooks{
		Up:       func() { h.up++ },
		Down:     func() { h.down++ },
		Started:  func() { h.started++ },
		Finished: func() { h.finished++ },
	})
	return h
}

// lastCode returns the most recent transmitted code (0 if none).
func (h *harness) lastCode() Code {
	if len(h.sent) == 0 {
		return 0
	}
	return h.sent[len(h.sent)-1].Code
}

// toOpened drives the automaton to Opened against a scripted peer.
func (h *harness) toOpened(t *testing.T) {
	t.Helper()
	h.a.Open()
	h.a.Up()
	h.a.Receive(&Packet{Code: ConfigureAck, ID: h.a.id, Data: MarshalOptions(nil, h.a.reqOpts)})
	h.a.Receive(&Packet{Code: ConfigureRequest, ID: 1})
	if h.a.State() != Opened {
		t.Fatalf("setup: state = %v", h.a.State())
	}
}

func TestUpInInitialGoesClosed(t *testing.T) {
	h := newHarness()
	h.a.Up()
	if h.a.State() != Closed {
		t.Errorf("state = %v", h.a.State())
	}
	// Up again: no transition.
	h.a.Up()
	if h.a.State() != Closed {
		t.Errorf("second Up: %v", h.a.State())
	}
}

func TestOpenInInitialSignalsStart(t *testing.T) {
	h := newHarness()
	h.a.Open()
	if h.a.State() != Starting || h.started != 1 {
		t.Errorf("state=%v started=%d", h.a.State(), h.started)
	}
	// Close from Starting: finished, back to Initial.
	h.a.Close()
	if h.a.State() != Initial || h.finished != 1 {
		t.Errorf("state=%v finished=%d", h.a.State(), h.finished)
	}
}

func TestDownFromEveryBusyState(t *testing.T) {
	// Down in Req-Sent/Ack-Rcvd/Ack-Sent → Starting.
	for _, prep := range []func(h *harness){
		func(h *harness) { // Req-Sent
			h.a.Open()
			h.a.Up()
		},
		func(h *harness) { // Ack-Rcvd
			h.a.Open()
			h.a.Up()
			h.a.Receive(&Packet{Code: ConfigureAck, ID: h.a.id, Data: MarshalOptions(nil, h.a.reqOpts)})
		},
		func(h *harness) { // Ack-Sent
			h.a.Open()
			h.a.Up()
			h.a.Receive(&Packet{Code: ConfigureRequest, ID: 1})
		},
	} {
		h := newHarness()
		prep(h)
		h.a.Down()
		if h.a.State() != Starting {
			t.Errorf("Down → %v, want Starting", h.a.State())
		}
	}
	// Down in Opened signals this-layer-down.
	h := newHarness()
	h.toOpened(t)
	h.a.Down()
	if h.a.State() != Starting || h.down != 1 {
		t.Errorf("state=%v down=%d", h.a.State(), h.down)
	}
	// Down in Closed → Initial.
	h2 := newHarness()
	h2.a.Up()
	h2.a.Down()
	if h2.a.State() != Initial {
		t.Errorf("Closed+Down → %v", h2.a.State())
	}
	// Down in Stopped → Starting with tls.
	h3 := newHarness()
	h3.a.MaxConfigure = 1
	h3.a.Open()
	h3.a.Up()
	h3.a.Advance(10) // TO- → Stopped
	if h3.a.State() != Stopped {
		t.Fatalf("setup: %v", h3.a.State())
	}
	h3.a.Down()
	if h3.a.State() != Starting || h3.started < 2 {
		t.Errorf("Stopped+Down → %v started=%d", h3.a.State(), h3.started)
	}
}

func TestCloseAndReopenWhileClosing(t *testing.T) {
	h := newHarness()
	h.toOpened(t)
	h.a.Close()
	if h.a.State() != Closing || h.lastCode() != TerminateRequest {
		t.Fatalf("state=%v last=%v", h.a.State(), h.lastCode())
	}
	// Open during Closing → Stopping (restart after termination).
	h.a.Open()
	if h.a.State() != Stopping {
		t.Errorf("state = %v, want Stopping", h.a.State())
	}
	// Close during Stopping → back to Closing.
	h.a.Close()
	if h.a.State() != Closing {
		t.Errorf("state = %v, want Closing", h.a.State())
	}
	// Terminate-Ack in Closing → Closed + tlf.
	h.a.Receive(&Packet{Code: TerminateAck, ID: h.a.id})
	if h.a.State() != Closed || h.finished != 1 {
		t.Errorf("state=%v finished=%d", h.a.State(), h.finished)
	}
	// Open from Closed restarts negotiation.
	h.a.Open()
	if h.a.State() != ReqSent {
		t.Errorf("reopen: %v", h.a.State())
	}
}

func TestTimeoutInClosingGivesUpToClosed(t *testing.T) {
	h := newHarness()
	h.toOpened(t)
	h.a.MaxTerminate = 2
	h.a.Close()
	now := int64(0)
	for i := 0; i < 5 && h.a.State() == Closing; i++ {
		now += DefaultRestartPeriod
		h.a.Advance(now)
	}
	if h.a.State() != Closed || h.finished != 1 {
		t.Errorf("state=%v finished=%d", h.a.State(), h.finished)
	}
	// Exactly 1 str + MaxTerminate-1 retries... count Terminate-Requests.
	trs := 0
	for _, p := range h.sent {
		if p.Code == TerminateRequest {
			trs++
		}
	}
	if trs != 2 {
		t.Errorf("terminate requests = %d, want MaxTerminate", trs)
	}
}

func TestPacketsInClosingAreIgnoredOrAcked(t *testing.T) {
	h := newHarness()
	h.toOpened(t)
	h.a.Close()
	n := len(h.sent)
	// Configure-Request while terminating: no reply, no transition.
	h.a.Receive(&Packet{Code: ConfigureRequest, ID: 9})
	if h.a.State() != Closing || len(h.sent) != n {
		t.Errorf("RCR in Closing: state=%v sent=%d", h.a.State(), len(h.sent)-n)
	}
	// Configure-Ack likewise.
	h.a.Receive(&Packet{Code: ConfigureAck, ID: h.a.id})
	if h.a.State() != Closing {
		t.Errorf("RCA in Closing: %v", h.a.State())
	}
	// Terminate-Request gets acked without leaving Closing.
	h.a.Receive(&Packet{Code: TerminateRequest, ID: 3})
	if h.a.State() != Closing || h.lastCode() != TerminateAck {
		t.Errorf("RTR in Closing: state=%v last=%v", h.a.State(), h.lastCode())
	}
}

func TestRCAInClosedSendsTerminateAck(t *testing.T) {
	h := newHarness()
	h.a.Up() // Closed
	h.a.Receive(&Packet{Code: ConfigureAck, ID: 0})
	if h.lastCode() != TerminateAck {
		t.Errorf("last = %v, want Terminate-Ack", h.lastCode())
	}
	h.a.Receive(&Packet{Code: ConfigureNak, ID: 0})
	if h.lastCode() != TerminateAck {
		t.Errorf("RCN in Closed: %v", h.lastCode())
	}
	h.a.Receive(&Packet{Code: ConfigureRequest, ID: 0})
	if h.lastCode() != TerminateAck {
		t.Errorf("RCR in Closed: %v", h.lastCode())
	}
}

func TestCrossedAcksRestartExchange(t *testing.T) {
	// RCA in Ack-Rcvd (a second ack) indicates crossed connections:
	// re-send Configure-Request and fall back to Req-Sent.
	h := newHarness()
	h.a.Open()
	h.a.Up()
	ackNow := func() *Packet {
		return &Packet{Code: ConfigureAck, ID: h.a.id, Data: MarshalOptions(nil, h.a.reqOpts)}
	}
	h.a.Receive(ackNow()) // → Ack-Rcvd
	if h.a.State() != AckRcvd {
		t.Fatalf("state = %v", h.a.State())
	}
	h.a.Receive(ackNow())
	if h.a.State() != ReqSent || h.lastCode() != ConfigureRequest {
		t.Errorf("crossed ack: state=%v last=%v", h.a.State(), h.lastCode())
	}
}

func TestNakInAckRcvdFallsBack(t *testing.T) {
	h := newHarness()
	h.a.Open()
	h.a.Up()
	h.a.Receive(&Packet{Code: ConfigureAck, ID: h.a.id, Data: MarshalOptions(nil, h.a.reqOpts)})
	if h.a.State() != AckRcvd {
		t.Fatalf("state = %v", h.a.State())
	}
	h.a.Receive(&Packet{Code: ConfigureNak, ID: h.a.id})
	if h.a.State() != ReqSent {
		t.Errorf("state = %v, want Req-Sent", h.a.State())
	}
}

func TestRCRMinusInOpenedRenegotiates(t *testing.T) {
	// An unacceptable Configure-Request on an open link: tld, scr, scn.
	h := newHarness()
	h.toOpened(t)
	bad := MarshalOptions(nil, []Option{u16opt(OptMRU, 1)}) // below MinMRU
	h.a.Receive(&Packet{Code: ConfigureRequest, ID: 7, Data: bad})
	if h.a.State() != ReqSent {
		t.Errorf("state = %v, want Req-Sent", h.a.State())
	}
	if h.down != 1 {
		t.Errorf("down = %d", h.down)
	}
	var sawReq, sawNak bool
	for _, p := range h.sent {
		switch p.Code {
		case ConfigureRequest:
			sawReq = true
		case ConfigureNak:
			sawNak = true
		}
	}
	if !sawReq || !sawNak {
		t.Error("renegotiation packets missing")
	}
}

func TestRCAInOpenedRestarts(t *testing.T) {
	h := newHarness()
	h.toOpened(t)
	h.a.Receive(&Packet{Code: ConfigureAck, ID: h.a.id, Data: MarshalOptions(nil, h.a.reqOpts)})
	if h.a.State() != ReqSent || h.down != 1 {
		t.Errorf("state=%v down=%d", h.a.State(), h.down)
	}
}

func TestRCNInOpenedRestarts(t *testing.T) {
	h := newHarness()
	h.toOpened(t)
	h.a.Receive(&Packet{Code: ConfigureReject, ID: h.a.id, Data: MarshalOptions(nil, []Option{{Type: OptMagic, Data: []byte{0, 0, 0, 7}}})})
	if h.a.State() != ReqSent || h.down != 1 {
		t.Errorf("state=%v down=%d", h.a.State(), h.down)
	}
}

func TestRTAInOpenedRestarts(t *testing.T) {
	// An unsolicited Terminate-Ack on an open link signals the peer
	// lost state: tld + scr.
	h := newHarness()
	h.toOpened(t)
	h.a.Receive(&Packet{Code: TerminateAck, ID: 99})
	if h.a.State() != ReqSent || h.down != 1 {
		t.Errorf("state=%v down=%d", h.a.State(), h.down)
	}
}

func TestRTAInAckRcvdFallsBack(t *testing.T) {
	h := newHarness()
	h.a.Open()
	h.a.Up()
	h.a.Receive(&Packet{Code: ConfigureAck, ID: h.a.id, Data: MarshalOptions(nil, h.a.reqOpts)})
	h.a.Receive(&Packet{Code: TerminateAck, ID: 1})
	if h.a.State() != ReqSent {
		t.Errorf("state = %v", h.a.State())
	}
}

func TestRXJMinusInOpenedRestartsTermination(t *testing.T) {
	h := newHarness()
	h.toOpened(t)
	bad := (&Packet{Code: TerminateRequest, ID: 1}).Marshal(nil)
	h.a.Receive(&Packet{Code: CodeReject, ID: 1, Data: bad})
	if h.a.State() != Stopping || h.down != 1 {
		t.Errorf("state=%v down=%d", h.a.State(), h.down)
	}
	if h.lastCode() != TerminateRequest {
		t.Errorf("last = %v", h.lastCode())
	}
}

func TestRXJMinusInClosingFinishes(t *testing.T) {
	h := newHarness()
	h.toOpened(t)
	h.a.Close()
	bad := (&Packet{Code: ConfigureRequest, ID: 1}).Marshal(nil)
	h.a.Receive(&Packet{Code: CodeReject, ID: 1, Data: bad})
	if h.a.State() != Closed || h.finished != 1 {
		t.Errorf("state=%v finished=%d", h.a.State(), h.finished)
	}
}

func TestCodeRejectOfExtensionCodeIgnored(t *testing.T) {
	// Rejecting an Echo-Request (an extension code) is RXJ+: no
	// transition.
	h := newHarness()
	h.toOpened(t)
	bad := (&Packet{Code: EchoRequest, ID: 1}).Marshal(nil)
	h.a.Receive(&Packet{Code: CodeReject, ID: 1, Data: bad})
	if h.a.State() != Opened {
		t.Errorf("state = %v, want Opened", h.a.State())
	}
}

func TestProtocolRejectIsRXJPlus(t *testing.T) {
	h := newHarness()
	h.toOpened(t)
	h.a.Receive(&Packet{Code: ProtocolReject, ID: 1, Data: []byte{0x80, 0x21}})
	if h.a.State() != Opened {
		t.Errorf("state = %v", h.a.State())
	}
}

func TestDiscardRequestNoReply(t *testing.T) {
	h := newHarness()
	h.toOpened(t)
	n := len(h.sent)
	h.a.Receive(&Packet{Code: DiscardRequest, ID: 1})
	if len(h.sent) != n || h.a.State() != Opened {
		t.Error("discard-request must be silently discarded")
	}
}

func TestTerminateRequestInAckSentFallsBack(t *testing.T) {
	h := newHarness()
	h.a.Open()
	h.a.Up()
	h.a.Receive(&Packet{Code: ConfigureRequest, ID: 1}) // → Ack-Sent
	if h.a.State() != AckSent {
		t.Fatalf("state = %v", h.a.State())
	}
	h.a.Receive(&Packet{Code: TerminateRequest, ID: 5})
	if h.a.State() != ReqSent || h.lastCode() != TerminateAck {
		t.Errorf("state=%v last=%v", h.a.State(), h.lastCode())
	}
}

func TestStoppedStateAnswersRequests(t *testing.T) {
	h := newHarness()
	h.a.MaxConfigure = 1
	h.a.Open()
	h.a.Up()
	h.a.Advance(10) // → Stopped
	if h.a.State() != Stopped {
		t.Fatalf("setup: %v", h.a.State())
	}
	// RCR+ in Stopped: irc, scr, sca → Ack-Sent.
	h.a.Receive(&Packet{Code: ConfigureRequest, ID: 2})
	if h.a.State() != AckSent {
		t.Errorf("state = %v, want Ack-Sent", h.a.State())
	}
	// And a bad request from Stopped.
	h2 := newHarness()
	h2.a.MaxConfigure = 1
	h2.a.Open()
	h2.a.Up()
	h2.a.Advance(10)
	bad := MarshalOptions(nil, []Option{u16opt(OptMRU, 1)})
	h2.a.Receive(&Packet{Code: ConfigureRequest, ID: 2, Data: bad})
	if h2.a.State() != ReqSent {
		t.Errorf("RCR- in Stopped: %v", h2.a.State())
	}
}

func TestTimeoutInStoppingGivesUpToStopped(t *testing.T) {
	h := newHarness()
	h.toOpened(t)
	// Peer terminates; we land in Stopping with zero restart count.
	h.a.Receive(&Packet{Code: TerminateRequest, ID: 3})
	if h.a.State() != Stopping {
		t.Fatalf("state = %v", h.a.State())
	}
	now := int64(0)
	for i := 0; i < 5 && h.a.State() == Stopping; i++ {
		now += DefaultRestartPeriod
		h.a.Advance(now)
	}
	if h.a.State() != Stopped || h.finished != 1 {
		t.Errorf("state=%v finished=%d", h.a.State(), h.finished)
	}
}

func TestOptionsEqualMismatchShapes(t *testing.T) {
	a := []Option{{Type: 1, Data: []byte{1, 2}}}
	if optionsEqual(a, []Option{{Type: 2, Data: []byte{1, 2}}}) {
		t.Error("type mismatch accepted")
	}
	if optionsEqual(a, []Option{{Type: 1, Data: []byte{1}}}) {
		t.Error("length mismatch accepted")
	}
	if optionsEqual(a, []Option{{Type: 1, Data: []byte{1, 3}}}) {
		t.Error("data mismatch accepted")
	}
	if !optionsEqual(nil, nil) {
		t.Error("empty lists must match")
	}
}

func TestAuthOptionCodec(t *testing.T) {
	pap := authOption(0xC023)
	if p, ok := parseAuthOption(pap); !ok || p != 0xC023 {
		t.Error("PAP option codec")
	}
	chap := authOption(0xC223)
	if len(chap.Data) != 3 || chap.Data[2] != 5 {
		t.Errorf("CHAP option data = % x", chap.Data)
	}
	if p, ok := parseAuthOption(chap); !ok || p != 0xC223 {
		t.Error("CHAP option codec")
	}
	if _, ok := parseAuthOption(Option{Type: OptAuthProto, Data: []byte{0xC2}}); ok {
		t.Error("short option accepted")
	}
	if _, ok := parseAuthOption(Option{Type: OptAuthProto, Data: []byte{0xC2, 0x23, 9}}); ok {
		t.Error("unknown CHAP algorithm accepted")
	}
	if _, ok := parseAuthOption(Option{Type: OptAuthProto, Data: []byte{0x12, 0x34}}); ok {
		t.Error("unknown protocol accepted")
	}
}

func TestCheckRequestMalformedOptions(t *testing.T) {
	p := NewLCPPolicy(1)
	naks, rejs := p.CheckRequest([]Option{
		{Type: OptMRU, Data: []byte{1}},         // short MRU
		{Type: OptACCM, Data: []byte{1, 2}},     // short ACCM
		{Type: OptMagic, Data: []byte{1}},       // short magic
		{Type: OptQualityProt, Data: []byte{1}}, // unimplemented
	})
	if len(naks) != 0 || len(rejs) != 4 {
		t.Errorf("naks=%d rejs=%d", len(naks), len(rejs))
	}
}

func TestHandleNakAdoptsValues(t *testing.T) {
	p := NewLCPPolicy(1)
	p.WantMRU = 64
	p.WantPFC = true
	p.WantACFC = true
	p.RequireAuth = 0xC023
	p.CanAuth = map[uint16]bool{0xC223: true}
	p.HandleNak([]Option{
		u16opt(OptMRU, 1400),
		u32opt(OptACCM, 0x000A0000),
		{Type: OptPFC},
		{Type: OptACFC},
		authOption(0xC223),
	})
	if p.WantMRU != 1400 {
		t.Errorf("MRU = %d", p.WantMRU)
	}
	if p.WantACCM&0x000A0000 == 0 {
		t.Error("ACCM union not applied")
	}
	if p.WantPFC || p.WantACFC {
		t.Error("compression naks must clear the requests")
	}
	if p.RequireAuth != 0xC223 {
		t.Errorf("auth counter-proposal not adopted: %#x", p.RequireAuth)
	}
}
