package lcp

// Receive processes one control packet from the peer, driving the
// receive events of the RFC 1661 state table (RCR+/-, RCA, RCN, RTR,
// RTA, RUC, RXJ+/-, RXR).
func (a *Automaton) Receive(p *Packet) {
	a.RxPackets++
	switch p.Code {
	case ConfigureRequest:
		opts, err := ParseOptions(p.Data)
		if err != nil {
			a.RxBadPackets++
			return
		}
		naks, rejs := a.Policy.CheckRequest(opts)
		if len(naks) == 0 && len(rejs) == 0 {
			a.rcrGood(p.ID, opts)
		} else {
			a.rcrBad(p.ID, naks, rejs)
		}
	case ConfigureAck:
		if p.ID != a.id {
			a.RxBadPackets++
			return
		}
		opts, err := ParseOptions(p.Data)
		if err != nil || !optionsEqual(opts, a.reqOpts) {
			a.RxBadPackets++
			return
		}
		a.rca()
	case ConfigureNak, ConfigureReject:
		if p.ID != a.id {
			a.RxBadPackets++
			return
		}
		opts, err := ParseOptions(p.Data)
		if err != nil {
			a.RxBadPackets++
			return
		}
		if p.Code == ConfigureNak {
			a.Policy.HandleNak(opts)
		} else {
			a.Policy.HandleReject(opts)
		}
		a.rcn()
	case TerminateRequest:
		a.rtr(p.ID)
	case TerminateAck:
		a.rta()
	case CodeReject:
		// Reject of a code we depend on is catastrophic (RXJ-);
		// reject of an extension code is permitted (RXJ+).
		if rej, err := ParsePacket(p.Data); err == nil && rej.Code >= ConfigureRequest && rej.Code <= TerminateAck {
			a.rxjBad()
		}
		// RXJ+ has no transitions: silently ignored.
	case ProtocolReject:
		// Passed up in a full stack; for the automaton it is RXJ+.
	case EchoRequest:
		a.rxr(p, true)
	case EchoReply, DiscardRequest:
		a.rxr(p, false)
	default:
		a.ruc(p)
	}
}

// rcrGood is RCR+: an acceptable Configure-Request.
func (a *Automaton) rcrGood(id byte, opts []Option) {
	switch a.state {
	case Closed:
		a.sta(id)
	case Stopped:
		a.irc(false)
		a.scr()
		a.sca(id, opts)
		a.Policy.ApplyPeer(opts)
		a.setState(AckSent)
	case Closing, Stopping:
		// Terminating: ignore.
	case ReqSent:
		a.sca(id, opts)
		a.Policy.ApplyPeer(opts)
		a.setState(AckSent)
	case AckRcvd:
		a.sca(id, opts)
		a.Policy.ApplyPeer(opts)
		a.setState(Opened)
		a.tlu()
	case AckSent:
		a.sca(id, opts)
		a.Policy.ApplyPeer(opts)
	case Opened:
		a.tld()
		a.scr()
		a.sca(id, opts)
		a.Policy.ApplyPeer(opts)
		a.setState(AckSent)
	}
}

// rcrBad is RCR-: an unacceptable Configure-Request.
func (a *Automaton) rcrBad(id byte, naks, rejs []Option) {
	switch a.state {
	case Closed:
		a.sta(id)
	case Stopped:
		a.irc(false)
		a.scr()
		a.scn(id, naks, rejs)
		a.setState(ReqSent)
	case Closing, Stopping:
	case ReqSent, AckSent:
		a.scn(id, naks, rejs)
		a.setState(ReqSent)
	case AckRcvd:
		a.scn(id, naks, rejs)
	case Opened:
		a.tld()
		a.scr()
		a.scn(id, naks, rejs)
		a.setState(ReqSent)
	}
}

// rca is RCA: the peer acknowledged our request.
func (a *Automaton) rca() {
	switch a.state {
	case Closed, Stopped:
		a.sta(a.id)
	case Closing, Stopping:
	case ReqSent:
		a.irc(false)
		a.Policy.PeerAcked(a.reqOpts)
		a.setState(AckRcvd)
	case AckRcvd:
		// Crossed acks: restart.
		a.scr()
		a.setState(ReqSent)
	case AckSent:
		a.irc(false)
		a.Policy.PeerAcked(a.reqOpts)
		a.setState(Opened)
		a.tlu()
	case Opened:
		a.tld()
		a.scr()
		a.setState(ReqSent)
	}
}

// rcn is RCN: the peer naked or rejected our request; LocalOptions has
// already been revised by the Policy.
func (a *Automaton) rcn() {
	switch a.state {
	case Closed, Stopped:
		a.sta(a.id)
	case Closing, Stopping:
	case ReqSent:
		a.irc(false)
		a.scr()
	case AckRcvd:
		a.scr()
		a.setState(ReqSent)
	case AckSent:
		a.irc(false)
		a.scr()
	case Opened:
		a.tld()
		a.scr()
		a.setState(ReqSent)
	}
}

// rtr is RTR: the peer requested termination.
func (a *Automaton) rtr(id byte) {
	switch a.state {
	case Closed, Stopped, Closing, Stopping, ReqSent:
		a.sta(id)
	case AckRcvd, AckSent:
		a.sta(id)
		a.setState(ReqSent)
	case Opened:
		a.tld()
		a.zrc()
		a.sta(id)
		a.setState(Stopping)
	}
}

// rta is RTA: the peer acknowledged our Terminate-Request.
func (a *Automaton) rta() {
	switch a.state {
	case Closing:
		a.tlf()
		a.setState(Closed)
	case Stopping:
		a.tlf()
		a.setState(Stopped)
	case AckRcvd:
		a.setState(ReqSent)
	case Opened:
		a.tld()
		a.scr()
		a.setState(ReqSent)
	default:
	}
}

// ruc is RUC: an unknown code arrived; send Code-Reject.
func (a *Automaton) ruc(p *Packet) {
	switch a.state {
	case Initial, Starting:
	default:
		a.scj(p)
	}
}

// rxjBad is RXJ-: a catastrophic Code/Protocol-Reject.
func (a *Automaton) rxjBad() {
	switch a.state {
	case Closed, Closing:
		a.tlf()
		a.setState(Closed)
	case Stopped, Stopping, ReqSent, AckRcvd, AckSent:
		a.tlf()
		a.setState(Stopped)
	case Opened:
		a.tld()
		a.irc(true)
		a.str()
		a.setState(Stopping)
	}
}

// rxr is RXR: Echo-Request/Reply or Discard-Request. Only an Opened link
// replies to echoes (RFC 1661 §5.8).
func (a *Automaton) rxr(p *Packet, reply bool) {
	if a.state == Opened && reply {
		a.ser(p)
	}
}
