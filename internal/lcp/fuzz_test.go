package lcp

import "testing"

// FuzzParsePacket must never panic, and valid parses must re-marshal
// to a prefix-equal encoding.
func FuzzParsePacket(f *testing.F) {
	f.Add([]byte{1, 1, 0, 4})
	f.Add([]byte{9, 2, 0, 8, 1, 2, 3, 4})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := ParsePacket(b)
		if err != nil {
			return
		}
		re := p.Marshal(nil)
		if len(re) > len(b) {
			t.Fatal("re-marshal grew")
		}
		for i := range re {
			if re[i] != b[i] {
				t.Fatalf("re-marshal differs at %d", i)
			}
		}
	})
}

// FuzzParseOptions + automaton: a fuzzed Configure-Request must never
// panic the automaton in any state.
func FuzzReceive(f *testing.F) {
	f.Add(byte(1), byte(1), []byte{1, 4, 5, 220})
	f.Add(byte(5), byte(9), []byte{})
	f.Add(byte(42), byte(0), []byte{0, 0})
	f.Fuzz(func(t *testing.T, code, id byte, data []byte) {
		a := NewAutomaton(func(*Packet) {}, NewLCPPolicy(1), Hooks{})
		a.Open()
		a.Up()
		a.Receive(&Packet{Code: Code(code), ID: id, Data: data})
		a.Advance(100)
		a.Receive(&Packet{Code: Code(code), ID: id, Data: data})
	})
}
