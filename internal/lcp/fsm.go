package lcp

import "fmt"

// State is an RFC 1661 §4.2 automaton state.
type State int

// The ten automaton states.
const (
	Initial State = iota
	Starting
	Closed
	Stopped
	Closing
	Stopping
	ReqSent
	AckRcvd
	AckSent
	Opened
)

var stateNames = [...]string{
	"Initial", "Starting", "Closed", "Stopped", "Closing",
	"Stopping", "Req-Sent", "Ack-Rcvd", "Ack-Sent", "Opened",
}

func (s State) String() string {
	if s >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Default restart parameters (RFC 1661 §4.6).
const (
	DefaultMaxConfigure = 10
	DefaultMaxTerminate = 2
	DefaultMaxFailure   = 5
	// DefaultRestartPeriod is the restart timer in virtual time units.
	// The automaton is driven by an abstract monotonic clock (Advance),
	// so the unit is whatever the caller uses — seconds, cycles, ...
	DefaultRestartPeriod = 3
)

// Policy supplies the protocol-specific option semantics to the generic
// automaton. LCP and the NCPs (package ipcp) differ only in their Policy.
type Policy interface {
	// LocalOptions returns the options for the next Configure-Request.
	LocalOptions() []Option
	// CheckRequest examines a peer Configure-Request. Empty returns
	// mean every option is acceptable (ack). Otherwise rejs lists
	// unrecognised/forbidden options and naks lists recognised options
	// with counter-proposed values.
	CheckRequest(opts []Option) (naks, rejs []Option)
	// PeerAcked notifies the policy that the peer acknowledged our
	// request containing opts.
	PeerAcked(opts []Option)
	// HandleNak revises local desires from a peer Configure-Nak.
	HandleNak(opts []Option)
	// HandleReject removes rejected options from local desires.
	HandleReject(opts []Option)
	// ApplyPeer applies a peer request we are acknowledging.
	ApplyPeer(opts []Option)
}

// Hooks are the this-layer-* signals of RFC 1661 §4.3. Any nil hook is
// skipped. In the P5 these surface as Protocol-OAM interrupts to the host.
type Hooks struct {
	Up       func() // tlu: entered Opened
	Down     func() // tld: left Opened
	Started  func() // tls: lower layer should come up
	Finished func() // tlf: lower layer no longer needed
}

// Automaton is the RFC 1661 option-negotiation state machine.
// Zero value is not ready: use NewAutomaton.
type Automaton struct {
	// Send transmits a control packet to the peer. Required.
	Send func(*Packet)
	// Hooks receive the this-layer-* signals.
	Hooks Hooks
	// Policy supplies option semantics. Required.
	Policy Policy
	// OnTransition, when set, observes every state change (telemetry
	// tracing); it runs after the state is stored, before any hook.
	OnTransition func(from, to State)

	// Restart parameters; zero values take the RFC defaults.
	MaxConfigure  int
	MaxTerminate  int
	MaxFailure    int
	RestartPeriod int64

	state    State
	restart  int  // restart counter
	failures int  // consecutive Configure-Naks sent (Max-Failure)
	id       byte // identifier of our outstanding request
	reqOpts  []Option

	now      int64
	deadline int64 // virtual-time restart timer; 0 = stopped

	// Stats for the OAM register file.
	TxPackets, RxPackets   uint64
	RxBadPackets, Timeouts uint64
}

// NewAutomaton returns an automaton in the Initial state.
func NewAutomaton(send func(*Packet), policy Policy, hooks Hooks) *Automaton {
	return &Automaton{Send: send, Policy: policy, Hooks: hooks, state: Initial}
}

// State reports the current automaton state.
func (a *Automaton) State() State { return a.state }

func (a *Automaton) maxConfigure() int {
	if a.MaxConfigure == 0 {
		return DefaultMaxConfigure
	}
	return a.MaxConfigure
}

func (a *Automaton) maxTerminate() int {
	if a.MaxTerminate == 0 {
		return DefaultMaxTerminate
	}
	return a.MaxTerminate
}

func (a *Automaton) maxFailure() int {
	if a.MaxFailure == 0 {
		return DefaultMaxFailure
	}
	return a.MaxFailure
}

func (a *Automaton) restartPeriod() int64 {
	if a.RestartPeriod == 0 {
		return DefaultRestartPeriod
	}
	return a.RestartPeriod
}

// --- primitive actions (RFC 1661 §4.4) ---

func (a *Automaton) tlu() {
	if a.Hooks.Up != nil {
		a.Hooks.Up()
	}
}

func (a *Automaton) tld() {
	if a.Hooks.Down != nil {
		a.Hooks.Down()
	}
}

func (a *Automaton) tls() {
	if a.Hooks.Started != nil {
		a.Hooks.Started()
	}
}

func (a *Automaton) tlf() {
	if a.Hooks.Finished != nil {
		a.Hooks.Finished()
	}
}

func (a *Automaton) startTimer() { a.deadline = a.now + a.restartPeriod() }
func (a *Automaton) stopTimer()  { a.deadline = 0 }

// irc initialises the restart counter for configure or terminate.
func (a *Automaton) irc(terminate bool) {
	if terminate {
		a.restart = a.maxTerminate()
	} else {
		a.restart = a.maxConfigure()
		a.failures = 0
	}
}

func (a *Automaton) zrc() {
	a.restart = 0
	a.startTimer()
}

func (a *Automaton) send(p *Packet) {
	a.TxPackets++
	if a.Send != nil {
		a.Send(p)
	}
}

// scr sends a Configure-Request with fresh options and a fresh identifier,
// decrements the restart counter and restarts the timer.
func (a *Automaton) scr() {
	a.id++
	a.reqOpts = a.Policy.LocalOptions()
	a.send(&Packet{Code: ConfigureRequest, ID: a.id, Data: MarshalOptions(nil, a.reqOpts)})
	a.restart--
	a.startTimer()
}

func (a *Automaton) sca(id byte, opts []Option) {
	a.send(&Packet{Code: ConfigureAck, ID: id, Data: MarshalOptions(nil, opts)})
}

// scn sends a Configure-Nak or Configure-Reject. Rejects take precedence
// (RFC 1661 §5.4); after Max-Failure naks the naked options are rejected
// instead to guarantee convergence.
func (a *Automaton) scn(id byte, naks, rejs []Option) {
	if len(rejs) > 0 {
		a.send(&Packet{Code: ConfigureReject, ID: id, Data: MarshalOptions(nil, rejs)})
		return
	}
	a.failures++
	if a.failures > a.maxFailure() {
		a.send(&Packet{Code: ConfigureReject, ID: id, Data: MarshalOptions(nil, naks)})
		return
	}
	a.send(&Packet{Code: ConfigureNak, ID: id, Data: MarshalOptions(nil, naks)})
}

func (a *Automaton) str() {
	a.id++
	a.send(&Packet{Code: TerminateRequest, ID: a.id})
	a.restart--
	a.startTimer()
}

func (a *Automaton) sta(id byte) {
	a.send(&Packet{Code: TerminateAck, ID: id})
}

func (a *Automaton) scj(bad *Packet) {
	a.id++
	a.send(&Packet{Code: CodeReject, ID: a.id, Data: bad.Marshal(nil)})
}

func (a *Automaton) ser(req *Packet) {
	a.send(&Packet{Code: EchoReply, ID: req.ID, Data: append([]byte(nil), req.Data...)})
}

func (a *Automaton) setState(s State) {
	prev := a.state
	a.state = s
	// The restart timer only runs in the five "busy" states.
	switch s {
	case ReqSent, AckRcvd, AckSent, Closing, Stopping:
	default:
		a.stopTimer()
	}
	if prev != s && a.OnTransition != nil {
		a.OnTransition(prev, s)
	}
}

// --- administrative events (RFC 1661 §4.1) ---

// Up signals that the lower layer (the physical link / P5 PHY interface)
// is ready to carry traffic.
func (a *Automaton) Up() {
	switch a.state {
	case Initial:
		a.setState(Closed)
	case Starting:
		a.irc(false)
		a.scr()
		a.setState(ReqSent)
	default:
		// Already up: ignore.
	}
}

// Down signals that the lower layer is no longer available.
func (a *Automaton) Down() {
	switch a.state {
	case Closed:
		a.setState(Initial)
	case Stopped:
		a.tls()
		a.setState(Starting)
	case Closing:
		a.setState(Initial)
	case Stopping, ReqSent, AckRcvd, AckSent:
		a.setState(Starting)
	case Opened:
		a.tld()
		a.setState(Starting)
	}
}

// Open requests that the link be opened (administrative open).
func (a *Automaton) Open() {
	switch a.state {
	case Initial:
		a.tls()
		a.setState(Starting)
	case Closed:
		a.irc(false)
		a.scr()
		a.setState(ReqSent)
	case Closing:
		a.setState(Stopping)
	default:
		// Starting/Stopped/Stopping restart option and the active
		// states: no transition.
	}
}

// Close requests that the link be closed (administrative close).
func (a *Automaton) Close() {
	switch a.state {
	case Starting:
		a.tlf()
		a.setState(Initial)
	case Stopped:
		a.setState(Closed)
	case Stopping:
		a.setState(Closing)
	case ReqSent, AckRcvd, AckSent:
		a.irc(true)
		a.str()
		a.setState(Closing)
	case Opened:
		a.tld()
		a.irc(true)
		a.str()
		a.setState(Closing)
	}
}

// Advance moves the automaton's virtual clock to now, firing the restart
// timer if it has expired. Call it periodically (or once per simulation
// step).
func (a *Automaton) Advance(now int64) {
	if now > a.now {
		a.now = now
	}
	if a.deadline == 0 || a.now < a.deadline {
		return
	}
	a.Timeouts++
	if a.restart > 0 {
		a.timeoutRetry()
	} else {
		a.timeoutGiveUp()
	}
}

// timeoutRetry is the TO+ event.
func (a *Automaton) timeoutRetry() {
	switch a.state {
	case Closing:
		a.str()
	case Stopping:
		a.str()
		a.setState(Stopping)
	case ReqSent, AckRcvd:
		a.scr()
		a.setState(ReqSent)
	case AckSent:
		a.scr()
	default:
		a.stopTimer()
	}
}

// timeoutGiveUp is the TO- event.
func (a *Automaton) timeoutGiveUp() {
	switch a.state {
	case Closing:
		a.tlf()
		a.setState(Closed)
	case Stopping, ReqSent, AckRcvd, AckSent:
		a.tlf()
		a.setState(Stopped)
	default:
		a.stopTimer()
	}
}
