package lcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hdlc"
)

func TestPacketRoundTrip(t *testing.T) {
	f := func(code, id byte, data []byte) bool {
		p := &Packet{Code: Code(code), ID: id, Data: data}
		b := p.Marshal(nil)
		q, err := ParsePacket(b)
		if err != nil {
			return false
		}
		if q.Code != p.Code || q.ID != p.ID || len(q.Data) != len(p.Data) {
			return false
		}
		for i := range q.Data {
			if q.Data[i] != p.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketParseErrors(t *testing.T) {
	if _, err := ParsePacket([]byte{1, 2, 0}); err != ErrPacketShort {
		t.Errorf("short: %v", err)
	}
	if _, err := ParsePacket([]byte{1, 2, 0, 99}); err != ErrPacketLength {
		t.Errorf("bad length: %v", err)
	}
	if _, err := ParsePacket([]byte{1, 2, 0, 3}); err != ErrPacketLength {
		t.Errorf("length<4: %v", err)
	}
	// Padding beyond length is legal and discarded.
	p, err := ParsePacket([]byte{1, 2, 0, 5, 0xAA, 0xBB, 0xCC})
	if err != nil || len(p.Data) != 1 || p.Data[0] != 0xAA {
		t.Errorf("padding: %v %v", p, err)
	}
}

func TestOptionsRoundTrip(t *testing.T) {
	opts := []Option{
		{Type: OptMRU, Data: []byte{0x05, 0xDC}},
		{Type: OptMagic, Data: []byte{1, 2, 3, 4}},
		{Type: OptPFC},
	}
	b := MarshalOptions(nil, opts)
	got, err := ParseOptions(b)
	if err != nil {
		t.Fatal(err)
	}
	if !optionsEqual(opts, got) {
		t.Errorf("got %+v", got)
	}
}

func TestOptionsParseErrors(t *testing.T) {
	if _, err := ParseOptions([]byte{1}); err != ErrOptionFormat {
		t.Errorf("truncated header: %v", err)
	}
	if _, err := ParseOptions([]byte{1, 1}); err != ErrOptionFormat {
		t.Errorf("length<2: %v", err)
	}
	if _, err := ParseOptions([]byte{1, 9, 0}); err != ErrOptionFormat {
		t.Errorf("overrun: %v", err)
	}
}

func TestCodeString(t *testing.T) {
	if ConfigureRequest.String() != "Configure-Request" {
		t.Error("code name")
	}
	if Code(99).String() != "Code(99)" {
		t.Error("unknown code name")
	}
}

// link wires two automatons back to back with in-order delivery and an
// optional per-packet drop filter.
type link struct {
	a, b   *Automaton
	aq, bq []*Packet // packets in flight toward a / toward b
	drop   func(from string, p *Packet) bool
}

func newLink(pa, pb Policy) *link {
	l := &link{}
	l.a = NewAutomaton(func(p *Packet) { l.bq = append(l.bq, clonePacket(p)) }, pa, Hooks{})
	l.b = NewAutomaton(func(p *Packet) { l.aq = append(l.aq, clonePacket(p)) }, pb, Hooks{})
	return l
}

func clonePacket(p *Packet) *Packet {
	return &Packet{Code: p.Code, ID: p.ID, Data: append([]byte(nil), p.Data...)}
}

// run delivers queued packets until quiescent or the step budget runs out.
func (l *link) run(t *testing.T, maxSteps int) {
	t.Helper()
	for step := 0; step < maxSteps; step++ {
		if len(l.aq) == 0 && len(l.bq) == 0 {
			return
		}
		if len(l.bq) > 0 {
			p := l.bq[0]
			l.bq = l.bq[1:]
			if l.drop == nil || !l.drop("a->b", p) {
				l.b.Receive(p)
			}
		}
		if len(l.aq) > 0 {
			p := l.aq[0]
			l.aq = l.aq[1:]
			if l.drop == nil || !l.drop("b->a", p) {
				l.a.Receive(p)
			}
		}
	}
	t.Fatalf("link did not quiesce: %d/%d in flight, states %v/%v",
		len(l.aq), len(l.bq), l.a.State(), l.b.State())
}

func TestHandshakeOpensBothSides(t *testing.T) {
	pa := NewLCPPolicy(0x11111111)
	pb := NewLCPPolicy(0x22222222)
	l := newLink(pa, pb)
	var aUp, bUp bool
	l.a.Hooks.Up = func() { aUp = true }
	l.b.Hooks.Up = func() { bUp = true }

	l.a.Open()
	l.b.Open()
	l.a.Up()
	l.b.Up()
	l.run(t, 100)

	if l.a.State() != Opened || l.b.State() != Opened {
		t.Fatalf("states = %v / %v", l.a.State(), l.b.State())
	}
	if !aUp || !bUp {
		t.Error("this-layer-up not signalled on both sides")
	}
	// SONET profile: both sides negotiated ACCM 0.
	if pa.Local.ACCM != hdlc.ACCMNone || pb.Local.ACCM != hdlc.ACCMNone {
		t.Errorf("ACCM = %#x / %#x, want 0", pa.Local.ACCM, pb.Local.ACCM)
	}
	if pa.Local.Magic != 0x11111111 || pa.Peer.Magic != 0x22222222 {
		t.Errorf("magic = %#x / %#x", pa.Local.Magic, pa.Peer.Magic)
	}
}

func TestHandshakePassiveSide(t *testing.T) {
	// b never calls Open but is up; a actively opens. b must follow to
	// AckSent/Opened via the Stopped-state RCR transitions... b without
	// Open stays Closed and answers Terminate-Ack, so a cannot open.
	// With b Open but a passive, the same holds symmetrically. A link
	// opens iff both sides administratively open — verify the negative.
	pa := NewLCPPolicy(1)
	pb := NewLCPPolicy(2)
	l := newLink(pa, pb)
	l.a.Open()
	l.a.Up()
	l.b.Up() // Closed, not opened
	l.run(t, 100)
	if l.a.State() == Opened || l.b.State() == Opened {
		t.Fatalf("half-opened link: %v / %v", l.a.State(), l.b.State())
	}
}

func TestHandshakeWithNakConvergence(t *testing.T) {
	pa := NewLCPPolicy(0xAAAAAAAA)
	pa.WantMRU = 64 // below MinMRU: b will nak up to 128
	pb := NewLCPPolicy(0xBBBBBBBB)
	l := newLink(pa, pb)
	l.a.Open()
	l.b.Open()
	l.a.Up()
	l.b.Up()
	l.run(t, 200)
	if l.a.State() != Opened || l.b.State() != Opened {
		t.Fatalf("states = %v / %v", l.a.State(), l.b.State())
	}
	if pa.Local.MRU != MinMRU {
		t.Errorf("negotiated MRU = %d, want %d", pa.Local.MRU, MinMRU)
	}
}

func TestHandshakeWithReject(t *testing.T) {
	pa := NewLCPPolicy(0xAAAAAAAA)
	pa.WantPFC = true // b does not allow PFC → Configure-Reject
	pb := NewLCPPolicy(0xBBBBBBBB)
	l := newLink(pa, pb)
	l.a.Open()
	l.b.Open()
	l.a.Up()
	l.b.Up()
	l.run(t, 200)
	if l.a.State() != Opened || l.b.State() != Opened {
		t.Fatalf("states = %v / %v", l.a.State(), l.b.State())
	}
	if pa.Local.PFC {
		t.Error("PFC must not be granted after reject")
	}
	if !pa.rejected[OptPFC] {
		t.Error("policy must remember the rejected option")
	}
}

func TestPFCGrantedWhenAllowed(t *testing.T) {
	pa := NewLCPPolicy(1)
	pa.WantPFC = true
	pa.WantACFC = true
	pb := NewLCPPolicy(2)
	pb.AllowPFC = true
	pb.AllowACFC = true
	l := newLink(pa, pb)
	l.a.Open()
	l.b.Open()
	l.a.Up()
	l.b.Up()
	l.run(t, 100)
	if !pa.Local.PFC || !pa.Local.ACFC {
		t.Errorf("PFC/ACFC not granted: %+v", pa.Local)
	}
	// b's transmit config must honour what a asked to receive.
	tx := pb.TxConfig()
	if !tx.PFC || !tx.ACFC {
		t.Errorf("b TxConfig = %+v", tx)
	}
	rx := pa.RxConfig()
	if !rx.PFC || !rx.ACFC {
		t.Errorf("a RxConfig = %+v", rx)
	}
}

func TestMagicLoopbackDetection(t *testing.T) {
	// Both sides use the same magic: the policy must nak and count a
	// suspected loopback, and the link must still converge because the
	// naked side adopts a new magic.
	pa := NewLCPPolicy(0x12345678)
	pb := NewLCPPolicy(0x12345678)
	ra := rand.New(rand.NewSource(11))
	rb := rand.New(rand.NewSource(22))
	pa.Rand = ra.Uint32
	pb.Rand = rb.Uint32
	l := newLink(pa, pb)
	l.a.Open()
	l.b.Open()
	l.a.Up()
	l.b.Up()
	l.run(t, 300)
	if l.a.State() != Opened || l.b.State() != Opened {
		t.Fatalf("states = %v / %v", l.a.State(), l.b.State())
	}
	if pa.LoopbackSuspected == 0 && pb.LoopbackSuspected == 0 {
		t.Error("no loopback suspicion recorded")
	}
	if pa.Local.Magic == pb.Local.Magic {
		t.Error("magics still identical after negotiation")
	}
}

func TestTerminate(t *testing.T) {
	pa := NewLCPPolicy(1)
	pb := NewLCPPolicy(2)
	l := newLink(pa, pb)
	var aDown, bDown bool
	l.a.Hooks.Down = func() { aDown = true }
	l.b.Hooks.Down = func() { bDown = true }
	l.a.Open()
	l.b.Open()
	l.a.Up()
	l.b.Up()
	l.run(t, 100)

	l.a.Close()
	l.run(t, 100)
	if l.a.State() != Closed {
		t.Errorf("a state = %v, want Closed", l.a.State())
	}
	if l.b.State() != Stopping && l.b.State() != Stopped {
		t.Errorf("b state = %v, want Stopping/Stopped", l.b.State())
	}
	if !aDown || !bDown {
		t.Error("this-layer-down not signalled")
	}
	// b's stopping side times out to Stopped.
	l.b.Advance(1000)
	l.b.Advance(2000)
	if l.b.State() != Stopped {
		t.Errorf("b after timeouts = %v, want Stopped", l.b.State())
	}
}

func TestTimeoutRetransmission(t *testing.T) {
	var sent []*Packet
	p := NewLCPPolicy(1)
	a := NewAutomaton(func(pkt *Packet) { sent = append(sent, clonePacket(pkt)) }, p, Hooks{})
	a.Open()
	a.Up()
	if len(sent) != 1 || sent[0].Code != ConfigureRequest {
		t.Fatalf("sent = %+v", sent)
	}
	// No reply: timer fires, Configure-Request retransmitted.
	a.Advance(DefaultRestartPeriod)
	if len(sent) != 2 || sent[1].Code != ConfigureRequest {
		t.Fatalf("after timeout sent = %d packets", len(sent))
	}
	if a.Timeouts != 1 {
		t.Errorf("Timeouts = %d", a.Timeouts)
	}
}

func TestTimeoutGivesUpAfterMaxConfigure(t *testing.T) {
	var finished bool
	p := NewLCPPolicy(1)
	a := NewAutomaton(func(*Packet) {}, p, Hooks{Finished: func() { finished = true }})
	a.MaxConfigure = 3
	a.Open()
	a.Up()
	now := int64(0)
	for i := 0; i < 10 && a.State() == ReqSent; i++ {
		now += DefaultRestartPeriod
		a.Advance(now)
	}
	if a.State() != Stopped {
		t.Fatalf("state = %v, want Stopped", a.State())
	}
	if !finished {
		t.Error("this-layer-finished not signalled")
	}
	if a.TxPackets != 3 {
		t.Errorf("TxPackets = %d, want 3 (MaxConfigure)", a.TxPackets)
	}
}

func TestLossyLinkStillConverges(t *testing.T) {
	pa := NewLCPPolicy(1)
	pb := NewLCPPolicy(2)
	l := newLink(pa, pb)
	rng := rand.New(rand.NewSource(42))
	l.drop = func(string, *Packet) bool {
		return rng.Intn(3) == 0 // drop ~1/3 of packets
	}
	l.a.Open()
	l.b.Open()
	l.a.Up()
	l.b.Up()
	now := int64(0)
	for i := 0; i < 50 && (l.a.State() != Opened || l.b.State() != Opened); i++ {
		l.run(t, 100)
		now += DefaultRestartPeriod
		l.a.Advance(now)
		l.b.Advance(now)
	}
	l.run(t, 100)
	if l.a.State() != Opened || l.b.State() != Opened {
		t.Fatalf("states = %v / %v", l.a.State(), l.b.State())
	}
}

func TestEchoOnlyWhenOpened(t *testing.T) {
	var sent []*Packet
	p := NewLCPPolicy(1)
	a := NewAutomaton(func(pkt *Packet) { sent = append(sent, clonePacket(pkt)) }, p, Hooks{})
	a.Open()
	a.Up()
	sent = sent[:0]
	// Not opened: echo silently discarded.
	a.Receive(&Packet{Code: EchoRequest, ID: 9, Data: []byte{0, 0, 0, 0}})
	if len(sent) != 0 {
		t.Fatalf("echo answered while %v", a.State())
	}
	// Force open via handshake with a fake peer ack + request.
	a.Receive(&Packet{Code: ConfigureAck, ID: a.id, Data: MarshalOptions(nil, a.reqOpts)})
	a.Receive(&Packet{Code: ConfigureRequest, ID: 1})
	if a.State() != Opened {
		t.Fatalf("state = %v", a.State())
	}
	sent = sent[:0]
	a.Receive(&Packet{Code: EchoRequest, ID: 9, Data: []byte{1, 2, 3, 4}})
	if len(sent) != 1 || sent[0].Code != EchoReply || sent[0].ID != 9 {
		t.Fatalf("echo reply = %+v", sent)
	}
}

func TestUnknownCodeRejected(t *testing.T) {
	var sent []*Packet
	a := NewAutomaton(func(pkt *Packet) { sent = append(sent, clonePacket(pkt)) }, NewLCPPolicy(1), Hooks{})
	a.Open()
	a.Up()
	sent = sent[:0]
	a.Receive(&Packet{Code: Code(42), ID: 7, Data: []byte{1}})
	if len(sent) != 1 || sent[0].Code != CodeReject {
		t.Fatalf("sent = %+v", sent)
	}
	rej, err := ParsePacket(sent[0].Data)
	if err != nil || rej.Code != Code(42) || rej.ID != 7 {
		t.Fatalf("rejected copy = %+v, %v", rej, err)
	}
}

func TestCodeRejectOfNeededCodeIsFatal(t *testing.T) {
	a := NewAutomaton(func(*Packet) {}, NewLCPPolicy(1), Hooks{})
	a.Open()
	a.Up()
	bad := (&Packet{Code: ConfigureRequest, ID: 1}).Marshal(nil)
	a.Receive(&Packet{Code: CodeReject, ID: 1, Data: bad})
	if a.State() != Stopped {
		t.Fatalf("state = %v, want Stopped", a.State())
	}
}

func TestStaleAckIgnored(t *testing.T) {
	a := NewAutomaton(func(*Packet) {}, NewLCPPolicy(1), Hooks{})
	a.Open()
	a.Up()
	a.Receive(&Packet{Code: ConfigureAck, ID: a.id + 5})
	if a.State() != ReqSent {
		t.Errorf("state = %v, want Req-Sent", a.State())
	}
	if a.RxBadPackets != 1 {
		t.Errorf("RxBadPackets = %d", a.RxBadPackets)
	}
}

func TestAckWithWrongOptionsIgnored(t *testing.T) {
	a := NewAutomaton(func(*Packet) {}, NewLCPPolicy(1), Hooks{})
	a.Open()
	a.Up()
	a.Receive(&Packet{Code: ConfigureAck, ID: a.id, Data: MarshalOptions(nil, []Option{{Type: OptPFC}})})
	if a.State() != ReqSent {
		t.Errorf("state = %v, want Req-Sent", a.State())
	}
}

func TestDownAndRecovery(t *testing.T) {
	pa := NewLCPPolicy(1)
	pb := NewLCPPolicy(2)
	l := newLink(pa, pb)
	l.a.Open()
	l.b.Open()
	l.a.Up()
	l.b.Up()
	l.run(t, 100)
	if l.a.State() != Opened {
		t.Fatal("setup failed")
	}
	// Physical layer bounce.
	l.a.Down()
	l.b.Down()
	if l.a.State() != Starting || l.b.State() != Starting {
		t.Fatalf("after down: %v / %v", l.a.State(), l.b.State())
	}
	l.aq, l.bq = nil, nil
	l.a.Up()
	l.b.Up()
	l.run(t, 100)
	if l.a.State() != Opened || l.b.State() != Opened {
		t.Fatalf("after recovery: %v / %v", l.a.State(), l.b.State())
	}
}

func TestMaxFailureConvertsNakToReject(t *testing.T) {
	// A peer that insists on an MRU we keep naking must eventually see
	// a reject instead (convergence guarantee).
	p := NewLCPPolicy(1)
	var sent []*Packet
	a := NewAutomaton(func(pkt *Packet) { sent = append(sent, clonePacket(pkt)) }, p, Hooks{})
	a.MaxFailure = 2
	a.Open()
	a.Up()
	badReq := MarshalOptions(nil, []Option{u16opt(OptMRU, 1)}) // below MinMRU
	for i := byte(1); i <= 4; i++ {
		a.Receive(&Packet{Code: ConfigureRequest, ID: i, Data: badReq})
	}
	var naks, rejs int
	for _, pkt := range sent {
		switch pkt.Code {
		case ConfigureNak:
			naks++
		case ConfigureReject:
			rejs++
		}
	}
	if naks != 2 || rejs < 1 {
		t.Errorf("naks=%d rejs=%d, want 2 naks then rejects", naks, rejs)
	}
}

func TestStateString(t *testing.T) {
	if Opened.String() != "Opened" || State(99).String() != "State(99)" {
		t.Error("state names")
	}
}
