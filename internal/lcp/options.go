package lcp

import (
	"encoding/binary"

	"repro/internal/hdlc"
	"repro/internal/ppp"
)

// LCP configuration option types (RFC 1661 §6, RFC 1662 §7).
const (
	OptMRU         = 1
	OptACCM        = 2
	OptAuthProto   = 3
	OptQualityProt = 4
	OptMagic       = 5
	OptPFC         = 7
	OptACFC        = 8
)

// MinMRU is the smallest MRU this implementation will agree to operate
// with; smaller peer proposals are naked up to it.
const MinMRU = 128

// LinkParams is one direction's negotiated parameter set.
type LinkParams struct {
	MRU   int
	ACCM  hdlc.ACCM
	Magic uint32
	PFC   bool
	ACFC  bool
}

// DefaultLinkParams are the RFC defaults in force before negotiation.
func DefaultLinkParams() LinkParams {
	return LinkParams{MRU: ppp.DefaultMRU, ACCM: hdlc.ACCMAll}
}

// LCPPolicy is the standard LCP option Policy. Configure the Want*
// fields before opening; after the automaton reaches Opened, Local holds
// the parameters the peer granted us and Peer holds the parameters we
// granted the peer.
type LCPPolicy struct {
	// WantMRU requests a non-default MRU (0 = don't request).
	WantMRU int
	// WantACCM requests a transmit ACCM; meaningful on octet-
	// synchronous links (SONET) where it is negotiated down to 0.
	// RequestACCM gates it since the zero value is a real request.
	WantACCM    hdlc.ACCM
	RequestACCM bool
	// WantMagic requests magic-number loopback detection with this
	// non-zero magic.
	WantMagic uint32
	// WantPFC/WantACFC request header compression.
	WantPFC  bool
	WantACFC bool
	// AllowPFC/AllowACFC accept the peer requesting compression toward
	// us.
	AllowPFC  bool
	AllowACFC bool
	// RequireAuth, when non-zero, demands the peer authenticate with
	// this protocol (0xC023 PAP or 0xC223 CHAP/MD5) before the network
	// phase — the authenticator side of RFC 1661 §3.5.
	RequireAuth uint16
	// CanAuth lists the authentication protocols this node is able to
	// answer when the peer demands one; others are naked toward a
	// supported protocol or rejected.
	CanAuth map[uint16]bool

	// Local and Peer are the negotiated results (valid once Opened).
	Local LinkParams
	Peer  LinkParams

	// AuthDemanded records the authentication protocol the peer's
	// acknowledged Configure-Request requires of us (0 = none).
	AuthDemanded uint16
	// AuthGranted records that the peer acknowledged our RequireAuth
	// demand.
	AuthGranted bool

	// LoopbackSuspected counts magic-number collisions seen in peer
	// requests — the RFC 1661 looped-link telltale.
	LoopbackSuspected int

	// Rand, when set, supplies fresh magic numbers after a collision.
	// Without it a deterministic perturbation is used, which is correct
	// for a genuinely looped link (negotiation must not converge there)
	// but cannot break the tie between two distinct peers that chose
	// the same magic by accident.
	Rand func() uint32

	rejected map[byte]bool
}

func (p *LCPPolicy) newMagic(old uint32) uint32 {
	if p.Rand != nil {
		return p.Rand()
	}
	return old*0x9E3779B1 + 1
}

// NewLCPPolicy returns a policy with defaults suitable for PPP over
// SONET/SDH (RFC 1619): ACCM negotiated to zero, 1500 MRU.
func NewLCPPolicy(magic uint32) *LCPPolicy {
	return &LCPPolicy{
		RequestACCM: true,
		WantACCM:    hdlc.ACCMNone,
		WantMagic:   magic,
		Local:       DefaultLinkParams(),
		Peer:        DefaultLinkParams(),
	}
}

func u16opt(t byte, v uint16) Option {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	return Option{Type: t, Data: b[:]}
}

func u32opt(t byte, v uint32) Option {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return Option{Type: t, Data: b[:]}
}

// LocalOptions implements Policy.
func (p *LCPPolicy) LocalOptions() []Option {
	var opts []Option
	add := func(t byte, o Option) {
		if p.rejected[t] {
			return
		}
		opts = append(opts, o)
	}
	if p.WantMRU != 0 && p.WantMRU != ppp.DefaultMRU {
		add(OptMRU, u16opt(OptMRU, uint16(p.WantMRU)))
	}
	if p.RequestACCM {
		add(OptACCM, u32opt(OptACCM, uint32(p.WantACCM)))
	}
	if p.WantMagic != 0 {
		add(OptMagic, u32opt(OptMagic, p.WantMagic))
	}
	if p.RequireAuth != 0 {
		add(OptAuthProto, authOption(p.RequireAuth))
	}
	if p.WantPFC {
		add(OptPFC, Option{Type: OptPFC})
	}
	if p.WantACFC {
		add(OptACFC, Option{Type: OptACFC})
	}
	return opts
}

// CheckRequest implements Policy: vet the peer's proposed options.
func (p *LCPPolicy) CheckRequest(opts []Option) (naks, rejs []Option) {
	for _, o := range opts {
		switch o.Type {
		case OptMRU:
			if len(o.Data) != 2 {
				rejs = append(rejs, o)
				continue
			}
			if v := binary.BigEndian.Uint16(o.Data); v < MinMRU {
				naks = append(naks, u16opt(OptMRU, MinMRU))
			}
		case OptACCM:
			if len(o.Data) != 4 {
				rejs = append(rejs, o)
			}
			// Any map the peer wants us to honour on transmit is fine.
		case OptMagic:
			if len(o.Data) != 4 {
				rejs = append(rejs, o)
				continue
			}
			v := binary.BigEndian.Uint32(o.Data)
			if v != 0 && v == p.WantMagic {
				// Same magic both ways: looped link. Nak with a
				// perturbed value so the peer picks a new one.
				p.LoopbackSuspected++
				naks = append(naks, u32opt(OptMagic, p.newMagic(v)))
			}
		case OptPFC:
			if !p.AllowPFC {
				rejs = append(rejs, o)
			}
		case OptACFC:
			if !p.AllowACFC {
				rejs = append(rejs, o)
			}
		case OptAuthProto:
			proto, ok := parseAuthOption(o)
			if ok && p.CanAuth[proto] {
				break // acceptable demand
			}
			// Counter-propose a protocol we can answer; with none,
			// reject (the peer may then terminate, per RFC 1661).
			naked := false
			for _, cand := range []uint16{0xC223, 0xC023} {
				if p.CanAuth[cand] {
					naks = append(naks, authOption(cand))
					naked = true
					break
				}
			}
			if !naked {
				rejs = append(rejs, o)
			}
		default:
			// Authentication, quality monitoring and anything else we
			// do not implement: Configure-Reject (RFC 1661 §5.4).
			rejs = append(rejs, o)
		}
	}
	return naks, rejs
}

// ApplyPeer implements Policy: the peer's request was acked, so its
// options govern what the peer may send to us (and what we must accept).
func (p *LCPPolicy) ApplyPeer(opts []Option) {
	res := DefaultLinkParams()
	for _, o := range opts {
		switch o.Type {
		case OptMRU:
			res.MRU = int(binary.BigEndian.Uint16(o.Data))
		case OptACCM:
			res.ACCM = hdlc.ACCM(binary.BigEndian.Uint32(o.Data))
		case OptMagic:
			res.Magic = binary.BigEndian.Uint32(o.Data)
		case OptPFC:
			res.PFC = true
		case OptACFC:
			res.ACFC = true
		case OptAuthProto:
			if proto, ok := parseAuthOption(o); ok {
				p.AuthDemanded = proto
			}
		}
	}
	p.Peer = res
}

// PeerAcked implements Policy: our request was acked, so these options
// govern our transmit direction.
func (p *LCPPolicy) PeerAcked(opts []Option) {
	res := DefaultLinkParams()
	for _, o := range opts {
		switch o.Type {
		case OptMRU:
			res.MRU = int(binary.BigEndian.Uint16(o.Data))
		case OptACCM:
			res.ACCM = hdlc.ACCM(binary.BigEndian.Uint32(o.Data))
		case OptMagic:
			res.Magic = binary.BigEndian.Uint32(o.Data)
		case OptPFC:
			res.PFC = true
		case OptACFC:
			res.ACFC = true
		case OptAuthProto:
			p.AuthGranted = true
		}
	}
	p.Local = res
}

// HandleNak implements Policy: adopt the peer's counter-proposals.
func (p *LCPPolicy) HandleNak(opts []Option) {
	for _, o := range opts {
		switch o.Type {
		case OptMRU:
			if len(o.Data) == 2 {
				p.WantMRU = int(binary.BigEndian.Uint16(o.Data))
			}
		case OptACCM:
			if len(o.Data) == 4 {
				// Take the union: escape everything either side wants.
				p.WantACCM |= hdlc.ACCM(binary.BigEndian.Uint32(o.Data))
			}
		case OptMagic:
			if len(o.Data) == 4 {
				// Prefer a locally random magic when available; the
				// peer's suggestion is only a tie-break hint.
				p.WantMagic = p.newMagic(binary.BigEndian.Uint32(o.Data))
			}
		case OptPFC:
			p.WantPFC = false
		case OptACFC:
			p.WantACFC = false
		case OptAuthProto:
			// Adopt the peer's counter-proposal when we can answer it.
			if proto, ok := parseAuthOption(o); ok && proto != p.RequireAuth {
				p.RequireAuth = proto
			}
		}
	}
}

// HandleReject implements Policy: stop requesting rejected options.
func (p *LCPPolicy) HandleReject(opts []Option) {
	if p.rejected == nil {
		p.rejected = make(map[byte]bool)
	}
	for _, o := range opts {
		p.rejected[o.Type] = true
	}
}

// TxConfig is the ppp.Config this node must use when transmitting.
// An option in a Configure-Request describes what its sender can receive
// (RFC 1661 §6), so our transmit direction is governed by the options the
// peer requested and we acknowledged.
func (p *LCPPolicy) TxConfig() ppp.Config {
	return ppp.Config{
		PFC:  p.Peer.PFC,
		ACFC: p.Peer.ACFC,
		MRU:  p.Peer.MRU,
		ACCM: p.Peer.ACCM,
	}
}

// RxConfig is the ppp.Config this node must use when receiving: governed
// by the options we requested and the peer acknowledged.
func (p *LCPPolicy) RxConfig() ppp.Config {
	return ppp.Config{
		PFC:  p.Local.PFC,
		ACFC: p.Local.ACFC,
		MRU:  p.Local.MRU,
		ACCM: p.Local.ACCM,
	}
}

// authOption encodes the authentication-protocol option: the protocol
// number, plus the MD5 algorithm octet for CHAP (RFC 1994 §3).
func authOption(proto uint16) Option {
	data := []byte{byte(proto >> 8), byte(proto)}
	if proto == 0xC223 {
		data = append(data, 5) // MD5
	}
	return Option{Type: OptAuthProto, Data: data}
}

// parseAuthOption decodes the option, accepting only CHAP/MD5 and PAP.
func parseAuthOption(o Option) (uint16, bool) {
	if len(o.Data) < 2 {
		return 0, false
	}
	proto := uint16(o.Data[0])<<8 | uint16(o.Data[1])
	switch proto {
	case 0xC023:
		return proto, len(o.Data) == 2
	case 0xC223:
		return proto, len(o.Data) == 3 && o.Data[2] == 5
	}
	return 0, false
}
