package trend

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnap(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

const snapA = `{
  "date": "2026-08-01", "go": "go1.24.0",
  "benchmarks": [
    {"name": "BenchmarkSystem/8bit", "iterations": 3, "ns_per_op": 1000, "allocs_per_op": 10},
    {"name": "BenchmarkLinkEncodeSteady", "iterations": 3, "ns_per_op": 17000, "MB_per_s": 700.0},
    {"name": "BenchmarkOldOnly", "iterations": 3, "ns_per_op": 500}
  ]
}`

const snapB = `{
  "date": "2026-08-05", "go": "go1.24.0",
  "benchmarks": [
    {"name": "BenchmarkSystem/8bit", "iterations": 3, "ns_per_op": 1500, "allocs_per_op": 40},
    {"name": "BenchmarkLinkEncodeSteady", "iterations": 3, "ns_per_op": 17100, "MB_per_s": 698.0},
    {"name": "BenchmarkNewOnly", "iterations": 3, "ns_per_op": 250}
  ]
}`

func TestLoadSortsAndParses(t *testing.T) {
	dir := t.TempDir()
	// Written out of order; filenames must decide chronology.
	writeSnap(t, dir, "BENCH_20260805.json", snapB)
	writeSnap(t, dir, "BENCH_20260801.json", snapA)
	snaps, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("loaded %d snapshots, want 2", len(snaps))
	}
	if snaps[0].File != "BENCH_20260801.json" || snaps[1].File != "BENCH_20260805.json" {
		t.Fatalf("snapshot order %s, %s — not chronological", snaps[0].File, snaps[1].File)
	}
	b := snaps[0].Bench("BenchmarkSystem/8bit")
	if b == nil || b.NsPerOp != 1000 || b.Metrics["allocs_per_op"] != 10 {
		t.Fatalf("parsed bench = %+v, want ns 1000 / allocs 10", b)
	}
}

func TestLoadBadJSONNamesFile(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "BENCH_20260801.json", "{not json")
	_, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "BENCH_20260801.json") {
		t.Fatalf("err = %v, want named file", err)
	}
}

// TestRegressionsNameBenchAndSurviveChurn is the satellite guarantee:
// benchmarks appearing/disappearing between snapshots are annotations,
// not crashes, and a regression carries the concrete benchmark name.
func TestRegressionsNameBenchAndSurviveChurn(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "BENCH_20260801.json", snapA)
	writeSnap(t, dir, "BENCH_20260805.json", snapB)
	snaps, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(snaps, 10)
	if len(r.Regressions) != 1 {
		t.Fatalf("regressions = %+v, want exactly BenchmarkSystem/8bit", r.Regressions)
	}
	reg := r.Regressions[0]
	if reg.Name != "BenchmarkSystem/8bit" {
		t.Errorf("regression name = %q", reg.Name)
	}
	if reg.DeltaPct < 49 || reg.DeltaPct > 51 {
		t.Errorf("delta = %.1f%%, want ~50%%", reg.DeltaPct)
	}
	// Attribution: allocs_per_op quadrupled alongside the slowdown.
	if len(reg.MovedMetrics) == 0 || !strings.HasPrefix(reg.MovedMetrics[0], "allocs_per_op") {
		t.Errorf("moved metrics = %v, want allocs_per_op first", reg.MovedMetrics)
	}
	if len(r.Appeared) != 1 || r.Appeared[0] != "BenchmarkNewOnly" {
		t.Errorf("appeared = %v", r.Appeared)
	}
	if len(r.Disappeared) != 1 || r.Disappeared[0] != "BenchmarkOldOnly" {
		t.Errorf("disappeared = %v", r.Disappeared)
	}
	// Encode moved +0.6% — inside tolerance, not a regression.
	for _, g := range r.Regressions {
		if g.Name == "BenchmarkLinkEncodeSteady" {
			t.Error("sub-tolerance drift flagged as regression")
		}
	}
}

// TestOriginAttribution: a benchmark that regressed two snapshots ago
// and stayed there is attributed to the snapshot where the level first
// appeared, not the newest pair.
func TestOriginAttribution(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "BENCH_1.json", `{"benchmarks":[{"name":"X","ns_per_op":1000}]}`)
	writeSnap(t, dir, "BENCH_2.json", `{"benchmarks":[{"name":"X","ns_per_op":1480}]}`)
	writeSnap(t, dir, "BENCH_3.json", `{"benchmarks":[{"name":"X","ns_per_op":1500}]}`)
	snaps, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance 1.3%: the 2→3 delta of 1.35% trips the pair gate, but
	// the series left its 1000ns best back at BENCH_2 — attribution
	// points there.
	r := Analyze(snaps, 1.3)
	if len(r.Regressions) != 1 {
		t.Fatalf("regressions = %+v", r.Regressions)
	}
	if got := r.Regressions[0].Origin; got != "BENCH_2.json" {
		t.Errorf("origin = %s, want BENCH_2.json (where the level first appeared)", got)
	}
}

// TestLargeFavourableDeltaIsImprovement is the satellite guarantee for
// the fused RX kernel landing: a benchmark speeding up far beyond
// tolerance (decode dropping ~60% ns/op with MB_per_s rising) must be
// reported as an improvement with moved-metric attribution — and must
// never appear among the regressions, no matter how large the delta.
func TestLargeFavourableDeltaIsImprovement(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "BENCH_1.json", `{"benchmarks":[
	  {"name":"BenchmarkLinkDecodeSteady","ns_per_op":30342,"MB_per_s":375.0,"allocs_per_op":0}]}`)
	writeSnap(t, dir, "BENCH_2.json", `{"benchmarks":[
	  {"name":"BenchmarkLinkDecodeSteady","ns_per_op":11000,"MB_per_s":1090.0,"allocs_per_op":0}]}`)
	snaps, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(snaps, 10)
	if len(r.Regressions) != 0 {
		t.Fatalf("favourable delta flagged as regression: %+v", r.Regressions)
	}
	if len(r.Improvements) != 1 {
		t.Fatalf("improvements = %+v, want BenchmarkLinkDecodeSteady", r.Improvements)
	}
	imp := r.Improvements[0]
	if imp.Name != "BenchmarkLinkDecodeSteady" || imp.DeltaPct > -60 {
		t.Errorf("improvement = %+v, want ~-64%%", imp)
	}
	if len(imp.MovedMetrics) == 0 || !strings.HasPrefix(imp.MovedMetrics[0], "MB_per_s") {
		t.Errorf("moved metrics = %v, want MB_per_s attributed", imp.MovedMetrics)
	}
	var txt strings.Builder
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "improved: BenchmarkLinkDecodeSteady") ||
		!strings.Contains(txt.String(), "trend: OK") {
		t.Errorf("text report should note the improvement and still pass:\n%s", txt.String())
	}
	var md strings.Builder
	if err := r.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "## Improvements") {
		t.Errorf("markdown report missing improvements section:\n%s", md.String())
	}
}

// TestRenamedBenchmarkIsChurnNotRegression: a benchmark renamed (or
// split) between snapshots shows up as one disappearance plus one (or
// more) appearances — never as a regression or improvement of either
// name, even when the new variant's ns/op differs wildly.
func TestRenamedBenchmarkIsChurnNotRegression(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "BENCH_1.json", `{"benchmarks":[
	  {"name":"BenchmarkDecode","ns_per_op":30000}]}`)
	writeSnap(t, dir, "BENCH_2.json", `{"benchmarks":[
	  {"name":"BenchmarkLinkDecodeSteady","ns_per_op":11000},
	  {"name":"BenchmarkTokenizerFeed/escape=0%","ns_per_op":9000}]}`)
	snaps, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(snaps, 10)
	if len(r.Regressions) != 0 || len(r.Improvements) != 0 {
		t.Fatalf("rename treated as delta: regressions %+v improvements %+v",
			r.Regressions, r.Improvements)
	}
	if len(r.Disappeared) != 1 || r.Disappeared[0] != "BenchmarkDecode" {
		t.Errorf("disappeared = %v", r.Disappeared)
	}
	if len(r.Appeared) != 2 {
		t.Errorf("appeared = %v, want both new names", r.Appeared)
	}
}

func TestFewerThanTwoSnapshotsIsNoop(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "BENCH_only.json", snapA)
	snaps, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(snaps, 10)
	if r.Regressions != nil {
		t.Fatalf("regressions on single snapshot: %+v", r.Regressions)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "need 2") {
		t.Errorf("single-snapshot report = %q", b.String())
	}
}

func TestWriteTextAndMarkdown(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "BENCH_20260801.json", snapA)
	writeSnap(t, dir, "BENCH_20260805.json", snapB)
	snaps, _ := Load(dir)
	r := Analyze(snaps, 10)

	var txt strings.Builder
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"FAIL BenchmarkSystem/8bit",
		"new      BenchmarkNewOnly",
		"gone     BenchmarkOldOnly",
		"regressed: BenchmarkSystem/8bit",
		"allocs_per_op +300.0%",
	} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}

	var md strings.Builder
	if err := r.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Benchmark trend",
		"| `BenchmarkSystem/8bit` | 1000 | 1500 | +50.0% ⚠ |",
		"**BenchmarkSystem/8bit**",
		"new in newest: `BenchmarkNewOnly`",
	} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown report missing %q:\n%s", want, md.String())
		}
	}
}

// TestRealSnapshotParses reads the repo's committed snapshot so the
// loader can never drift from what bench.sh actually writes.
func TestRealSnapshotParses(t *testing.T) {
	s, err := parseFile("../../BENCH_20260805.json")
	if err != nil {
		t.Skipf("committed snapshot unavailable: %v", err)
	}
	if len(s.Benches) == 0 {
		t.Fatal("committed snapshot parsed to zero benchmarks")
	}
	b := s.Bench("BenchmarkEngineAggregate/links=8/shards=8")
	if b == nil || b.NsPerOp <= 0 {
		t.Fatalf("shard=8 bench = %+v", b)
	}
	if b.Metrics["Gbps_line"] <= 0 {
		t.Error("custom Gbps_line metric not parsed")
	}
}
