// Package trend is the multi-snapshot benchmark analytics engine
// behind scripts/bench-trend and p5stat -bench. It loads every
// BENCH_<date>.json written by scripts/bench.sh, builds per-benchmark
// time series across the snapshots, flags regressions between the two
// newest snapshots, attributes each regression (which snapshot it
// first appeared in, which custom metrics moved with it), and renders
// text and markdown reports.
//
// Benchmarks appearing or disappearing between snapshots are normal —
// every PR grows the bench matrix — so they are annotated, never an
// error; only a benchmark present in both of the newest snapshots can
// regress. Regressions carry the benchmark's name so a CI gate can
// fail with a concrete culprit, not just a threshold message.
package trend

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Bench is one benchmark variant in one snapshot.
type Bench struct {
	// Name is the full sub-benchmark path, GOMAXPROCS suffix stripped
	// (bench.sh does the stripping).
	Name string
	// NsPerOp is the headline cost; 0 when the snapshot lacks it.
	NsPerOp float64
	// Metrics holds every numeric field (ns_per_op, MB_per_s,
	// allocs_per_op, frames_per_s, custom units...).
	Metrics map[string]float64
}

// Snapshot is one parsed BENCH_*.json file.
type Snapshot struct {
	// File is the base filename (BENCH_20260805.json) — files sort
	// chronologically by name.
	File string
	// Date and Go echo the snapshot header.
	Date, Go string
	// Benches lists the variants, in file order.
	Benches []Bench

	byName map[string]*Bench
}

// Bench returns the named benchmark in this snapshot (nil if absent).
func (s *Snapshot) Bench(name string) *Bench { return s.byName[name] }

// Load reads every BENCH_*.json in dir, sorted chronologically (by
// filename). A file that fails to parse is an error naming the file.
func Load(dir string) ([]Snapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	snaps := make([]Snapshot, 0, len(paths))
	for _, p := range paths {
		s, err := parseFile(p)
		if err != nil {
			return nil, fmt.Errorf("trend: %s: %w", filepath.Base(p), err)
		}
		snaps = append(snaps, s)
	}
	return snaps, nil
}

func parseFile(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var raw struct {
		Date       string           `json:"date"`
		Go         string           `json:"go"`
		Benchmarks []map[string]any `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return Snapshot{}, err
	}
	s := Snapshot{
		File:   filepath.Base(path),
		Date:   raw.Date,
		Go:     raw.Go,
		byName: make(map[string]*Bench, len(raw.Benchmarks)),
	}
	for _, b := range raw.Benchmarks {
		name, _ := b["name"].(string)
		if name == "" {
			continue
		}
		bench := Bench{Name: name, Metrics: make(map[string]float64, len(b))}
		for k, v := range b {
			if f, ok := v.(float64); ok {
				bench.Metrics[k] = f
			}
		}
		bench.NsPerOp = bench.Metrics["ns_per_op"]
		s.Benches = append(s.Benches, bench)
	}
	for i := range s.Benches {
		s.byName[s.Benches[i].Name] = &s.Benches[i]
	}
	return s, nil
}

// Regression is one benchmark whose ns/op worsened beyond tolerance
// between the two newest snapshots.
type Regression struct {
	// Name is the regressed benchmark — the gate's exit message leads
	// with it.
	Name string
	// OldNs/NewNs are ns/op in the older and newer snapshot.
	OldNs, NewNs float64
	// DeltaPct is the relative change in percent (positive = slower).
	DeltaPct float64
	// Origin is the snapshot file where the series first rose more
	// than tolerance above its best (minimum) ns/op — the attribution:
	// an origin predating the newest snapshot means the cost crept in
	// earlier and only crossed the pair threshold now.
	Origin string
	// MovedMetrics lists non-ns metrics of this benchmark that also
	// changed beyond tolerance between the newest pair ("allocs_per_op
	// +214.0%"), ranked by magnitude — the usual suspects.
	MovedMetrics []string
}

// Report is the analysis over a snapshot set.
type Report struct {
	Snapshots []Snapshot
	// Names is the sorted union of benchmark names across snapshots.
	Names []string
	// TolPct is the regression tolerance the report was built with.
	TolPct float64
	// Regressions lists newest-pair regressions beyond TolPct, worst
	// first. Nil with fewer than two snapshots.
	Regressions []Regression
	// Improvements lists newest-pair ns/op drops beyond TolPct, biggest
	// first — the favourable twin of Regressions, so a large speed-up
	// (with its moved metrics, e.g. MB_per_s) is attributed instead of
	// passing silently, and so renames/splits of a fast benchmark are
	// never mistaken for regressions of the survivors.
	Improvements []Regression
	// Appeared/Disappeared name benchmarks present in only one of the
	// two newest snapshots.
	Appeared, Disappeared []string
}

// Analyze builds the report. tolPct is the regression tolerance in
// percent (ns/op growing more than this between the two newest
// snapshots is a regression).
func Analyze(snaps []Snapshot, tolPct float64) *Report {
	r := &Report{Snapshots: snaps, TolPct: tolPct}
	seen := map[string]bool{}
	for i := range snaps {
		for j := range snaps[i].Benches {
			if n := snaps[i].Benches[j].Name; !seen[n] {
				seen[n] = true
				r.Names = append(r.Names, n)
			}
		}
	}
	sort.Strings(r.Names)
	if len(snaps) < 2 {
		return r
	}
	old, new := &snaps[len(snaps)-2], &snaps[len(snaps)-1]
	for _, name := range r.Names {
		ob, nb := old.Bench(name), new.Bench(name)
		switch {
		case ob == nil && nb != nil:
			r.Appeared = append(r.Appeared, name)
		case ob != nil && nb == nil:
			r.Disappeared = append(r.Disappeared, name)
		case ob != nil && nb != nil && ob.NsPerOp > 0:
			delta := 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
			switch {
			case delta > tolPct:
				r.Regressions = append(r.Regressions, Regression{
					Name:         name,
					OldNs:        ob.NsPerOp,
					NewNs:        nb.NsPerOp,
					DeltaPct:     delta,
					Origin:       r.origin(name),
					MovedMetrics: movedMetrics(ob, nb, tolPct),
				})
			case delta < -tolPct:
				r.Improvements = append(r.Improvements, Regression{
					Name:         name,
					OldNs:        ob.NsPerOp,
					NewNs:        nb.NsPerOp,
					DeltaPct:     delta,
					Origin:       new.File,
					MovedMetrics: movedMetrics(ob, nb, tolPct),
				})
			}
		}
	}
	sort.Slice(r.Regressions, func(i, j int) bool {
		return r.Regressions[i].DeltaPct > r.Regressions[j].DeltaPct
	})
	sort.Slice(r.Improvements, func(i, j int) bool {
		return r.Improvements[i].DeltaPct < r.Improvements[j].DeltaPct
	})
	return r
}

// origin finds the best (minimum) ns/op across the series and returns
// the first snapshot whose ns/op sits more than tolerance above it.
func (r *Report) origin(name string) string {
	best := 0.0
	for i := range r.Snapshots {
		if b := r.Snapshots[i].Bench(name); b != nil && b.NsPerOp > 0 {
			if best == 0 || b.NsPerOp < best {
				best = b.NsPerOp
			}
		}
	}
	origin := r.Snapshots[len(r.Snapshots)-1].File
	for i := range r.Snapshots {
		b := r.Snapshots[i].Bench(name)
		if b == nil || b.NsPerOp <= 0 {
			continue
		}
		if 100*(b.NsPerOp-best)/best > r.TolPct {
			origin = r.Snapshots[i].File
			break
		}
	}
	return origin
}

func movedMetrics(ob, nb *Bench, tolPct float64) []string {
	type move struct {
		name  string
		delta float64
	}
	var moves []move
	for k, nv := range nb.Metrics {
		if k == "ns_per_op" || k == "iterations" {
			continue
		}
		ov, ok := ob.Metrics[k]
		if !ok || ov == 0 {
			continue
		}
		delta := 100 * (nv - ov) / ov
		if delta > tolPct || delta < -tolPct {
			moves = append(moves, move{k, delta})
		}
	}
	sort.Slice(moves, func(i, j int) bool {
		return abs(moves[i].delta) > abs(moves[j].delta)
	})
	out := make([]string, len(moves))
	for i, m := range moves {
		out[i] = fmt.Sprintf("%s %+.1f%%", m.name, m.delta)
	}
	return out
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// WriteText renders the per-benchmark series table plus the regression
// findings, bench-trend style.
func (r *Report) WriteText(w io.Writer) error {
	if len(r.Snapshots) < 2 {
		_, err := fmt.Fprintf(w, "trend: %d snapshot(s), need 2 — nothing to diff\n", len(r.Snapshots))
		return err
	}
	old, new := r.Snapshots[len(r.Snapshots)-2], r.Snapshots[len(r.Snapshots)-1]
	fmt.Fprintf(w, "trend: %d snapshots, newest pair %s -> %s (tolerance %g%%)\n",
		len(r.Snapshots), old.File, new.File, r.TolPct)
	for _, name := range r.Names {
		ob, nb := old.Bench(name), new.Bench(name)
		switch {
		case ob == nil && nb == nil:
			continue
		case ob == nil:
			fmt.Fprintf(w, "  new      %-62s %14.0f ns/op\n", name, nb.NsPerOp)
		case nb == nil:
			fmt.Fprintf(w, "  gone     %-62s %14.0f ns/op\n", name, ob.NsPerOp)
		default:
			delta := 0.0
			if ob.NsPerOp > 0 {
				delta = 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
			}
			mark := "ok  "
			if delta > r.TolPct {
				mark = "FAIL"
			}
			fmt.Fprintf(w, "  %s %-62s %12.0f -> %12.0f ns/op (%+.1f%%) %s\n",
				mark, name, ob.NsPerOp, nb.NsPerOp, delta, sparkline(r.series(name)))
		}
	}
	for _, reg := range r.Regressions {
		fmt.Fprintf(w, "regressed: %s %+.1f%% (%.0f -> %.0f ns/op), since %s",
			reg.Name, reg.DeltaPct, reg.OldNs, reg.NewNs, reg.Origin)
		if len(reg.MovedMetrics) > 0 {
			fmt.Fprintf(w, "; moved: %s", strings.Join(reg.MovedMetrics, ", "))
		}
		fmt.Fprintln(w)
	}
	for _, imp := range r.Improvements {
		fmt.Fprintf(w, "improved: %s %+.1f%% (%.0f -> %.0f ns/op)",
			imp.Name, imp.DeltaPct, imp.OldNs, imp.NewNs)
		if len(imp.MovedMetrics) > 0 {
			fmt.Fprintf(w, "; moved: %s", strings.Join(imp.MovedMetrics, ", "))
		}
		fmt.Fprintln(w)
	}
	if len(r.Regressions) == 0 {
		fmt.Fprintln(w, "trend: OK")
	}
	return nil
}

// series returns the ns/op trajectory of one benchmark across every
// snapshot (0 where absent).
func (r *Report) series(name string) []float64 {
	out := make([]float64, len(r.Snapshots))
	for i := range r.Snapshots {
		if b := r.Snapshots[i].Bench(name); b != nil {
			out[i] = b.NsPerOp
		}
	}
	return out
}

// sparkline renders a tiny unicode trajectory of the series, absent
// snapshots as '·'. With one usable point it returns "".
var sparkChars = []rune("▁▂▃▄▅▆▇█")

func sparkline(vals []float64) string {
	min, max := 0.0, 0.0
	n := 0
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		if n == 0 || v < min {
			min = v
		}
		if n == 0 || v > max {
			max = v
		}
		n++
	}
	if n < 2 {
		return ""
	}
	var b strings.Builder
	for _, v := range vals {
		if v <= 0 {
			b.WriteRune('·')
			continue
		}
		i := 0
		if max > min {
			i = int((v - min) / (max - min) * float64(len(sparkChars)-1))
		}
		b.WriteRune(sparkChars[i])
	}
	return b.String()
}

// WriteMarkdown renders the trend as a markdown report: snapshot
// header, a per-benchmark table with the full series, and regression
// attributions.
func (r *Report) WriteMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "# Benchmark trend\n\n")
	if len(r.Snapshots) == 0 {
		_, err := fmt.Fprintln(w, "No BENCH_*.json snapshots found.")
		return err
	}
	fmt.Fprintf(w, "%d snapshot(s); tolerance %g%%.\n\n", len(r.Snapshots), r.TolPct)
	fmt.Fprint(w, "| benchmark |")
	for _, s := range r.Snapshots {
		fmt.Fprintf(w, " %s |", strings.TrimSuffix(strings.TrimPrefix(s.File, "BENCH_"), ".json"))
	}
	fmt.Fprint(w, " Δ newest |\n|---|")
	for range r.Snapshots {
		fmt.Fprint(w, "---:|")
	}
	fmt.Fprint(w, "---:|\n")
	for _, name := range r.Names {
		fmt.Fprintf(w, "| `%s` |", name)
		series := r.series(name)
		for _, v := range series {
			if v <= 0 {
				fmt.Fprint(w, " — |")
			} else {
				fmt.Fprintf(w, " %.0f |", v)
			}
		}
		last, prev := 0.0, 0.0
		if n := len(series); n >= 1 {
			last = series[n-1]
		}
		if n := len(series); n >= 2 {
			prev = series[n-2]
		}
		if prev > 0 && last > 0 {
			delta := 100 * (last - prev) / prev
			mark := ""
			if delta > r.TolPct {
				mark = " ⚠"
			}
			fmt.Fprintf(w, " %+.1f%%%s |\n", delta, mark)
		} else {
			fmt.Fprint(w, " — |\n")
		}
	}
	fmt.Fprintln(w)
	if len(r.Regressions) > 0 {
		fmt.Fprintf(w, "## Regressions (> %g%%)\n\n", r.TolPct)
		for _, reg := range r.Regressions {
			fmt.Fprintf(w, "- **%s**: %+.1f%% (%.0f → %.0f ns/op), first at this level in %s",
				reg.Name, reg.DeltaPct, reg.OldNs, reg.NewNs, reg.Origin)
			if len(reg.MovedMetrics) > 0 {
				fmt.Fprintf(w, "; moved metrics: %s", strings.Join(reg.MovedMetrics, ", "))
			}
			fmt.Fprintln(w)
		}
	} else if len(r.Snapshots) >= 2 {
		fmt.Fprintln(w, "No regressions between the two newest snapshots.")
	}
	if len(r.Improvements) > 0 {
		fmt.Fprintf(w, "\n## Improvements (> %g%% faster)\n\n", r.TolPct)
		for _, imp := range r.Improvements {
			fmt.Fprintf(w, "- **%s**: %+.1f%% (%.0f → %.0f ns/op)",
				imp.Name, imp.DeltaPct, imp.OldNs, imp.NewNs)
			if len(imp.MovedMetrics) > 0 {
				fmt.Fprintf(w, "; moved metrics: %s", strings.Join(imp.MovedMetrics, ", "))
			}
			fmt.Fprintln(w)
		}
	}
	if len(r.Appeared)+len(r.Disappeared) > 0 {
		fmt.Fprintln(w)
		for _, n := range r.Appeared {
			fmt.Fprintf(w, "- new in newest: `%s`\n", n)
		}
		for _, n := range r.Disappeared {
			fmt.Fprintf(w, "- gone in newest: `%s`\n", n)
		}
	}
	return nil
}
