package topo

import (
	"fmt"

	"repro/internal/aps"
)

// RingAPS is the per-node BLSR ring switch state machine, the ring
// generalisation of the linear GR-253 controller in internal/aps. The
// K1/K2 bytes are reinterpreted per GR-1230: the K1 upper nibble is the
// request code (the same codes as linear APS), the K1 lower nibble the
// *destination node ID*, the K2 upper nibble the *source node ID*, K2
// bit 3 the long/short path indicator, and the K2 low bits the bridge
// status. A node detecting a dead incoming span wraps immediately
// (working traffic bridged onto the opposite rotation's protection
// slots) and signals the far end of the failed span on both the short
// path (the dead fibre, best effort) and the long path around the
// ring; intermediate nodes relay long-path requests. Squelching: a
// wrap node inserts AIS for any circuit whose endpoints are no longer
// connected by surviving spans, so a ring split by two failures can
// never misconnect traffic (GR-1230's squelch tables, computed from
// the learned failed-span map).
type RingAPS struct {
	Node int // this node's ring ID (0..15)
	N    int // ring size
	// WTR is the wait-to-restore: how long a locally-detected failure
	// must stay clear before the wrap is released (revertive).
	WTR int64
	// KTTL is the sustain window in ticks for far-end and relayed K
	// state: a request stops holding state this long after its source
	// stops sending it.
	KTTL int64

	wrapped  [2]bool  // by outgoing rotation: that span is declared dead
	localSF  [2]bool  // by incoming rotation: local defect (held through WTR)
	wtrUntil [2]int64 // by incoming rotation: WTR expiry, 0 when idle
	farUntil [2]int64 // by wrapped rotation: far-end request sustain deadline
	relay    [2]relayState
	failed   map[int]int64 // east-span index -> known-failed until tick
	now      int64         // last Advance tick

	Wraps  uint64
	OnWrap func(now int64, rot Rotation, on bool)
}

type relayState struct {
	k1, k2 byte
	until  int64
}

// K2 path/status encoding.
const (
	k2LongPath = 0x08 // bit 3: request travelled the long path
	k2BridgedSwitched = 0x02
)

// NewRingAPS returns a machine for node id on a ring of n nodes.
func NewRingAPS(id, n int, wtr int64) *RingAPS {
	return &RingAPS{Node: id, N: n, WTR: wtr, KTTL: 32, failed: make(map[int]int64)}
}

// Wrapped reports whether the node's outgoing span on rot is declared
// dead, i.e. its working traffic is bridged onto the opposite
// rotation's protection slots.
func (ra *RingAPS) Wrapped(rot Rotation) bool { return ra.wrapped[rot] }

// farNode returns the far end of the incoming span on rot.
func (ra *RingAPS) farNode(rot Rotation) int {
	if rot == East {
		return (ra.Node - 1 + ra.N) % ra.N
	}
	return (ra.Node + 1) % ra.N
}

// nextNode returns the node the outgoing span on rot heads to.
func (ra *RingAPS) nextNode(rot Rotation) int {
	if rot == East {
		return (ra.Node + 1) % ra.N
	}
	return (ra.Node - 1 + ra.N) % ra.N
}

// inSpan returns the east-span index of the fibre pair feeding the
// incoming rotation.
func (ra *RingAPS) inSpan(rot Rotation) int {
	if rot == East {
		return (ra.Node - 1 + ra.N) % ra.N
	}
	return ra.Node
}

// spanBetween returns the east-span index of the fibre pair joining a
// and b, or -1 when they are not adjacent.
func (ra *RingAPS) spanBetween(a, b int) int {
	switch {
	case (a+1)%ra.N == b:
		return a
	case (b+1)%ra.N == a:
		return b
	}
	return -1
}

func (ra *RingAPS) markFailed(span int, now int64) {
	if span >= 0 {
		ra.failed[span] = now + ra.KTTL
	}
}

func (ra *RingAPS) clearFailed(span int) {
	delete(ra.failed, span)
}

// FailedSpans returns the east-span indexes currently known failed.
func (ra *RingAPS) FailedSpans(now int64) []int {
	var out []int
	for sp, until := range ra.failed {
		if until > now {
			out = append(out, sp)
		}
	}
	return out
}

// Reachable reports whether nodes a and b are still connected by
// surviving spans (either way around the ring). Wrap-time squelching
// keys on this: an unreachable endpoint means the circuit must carry
// AIS, never somebody else's wrapped traffic.
func (ra *RingAPS) Reachable(a, b int, now int64) bool {
	bad := func(span int) bool {
		until, ok := ra.failed[span]
		return ok && until > now
	}
	for i, steps := a, 0; steps < ra.N; steps++ { // east walk
		if i == b {
			return true
		}
		if bad(i) {
			break
		}
		i = (i + 1) % ra.N
	}
	for i, steps := a, 0; steps < ra.N; steps++ { // west walk
		if i == b {
			return true
		}
		if bad((i - 1 + ra.N) % ra.N) {
			break
		}
		i = (i - 1 + ra.N) % ra.N
	}
	return false
}

// setWrap flips a wrap state.
func (ra *RingAPS) setWrap(rot Rotation, on bool, now int64) {
	if ra.wrapped[rot] == on {
		return
	}
	ra.wrapped[rot] = on
	if on {
		ra.Wraps++
	}
	if ra.OnWrap != nil {
		ra.OnWrap(now, rot, on)
	}
}

// ReceiveK processes one K1/K2 pair observed on the incoming span of a
// rotation. Call every tick with the deframer's current accepted pair
// (K bytes are a continuous signal; absence lets held state age out).
func (ra *RingAPS) ReceiveK(rot Rotation, k1, k2 byte, now int64) {
	req, dest := aps.ParseK1(k1)
	src := int(k2 >> 4)
	sustains := req == aps.ReqSignalFail || req == aps.ReqSignalDegrade ||
		req == aps.ReqForcedSwitch || req == aps.ReqLockout || req == aps.ReqWaitToRestore
	if dest != ra.Node {
		// A long-path request in transit: relay it on the same rotation
		// and learn the failed span it reports.
		ra.relay[rot] = relayState{k1: k1, k2: k2, until: now + ra.KTTL}
		if sp := ra.spanBetween(src, dest); sp >= 0 {
			if sustains {
				ra.markFailed(sp, now)
			} else if req == aps.ReqNoRequest {
				ra.clearFailed(sp)
			}
		}
		return
	}
	// Addressed to us: only requests from an adjacent node matter — the
	// far end of one of our own spans reporting it dead or recovered.
	sp := ra.spanBetween(src, ra.Node)
	if sp < 0 {
		return
	}
	var wr Rotation // rotation of our outgoing span on the failed fibre
	if src == (ra.Node+1)%ra.N {
		wr = East
	} else {
		wr = West
	}
	if sustains {
		ra.setWrap(wr, true, now)
		ra.farUntil[wr] = now + ra.KTTL
		ra.markFailed(sp, now)
		return
	}
	if req == aps.ReqNoRequest {
		if ra.farUntil[wr] != 0 {
			ra.farUntil[wr] = now // expires on the next Advance
		}
		ra.clearFailed(sp)
	}
}

// Advance runs one tick of the state machine given the local incoming
// span defect states.
func (ra *RingAPS) Advance(now int64, sfEast, sfWest bool) {
	ra.now = now
	sf := [2]bool{sfEast, sfWest}
	for r := East; r <= West; r++ {
		wr := r.Opp() // incoming-r failure kills our outgoing opp(r) span
		switch {
		case sf[r]:
			ra.localSF[r] = true
			ra.wtrUntil[r] = 0
			ra.markFailed(ra.inSpan(r), now)
			ra.setWrap(wr, true, now)
		case ra.localSF[r]:
			// Cleared: hold the switch through wait-to-restore, then
			// revert.
			if ra.wtrUntil[r] == 0 {
				ra.wtrUntil[r] = now + ra.WTR
			}
			if now >= ra.wtrUntil[r] {
				ra.localSF[r] = false
				ra.wtrUntil[r] = 0
			} else {
				ra.markFailed(ra.inSpan(r), now)
			}
		}
		if ra.wrapped[wr] && !ra.localSF[r] &&
			(ra.farUntil[wr] == 0 || now >= ra.farUntil[wr]) {
			ra.setWrap(wr, false, now)
			ra.farUntil[wr] = 0
		}
	}
	for sp, until := range ra.failed {
		if now >= until {
			delete(ra.failed, sp)
		}
	}
}

// TxK returns the K1/K2 pair to transmit on the outgoing span of a
// rotation this tick: the node's own long-path request first, then its
// short-path request (into the dead fibre, best effort), then any
// unexpired relayed request, else idle.
func (ra *RingAPS) TxK(rot Rotation) (k1, k2 byte) {
	now := ra.now
	if ra.localSF[rot] || ra.wtrUntil[rot] > 0 {
		// Our incoming span on rot is dead (or in WTR): the long path to
		// its far end leaves on this same rotation.
		return ra.reqK(rot, true)
	}
	if o := rot.Opp(); ra.localSF[o] || ra.wtrUntil[o] > 0 {
		// Short-path copy straight at the far end over the dead fibre.
		return ra.reqK(o, false)
	}
	if ra.relay[rot].until > now {
		return ra.relay[rot].k1, ra.relay[rot].k2
	}
	k1 = aps.K1(aps.ReqNoRequest, ra.nextNode(rot))
	k2 = byte(ra.Node&0x0F) << 4
	return k1, k2
}

// reqK builds this node's own request toward the far end of the
// failed incoming span on rot.
func (ra *RingAPS) reqK(rot Rotation, long bool) (k1, k2 byte) {
	req := aps.ReqSignalFail
	if !ra.sfNow(rot) {
		req = aps.ReqWaitToRestore
	}
	k1 = aps.K1(req, ra.farNode(rot))
	k2 = byte(ra.Node&0x0F) << 4
	if long {
		k2 |= k2LongPath
	}
	k2 |= k2BridgedSwitched
	return k1, k2
}

// sfNow reports whether the incoming-rot failure is still present (as
// opposed to held only by WTR).
func (ra *RingAPS) sfNow(rot Rotation) bool {
	return ra.localSF[rot] && ra.wtrUntil[rot] == 0
}

// String renders the machine state for traces.
func (ra *RingAPS) String() string {
	return fmt.Sprintf("node %d wrapped[e=%v w=%v] sf[e=%v w=%v]",
		ra.Node, ra.wrapped[East], ra.wrapped[West], ra.localSF[East], ra.localSF[West])
}
