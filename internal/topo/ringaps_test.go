package topo

import (
	"testing"

	"repro/internal/aps"
)

func TestRingAPSLocalFailureWrapsAndSignals(t *testing.T) {
	ra := NewRingAPS(3, 4, 10)
	ra.Advance(1, true, false) // East incoming (from node 2) dead
	if !ra.Wrapped(West) {
		t.Fatal("East incoming failure must wrap the West outgoing span")
	}
	if ra.Wrapped(East) {
		t.Fatal("East outgoing span wrapped without cause")
	}
	k1, k2 := ra.TxK(East) // long path toward node 2
	req, dest := aps.ParseK1(k1)
	if req != aps.ReqSignalFail || dest != 2 {
		t.Fatalf("long path K1 = %v dest %d, want SF dest 2", req, dest)
	}
	if int(k2>>4) != 3 || k2&k2LongPath == 0 {
		t.Fatalf("long path K2 = %#x, want src 3 + long bit", k2)
	}
	k1, k2 = ra.TxK(West) // short path straight at node 2
	req, dest = aps.ParseK1(k1)
	if req != aps.ReqSignalFail || dest != 2 || k2&k2LongPath != 0 {
		t.Fatalf("short path K = %v dest %d k2 %#x", req, dest, k2)
	}
}

func TestRingAPSWTRHoldsThenReverts(t *testing.T) {
	ra := NewRingAPS(3, 4, 10)
	ra.Advance(1, true, false)
	if !ra.Wrapped(West) {
		t.Fatal("no wrap")
	}
	// Failure clears at tick 5: WTR runs to 15.
	for now := int64(5); now < 15; now++ {
		ra.Advance(now, false, false)
		if !ra.Wrapped(West) {
			t.Fatalf("tick %d: unwrapped during WTR", now)
		}
		k1, _ := ra.TxK(East)
		if req, _ := aps.ParseK1(k1); req != aps.ReqWaitToRestore {
			t.Fatalf("tick %d: long path carries %v during WTR", now, req)
		}
	}
	ra.Advance(15, false, false)
	if ra.Wrapped(West) {
		t.Fatal("still wrapped after WTR expiry")
	}
	k1, _ := ra.TxK(East)
	if req, _ := aps.ParseK1(k1); req != aps.ReqNoRequest {
		t.Fatalf("post-WTR long path carries %v", req)
	}
}

func TestRingAPSSecondFailureDuringWTRRearms(t *testing.T) {
	ra := NewRingAPS(3, 4, 100)
	ra.Advance(1, true, false)
	ra.Advance(5, false, false) // WTR starts, runs to 105
	ra.Advance(50, true, false) // failure returns mid-WTR
	ra.Advance(60, false, false)
	// The WTR must restart from the second clear, not continue the
	// first: still wrapped well past the original expiry.
	for now := int64(61); now < 160; now++ {
		ra.Advance(now, false, false)
		if !ra.Wrapped(West) {
			t.Fatalf("tick %d: WTR did not re-arm after the second SF", now)
		}
	}
	ra.Advance(160, false, false)
	if ra.Wrapped(West) {
		t.Fatal("still wrapped after the re-armed WTR expired")
	}
}

func TestRingAPSFarEndWrapAndRelease(t *testing.T) {
	// Node 2's neighbour 3 reports the 2↔3 span dead via the long
	// path (arriving on node 2's East incoming).
	ra := NewRingAPS(2, 4, 10)
	k1 := aps.K1(aps.ReqSignalFail, 2)
	k2 := byte(3)<<4 | k2LongPath | k2BridgedSwitched
	for now := int64(1); now < 10; now++ {
		ra.ReceiveK(East, k1, k2, now)
		ra.Advance(now, false, false)
		if !ra.Wrapped(East) {
			t.Fatalf("tick %d: far-end SF did not wrap", now)
		}
	}
	// Source goes idle: the wrap must age out within KTTL.
	for now := int64(10); now < 10+ra.KTTL+2; now++ {
		ra.Advance(now, false, false)
	}
	if ra.Wrapped(East) {
		t.Fatal("far-end wrap survived the sustain window")
	}
	// Explicit NR releases immediately (next Advance).
	ra.ReceiveK(East, k1, k2, 100)
	ra.Advance(100, false, false)
	if !ra.Wrapped(East) {
		t.Fatal("re-wrap failed")
	}
	ra.ReceiveK(East, aps.K1(aps.ReqNoRequest, 2), byte(3)<<4, 101)
	ra.Advance(101, false, false)
	ra.Advance(102, false, false)
	if ra.Wrapped(East) {
		t.Fatal("NR from the far end did not release the wrap")
	}
}

func TestRingAPSRelaysLongPathRequests(t *testing.T) {
	// Node 0 sits between a requester (3) and its destination (2):
	// it must pass the K bytes through on the same rotation.
	ra := NewRingAPS(0, 4, 10)
	k1 := aps.K1(aps.ReqSignalFail, 2)
	k2 := byte(3)<<4 | k2LongPath
	ra.ReceiveK(East, k1, k2, 5)
	ra.Advance(5, false, false)
	g1, g2 := ra.TxK(East)
	if g1 != k1 || g2 != k2 {
		t.Fatalf("relay = %#x/%#x, want %#x/%#x", g1, g2, k1, k2)
	}
	// And it learns the failed span (2↔3, east index 2) for squelch
	// computation.
	if got := ra.FailedSpans(5); len(got) != 1 || got[0] != 2 {
		t.Fatalf("learned failed spans = %v, want [2]", got)
	}
	// After the relay ages out, idle resumes.
	ra.Advance(5+ra.KTTL+1, false, false)
	g1, _ = ra.TxK(East)
	if req, _ := aps.ParseK1(g1); req != aps.ReqNoRequest {
		t.Fatalf("stale relay still transmitted: %v", req)
	}
}

func TestRingAPSReachability(t *testing.T) {
	ra := NewRingAPS(1, 4, 10)
	now := int64(1)
	if !ra.Reachable(0, 2, now) {
		t.Fatal("clean ring: everything reachable")
	}
	ra.markFailed(1, now) // span 1↔2
	if !ra.Reachable(0, 2, now) {
		t.Fatal("single failure: still reachable the long way")
	}
	ra.markFailed(2, now) // span 2↔3: node 2 isolated
	if ra.Reachable(0, 2, now) {
		t.Fatal("isolated node reported reachable")
	}
	if !ra.Reachable(3, 0, now) || !ra.Reachable(1, 3, now) {
		t.Fatal("surviving arc reported unreachable")
	}
	// Expiry restores reachability.
	if !ra.Reachable(0, 2, now+ra.KTTL+1) {
		t.Fatal("expired failure still blocks reachability")
	}
}
