package topo

// Port is one end of a circuit at its endpoint node: the add queue(s)
// feeding the ring and the drop side recovering the peer's stream. In
// UPSR mode the add side dual-feeds both rotations with identical
// octets and the drop side runs the non-revertive path selector; in
// BLSR mode the port adds on its short-path rotation only and the ring
// switch (not the port) heals failures.
//
// The overlay stack (a gigapos Link, or any byte-synchronous HDLC
// source) pushes its line stream with Send and drains the selected
// receive stream with Recv once per tick. When the add queue runs dry
// the slot is filled with HDLC flags, exactly like an idle synchronous
// payload envelope.
type Port struct {
	Circ *Circuit
	Peer int // peer endpoint node ID

	node *Node
	// txRot is the BLSR transmit rotation (shortest path to the peer);
	// rxRot is where the peer's traffic logically arrives.
	txRot, rxRot Rotation

	txq    [2]deque // per-rotation add queues (kept identical in UPSR)
	rxq    [2]deque // per-rotation drop streams
	aisRun [2]int   // consecutive 0xFF octets per rotation
	// lastGood is the tick a non-AIS octet last arrived per rotation —
	// the selector's measure of how long a path has actually been dark
	// when it switches away from it.
	lastGood [2]int64

	sel  Rotation
	down bool

	// Counters and hooks.
	Switches     uint64
	LastSwitchAt int64
	LastFailover int64 // outage ticks healed by the last switch
	FillOctets   uint64
	RxDrops      uint64
	// OnSwitch observes every selector movement with the outage length
	// it healed; OnDown observes squelch transitions (both paths dead /
	// recovered).
	OnSwitch func(now int64, from, to Rotation, outage int64)
	OnDown   func(now int64, down bool)
}

func newPort(n *Node, c *Circuit, peer int) *Port {
	p := &Port{Circ: c, Peer: peer, node: n, sel: East}
	N := len(n.ring.nodes)
	eastDist := (peer - n.ID + N) % N
	if 2*eastDist <= N {
		p.txRot = East
	} else {
		p.txRot = West
	}
	// The peer's short path to us fixes our receive rotation.
	peerEastDist := (n.ID - peer + N) % N
	if 2*peerEastDist <= N {
		p.rxRot = East
	} else {
		p.rxRot = West
	}
	if n.ring.Cfg.Mode == BLSR {
		p.sel = p.rxRot
	}
	return p
}

// Node returns the endpoint's node.
func (p *Port) Node() *Node { return p.node }

// Selected returns the rotation the drop side currently delivers.
func (p *Port) Selected() Rotation { return p.sel }

// Down reports whether the circuit is squelched at this end: no
// rotation currently delivers the peer's traffic.
func (p *Port) Down() bool { return p.down }

// Send enqueues line octets for transmission toward the peer. UPSR
// dual-feeds both rotations; BLSR feeds the short path.
func (p *Port) Send(b []byte) {
	if p.node.ring.Cfg.Mode == UPSR {
		p.txq[East].pushSlice(b)
		p.txq[West].pushSlice(b)
		return
	}
	p.txq[p.txRot].pushSlice(b)
}

// Recv appends the selected rotation's received octets to dst and
// discards the other rotation's backlog. Call once per tick.
func (p *Port) Recv(dst []byte) []byte {
	dst = p.rxq[p.sel].drain(dst)
	p.rxq[p.sel.Opp()].reset()
	return dst
}

// PendingTx returns the octets queued for transmission (the deeper
// rotation).
func (p *Port) PendingTx() int {
	n := p.txq[East].size()
	if w := p.txq[West].size(); w > n {
		n = w
	}
	return n
}

// dropsFrom reports whether arrivals on rot belong to this port.
func (p *Port) dropsFrom(rot Rotation) bool {
	if p.node.ring.Cfg.Mode == UPSR {
		return true
	}
	return rot == p.rxRot
}

// addsTo reports whether this port sources the slot on rot.
func (p *Port) addsTo(rot Rotation) bool {
	if p.node.ring.Cfg.Mode == UPSR {
		return true
	}
	return rot == p.txRot
}

// txOut supplies the next add octet for a rotation (flag fill when
// idle).
func (p *Port) txOut(rot Rotation) byte {
	if b, ok := p.txq[rot].pop(); ok {
		return b
	}
	p.FillOctets++
	return idleOctet
}

// rxIn accepts one dropped octet from a rotation.
func (p *Port) rxIn(rot Rotation, b byte) {
	if b == aisOctet {
		if p.aisRun[rot] < 1<<30 {
			p.aisRun[rot]++
		}
	} else {
		p.aisRun[rot] = 0
		p.lastGood[rot] = p.node.ring.now
	}
	q := &p.rxq[rot]
	if q.size() >= rxCap(p.node.ring) {
		q.popDiscard()
		p.RxDrops++
	}
	q.push(b)
}

// rxCap bounds a drop stream at sixteen frame times of one slot.
func rxCap(r *Ring) int { return 16 * r.block }

// PathDown reports whether a rotation's path to this drop is dead:
// the local incoming span has a service-affecting defect (and no ring
// wrap is delivering around it), or the slot has carried a sustained
// AIS run inserted by an upstream node.
func (p *Port) PathDown(rot Rotation) bool {
	if p.aisRun[rot] >= p.node.ring.Cfg.AISThreshold {
		return true
	}
	if p.node.inDefect(rot) {
		if p.node.raps != nil && p.node.raps.Wrapped(rot.Opp()) {
			return false // unwrap is delivering the long way around
		}
		return true
	}
	return false
}

// service runs the per-tick selector/squelch evaluation.
func (p *Port) service(now int64) {
	if p.node.ring.Cfg.Mode == UPSR {
		cur := p.sel
		if p.PathDown(cur) && !p.PathDown(cur.Opp()) {
			outage := now - p.lastGood[cur]
			p.sel = cur.Opp()
			p.Switches++
			p.LastSwitchAt = now
			p.LastFailover = outage
			if p.OnSwitch != nil {
				p.OnSwitch(now, cur, p.sel, outage)
			}
		}
	}
	down := p.PathDown(p.sel)
	if p.node.ring.Cfg.Mode == UPSR {
		down = down && p.PathDown(p.sel.Opp())
	}
	if down != p.down {
		p.down = down
		if p.OnDown != nil {
			p.OnDown(now, down)
		}
	}
}
