package topo

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sonet"
)

// The test traffic alphabet cycles 1..113: never zero (LOS fill),
// never 0x7E (idle flags) and never 0xFF (AIS), so impairments and
// fill are separable from payload by value.
const alphabet = 113

type pattern struct{ next byte }

func (p *pattern) fill(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		if p.next == 0 {
			p.next = 1
		}
		out[i] = p.next
		p.next++
		if p.next > alphabet {
			p.next = 1
		}
	}
	return out
}

// analyse filters a drop stream into payload and counts fill, AIS,
// out-of-alphabet corruption, and sequence breaks (positions where the
// payload does not continue the cyclic counter).
type analysis struct {
	payload          []byte
	fill, ais, junk  int
	breaks           int
	sinceBreak       int // payload octets since the last break
}

func analyse(stream []byte) *analysis {
	a := &analysis{}
	var prev byte
	for _, b := range stream {
		switch {
		case b == idleOctet:
			a.fill++
		case b == aisOctet:
			a.ais++
		case b == 0 || b > alphabet:
			a.junk++
		default:
			if prev != 0 {
				want := prev + 1
				if want > alphabet {
					want = 1
				}
				if b != want {
					a.breaks++
					a.sinceBreak = 0
				}
			}
			prev = b
			a.payload = append(a.payload, b)
			a.sinceBreak++
		}
	}
	return a
}

// run drives the ring for ticks, feeding perTick pattern octets into
// src each tick and collecting dst's drop stream.
func run(t *testing.T, r *Ring, src, dst *Port, pat *pattern, from, ticks int64, perTick int) []byte {
	t.Helper()
	var got []byte
	for now := from; now < from+ticks; now++ {
		src.Send(pat.fill(perTick))
		r.Tick(now)
		got = dst.Recv(got)
	}
	return got
}

func TestUPSRCleanRingDelivers(t *testing.T) {
	r, err := NewRing(Config{Nodes: 4, Mode: UPSR})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, err := r.AddCircuit(Circuit{Name: "a-b", A: 0, B: 2, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	var pat pattern
	got := analyse(run(t, r, pa, pb, &pat, 0, 50, 256))
	if len(got.payload) < 40*256 {
		t.Fatalf("delivered %d payload octets of ~%d sent", len(got.payload), 50*256)
	}
	if got.breaks != 0 || got.junk != 0 || got.ais != 0 {
		t.Fatalf("clean ring: breaks=%d junk=%d ais=%d", got.breaks, got.junk, got.ais)
	}
	if pb.Down() || pb.Switches != 0 {
		t.Fatalf("clean ring: down=%v switches=%d", pb.Down(), pb.Switches)
	}
	if pa.Down() {
		t.Fatal("clean ring: reverse direction down")
	}
}

func TestUPSRDelayedJitteredRingDelivers(t *testing.T) {
	r, err := NewRing(Config{Nodes: 4, Mode: UPSR, Delay: 3, Jitter: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, err := r.AddCircuit(Circuit{Name: "a-b", A: 0, B: 2, Slot: 1})
	if err != nil {
		t.Fatal(err)
	}
	var pat pattern
	got := analyse(run(t, r, pa, pb, &pat, 0, 80, 256))
	if got.breaks != 0 || got.junk != 0 {
		t.Fatalf("jittered ring: breaks=%d junk=%d", got.breaks, got.junk)
	}
	if len(got.payload) < 50*256 {
		t.Fatalf("delivered only %d payload octets", len(got.payload))
	}
}

// cutBoth installs LOS scripts covering both directions of the fibre
// between u and v from tick from for the given duration (0 = to end).
func cutBoth(t *testing.T, r *Ring, u, v int, from, ticks int64) {
	t.Helper()
	uv, vu, err := r.SpansBetween(u, v)
	if err != nil {
		t.Fatal(err)
	}
	fb := int64(r.Cfg.Level.FrameBytes())
	for _, s := range []*Span{uv, vu} {
		var sc fault.Script
		sc.LOS(from*fb, int(ticks*fb))
		s.SetScript(&sc)
	}
}

func TestUPSRSingleCutSwitchesHitless(t *testing.T) {
	r, err := NewRing(Config{Nodes: 4, Mode: UPSR})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, err := r.AddCircuit(Circuit{Name: "a-b", A: 0, B: 2, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Cut the fibre between 1 and 2 — on the East path 0→1→2 — from
	// tick 100 to the end of the run.
	const cutAt = 100
	cutBoth(t, r, 1, 2, cutAt, 10000)

	var pat pattern
	var got []byte
	for now := int64(0); now < 400; now++ {
		pa.Send(pat.fill(256))
		r.Tick(now)
		got = pb.Recv(got)
		if pb.Down() {
			t.Fatalf("tick %d: single cut squelched the circuit", now)
		}
	}
	if pb.Switches != 1 {
		t.Fatalf("switches = %d, want 1", pb.Switches)
	}
	if pb.Selected() != West {
		t.Fatalf("selected %v after East-path cut", pb.Selected())
	}
	if d := pb.LastSwitchAt - cutAt; d < 0 || d > 400 {
		t.Fatalf("switch at %+d ticks from the cut, budget 400", d)
	}
	a := analyse(got)
	if a.junk != 0 {
		t.Fatalf("%d corrupted payload octets delivered", a.junk)
	}
	if a.breaks > 4 {
		t.Fatalf("%d stream breaks, want the cut's splice only", a.breaks)
	}
	if a.sinceBreak < 50*256 {
		t.Fatalf("only %d contiguous octets since the last break — traffic did not stabilise on the protect path", a.sinceBreak)
	}
}

func TestUPSRDualCutSquelchesIsolatedNode(t *testing.T) {
	r, err := NewRing(Config{Nodes: 4, Mode: UPSR})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, err := r.AddCircuit(Circuit{Name: "main", A: 0, B: 2, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	qa, qb, err := r.AddCircuit(Circuit{Name: "doomed", A: 1, B: 3, Slot: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Cut the fibres 2↔3 and 3↔0: node 3 is isolated.
	cutBoth(t, r, 2, 3, 100, 10000)
	cutBoth(t, r, 3, 0, 100, 10000)

	var patP, patQ pattern
	var gotB []byte
	for now := int64(0); now < 600; now++ {
		pa.Send(patP.fill(256))
		qa.Send(patQ.fill(256))
		r.Tick(now)
		gotB = pb.Recv(gotB)
		qb.Recv(nil)
	}
	if !qa.Down() {
		t.Fatal("circuit to the isolated node not squelched at the surviving end")
	}
	if pb.Down() || pa.Down() {
		t.Fatal("surviving circuit went down")
	}
	a := analyse(gotB)
	if a.junk != 0 {
		t.Fatalf("surviving circuit delivered %d corrupted octets", a.junk)
	}
	if a.breaks > 4 {
		t.Fatalf("surviving circuit saw %d breaks", a.breaks)
	}
	if a.sinceBreak < 50*256 {
		t.Fatalf("surviving circuit not stable after the cuts: %d contiguous octets", a.sinceBreak)
	}
}

func TestUPSRNodeFailureSwitchesAroundIt(t *testing.T) {
	r, err := NewRing(Config{Nodes: 4, Mode: UPSR})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, err := r.AddCircuit(Circuit{Name: "a-b", A: 0, B: 2, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	var pat pattern
	var got []byte
	for now := int64(0); now < 400; now++ {
		if now == 100 {
			r.Node(1).Failed = true
		}
		pa.Send(pat.fill(256))
		r.Tick(now)
		got = pb.Recv(got)
	}
	if pb.Down() {
		t.Fatal("node failure on one path squelched a dual-fed circuit")
	}
	if pb.Switches != 1 || pb.Selected() != West {
		t.Fatalf("switches=%d selected=%v", pb.Switches, pb.Selected())
	}
	a := analyse(got)
	if a.junk != 0 || a.sinceBreak < 50*256 {
		t.Fatalf("junk=%d contiguous=%d", a.junk, a.sinceBreak)
	}
}

func TestBLSRSpanCutWrapsAndDelivers(t *testing.T) {
	r, err := NewRing(Config{Nodes: 4, Mode: BLSR, WTR: 50})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, err := r.AddCircuit(Circuit{Name: "a-b", A: 0, B: 2, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	const cutAt = 150
	cutBoth(t, r, 1, 2, cutAt, 10000)

	var pat pattern
	var got []byte
	var wrappedAt int64 = -1
	for now := int64(0); now < 800; now++ {
		pa.Send(pat.fill(256))
		r.Tick(now)
		got = pb.Recv(got)
		if wrappedAt < 0 && r.Node(1).RingAPS().Wrapped(East) && r.Node(2).RingAPS().Wrapped(West) {
			wrappedAt = now
		}
	}
	if wrappedAt < 0 {
		t.Fatal("ring never wrapped at the failure-adjacent nodes")
	}
	if d := wrappedAt - cutAt; d > 400 {
		t.Fatalf("wrap took %d ticks, budget 400", d)
	}
	if pb.Down() {
		t.Fatal("wrapped circuit reported down")
	}
	a := analyse(got)
	if a.junk != 0 {
		t.Fatalf("%d corrupted octets through the wrap", a.junk)
	}
	if a.sinceBreak < 50*256 {
		t.Fatalf("traffic did not stabilise through the wrap: %d contiguous octets", a.sinceBreak)
	}
	// The far pair of nodes stays unwrapped (ring switch, not span).
	if r.Node(0).RingAPS().Wrapped(East) || r.Node(3).RingAPS().Wrapped(West) {
		t.Fatal("nodes away from the failure wrapped")
	}
}

func TestBLSRDualCutSquelchesUnreachable(t *testing.T) {
	r, err := NewRing(Config{Nodes: 4, Mode: BLSR, WTR: 50})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, err := r.AddCircuit(Circuit{Name: "doomed", A: 0, B: 3, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Isolate node 3 entirely.
	cutBoth(t, r, 2, 3, 150, 10000)
	cutBoth(t, r, 3, 0, 150, 10000)
	var pat pattern
	for now := int64(0); now < 800; now++ {
		pa.Send(pat.fill(128))
		r.Tick(now)
		pb.Recv(nil)
		pa.Recv(nil)
	}
	if !pa.Down() {
		t.Fatal("circuit to an isolated node not squelched under BLSR")
	}
	if ok := r.Node(1).RingAPS().Reachable(0, 3, r.Now()); ok {
		t.Fatal("node 1 still believes 3 reachable after learning both cuts")
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(Config{Nodes: 1}); err == nil {
		t.Fatal("accepted a 1-node ring")
	}
	if _, err := NewRing(Config{Nodes: 4, Slots: 7}); err == nil {
		t.Fatal("accepted a slot count that does not divide the payload")
	}
	r, err := NewRing(Config{Nodes: 4, Mode: BLSR})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.AddCircuit(Circuit{A: 0, B: 2, Slot: 3}); err == nil {
		t.Fatal("BLSR accepted a circuit on protection capacity")
	}
	if _, _, err := r.AddCircuit(Circuit{A: 0, B: 0, Slot: 0}); err == nil {
		t.Fatal("accepted a self-circuit")
	}
	if _, _, err := r.AddCircuit(Circuit{A: 0, B: 2, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.AddCircuit(Circuit{A: 1, B: 3, Slot: 0}); err == nil {
		t.Fatal("accepted a double-provisioned slot")
	}
	_ = sonet.STM1
}
