package topo

import (
	"repro/internal/channel"
	"repro/internal/fault"
	"repro/internal/sonet"
)

// Span is one directed fibre between adjacent nodes: the source node's
// framer, an optional fault injector, a delay/jitter line, and the
// destination node's deframer with its defect monitor. One transport
// frame crosses it per tick, so a fault script's octet offsets map to
// ticks as offset = tick · FrameBytes.
type Span struct {
	From, To int
	Rot      Rotation

	// Inject, when set, impairs the transmitted frames (scripted cuts,
	// slips, noise bursts). Offsets count transmitted octets from tick
	// zero. Install with SetScript or assign directly before traffic.
	Inject *fault.Injector

	// Line models the fibre's propagation delay, jitter and reorder.
	Line channel.Line

	fr   *sonet.Framer
	df   *sonet.Deframer
	ring *Ring

	txPos int // payload octet position within the frame being built
	rxPos int // payload octet position within the frame being parsed

	FramesSent      uint64
	FramesDelivered uint64
	DarkFrames      uint64 // zero frames launched while the source was failed
}

func newSpan(r *Ring, rot Rotation, from, to int) *Span {
	s := &Span{From: from, To: to, Rot: rot, ring: r}
	s.Line = channel.Line{
		Delay:        r.Cfg.Delay,
		Jitter:       r.Cfg.Jitter,
		ReorderEvery: r.Cfg.ReorderEvery,
		// Jitter alone must not reorder a fibre; only an explicit
		// ReorderEvery does.
		InOrder: r.Cfg.ReorderEvery == 0,
	}
	if r.Cfg.Jitter > 0 || r.Cfg.ReorderEvery > 0 {
		s.Line.Rand = newRand(spanSeed(r.Cfg.Seed, rot, from))
	}
	payload := r.Cfg.Level.PayloadBytes()
	s.fr = sonet.NewFramer(r.Cfg.Level, func() (byte, bool) {
		b := r.nodes[from].txByte(rot, s.txPos/r.block)
		s.txPos++
		if s.txPos == payload {
			s.txPos = 0
		}
		return b, true
	})
	s.df = sonet.NewDeframer(r.Cfg.Level, func(b byte) {
		// While the line is service-affected the deframer may still
		// deliver frames at the assumed boundary (the defect monitor's
		// persistence contract), but their payload is meaningless — an
		// ADM inserts path AIS downstream instead of garbage.
		if s.df.Defects.Active()&sonet.ServiceAffecting != 0 {
			b = aisOctet
		}
		r.nodes[to].rxByte(rot, s.rxPos/r.block, b)
		s.rxPos++
		if s.rxPos == payload {
			s.rxPos = 0
		}
	})
	// Re-anchor the slot demultiplexer at every delivered frame so a
	// resync after a slip or cut cannot leave the slots rotated.
	s.df.OnFrame = func() { s.rxPos = 0 }
	return s
}

// SetScript installs a fault script on the span. nil clears.
func (s *Span) SetScript(sc *fault.Script) {
	if sc == nil {
		s.Inject = nil
		return
	}
	s.Inject = fault.NewInjector(*sc)
}

// Deframer exposes the receive-side deframer (defect monitor, parity
// and resync counters) for assertions and stats.
func (s *Span) Deframer() *sonet.Deframer { return s.df }

// Framer exposes the transmit-side framer.
func (s *Span) Framer() *sonet.Framer { return s.fr }

// Defect reports whether the span currently shows a service-affecting
// receive defect.
func (s *Span) Defect() bool {
	return s.df.Defects.Active()&sonet.ServiceAffecting != 0
}

// CutLOS appends a loss-of-signal window to the span's script,
// covering ticks [fromTick, fromTick+ticks): the scripted equivalent
// of unplugging this fibre for that long. It composes with any
// existing injector script only if called before SetScript; prefer
// building the whole script first.
func CutLOS(sc *fault.Script, level sonet.Level, fromTick, ticks int64) *fault.Script {
	fb := int64(level.FrameBytes())
	return sc.LOS(fromTick*fb, int(ticks*fb))
}
