// Package topo is the multi-node ring simulator: SONET add/drop nodes
// joined by directional spans, carrying slotted circuits with UPSR
// path-selector protection or a BLSR-style ring switch layered on K1/K2
// signalling. It is the topology layer above the point-to-point
// machinery — each span is a real internal/sonet framer/deframer pair
// behind a channel.Line delay/jitter pipe and an optional fault
// injector, so every section-layer behaviour (alignment hunt, defect
// integration, K-byte persistence) is exercised exactly as on a linear
// link.
//
// # Model
//
// A ring of N nodes has two rotations: East spans carry node i → i+1,
// West spans carry node i → i-1. Every span moves one transport frame
// per tick (the 125 µs frame cadence), so tick T of a span occupies
// octets [T·FrameBytes, (T+1)·FrameBytes) of its fault-script
// coordinate space. The payload of each frame is divided into Slots
// contiguous blocks; a slot is a circuit: the unit of add/drop,
// pass-through, and protection switching.
//
// Per slot a node either terminates (an endpoint Port adds its own
// transmit stream and drops arrivals) or passes through, re-emitting
// the arriving slot octets on the same rotation one tick later
// (store-and-forward). A pass node whose upstream span has a
// service-affecting defect inserts path AIS (0xFF fill) for the slots
// it forwards, so a failure anywhere on the path is visible at the
// drop node within a few ticks even when the drop node's own spans are
// clean.
//
// In UPSR mode an endpoint dual-feeds both rotations and the drop side
// runs a non-revertive path selector per circuit: it leaves the
// selected rotation only when that path goes down (local span defect
// or a sustained AIS run) while the other is up. In BLSR mode the
// first half of the slots is working capacity, the second half is the
// shared protection reservation; a RingAPS state machine per node
// drives ring switches (wraps) from local defects and K1/K2 ring
// requests carrying node IDs — see ringaps.go.
package topo

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sonet"
)

// Rotation identifies one of the ring's two directed fibre rotations.
type Rotation int

// The rotations. East spans run node i → i+1 (mod N), West spans run
// node i → i-1.
const (
	East Rotation = iota
	West
)

// Opp returns the opposite rotation.
func (r Rotation) Opp() Rotation { return 1 - r }

func (r Rotation) String() string {
	if r == East {
		return "east"
	}
	return "west"
}

// Mode selects the ring protection architecture.
type Mode int

const (
	// UPSR: unidirectional path-switched ring — circuits are dual-fed
	// on both rotations and each drop runs a path selector.
	UPSR Mode = iota
	// BLSR: bidirectional line-switched ring — half the slots are
	// protection capacity and failures are healed by wrapping at the
	// nodes adjacent to the break, negotiated over K1/K2.
	BLSR
)

func (m Mode) String() string {
	if m == BLSR {
		return "blsr"
	}
	return "upsr"
}

// Path AIS and idle fill octets. AIS is the all-ones maintenance
// signal inserted for a slot whose upstream has failed; idle slots
// carry HDLC flags so an overlaid byte-synchronous PPP stream sees
// ordinary inter-frame fill.
const (
	aisOctet  = 0xFF
	idleOctet = 0x7E
)

// Config parameterises a ring.
type Config struct {
	Nodes int         // ring size (2..16; BLSR needs node IDs ≤ 15)
	Level sonet.Level // transport level; default STM-1
	Slots int         // payload slots per frame; default 4
	Mode  Mode

	// Span transmission characteristics, applied to every span: fixed
	// propagation Delay in ticks, uniform extra Jitter in [0, Jitter],
	// and roughly one frame in ReorderEvery held back. Jitter and
	// reorder draws derive from Seed, per span, so a topology is
	// exactly reproducible.
	Delay        int64
	Jitter       int64
	ReorderEvery int
	Seed         uint64

	// WTR is the BLSR ring wait-to-restore in ticks: how long a
	// locally-detected failure must stay clear before the wrap is
	// released. 0 reverts immediately.
	WTR int64

	// AISThreshold is the consecutive-0xFF run that declares path AIS
	// at a drop port; default 1024 octets (just under two STM-1 slot
	// blocks), long enough that payload bytes never fake it.
	AISThreshold int
}

// Circuit is a bidirectional slot between two endpoint nodes.
type Circuit struct {
	Name string
	A, B int // endpoint node IDs
	Slot int
}

// Ring is the simulator: nodes, 2N directed spans, and the circuits
// provisioned over them. Drive it with Tick once per 125 µs frame
// time.
type Ring struct {
	Cfg   Config
	block int // octets per slot block per frame

	nodes    []*Node
	spans    [2][]*Span // [rotation][source node]
	circuits []*Circuit
	slotCirc []*Circuit // slot -> owning circuit
	now      int64

	popBuf [][]byte
}

// NewRing builds a ring from cfg.
func NewRing(cfg Config) (*Ring, error) {
	if cfg.Level == 0 {
		cfg.Level = sonet.STM1
	}
	if cfg.Slots == 0 {
		cfg.Slots = 4
	}
	if cfg.AISThreshold == 0 {
		cfg.AISThreshold = 1024
	}
	if cfg.Nodes < 2 || cfg.Nodes > 16 {
		return nil, fmt.Errorf("topo: ring size %d outside 2..16", cfg.Nodes)
	}
	payload := cfg.Level.PayloadBytes()
	if cfg.Slots < 1 || payload%cfg.Slots != 0 {
		return nil, fmt.Errorf("topo: %d slots do not divide the %d-octet payload", cfg.Slots, payload)
	}
	if cfg.Mode == BLSR && cfg.Slots%2 != 0 {
		return nil, fmt.Errorf("topo: BLSR needs an even slot count, got %d", cfg.Slots)
	}
	r := &Ring{
		Cfg:      cfg,
		block:    payload / cfg.Slots,
		slotCirc: make([]*Circuit, cfg.Slots),
	}
	for i := 0; i < cfg.Nodes; i++ {
		r.nodes = append(r.nodes, newNode(r, i))
	}
	for i := 0; i < cfg.Nodes; i++ {
		r.spans[East] = append(r.spans[East], newSpan(r, East, i, (i+1)%cfg.Nodes))
		r.spans[West] = append(r.spans[West], newSpan(r, West, i, (i-1+cfg.Nodes)%cfg.Nodes))
	}
	return r, nil
}

// spanSeed derives a per-span jitter/reorder seed from the ring seed.
func spanSeed(base uint64, rot Rotation, idx int) uint64 {
	x := base ^ (uint64(idx)*2 + uint64(rot) + 1)
	return x*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
}

// Node returns node id.
func (r *Ring) Node(id int) *Node { return r.nodes[id] }

// Nodes returns the ring size.
func (r *Ring) Nodes() int { return len(r.nodes) }

// Now returns the last ticked virtual time.
func (r *Ring) Now() int64 { return r.now }

// BlockBytes returns the octets per slot per frame.
func (r *Ring) BlockBytes() int { return r.block }

// Span returns the directed span leaving node src on rotation rot.
func (r *Ring) Span(rot Rotation, src int) *Span { return r.spans[rot][src] }

// SpansBetween returns the two directed spans of the fibre pair
// joining adjacent nodes u and v: uv carries u → v, vu carries v → u.
func (r *Ring) SpansBetween(u, v int) (uv, vu *Span, err error) {
	n := len(r.nodes)
	switch {
	case (u+1)%n == v: // v is u's East neighbour
		return r.spans[East][u], r.spans[West][v], nil
	case (v+1)%n == u: // v is u's West neighbour
		return r.spans[West][u], r.spans[East][v], nil
	}
	return nil, nil, fmt.Errorf("topo: nodes %d and %d are not adjacent", u, v)
}

// Circuits returns the provisioned circuits.
func (r *Ring) Circuits() []*Circuit { return r.circuits }

// SlotCircuit returns the circuit owning a slot (nil when unused).
func (r *Ring) SlotCircuit(slot int) *Circuit { return r.slotCirc[slot] }

// AddCircuit provisions a bidirectional circuit and returns its two
// endpoint ports (at c.A and c.B respectively). Call before the first
// Tick.
func (r *Ring) AddCircuit(c Circuit) (pa, pb *Port, err error) {
	maxSlot := r.Cfg.Slots
	if r.Cfg.Mode == BLSR {
		maxSlot = r.Cfg.Slots / 2 // upper half is protection capacity
	}
	if c.Slot < 0 || c.Slot >= maxSlot {
		return nil, nil, fmt.Errorf("topo: slot %d outside working capacity 0..%d", c.Slot, maxSlot-1)
	}
	if r.slotCirc[c.Slot] != nil {
		return nil, nil, fmt.Errorf("topo: slot %d already owned by %q", c.Slot, r.slotCirc[c.Slot].Name)
	}
	if c.A == c.B || c.A < 0 || c.B < 0 || c.A >= len(r.nodes) || c.B >= len(r.nodes) {
		return nil, nil, fmt.Errorf("topo: bad endpoints %d,%d", c.A, c.B)
	}
	cc := c
	r.circuits = append(r.circuits, &cc)
	r.slotCirc[c.Slot] = &cc
	pa = newPort(r.nodes[c.A], &cc, c.B)
	pb = newPort(r.nodes[c.B], &cc, c.A)
	r.nodes[c.A].ports[c.Slot] = pa
	r.nodes[c.B].ports[c.Slot] = pb
	return pa, pb, nil
}

// Tick advances the whole ring one frame time: deliver due frames into
// the receive sides, run the protection state machines, then build and
// launch one frame per span.
func (r *Ring) Tick(now int64) {
	r.now = now
	// Phase 1: deliveries. Every arriving frame runs the destination's
	// deframer, filling slot queues, defect monitors and K-byte state.
	for rot := East; rot <= West; rot++ {
		for _, s := range r.spans[rot] {
			r.popBuf = s.Line.Pop(now, r.popBuf[:0])
			for _, chunk := range r.popBuf {
				if !r.nodes[s.To].Failed {
					s.df.Feed(chunk)
					s.FramesDelivered++
				}
			}
		}
	}
	// Phase 2: control. Ring APS first (it sets the K bytes the next
	// frames will carry and the wrap state routing consults), then the
	// path selectors.
	for _, n := range r.nodes {
		if n.Failed {
			continue
		}
		if n.raps != nil {
			n.serviceRingAPS(now)
		}
		for _, p := range n.ports {
			p.service(now)
		}
	}
	// Phase 3: transmissions. One frame per span per tick; a failed
	// source leaves the fibre dark (all zeros — no light, LOS at the
	// far end).
	for rot := East; rot <= West; rot++ {
		for _, s := range r.spans[rot] {
			if r.nodes[s.From].Failed {
				s.Line.Push(now, make([]byte, r.Cfg.Level.FrameBytes()))
				s.DarkFrames++
				continue
			}
			f := s.fr.NextFrame()
			if s.Inject != nil {
				f = s.Inject.Apply(f)
			}
			s.Line.Push(now, f)
			s.FramesSent++
		}
	}
}

// Node is one add/drop multiplexer on the ring.
type Node struct {
	ID     int
	Failed bool // a failed node processes nothing and leaves its fibres dark

	ring  *Ring
	ports map[int]*Port // slot -> local endpoint
	pass  [2][]deque    // [rotation][slot] pass-through queues
	raps  *RingAPS

	// PassDrops counts pass-queue octets discarded to the depth cap
	// (sustained jitter imbalance).
	PassDrops uint64
}

func newNode(r *Ring, id int) *Node {
	n := &Node{ID: id, ring: r, ports: make(map[int]*Port)}
	for rot := East; rot <= West; rot++ {
		n.pass[rot] = make([]deque, r.Cfg.Slots)
	}
	if r.Cfg.Mode == BLSR {
		n.raps = NewRingAPS(id, r.Cfg.Nodes, r.Cfg.WTR)
	}
	return n
}

// RingAPS returns the node's BLSR state machine (nil in UPSR mode).
func (n *Node) RingAPS() *RingAPS { return n.raps }

// Port returns the node's endpoint for slot, if any.
func (n *Node) Port(slot int) *Port { return n.ports[slot] }

// out and in return the spans leaving and entering the node on a
// rotation.
func (n *Node) out(r Rotation) *Span { return n.ring.spans[r][n.ID] }
func (n *Node) in(r Rotation) *Span {
	N := len(n.ring.nodes)
	if r == East {
		return n.ring.spans[East][(n.ID-1+N)%N]
	}
	return n.ring.spans[West][(n.ID+1)%N]
}

// inDefect reports a service-affecting defect on the incoming span of
// a rotation.
func (n *Node) inDefect(r Rotation) bool {
	return n.in(r).df.Defects.Active()&sonet.ServiceAffecting != 0
}

// serviceRingAPS advances the BLSR machine and installs the resulting
// K bytes on the outgoing framers. K bytes are read from the incoming
// deframers' persistence filters each tick (a clean span carries its
// signalling continuously; a dead one carries none).
func (n *Node) serviceRingAPS(now int64) {
	for rot := East; rot <= West; rot++ {
		if n.inDefect(rot) {
			continue
		}
		if k1, k2, ok := n.in(rot).df.APSBytes(); ok {
			n.raps.ReceiveK(rot, k1, k2, now)
		}
	}
	n.raps.Advance(now, n.inDefect(East), n.inDefect(West))
	for rot := East; rot <= West; rot++ {
		k1, k2 := n.raps.TxK(rot)
		n.out(rot).fr.K1, n.out(rot).fr.K2 = k1, k2
	}
}

// rxByte routes one recovered payload octet arriving on a rotation.
func (n *Node) rxByte(rot Rotation, slot int, b byte) {
	if n.Failed {
		return
	}
	if n.raps != nil {
		if s2 := n.ring.Cfg.Slots / 2; slot >= s2 && n.raps.Wrapped(rot) {
			// Unwrap: this node's opposite-rotation incoming span is the
			// broken one; protection arrivals here are the working
			// traffic that went the long way around.
			rot, slot = rot.Opp(), slot-s2
		}
	}
	if p, ok := n.ports[slot]; ok && p.dropsFrom(rot) {
		p.rxIn(rot, b)
		return
	}
	q := &n.pass[rot][slot]
	if q.size() >= passCap(n.ring) {
		q.popDiscard()
		n.PassDrops++
	}
	q.push(b)
}

// passCap bounds a pass queue at four frame times of one slot.
func passCap(r *Ring) int { return 4 * r.block }

// txByte supplies one payload octet for the frame being built on an
// outgoing rotation.
func (n *Node) txByte(rot Rotation, slot int) byte {
	s2 := n.ring.Cfg.Slots / 2
	if n.raps != nil {
		switch {
		case slot >= s2 && n.raps.Wrapped(rot.Opp()):
			// Wrap: the opposite rotation's outgoing span is dead, so its
			// working slot rides this rotation's protection capacity the
			// long way around. Circuits whose far side is unreachable
			// (ring split by a second failure) are squelched with AIS so
			// they can never misconnect.
			w := slot - s2
			if c := n.ring.slotCirc[w]; c != nil && !n.raps.Reachable(c.A, c.B, n.ring.now) {
				return aisOctet
			}
			return n.workingTx(rot.Opp(), w)
		case slot >= s2:
			return n.passTx(rot, slot)
		case n.raps.Wrapped(rot):
			// This outgoing span is declared dead; its working content
			// has been bridged onto the other rotation. Fill the dead
			// fibre with AIS.
			return aisOctet
		}
	}
	return n.workingTx(rot, slot)
}

func (n *Node) workingTx(rot Rotation, slot int) byte {
	if p, ok := n.ports[slot]; ok && p.addsTo(rot) {
		return p.txOut(rot)
	}
	return n.passTx(rot, slot)
}

func (n *Node) passTx(rot Rotation, slot int) byte {
	if b, ok := n.pass[rot][slot].pop(); ok {
		return b
	}
	if n.inDefect(rot) {
		return aisOctet // upstream dead: insert path AIS downstream
	}
	return idleOctet
}

// deque is a minimal byte FIFO with amortised O(1) push/pop and
// periodic compaction.
type deque struct {
	buf  []byte
	head int
}

func (d *deque) push(b byte) {
	d.compact()
	d.buf = append(d.buf, b)
}

func (d *deque) pushSlice(p []byte) {
	d.compact()
	d.buf = append(d.buf, p...)
}

func (d *deque) compact() {
	if d.head > 4096 && d.head > len(d.buf)/2 {
		n := copy(d.buf, d.buf[d.head:])
		d.buf = d.buf[:n]
		d.head = 0
	}
}

func (d *deque) pop() (byte, bool) {
	if d.head >= len(d.buf) {
		d.reset()
		return 0, false
	}
	b := d.buf[d.head]
	d.head++
	return b, true
}

func (d *deque) popDiscard() { d.pop() }

func (d *deque) size() int { return len(d.buf) - d.head }

func (d *deque) reset() {
	d.buf = d.buf[:0]
	d.head = 0
}

func (d *deque) drain(dst []byte) []byte {
	dst = append(dst, d.buf[d.head:]...)
	d.reset()
	return dst
}

// newRand builds the per-span impairment generator.
func newRand(seed uint64) *netsim.Rand { return netsim.NewRand(seed) }
