// Package mapos implements the parts of MAPOS — Multiple Access Protocol
// over SONET/SDH, RFC 2171 — that motivate the P5's *programmable* HDLC
// address field: MAPOS reuses PPP/HDLC framing but gives every node a
// real link address assigned by a switch, so a framer with a hard-wired
// 0xFF address cannot join a MAPOS network.
//
// The package provides the address algebra, the frame header, a minimal
// Node-Switch Protocol (NSP, RFC 2173) for address assignment, and a
// software SONET switch that forwards frames between ports by HDLC
// address — enough substrate to run a multi-node LAN over P5 framers.
package mapos

import (
	"errors"
	"fmt"
)

// Address is a MAPOS HDLC address octet. The LSB of every valid address
// is 1 (it marks the end of the one-octet address field, HDLC style).
// The MSB distinguishes group (multicast) addresses; 0xFF is broadcast.
type Address byte

// Special addresses.
const (
	// Unassigned is the address of a node that has not completed NSP
	// address acquisition.
	Unassigned Address = 0x01
	// Broadcast floods every port of the switch.
	Broadcast Address = 0xFF
)

// Valid reports whether a has the mandatory trailing 1 bit.
func (a Address) Valid() bool { return a&1 == 1 }

// IsGroup reports whether a is a group (multicast/broadcast) address.
func (a Address) IsGroup() bool { return a&0x80 != 0 }

// IsBroadcast reports whether a is the all-ones broadcast address.
func (a Address) IsBroadcast() bool { return a == Broadcast }

// IsUnicast reports whether a is an assigned unicast address.
func (a Address) IsUnicast() bool {
	return a.Valid() && !a.IsGroup() && a != Unassigned
}

func (a Address) String() string { return fmt.Sprintf("%#02x", byte(a)) }

// PortAddress returns the unicast address assigned to switch port n
// (0-based): the port number shifted over the mandatory LSB.
// Single-switch form of the RFC 2171 hierarchical address.
func PortAddress(n int) Address {
	return Address(byte(n+1)<<1 | 1)
}

// Port recovers the 0-based switch port from a unicast address.
func (a Address) Port() int { return int(a>>1) - 1 }

// MAPOS protocol numbers (RFC 2171 §5; NSP from RFC 2173).
const (
	ProtoIP  = 0x0021
	ProtoNSP = 0xFE01
)

// Frame is a MAPOS frame: like PPP but the address octet selects the
// destination node and there is no control octet in v1 — we keep the
// UI control octet for P5 datapath compatibility (RFC 2171 frames do
// carry 0x03 there too).
type Frame struct {
	Dest     Address
	Protocol uint16
	Payload  []byte
}

// NSP message types (simplified RFC 2173 exchange).
const (
	NSPAddressRequest = 1
	NSPAddressAssign  = 2
	NSPAddressRelease = 3
	NSPAddressConfirm = 4
)

// NSP is one Node-Switch Protocol message.
type NSP struct {
	Type    byte
	Address Address
}

// Marshal appends the 2-octet NSP encoding.
func (m NSP) Marshal(dst []byte) []byte {
	return append(dst, m.Type, byte(m.Address))
}

// ErrNSPFormat reports a malformed NSP payload.
var ErrNSPFormat = errors.New("mapos: malformed NSP message")

// ParseNSP decodes an NSP message.
func ParseNSP(b []byte) (NSP, error) {
	if len(b) < 2 {
		return NSP{}, ErrNSPFormat
	}
	return NSP{Type: b[0], Address: Address(b[1])}, nil
}
