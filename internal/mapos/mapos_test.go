package mapos

import (
	"bytes"
	"testing"
)

func TestAddressAlgebra(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsGroup() || Broadcast.IsUnicast() {
		t.Error("broadcast classification")
	}
	if !Unassigned.Valid() || Unassigned.IsUnicast() {
		t.Error("unassigned classification")
	}
	a := PortAddress(0)
	if !a.Valid() || !a.IsUnicast() || a.Port() != 0 {
		t.Errorf("port 0 address %v", a)
	}
	for p := 0; p < 60; p++ {
		ad := PortAddress(p)
		if !ad.Valid() {
			t.Fatalf("port %d address %v invalid", p, ad)
		}
		if ad.Port() != p {
			t.Fatalf("port %d round trip gave %d", p, ad.Port())
		}
	}
	if Address(0x84).Valid() {
		t.Error("even addresses are invalid")
	}
	if !Address(0x85).IsGroup() {
		t.Error("MSB marks group addresses")
	}
}

func TestAddressString(t *testing.T) {
	if PortAddress(1).String() != "0x05" {
		t.Errorf("String = %s", PortAddress(1))
	}
}

func TestNSPRoundTrip(t *testing.T) {
	m := NSP{Type: NSPAddressAssign, Address: PortAddress(3)}
	b := m.Marshal(nil)
	got, err := ParseNSP(b)
	if err != nil || got != m {
		t.Errorf("round trip: %+v, %v", got, err)
	}
	if _, err := ParseNSP([]byte{1}); err != ErrNSPFormat {
		t.Errorf("short NSP: %v", err)
	}
}

func TestSwitchUnicastForwarding(t *testing.T) {
	sw := NewSwitch(3)
	var got [3][]*Frame
	var src [3][]Address
	for i := 0; i < 3; i++ {
		i := i
		sw.Attach(i, func(s Address, f *Frame) {
			got[i] = append(got[i], f)
			src[i] = append(src[i], s)
		})
	}
	f := &Frame{Dest: PortAddress(2), Protocol: ProtoIP, Payload: []byte("x")}
	sw.Ingress(0, f)
	if len(got[2]) != 1 || len(got[1]) != 0 || len(got[0]) != 0 {
		t.Fatalf("delivery counts: %d/%d/%d", len(got[0]), len(got[1]), len(got[2]))
	}
	if src[2][0] != PortAddress(0) {
		t.Errorf("source address = %v", src[2][0])
	}
	if sw.Forwarded != 1 {
		t.Errorf("Forwarded = %d", sw.Forwarded)
	}
}

func TestSwitchBroadcastFloods(t *testing.T) {
	sw := NewSwitch(4)
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		sw.Attach(i, func(Address, *Frame) { counts[i]++ })
	}
	sw.Ingress(1, &Frame{Dest: Broadcast, Protocol: ProtoIP})
	want := []int{1, 0, 1, 1} // every port except ingress
	for i := range counts {
		if counts[i] != want[i] {
			t.Errorf("port %d got %d frames, want %d", i, counts[i], want[i])
		}
	}
}

func TestSwitchDropsUnknownAndInvalid(t *testing.T) {
	sw := NewSwitch(2)
	sw.Attach(0, func(Address, *Frame) {})
	sw.Attach(1, func(Address, *Frame) {})
	sw.Ingress(0, &Frame{Dest: PortAddress(9), Protocol: ProtoIP}) // no such port
	sw.Ingress(0, &Frame{Dest: Address(0x04), Protocol: ProtoIP})  // invalid (even)
	sw.Ingress(0, &Frame{Dest: Unassigned, Protocol: ProtoIP})     // not unicast
	if sw.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", sw.Dropped)
	}
}

func TestNSPAddressAcquisition(t *testing.T) {
	sw := NewSwitch(2)
	var nodes [2]*Node
	for i := 0; i < 2; i++ {
		i := i
		nodes[i] = NewNode(
			func(f *Frame) { sw.Ingress(i, f) },
			nil,
		)
		sw.Attach(i, func(s Address, f *Frame) { nodes[i].Deliver(s, f) })
	}
	nodes[0].AcquireAddress()
	nodes[1].AcquireAddress()
	if nodes[0].Addr != PortAddress(0) {
		t.Errorf("node 0 addr = %v, want %v", nodes[0].Addr, PortAddress(0))
	}
	if nodes[1].Addr != PortAddress(1) {
		t.Errorf("node 1 addr = %v, want %v", nodes[1].Addr, PortAddress(1))
	}
	if sw.NSPHandled != 2 {
		t.Errorf("NSPHandled = %d", sw.NSPHandled)
	}
}

func TestEndToEndIPOverMAPOS(t *testing.T) {
	const n = 3
	sw := NewSwitch(n)
	type rx struct {
		src     Address
		payload []byte
	}
	inbox := make([][]rx, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		i := i
		nodes[i] = NewNode(
			func(f *Frame) { sw.Ingress(i, f) },
			func(s Address, p []byte) { inbox[i] = append(inbox[i], rx{s, p}) },
		)
		sw.Attach(i, func(s Address, f *Frame) { nodes[i].Deliver(s, f) })
		nodes[i].AcquireAddress()
	}
	nodes[0].SendIP(nodes[2].Addr, []byte("hello node 2"))
	nodes[2].SendIP(nodes[0].Addr, []byte("hi back"))
	nodes[1].SendIP(Broadcast, []byte("to all"))

	if len(inbox[2]) != 2 { // unicast + broadcast
		t.Fatalf("node 2 inbox = %d", len(inbox[2]))
	}
	if !bytes.Equal(inbox[2][0].payload, []byte("hello node 2")) || inbox[2][0].src != nodes[0].Addr {
		t.Errorf("node 2 first rx = %+v", inbox[2][0])
	}
	if len(inbox[0]) != 2 || !bytes.Equal(inbox[0][0].payload, []byte("hi back")) {
		t.Errorf("node 0 inbox = %+v", inbox[0])
	}
	if len(inbox[1]) != 0 {
		t.Errorf("node 1 must not see unicast traffic: %+v", inbox[1])
	}
}
