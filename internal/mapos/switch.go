package mapos

// Switch is a software MAPOS switch: frames arriving on a port are
// forwarded by destination address — unicast to the owning port,
// broadcast/group flooded to every other port. NSP address-request
// frames are answered by the switch itself.
//
// The switch operates on decoded frames; byte-level framing is the P5's
// job (see examples/mapos-lan for the full stack).
type Switch struct {
	ports []chan portFrame
	out   []func(src Address, f *Frame)

	// Counters.
	Forwarded, Flooded, Dropped, NSPHandled uint64
}

type portFrame struct {
	port int
	f    *Frame
}

// NewSwitch creates a switch with n ports. Deliver functions are
// registered per port with Attach.
func NewSwitch(n int) *Switch {
	return &Switch{out: make([]func(Address, *Frame), n)}
}

// Ports returns the port count.
func (s *Switch) Ports() int { return len(s.out) }

// Attach registers the delivery callback for port n and returns the
// unicast address the switch will assign to that port.
func (s *Switch) Attach(n int, deliver func(src Address, f *Frame)) Address {
	s.out[n] = deliver
	return PortAddress(n)
}

// Ingress processes a frame arriving on port n. NSP frames are consumed
// by the switch; everything else is forwarded. The source address of a
// MAPOS v1 frame is implicit in the arrival port.
func (s *Switch) Ingress(n int, f *Frame) {
	src := PortAddress(n)
	if f.Protocol == ProtoNSP {
		s.handleNSP(n, f)
		return
	}
	switch {
	case f.Dest.IsBroadcast() || f.Dest.IsGroup():
		s.Flooded++
		for i, deliver := range s.out {
			if i != n && deliver != nil {
				deliver(src, f)
			}
		}
	case f.Dest.IsUnicast():
		p := f.Dest.Port()
		if p >= 0 && p < len(s.out) && s.out[p] != nil {
			s.Forwarded++
			s.out[p](src, f)
		} else {
			s.Dropped++
		}
	default:
		s.Dropped++
	}
}

func (s *Switch) handleNSP(n int, f *Frame) {
	msg, err := ParseNSP(f.Payload)
	if err != nil {
		s.Dropped++
		return
	}
	s.NSPHandled++
	switch msg.Type {
	case NSPAddressRequest:
		if s.out[n] != nil {
			reply := NSP{Type: NSPAddressAssign, Address: PortAddress(n)}
			s.out[n](Broadcast, &Frame{
				Dest:     PortAddress(n),
				Protocol: ProtoNSP,
				Payload:  reply.Marshal(nil),
			})
		}
	case NSPAddressRelease:
		if s.out[n] != nil {
			reply := NSP{Type: NSPAddressConfirm, Address: PortAddress(n)}
			s.out[n](Broadcast, &Frame{
				Dest:     PortAddress(n),
				Protocol: ProtoNSP,
				Payload:  reply.Marshal(nil),
			})
		}
	}
}

// Node is a MAPOS endpoint: it acquires an address via NSP and exchanges
// frames through a transmit callback wired to a switch port.
type Node struct {
	Addr Address
	send func(*Frame)
	recv func(src Address, payload []byte)
}

// NewNode creates a node. send transmits toward the switch; recv receives
// IP payloads delivered to this node.
func NewNode(send func(*Frame), recv func(src Address, payload []byte)) *Node {
	return &Node{Addr: Unassigned, send: send, recv: recv}
}

// AcquireAddress sends the NSP address request; the address arrives via
// Deliver.
func (n *Node) AcquireAddress() {
	msg := NSP{Type: NSPAddressRequest, Address: Unassigned}
	n.send(&Frame{Dest: Broadcast, Protocol: ProtoNSP, Payload: msg.Marshal(nil)})
}

// Deliver handles a frame arriving from the switch.
func (n *Node) Deliver(src Address, f *Frame) {
	switch f.Protocol {
	case ProtoNSP:
		if msg, err := ParseNSP(f.Payload); err == nil && msg.Type == NSPAddressAssign {
			n.Addr = msg.Address
		}
	case ProtoIP:
		if n.recv != nil {
			n.recv(src, f.Payload)
		}
	}
}

// SendIP transmits an IP payload to the destination address.
func (n *Node) SendIP(dst Address, payload []byte) {
	n.send(&Frame{Dest: dst, Protocol: ProtoIP, Payload: payload})
}
