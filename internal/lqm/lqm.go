// Package lqm implements PPP Link Quality Monitoring (RFC 1333), which
// the paper cites as the LQR protocol carried over PPP protocol 0xC025.
// A Monitor periodically emits Link-Quality-Reports carrying snapshot
// counters; comparing the deltas in a peer's report against our own
// transmit counters measures loss in each direction, and a configurable
// hysteresis policy declares the link good or bad.
package lqm

import "encoding/binary"

// Proto is the PPP protocol number for Link-Quality-Report packets.
const Proto = 0xC025

// LQR is one Link-Quality-Report (RFC 1333 §2.2): all fields are
// 32-bit counters; "Last*" echo the values of the last LQR we sent,
// "Peer*" echo what the peer reported and measured.
type LQR struct {
	Magic uint32

	LastOutLQRs    uint32
	LastOutPackets uint32
	LastOutOctets  uint32

	PeerInLQRs     uint32
	PeerInPackets  uint32
	PeerInDiscards uint32
	PeerInErrors   uint32
	PeerInOctets   uint32

	PeerOutLQRs    uint32
	PeerOutPackets uint32
	PeerOutOctets  uint32
}

// Size is the LQR wire size in octets.
const Size = 12 * 4

// Marshal appends the big-endian wire encoding.
func (q *LQR) Marshal(dst []byte) []byte {
	for _, v := range [...]uint32{
		q.Magic,
		q.LastOutLQRs, q.LastOutPackets, q.LastOutOctets,
		q.PeerInLQRs, q.PeerInPackets, q.PeerInDiscards, q.PeerInErrors, q.PeerInOctets,
		q.PeerOutLQRs, q.PeerOutPackets, q.PeerOutOctets,
	} {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	return dst
}

// Parse decodes an LQR; ok is false when the payload is short.
func Parse(b []byte) (LQR, bool) {
	if len(b) < Size {
		return LQR{}, false
	}
	u := func(i int) uint32 { return binary.BigEndian.Uint32(b[4*i:]) }
	return LQR{
		Magic:          u(0),
		LastOutLQRs:    u(1),
		LastOutPackets: u(2),
		LastOutOctets:  u(3),
		PeerInLQRs:     u(4),
		PeerInPackets:  u(5),
		PeerInDiscards: u(6),
		PeerInErrors:   u(7),
		PeerInOctets:   u(8),
		PeerOutLQRs:    u(9),
		PeerOutPackets: u(10),
		PeerOutOctets:  u(11),
	}, true
}

// Quality is the monitor's verdict.
type Quality int

// Verdicts.
const (
	Unknown Quality = iota
	Good
	Bad
)

func (q Quality) String() string {
	switch q {
	case Good:
		return "good"
	case Bad:
		return "bad"
	default:
		return "unknown"
	}
}

// emitRecord remembers when a report sequence number left us.
type emitRecord struct {
	seq uint32
	at  int64
}

// Monitor measures one direction pair of a PPP link. The caller feeds
// traffic events (CountOut*/CountIn*) and received LQRs, and services
// the report timer through Advance; Send is invoked with each outgoing
// report.
type Monitor struct {
	// Magic is our LCP magic number, echoed in reports.
	Magic uint32
	// Period is the reporting interval in virtual time units
	// (default 10).
	Period int64
	// Send transmits an LQR toward the peer. Required.
	Send func(*LQR)

	// MaxLossPct declares the link Bad when outbound loss over a
	// reporting window exceeds this percentage (default 20).
	MaxLossPct float64
	// GoodWindows is the hysteresis: consecutive clean windows needed
	// to return to Good (default 3).
	GoodWindows int

	// Live counters (ours).
	OutLQRs, OutPackets, OutOctets uint32
	InLQRs, InPackets, InOctets    uint32
	InDiscards, InErrors           uint32

	havePeer bool // a peer report has been processed
	prevPeer LQR
	prevIn   uint32 // our InPackets when the previous report arrived

	quality   Quality
	cleanRuns int
	next      int64
	now       int64

	// Round-trip sampling: every report we emit records its sequence
	// number and send time in a small ring; a peer report whose
	// LastOutLQRs echoes one of them closes the loop (RFC 1333 §2.3
	// echo semantics — the echo arrives one reporting period behind,
	// so the last emit alone is never the one matched).
	emits   [4]emitRecord
	echoed  uint32 // highest sequence already matched
	emitIdx int

	// Derived measurements from the last completed window.
	LastInboundLossPct float64
	LastPeerErrors     uint32
	// LastRTT is the most recent report round-trip (virtual time
	// units): our emit to the peer report echoing it. RTTSamples
	// counts completed measurements.
	LastRTT    int64
	RTTSamples uint64
}

func (m *Monitor) period() int64 {
	if m.Period <= 0 {
		return 10
	}
	return m.Period
}

func (m *Monitor) maxLoss() float64 {
	if m.MaxLossPct <= 0 {
		return 20
	}
	return m.MaxLossPct
}

func (m *Monitor) goodWindows() int {
	if m.GoodWindows <= 0 {
		return 3
	}
	return m.GoodWindows
}

// Quality returns the current verdict.
func (m *Monitor) Quality() Quality { return m.quality }

// CountOutPacket records one transmitted packet of n octets.
func (m *Monitor) CountOutPacket(n int) {
	m.OutPackets++
	m.OutOctets += uint32(n)
}

// CountInPacket records one good received packet of n octets.
func (m *Monitor) CountInPacket(n int) {
	m.InPackets++
	m.InOctets += uint32(n)
}

// CountInError records a damaged received frame.
func (m *Monitor) CountInError() { m.InErrors++ }

// CountInDiscard records a discarded (policy) frame.
func (m *Monitor) CountInDiscard() { m.InDiscards++ }

// Advance services the report timer.
func (m *Monitor) Advance(now int64) {
	if now > m.now {
		m.now = now
	}
	if m.next == 0 {
		m.next = m.now + m.period()
		return
	}
	if m.now >= m.next {
		m.emit()
		m.next = m.now + m.period()
	}
}

// emit builds and transmits a report. The Last* fields echo the
// counters from the peer's most recent report so it can align its
// measurement windows (RFC 1333 §2.3).
func (m *Monitor) emit() {
	m.OutLQRs++
	m.emits[m.emitIdx] = emitRecord{seq: m.OutLQRs, at: m.now}
	m.emitIdx = (m.emitIdx + 1) % len(m.emits)
	q := LQR{
		Magic:          m.Magic,
		LastOutLQRs:    m.prevPeer.PeerOutLQRs,
		LastOutPackets: m.prevPeer.PeerOutPackets,
		LastOutOctets:  m.prevPeer.PeerOutOctets,
		PeerInLQRs:     m.InLQRs,
		PeerInPackets:  m.InPackets,
		PeerInDiscards: m.InDiscards,
		PeerInErrors:   m.InErrors,
		PeerInOctets:   m.InOctets,
		PeerOutLQRs:    m.OutLQRs,
		PeerOutPackets: m.OutPackets,
		PeerOutOctets:  m.OutOctets,
	}
	if m.Send != nil {
		m.Send(&q)
	}
}

// Receive processes a peer report and updates the quality verdict for
// the inbound direction: over the window between two peer reports, the
// peer's transmit-counter delta (PeerOutPackets) is compared against
// our own receive-counter delta sampled at the two arrival instants —
// the difference is traffic lost on the line toward us.
func (m *Monitor) Receive(q *LQR) {
	m.InLQRs++
	if q.LastOutLQRs > m.echoed {
		for _, rec := range m.emits {
			if rec.seq != 0 && rec.seq == q.LastOutLQRs {
				m.LastRTT = m.now - rec.at
				m.RTTSamples++
				m.echoed = rec.seq
				break
			}
		}
	}
	in := m.InPackets
	if !m.havePeer {
		m.havePeer = true
		m.prevPeer = *q
		m.prevIn = in
		return
	}
	sentDelta := q.PeerOutPackets - m.prevPeer.PeerOutPackets
	recvDelta := in - m.prevIn
	m.LastPeerErrors = q.PeerInErrors - m.prevPeer.PeerInErrors
	m.prevPeer = *q
	m.prevIn = in

	if sentDelta == 0 {
		return // idle window: no evidence either way
	}
	lost := float64(0)
	if sentDelta > recvDelta {
		lost = 100 * float64(sentDelta-recvDelta) / float64(sentDelta)
	}
	m.LastInboundLossPct = lost
	if lost > m.maxLoss() {
		m.quality = Bad
		m.cleanRuns = 0
		return
	}
	m.cleanRuns++
	if m.quality == Unknown || m.cleanRuns >= m.goodWindows() {
		m.quality = Good
	}
}
