package lqm

import (
	"testing"
	"testing/quick"
)

func TestLQRMarshalRoundTrip(t *testing.T) {
	f := func(vals [12]uint32) bool {
		q := LQR{
			Magic:          vals[0],
			LastOutLQRs:    vals[1],
			LastOutPackets: vals[2],
			LastOutOctets:  vals[3],
			PeerInLQRs:     vals[4],
			PeerInPackets:  vals[5],
			PeerInDiscards: vals[6],
			PeerInErrors:   vals[7],
			PeerInOctets:   vals[8],
			PeerOutLQRs:    vals[9],
			PeerOutPackets: vals[10],
			PeerOutOctets:  vals[11],
		}
		b := q.Marshal(nil)
		if len(b) != Size {
			return false
		}
		got, ok := Parse(b)
		return ok && got == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseShort(t *testing.T) {
	if _, ok := Parse(make([]byte, Size-1)); ok {
		t.Error("short LQR accepted")
	}
}

func TestQualityString(t *testing.T) {
	if Good.String() != "good" || Bad.String() != "bad" || Unknown.String() != "unknown" {
		t.Error("strings")
	}
}

// pair wires two monitors over a lossy "line" whose loss applies to the
// data traffic model, not the reports.
type pair struct {
	a, b *Monitor
}

func newPair() *pair {
	p := &pair{}
	p.a = &Monitor{Magic: 1, Period: 10, Send: func(q *LQR) { p.b.Receive(q) }}
	p.b = &Monitor{Magic: 2, Period: 10, Send: func(q *LQR) { p.a.Receive(q) }}
	return p
}

// window simulates one reporting period: a sends n packets toward b,
// of which delivered actually arrive, then both report.
func (p *pair) window(now int64, n, delivered int) {
	for i := 0; i < n; i++ {
		p.a.CountOutPacket(100)
	}
	for i := 0; i < delivered; i++ {
		p.b.CountInPacket(100)
	}
	for i := 0; i < n-delivered; i++ {
		p.b.CountInError()
	}
	p.a.Advance(now)
	p.b.Advance(now)
}

func TestCleanLinkBecomesGood(t *testing.T) {
	p := newPair()
	now := int64(0)
	for w := 0; w < 6; w++ {
		now += 10
		p.window(now, 50, 50)
	}
	if p.b.Quality() != Good {
		t.Errorf("b quality = %v after clean windows", p.b.Quality())
	}
	if p.b.LastInboundLossPct != 0 {
		t.Errorf("loss = %v, want 0", p.b.LastInboundLossPct)
	}
}

func TestLossyLinkGoesBad(t *testing.T) {
	p := newPair()
	now := int64(0)
	// Two clean windows to establish a baseline, then heavy loss.
	for w := 0; w < 4; w++ {
		now += 10
		p.window(now, 50, 50)
	}
	for w := 0; w < 3; w++ {
		now += 10
		p.window(now, 50, 20) // 60% loss
	}
	if p.b.Quality() != Bad {
		t.Fatalf("b quality = %v after 60%% loss", p.b.Quality())
	}
	if p.b.LastInboundLossPct < 50 {
		t.Errorf("measured loss = %.0f%%, want ≈60%%", p.b.LastInboundLossPct)
	}
	// b's CountInError tallies travel inside b's reports, so the error
	// deltas are observed by a.
	if p.a.LastPeerErrors == 0 {
		t.Error("peer error counter delta not observed")
	}
}

func TestHysteresisRecovery(t *testing.T) {
	p := newPair()
	p.b.GoodWindows = 3
	now := int64(0)
	for w := 0; w < 3; w++ {
		now += 10
		p.window(now, 50, 50)
	}
	now += 10
	p.window(now, 50, 10) // bad window
	if p.b.Quality() != Bad {
		t.Fatal("did not go bad")
	}
	// One clean window is not enough…
	now += 10
	p.window(now, 50, 50)
	if p.b.Quality() == Good {
		t.Fatal("recovered too eagerly")
	}
	// …three are.
	for w := 0; w < 2; w++ {
		now += 10
		p.window(now, 50, 50)
	}
	if p.b.Quality() != Good {
		t.Errorf("quality = %v after recovery windows", p.b.Quality())
	}
}

func TestIdleWindowsGiveNoVerdict(t *testing.T) {
	p := newPair()
	now := int64(0)
	for w := 0; w < 5; w++ {
		now += 10
		p.window(now, 0, 0)
	}
	if p.b.Quality() != Unknown {
		t.Errorf("quality = %v on idle link", p.b.Quality())
	}
}

func TestReportCadence(t *testing.T) {
	var reports int
	m := &Monitor{Magic: 1, Period: 10, Send: func(*LQR) { reports++ }}
	for now := int64(1); now <= 100; now++ {
		m.Advance(now)
	}
	// First Advance arms the timer; then one report per period.
	if reports < 8 || reports > 10 {
		t.Errorf("reports = %d over 10 periods", reports)
	}
	if m.OutLQRs != uint32(reports) {
		t.Error("OutLQRs mismatch")
	}
}

func TestLastEchoFields(t *testing.T) {
	// Our outgoing report must echo the peer's latest counters so the
	// peer can align windows (RFC 1333 §2.3).
	var got *LQR
	m := &Monitor{Magic: 7, Period: 10, Send: func(q *LQR) { got = q }}
	m.Receive(&LQR{PeerOutLQRs: 5, PeerOutPackets: 111, PeerOutOctets: 999})
	m.Advance(1)
	m.Advance(20)
	if got == nil {
		t.Fatal("no report emitted")
	}
	if got.LastOutLQRs != 5 || got.LastOutPackets != 111 || got.LastOutOctets != 999 {
		t.Errorf("echo fields = %+v", got)
	}
	if got.Magic != 7 {
		t.Error("magic")
	}
}

func TestRTTSampling(t *testing.T) {
	// Two monitors with equal periods: the peer's echo of our sequence
	// number arrives one reporting period behind, so the emit ring (not
	// just the latest emit) must be searched for the match.
	var toB, toA []*LQR
	a := &Monitor{Magic: 1, Period: 10, Send: func(q *LQR) { toB = append(toB, q) }}
	b := &Monitor{Magic: 2, Period: 10, Send: func(q *LQR) { toA = append(toA, q) }}
	for now := int64(1); now <= 80; now++ {
		// Deliver last tick's traffic first: one tick of line delay
		// in each direction.
		inB, inA := toB, toA
		toB, toA = nil, nil
		for _, q := range inB {
			b.Receive(q)
		}
		for _, q := range inA {
			a.Receive(q)
		}
		a.Advance(now)
		b.Advance(now)
	}
	if a.RTTSamples == 0 {
		t.Fatal("no RTT samples completed")
	}
	// One tick out, up to a full period parked at the peer, one tick back.
	if a.LastRTT < 2 || a.LastRTT > 12 {
		t.Errorf("LastRTT = %d, want within [2, 12]", a.LastRTT)
	}
}
