package hdlc

// Bit-synchronous framing (RFC 1662 §5): on links that preserve bit
// boundaries rather than octet boundaries, transparency is achieved by
// zero-bit insertion — after five contiguous 1 bits the transmitter
// inserts a 0, so the flag's 01111110 pattern can never appear inside a
// frame. The paper's P5 uses the octet-stuffed variant (SONET is octet
// synchronous); this is the sibling mode, provided for substrate
// completeness and used by the bit-level tests as an independent
// transparency mechanism.

// BitWriter accumulates a bit stream LSB-first into bytes.
type BitWriter struct {
	buf  []byte
	cur  byte
	nbit uint
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b byte) {
	w.cur |= (b & 1) << w.nbit
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur = 0
		w.nbit = 0
	}
}

// Bytes returns the completed bytes; a trailing partial byte is padded
// with ones (idle line).
func (w *BitWriter) Bytes() []byte {
	out := w.buf
	if w.nbit != 0 {
		pad := w.cur
		for i := w.nbit; i < 8; i++ {
			pad |= 1 << i
		}
		out = append(out, pad)
	}
	return out
}

// BitStuff appends the zero-bit-inserted encoding of one frame to the
// writer: opening flag, stuffed body bits, closing flag. Bits are
// transmitted LSB first, matching the serial convention used by the FCS.
func BitStuff(w *BitWriter, frame []byte) {
	writeFlag(w)
	run := 0
	for _, octet := range frame {
		for i := 0; i < 8; i++ {
			bit := octet >> uint(i) & 1
			w.WriteBit(bit)
			if bit == 1 {
				run++
				if run == 5 {
					w.WriteBit(0) // inserted zero
					run = 0
				}
			} else {
				run = 0
			}
		}
	}
	writeFlag(w)
}

func writeFlag(w *BitWriter) {
	// 0x7E LSB-first: 0 1 1 1 1 1 1 0.
	for i := 0; i < 8; i++ {
		w.WriteBit(Flag >> uint(i) & 1)
	}
}

// BitDestuffer recovers frames from a zero-bit-inserted bit stream,
// the way synchronous HDLC receivers do it: an 8-bit shift register
// detects the raw flag pattern 01111110 independent of transparency;
// the raw bits accumulated between two flags are then destuffed (any 0
// following five contiguous 1s is removed). Seven or more contiguous
// 1 bits abort the in-progress frame (HDLC idle/abort). Frames whose
// destuffed length is not a whole number of octets are counted as
// damaged and dropped.
type BitDestuffer struct {
	Frames  [][]byte
	Aborts  uint64
	Damaged uint64

	last8   byte   // raw shift register, oldest bit at LSB
	nseen   uint   // bits shifted in so far (to prime the register)
	run     int    // contiguous raw 1 bits
	raw     []byte // raw frame bits, one per entry
	inFrame bool
}

// FeedByte feeds eight bits, LSB first.
func (d *BitDestuffer) FeedByte(b byte) {
	for i := 0; i < 8; i++ {
		d.FeedBit(b >> uint(i) & 1)
	}
}

// Feed feeds a byte slice.
func (d *BitDestuffer) Feed(p []byte) {
	for _, b := range p {
		d.FeedByte(b)
	}
}

// FeedBit consumes a single raw line bit.
func (d *BitDestuffer) FeedBit(bit byte) {
	d.last8 = d.last8>>1 | bit<<7
	d.nseen++
	if bit == 1 {
		d.run++
		if d.run == 7 && d.inFrame {
			// Abort / idle: discard the frame in progress.
			d.Aborts++
			d.inFrame = false
			d.raw = d.raw[:0]
		}
	} else {
		d.run = 0
	}
	if d.inFrame {
		d.raw = append(d.raw, bit)
	}
	if d.nseen >= 8 && d.last8 == Flag {
		d.flag()
	}
}

// flag handles a raw flag match: the last 8 raw bits are the flag
// itself; everything before them is the frame.
func (d *BitDestuffer) flag() {
	if d.inFrame && len(d.raw) >= 8 {
		if body, ok := destuffBits(d.raw[:len(d.raw)-8]); ok {
			if len(body) > 0 {
				d.Frames = append(d.Frames, body)
			}
		} else {
			d.Damaged++
		}
	}
	d.inFrame = true
	d.raw = d.raw[:0]
	// The shift register keeps running: adjacent flags may share their
	// boundary zero (…0111111 0 1111110…), so clearing it here would
	// blind the hunter to a real flag whose window overlaps a match in
	// preceding noise. No closer re-match exists — the windows 1-6 bits
	// past a flag all start with a 1 — and a shared-zero match leaves
	// fewer than 8 raw bits, which the length guard above drops.
}

// destuffBits removes inserted zeros and packs the residue into octets;
// ok is false when the bit count is not a multiple of 8.
func destuffBits(bits []byte) ([]byte, bool) {
	out := make([]byte, 0, len(bits)/8)
	var cur byte
	var n uint
	run := 0
	for _, b := range bits {
		if run == 5 && b == 0 {
			run = 0
			continue // inserted zero
		}
		if b == 1 {
			run++
		} else {
			run = 0
		}
		cur |= b << n
		n++
		if n == 8 {
			out = append(out, cur)
			cur = 0
			n = 0
		}
	}
	return out, n == 0
}
