package hdlc

import (
	"encoding/binary"
	"math/bits"
)

// Word-parallel stuffing. The hardware problem (paper §3, Figs 5 and 6) is
// that on a W-byte datapath a flag/escape can sit in any lane, so one
// input word can expand to up to 2W output bytes (stuffing) or collapse
// leaving bubbles (destuffing). In software the analog is SWAR scanning:
// all eight lanes of a 64-bit word are tested for 0x7E/0x7D in a handful
// of ALU operations, and escape-free spans are copied in bulk.

const (
	lsbMask = 0x0101010101010101
	msbMask = 0x8080808080808080
)

// zeroLanes returns a mask with bit 8i+7 set iff byte lane i of x is zero.
func zeroLanes(x uint64) uint64 {
	return (x - lsbMask) & ^x & msbMask
}

// matchLanes returns a mask with the MSB of each lane set iff that lane of
// x equals v.
func matchLanes(x uint64, v byte) uint64 {
	return zeroLanes(x ^ (lsbMask * uint64(v)))
}

// escLanes returns the per-lane match mask for octets needing escape under
// map m: flags, escapes, and (if the map is non-zero) mapped control
// characters. Control characters are found via an unsigned < 0x20 lane
// compare, then filtered through the map lane by lane only when the cheap
// test fires.
func escLanes(x uint64, m ACCM) uint64 {
	lanes := matchLanes(x, Flag) | matchLanes(x, Escape)
	if m == 0 {
		return lanes
	}
	// Lane-parallel compare x[i] < 0x20: a lane is a control character
	// iff its top three bits are all zero.
	lt := zeroLanes(x & (lsbMask * 0xE0))
	if lt == 0 {
		return lanes
	}
	for i := 0; i < 8; i++ {
		if lt>>(8*uint(i)+7)&1 != 0 {
			b := byte(x >> (8 * uint(i)))
			if m.Escaped(b) {
				lanes |= 0x80 << (8 * uint(i))
			}
		}
	}
	return lanes
}

// StuffSWAR appends the octet-stuffed encoding of src to dst scanning
// eight lanes per step — the software mirror of the 32-bit Escape
// Generate byte sorter. Output is byte-identical to Stuff.
func StuffSWAR(dst, src []byte, m ACCM) []byte {
	for len(src) >= 8 {
		x := binary.LittleEndian.Uint64(src)
		lanes := escLanes(x, m)
		if lanes == 0 {
			dst = append(dst, src[:8]...)
			src = src[8:]
			continue
		}
		// First offending lane; copy the clean prefix in bulk, escape
		// one octet, continue.
		i := bits.TrailingZeros64(lanes) / 8
		dst = append(dst, src[:i]...)
		dst = append(dst, Escape, src[i]^XorBit)
		src = src[i+1:]
	}
	return Stuff(dst, src, m)
}

// EscapeSpan returns the length of the maximal prefix of src containing
// no octet that needs escaping under map m, scanning eight lanes per
// step. Span-at-a-time callers (the fused CRC+stuff transmit kernel)
// alternate EscapeSpan with a single escaped octet, so every byte of
// src is visited exactly once.
func EscapeSpan(src []byte, m ACCM) int {
	off := 0
	for len(src) >= 8 {
		x := binary.LittleEndian.Uint64(src)
		if lanes := escLanes(x, m); lanes != 0 {
			return off + bits.TrailingZeros64(lanes)/8
		}
		src = src[8:]
		off += 8
	}
	for i, b := range src {
		if m.Escaped(b) {
			return off + i
		}
	}
	return off + len(src)
}

// DelimiterSpan returns the length of the maximal prefix of src
// containing neither a Flag nor an Escape octet, scanning eight lanes
// per step — the receive-side twin of EscapeSpan. The fused
// destuff+CRC kernel alternates DelimiterSpan with single-octet
// delimiter handling, so runs of ordinary line bytes are bulk-copied
// into the arena with one copy instead of a per-byte loop.
func DelimiterSpan(src []byte) int {
	off := 0
	for len(src) >= 8 {
		x := binary.LittleEndian.Uint64(src)
		if lanes := matchLanes(x, Flag) | matchLanes(x, Escape); lanes != 0 {
			return off + bits.TrailingZeros64(lanes)/8
		}
		src = src[8:]
		off += 8
	}
	for i, b := range src {
		if b == Flag || b == Escape {
			return off + i
		}
	}
	return off + len(src)
}

// DestuffSWAR appends the decoded form of a stuffed sequence to dst,
// scanning eight lanes per step for escape octets. esc threads streaming
// state exactly as Destuff does.
func DestuffSWAR(dst, src []byte, esc bool) ([]byte, bool) {
	for len(src) >= 8 {
		if esc {
			dst = append(dst, src[0]^XorBit)
			src = src[1:]
			esc = false
			continue
		}
		x := binary.LittleEndian.Uint64(src)
		lanes := matchLanes(x, Escape)
		if lanes == 0 {
			dst = append(dst, src[:8]...)
			src = src[8:]
			continue
		}
		i := bits.TrailingZeros64(lanes) / 8
		dst = append(dst, src[:i]...)
		if i+1 < 8 || len(src) > i+1 {
			dst = append(dst, src[i+1]^XorBit)
			src = src[i+2:]
		} else {
			src = src[i+1:]
			esc = true
		}
	}
	return Destuff(dst, src, esc)
}

// FindFlagSWAR returns the index of the first Flag octet in p, or -1 —
// the word-parallel flag hunt used for frame delineation.
func FindFlagSWAR(p []byte) int {
	off := 0
	for len(p) >= 8 {
		x := binary.LittleEndian.Uint64(p)
		if lanes := matchLanes(x, Flag); lanes != 0 {
			return off + bits.TrailingZeros64(lanes)/8
		}
		p = p[8:]
		off += 8
	}
	for i, b := range p {
		if b == Flag {
			return off + i
		}
	}
	return -1
}
