package hdlc

import (
	"errors"

	"repro/internal/crc"
)

// Errors reported per frame by the Tokenizer.
var (
	// ErrAborted marks a frame terminated by the abort sequence
	// (Escape immediately followed by Flag, RFC 1662 §4.3).
	ErrAborted = errors.New("hdlc: frame aborted")
	// ErrRunt marks an inter-flag span too short to hold any frame.
	ErrRunt = errors.New("hdlc: runt frame")
	// ErrOversize marks a frame exceeding the tokenizer's MaxFrame.
	ErrOversize = errors.New("hdlc: frame exceeds maximum size")
)

// Token is one delineated, destuffed frame (or framing error) produced by
// the Tokenizer. Body excludes the flags and has stuffing removed; the FCS
// field is still present at the tail.
//
// Body aliases the Tokenizer's internal arena: it is valid until the
// next Feed call on the same Tokenizer, which recycles the storage.
// Consume or copy every token before feeding more stream bytes.
type Token struct {
	Body []byte
	Err  error
	// FCSOK is the fused frame-check verdict: with the Tokenizer's FCS
	// mode armed, every destuffed octet was folded into a streaming CRC
	// register as it landed in the arena, and FCSOK reports whether the
	// register closed on the mode's magic residue (equivalently,
	// crc.Size.Check over Body). Meaningful only on complete-frame
	// tokens (Err == nil) of an FCS-armed tokenizer; false otherwise.
	FCSOK bool
}

// Tokenizer performs streaming frame delineation on a raw octet stream:
// flag hunting, abort detection, destuffing, size policing and —
// with FCS armed — frame checking, all in one pass. It holds state
// across Feed calls so frames may straddle arbitrary chunk (or
// datapath-word) boundaries — the condition that forces the 32-bit P5 to
// handle flags in any byte lane.
//
// Feed is the fused receive kernel, the twin of the fused CRC+stuff
// transmit path (ppp.AppendFrame over EscapeSpan): delimiter-free spans
// are located eight lanes per step by DelimiterSpan and bulk-copied
// into the arena, with the streaming CRC folded over each span as it
// lands — so checking the FCS costs no second pass over the body.
// ReferenceTokenizer retains the byte-at-a-time loop as the
// differential-fuzz model.
//
// Destuffed bytes land in a single reusable arena (compacted at each
// Feed), so the steady-state receive path allocates nothing once the
// arena has grown to the working set.
type Tokenizer struct {
	// MaxFrame, when non-zero, bounds the destuffed frame size; longer
	// frames are reported with ErrOversize and the remainder discarded
	// until the next flag.
	MaxFrame int
	// MinFrame, when non-zero, is the smallest valid frame body
	// (typically the FCS size plus one); shorter inter-flag spans are
	// reported with ErrRunt. Zero-length spans (back-to-back flags) are
	// always silently skipped.
	MinFrame int
	// FCS, when non-zero, arms the fused frame check: each destuffed
	// octet is folded into a streaming register of the selected size
	// during tokenization and complete-frame tokens carry the verdict
	// in Token.FCSOK. Zero leaves checking to the consumer.
	FCS crc.Size

	arena   []byte // destuffed bytes; the in-progress frame is arena[start:]
	start   int    // arena offset of the in-progress frame
	esc     bool   // escape octet pending
	inFrame bool   // seen an opening flag
	drop    bool   // discarding until next flag (after oversize)
	fcsReg  uint32 // streaming FCS register of the in-progress frame

	// Counters for the OAM status registers.
	Frames   uint64 // complete frames emitted
	Aborts   uint64 // aborted frames
	Runts    uint64 // runt spans
	Oversize uint64 // oversize frames
}

// Feed consumes raw stream octets, appending any complete frame tokens to
// out and returning it. Feed never retains chunk. Bodies of previously
// returned tokens are invalidated: the arena is compacted (any partial
// frame moves to the front) and recycled.
func (t *Tokenizer) Feed(out []Token, chunk []byte) []Token {
	if t.start > 0 {
		n := copy(t.arena, t.arena[t.start:])
		t.arena = t.arena[:n]
		t.start = 0
	}
	for len(chunk) > 0 {
		if !t.inFrame || t.drop {
			// Hunting (inter-frame idle fill is ignored; HDLC links may
			// idle with flags or 0xFF fill) or discarding an oversize
			// frame: nothing lands in the arena until the next flag, so
			// the word-parallel flag hunt skips the span in bulk.
			i := FindFlagSWAR(chunk)
			if i < 0 {
				return out
			}
			out = t.closeFrame(out)
			chunk = chunk[i+1:]
			continue
		}
		switch b := chunk[0]; {
		case b == Flag:
			out = t.closeFrame(out)
			chunk = chunk[1:]
		case t.esc:
			t.esc = false
			t.push(b ^ XorBit)
			chunk = chunk[1:]
		case b == Escape:
			t.esc = true
			chunk = chunk[1:]
		default:
			// Ordinary bytes up to the next delimiter: one bulk copy
			// into the arena, one streaming-CRC fold over the span.
			n := DelimiterSpan(chunk)
			t.pushSpan(chunk[:n])
			chunk = chunk[n:]
		}
	}
	return out
}

// push appends one destuffed octet to the in-progress frame, folding it
// into the fused CRC register and policing MaxFrame.
func (t *Tokenizer) push(b byte) {
	t.arena = append(t.arena, b)
	if t.FCS != 0 {
		t.fcsReg = t.FCS.UpdateByte(t.fcsReg, b)
	}
	if t.MaxFrame > 0 && len(t.arena)-t.start > t.MaxFrame {
		t.drop = true
		t.Oversize++
	}
}

// pushSpan appends a delimiter-free span in bulk. The CRC fold uses the
// slicing (span) form of the streaming API — byte-identical to folding
// octet by octet, verified by the FuzzFusedDecode differential fuzzer.
func (t *Tokenizer) pushSpan(p []byte) {
	t.arena = append(t.arena, p...)
	if t.FCS != 0 {
		t.fcsReg = t.FCS.Update(t.fcsReg, p)
	}
	if t.MaxFrame > 0 && len(t.arena)-t.start > t.MaxFrame {
		t.drop = true
		t.Oversize++
	}
}

// closeFrame handles a Flag octet: emit, skip, or report the span ended.
func (t *Tokenizer) closeFrame(out []Token) []Token {
	wasEsc, wasDrop, wasIn := t.esc, t.drop, t.inFrame
	reg := t.fcsReg
	t.esc = false
	t.drop = false
	t.inFrame = true // a flag both closes and opens a frame
	if t.FCS != 0 {
		t.fcsReg = t.FCS.Init()
	}
	if !wasIn {
		return out
	}
	body := t.arena[t.start:]
	switch {
	case wasEsc:
		// Escape followed by flag: deliberate abort.
		t.arena = t.arena[:t.start]
		t.Aborts++
		return append(out, Token{Err: ErrAborted})
	case wasDrop:
		t.arena = t.arena[:t.start]
		return append(out, Token{Err: ErrOversize})
	case len(body) == 0:
		// Back-to-back flags or shared flag: no frame.
		return out
	case t.MinFrame > 0 && len(body) < t.MinFrame:
		t.arena = t.arena[:t.start]
		t.Runts++
		return append(out, Token{Err: ErrRunt})
	default:
		t.Frames++
		t.start = len(t.arena)
		tok := Token{Body: body}
		if t.FCS != 0 {
			tok.FCSOK = len(body) >= t.FCS.Bytes() && t.FCS.ResidueOK(reg)
		}
		return append(out, tok)
	}
}

// Reset returns the tokenizer to the hunting state, discarding any
// partial frame. Counters are preserved; previously returned token
// bodies stay valid until the next Feed.
func (t *Tokenizer) Reset() {
	t.arena = t.arena[:t.start]
	t.esc = false
	t.inFrame = false
	t.drop = false
}

// Encode appends a fully framed encoding of body to dst: opening flag,
// stuffed body, closing flag. If shareFlag is true and dst already ends
// with a flag, the opening flag is omitted (RFC 1662 allows a single flag
// between frames).
func Encode(dst, body []byte, m ACCM, shareFlag bool) []byte {
	if !shareFlag || len(dst) == 0 || dst[len(dst)-1] != Flag {
		dst = append(dst, Flag)
	}
	dst = StuffSWAR(dst, body, m)
	return append(dst, Flag)
}

// Abort appends an abort sequence terminating any in-progress frame.
func Abort(dst []byte) []byte {
	return append(dst, Escape, Flag)
}
