package hdlc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterPacksLSBFirst(t *testing.T) {
	var w BitWriter
	for _, b := range []byte{1, 0, 1, 1, 0, 0, 1, 0} { // 0b01001101 = 0x4D
		w.WriteBit(b)
	}
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0x4D {
		t.Errorf("bytes = % x", got)
	}
}

func TestBitWriterPadsWithOnes(t *testing.T) {
	var w BitWriter
	w.WriteBit(0)
	w.WriteBit(0)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0xFC {
		t.Errorf("padded byte = %#x, want 0xfc", got[0])
	}
}

func TestBitStuffInsertsZeros(t *testing.T) {
	// 0xFF has eight 1 bits: a zero must be inserted after the fifth.
	var w BitWriter
	BitStuff(&w, []byte{0xFF})
	var d BitDestuffer
	d.Feed(w.Bytes())
	if len(d.Frames) != 1 || !bytes.Equal(d.Frames[0], []byte{0xFF}) {
		t.Fatalf("frames = % x", d.Frames)
	}
}

func TestBitRoundTripFlagPayload(t *testing.T) {
	// A payload full of flag octets must survive bit transparency.
	body := bytes.Repeat([]byte{0x7E}, 9)
	var w BitWriter
	BitStuff(&w, body)
	var d BitDestuffer
	d.Feed(w.Bytes())
	if len(d.Frames) != 1 || !bytes.Equal(d.Frames[0], body) {
		t.Fatalf("frames = % x", d.Frames)
	}
}

func TestBitRoundTripProperty(t *testing.T) {
	f := func(body []byte) bool {
		if len(body) == 0 {
			return true
		}
		var w BitWriter
		BitStuff(&w, body)
		var d BitDestuffer
		d.Feed(w.Bytes())
		return len(d.Frames) == 1 && bytes.Equal(d.Frames[0], body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitMultiFrameStream(t *testing.T) {
	bodies := [][]byte{
		{0x01},
		bytes.Repeat([]byte{0xFF}, 5),
		{0x7E, 0x7D, 0xAA},
	}
	var w BitWriter
	for _, b := range bodies {
		BitStuff(&w, b)
	}
	var d BitDestuffer
	d.Feed(w.Bytes())
	if len(d.Frames) != len(bodies) {
		t.Fatalf("got %d frames, want %d", len(d.Frames), len(bodies))
	}
	for i := range bodies {
		if !bytes.Equal(d.Frames[i], bodies[i]) {
			t.Errorf("frame %d: % x", i, d.Frames[i])
		}
	}
}

func TestBitDestufferChunking(t *testing.T) {
	body := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xFF, 0xFF}
	var w BitWriter
	BitStuff(&w, body)
	stream := w.Bytes()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		var d BitDestuffer
		for off := 0; off < len(stream); {
			n := 1 + rng.Intn(3)
			if off+n > len(stream) {
				n = len(stream) - off
			}
			d.Feed(stream[off : off+n])
			off += n
		}
		if len(d.Frames) != 1 || !bytes.Equal(d.Frames[0], body) {
			t.Fatalf("trial %d: frames = % x", trial, d.Frames)
		}
	}
}

func TestBitAbortSequence(t *testing.T) {
	// Open a frame, push some bits, then hold the line at 1 (idle):
	// seven+ ones abort the frame.
	var d BitDestuffer
	var w BitWriter
	writeFlag(&w)
	for i := 0; i < 8; i++ {
		w.WriteBit(0) // one data octet's worth of zeros
	}
	for i := 0; i < 10; i++ {
		w.WriteBit(1) // abort
	}
	d.Feed(w.Bytes())
	if len(d.Frames) != 0 {
		t.Errorf("aborted frame delivered: % x", d.Frames)
	}
	if d.Aborts != 1 {
		t.Errorf("Aborts = %d", d.Aborts)
	}
}

func TestBitIdleBetweenFrames(t *testing.T) {
	// Inter-frame idle (all ones) then a valid frame.
	var w BitWriter
	for i := 0; i < 24; i++ {
		w.WriteBit(1)
	}
	BitStuff(&w, []byte{0x42})
	var d BitDestuffer
	d.Feed(w.Bytes())
	if len(d.Frames) != 1 || d.Frames[0][0] != 0x42 {
		t.Fatalf("frames = % x", d.Frames)
	}
}

func TestBitSharedFlag(t *testing.T) {
	// Two frames sharing a single flag between them.
	var w BitWriter
	writeFlag(&w)
	stuffBody := func(body []byte) {
		run := 0
		for _, octet := range body {
			for i := 0; i < 8; i++ {
				bit := octet >> uint(i) & 1
				w.WriteBit(bit)
				if bit == 1 {
					run++
					if run == 5 {
						w.WriteBit(0)
						run = 0
					}
				} else {
					run = 0
				}
			}
		}
	}
	stuffBody([]byte{0x11})
	writeFlag(&w) // shared
	stuffBody([]byte{0x22})
	writeFlag(&w)
	var d BitDestuffer
	d.Feed(w.Bytes())
	if len(d.Frames) != 2 || d.Frames[0][0] != 0x11 || d.Frames[1][0] != 0x22 {
		t.Fatalf("frames = % x", d.Frames)
	}
}

func TestBitTransparencyEquivalence(t *testing.T) {
	// Property: bit-stuffed and octet-stuffed transparency both carry
	// any FCS-sealed frame body intact — the two RFC 1662 modes agree.
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		// Octet path.
		enc := Encode(nil, payload, ACCMNone, false)
		var tk Tokenizer
		toks := tk.Feed(nil, enc)
		if len(toks) != 1 || !bytes.Equal(toks[0].Body, payload) {
			return false
		}
		// Bit path.
		var w BitWriter
		BitStuff(&w, payload)
		var d BitDestuffer
		d.Feed(w.Bytes())
		return len(d.Frames) == 1 && bytes.Equal(d.Frames[0], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
