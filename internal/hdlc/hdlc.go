package hdlc

// Framing constants (RFC 1662 §4).
const (
	Flag   = 0x7E // frame delimiter
	Escape = 0x7D // control escape
	XorBit = 0x20 // bit 6 complemented on escaped octets
)

// ACCM is the Async-Control-Character-Map (RFC 1662 §7.1): bit n set means
// the control character with value n (0..31) must be escaped on
// transmission. Flag and Escape themselves are always escaped regardless
// of the map. The default for async links maps all 32 control characters;
// octet-synchronous links such as SONET (RFC 1619) negotiate 0.
type ACCM uint32

// Default ACCMs.
const (
	ACCMAll  ACCM = 0xFFFFFFFF // escape every control character (async default)
	ACCMNone ACCM = 0x00000000 // escape only Flag/Escape (SONET/SDH default)
)

// Escaped reports whether octet b must be escaped under the map.
func (m ACCM) Escaped(b byte) bool {
	if b == Flag || b == Escape {
		return true
	}
	return b < 0x20 && m&(1<<uint(b)) != 0
}

// Count returns how many of the octets in p must be escaped — the
// escape density the P5 byte sorter is sensitive to.
func (m ACCM) Count(p []byte) int {
	n := 0
	for _, b := range p {
		if m.Escaped(b) {
			n++
		}
	}
	return n
}

// Stuff appends the octet-stuffed encoding of src to dst and returns the
// extended slice. It processes one byte per iteration — the software
// analog of the 8-bit P5 Escape Generate unit, where a detected flag
// "halts the input data for 1 clock cycle while ... an extra byte is
// inserted".
func Stuff(dst, src []byte, m ACCM) []byte {
	for _, b := range src {
		if m.Escaped(b) {
			dst = append(dst, Escape, b^XorBit)
		} else {
			dst = append(dst, b)
		}
	}
	return dst
}

// StuffedLen returns the exact encoded length of src under map m without
// allocating.
func StuffedLen(src []byte, m ACCM) int {
	return len(src) + m.Count(src)
}

// Destuff appends the decoded form of a stuffed byte sequence to dst.
// esc carries the escape-pending state across calls (streaming); pass
// false initially and thread the returned value through subsequent calls.
// A Flag octet must not appear in src (tokenize first); abort detection
// lives in the Tokenizer.
func Destuff(dst, src []byte, esc bool) ([]byte, bool) {
	for _, b := range src {
		if esc {
			dst = append(dst, b^XorBit)
			esc = false
		} else if b == Escape {
			esc = true
		} else {
			dst = append(dst, b)
		}
	}
	return dst, esc
}
