package hdlc

// ReferenceTokenizer is the retained byte-at-a-time frame delineator: the
// pre-fusion Tokenizer.Feed loop, kept as the differential-fuzz model for
// the span-based fused kernel (FuzzFusedDecode). It shares the Tokenizer
// state machine, push and closeFrame — so the CRC fold goes through the
// per-octet table path where the fused kernel uses span slicing, making
// the two genuinely independent where it matters — and must produce an
// identical token sequence (bodies, errors, FCS verdicts, counters) for
// any input under any chunking.
type ReferenceTokenizer struct {
	Tokenizer
}

// Feed consumes raw stream octets one at a time, appending any complete
// frame tokens to out. Same contract as Tokenizer.Feed.
func (t *ReferenceTokenizer) Feed(out []Token, chunk []byte) []Token {
	if t.start > 0 {
		n := copy(t.arena, t.arena[t.start:])
		t.arena = t.arena[:n]
		t.start = 0
	}
	for _, b := range chunk {
		switch {
		case b == Flag:
			out = t.closeFrame(out)
		case !t.inFrame:
			// Hunting: ignore inter-frame fill.
		case t.drop:
			// Discarding an oversize frame.
		case t.esc:
			t.esc = false
			t.push(b ^ XorBit)
		case b == Escape:
			t.esc = true
		default:
			t.push(b)
		}
	}
	return out
}
