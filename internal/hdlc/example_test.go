package hdlc_test

import (
	"fmt"

	"repro/internal/hdlc"
)

// Octet stuffing escapes flags inside the payload — the paper's §2
// example.
func ExampleStuff() {
	out := hdlc.Stuff(nil, []byte{0x31, 0x33, 0x7E, 0x96}, hdlc.ACCMNone)
	fmt.Printf("% X\n", out)
	// Output:
	// 31 33 7D 5E 96
}

// The tokenizer recovers frames from a raw line stream across arbitrary
// chunk boundaries.
func ExampleTokenizer() {
	wire := hdlc.Encode(nil, []byte("hi"), hdlc.ACCMNone, false)
	wire = hdlc.Encode(wire, []byte{0x7E}, hdlc.ACCMNone, true)
	var tk hdlc.Tokenizer
	for _, tok := range tk.Feed(nil, wire) {
		fmt.Printf("% X\n", tok.Body)
	}
	// Output:
	// 68 69
	// 7E
}
