// Package hdlc implements HDLC-like framing for PPP (RFC 1662): flag
// delimiting, octet stuffing/destuffing, async-control-character maps,
// and a streaming frame tokenizer.
//
// Two stuffing code paths are provided deliberately:
//
//   - the byte-at-a-time path (Stuff/Destuff), the software mirror of the
//     paper's 8-bit P5 datapath, and
//   - the word-parallel SWAR path (StuffWord/words scanning 8 lanes per
//     step), the software mirror of the 32-bit P5 datapath where a flag
//     or escape can appear in any lane of the word.
//
// Both produce identical byte streams; the P5 cycle-accurate model in
// internal/p5 is verified against them.
package hdlc
