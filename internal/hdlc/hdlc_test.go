package hdlc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStuffPaperExample(t *testing.T) {
	// Paper §2: 0x31 0x33 0x7E 0x96 → 0x31 0x33 0x7D 0x5E 0x96.
	got := Stuff(nil, []byte{0x31, 0x33, 0x7E, 0x96}, ACCMNone)
	want := []byte{0x31, 0x33, 0x7D, 0x5E, 0x96}
	if !bytes.Equal(got, want) {
		t.Errorf("Stuff = % x, want % x", got, want)
	}
}

func TestStuffEscapesEscape(t *testing.T) {
	got := Stuff(nil, []byte{0x7D}, ACCMNone)
	want := []byte{0x7D, 0x5D}
	if !bytes.Equal(got, want) {
		t.Errorf("Stuff(7D) = % x, want % x", got, want)
	}
}

func TestACCMEscaped(t *testing.T) {
	if !ACCMNone.Escaped(Flag) || !ACCMNone.Escaped(Escape) {
		t.Error("flag/escape must always be escaped")
	}
	if ACCMNone.Escaped(0x03) {
		t.Error("ACCMNone must not escape control chars")
	}
	if !ACCMAll.Escaped(0x03) || !ACCMAll.Escaped(0x1F) {
		t.Error("ACCMAll must escape all control chars")
	}
	if ACCMAll.Escaped(0x20) {
		t.Error("0x20 is not a control char")
	}
	m := ACCM(1 << 0x11) // only XON-ish char 0x11
	if !m.Escaped(0x11) || m.Escaped(0x13) {
		t.Error("selective ACCM mapping wrong")
	}
}

func TestStuffDestuffRoundTrip(t *testing.T) {
	f := func(p []byte, m uint32) bool {
		accm := ACCM(m)
		enc := Stuff(nil, p, accm)
		dec, esc := Destuff(nil, enc, false)
		return !esc && bytes.Equal(dec, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSWARMatchesByteAtATime(t *testing.T) {
	f := func(p []byte, m uint32) bool {
		accm := ACCM(m)
		return bytes.Equal(Stuff(nil, p, accm), StuffSWAR(nil, p, accm))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestuffSWARMatches(t *testing.T) {
	f := func(p []byte) bool {
		enc := Stuff(nil, p, ACCMAll)
		a, ea := Destuff(nil, enc, false)
		b, eb := DestuffSWAR(nil, enc, false)
		return ea == eb && bytes.Equal(a, b) && bytes.Equal(a, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestuffSWARChunked(t *testing.T) {
	// Streaming state must survive arbitrary chunk splits, including a
	// split straight through an escape sequence.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		p := make([]byte, 1+rng.Intn(200))
		for i := range p {
			// Bias toward escapes and flags.
			switch rng.Intn(3) {
			case 0:
				p[i] = Flag
			case 1:
				p[i] = Escape
			default:
				p[i] = byte(rng.Intn(256))
			}
		}
		enc := Stuff(nil, p, ACCMNone)
		var dec []byte
		esc := false
		for off := 0; off < len(enc); {
			n := 1 + rng.Intn(9)
			if off+n > len(enc) {
				n = len(enc) - off
			}
			dec, esc = DestuffSWAR(dec, enc[off:off+n], esc)
			off += n
		}
		if esc || !bytes.Equal(dec, p) {
			t.Fatalf("trial %d: chunked destuff mismatch", trial)
		}
	}
}

func TestStuffedLen(t *testing.T) {
	f := func(p []byte, m uint32) bool {
		accm := ACCM(m)
		return StuffedLen(p, accm) == len(Stuff(nil, p, accm))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFindFlagSWAR(t *testing.T) {
	for _, tc := range []struct {
		p    []byte
		want int
	}{
		{nil, -1},
		{[]byte{0x7E}, 0},
		{[]byte{0, 0, 0, 0, 0, 0, 0, 0x7E}, 7},
		{[]byte{0, 0, 0, 0, 0, 0, 0, 0, 0x7E}, 8},
		{bytes.Repeat([]byte{0xAA}, 100), -1},
		{append(bytes.Repeat([]byte{0xAA}, 37), 0x7E), 37},
	} {
		if got := FindFlagSWAR(tc.p); got != tc.want {
			t.Errorf("FindFlagSWAR(% x) = %d, want %d", tc.p, got, tc.want)
		}
	}
	f := func(p []byte) bool {
		return FindFlagSWAR(p) == bytes.IndexByte(p, Flag)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizerBasic(t *testing.T) {
	var tk Tokenizer
	stream := Encode(nil, []byte{1, 2, 3}, ACCMNone, false)
	stream = Encode(stream, []byte{0x7E, 0x7D, 4}, ACCMNone, true)
	toks := tk.Feed(nil, stream)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2", len(toks))
	}
	if !bytes.Equal(toks[0].Body, []byte{1, 2, 3}) {
		t.Errorf("frame 0 = % x", toks[0].Body)
	}
	if !bytes.Equal(toks[1].Body, []byte{0x7E, 0x7D, 4}) {
		t.Errorf("frame 1 = % x", toks[1].Body)
	}
	if tk.Frames != 2 {
		t.Errorf("Frames = %d", tk.Frames)
	}
}

func TestTokenizerSplitAcrossFeeds(t *testing.T) {
	stream := Encode(nil, bytes.Repeat([]byte{0x7E, 0x55}, 50), ACCMNone, false)
	for chunk := 1; chunk <= 7; chunk++ {
		var tk Tokenizer
		var toks []Token
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			toks = tk.Feed(toks, stream[off:end])
		}
		if len(toks) != 1 || toks[0].Err != nil {
			t.Fatalf("chunk %d: tokens %v", chunk, toks)
		}
		if !bytes.Equal(toks[0].Body, bytes.Repeat([]byte{0x7E, 0x55}, 50)) {
			t.Fatalf("chunk %d: body mismatch", chunk)
		}
	}
}

func TestTokenizerAbort(t *testing.T) {
	var tk Tokenizer
	stream := []byte{Flag, 1, 2, Escape, Flag, 3, 4, Flag}
	toks := tk.Feed(nil, stream)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2: %v", len(toks), toks)
	}
	if toks[0].Err != ErrAborted {
		t.Errorf("token 0 err = %v, want ErrAborted", toks[0].Err)
	}
	if toks[1].Err != nil || !bytes.Equal(toks[1].Body, []byte{3, 4}) {
		t.Errorf("token 1 = %+v", toks[1])
	}
	if tk.Aborts != 1 {
		t.Errorf("Aborts = %d", tk.Aborts)
	}
}

func TestTokenizerRunt(t *testing.T) {
	tk := Tokenizer{MinFrame: 5}
	toks := tk.Feed(nil, []byte{Flag, 1, 2, Flag, 1, 2, 3, 4, 5, Flag})
	if len(toks) != 2 || toks[0].Err != ErrRunt || toks[1].Err != nil {
		t.Fatalf("tokens = %+v", toks)
	}
	if tk.Runts != 1 {
		t.Errorf("Runts = %d", tk.Runts)
	}
}

func TestTokenizerOversize(t *testing.T) {
	tk := Tokenizer{MaxFrame: 10}
	body := bytes.Repeat([]byte{0x42}, 100)
	stream := Encode(nil, body, ACCMNone, false)
	stream = Encode(stream, []byte{1, 2, 3, 4, 5}, ACCMNone, true)
	toks := tk.Feed(nil, stream)
	if len(toks) != 2 || toks[0].Err != ErrOversize || toks[1].Err != nil {
		t.Fatalf("tokens = %+v", toks)
	}
	if tk.Oversize != 1 {
		t.Errorf("Oversize = %d", tk.Oversize)
	}
}

func TestTokenizerIgnoresInterFrameFill(t *testing.T) {
	var tk Tokenizer
	// Garbage before the first flag must be discarded silently.
	toks := tk.Feed(nil, []byte{0xAA, 0xBB, Flag, 1, 2, 3, Flag})
	if len(toks) != 1 || toks[0].Err != nil || !bytes.Equal(toks[0].Body, []byte{1, 2, 3}) {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestTokenizerBackToBackFlags(t *testing.T) {
	var tk Tokenizer
	toks := tk.Feed(nil, []byte{Flag, Flag, Flag, 1, 2, Flag, Flag})
	if len(toks) != 1 || !bytes.Equal(toks[0].Body, []byte{1, 2}) {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestTokenizerReset(t *testing.T) {
	var tk Tokenizer
	tk.Feed(nil, []byte{Flag, 1, 2})
	tk.Reset()
	toks := tk.Feed(nil, []byte{3, 4, Flag}) // pre-flag garbage post reset
	if len(toks) != 0 {
		t.Fatalf("tokens after reset = %+v", toks)
	}
	toks = tk.Feed(nil, []byte{5, 6, Flag})
	if len(toks) != 1 || !bytes.Equal(toks[0].Body, []byte{5, 6}) {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestEncodeSharedFlag(t *testing.T) {
	s := Encode(nil, []byte{1}, ACCMNone, false)
	s2 := Encode(s, []byte{2}, ACCMNone, true)
	// Shared flag: exactly one flag between the frames.
	want := []byte{Flag, 1, Flag, 2, Flag}
	if !bytes.Equal(s2, want) {
		t.Errorf("shared-flag stream = % x, want % x", s2, want)
	}
	s3 := Encode(s, []byte{2}, ACCMNone, false)
	want3 := []byte{Flag, 1, Flag, Flag, 2, Flag}
	if !bytes.Equal(s3, want3) {
		t.Errorf("unshared stream = % x, want % x", s3, want3)
	}
}

func TestEncodeTokenizeRoundTripProperty(t *testing.T) {
	f := func(frames [][]byte, share bool) bool {
		var stream []byte
		var want [][]byte
		for _, fr := range frames {
			if len(fr) == 0 {
				continue // empty bodies produce no token
			}
			stream = Encode(stream, fr, ACCMNone, share)
			want = append(want, fr)
		}
		var tk Tokenizer
		toks := tk.Feed(nil, stream)
		if len(toks) != len(want) {
			return false
		}
		for i := range toks {
			if toks[i].Err != nil || !bytes.Equal(toks[i].Body, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAbortHelper(t *testing.T) {
	var tk Tokenizer
	stream := append([]byte{Flag, 1, 2}, Abort(nil)...)
	toks := tk.Feed(nil, stream)
	if len(toks) != 1 || toks[0].Err != ErrAborted {
		t.Fatalf("tokens = %+v", toks)
	}
}

func makePayload(n int, escFrac float64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	p := make([]byte, n)
	for i := range p {
		if rng.Float64() < escFrac {
			if rng.Intn(2) == 0 {
				p[i] = Flag
			} else {
				p[i] = Escape
			}
		} else {
			p[i] = 0x20 + byte(rng.Intn(0x5D)) // never needs escaping
		}
	}
	return p
}

func BenchmarkStuffByte(b *testing.B) {
	p := makePayload(1500, 0.01, 1)
	dst := make([]byte, 0, 4096)
	b.SetBytes(int64(len(p)))
	for i := 0; i < b.N; i++ {
		dst = Stuff(dst[:0], p, ACCMNone)
	}
}

func BenchmarkStuffSWAR(b *testing.B) {
	p := makePayload(1500, 0.01, 1)
	dst := make([]byte, 0, 4096)
	b.SetBytes(int64(len(p)))
	for i := 0; i < b.N; i++ {
		dst = StuffSWAR(dst[:0], p, ACCMNone)
	}
}

func BenchmarkDestuffSWAR(b *testing.B) {
	p := makePayload(1500, 0.01, 1)
	enc := Stuff(nil, p, ACCMNone)
	dst := make([]byte, 0, 4096)
	b.SetBytes(int64(len(p)))
	for i := 0; i < b.N; i++ {
		dst, _ = DestuffSWAR(dst[:0], enc, false)
	}
}
