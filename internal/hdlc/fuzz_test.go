package hdlc

import (
	"bytes"
	"testing"
)

// FuzzTokenizer feeds arbitrary line bytes; the tokenizer must never
// panic, and every token body must re-encode to a stream that yields
// the same body back.
func FuzzTokenizer(f *testing.F) {
	f.Add([]byte{0x7E, 1, 2, 3, 0x7E})
	f.Add([]byte{0x7E, 0x7D, 0x5E, 0x7E})
	f.Add([]byte{0x7D, 0x7E})
	f.Add(bytes.Repeat([]byte{0x7E}, 32))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, stream []byte) {
		var tk Tokenizer
		toks := tk.Feed(nil, stream)
		for _, tok := range toks {
			if tok.Err != nil {
				continue
			}
			re := Encode(nil, tok.Body, ACCMNone, false)
			var tk2 Tokenizer
			toks2 := tk2.Feed(nil, re)
			if len(toks2) != 1 || toks2[0].Err != nil || !bytes.Equal(toks2[0].Body, tok.Body) {
				t.Fatalf("re-encode mismatch for body % x", tok.Body)
			}
		}
	})
}

// FuzzDestuffConsistency: byte-serial and SWAR destuffing must agree on
// any input, chunked anywhere.
func FuzzDestuffConsistency(f *testing.F) {
	f.Add([]byte{0x7D, 0x5E, 0x11}, 1)
	f.Add([]byte{0x7D}, 3)
	f.Add(bytes.Repeat([]byte{0x7D, 0x5D}, 9), 5)
	f.Fuzz(func(t *testing.T, src []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		a, ea := Destuff(nil, src, false)
		var b []byte
		eb := false
		for off := 0; off < len(src); off += chunk {
			end := off + chunk
			if end > len(src) {
				end = len(src)
			}
			b, eb = DestuffSWAR(b, src[off:end], eb)
		}
		if ea != eb || !bytes.Equal(a, b) {
			t.Fatalf("destuff divergence on % x (chunk %d)", src, chunk)
		}
	})
}

// FuzzBitDestuffer must never panic and must round-trip everything the
// stuffer produces.
func FuzzBitDestuffer(f *testing.F) {
	f.Add([]byte{0xFF, 0xFF}, []byte{0x01})
	f.Add([]byte{}, []byte{0x7E, 0x7E})
	f.Fuzz(func(t *testing.T, noise, body []byte) {
		var d BitDestuffer
		d.Feed(noise) // arbitrary garbage must be survivable
		if len(body) == 0 {
			return
		}
		var w BitWriter
		BitStuff(&w, body)
		d.Feed(w.Bytes())
		if len(d.Frames) == 0 {
			return // noise may have left us mid-"frame"; legal
		}
		last := d.Frames[len(d.Frames)-1]
		if !bytes.Equal(last, body) {
			// The frame may have absorbed noise prefix bits only if
			// the noise ended inside a fake frame; in that case the
			// NEXT frame must match. Accept either.
			found := false
			for _, fr := range d.Frames {
				if bytes.Equal(fr, body) {
					found = true
				}
			}
			if !found {
				t.Fatalf("stuffed body % x not recovered (frames % x)", body, d.Frames)
			}
		}
	})
}
