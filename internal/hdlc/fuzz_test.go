package hdlc

import (
	"bytes"
	"testing"

	"repro/internal/crc"
)

// FuzzTokenizer feeds arbitrary line bytes; the tokenizer must never
// panic, and every token body must re-encode to a stream that yields
// the same body back.
func FuzzTokenizer(f *testing.F) {
	f.Add([]byte{0x7E, 1, 2, 3, 0x7E})
	f.Add([]byte{0x7E, 0x7D, 0x5E, 0x7E})
	f.Add([]byte{0x7D, 0x7E})
	f.Add(bytes.Repeat([]byte{0x7E}, 32))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, stream []byte) {
		var tk Tokenizer
		toks := tk.Feed(nil, stream)
		for _, tok := range toks {
			if tok.Err != nil {
				continue
			}
			re := Encode(nil, tok.Body, ACCMNone, false)
			var tk2 Tokenizer
			toks2 := tk2.Feed(nil, re)
			if len(toks2) != 1 || toks2[0].Err != nil || !bytes.Equal(toks2[0].Body, tok.Body) {
				t.Fatalf("re-encode mismatch for body % x", tok.Body)
			}
		}
	})
}

// FuzzFusedDecode is the receive-side differential fuzzer, the twin of
// ppp.FuzzFusedEncode: the fused span-scanning destuff+CRC Tokenizer and
// the retained byte-at-a-time ReferenceTokenizer must produce identical
// token sequences — bodies, errors, fused FCS verdicts — and identical
// OAM counters for any wire bytes, any chunk split, and any FCS mode.
func FuzzFusedDecode(f *testing.F) {
	good := crc.FCS32Mode.Append([]byte{0xFF, 0x03, 0x00, 0x21, 1, 2, 3})
	f.Add(Encode(nil, good, ACCMNone, false), 3, byte(2))
	f.Add(bytes.Repeat([]byte{0x7D}, 48), 1, byte(1))             // all-escape
	f.Add(bytes.Repeat([]byte{0x7E}, 48), 5, byte(2))             // flag-storm
	f.Add([]byte{0x7E, 0x7D, 0x7E, 0x7E, 0x01, 0x7E}, 2, byte(0)) // abort, runt
	f.Add([]byte{0x7E, 1, 2, 3}, 1, byte(3))                      // unterminated
	f.Fuzz(func(t *testing.T, stream []byte, chunk int, mode byte) {
		if chunk <= 0 {
			chunk = 1
		}
		var cfg Tokenizer
		switch mode & 3 {
		case 1:
			cfg.FCS = crc.FCS16Mode
		case 2, 3:
			cfg.FCS = crc.FCS32Mode
		}
		if mode&4 != 0 {
			cfg.MinFrame = 5
		}
		if mode&8 != 0 {
			cfg.MaxFrame = 40
		}
		fused := cfg
		ref := ReferenceTokenizer{Tokenizer: cfg}

		type rec struct {
			body  []byte
			err   error
			fcsOK bool
		}
		var got, want []rec
		var toks []Token
		// Fused tokenizer sees the fuzzer's chunking; the reference sees
		// the whole stream at once. Token sequences must not depend on
		// where chunks split (bodies are copied out before the arena is
		// recycled by the next Feed).
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			toks = fused.Feed(toks[:0], stream[off:end])
			for _, tok := range toks {
				got = append(got, rec{bytes.Clone(tok.Body), tok.Err, tok.FCSOK})
			}
		}
		for _, tok := range ref.Feed(nil, stream) {
			want = append(want, rec{bytes.Clone(tok.Body), tok.Err, tok.FCSOK})
		}

		if len(got) != len(want) {
			t.Fatalf("token count divergence: fused %d, reference %d", len(got), len(want))
		}
		for i := range got {
			if got[i].err != want[i].err || got[i].fcsOK != want[i].fcsOK ||
				!bytes.Equal(got[i].body, want[i].body) {
				t.Fatalf("token %d divergence: fused {% x %v %v}, reference {% x %v %v}",
					i, got[i].body, got[i].err, got[i].fcsOK,
					want[i].body, want[i].err, want[i].fcsOK)
			}
			if got[i].err == nil && cfg.FCS != 0 {
				if check := cfg.FCS.Check(got[i].body); check != got[i].fcsOK {
					t.Fatalf("token %d fused verdict %v contradicts two-pass Check %v for % x",
						i, got[i].fcsOK, check, got[i].body)
				}
			}
		}
		if fused.Frames != ref.Frames || fused.Aborts != ref.Aborts ||
			fused.Runts != ref.Runts || fused.Oversize != ref.Oversize {
			t.Fatalf("counter divergence: fused %d/%d/%d/%d, reference %d/%d/%d/%d",
				fused.Frames, fused.Aborts, fused.Runts, fused.Oversize,
				ref.Frames, ref.Aborts, ref.Runts, ref.Oversize)
		}
	})
}

// FuzzDestuffConsistency: byte-serial and SWAR destuffing must agree on
// any input, chunked anywhere.
func FuzzDestuffConsistency(f *testing.F) {
	f.Add([]byte{0x7D, 0x5E, 0x11}, 1)
	f.Add([]byte{0x7D}, 3)
	f.Add(bytes.Repeat([]byte{0x7D, 0x5D}, 9), 5)
	f.Fuzz(func(t *testing.T, src []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		a, ea := Destuff(nil, src, false)
		var b []byte
		eb := false
		for off := 0; off < len(src); off += chunk {
			end := off + chunk
			if end > len(src) {
				end = len(src)
			}
			b, eb = DestuffSWAR(b, src[off:end], eb)
		}
		if ea != eb || !bytes.Equal(a, b) {
			t.Fatalf("destuff divergence on % x (chunk %d)", src, chunk)
		}
	})
}

// FuzzBitDestuffer must never panic and must round-trip everything the
// stuffer produces.
func FuzzBitDestuffer(f *testing.F) {
	f.Add([]byte{0xFF, 0xFF}, []byte{0x01})
	f.Add([]byte{}, []byte{0x7E, 0x7E})
	f.Fuzz(func(t *testing.T, noise, body []byte) {
		var d BitDestuffer
		d.Feed(noise) // arbitrary garbage must be survivable
		if len(body) == 0 {
			return
		}
		var w BitWriter
		BitStuff(&w, body)
		d.Feed(w.Bytes())
		if len(d.Frames) == 0 {
			return // noise may have left us mid-"frame"; legal
		}
		last := d.Frames[len(d.Frames)-1]
		if !bytes.Equal(last, body) {
			// The frame may have absorbed noise prefix bits only if
			// the noise ended inside a fake frame; in that case the
			// NEXT frame must match. Accept either.
			found := false
			for _, fr := range d.Frames {
				if bytes.Equal(fr, body) {
					found = true
				}
			}
			if !found {
				t.Fatalf("stuffed body % x not recovered (frames % x)", body, d.Frames)
			}
		}
	})
}
