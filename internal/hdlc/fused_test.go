package hdlc

import (
	"bytes"
	"testing"

	"repro/internal/crc"
)

func TestDelimiterSpan(t *testing.T) {
	cases := []struct {
		in   []byte
		want int
	}{
		{nil, 0},
		{[]byte{0x7E}, 0},
		{[]byte{0x7D}, 0},
		{[]byte{1, 2, 3}, 3},
		{[]byte{1, 2, 0x7E, 4}, 2},
		{[]byte{1, 2, 0x7D, 4}, 2},
		{append(bytes.Repeat([]byte{0x55}, 16), 0x7E), 16},
		{append(bytes.Repeat([]byte{0x55}, 11), 0x7D, 0x7E), 11},
		{bytes.Repeat([]byte{0x55}, 23), 23},
	}
	for _, c := range cases {
		if got := DelimiterSpan(c.in); got != c.want {
			t.Errorf("DelimiterSpan(% x) = %d, want %d", c.in, got, c.want)
		}
	}
	// Exhaustive single-delimiter positions across word boundaries.
	for pos := 0; pos < 40; pos++ {
		for _, d := range []byte{Flag, Escape} {
			in := bytes.Repeat([]byte{0xAA}, 40)
			in[pos] = d
			if got := DelimiterSpan(in); got != pos {
				t.Fatalf("DelimiterSpan with %#02x at %d = %d", d, pos, got)
			}
		}
	}
}

// TestTokenizerFusedFCS pins the fused frame-check verdict: intact frames
// carry FCSOK=true, any corruption or an unarmed tokenizer yields false,
// and the streaming register resets across frames, aborts and chunk
// splits.
func TestTokenizerFusedFCS(t *testing.T) {
	for _, mode := range []crc.Size{crc.FCS16Mode, crc.FCS32Mode} {
		body := mode.Append([]byte{0xFF, 0x03, 0x00, 0x21, 0x7E, 0x7D, 9})
		wire := Encode(nil, body, ACCMNone, false)

		tk := Tokenizer{FCS: mode}
		toks := tk.Feed(nil, wire)
		if len(toks) != 1 || toks[0].Err != nil {
			t.Fatalf("%v: got %+v", mode, toks)
		}
		if !toks[0].FCSOK {
			t.Fatalf("%v: intact frame has FCSOK=false", mode)
		}
		if !bytes.Equal(toks[0].Body, body) {
			t.Fatalf("%v: body % x, want % x", mode, toks[0].Body, body)
		}

		// Same wire bytes, byte-at-a-time chunks: the register must
		// survive arbitrary splits.
		tk = Tokenizer{FCS: mode}
		toks = toks[:0]
		for _, b := range wire {
			toks = tk.Feed(toks, []byte{b})
		}
		if len(toks) != 1 || !toks[0].FCSOK {
			t.Fatalf("%v: chunked feed lost the verdict: %+v", mode, toks)
		}

		// Corrupt one payload byte (avoiding delimiter octets).
		badBody := bytes.Clone(body)
		badBody[6] ^= 0x01
		bad := Encode(nil, badBody, ACCMNone, false)
		tk = Tokenizer{FCS: mode}
		toks = tk.Feed(toks[:0], bad)
		if len(toks) != 1 || toks[0].Err != nil || toks[0].FCSOK {
			t.Fatalf("%v: corrupted frame not flagged: %+v", mode, toks)
		}

		// A bad frame must not poison the next frame's register: abort,
		// then the intact frame again.
		tk = Tokenizer{FCS: mode}
		stream := append([]byte{0x7E, 1, 2, 0x7D, 0x7E}, wire...)
		toks = tk.Feed(toks[:0], stream)
		if len(toks) != 2 || toks[0].Err != ErrAborted || toks[1].Err != nil || !toks[1].FCSOK {
			t.Fatalf("%v: verdict after abort wrong: %+v", mode, toks)
		}
	}

	// Unarmed tokenizer: verdict stays false, everything else unchanged.
	body := crc.FCS32Mode.Append([]byte{0xFF, 0x03, 0x00, 0x21, 9})
	var tk Tokenizer
	toks := tk.Feed(nil, Encode(nil, body, ACCMNone, false))
	if len(toks) != 1 || toks[0].Err != nil || toks[0].FCSOK {
		t.Fatalf("unarmed tokenizer: %+v", toks)
	}
}
