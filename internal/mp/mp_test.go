package mp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFragmentCodec(t *testing.T) {
	for _, format := range []SeqFormat{LongSeq, ShortSeq} {
		f := func(begin, end bool, seq uint32, data []byte) bool {
			fr := Fragment{Begin: begin, End: end, Seq: seq & format.Mask(), Data: data}
			got, err := Parse(fr.Marshal(nil, format), format)
			if err != nil {
				return false
			}
			return got.Begin == fr.Begin && got.End == fr.End &&
				got.Seq == fr.Seq && bytes.Equal(got.Data, fr.Data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("format %v: %v", format, err)
		}
	}
	if _, err := Parse([]byte{0x80}, LongSeq); err != ErrShortFragment {
		t.Error("short fragment accepted")
	}
}

func TestSeqLess(t *testing.T) {
	if !seqLess(1, 2, 0xFFF) || seqLess(2, 1, 0xFFF) || seqLess(5, 5, 0xFFF) {
		t.Error("basic ordering")
	}
	// Wraparound: 0xFFE < 0x001 modulo 12 bits.
	if !seqLess(0xFFE, 0x001, 0xFFF) {
		t.Error("wraparound ordering")
	}
}

// bundle wires a sender to a receiver over n in-order member links with
// controllable interleaving.
type bundle struct {
	s     *Sender
	r     *Receiver
	links [][][]byte // per-link queues of fragments
	got   [][]byte
}

func newBundle(n int, format SeqFormat, maxFrag int) *bundle {
	b := &bundle{links: make([][][]byte, n)}
	b.s = &Sender{Format: format, MaxFrag: maxFrag}
	for i := 0; i < n; i++ {
		i := i
		b.s.Links = append(b.s.Links, func(frag []byte) {
			b.links[i] = append(b.links[i], append([]byte(nil), frag...))
		})
	}
	b.r = &Receiver{Format: format, NLinks: n, Deliver: func(p []byte) {
		b.got = append(b.got, append([]byte(nil), p...))
	}}
	return b
}

// shuttle delivers queued fragments; order across links controlled by
// pick.
func (b *bundle) shuttle(pick func(nonEmpty []int) int) {
	for {
		var nonEmpty []int
		for i := range b.links {
			if len(b.links[i]) > 0 {
				nonEmpty = append(nonEmpty, i)
			}
		}
		if len(nonEmpty) == 0 {
			return
		}
		i := nonEmpty[pick(nonEmpty)]
		frag := b.links[i][0]
		b.links[i] = b.links[i][1:]
		b.r.Receive(i, frag)
	}
}

func roundRobin(nonEmpty []int) int { return 0 }

func TestSingleLinkReassembly(t *testing.T) {
	b := newBundle(1, LongSeq, 16)
	payload := bytes.Repeat([]byte{0xAB}, 100) // 7 fragments
	b.s.Send(payload)
	b.shuttle(roundRobin)
	if len(b.got) != 1 || !bytes.Equal(b.got[0], payload) {
		t.Fatalf("got %d packets", len(b.got))
	}
	if b.s.Fragments != 7 {
		t.Errorf("fragments = %d", b.s.Fragments)
	}
}

func TestMultiLinkInterleavedArrival(t *testing.T) {
	for _, format := range []SeqFormat{LongSeq, ShortSeq} {
		rng := rand.New(rand.NewSource(3))
		b := newBundle(4, format, 32)
		var want [][]byte
		for i := 0; i < 20; i++ {
			p := make([]byte, 10+rng.Intn(300))
			rng.Read(p)
			want = append(want, p)
			b.s.Send(p)
		}
		// Arbitrary cross-link interleaving (each link stays in order).
		b.shuttle(func(nonEmpty []int) int { return rng.Intn(len(nonEmpty)) })
		if len(b.got) != len(want) {
			t.Fatalf("format %v: delivered %d/%d", format, len(b.got), len(want))
		}
		for i := range want {
			if !bytes.Equal(b.got[i], want[i]) {
				t.Fatalf("format %v: packet %d mismatch", format, i)
			}
		}
	}
}

func TestTinyPacketsOneFragmentEach(t *testing.T) {
	b := newBundle(3, ShortSeq, 512)
	for i := 0; i < 9; i++ {
		b.s.Send([]byte{byte(i)})
	}
	b.shuttle(roundRobin)
	if len(b.got) != 9 {
		t.Fatalf("delivered %d", len(b.got))
	}
	for i, p := range b.got {
		if p[0] != byte(i) {
			t.Fatal("order broken")
		}
	}
	if b.s.Fragments != 9 {
		t.Errorf("fragments = %d (1 per packet expected)", b.s.Fragments)
	}
}

func TestLostFragmentDiscardsOnlyThatPacket(t *testing.T) {
	b := newBundle(2, LongSeq, 16)
	p1 := bytes.Repeat([]byte{1}, 40) // frags 0,1,2
	p2 := bytes.Repeat([]byte{2}, 40) // frags 3,4,5
	p3 := bytes.Repeat([]byte{3}, 40) // frags 6,7,8
	b.s.Send(p1)
	b.s.Send(p2)
	b.s.Send(p3)
	// Drop one mid fragment of p2 (seq 4, second fragment → link 0
	// queue position: round robin 0,1,0,1,... seq4 → link 0, index 2).
	b.links[0] = append(b.links[0][:2], b.links[0][3:]...)
	b.shuttle(roundRobin)
	// p1 delivered; p2 unresolvable until the gap is proven — feed
	// filler traffic to advance the window.
	for i := 0; i < 40; i++ {
		b.s.Send([]byte{9})
	}
	b.shuttle(roundRobin)
	if len(b.got) < 2 {
		t.Fatalf("delivered %d packets", len(b.got))
	}
	if !bytes.Equal(b.got[0], p1) {
		t.Error("p1 mangled")
	}
	for _, p := range b.got {
		if bytes.Equal(p, p2) {
			t.Fatal("p2 delivered despite losing a fragment")
		}
	}
	// p3 must be among the delivered packets.
	found := false
	for _, p := range b.got {
		if bytes.Equal(p, p3) {
			found = true
		}
	}
	if !found {
		t.Error("p3 lost along with p2")
	}
	if b.r.Lost == 0 {
		t.Error("loss not counted")
	}
}

func TestSequenceWraparoundShortFormat(t *testing.T) {
	b := newBundle(2, ShortSeq, 64)
	// Push enough packets to wrap the 12-bit space.
	rng := rand.New(rand.NewSource(8))
	total := 0
	for i := 0; i < 5000; i++ {
		p := make([]byte, 1+rng.Intn(100))
		rng.Read(p)
		b.s.Send(p)
		total++
		if i%50 == 0 {
			b.shuttle(roundRobin)
		}
	}
	b.shuttle(roundRobin)
	if len(b.got) != total {
		t.Fatalf("delivered %d/%d across wraparound", len(b.got), total)
	}
}

func TestReceiverIgnoresPreSyncMidFragments(t *testing.T) {
	r := &Receiver{Format: LongSeq, NLinks: 1}
	// A mid-packet fragment before any Begin: ignored, no panic.
	f := Fragment{Seq: 5, Data: []byte{1}}
	if err := r.Receive(0, f.Marshal(nil, LongSeq)); err != nil {
		t.Fatal(err)
	}
	if r.Delivered != 0 {
		t.Error("phantom delivery")
	}
}
