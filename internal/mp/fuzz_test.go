package mp

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
)

// FuzzBundleReassembly drives the RFC 1990 receiver two ways. First,
// raw fuzz input is fed straight in as a fragment — Parse and the
// reassembly core must reject or survive arbitrary bytes. Then the
// same input parameterises a structured scenario: packets carved from
// the fuzz data are fragmented across a bundle, member links deliver
// in order but with arbitrary cross-link interleaving and scripted
// per-fragment drops, and the invariants must hold — no panic, no
// wedged drain loop, every delivered datagram byte-identical to a sent
// one and in sending order, and the delivered/lost counters consistent
// with the packet count.
func FuzzBundleReassembly(f *testing.F) {
	f.Add(uint64(1), uint8(2), false, uint32(0), []byte("hello multilink bundle"))
	f.Add(uint64(7), uint8(3), true, uint32(0b1010), bytes.Repeat([]byte{0xAB}, 300))
	f.Add(uint64(9), uint8(1), false, uint32(0xFFFF), []byte{0x80, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, seed uint64, nLinks uint8, short bool, dropMask uint32, data []byte) {
		format := LongSeq
		if short {
			format = ShortSeq
		}

		// Phase 1: arbitrary bytes as a single fragment.
		hostile := &Receiver{Format: format, NLinks: 1}
		_ = hostile.Receive(0, data)

		// Phase 2: structured scenario. Cap the payload so the fragment
		// count stays well inside the 12-bit short-sequence space —
		// wrapping it mid-flight is a genuine protocol ambiguity, not a
		// receiver bug.
		if len(data) > 4096 {
			data = data[:4096]
		}
		links := int(nLinks)%4 + 1
		rng := netsim.NewRand(seed)

		// Carve packets out of the fuzz data.
		var packets [][]byte
		for rest := data; len(rest) > 0; {
			n := rng.Intn(64) + 1
			if n > len(rest) {
				n = len(rest)
			}
			packets = append(packets, rest[:n])
			rest = rest[n:]
		}
		if len(packets) == 0 {
			packets = [][]byte{{0x42}}
		}

		queues := make([][][]byte, links)
		s := &Sender{Format: format, MaxFrag: rng.Intn(14) + 3}
		for i := 0; i < links; i++ {
			link := i
			s.Links = append(s.Links, func(frag []byte) {
				queues[link] = append(queues[link], frag)
			})
		}
		for _, p := range packets {
			s.Send(p)
		}

		var delivered [][]byte
		r := &Receiver{
			Format: format, NLinks: links,
			Deliver: func(p []byte) { delivered = append(delivered, append([]byte(nil), p...)) },
		}

		// Deliver with arbitrary cross-link interleaving (in order per
		// link) and scripted drops from the mask.
		fragIdx := 0
		for {
			progressed := false
			for l := 0; l < links; l++ {
				burst := rng.Intn(3) + 1
				for k := 0; k < burst && len(queues[l]) > 0; k++ {
					raw := queues[l][0]
					queues[l] = queues[l][1:]
					progressed = true
					if dropMask>>(uint(fragIdx)%32)&1 == 0 {
						if err := r.Receive(l, raw); err != nil {
							t.Fatalf("well-formed fragment rejected: %v", err)
						}
					}
					fragIdx++
				}
			}
			if !progressed {
				break
			}
		}

		// Invariants.
		if r.Delivered+r.Lost > uint64(len(packets)) {
			t.Fatalf("delivered %d + lost %d > %d packets sent",
				r.Delivered, r.Lost, len(packets))
		}
		if got := uint64(len(delivered)); got != r.Delivered {
			t.Fatalf("Deliver ran %d times, counter says %d", got, r.Delivered)
		}
		// Delivered datagrams are an in-order subsequence of the sent
		// ones: reassembly may drop packets but never invent, corrupt,
		// or reorder them.
		si := 0
		for _, d := range delivered {
			for si < len(packets) && !bytes.Equal(packets[si], d) {
				si++
			}
			if si == len(packets) {
				t.Fatalf("delivered datagram %q is not an in-order match of any sent packet", d)
			}
			si++
		}
		if dropMask == 0 && r.Lost != 0 {
			t.Fatalf("lossless delivery declared %d packets lost", r.Lost)
		}
	})
}
