// Package mp implements the PPP Multilink Protocol (RFC 1990): splitting
// datagrams into sequenced fragments spread across the member links of a
// bundle and reassembling them at the far end. In the paper's setting
// this is how several STM-4 P5 channels aggregate toward a higher-rate
// pipe when a single STM-16 interface is not available.
package mp

import "errors"

// Proto is the PPP protocol number for multilink fragments.
const Proto = 0x003D

// Fragment header flag bits (first octet).
const (
	flagBegin = 0x80 // B: first fragment of a packet
	flagEnd   = 0x40 // E: last fragment of a packet
)

// SeqFormat selects the fragment header size.
type SeqFormat int

// The two negotiable header formats (LCP option 18 selects short).
const (
	// LongSeq is the default 4-octet header with a 24-bit sequence.
	LongSeq SeqFormat = iota
	// ShortSeq is the 2-octet header with a 12-bit sequence.
	ShortSeq
)

// Mask returns the sequence-number modulus mask.
func (f SeqFormat) Mask() uint32 {
	if f == ShortSeq {
		return 0xFFF
	}
	return 0xFFFFFF
}

// HeaderLen returns the fragment header size in octets.
func (f SeqFormat) HeaderLen() int {
	if f == ShortSeq {
		return 2
	}
	return 4
}

// Fragment is one multilink fragment.
type Fragment struct {
	Begin, End bool
	Seq        uint32
	Data       []byte
}

// Marshal appends the wire encoding (header + data).
func (f *Fragment) Marshal(dst []byte, fmt SeqFormat) []byte {
	var b0 byte
	if f.Begin {
		b0 |= flagBegin
	}
	if f.End {
		b0 |= flagEnd
	}
	if fmt == ShortSeq {
		dst = append(dst, b0|byte(f.Seq>>8&0x0F), byte(f.Seq))
	} else {
		dst = append(dst, b0, byte(f.Seq>>16), byte(f.Seq>>8), byte(f.Seq))
	}
	return append(dst, f.Data...)
}

// ErrShortFragment reports a fragment too small to hold its header.
var ErrShortFragment = errors.New("mp: fragment shorter than header")

// Parse decodes a fragment.
func Parse(b []byte, fmt SeqFormat) (Fragment, error) {
	var f Fragment
	n := fmt.HeaderLen()
	if len(b) < n {
		return f, ErrShortFragment
	}
	f.Begin = b[0]&flagBegin != 0
	f.End = b[0]&flagEnd != 0
	if fmt == ShortSeq {
		f.Seq = uint32(b[0]&0x0F)<<8 | uint32(b[1])
	} else {
		f.Seq = uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
	f.Data = b[n:]
	return f, nil
}

// seqLess compares sequence numbers modulo the format's space.
func seqLess(a, b, mask uint32) bool {
	return (b-a)&mask < mask/2 && a != b
}
