package mp

// Sender fragments datagrams across the member links of a bundle.
type Sender struct {
	// Format selects short or long sequence numbers.
	Format SeqFormat
	// Links transmit one fragment each toward the peer; fragments are
	// spread round-robin. At least one required.
	Links []func(frag []byte)
	// MaxFrag bounds the data octets per fragment (default 512).
	MaxFrag int

	seq  uint32
	next int // round-robin cursor

	// Counters.
	Packets, Fragments uint64
}

func (s *Sender) maxFrag() int {
	if s.MaxFrag <= 0 {
		return 512
	}
	return s.MaxFrag
}

// Send fragments one datagram across the bundle.
func (s *Sender) Send(p []byte) {
	s.Packets++
	first := true
	for {
		n := s.maxFrag()
		if n > len(p) {
			n = len(p)
		}
		frag := Fragment{
			Begin: first,
			End:   n == len(p),
			Seq:   s.seq & s.Format.Mask(),
			Data:  p[:n],
		}
		s.seq++
		s.Fragments++
		link := s.Links[s.next%len(s.Links)]
		s.next++
		link(frag.Marshal(nil, s.Format))
		first = false
		p = p[n:]
		if frag.End {
			return
		}
	}
}

// Receiver reassembles fragments arriving over the member links, in any
// cross-link interleaving (each link delivers in order). Loss detection
// follows RFC 1990 §4: every link tracks the newest sequence number it
// has delivered; the bundle minimum M proves that any still-missing
// fragment with sequence ≤ M was lost, and the packets it intersects
// are discarded.
type Receiver struct {
	// Format must match the sender.
	Format SeqFormat
	// NLinks is the member-link count (loss is only ever declared once
	// every link has delivered at least one fragment).
	NLinks int
	// Deliver receives each reassembled datagram.
	Deliver func([]byte)

	frags    map[uint32]Fragment
	lastSeq  []uint32
	seen     []bool
	expected uint32
	anchored bool
	// midDiscard is set when a discard stopped before reaching the next
	// packet head; the continuation is the same loss region and must not
	// be counted as another lost packet.
	midDiscard bool

	// Counters.
	Delivered, Lost uint64
}

// Receive accepts one fragment that arrived on the given member link.
func (r *Receiver) Receive(link int, raw []byte) error {
	f, err := Parse(raw, r.Format)
	if err != nil {
		return err
	}
	if r.frags == nil {
		n := r.NLinks
		if n < 1 {
			n = 1
		}
		r.frags = make(map[uint32]Fragment)
		r.lastSeq = make([]uint32, n)
		r.seen = make([]bool, n)
	}
	if link >= 0 && link < len(r.lastSeq) {
		r.lastSeq[link] = f.Seq
		r.seen[link] = true
	}
	mask := r.Format.Mask()
	if !r.anchored {
		// Synchronisation: buffer everything until every member link
		// has been heard from. Links deliver in order, so once all
		// have spoken nothing below the oldest buffered sequence can
		// ever arrive — that is the anchor.
		r.frags[f.Seq] = f
		for _, ok := range r.seen {
			if !ok {
				return nil
			}
		}
		first := true
		for s := range r.frags {
			if first || seqLess(s, r.expected, mask) {
				r.expected = s
				first = false
			}
		}
		r.anchored = true
		r.drain()
		return nil
	}
	if seqLess(f.Seq, r.expected, mask) {
		return nil // stale: before the consumption point
	}
	r.frags[f.Seq] = f
	r.drain()
	return nil
}

// minSeq returns the bundle's M and whether it is defined yet.
func (r *Receiver) minSeq() (uint32, bool) {
	mask := r.Format.Mask()
	var m uint32
	have := false
	for i, ok := range r.seen {
		if !ok {
			return 0, false // an idle link can still deliver anything
		}
		if !have || seqLess(r.lastSeq[i], m, mask) {
			m = r.lastSeq[i]
			have = true
		}
	}
	return m, have
}

// lostForever reports whether a missing fragment with sequence s can be
// declared lost: s ≤ M.
func (r *Receiver) lostForever(s uint32) bool {
	m, ok := r.minSeq()
	if !ok {
		return false
	}
	mask := r.Format.Mask()
	return s == m || seqLess(s, m, mask)
}

// drain consumes packets from the expected pointer, discarding those
// proven broken.
func (r *Receiver) drain() {
	mask := r.Format.Mask()
	for {
		f, ok := r.frags[r.expected&mask]
		switch {
		case ok && f.Begin:
			// A packet head at the consumption point ends any loss region.
			r.midDiscard = false
			// Walk the run.
			seq := r.expected
			complete := false
			for {
				g, present := r.frags[seq&mask]
				if !present {
					break
				}
				if g.End {
					complete = true
					break
				}
				seq++
			}
			if complete {
				var out []byte
				for s := r.expected; ; s++ {
					g := r.frags[s&mask]
					out = append(out, g.Data...)
					delete(r.frags, s&mask)
					if s == seq {
						break
					}
				}
				r.expected = (seq + 1) & mask
				r.Delivered++
				if r.Deliver != nil {
					r.Deliver(out)
				}
				continue
			}
			// Missing fragment at seq (first absent position).
			if !r.lostForever(seq & mask) {
				return // may still arrive
			}
			r.discardPacket()
		case ok: // mid-packet fragment at the head position
			// Its packet head has sequence < expected; it can still
			// arrive only while some link could deliver that range.
			if !r.lostForever((r.expected - 1) & mask) {
				return
			}
			r.discardPacket()
		default: // hole at the head position
			if !r.lostForever(r.expected & mask) {
				return
			}
			r.discardPacket()
		}
	}
}

// discardPacket drops fragments (and proven holes) from the expected
// pointer forward until the next packet head, counting one lost packet.
// The loss proof M advances incrementally, so one broken packet may be
// discarded over several calls; only the first counts it.
func (r *Receiver) discardPacket() {
	mask := r.Format.Mask()
	if !r.midDiscard {
		r.Lost++
	}
	for {
		delete(r.frags, r.expected&mask)
		r.expected = (r.expected + 1) & mask
		if f, ok := r.frags[r.expected&mask]; ok {
			if f.Begin {
				r.midDiscard = false
				return
			}
			continue // part of the same broken packet
		}
		// Hole: stop discarding unless it too is proven lost (it then
		// belongs to this or another broken packet).
		if !r.lostForever(r.expected & mask) {
			r.midDiscard = true
			return
		}
	}
}
