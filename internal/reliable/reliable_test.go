package reliable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestControlFieldCodec(t *testing.T) {
	for ns := uint8(0); ns < 8; ns++ {
		for nr := uint8(0); nr < 8; nr++ {
			c := iCtrl(ns, nr)
			if Classify(c) != KindI || NS(c) != ns || NR(c) != nr {
				t.Fatalf("I frame codec ns=%d nr=%d ctrl=%#x", ns, nr, c)
			}
		}
	}
	if Classify(sCtrl(ctrlRR, 3)) != KindRR || NR(sCtrl(ctrlRR, 3)) != 3 {
		t.Error("RR codec")
	}
	if Classify(sCtrl(ctrlREJ, 5)) != KindREJ {
		t.Error("REJ codec")
	}
	if Classify(sCtrl(ctrlRNR, 1)) != KindRNR {
		t.Error("RNR codec")
	}
	for _, u := range []byte{CtrlSABM, CtrlUA, CtrlDISC, CtrlDM} {
		if Classify(u) != KindU {
			t.Errorf("U codec %#x", u)
		}
	}
}

func TestSeqInRange(t *testing.T) {
	if !seqInRange(0, 0, 1) || seqInRange(0, 1, 1) {
		t.Error("basic range")
	}
	// Wraparound: window [6, 2) contains 6,7,0,1.
	for _, x := range []uint8{6, 7, 0, 1} {
		if !seqInRange(6, x, 2) {
			t.Errorf("%d should be in [6,2)", x)
		}
	}
	for _, x := range []uint8{2, 3, 5} {
		if seqInRange(6, x, 2) {
			t.Errorf("%d should not be in [6,2)", x)
		}
	}
}

// wire connects two stations with optional loss.
type wire struct {
	a, b   *Station
	toA    []Frame
	toB    []Frame
	drop   func(f Frame) bool
	nmoved int
}

func newWire() *wire {
	w := &wire{}
	w.a = &Station{Out: func(f Frame) { w.toB = append(w.toB, cp(f)) }}
	w.b = &Station{Out: func(f Frame) { w.toA = append(w.toA, cp(f)) }}
	return w
}

func cp(f Frame) Frame {
	return Frame{Ctrl: f.Ctrl, Payload: append([]byte(nil), f.Payload...)}
}

func (w *wire) step() bool {
	moved := false
	if len(w.toB) > 0 {
		f := w.toB[0]
		w.toB = w.toB[1:]
		if w.drop == nil || !w.drop(f) {
			w.b.Receive(f)
		}
		moved = true
	}
	if len(w.toA) > 0 {
		f := w.toA[0]
		w.toA = w.toA[1:]
		if w.drop == nil || !w.drop(f) {
			w.a.Receive(f)
		}
		moved = true
	}
	if moved {
		w.nmoved++
	}
	return moved
}

func (w *wire) run(max int) {
	for i := 0; i < max && w.step(); i++ {
	}
}

func TestConnectHandshake(t *testing.T) {
	w := newWire()
	w.a.Connect()
	w.run(10)
	if !w.a.Connected() || !w.b.Connected() {
		t.Fatalf("connect failed: %v/%v", w.a.Connected(), w.b.Connected())
	}
}

func TestSendBeforeConnect(t *testing.T) {
	w := newWire()
	if err := w.a.Send([]byte{1}); err != ErrNotConnected {
		t.Errorf("err = %v", err)
	}
}

func TestInOrderDelivery(t *testing.T) {
	w := newWire()
	var got [][]byte
	w.b.Deliver = func(p []byte) { got = append(got, p) }
	w.a.Connect()
	w.run(10)
	for i := 0; i < 20; i++ {
		if err := w.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		w.run(100)
	}
	if len(got) != 20 {
		t.Fatalf("delivered %d, want 20", len(got))
	}
	for i, p := range got {
		if p[0] != byte(i) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	w := newWire()
	w.a.Window = 3
	w.a.Connect()
	w.run(10)
	// Queue 10 without letting the peer answer.
	for i := 0; i < 10; i++ {
		if err := w.a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if w.a.InFlight() != 3 {
		t.Errorf("in flight = %d, want window 3", w.a.InFlight())
	}
	if w.a.Queued() != 7 {
		t.Errorf("queued = %d, want 7", w.a.Queued())
	}
	// Drain: acknowledgements open the window.
	var got int
	w.b.Deliver = func([]byte) { got++ }
	w.run(1000)
	if got != 10 {
		t.Errorf("delivered %d, want 10", got)
	}
	if w.a.InFlight() != 0 || w.a.Queued() != 0 {
		t.Error("window did not drain")
	}
}

func TestREJTriggersGoBackN(t *testing.T) {
	w := newWire()
	var got [][]byte
	w.b.Deliver = func(p []byte) { got = append(got, p) }
	w.a.Connect()
	w.run(10)
	// Drop exactly the second I frame on its first transmission.
	iSeen := 0
	w.drop = func(f Frame) bool {
		if Classify(f.Ctrl) == KindI {
			iSeen++
			return iSeen == 2
		}
		return false
	}
	for i := 0; i < 5; i++ {
		w.a.Send([]byte{byte(i)})
	}
	w.run(1000)
	if w.b.TxREJ == 0 {
		t.Error("receiver never sent REJ")
	}
	if w.a.Retransmits == 0 {
		t.Error("sender never retransmitted")
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, p := range got {
		if p[0] != byte(i) {
			t.Fatalf("out of order at %d: % x", i, got)
		}
	}
}

func TestTimeoutRetransmission(t *testing.T) {
	w := newWire()
	var got int
	w.b.Deliver = func([]byte) { got++ }
	w.a.Connect()
	w.run(10)
	// Black-hole every frame once: first transmission always lost.
	lost := map[byte]bool{}
	w.drop = func(f Frame) bool {
		if Classify(f.Ctrl) == KindI && !lost[f.Ctrl] {
			lost[f.Ctrl] = true
			return true
		}
		return false
	}
	w.a.Send([]byte{42})
	w.run(100)
	if got != 0 {
		t.Fatal("frame should have been lost")
	}
	// T1 fires; retransmission succeeds.
	w.a.Advance(10)
	w.run(100)
	if got != 1 {
		t.Fatalf("delivered %d after timeout, want 1", got)
	}
	if w.a.Retransmits == 0 {
		t.Error("no retransmission counted")
	}
}

func TestLossyLinkPropertyDelivery(t *testing.T) {
	// Under 20% random loss with periodic timer service, every payload
	// arrives exactly once, in order — the RFC 1663 promise for noisy
	// wireless links.
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := newWire()
		var got [][]byte
		w.b.Deliver = func(p []byte) { got = append(got, p) }
		w.a.Connect()
		w.run(10)
		w.drop = func(Frame) bool { return rng.Float64() < 0.2 }

		const n = 50
		sentAll := 0
		now := int64(0)
		for round := 0; round < 400 && len(got) < n; round++ {
			if sentAll < n {
				w.a.Send([]byte{byte(sentAll)})
				sentAll++
			}
			w.run(50)
			now += 4
			w.a.Advance(now)
			w.b.Advance(now)
		}
		if len(got) != n {
			t.Fatalf("seed %d: delivered %d/%d", seed, len(got), n)
		}
		for i, p := range got {
			if p[0] != byte(i) {
				t.Fatalf("seed %d: out of order at %d", seed, i)
			}
		}
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	w := newWire()
	var gotA, gotB [][]byte
	w.a.Deliver = func(p []byte) { gotA = append(gotA, p) }
	w.b.Deliver = func(p []byte) { gotB = append(gotB, p) }
	w.a.Connect()
	w.run(10)
	for i := 0; i < 10; i++ {
		w.a.Send([]byte(fmt.Sprintf("a%d", i)))
		w.b.Send([]byte(fmt.Sprintf("b%d", i)))
		w.run(100)
	}
	if len(gotA) != 10 || len(gotB) != 10 {
		t.Fatalf("a got %d, b got %d", len(gotA), len(gotB))
	}
	if !bytes.Equal(gotB[7], []byte("a7")) || !bytes.Equal(gotA[7], []byte("b7")) {
		t.Error("payload mismatch")
	}
}

func TestDisconnect(t *testing.T) {
	w := newWire()
	w.a.Connect()
	w.run(10)
	w.a.Disconnect()
	w.run(10)
	if w.a.Connected() || w.b.Connected() {
		t.Error("disconnect did not propagate")
	}
	if err := w.b.Send([]byte{1}); err != ErrNotConnected {
		t.Error("send after disconnect must fail")
	}
}

func TestSABMRetriesAndGivesUp(t *testing.T) {
	var sent int
	s := &Station{Out: func(Frame) { sent++ }, MaxRetries: 3}
	s.Connect()
	now := int64(0)
	for i := 0; i < 10; i++ {
		now += 5
		s.Advance(now)
	}
	if sent != 4 { // initial + 3 retries
		t.Errorf("SABM transmissions = %d, want 4", sent)
	}
}

func TestN2ExhaustionResetsLink(t *testing.T) {
	w := newWire()
	w.a.MaxRetries = 2
	w.a.Connect()
	w.run(10)
	// Peer goes silent: drop everything toward b.
	w.drop = func(Frame) bool { return true }
	w.a.Send([]byte{1})
	now := int64(0)
	for i := 0; i < 10; i++ {
		now += 5
		w.a.Advance(now)
		w.run(10)
	}
	if w.a.Resets == 0 {
		t.Error("link never reset after N2 exhaustion")
	}
}

func TestSequenceWraparound(t *testing.T) {
	// More than 8 frames forces V(S)/V(R) wraparound.
	w := newWire()
	var got int
	w.b.Deliver = func([]byte) { got++ }
	w.a.Connect()
	w.run(10)
	for i := 0; i < 30; i++ {
		w.a.Send([]byte{byte(i)})
		w.run(100)
	}
	if got != 30 {
		t.Fatalf("delivered %d, want 30", got)
	}
	if w.a.vs != 30%8 {
		t.Errorf("V(S) = %d, want %d", w.a.vs, 30%8)
	}
}
