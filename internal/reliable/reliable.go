// Package reliable implements PPP Reliable Transmission (RFC 1663):
// numbered-mode operation of the HDLC control field with LAPB-style
// (ISO 7776) sliding-window acknowledgement and retransmission.
//
// The paper notes the P5 control field "may be configured via the LCP
// to use sequence numbers and acknowledgements for reliable data
// transmission. This is of particular use in noisy environments such
// as wireless networks." This package is that mode: modulo-8 send and
// receive sequence numbers, I/RR/RNR/REJ frames, go-back-N
// retransmission on reject or timeout, and SABM/UA link reset.
package reliable

import "errors"

// Control-field encodings (ISO 4335 / LAPB, modulo 8).
//
//	I frame : N(R) P N(S) 0            — numbered information
//	S frame : N(R) P/F SS 0 1          — RR / RNR / REJ supervision
//	U frame : M M M P/F M M 1 1        — SABM / UA / DISC / DM / FRMR
const (
	ctrlSMask = 0x0F
	ctrlRR    = 0x01
	ctrlRNR   = 0x05
	ctrlREJ   = 0x09

	ctrlUMask = 0xEF // mask out the P/F bit
	CtrlSABM  = 0x2F // set asynchronous balanced mode
	CtrlUA    = 0x63 // unnumbered acknowledgement
	CtrlDISC  = 0x43 // disconnect
	CtrlDM    = 0x0F // disconnected mode
)

// Modulus is the sequence-number space (basic mode).
const Modulus = 8

// DefaultWindow is the default transmit window k (RFC 1663 suggests
// small windows; LAPB default k = 7 for modulo 8).
const DefaultWindow = 7

// FrameKind classifies a control octet.
type FrameKind int

// Control-field classes.
const (
	KindI FrameKind = iota
	KindRR
	KindRNR
	KindREJ
	KindU
)

// Classify decodes a numbered-mode control octet.
func Classify(ctrl byte) FrameKind {
	if ctrl&0x01 == 0 {
		return KindI
	}
	if ctrl&0x03 == 0x01 {
		switch ctrl & ctrlSMask {
		case ctrlRR:
			return KindRR
		case ctrlRNR:
			return KindRNR
		case ctrlREJ:
			return KindREJ
		}
	}
	return KindU
}

// NS extracts the send sequence number of an I frame.
func NS(ctrl byte) uint8 { return ctrl >> 1 & 0x07 }

// NR extracts the receive sequence number of an I or S frame.
func NR(ctrl byte) uint8 { return ctrl >> 5 & 0x07 }

// iCtrl builds an I-frame control octet.
func iCtrl(ns, nr uint8) byte { return ns&7<<1 | nr&7<<5 }

// sCtrl builds an S-frame control octet.
func sCtrl(base byte, nr uint8) byte { return base | nr&7<<5 }

// Errors.
var (
	// ErrNotConnected is returned by Send before SABM/UA completes.
	ErrNotConnected = errors.New("reliable: link not in ABM")
	// ErrWindowFull is returned when k frames are unacknowledged.
	ErrWindowFull = errors.New("reliable: transmit window full")
)

// Frame is one numbered-mode frame on the wire: the control octet and
// (for I frames) the information field.
type Frame struct {
	Ctrl    byte
	Payload []byte
}

// Station is one end of a numbered-mode link. It is transport-agnostic:
// Out receives frames to put on the wire, Deliver receives in-sequence
// information fields. Drive timeouts with Advance using any monotonic
// virtual clock.
type Station struct {
	// Out transmits a frame toward the peer. Required.
	Out func(Frame)
	// Deliver hands a received information field up the stack. Required
	// for data reception.
	Deliver func([]byte)
	// Release, when non-nil, is called with each Send payload once the
	// station no longer references it — acknowledged, or dropped by a
	// link reset. Callers recycling transmit buffers hook this to
	// reclaim them; the station never touches a buffer after Release.
	Release func([]byte)
	// Window is the transmit window k (default DefaultWindow, max 7).
	Window int
	// RetransmitPeriod is the T1 timer in virtual time units
	// (default 3).
	RetransmitPeriod int64
	// MaxRetries is N2 (default 10); exceeding it resets the link.
	MaxRetries int

	connected bool
	initiator bool

	vs, vr, va uint8 // V(S), V(R), V(A), modulo 8

	sent    []Frame // unacknowledged I frames, oldest first
	pending [][]byte

	rejSent bool // a REJ is outstanding (suppress duplicates)

	now, t1 int64
	retries int

	// Counters.
	TxI, RxI, TxREJ, RxREJ, Retransmits, Resets uint64
	RxDiscarded                                 uint64
}

func (s *Station) window() int {
	if s.Window <= 0 || s.Window > 7 {
		return DefaultWindow
	}
	return s.Window
}

func (s *Station) period() int64 {
	if s.RetransmitPeriod <= 0 {
		return 3
	}
	return s.RetransmitPeriod
}

func (s *Station) maxRetries() int {
	if s.MaxRetries <= 0 {
		return 10
	}
	return s.MaxRetries
}

// Connected reports whether the link is in asynchronous balanced mode.
func (s *Station) Connected() bool { return s.connected }

// Connect initiates link setup (SABM). The peer answers UA.
func (s *Station) Connect() {
	s.initiator = true
	s.reset()
	s.Out(Frame{Ctrl: CtrlSABM})
	s.armT1()
}

// Disconnect tears the link down.
func (s *Station) Disconnect() {
	if s.connected {
		s.Out(Frame{Ctrl: CtrlDISC})
	}
	s.connected = false
	s.stopT1()
}

func (s *Station) reset() {
	s.vs, s.vr, s.va = 0, 0, 0
	if s.Release != nil {
		for _, f := range s.sent {
			if f.Payload != nil {
				s.Release(f.Payload)
			}
		}
		for _, p := range s.pending {
			s.Release(p)
		}
		s.pending = nil
	}
	s.sent = nil
	s.rejSent = false
	s.retries = 0
}

// InFlight returns the number of unacknowledged I frames.
func (s *Station) InFlight() int { return len(s.sent) }

// Queued returns the number of payloads waiting for window space.
func (s *Station) Queued() int { return len(s.pending) }

// Send queues an information field for numbered transmission. Payloads
// beyond the window are buffered and flushed as acknowledgements open
// the window.
func (s *Station) Send(payload []byte) error {
	if !s.connected {
		return ErrNotConnected
	}
	s.pending = append(s.pending, payload)
	s.pump()
	return nil
}

// pump transmits pending payloads while window space exists.
func (s *Station) pump() {
	for len(s.pending) > 0 && len(s.sent) < s.window() {
		p := s.pending[0]
		s.pending = s.pending[1:]
		f := Frame{Ctrl: iCtrl(s.vs, s.vr), Payload: p}
		s.vs = (s.vs + 1) % Modulus
		s.sent = append(s.sent, f)
		s.TxI++
		s.Out(f)
		s.armT1()
	}
}

func (s *Station) armT1()  { s.t1 = s.now + s.period() }
func (s *Station) stopT1() { s.t1 = 0 }

// Advance moves the virtual clock, firing the retransmission timer.
func (s *Station) Advance(now int64) {
	if now > s.now {
		s.now = now
	}
	if s.t1 == 0 || s.now < s.t1 {
		return
	}
	if !s.connected {
		// SABM unanswered.
		if s.initiator {
			s.retries++
			if s.retries > s.maxRetries() {
				s.stopT1()
				return
			}
			s.Out(Frame{Ctrl: CtrlSABM})
			s.armT1()
		}
		return
	}
	if len(s.sent) == 0 {
		s.stopT1()
		return
	}
	s.retries++
	if s.retries > s.maxRetries() {
		// N2 exhausted: reset the link (RFC 1663 §2 / LAPB).
		s.Resets++
		s.connected = false
		s.reset()
		if s.initiator {
			s.Connect()
		}
		return
	}
	// Go-back-N: retransmit everything outstanding with updated N(R).
	s.retransmit()
	s.armT1()
}

func (s *Station) retransmit() {
	for i := range s.sent {
		s.sent[i].Ctrl = iCtrl(NS(s.sent[i].Ctrl), s.vr)
		s.Retransmits++
		s.Out(s.sent[i])
	}
}

// Receive processes one frame from the peer.
func (s *Station) Receive(f Frame) {
	switch Classify(f.Ctrl) {
	case KindU:
		s.receiveU(f)
	case KindI:
		s.receiveI(f)
	case KindRR, KindREJ, KindRNR:
		s.ack(NR(f.Ctrl))
		if Classify(f.Ctrl) == KindREJ {
			s.RxREJ++
			s.retransmit()
			s.armT1()
		}
	}
}

func (s *Station) receiveU(f Frame) {
	switch f.Ctrl & ctrlUMask {
	case CtrlSABM & ctrlUMask:
		s.reset()
		s.connected = true
		s.Out(Frame{Ctrl: CtrlUA})
		s.stopT1()
	case CtrlUA & ctrlUMask:
		if !s.connected {
			s.reset()
			s.connected = true
			s.stopT1()
			s.pump()
		}
	case CtrlDISC & ctrlUMask:
		s.connected = false
		s.reset()
		s.Out(Frame{Ctrl: CtrlDM})
	}
}

func (s *Station) receiveI(f Frame) {
	if !s.connected {
		s.Out(Frame{Ctrl: CtrlDM})
		return
	}
	s.ack(NR(f.Ctrl))
	ns := NS(f.Ctrl)
	if ns != s.vr {
		// Out of sequence: discard and (once) ask for a go-back.
		s.RxDiscarded++
		if !s.rejSent {
			s.rejSent = true
			s.TxREJ++
			s.Out(Frame{Ctrl: sCtrl(ctrlREJ, s.vr)})
		}
		return
	}
	s.rejSent = false
	s.vr = (s.vr + 1) % Modulus
	s.RxI++
	if s.Deliver != nil {
		s.Deliver(f.Payload)
	}
	// Acknowledge. Piggybacking happens naturally when pump() runs; if
	// nothing is pending, send an explicit RR.
	if len(s.pending) > 0 && len(s.sent) < s.window() {
		s.pump()
	} else {
		s.Out(Frame{Ctrl: sCtrl(ctrlRR, s.vr)})
	}
}

// ack processes an incoming N(R): everything below it is confirmed.
func (s *Station) ack(nr uint8) {
	for len(s.sent) > 0 {
		first := NS(s.sent[0].Ctrl)
		// first is acknowledged iff it lies in [va, nr) modulo 8.
		if !seqInRange(s.va, first, nr) {
			break
		}
		if s.Release != nil && s.sent[0].Payload != nil {
			s.Release(s.sent[0].Payload)
		}
		s.sent = s.sent[1:]
		s.va = (first + 1) % Modulus
		s.retries = 0
	}
	if len(s.sent) == 0 {
		s.stopT1()
	} else {
		s.armT1()
	}
	s.pump()
}

// seqInRange reports whether x lies in the half-open window [lo, hi)
// modulo 8.
func seqInRange(lo, x, hi uint8) bool {
	return (x-lo)%Modulus < (hi-lo)%Modulus
}
