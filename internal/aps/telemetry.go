package aps

import "repro/internal/telemetry"

// Instrument exports the controller's switching record to reg under
// prefix (acceptance names assume prefix "aps": aps_switches_total,
// aps_active, aps_switch_duration) and emits a structured trace event
// for every selector movement, chained ahead of any existing OnSwitch
// subscriber. tr may be nil to disable tracing. The returned sync
// refreshes the counter mirrors; call it at the control-plane cadence.
func (c *Controller) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer, prefix string) func() {
	taps := []struct {
		c    *telemetry.Counter
		read func() uint64
	}{
		{reg.Counter(prefix+"_switches_total", "Protection-selector movements."),
			func() uint64 { return c.Switches }},
		{reg.Counter(prefix+"_to_protect_total", "Selector movements onto the protection line."),
			func() uint64 { return c.ToProtect }},
		{reg.Counter(prefix+"_to_working_total", "Selector movements back to the working line."),
			func() uint64 { return c.ToWorking }},
		{reg.Counter(prefix+"_remote_wins_total", "Evaluations won by the far-end K1 request."),
			func() uint64 { return c.RemoteWins }},
	}
	active := reg.Gauge(prefix+"_active", "Selected line: 0 working, 1 protect.")
	request := reg.Gauge(prefix+"_request", "Transmitted K1 request code.")
	// Switch-completion time in frame times (125 µs each): the GR-253
	// budget is 50 ms = 400 frames, so the buckets straddle it.
	durations := reg.Histogram(prefix+"_switch_duration",
		"Trigger-to-selector-movement time (frame times; 400 = the 50 ms budget).",
		[]int64{1, 4, 16, 64, 200, 400, 800})

	prev := c.OnSwitch
	c.OnSwitch = func(e SwitchEvent) {
		durations.Observe(e.Duration)
		if tr != nil {
			origin := "local"
			if e.Remote {
				origin = "remote"
			}
			tr.Emit(e.Now, "aps", "switch", e.From.String()+"->"+e.To.String()+
				" on "+e.Trigger.String()+" ("+origin+")", int64(e.To), e.Duration)
		}
		if prev != nil {
			prev(e)
		}
	}
	sync := func() {
		for _, t := range taps {
			t.c.Set(t.read())
		}
		active.Set(int64(c.Active()))
		r, _ := ParseK1(c.txK1)
		request.Set(int64(r))
	}
	sync()
	return sync
}
