package aps

import "testing"

// TestK1K2Codec pins the byte layout.
func TestK1K2Codec(t *testing.T) {
	b := K1(ReqSignalFail, 1)
	if b != 0xC1 {
		t.Fatalf("K1(SF,1) = %#x", b)
	}
	r, ch := ParseK1(b)
	if r != ReqSignalFail || ch != 1 {
		t.Fatalf("ParseK1 = %v/%d", r, ch)
	}
	k2 := K2(1, true)
	if ch, bidi := ParseK2(k2); ch != 1 || !bidi {
		t.Fatalf("ParseK2(%#x) = %d/%v", k2, ch, bidi)
	}
	if ch, bidi := ParseK2(K2(1, false)); ch != 1 || bidi {
		t.Fatalf("unidirectional K2 parsed as %d/%v", ch, bidi)
	}
	if ReqLockout < ReqForcedSwitch || ReqForcedSwitch < ReqSignalFail ||
		ReqSignalFail < ReqSignalDegrade || ReqSignalDegrade < ReqManualSwitch ||
		ReqManualSwitch < ReqWaitToRestore {
		t.Fatal("request codes are not priority-ordered")
	}
	if ReqSignalFail.String() != "signal-fail" || Working.String() != "working" {
		t.Error("string forms wrong")
	}
}

// TestSFSwitchesToProtect: the basic failover and, in revertive mode,
// the wait-to-restore path home.
func TestSFSwitchesToProtect(t *testing.T) {
	c := NewController(Config{Revertive: true, WaitToRestore: 10})
	var events []SwitchEvent
	c.OnSwitch = func(e SwitchEvent) { events = append(events, e) }

	c.Advance(1)
	if c.Active() != Working {
		t.Fatal("selector not on working at rest")
	}
	c.SetSignal(2, Working, true, false)
	c.Advance(2)
	if c.Active() != Protect {
		t.Fatal("SF on working did not switch")
	}
	if len(events) != 1 || events[0].Trigger != ReqSignalFail || events[0].Duration != 0 {
		t.Fatalf("events = %v", events)
	}
	if k1, _ := c.TxK1K2(); k1 != K1(ReqSignalFail, 1) {
		t.Errorf("tx K1 = %#x", k1)
	}

	// Condition clears: WTR holds the selector for 10 units.
	c.SetSignal(5, Working, false, false)
	c.Advance(5)
	if c.Active() != Protect {
		t.Fatal("reverted before WTR")
	}
	if k1, _ := c.TxK1K2(); k1 != K1(ReqWaitToRestore, 1) {
		t.Errorf("tx K1 during WTR = %#x", k1)
	}
	c.Advance(14)
	if c.Active() != Protect {
		t.Fatal("reverted at WTR-1")
	}
	c.Advance(15)
	if c.Active() != Working {
		t.Fatal("did not revert after WTR expiry")
	}
	if c.Switches != 2 || c.ToProtect != 1 || c.ToWorking != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

// TestNonRevertiveStaysOnProtect: after the working line heals, a
// non-revertive group signals Do-Not-Revert and keeps the selector.
func TestNonRevertiveStaysOnProtect(t *testing.T) {
	c := NewController(Config{})
	c.SetSignal(1, Working, true, false)
	c.Advance(1)
	c.SetSignal(10, Working, false, false)
	for now := int64(10); now < 100; now += 5 {
		c.Advance(now)
	}
	if c.Active() != Protect {
		t.Fatal("non-revertive group reverted")
	}
	if k1, _ := c.TxK1K2(); k1 != K1(ReqDoNotRevert, 1) {
		t.Errorf("tx K1 = %#x, want do-not-revert", k1)
	}
}

// TestHoldOffDelaysSwitch: a condition shorter than the hold-off never
// moves the selector; one that persists switches at the timer.
func TestHoldOffDelaysSwitch(t *testing.T) {
	c := NewController(Config{HoldOff: 5})
	c.SetSignal(10, Working, true, false)
	c.Advance(10)
	c.Advance(12)
	if c.Active() != Working {
		t.Fatal("switched inside the hold-off window")
	}
	// Transient clears before hold-off: no switch ever.
	c.SetSignal(13, Working, false, false)
	c.Advance(14)
	c.Advance(20)
	if c.Active() != Working || c.Switches != 0 {
		t.Fatal("transient caused a switch")
	}
	// Persistent condition: switch once the hold-off elapses.
	c.SetSignal(30, Working, true, false)
	c.Advance(33)
	if c.Active() != Working {
		t.Fatal("switched early")
	}
	c.Advance(35)
	if c.Active() != Protect {
		t.Fatal("hold-off never released")
	}
	if c.LastSwitchTook != 5 {
		t.Errorf("switch duration = %d, want 5 (the hold-off)", c.LastSwitchTook)
	}
}

// TestPriorityOrdering: SF on protection pre-empts a forced switch;
// lockout pre-empts everything.
func TestPriorityOrdering(t *testing.T) {
	c := NewController(Config{})
	c.ForcedSwitch(1)
	c.Advance(1)
	if c.Active() != Protect {
		t.Fatal("forced switch did not move the selector")
	}
	// Protection fails: selector must abandon it despite the command.
	c.SetSignal(2, Protect, true, false)
	c.Advance(2)
	if c.Active() != Working {
		t.Fatal("SF on protection did not pre-empt forced switch")
	}
	if k1, _ := c.TxK1K2(); k1 != K1(ReqSignalFail, 0) {
		t.Errorf("tx K1 = %#x, want SF on null channel", k1)
	}
	c.SetSignal(3, Protect, false, false)
	c.Advance(3)
	if c.Active() != Protect {
		t.Fatal("forced switch did not resume after protection healed")
	}
	// Lockout beats the still-latched forced command and SF on working.
	c.Lockout(4)
	c.SetSignal(4, Working, true, false)
	c.Advance(4)
	if c.Active() != Working {
		t.Fatal("lockout did not pin the selector to working")
	}
	c.Clear()
	c.Advance(5)
	if c.Active() != Protect {
		t.Fatal("clear did not release the lockout (forced still latched)")
	}
	c.Clear()
	// SF-W still active, so the selector stays on protect via SF.
	c.Advance(6)
	if c.Active() != Protect {
		t.Fatal("SF on working lost after clearing commands")
	}
}

// TestManualSwitchYieldsToSignalDegrade: manual sits below SD in the
// priority order — SD on the protection line sends the selector home.
func TestManualSwitchYieldsToSignalDegrade(t *testing.T) {
	c := NewController(Config{})
	c.ManualSwitch(1)
	c.Advance(1)
	if c.Active() != Protect {
		t.Fatal("manual switch ignored")
	}
	c.SetSignal(2, Protect, false, true) // SD on protection
	c.Advance(2)
	if c.Active() != Working {
		t.Fatal("SD on protection did not pre-empt manual switch")
	}
}

// TestBidirectionalHandshake runs both ends against each other: B sees
// SF on its receive working line; A must follow on the strength of the
// K1 request alone and acknowledge with Reverse-Request.
func TestBidirectionalHandshake(t *testing.T) {
	cfg := Config{Bidirectional: true, Revertive: true, WaitToRestore: 8}
	a, b := NewController(cfg), NewController(cfg)

	// Transport: each Advance's tx bytes arrive at the peer next tick.
	deliver := func(now int64, from, to *Controller) {
		k1, k2 := from.TxK1K2()
		to.ReceiveK1K2(now, k1, k2)
	}

	b.SetSignal(1, Working, true, false)
	for now := int64(1); now <= 4; now++ {
		a.Advance(now)
		b.Advance(now)
		deliver(now, a, b)
		deliver(now, b, a)
	}
	if b.Active() != Protect {
		t.Fatal("B did not switch on local SF")
	}
	if a.Active() != Protect {
		t.Fatal("A did not follow the far-end SF request")
	}
	if a.RemoteWins == 0 {
		t.Error("A never recorded the remote request winning")
	}
	if k1, _ := a.TxK1K2(); k1 != K1(ReqReverseRequest, 1) {
		t.Errorf("A tx K1 = %#x, want reverse-request ack", k1)
	}

	// Heal: B runs WTR, reverts, and A follows home.
	b.SetSignal(10, Working, false, false)
	for now := int64(10); now <= 40; now++ {
		a.Advance(now)
		b.Advance(now)
		deliver(now, a, b)
		deliver(now, b, a)
	}
	if b.Active() != Working || a.Active() != Working {
		t.Fatalf("pair did not revert: a=%v b=%v", a.Active(), b.Active())
	}
}

// TestBothLinesFailed: with SF on both lines the selector rests on
// working (SF-P outranks SF-W) — the layer above falls back to its own
// recovery path.
func TestBothLinesFailed(t *testing.T) {
	c := NewController(Config{})
	c.SetSignal(1, Working, true, false)
	c.Advance(1)
	if c.Active() != Protect {
		t.Fatal("no switch on SF-W")
	}
	c.SetSignal(2, Protect, true, false)
	c.Advance(2)
	if c.Active() != Working {
		t.Fatal("selector not parked on working with both lines failed")
	}
	// Working heals first: stay (protection still failed).
	c.SetSignal(3, Working, false, false)
	c.Advance(3)
	if c.Active() != Working {
		t.Fatal("left working while protection still failed")
	}
}

// TestWTRCancelledBySecondSF: a working-line failure during the
// wait-to-restore countdown must cancel the timer and keep the
// selector on protection without an intermediate revert — and the next
// restoral must serve a full WTR period, not the remainder of the
// cancelled one.
func TestWTRCancelledBySecondSF(t *testing.T) {
	c := NewController(Config{Revertive: true, WaitToRestore: 20})
	c.SetSignal(2, Working, true, false)
	c.Advance(2)
	if c.Active() != Protect {
		t.Fatal("first SF did not switch")
	}

	// Heals at 10: WTR runs 10→30.
	c.SetSignal(10, Working, false, false)
	c.Advance(10)
	if k1, _ := c.TxK1K2(); k1 != K1(ReqWaitToRestore, 1) {
		t.Fatalf("tx K1 during WTR = %#x", k1)
	}

	// Second SF at 25, inside the countdown.
	c.SetSignal(25, Working, true, false)
	c.Advance(25)
	if c.Active() != Protect {
		t.Fatal("second SF during WTR lost the selector")
	}
	if k1, _ := c.TxK1K2(); k1 != K1(ReqSignalFail, 1) {
		t.Fatalf("tx K1 after WTR cancel = %#x, want signal-fail", k1)
	}
	if c.Switches != 1 {
		t.Fatalf("switches = %d, want 1 (no intermediate revert)", c.Switches)
	}

	// Heals again at 40: a FULL WTR must run (40→60); reverting at the
	// old expiry (30) or the old remainder would be a stale timer.
	c.SetSignal(40, Working, false, false)
	for now := int64(40); now < 60; now++ {
		c.Advance(now)
		if c.Active() != Protect {
			t.Fatalf("reverted at %d, before the re-armed WTR expired", now)
		}
	}
	c.Advance(60)
	if c.Active() != Working {
		t.Fatal("did not revert after the re-armed WTR")
	}
	if c.Switches != 2 || c.ToWorking != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

// TestWTRExpiryRacesSecondSF: an SF that asserts on the very tick the
// WTR expires must win the evaluation — the selector stays on
// protection with no revert-and-return double transition.
func TestWTRExpiryRacesSecondSF(t *testing.T) {
	c := NewController(Config{Revertive: true, WaitToRestore: 20})
	c.SetSignal(2, Working, true, false)
	c.Advance(2)
	c.SetSignal(10, Working, false, false)
	c.Advance(10) // WTR expiry at 30

	// The line observation for tick 30 lands before the tick's Advance,
	// exactly as the frame loop feeds the controller.
	c.SetSignal(30, Working, true, false)
	c.Advance(30)
	if c.Active() != Protect {
		t.Fatal("selector left protection while working was failed")
	}
	if c.Switches != 1 {
		t.Fatalf("switches = %d, want 1 (no flap through working)", c.Switches)
	}
	if k1, _ := c.TxK1K2(); k1 != K1(ReqSignalFail, 1) {
		t.Fatalf("tx K1 = %#x, want signal-fail", k1)
	}
}

// TestLockoutDuringWTR: a lockout command in the middle of the WTR
// countdown pre-empts everything — the selector returns to working
// immediately, the WTR is abandoned, and a working-line SF while
// locked out must NOT move the selector. Clearing the lockout with the
// failure still standing switches to protection at last.
func TestLockoutDuringWTR(t *testing.T) {
	c := NewController(Config{Revertive: true, WaitToRestore: 50})
	c.SetSignal(2, Working, true, false)
	c.Advance(2)
	c.SetSignal(10, Working, false, false)
	c.Advance(10) // WTR armed, expiry at 60

	c.Lockout(20)
	c.Advance(20)
	if c.Active() != Working {
		t.Fatal("lockout did not force the selector to working")
	}
	if k1, _ := c.TxK1K2(); k1 != K1(ReqLockout, 0) {
		t.Fatalf("tx K1 under lockout = %#x", k1)
	}

	// New SF while locked out: protection is unavailable.
	c.SetSignal(30, Working, true, false)
	for now := int64(30); now < 70; now += 5 {
		c.Advance(now)
		if c.Active() != Working {
			t.Fatalf("selector moved at %d despite lockout", now)
		}
	}

	// Lockout clears with the failure still standing: switch now, and
	// the switch duration dates from the command clearing, not from the
	// 40-tick-old condition.
	c.Clear()
	c.Advance(70)
	if c.Active() != Protect {
		t.Fatal("did not switch after lockout cleared")
	}
	if c.Switches != 3 || c.ToProtect != 2 || c.ToWorking != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}

	// And the eventual heal still runs a clean WTR from scratch.
	c.SetSignal(80, Working, false, false)
	c.Advance(80)
	if k1, _ := c.TxK1K2(); k1 != K1(ReqWaitToRestore, 1) {
		t.Fatalf("tx K1 = %#x, want wait-to-restore", k1)
	}
	c.Advance(129)
	if c.Active() != Protect {
		t.Fatal("reverted before the post-lockout WTR expired")
	}
	c.Advance(130)
	if c.Active() != Working {
		t.Fatal("did not revert after the post-lockout WTR")
	}
}
