// Package aps implements a 1+1 linear Automatic Protection Switching
// controller in the GR-253 §5.3 / ITU-T G.841 style: the survivability
// layer that pairs every working SONET line with a permanently bridged
// protect line and moves the receive selector between them in response
// to signal fail / signal degrade conditions, far-end requests, and
// external commands — without disturbing the PPP session riding the
// payload.
//
// Signalling uses the K1/K2 bytes of the line overhead on the
// protection line (carried by the sonet framer/deframer, which also
// applies the three-frame byte-persistence filter). K1 carries the
// highest-priority local request and the channel it concerns; K2
// carries the bridged channel and the architecture/mode indication.
// The controller is deterministic and clocked in virtual time: feed it
// line conditions (SetSignal), accepted far-end bytes (ReceiveK1K2)
// and external commands, then Advance(now) once per frame time.
package aps

import "fmt"

// Line identifies a member of the protected pair.
type Line int

// The two lines of a 1+1 group.
const (
	Working Line = 0
	Protect Line = 1
)

func (l Line) String() string {
	if l == Protect {
		return "protect"
	}
	return "working"
}

// Request is a K1 request code (the byte's upper nibble). The numeric
// value is the GR-253 priority: a higher code pre-empts a lower one.
type Request byte

// K1 request codes, ascending priority.
const (
	ReqNoRequest      Request = 0x0
	ReqDoNotRevert    Request = 0x1
	ReqReverseRequest Request = 0x2
	ReqExercise       Request = 0x4
	ReqWaitToRestore  Request = 0x6
	ReqManualSwitch   Request = 0x8
	ReqSignalDegrade  Request = 0xA
	ReqSignalFail     Request = 0xC
	ReqForcedSwitch   Request = 0xE
	ReqLockout        Request = 0xF
)

func (r Request) String() string {
	switch r {
	case ReqNoRequest:
		return "no-request"
	case ReqDoNotRevert:
		return "do-not-revert"
	case ReqReverseRequest:
		return "reverse-request"
	case ReqExercise:
		return "exercise"
	case ReqWaitToRestore:
		return "wait-to-restore"
	case ReqManualSwitch:
		return "manual"
	case ReqSignalDegrade:
		return "signal-degrade"
	case ReqSignalFail:
		return "signal-fail"
	case ReqForcedSwitch:
		return "forced"
	case ReqLockout:
		return "lockout"
	}
	return fmt.Sprintf("Request(%#x)", byte(r))
}

// K1 composes a K1 byte: request code in the upper nibble, the channel
// the request concerns in the lower (0 = null/working selected, 1 = the
// protected channel).
func K1(r Request, channel int) byte { return byte(r)<<4 | byte(channel&0x0F) }

// ParseK1 splits a K1 byte into request and channel.
func ParseK1(b byte) (Request, int) { return Request(b >> 4), int(b & 0x0F) }

// K2 mode bits (lower three bits).
const (
	ModeUnidirectional = 0x4
	ModeBidirectional  = 0x5
)

// K2 composes a K2 byte: bridged channel in the upper nibble, the
// architecture bit (0 = 1+1) and the provisioned mode below. In 1+1 the
// bridge is permanent, so the bridged channel is always 1.
func K2(channel int, bidirectional bool) byte {
	mode := byte(ModeUnidirectional)
	if bidirectional {
		mode = ModeBidirectional
	}
	return byte(channel&0x0F)<<4 | mode
}

// ParseK2 splits a K2 byte into bridged channel and mode.
func ParseK2(b byte) (channel int, bidirectional bool) {
	return int(b >> 4), b&0x07 == ModeBidirectional
}

// Config parameterises the controller. The zero value is a
// unidirectional, non-revertive group with no hold-off.
type Config struct {
	// Bidirectional runs the bidirectional protocol: an accepted
	// far-end K1 request is evaluated against the local one and, when
	// it wins, both selector moves and a Reverse-Request
	// acknowledgement follow.
	Bidirectional bool
	// Revertive re-selects the working line after its defect clears and
	// the wait-to-restore period expires; non-revertive groups signal
	// Do-Not-Revert and stay on protection.
	Revertive bool
	// WaitToRestore is the revertive hold time in virtual time units
	// (default 32). GR-253 uses 5–12 minutes; the simulation scales it
	// to its frame-time clock.
	WaitToRestore int64
	// HoldOff delays acting on a new SF/SD condition, riding through
	// transients that a lower layer may clear on its own (default 0:
	// switch as fast as the signalling allows).
	HoldOff int64
}

func (c Config) waitToRestore() int64 {
	if c.WaitToRestore > 0 {
		return c.WaitToRestore
	}
	return 32
}

// SwitchEvent is one selector movement.
type SwitchEvent struct {
	Now      int64
	From, To Line
	// Trigger is the winning request that caused the movement.
	Trigger Request
	// Remote reports whether the trigger arrived in rx K1 rather than
	// from a local condition or command.
	Remote bool
	// Duration is the virtual time between the trigger condition first
	// asserting and this selector movement — the switch-completion time
	// the GR-253 50 ms budget bounds.
	Duration int64
}

func (e SwitchEvent) String() string {
	return fmt.Sprintf("%v->%v on %v @%d (took %d)", e.From, e.To, e.Trigger, e.Now, e.Duration)
}

// Stats is the controller's observable record.
type Stats struct {
	Switches   uint64 // selector movements
	ToProtect  uint64
	ToWorking  uint64
	RemoteWins uint64 // evaluations where the far-end request pre-empted
	// LastSwitchAt/LastSwitchTook mirror the most recent SwitchEvent.
	LastSwitchAt   int64
	LastSwitchTook int64
}

// extCmd is a latched external command.
type extCmd int

const (
	extNone extCmd = iota
	extLockout
	extForced
	extManual
)

// Controller is the per-group APS state machine.
type Controller struct {
	Cfg Config
	// OnSwitch observes every selector movement.
	OnSwitch func(SwitchEvent)

	Stats

	selected Line
	sf, sd   [2]bool
	condAt   [2]int64 // rising-edge time of the current SF/SD condition
	ext      extCmd
	extAt    int64
	wtrAt    int64 // wait-to-restore expiry; 0 = not running
	wtrDone  bool  // WTR already served for this restoral; don't re-arm
	rxK1     byte
	rxK2     byte
	rxAt     int64
	txK1     byte
	txK2     byte
	now      int64
}

// NewController returns a controller with the selector on the working
// line and no request active.
func NewController(cfg Config) *Controller {
	c := &Controller{Cfg: cfg}
	c.txK1 = K1(ReqNoRequest, 0)
	c.txK2 = K2(1, cfg.Bidirectional)
	return c
}

// Active returns the line the receive selector currently follows.
func (c *Controller) Active() Line { return c.selected }

// Now returns the virtual time of the latest Advance — the stamp an
// OAM-style host uses for commands issued outside the tick loop.
func (c *Controller) Now() int64 { return c.now }

// RxK1K2 returns the last accepted far-end pair.
func (c *Controller) RxK1K2() (k1, k2 byte) { return c.rxK1, c.rxK2 }

// TxK1K2 returns the K1/K2 pair to transmit on the protection line.
func (c *Controller) TxK1K2() (k1, k2 byte) { return c.txK1, c.txK2 }

// SetSignal reports the current SF/SD condition of one line, as
// integrated by that line's defect monitor (SF covers the whole
// service-affecting set; SD the degrade threshold). now stamps the
// rising edge for hold-off and switch-duration accounting.
func (c *Controller) SetSignal(now int64, line Line, sf, sd bool) {
	i := int(line) & 1
	if (sf || sd) && !(c.sf[i] || c.sd[i]) {
		c.condAt[i] = now
	}
	c.sf[i], c.sd[i] = sf, sd
}

// ReceiveK1K2 delivers an accepted (persistence-filtered) far-end
// K1/K2 pair from the protection line's deframer.
func (c *Controller) ReceiveK1K2(now int64, k1, k2 byte) {
	if k1 != c.rxK1 {
		c.rxAt = now
	}
	c.rxK1, c.rxK2 = k1, k2
}

// Lockout locks the selector to the working line: protection is
// unavailable until Clear.
func (c *Controller) Lockout(now int64) { c.ext, c.extAt = extLockout, now }

// ForcedSwitch forces the selector to the protection line regardless of
// signal conditions (pre-empted only by lockout and SF on protection).
func (c *Controller) ForcedSwitch(now int64) { c.ext, c.extAt = extForced, now }

// ManualSwitch requests the protection line at a priority below SF/SD:
// a later defect on the protection line pre-empts it.
func (c *Controller) ManualSwitch(now int64) { c.ext, c.extAt = extManual, now }

// Clear removes any external command.
func (c *Controller) Clear() { c.ext = extNone }

// held reports whether line i's SF/SD condition has persisted past the
// hold-off timer.
func (c *Controller) held(i int, now int64) bool {
	return now-c.condAt[i] >= c.Cfg.HoldOff
}

// localRequest evaluates the highest-priority local condition, in the
// GR-253 order: lockout > SF on protection > forced > SF on working >
// SD on protection > SD on working > manual > wait-to-restore >
// do-not-revert > no request. Channel 0 selects working, 1 protect.
func (c *Controller) localRequest(now int64) (Request, int, int64) {
	switch {
	case c.ext == extLockout:
		return ReqLockout, 0, c.extAt
	case c.sf[Protect] && c.held(int(Protect), now):
		return ReqSignalFail, 0, c.condAt[Protect]
	case c.ext == extForced:
		return ReqForcedSwitch, 1, c.extAt
	case c.sf[Working] && c.held(int(Working), now):
		return ReqSignalFail, 1, c.condAt[Working]
	case c.sd[Protect] && c.held(int(Protect), now):
		return ReqSignalDegrade, 0, c.condAt[Protect]
	case c.sd[Working] && c.held(int(Working), now):
		return ReqSignalDegrade, 1, c.condAt[Working]
	case c.ext == extManual:
		return ReqManualSwitch, 1, c.extAt
	case c.wtrAt != 0:
		return ReqWaitToRestore, 1, c.condAt[Working]
	case !c.Cfg.Revertive && c.selected == Protect:
		return ReqDoNotRevert, 1, c.condAt[Working]
	}
	return ReqNoRequest, 0, now
}

// Advance runs one evaluation pass at virtual time now: wait-to-restore
// bookkeeping, local-vs-remote request arbitration, selector update and
// K1/K2 generation. Call it once per frame time, after the tick's line
// observations have been fed in.
func (c *Controller) Advance(now int64) {
	c.now = now

	// Wait-to-restore: in a revertive group, once the selector sits on
	// protection and the working line is healthy again, hold it there
	// for the WTR period, then release (the request evaluation below
	// then finds nothing and reverts). Any new working-line condition
	// or external command cancels the countdown. The timer runs once
	// per restoral — after expiry it must not re-arm while the far end
	// is still winding down its own revert, or the two ends keep each
	// other on protection with alternating WTR requests forever.
	workingClean := !c.sf[Working] && !c.sd[Working]
	if c.Cfg.Revertive && c.selected == Protect && workingClean && c.ext == extNone {
		if c.wtrDone {
			// Served: nothing asserts; the selector reverts below as
			// soon as the far end stops requesting protection.
		} else if c.wtrAt == 0 {
			c.wtrAt = now + c.Cfg.waitToRestore()
		} else if now >= c.wtrAt {
			c.wtrAt, c.wtrDone = 0, true // expired: selector reverts below
		}
	} else {
		c.wtrAt, c.wtrDone = 0, false
	}
	// WTR released this pass: recompute with the request gone.
	req, ch, since := c.localRequest(now)
	if c.Cfg.Revertive && c.selected == Protect && workingClean && c.ext == extNone &&
		c.wtrAt == 0 && req == ReqWaitToRestore {
		req, ch, since = ReqNoRequest, 0, now
	}

	// Bidirectional arbitration: an originating far-end request beats a
	// weaker local one (Reverse-Request is an acknowledgement, never an
	// originator). Ties resolve toward the null channel — selecting
	// working is the safe direction.
	remote := false
	rreq, rch := ParseK1(c.rxK1)
	if c.Cfg.Bidirectional && rreq != ReqReverseRequest {
		if rreq > req || (rreq == req && rch == 0) {
			if rreq > ReqNoRequest {
				req, ch, since = rreq, rch, c.rxAt
				remote = true
				c.RemoteWins++
			}
		}
	}

	// Selector position follows the winning request's channel; the
	// protection line is only usable when not failed and not locked out.
	target := Working
	if ch == 1 && req > ReqNoRequest && !c.sf[Protect] && c.ext != extLockout {
		target = Protect
	}
	if target != c.selected {
		e := SwitchEvent{
			Now: now, From: c.selected, To: target,
			Trigger: req, Remote: remote, Duration: now - since,
		}
		if e.Duration < 0 {
			e.Duration = 0
		}
		c.selected = target
		c.Switches++
		if target == Protect {
			c.ToProtect++
		} else {
			c.ToWorking++
		}
		c.LastSwitchAt, c.LastSwitchTook = now, e.Duration
		if c.OnSwitch != nil {
			c.OnSwitch(e)
		}
	}

	// Transmit signalling: acknowledge a winning remote request with
	// Reverse-Request, otherwise signal the local verdict.
	if remote {
		c.txK1 = K1(ReqReverseRequest, ch)
	} else {
		c.txK1 = K1(req, ch)
	}
	c.txK2 = K2(1, c.Cfg.Bidirectional)
}
