package auth

import "bytes"

// CHAPServer is the authenticator: it issues challenges and verifies
// MD5 responses (RFC 1994). Unlike PAP, the secret never crosses the
// wire, and the authenticator may re-challenge at any time.
type CHAPServer struct {
	// Name identifies this authenticator in challenges.
	Name string
	// Secrets maps peer name → shared secret.
	Secrets map[string]string
	// Rand supplies challenge bytes (required; seed it well).
	Rand func() byte
	// Send transmits a CHAP packet (required).
	Send func(*Packet)

	id        byte
	challenge []byte
	result    Result
	// Peer is the authenticated identity after Success.
	Peer string
}

// Challenge issues a fresh challenge (call at auth-phase start and for
// periodic re-authentication).
func (s *CHAPServer) Challenge() {
	s.id++
	s.result = Pending
	s.challenge = make([]byte, 16)
	for i := range s.challenge {
		s.challenge[i] = s.Rand()
	}
	data := []byte{byte(len(s.challenge))}
	data = append(data, s.challenge...)
	data = append(data, s.Name...)
	s.Send(&Packet{Code: chapChallenge, ID: s.id, Data: data})
}

// Result reports the exchange outcome.
func (s *CHAPServer) Result() Result { return s.result }

// Receive processes a Response.
func (s *CHAPServer) Receive(p *Packet) {
	if p.Code != chapResponse || p.ID != s.id || s.challenge == nil {
		return
	}
	if len(p.Data) < 1 {
		return
	}
	vn := int(p.Data[0])
	if 1+vn > len(p.Data) {
		return
	}
	value := p.Data[1 : 1+vn]
	name := string(p.Data[1+vn:])
	secret, known := s.Secrets[name]
	want := chapHash(p.ID, []byte(secret), s.challenge)
	if known && bytes.Equal(value, want) {
		s.result = Success
		s.Peer = name
		s.Send(&Packet{Code: chapSuccess, ID: p.ID})
		return
	}
	s.result = Failure
	s.Send(&Packet{Code: chapFailure, ID: p.ID})
}

// CHAPClient is the authenticatee: it answers challenges with the MD5
// of the shared secret.
type CHAPClient struct {
	// Name is the identity presented in responses.
	Name string
	// Secret is the shared secret.
	Secret string
	// Send transmits a CHAP packet (required).
	Send func(*Packet)

	result Result
}

// Result reports the exchange outcome.
func (c *CHAPClient) Result() Result { return c.result }

// Receive processes Challenge/Success/Failure packets.
func (c *CHAPClient) Receive(p *Packet) {
	switch p.Code {
	case chapChallenge:
		if len(p.Data) < 1 {
			return
		}
		vn := int(p.Data[0])
		if 1+vn > len(p.Data) {
			return
		}
		challenge := p.Data[1 : 1+vn]
		value := chapHash(p.ID, []byte(c.Secret), challenge)
		data := []byte{byte(len(value))}
		data = append(data, value...)
		data = append(data, c.Name...)
		c.Send(&Packet{Code: chapResponse, ID: p.ID, Data: data})
	case chapSuccess:
		c.result = Success
	case chapFailure:
		c.result = Failure
	}
}
