package auth

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPacketRoundTrip(t *testing.T) {
	f := func(code, id byte, data []byte) bool {
		p := &Packet{Code: code, ID: id, Data: data}
		q, err := Parse(p.Marshal(nil))
		if err != nil {
			return false
		}
		if q.Code != code || q.ID != id || len(q.Data) != len(data) {
			return false
		}
		for i := range data {
			if q.Data[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := Parse([]byte{1, 2}); err != ErrMalformed {
		t.Error("short packet accepted")
	}
	if _, err := Parse([]byte{1, 2, 0, 99}); err != ErrMalformed {
		t.Error("overlong length accepted")
	}
}

func papPair(secrets map[string]string, id, pw string) (*PAPClient, *PAPServer) {
	var c *PAPClient
	var s *PAPServer
	c = &PAPClient{PeerID: id, Password: pw, Send: func(p *Packet) {
		q, _ := Parse(p.Marshal(nil))
		s.Receive(q)
	}}
	s = &PAPServer{Secrets: secrets, Send: func(p *Packet) {
		q, _ := Parse(p.Marshal(nil))
		c.Receive(q)
	}}
	return c, s
}

func TestPAPSuccess(t *testing.T) {
	c, s := papPair(map[string]string{"alice": "s3cret"}, "alice", "s3cret")
	c.Start()
	if c.Result() != Success || s.Result() != Success {
		t.Fatalf("results: %v / %v", c.Result(), s.Result())
	}
	if s.Peer != "alice" {
		t.Errorf("peer = %q", s.Peer)
	}
	if c.Message != "welcome" {
		t.Errorf("message = %q", c.Message)
	}
}

func TestPAPWrongPassword(t *testing.T) {
	c, s := papPair(map[string]string{"alice": "s3cret"}, "alice", "wrong")
	c.Start()
	if c.Result() != Failure || s.Result() != Failure {
		t.Fatalf("results: %v / %v", c.Result(), s.Result())
	}
}

func TestPAPUnknownUser(t *testing.T) {
	c, s := papPair(map[string]string{"alice": "s3cret"}, "mallory", "s3cret")
	c.Start()
	if c.Result() != Failure || s.Result() != Failure {
		t.Fatal("unknown user accepted")
	}
}

func TestPAPEmptyPasswordNeverMatches(t *testing.T) {
	c, _ := papPair(map[string]string{"ghost": ""}, "ghost", "")
	c.Start()
	if c.Result() == Success {
		t.Fatal("empty password accepted")
	}
}

func TestPAPStaleReplyIgnored(t *testing.T) {
	c := &PAPClient{PeerID: "a", Password: "b", Send: func(*Packet) {}}
	c.Start()
	c.Receive(&Packet{Code: papAck, ID: 99})
	if c.Result() != Pending {
		t.Error("stale ack accepted")
	}
}

func chapPair(secrets map[string]string, name, secret string) (*CHAPClient, *CHAPServer) {
	rng := rand.New(rand.NewSource(5))
	var c *CHAPClient
	var s *CHAPServer
	c = &CHAPClient{Name: name, Secret: secret, Send: func(p *Packet) {
		q, _ := Parse(p.Marshal(nil))
		s.Receive(q)
	}}
	s = &CHAPServer{Name: "gateway", Secrets: secrets,
		Rand: func() byte { return byte(rng.Intn(256)) },
		Send: func(p *Packet) {
			q, _ := Parse(p.Marshal(nil))
			c.Receive(q)
		}}
	return c, s
}

func TestCHAPSuccess(t *testing.T) {
	c, s := chapPair(map[string]string{"bob": "hunter2"}, "bob", "hunter2")
	s.Challenge()
	if c.Result() != Success || s.Result() != Success {
		t.Fatalf("results: %v / %v", c.Result(), s.Result())
	}
	if s.Peer != "bob" {
		t.Errorf("peer = %q", s.Peer)
	}
}

func TestCHAPWrongSecret(t *testing.T) {
	c, s := chapPair(map[string]string{"bob": "hunter2"}, "bob", "letmein")
	s.Challenge()
	if c.Result() != Failure || s.Result() != Failure {
		t.Fatal("wrong secret accepted")
	}
}

func TestCHAPRechallenge(t *testing.T) {
	c, s := chapPair(map[string]string{"bob": "hunter2"}, "bob", "hunter2")
	s.Challenge()
	if s.Result() != Success {
		t.Fatal("first challenge failed")
	}
	// Periodic re-authentication (RFC 1994 §2): a fresh challenge with
	// a new id must succeed again.
	s.Challenge()
	if s.Result() != Success || c.Result() != Success {
		t.Fatal("re-challenge failed")
	}
}

func TestCHAPReplayRejected(t *testing.T) {
	// Capture a valid response, then replay it against a new challenge:
	// the hash covers the challenge value, so it must fail.
	rng := rand.New(rand.NewSource(9))
	var captured *Packet
	s := &CHAPServer{Name: "gw", Secrets: map[string]string{"bob": "pw"},
		Rand: func() byte { return byte(rng.Intn(256)) },
		Send: func(*Packet) {}}
	c := &CHAPClient{Name: "bob", Secret: "pw", Send: func(p *Packet) {
		q, _ := Parse(p.Marshal(nil))
		captured = q
	}}
	s.Challenge()
	// Deliver the challenge manually to the client to capture response.
	chal := &Packet{Code: chapChallenge, ID: s.id, Data: append([]byte{byte(len(s.challenge))}, append(append([]byte{}, s.challenge...), "gw"...)...)}
	c.Receive(chal)
	if captured == nil {
		t.Fatal("no response captured")
	}
	// New challenge; replay the old response with the new id.
	s.Challenge()
	replay := &Packet{Code: chapResponse, ID: s.id, Data: captured.Data}
	s.Receive(replay)
	if s.Result() == Success {
		t.Fatal("replayed response accepted")
	}
}

func TestCHAPHashVector(t *testing.T) {
	// MD5(0x01 | "secret" | 0x0102030405) — check determinism and
	// sensitivity to each input.
	a := chapHash(1, []byte("secret"), []byte{1, 2, 3, 4, 5})
	b := chapHash(1, []byte("secret"), []byte{1, 2, 3, 4, 5})
	if string(a) != string(b) || len(a) != 16 {
		t.Fatal("hash not deterministic or wrong size")
	}
	if string(chapHash(2, []byte("secret"), []byte{1, 2, 3, 4, 5})) == string(a) {
		t.Error("id not mixed in")
	}
	if string(chapHash(1, []byte("Secret"), []byte{1, 2, 3, 4, 5})) == string(a) {
		t.Error("secret not mixed in")
	}
	if string(chapHash(1, []byte("secret"), []byte{1, 2, 3, 4, 6})) == string(a) {
		t.Error("challenge not mixed in")
	}
}

func TestResultString(t *testing.T) {
	if Pending.String() != "pending" || Success.String() != "success" || Failure.String() != "failure" {
		t.Error("strings")
	}
}
