package auth

// PAPClient is the authenticatee: it sends Authenticate-Request until
// acknowledged (RFC 1334 §2).
type PAPClient struct {
	// PeerID and Password are the credentials to present.
	PeerID, Password string
	// Send transmits a PAP packet (required).
	Send func(*Packet)

	id     byte
	result Result
	// Message carries the authenticator's reply text.
	Message string
}

// Start transmits the first Authenticate-Request.
func (c *PAPClient) Start() {
	c.id++
	c.result = Pending
	c.Send(&Packet{Code: papRequest, ID: c.id, Data: papCreds(c.PeerID, c.Password)})
}

// Result reports the exchange outcome.
func (c *PAPClient) Result() Result { return c.result }

// Receive processes an authenticator reply.
func (c *PAPClient) Receive(p *Packet) {
	if p.ID != c.id {
		return
	}
	switch p.Code {
	case papAck:
		c.result = Success
		c.Message = papMessage(p.Data)
	case papNak:
		c.result = Failure
		c.Message = papMessage(p.Data)
	}
}

func papCreds(id, pw string) []byte {
	out := []byte{byte(len(id))}
	out = append(out, id...)
	out = append(out, byte(len(pw)))
	return append(out, pw...)
}

func papMessage(b []byte) string {
	if len(b) < 1 || int(b[0])+1 > len(b) {
		return ""
	}
	return string(b[1 : 1+int(b[0])])
}

// PAPServer is the authenticator: it validates Authenticate-Requests
// against a secrets table.
type PAPServer struct {
	// Secrets maps peer-id → password.
	Secrets map[string]string
	// Send transmits a PAP packet (required).
	Send func(*Packet)

	result Result
	// Peer is the authenticated identity after Success.
	Peer string
}

// Result reports the exchange outcome.
func (s *PAPServer) Result() Result { return s.result }

// Receive processes an Authenticate-Request.
func (s *PAPServer) Receive(p *Packet) {
	if p.Code != papRequest {
		return
	}
	id, pw, ok := parsePAPCreds(p.Data)
	if ok && s.Secrets[id] == pw && pw != "" {
		s.result = Success
		s.Peer = id
		s.Send(&Packet{Code: papAck, ID: p.ID, Data: papText("welcome")})
		return
	}
	s.result = Failure
	s.Send(&Packet{Code: papNak, ID: p.ID, Data: papText("bad credentials")})
}

func parsePAPCreds(b []byte) (id, pw string, ok bool) {
	if len(b) < 1 {
		return "", "", false
	}
	n := int(b[0])
	if 1+n+1 > len(b) {
		return "", "", false
	}
	id = string(b[1 : 1+n])
	rest := b[1+n:]
	m := int(rest[0])
	if 1+m > len(rest) {
		return "", "", false
	}
	return id, string(rest[1 : 1+m]), true
}

func papText(msg string) []byte {
	out := []byte{byte(len(msg))}
	return append(out, msg...)
}
