// Package auth implements the PPP authentication phase: the Password
// Authentication Protocol (PAP, RFC 1334) and the Challenge Handshake
// Authentication Protocol (CHAP, RFC 1994). Authentication sits between
// LCP reaching Opened and the NCPs starting (RFC 1661 §3.5); an
// authenticator demands it through the LCP authentication-protocol
// option.
package auth

import (
	"crypto/md5"
	"errors"
)

// PPP protocol numbers.
const (
	ProtoPAP  = 0xC023
	ProtoCHAP = 0xC223
)

// CHAPAlgorithmMD5 is the only algorithm of RFC 1994.
const CHAPAlgorithmMD5 = 5

// Packet codes shared by PAP and CHAP (values differ in meaning).
const (
	papRequest = 1
	papAck     = 2
	papNak     = 3

	chapChallenge = 1
	chapResponse  = 2
	chapSuccess   = 3
	chapFailure   = 4
)

// Errors.
var (
	ErrMalformed = errors.New("auth: malformed packet")
	ErrBadSecret = errors.New("auth: authentication failed")
)

// Packet is one authentication-protocol packet (same header layout as
// LCP: code, id, length).
type Packet struct {
	Code byte
	ID   byte
	Data []byte
}

// Marshal appends the wire encoding.
func (p *Packet) Marshal(dst []byte) []byte {
	n := 4 + len(p.Data)
	dst = append(dst, p.Code, p.ID, byte(n>>8), byte(n))
	return append(dst, p.Data...)
}

// Parse decodes a packet from a PPP information field.
func Parse(b []byte) (*Packet, error) {
	if len(b) < 4 {
		return nil, ErrMalformed
	}
	n := int(b[2])<<8 | int(b[3])
	if n < 4 || n > len(b) {
		return nil, ErrMalformed
	}
	return &Packet{Code: b[0], ID: b[1], Data: b[4:n]}, nil
}

// chapHash computes the RFC 1994 MD5 response: MD5(id | secret |
// challenge).
func chapHash(id byte, secret, challenge []byte) []byte {
	h := md5.New()
	h.Write([]byte{id})
	h.Write(secret)
	h.Write(challenge)
	return h.Sum(nil)
}

// Result is the outcome of an authentication exchange.
type Result int

// Outcomes.
const (
	Pending Result = iota
	Success
	Failure
)

func (r Result) String() string {
	switch r {
	case Success:
		return "success"
	case Failure:
		return "failure"
	default:
		return "pending"
	}
}
