// Package obsnet is the fleet side of the observatory: it pulls the
// telemetry surfaces one p5sim process exposes over HTTP (/metrics,
// /status) from N processes, merges them under per-instance labels,
// and renders one columnar board covering the whole fleet — per-line
// one-way latency, transport health, SLO burn rates and defect alarms
// across every instance (DESIGN.md §16). It also joins correlated
// flight-capture pairs into a single two-sided incident timeline
// (join.go). p5stat -fleet and p5trace -join are thin shells over this
// package.
package obsnet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Instance is one scraped fleet member.
type Instance struct {
	// Addr is the instance's telemetry address as given to Scrape
	// (host:port or URL); it doubles as the injected instance label.
	Addr string
	// Series is the parsed /metrics snapshot with the instance label
	// already injected (nil when the scrape failed).
	Series []telemetry.Series
	// Status is the decoded /status document.
	Status transport.StatusDoc
	// Err records a failed or partial scrape; the board renders the
	// instance as down instead of dropping it.
	Err error
}

// client is the scrape HTTP client; a fleet board must not hang on one
// dead instance.
var client = &http.Client{Timeout: 5 * time.Second}

func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

func get(url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	// /health answers 503 while unhealthy; for the scraped documents a
	// non-200 is a failure.
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return body, nil
}

// Scrape pulls one instance's /metrics and /status. The returned
// Instance always carries Addr; Err marks a failed scrape.
func Scrape(addr string) Instance {
	inst := Instance{Addr: addr}
	base := baseURL(addr)

	body, err := get(base + "/metrics")
	if err != nil {
		inst.Err = err
		return inst
	}
	series, err := telemetry.ParseText(strings.NewReader(string(body)))
	if err != nil {
		inst.Err = fmt.Errorf("parse %s/metrics: %w", base, err)
		return inst
	}
	inst.Series = telemetry.InjectLabel(series, "instance", addr)

	if body, err = get(base + "/status"); err != nil {
		inst.Err = err
		return inst
	}
	if err := json.Unmarshal(body, &inst.Status); err != nil {
		inst.Err = fmt.Errorf("decode %s/status: %w", base, err)
	}
	return inst
}

// ScrapeAll scrapes every address, in order. Failures are carried in
// the per-instance Err rather than aborting the fleet view.
func ScrapeAll(addrs []string) []Instance {
	out := make([]Instance, len(addrs))
	for i, a := range addrs {
		out[i] = Scrape(a)
	}
	return out
}

// Merged concatenates the instance-labelled series of every
// successfully scraped instance — the fleet-wide sample set
// SeriesQuantile and the SLO rows run over.
func Merged(instances []Instance) []telemetry.Series {
	var all []telemetry.Series
	for _, in := range instances {
		all = append(all, in.Series...)
	}
	return all
}

// WriteFleetBoard renders the fleet: one header line per instance
// (health, uptime, wire version, armed subsystems), a per-line
// transport table across all instances (liveness, one-way latency
// p50/p99, RTT p50, wire counters, version-skew drops), and the SLO
// burn-rate/alarm rows. Returns an error only for writer failures.
func WriteFleetBoard(w io.Writer, instances []Instance) error {
	versions := map[int]bool{}
	for _, in := range instances {
		if in.Err != nil {
			fmt.Fprintf(w, "instance %-24s DOWN  (%v)\n", in.Addr, in.Err)
			continue
		}
		info := in.Status.Info
		health := "healthy"
		if !in.Status.Healthy {
			health = "DEGRADED"
		}
		versions[info.WireVersion] = true
		armed := make([]string, 0, 3)
		if info.FlightArmed {
			armed = append(armed, "flight")
		}
		if info.ProfArmed {
			armed = append(armed, "prof")
		}
		if info.LatencyTracing {
			armed = append(armed, "latency")
		}
		if len(armed) == 0 {
			armed = append(armed, "none")
		}
		fmt.Fprintf(w, "instance %-24s %-8s up %6ds  wire v%d  armed: %s\n",
			in.Addr, health, info.UptimeSeconds, info.WireVersion, strings.Join(armed, ","))
	}
	if len(versions) > 1 {
		fmt.Fprintf(w, "WARNING: wire version skew across the fleet (%d distinct versions)\n", len(versions))
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "\ninstance\tline\tup\toneway-p50µs\toneway-p99µs\trtt-p50µs\ttx-chunks\trx-chunks\treconn\tresets\trx-drop\tbad-ver\t")
	for _, in := range instances {
		if in.Err != nil {
			continue
		}
		for _, t := range in.Status.Transports {
			up := "up"
			if !t.Up {
				up = "DOWN"
			}
			p50, p99, rtt := "-", "-", "-"
			if t.Latency != nil && t.Latency.Samples > 0 {
				p50 = fmt.Sprint(t.Latency.OneWayP50US)
				p99 = fmt.Sprint(t.Latency.OneWayP99US)
			}
			if t.Latency != nil && t.Latency.RTTSamples > 0 {
				rtt = fmt.Sprint(t.Latency.RTTP50US)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
				in.Addr, t.Name, up, p50, p99, rtt,
				t.Stats.TxChunks, t.Stats.RxChunks,
				t.Stats.Reconnects, t.Stats.Resets,
				t.Stats.RxDropped, t.Stats.RxBadVersion)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return writeSLORows(w, instances)
}

// writeSLORows renders the fleet's SLO state: one row per instance and
// SLO with the worst burn rate and the alarm flag.
func writeSLORows(w io.Writer, instances []Instance) error {
	type row struct {
		instance, slo string
		burnMilli     float64
		alarm         bool
	}
	var rows []row
	for _, in := range instances {
		burns := map[string]float64{}
		alarms := map[string]bool{}
		for _, s := range in.Series {
			switch s.Name {
			case "slo_worst_burn_rate":
				burns[s.Label("slo")] = s.Value
			case "slo_alarm":
				alarms[s.Label("slo")] = s.Value != 0
			}
		}
		for slo, b := range burns {
			rows = append(rows, row{in.Addr, slo, b, alarms[slo]})
		}
	}
	if len(rows) == 0 {
		return nil
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].instance != rows[j].instance {
			return rows[i].instance < rows[j].instance
		}
		return rows[i].slo < rows[j].slo
	})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "\ninstance\tslo\tworst-burn\talarm\t")
	for _, r := range rows {
		alarm := "-"
		if r.alarm {
			alarm = "ALARM"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%s\t\n", r.instance, r.slo, r.burnMilli, alarm)
	}
	return tw.Flush()
}
