package obsnet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/flight"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// fakeInstance serves the two scrape surfaces one p5sim process exposes.
func fakeInstance(t *testing.T, metrics string, doc transport.StatusDoc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(metrics))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(doc)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

const metricsA = `# HELP transport_oneway_latency_us one-way latency
# TYPE transport_oneway_latency_us histogram
transport_oneway_latency_us_bucket{line="port0_a",le="100"} 10
transport_oneway_latency_us_bucket{line="port0_a",le="250"} 12
transport_oneway_latency_us_bucket{line="port0_a",le="+Inf"} 12
transport_oneway_latency_us_sum{line="port0_a"} 1400
transport_oneway_latency_us_count{line="port0_a"} 12
slo_worst_burn_rate{slo="frame_loss"} 0.25
slo_alarm{slo="frame_loss"} 0
`

const metricsB = `slo_worst_burn_rate{slo="frame_loss"} 14.5
slo_alarm{slo="frame_loss"} 1
`

func statusDoc(healthy bool, latency *transport.Latency) transport.StatusDoc {
	return transport.StatusDoc{
		Healthy: healthy,
		Info: transport.BoardInfo{
			Start:          "2026-08-09T00:00:00Z",
			UptimeSeconds:  42,
			WireVersion:    transport.WireVersion,
			FlightArmed:    true,
			LatencyTracing: true,
		},
		Transports: []transport.TransportStatus{{
			Name:    "port0_a",
			Up:      healthy,
			Stats:   transport.Stats{TxChunks: 100, RxChunks: 99, RxDropped: 1},
			Latency: latency,
		}},
	}
}

func TestScrapeAndFleetBoard(t *testing.T) {
	latA := &transport.Latency{Samples: 12, OneWayP50US: 100, OneWayP99US: 250, RTTSamples: 4, RTTP50US: 180}
	srvA := fakeInstance(t, metricsA, statusDoc(true, latA))
	srvB := fakeInstance(t, metricsB, statusDoc(false, nil))

	addrA := strings.TrimPrefix(srvA.URL, "http://")
	instances := ScrapeAll([]string{addrA, srvB.URL, "127.0.0.1:1"})
	if len(instances) != 3 {
		t.Fatalf("instances = %d, want 3", len(instances))
	}
	a, b, dead := instances[0], instances[1], instances[2]
	if a.Err != nil || b.Err != nil {
		t.Fatalf("scrape errors: %v / %v", a.Err, b.Err)
	}
	if dead.Err == nil {
		t.Fatalf("scrape of dead address succeeded")
	}
	if !a.Status.Healthy || a.Status.Info.WireVersion != transport.WireVersion {
		t.Fatalf("instance A status = %+v", a.Status)
	}
	if b.Status.Healthy {
		t.Fatalf("instance B reported healthy")
	}
	for _, s := range a.Series {
		if s.Label("instance") != addrA {
			t.Fatalf("series %q missing instance label: %+v", s.Name, s.Labels)
		}
	}

	// The merged fleet set answers quantile queries across instances.
	merged := Merged(instances)
	p50, ok := telemetry.SeriesQuantile(merged, "transport_oneway_latency_us", 0.50)
	if !ok || p50 != 100 {
		t.Fatalf("fleet p50 = %d ok=%v, want 100", p50, ok)
	}

	var board strings.Builder
	if err := WriteFleetBoard(&board, instances); err != nil {
		t.Fatalf("WriteFleetBoard: %v", err)
	}
	out := board.String()
	for _, want := range []string{
		addrA, "healthy", "DEGRADED", "DOWN", "wire v2",
		"flight,latency", "port0_a", "100", "250", "180",
		"frame_loss", "14.500", "ALARM",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet board missing %q:\n%s", want, out)
		}
	}
	// Exactly one instance alarms on frame_loss.
	if got := strings.Count(out, "ALARM"); got != 1 {
		t.Fatalf("ALARM count = %d, want 1\n%s", got, out)
	}
}

func TestFleetBoardVersionSkew(t *testing.T) {
	docOld := statusDoc(true, nil)
	docOld.Info.WireVersion = 1
	srvA := fakeInstance(t, "", statusDoc(true, nil))
	srvB := fakeInstance(t, "", docOld)

	var board strings.Builder
	if err := WriteFleetBoard(&board, ScrapeAll([]string{srvA.URL, srvB.URL})); err != nil {
		t.Fatalf("WriteFleetBoard: %v", err)
	}
	if !strings.Contains(board.String(), "wire version skew") {
		t.Fatalf("no skew warning:\n%s", board.String())
	}
}

func joinPair() (*flight.Capture, *flight.Capture) {
	a := &flight.Capture{
		Link: "linkA", Reason: "transport-los", Seq: 1, Now: 1000,
		Incident: 0xBEEF, TickOffset: 0, ClockOffsetNS: 0,
		Events: []telemetry.Event{
			{Seq: 1, At: 990, Scope: "supervisor", Name: "raise", Detail: "los"},
			{Seq: 2, At: 1000, Scope: "flight", Name: "capture"},
		},
	}
	b := &flight.Capture{
		Link: "linkB", Reason: "transport-los", Seq: 1, Now: 1210,
		Incident: 0xBEEF, FromPeer: true, TickOffset: -200, ClockOffsetNS: -5_000_000,
		Events: []telemetry.Event{
			{Seq: 9, At: 1195, Scope: "supervisor", Name: "raise", Detail: "los", V1: 4},
			{Seq: 10, At: 1210, Scope: "flight", Name: "capture"},
		},
	}
	return a, b
}

func TestJoinAlignsTickDomains(t *testing.T) {
	a, b := joinPair()
	j, err := Join(a, b)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	// Only B carries an estimate: its peer-minus-local is A-B = -200, so
	// B-A = +200 and B events shift back by 200 into A's domain.
	if j.TickDelta != 200 {
		t.Fatalf("TickDelta = %d, want 200", j.TickDelta)
	}
	if j.ClockDeltaNS != 5_000_000 {
		t.Fatalf("ClockDeltaNS = %d, want 5ms", j.ClockDeltaNS)
	}
	if len(j.Timeline) != 4 {
		t.Fatalf("timeline length = %d, want 4", len(j.Timeline))
	}
	// Aligned order: A@990, B@1195-200=995, A@1000, B@1210-200=1010.
	wantSides := []string{"A", "B", "A", "B"}
	wantAt := []int64{990, 995, 1000, 1010}
	for i, e := range j.Timeline {
		if e.Side != wantSides[i] || e.AlignedAt != wantAt[i] {
			t.Fatalf("timeline[%d] = %s@%d, want %s@%d", i, e.Side, e.AlignedAt, wantSides[i], wantAt[i])
		}
	}

	var out strings.Builder
	if err := j.WriteTimeline(&out); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	for _, want := range []string{
		"incident 000000000000beef", "linkA", "linkB",
		"peer-triggered", "tick delta (B-A) +200", "los [4 0]",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("timeline missing %q:\n%s", want, out.String())
		}
	}
}

func TestJoinBothSidesEstimated(t *testing.T) {
	a, b := joinPair()
	a.TickOffset = 220 // A's peer-minus-local: B-A = +220
	j, err := Join(a, b)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	// Midpoint of +220 and -(-200): (220 - (-200))/2 = 210.
	if j.TickDelta != 210 {
		t.Fatalf("TickDelta = %d, want 210", j.TickDelta)
	}
}

func TestJoinRejectsMismatchedIncidents(t *testing.T) {
	a, b := joinPair()
	b.Incident = 0xDEAD
	if _, err := Join(a, b); err == nil {
		t.Fatalf("Join accepted mismatched incidents")
	}
	a.Incident, b.Incident = 0, 0
	if _, err := Join(a, b); err == nil {
		t.Fatalf("Join accepted uncorrelated captures")
	}
}
