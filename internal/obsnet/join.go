package obsnet

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/flight"
	"repro/internal/telemetry"
)

// JoinedEvent is one event of the merged incident timeline: a black-box
// event from either side with its tick aligned into side A's domain.
type JoinedEvent struct {
	// Side is "A" or "B".
	Side string
	// AlignedAt is the event's tick translated into A's tick domain.
	AlignedAt int64
	// Event is the original event (Event.At stays in its own domain).
	Event telemetry.Event
}

// Joined is a correlated capture pair merged into one two-sided
// incident view.
type Joined struct {
	Incident uint64
	A, B     *flight.Capture
	// TickDelta is the estimated B-minus-A tick offset used for
	// alignment: an event at B-tick t happened around A-tick t-TickDelta.
	TickDelta int64
	// ClockDeltaNS is the estimated B-minus-A wall-clock offset.
	ClockDeltaNS int64
	// Timeline holds both sides' events sorted by aligned tick.
	Timeline []JoinedEvent
}

// tickDelta estimates the B-minus-A tick offset. Each side's TickOffset
// is its own peer-minus-local estimate, so A's is B−A directly and B's
// is A−B (negate). When both sides estimated, average them; the two
// lower bounds bracket the truth from the same side, so the midpoint
// just splits their staleness.
func tickDelta(a, b *flight.Capture) int64 {
	switch {
	case a.TickOffset != 0 && b.TickOffset != 0:
		return (a.TickOffset - b.TickOffset) / 2
	case a.TickOffset != 0:
		return a.TickOffset
	default:
		return -b.TickOffset
	}
}

func clockDelta(a, b *flight.Capture) int64 {
	switch {
	case a.ClockOffsetNS != 0 && b.ClockOffsetNS != 0:
		return (a.ClockOffsetNS - b.ClockOffsetNS) / 2
	case a.ClockOffsetNS != 0:
		return a.ClockOffsetNS
	default:
		return -b.ClockOffsetNS
	}
}

// Join merges a correlated capture pair into one timeline. The captures
// must share a nonzero incident ID — that is the proof they describe
// the same outage; anything else is an error, not a guess.
func Join(a, b *flight.Capture) (*Joined, error) {
	if a.Incident == 0 || b.Incident == 0 {
		return nil, fmt.Errorf("obsnet: capture not incident-correlated (incidents %#x / %#x)", a.Incident, b.Incident)
	}
	if a.Incident != b.Incident {
		return nil, fmt.Errorf("obsnet: captures belong to different incidents (%#x vs %#x)", a.Incident, b.Incident)
	}
	j := &Joined{
		Incident:     a.Incident,
		A:            a,
		B:            b,
		TickDelta:    tickDelta(a, b),
		ClockDeltaNS: clockDelta(a, b),
	}
	for _, e := range a.Events {
		j.Timeline = append(j.Timeline, JoinedEvent{Side: "A", AlignedAt: e.At, Event: e})
	}
	for _, e := range b.Events {
		j.Timeline = append(j.Timeline, JoinedEvent{Side: "B", AlignedAt: e.At - j.TickDelta, Event: e})
	}
	sort.SliceStable(j.Timeline, func(i, k int) bool {
		return j.Timeline[i].AlignedAt < j.Timeline[k].AlignedAt
	})
	return j, nil
}

// WriteTimeline renders the joined incident: the pair's identity block
// followed by the two-sided event timeline in A's tick domain.
func (j *Joined) WriteTimeline(w io.Writer) error {
	fmt.Fprintf(w, "incident %016x\n", j.Incident)
	side := func(tag string, c *flight.Capture) {
		origin := "local-trigger"
		if c.FromPeer {
			origin = "peer-triggered"
		}
		fmt.Fprintf(w, "  %s %s  reason=%s  seq=%d  at=%d  %s  events=%d\n",
			tag, c.Link, c.Reason, c.Seq, c.Now, origin, len(c.Events))
	}
	side("A:", j.A)
	side("B:", j.B)
	fmt.Fprintf(w, "  alignment: tick delta (B-A) %+d, clock delta %+d ns\n\n", j.TickDelta, j.ClockDeltaNS)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "side\tat(A)\tscope\tevent\tdetail\t")
	for _, e := range j.Timeline {
		detail := e.Event.Detail
		if e.Event.V1 != 0 || e.Event.V2 != 0 {
			detail = fmt.Sprintf("%s [%d %d]", detail, e.Event.V1, e.Event.V2)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t\n", e.Side, e.AlignedAt, e.Event.Scope, e.Event.Name, detail)
	}
	return tw.Flush()
}
