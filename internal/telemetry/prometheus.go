package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), in registration order. HELP
// and TYPE headers are emitted once per metric family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runSamplers()
	r.mu.RLock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	seen := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		if !seen[m.name] {
			seen[m.name] = true
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " "))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case KindCounter:
			fmt.Fprintf(bw, "%s %d\n", m.series(), m.counter.Value())
		case KindGauge:
			if m.fn != nil {
				fmt.Fprintf(bw, "%s %s\n", m.series(), formatFloat(m.fn()))
			} else {
				fmt.Fprintf(bw, "%s %d\n", m.series(), m.gauge.Value())
			}
		case KindHistogram:
			cum := uint64(0)
			counts := m.hist.BucketCounts()
			for i, b := range m.hist.bounds {
				cum += counts[i]
				lbl := append(append([]Label(nil), m.labels...), L("le", fmt.Sprint(b)))
				fmt.Fprintf(bw, "%s %d\n", seriesName(m.name+"_bucket", lbl), cum)
			}
			cum += counts[len(counts)-1]
			lbl := append(append([]Label(nil), m.labels...), L("le", "+Inf"))
			fmt.Fprintf(bw, "%s %d\n", seriesName(m.name+"_bucket", lbl), cum)
			fmt.Fprintf(bw, "%s %d\n", seriesName(m.name+"_sum", m.labels), m.hist.Sum())
			fmt.Fprintf(bw, "%s %d\n", seriesName(m.name+"_count", m.labels), m.hist.Count())
		}
	}
	return bw.Flush()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Series is one parsed exposition line.
type Series struct {
	// Full is the series as written: name plus label block.
	Full string
	// Name is the metric family name alone.
	Name string
	// Labels holds the parsed label pairs (nil when unlabelled).
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Label returns a label value ("" when absent).
func (s Series) Label(key string) string { return s.Labels[key] }

// ParseText parses Prometheus text exposition format into its series,
// in input order. Comment and blank lines are skipped; malformed lines
// are an error. This is the scrape side of WritePrometheus, used by
// p5stat and the golden tests — it understands the subset this package
// emits (no timestamps, no escaped label values beyond \" \\ \n).
func ParseText(r io.Reader) ([]Series, error) {
	var out []Series
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Series, error) {
	// Split the series part from the value: the value is the last
	// whitespace-separated field outside any label block.
	end := strings.LastIndexByte(line, '}')
	var seriesPart, valuePart string
	if end >= 0 {
		seriesPart = strings.TrimSpace(line[:end+1])
		valuePart = strings.TrimSpace(line[end+1:])
	} else {
		i := strings.IndexAny(line, " \t")
		if i < 0 {
			return Series{}, fmt.Errorf("no value in %q", line)
		}
		seriesPart = line[:i]
		valuePart = strings.TrimSpace(line[i:])
	}
	// A timestamp after the value would be a second field; reject it
	// explicitly rather than mis-parse.
	if strings.ContainsAny(valuePart, " \t") {
		valuePart = strings.Fields(valuePart)[0]
	}
	v, err := strconv.ParseFloat(valuePart, 64)
	if err != nil {
		return Series{}, fmt.Errorf("bad value %q: %v", valuePart, err)
	}
	s := Series{Full: seriesPart, Name: seriesPart, Value: v}
	if open := strings.IndexByte(seriesPart, '{'); open >= 0 {
		s.Name = seriesPart[:open]
		labels, err := parseLabels(seriesPart[open+1 : len(seriesPart)-1])
		if err != nil {
			return Series{}, err
		}
		s.Labels = labels
	}
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label block %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", body)
		}
		var val strings.Builder
		i := 1
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		labels[key] = val.String()
		rest = strings.TrimSpace(rest[i+1:])
		rest = strings.TrimPrefix(rest, ",")
		body = strings.TrimSpace(rest)
	}
	return labels, nil
}
