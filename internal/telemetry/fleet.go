package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Fleet-side series plumbing: once snapshots from several processes are
// parsed with ParseText, these helpers relabel, merge and re-render
// them so one registry's exposition format also serves as the fleet
// interchange format. Merging itself is concatenation — InjectLabel
// first, so same-named series from different instances stay distinct.

// InjectLabel returns series with key=value stamped on every sample,
// regenerating Full so the result re-parses. An existing label under
// the same key is overwritten (re-scraping an already-merged snapshot
// stays idempotent). The input slice is not modified.
func InjectLabel(series []Series, key, value string) []Series {
	out := make([]Series, len(series))
	for i, s := range series {
		labels := make(map[string]string, len(s.Labels)+1)
		for k, v := range s.Labels {
			labels[k] = v
		}
		labels[key] = value
		out[i] = Series{
			Full:   seriesName(s.Name, sortedLabels(labels)),
			Name:   s.Name,
			Labels: labels,
			Value:  s.Value,
		}
	}
	return out
}

// sortedLabels renders a label map as a deterministically ordered list.
func sortedLabels(m map[string]string) []Label {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ls := make([]Label, len(keys))
	for i, k := range keys {
		ls[i] = L(k, m[k])
	}
	return ls
}

// WriteSeriesText renders parsed series back to exposition sample
// lines (no HELP/TYPE headers — a merged fleet snapshot has no single
// authoritative metadata source). The output round-trips through
// ParseText.
func WriteSeriesText(w io.Writer, series []Series) error {
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "%s %s\n", s.Full, formatFloat(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// SeriesQuantile estimates quantile q of the histogram family name
// from its parsed <name>_bucket series, considering only samples whose
// labels include every match pair. Buckets that collide on le after
// filtering (the same line scraped from two instances) are summed, so
// the estimate is the fleet-wide distribution. Returns ok=false when
// no observations match.
func SeriesQuantile(series []Series, name string, q float64, match ...Label) (int64, bool) {
	cum := map[float64]uint64{}
	bucket := name + "_bucket"
samples:
	for _, s := range series {
		if s.Name != bucket {
			continue
		}
		for _, m := range match {
			if s.Labels[m.Key] != m.Value {
				continue samples
			}
		}
		le, err := strconv.ParseFloat(s.Labels["le"], 64)
		if err != nil {
			continue
		}
		cum[le] += uint64(s.Value)
	}
	if len(cum) == 0 {
		return 0, false
	}
	les := make([]float64, 0, len(cum))
	for le := range cum {
		les = append(les, le)
	}
	sort.Float64s(les)
	// De-cumulate into the bounds/counts shape QuantileFromBuckets
	// expects: finite bounds plus one overflow slot (+Inf).
	var bounds []int64
	var counts []uint64
	prev := uint64(0)
	for _, le := range les {
		c := cum[le]
		if c < prev {
			return 0, false // not cumulative: corrupt input
		}
		if math.IsInf(le, +1) {
			counts = append(counts, c-prev)
		} else {
			bounds = append(bounds, int64(le))
			counts = append(counts, c-prev)
		}
		prev = c
	}
	if len(bounds) == len(counts) {
		counts = append(counts, 0) // no +Inf sample line: empty overflow
	}
	if len(bounds) == 0 {
		return 0, false
	}
	return QuantileFromBuckets(bounds, counts, q), true
}
