// Package telemetry is the repo's observability spine: a zero-dependency,
// allocation-free metrics registry (atomic counters, gauges, fixed-bucket
// histograms) with named snapshot/delta semantics, plus a bounded
// ring-buffer structured event tracer (trace.go) and Prometheus/expvar/
// pprof exposition (prometheus.go, http.go).
//
// The paper's P5 is only credible at OC-48 because every pipeline stage's
// occupancy, stall and resynchronisation behaviour is visible to the OAM
// block; this package is the software analogue. Probe points stay cheap:
// registration (allocation, map lookups, locking) happens once at wiring
// time, and the hot path is a single uncontended atomic add per event.
//
// Writers and readers may run on different goroutines — all metric state
// is atomic, so a live simulation can be scraped while it runs.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a metric for exposition and delta semantics.
type Kind uint8

// The metric kinds.
const (
	// KindCounter is a monotonically increasing value; Snapshot.Delta
	// subtracts counters.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value; Snapshot.Delta keeps the
	// newer value.
	KindGauge
	// KindHistogram is a fixed-bucket distribution; it flattens into
	// _bucket/_sum/_count counter samples.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one constant key="value" pair attached to a metric series.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. The zero value
// is usable but unregistered; obtain registered counters from a
// Registry.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set stores an absolute value. It exists for mirror counters that are
// synchronised from a single-threaded simulation's plain counters (the
// rtl kernel syncs its per-wire counts this way); callers must keep the
// sequence of stored values non-decreasing for counter semantics to
// hold. A decrease is exposed as a counter reset, which Prometheus
// tolerates.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution over int64 observations
// (cycles, octets, virtual time units). Buckets are cumulative on
// exposition, Prometheus-style; observation is a short linear scan plus
// three atomic adds — no allocation.
type Histogram struct {
	bounds []int64 // inclusive upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Int64
	count  atomic.Uint64
}

// NewHistogram builds an unregistered histogram with the given
// inclusive upper bounds (must be ascending). Most callers want
// Registry.Histogram instead.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the configured upper bounds.
func (h *Histogram) Bounds() []int64 { return append([]int64(nil), h.bounds...) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the overflow (+Inf) bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution from the bucket counts. The estimate is the upper bound
// of the bucket the quantile falls in, which is the conservative
// (pessimistic) reading for latency-style data. Observations in the
// overflow bucket have no upper bound, so the estimate is clamped to
// the highest finite bound rather than inventing one; a histogram whose
// q-quantile lands in +Inf therefore reports bounds[len-1], never a
// fabricated larger value. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	return QuantileFromBuckets(h.bounds, h.BucketCounts(), q)
}

// QuantileFromBuckets is Histogram.Quantile over externally captured
// bucket counts (len(counts) == len(bounds)+1, last entry the +Inf
// overflow bucket), so scraped or snapshotted histograms can be
// summarised with the same clamping rules.
func QuantileFromBuckets(bounds []int64, counts []uint64, q float64) int64 {
	if len(bounds) == 0 || len(counts) != len(bounds)+1 {
		return 0
	}
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the observation that pins the
	// quantile (ceil(q*total), at least 1).
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) || rank == 0 {
		rank++
	}
	cum := uint64(0)
	for i, c := range counts[:len(bounds)] {
		cum += c
		if cum >= rank {
			return bounds[i]
		}
	}
	// Quantile falls in the +Inf bucket: clamp to the highest finite
	// bound instead of returning an unbounded (meaningless) value.
	return bounds[len(bounds)-1]
}

// metric is one registered series.
type metric struct {
	name   string // sanitized family name
	help   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // gauge-func
}

// series renders the full series identity: name plus label block.
func (m *metric) series() string { return seriesName(m.name, m.labels) }

func seriesName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", sanitizeName(l.Key), l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// sanitizeName maps an arbitrary string onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:].
func sanitizeName(s string) string {
	ok := true
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i) {
			ok = false
			break
		}
	}
	if ok && s != "" {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if isNameChar(s[i], i) {
			b.WriteByte(s[i])
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func isNameChar(c byte, pos int) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return c >= '0' && c <= '9' && pos > 0
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use. Registration is get-or-create: asking twice for the
// same series returns the same metric, so independent subsystems can
// share counters by name.
type Registry struct {
	mu       sync.RWMutex
	metrics  []*metric
	index    map[string]*metric
	samplers []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

func (r *Registry) register(name, help string, kind Kind, labels []Label) *metric {
	name = sanitizeName(name)
	key := seriesName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %v (was %v)", key, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: append([]Label(nil), labels...), kind: kind}
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	return m
}

// Counter returns the registered counter for name+labels, creating it
// if needed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, KindCounter, labels)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the registered gauge for name+labels, creating it if
// needed.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, KindGauge, labels)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// exposition time. fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.register(name, help, KindGauge, labels)
	m.fn = fn
}

// Histogram returns the registered histogram for name+labels, creating
// it with the given inclusive upper bounds if needed.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	m := r.register(name, help, KindHistogram, labels)
	if m.hist == nil {
		m.hist = NewHistogram(bounds)
	}
	return m.hist
}

// AttachHistogram adopts an externally created histogram into the
// registry under name+labels, so subsystems that own their histograms
// (the transport latency meter) expose them without copying. Asking
// again for the same series keeps the first attached histogram.
func (r *Registry) AttachHistogram(name, help string, h *Histogram, labels ...Label) {
	m := r.register(name, help, KindHistogram, labels)
	if m.hist == nil {
		m.hist = h
	}
}

// AddSampler registers fn to run at the start of every Snapshot and
// Prometheus exposition, before metric values are read. It is the hook
// for pull-style sources (the prof package's runtime/metrics exporter)
// that refresh mirror counters/gauges only when someone is looking,
// keeping the instrumented process free of background polling. fn must
// be safe for concurrent calls and must not register metrics.
func (r *Registry) AddSampler(fn func()) {
	r.mu.Lock()
	r.samplers = append(r.samplers, fn)
	r.mu.Unlock()
}

func (r *Registry) runSamplers() {
	r.mu.RLock()
	samplers := append([]func(){}, r.samplers...)
	r.mu.RUnlock()
	for _, fn := range samplers {
		fn()
	}
}

// Sample is one flattened series value in a snapshot.
type Sample struct {
	// Series is the full series identity (name plus label block).
	Series string
	// Kind is the delta semantic: counters subtract, gauges keep.
	Kind Kind
	// Value is the sampled value.
	Value float64
}

// Snapshot is a named, timestamped flattening of a registry: every
// counter and gauge one sample, every histogram a _bucket series per
// bound plus _sum and _count. Samples are sorted by series name.
type Snapshot struct {
	// Name labels the snapshot (the registry owner's choosing).
	Name string
	// At is the capture time.
	At time.Time

	samples []Sample
	idx     map[string]int
}

// Snapshot captures the current value of every registered series.
func (r *Registry) Snapshot(name string) Snapshot {
	r.runSamplers()
	r.mu.RLock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.RUnlock()

	s := Snapshot{Name: name, At: time.Now()}
	for _, m := range metrics {
		switch m.kind {
		case KindCounter:
			s.samples = append(s.samples, Sample{m.series(), KindCounter, float64(m.counter.Value())})
		case KindGauge:
			v := 0.0
			if m.fn != nil {
				v = m.fn()
			} else {
				v = float64(m.gauge.Value())
			}
			s.samples = append(s.samples, Sample{m.series(), KindGauge, v})
		case KindHistogram:
			cum := uint64(0)
			counts := m.hist.BucketCounts()
			for i, b := range m.hist.bounds {
				cum += counts[i]
				lbl := append(append([]Label(nil), m.labels...), L("le", fmt.Sprint(b)))
				s.samples = append(s.samples, Sample{seriesName(m.name+"_bucket", lbl), KindCounter, float64(cum)})
			}
			cum += counts[len(counts)-1]
			lbl := append(append([]Label(nil), m.labels...), L("le", "+Inf"))
			s.samples = append(s.samples, Sample{seriesName(m.name+"_bucket", lbl), KindCounter, float64(cum)})
			s.samples = append(s.samples, Sample{seriesName(m.name+"_sum", m.labels), KindCounter, float64(m.hist.Sum())})
			s.samples = append(s.samples, Sample{seriesName(m.name+"_count", m.labels), KindCounter, float64(m.hist.Count())})
		}
	}
	sort.Slice(s.samples, func(i, j int) bool { return s.samples[i].Series < s.samples[j].Series })
	s.reindex()
	return s
}

func (s *Snapshot) reindex() {
	s.idx = make(map[string]int, len(s.samples))
	for i, smp := range s.samples {
		s.idx[smp.Series] = i
	}
}

// Samples returns the flattened series, sorted by name.
func (s Snapshot) Samples() []Sample { return s.samples }

// Get returns the value of a series by full name.
func (s Snapshot) Get(series string) (float64, bool) {
	if s.idx == nil {
		return 0, false
	}
	i, ok := s.idx[series]
	if !ok {
		return 0, false
	}
	return s.samples[i].Value, true
}

// Delta returns the change from prev to s: counter samples are
// subtracted (series missing from prev keep their value; a counter that
// went backwards — a reset — reports its new value), gauge samples keep
// the newer value. The result carries s's name and timestamp.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{Name: s.Name, At: s.At}
	d.samples = make([]Sample, 0, len(s.samples))
	for _, smp := range s.samples {
		if smp.Kind == KindCounter {
			if old, ok := prev.Get(smp.Series); ok && old <= smp.Value {
				smp.Value -= old
			}
		}
		d.samples = append(d.samples, smp)
	}
	d.reindex()
	return d
}

// Seconds returns the wall-clock span from prev to s, for turning a
// delta into a rate.
func (s Snapshot) Seconds(prev Snapshot) float64 {
	return s.At.Sub(prev.At).Seconds()
}

// Rate returns a counter series' per-second rate over the span from
// prev to s, or 0 when the span is empty or the series unknown.
func (s Snapshot) Rate(prev Snapshot, series string) float64 {
	secs := s.Seconds(prev)
	if secs <= 0 {
		return 0
	}
	cur, ok1 := s.Get(series)
	old, ok2 := prev.Get(series)
	if !ok1 || !ok2 || cur < old {
		return 0
	}
	return (cur - old) / secs
}
