package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one structured trace record: a timestamped, scoped
// observation of a discrete occurrence (an LCP state transition, a
// SONET defect raise, a supervisor restart). The fixed shape keeps
// emission allocation-free; Detail is whatever short string the probe
// point already had on hand.
type Event struct {
	// Seq is the global emission sequence number (1-based, never
	// reused); gaps after a ring wrap are visible to consumers.
	Seq uint64 `json:"seq"`
	// At is the emitter's clock: simulation cycles for RTL probes,
	// virtual time units for the protocol stack.
	At int64 `json:"at"`
	// Scope names the emitting subsystem ("lcp:a", "supervisor", ...).
	Scope string `json:"scope"`
	// Name is the event type within the scope ("transition", "raise").
	Name string `json:"name"`
	// Detail is an optional human-readable attribute.
	Detail string `json:"detail,omitempty"`
	// V1, V2 carry up to two numeric attributes (state codes, backoff
	// intervals, defect masks) without formatting cost.
	V1 int64 `json:"v1,omitempty"`
	V2 int64 `json:"v2,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("#%d @%d %s/%s", e.Seq, e.At, e.Scope, e.Name)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	if e.V1 != 0 || e.V2 != 0 {
		s += fmt.Sprintf(" [%d %d]", e.V1, e.V2)
	}
	return s
}

// Tracer is a bounded ring buffer of Events. Emission never blocks and
// never allocates; when the ring is full the oldest event is
// overwritten and counted as dropped. Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	seq     uint64 // events ever emitted
	dropped uint64 // events overwritten before being read out
}

// NewTracer returns a tracer holding the most recent capacity events
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Emit records one event.
func (t *Tracer) Emit(at int64, scope, name, detail string, v1, v2 int64) {
	t.mu.Lock()
	if t.seq >= uint64(len(t.ring)) {
		t.dropped++
	}
	t.seq++
	t.ring[(t.seq-1)%uint64(len(t.ring))] = Event{
		Seq: t.seq, At: at, Scope: scope, Name: name, Detail: detail, V1: v1, V2: v2,
	}
	t.mu.Unlock()
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq < uint64(len(t.ring)) {
		return int(t.seq)
	}
	return len(t.ring)
}

// Total returns the number of events ever emitted.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns the number of events overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	if t.seq < n {
		return append([]Event(nil), t.ring[:t.seq]...)
	}
	out := make([]Event, 0, n)
	start := t.seq % n // oldest slot
	out = append(out, t.ring[start:]...)
	out = append(out, t.ring[:start]...)
	return out
}

// WriteJSON writes the retained events as a JSON array, oldest first —
// the /trace exposition format and the p5stat -replay input.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Events())
}

// ReadEvents decodes a JSON event array previously written by
// WriteJSON.
func ReadEvents(r io.Reader) ([]Event, error) {
	var evs []Event
	if err := json.NewDecoder(r).Decode(&evs); err != nil {
		return nil, err
	}
	return evs, nil
}
