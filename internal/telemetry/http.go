package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler builds the exposition endpoint set over a registry and an
// optional tracer:
//
//	/metrics       Prometheus text format
//	/debug/vars    expvar JSON (includes the registry snapshot under
//	               the published name, plus Go memstats/cmdline)
//	/debug/pprof/  the standard Go profiling endpoints
//	/trace         the tracer's retained events as JSON (404 when nil)
//
// The returned handler is safe to serve while probes are being written:
// all metric state is atomic.
func Handler(reg *Registry, tr *Tracer) http.Handler { return Mux(reg, tr) }

// Mux is Handler exposed as a concrete *http.ServeMux so callers can
// mount additional endpoints (the flight recorder's /slo board, for
// example) next to the standard set before serving.
func Mux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		tr.WriteJSON(w)
	})
	return mux
}

// Publish exposes the registry under name in the process-wide expvar
// namespace (visible at /debug/vars) as a map of series name to value.
// Publishing the same name twice is a no-op, so repeated instrumenting
// in tests is safe.
func Publish(reg *Registry, name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		snap := reg.Snapshot(name)
		out := make(map[string]float64, len(snap.Samples()))
		for _, s := range snap.Samples() {
			out[s.Series] = s.Value
		}
		return out
	}))
}

// Server is a running exposition endpoint.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for Handler(reg, tr) on addr (":0" picks
// a free port) and also publishes the registry to expvar under
// expvarName. It returns once the listener is bound; serving continues
// in a background goroutine until Close.
func Serve(addr string, reg *Registry, tr *Tracer, expvarName string) (*Server, error) {
	if expvarName != "" {
		Publish(reg, expvarName)
	}
	return ServeHandler(addr, Handler(reg, tr))
}

// ServeHandler starts an HTTP server for an arbitrary handler —
// typically a Mux(reg, tr) with extra endpoints mounted — on addr
// (":0" picks a free port). It returns once the listener is bound;
// serving continues in a background goroutine until Close.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: h}}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
