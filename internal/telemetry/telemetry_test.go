package telemetry

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames_total", "frames")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	// Get-or-create returns the same counter.
	if r.Counter("frames_total", "frames") != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("occupancy", "fill", L("unit", "sorter"))
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d", g.Value())
	}

	h := r.Histogram("gap_cycles", "gaps", []int64{1, 2, 4, 8})
	for _, v := range []int64{1, 1, 2, 3, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 116 {
		t.Errorf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
	want := []uint64{2, 1, 1, 0, 2} // ≤1, ≤2, ≤4, ≤8, +Inf
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// Regression: quantiles that land in the +Inf overflow bucket must be
// clamped to the highest finite bound — an unbounded bucket has no
// upper bound to report, and returning one fabricated a latency that
// was never configured, let alone observed.
func TestHistogramQuantileClampsOverflow(t *testing.T) {
	h := NewHistogram([]int64{1, 2, 4, 8})

	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}

	// All mass in the overflow bucket: every quantile clamps to 8.
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 8 {
			t.Errorf("overflow-only q=%g = %d, want clamp to 8", q, got)
		}
	}

	// Mixed distribution: 90 fast observations, 10 in overflow. p50
	// resolves in a finite bucket; p99 lands in +Inf and clamps.
	h2 := NewHistogram([]int64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h2.Observe(2)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(99)
	}
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %d, want 2", got)
	}
	if got := h2.Quantile(0.99); got != 8 {
		t.Errorf("p99 = %d, want clamp to 8", got)
	}

	// Boundary math: rank = ceil(q*total); with 4 observations ≤1 and
	// 1 observation ≤2, p80 pins the 4th observation (bucket ≤1).
	h3 := NewHistogram([]int64{1, 2})
	for i := 0; i < 4; i++ {
		h3.Observe(1)
	}
	h3.Observe(2)
	if got := h3.Quantile(0.8); got != 1 {
		t.Errorf("p80 = %d, want 1", got)
	}
	if got := h3.Quantile(0.81); got != 2 {
		t.Errorf("p81 = %d, want 2", got)
	}

	// The helper over captured counts agrees with the live histogram.
	if got := QuantileFromBuckets(h2.Bounds(), h2.BucketCounts(), 0.99); got != 8 {
		t.Errorf("QuantileFromBuckets p99 = %d, want 8", got)
	}
	if got := QuantileFromBuckets(nil, nil, 0.5); got != 0 {
		t.Errorf("QuantileFromBuckets(nil) = %d, want 0", got)
	}
}

func TestSnapshotDeltaSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("xfers_total", "")
	g := r.Gauge("fill", "")
	c.Add(10)
	g.Set(3)
	s1 := r.Snapshot("t1")
	c.Add(5)
	g.Set(8)
	s2 := r.Snapshot("t2")

	d := s2.Delta(s1)
	if v, _ := d.Get("xfers_total"); v != 5 {
		t.Errorf("counter delta = %v", v)
	}
	if v, _ := d.Get("fill"); v != 8 {
		t.Errorf("gauge delta keeps newer value, got %v", v)
	}
	// A counter reset (value went backwards) reports the new value.
	c.Set(2)
	s3 := r.Snapshot("t3")
	if d := s3.Delta(s2); func() float64 { v, _ := d.Get("xfers_total"); return v }() != 2 {
		t.Error("counter reset not reported as new value")
	}
}

func TestSnapshotRate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("octets_total", "")
	c.Add(100)
	s1 := r.Snapshot("a")
	c.Add(300)
	s2 := r.Snapshot("b")
	s2.At = s1.At.Add(2 * time.Second) // pin the span for determinism
	if rate := s2.Rate(s1, "octets_total"); rate != 150 {
		t.Errorf("rate = %v, want 150", rate)
	}
}

func TestHistogramSnapshotFlattening(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []int64{2, 4}, L("unit", "crc"))
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	s := r.Snapshot("x")
	checks := map[string]float64{
		`lat_bucket{unit="crc",le="2"}`:    1,
		`lat_bucket{unit="crc",le="4"}`:    2,
		`lat_bucket{unit="crc",le="+Inf"}`: 3,
		`lat_sum{unit="crc"}`:              13,
		`lat_count{unit="crc"}`:            3,
	}
	for series, want := range checks {
		if v, ok := s.Get(series); !ok || v != want {
			t.Errorf("%s = %v,%v want %v", series, v, ok, want)
		}
	}
}

func TestSanitizeNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("p5/wire transfers.total", "")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p5_wire_transfers_total") {
		t.Errorf("name not sanitized:\n%s", buf.String())
	}
}

// TestConcurrentWritersAndReaders is the -race gate of the satellite
// task: hammer every metric type and the tracer from many goroutines
// while a reader concurrently snapshots and scrapes.
func TestConcurrentWritersAndReaders(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(64)
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []int64{1, 10, 100})
	r.GaugeFunc("fn", "", func() float64 { return float64(c.Value()) })

	const writers = 8
	const perWriter = 2000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // reader
		defer close(readerDone)
		prev := r.Snapshot("prev")
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := r.Snapshot("cur")
			cur.Delta(prev)
			prev = cur
			r.WritePrometheus(io.Discard)
			tr.Events()
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
				g.Set(int64(j))
				h.Observe(int64(j % 200))
				tr.Emit(int64(j), "w", "tick", "", int64(id), int64(j))
				// Concurrent registration must also be safe.
				r.Counter("late_total", "").Inc()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	if c.Value() != writers*perWriter {
		t.Errorf("lost counter increments: %d", c.Value())
	}
	if h.Count() != writers*perWriter {
		t.Errorf("lost observations: %d", h.Count())
	}
	if tr.Total() != writers*perWriter {
		t.Errorf("lost events: %d", tr.Total())
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Emit(int64(i), "s", "n", "", 0, 0)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events", len(evs))
	}
	if evs[0].Seq != 25 || evs[15].Seq != 40 {
		t.Errorf("retained window [%d..%d], want [25..40]", evs[0].Seq, evs[15].Seq)
	}
	if tr.Dropped() != 24 {
		t.Errorf("dropped = %d", tr.Dropped())
	}
	// JSON round-trip.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 16 || back[0].Seq != 25 {
		t.Errorf("round-trip lost events: %d", len(back))
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help a").Add(3)
	r.Gauge("b", "", L("wire", "tx.body"), L("k", `qu"ote`)).Set(-7)
	r.Histogram("c", "", []int64{5}).Observe(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byFull := map[string]Series{}
	for _, s := range series {
		byFull[s.Full] = s
	}
	if s, ok := byFull["a_total"]; !ok || s.Value != 3 {
		t.Errorf("a_total = %+v", s)
	}
	g, ok := byFull[`b{wire="tx.body",k="qu\"ote"}`]
	if !ok || g.Value != -7 || g.Label("wire") != "tx.body" || g.Label("k") != `qu"ote` {
		t.Errorf("labelled gauge = %+v (present=%v)", g, ok)
	}
	if s, ok := byFull[`c_bucket{le="+Inf"}`]; !ok || s.Value != 1 {
		t.Errorf("bucket = %+v", s)
	}
}
