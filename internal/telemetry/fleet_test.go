package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// scrapeOf renders a registry the way an HTTP scrape would see it and
// parses it back — the first half of the fleet merge path.
func scrapeOf(t *testing.T, r *Registry) []Series {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	ss, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// TestFleetMergeDuplicateSeries: two instances exporting the very same
// series names (the normal case — every process runs the same code)
// must stay distinct after instance-label injection, and a merged
// snapshot must round-trip through the parser.
func TestFleetMergeDuplicateSeries(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("frames_total", "frames", L("line", "port0_a")).Add(7)
	rb.Counter("frames_total", "frames", L("line", "port0_a")).Add(11)

	merged := append(
		InjectLabel(scrapeOf(t, ra), "instance", "node-a:9100"),
		InjectLabel(scrapeOf(t, rb), "instance", "node-b:9100")...,
	)
	if len(merged) != 2 {
		t.Fatalf("merged %d series, want 2", len(merged))
	}
	if merged[0].Full == merged[1].Full {
		t.Fatalf("instance injection left duplicate series identity %q", merged[0].Full)
	}

	var buf bytes.Buffer
	if err := WriteSeriesText(&buf, merged); err != nil {
		t.Fatal(err)
	}
	again, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("merged snapshot does not re-parse: %v", err)
	}
	byInstance := map[string]float64{}
	for _, s := range again {
		if s.Name != "frames_total" {
			t.Fatalf("unexpected series %q", s.Full)
		}
		if s.Label("line") != "port0_a" {
			t.Fatalf("original label lost: %q", s.Full)
		}
		byInstance[s.Label("instance")] = s.Value
	}
	if byInstance["node-a:9100"] != 7 || byInstance["node-b:9100"] != 11 {
		t.Fatalf("values scrambled in merge: %v", byInstance)
	}
}

// TestFleetMergeConflictingHelp: instances on different code revisions
// can disagree on HELP text for the same family. The parse side must
// shrug (comments are not data) and the merge must keep both samples.
func TestFleetMergeConflictingHelp(t *testing.T) {
	textA := "# HELP up liveness\n# TYPE up gauge\nup 1\n"
	textB := "# HELP up whether the scrape target is reachable\n# TYPE up gauge\nup 0\n"
	sa, err := ParseText(strings.NewReader(textA))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ParseText(strings.NewReader(textB))
	if err != nil {
		t.Fatal(err)
	}
	merged := append(InjectLabel(sa, "instance", "a"), InjectLabel(sb, "instance", "b")...)
	if len(merged) != 2 || merged[0].Value != 1 || merged[1].Value != 0 {
		t.Fatalf("conflicting-HELP merge lost samples: %+v", merged)
	}
}

// TestInjectLabelEscaping: injected values with quotes, backslashes
// and newlines must survive a render/re-parse cycle, and injection
// must overwrite a stale label of the same name rather than duplicate
// it.
func TestInjectLabelEscaping(t *testing.T) {
	in := []Series{{Full: "x", Name: "x", Value: 1}}
	hostile := `he said "hi"\` + "\n" + `done`
	out := InjectLabel(in, "instance", hostile)
	var buf bytes.Buffer
	if err := WriteSeriesText(&buf, out); err != nil {
		t.Fatal(err)
	}
	again, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("escaped label does not re-parse: %v", err)
	}
	if got := again[0].Label("instance"); got != hostile {
		t.Fatalf("label mangled: %q, want %q", got, hostile)
	}
	if in[0].Labels != nil || in[0].Full != "x" {
		t.Fatalf("InjectLabel modified its input: %+v", in[0])
	}
	twice := InjectLabel(out, "instance", "rescraped")
	if len(twice[0].Labels) != 1 || twice[0].Label("instance") != "rescraped" {
		t.Fatalf("re-injection not idempotent: %+v", twice[0])
	}
}

// TestSeriesQuantile: quantiles recovered from parsed _bucket series
// must agree with the source histogram, and buckets from two instances
// must sum into one fleet-wide distribution.
func TestSeriesQuantile(t *testing.T) {
	ra := NewRegistry()
	ha := NewHistogram([]int64{10, 100, 1000})
	ra.AttachHistogram("lat_us", "latency", ha, L("line", "port0_a"))
	for i := 0; i < 90; i++ {
		ha.Observe(5)
	}
	for i := 0; i < 10; i++ {
		ha.Observe(500)
	}
	ss := InjectLabel(scrapeOf(t, ra), "instance", "a")

	if p50, ok := SeriesQuantile(ss, "lat_us", 0.5, L("line", "port0_a")); !ok || p50 != 10 {
		t.Fatalf("p50 = %d ok=%v, want 10", p50, ok)
	}
	if p99, ok := SeriesQuantile(ss, "lat_us", 0.99, L("line", "port0_a")); !ok || p99 != 1000 {
		t.Fatalf("p99 = %d ok=%v, want 1000", p99, ok)
	}
	if _, ok := SeriesQuantile(ss, "lat_us", 0.5, L("line", "no-such-line")); ok {
		t.Fatal("quantile matched a non-existent line")
	}
	if _, ok := SeriesQuantile(nil, "lat_us", 0.5); ok {
		t.Fatal("quantile from no series reported ok")
	}

	// Second instance skewed high: the fleet-wide p50 (no instance
	// match) must move up to the merged distribution's median.
	rb := NewRegistry()
	hb := NewHistogram([]int64{10, 100, 1000})
	rb.AttachHistogram("lat_us", "latency", hb, L("line", "port0_a"))
	for i := 0; i < 200; i++ {
		hb.Observe(50000) // beyond the top bound: lands in +Inf
	}
	fleet := append(ss, InjectLabel(scrapeOf(t, rb), "instance", "b")...)
	p50, ok := SeriesQuantile(fleet, "lat_us", 0.5, L("line", "port0_a"))
	if !ok || p50 != 1000 {
		t.Fatalf("fleet p50 = %d ok=%v, want 1000 (+Inf clamped to top bound)", p50, ok)
	}
	pa, ok := SeriesQuantile(fleet, "lat_us", 0.5, L("instance", "a"))
	if !ok || pa != 10 {
		t.Fatalf("instance-a p50 = %d ok=%v, want 10", pa, ok)
	}
}
