package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// HELP/TYPE headers once per family, registration order, label
// rendering, histogram flattening. Regenerate with `go test -update`.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("p5_tx_frames_total", "Frames pushed by the framer.").Add(42)
	r.Counter("p5_wire_transfers_total", "Words accepted across a wire.", L("wire", "framer.crc")).Add(9)
	r.Gauge("p5_fifo_highwater", "", L("unit", "escape_gen")).Set(12)
	r.GaugeFunc("p5_clock_mhz", "Modelled line clock.", func() float64 { return 155.52 })
	h := r.Histogram("p5_sink_gap_cycles", "Inter-word gap at the sink.", []int64{1, 2, 4})
	for _, v := range []int64{1, 3, 10} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
