package rtl

// Source feeds a queue of flits into a wire, one per cycle, honouring
// backpressure.
type Source struct {
	Out   *Wire
	queue []Flit
	// Sent counts flits pushed; StallCycles counts cycles blocked.
	Sent        uint64
	StallCycles uint64
}

// Feed appends flits to the source queue.
func (s *Source) Feed(f ...Flit) { s.queue = append(s.queue, f...) }

// FeedBytes packs p into flits of w bytes and appends them, marking SOF
// on the first and EOF on the last.
func (s *Source) FeedBytes(p []byte, w int) {
	for off := 0; off < len(p); off += w {
		end := off + w
		if end > len(p) {
			end = len(p)
		}
		f := FlitOf(p[off:end])
		f.SOF = off == 0
		f.EOF = end == len(p)
		s.Feed(f)
	}
}

// Pending reports how many flits remain queued.
func (s *Source) Pending() int { return len(s.queue) }

// Eval implements Module.
func (s *Source) Eval() {
	if len(s.queue) == 0 {
		return
	}
	if !s.Out.CanPush() {
		s.StallCycles++
		return
	}
	s.Out.Push(s.queue[0])
	s.queue = s.queue[1:]
	s.Sent++
}

// Tick implements Module.
func (s *Source) Tick() {}

// Sink drains a wire, recording every flit and the flattened byte stream.
type Sink struct {
	In    *Wire
	Flits []Flit
	Data  []byte
	// FirstCycle is the simulation cycle (counted by the sink itself)
	// at which the first flit arrived, LastCycle the most recent; -1
	// until then. FirstCycle is the pipeline's fill latency when the
	// source starts at cycle 0.
	FirstCycle int64
	LastCycle  int64
	// GapCounts histograms the inter-word gap (cycles between
	// consecutive arrivals): GapCounts[1] counts back-to-back words,
	// GapCounts[8] collects every gap of 8 or more. Index 0 is unused.
	// MaxGap is the largest gap observed. A gap above 1 is a delivery
	// bubble — the sink-side view of upstream stalls.
	GapCounts [9]uint64
	MaxGap    int64
	cycle     int64
}

// NewSink creates a sink on w.
func NewSink(w *Wire) *Sink { return &Sink{In: w, FirstCycle: -1, LastCycle: -1} }

// Eval implements Module.
func (s *Sink) Eval() {
	if f, ok := s.In.Take(); ok {
		if s.FirstCycle < 0 {
			s.FirstCycle = s.cycle
		} else {
			gap := s.cycle - s.LastCycle
			if gap > s.MaxGap {
				s.MaxGap = gap
			}
			if gap > 8 {
				gap = 8
			}
			s.GapCounts[gap]++
		}
		s.LastCycle = s.cycle
		s.Flits = append(s.Flits, f)
		s.Data = f.Bytes(s.Data)
	}
}

// Tick implements Module.
func (s *Sink) Tick() { s.cycle++ }

// ByteFIFO is a small synchronous byte buffer with occupancy tracking —
// the resynchronisation buffer of the paper's byte sorter.
type ByteFIFO struct {
	buf  []byte
	head int
	// HighWater records the maximum occupancy ever seen.
	HighWater int
}

// Len returns the current occupancy.
func (q *ByteFIFO) Len() int { return len(q.buf) - q.head }

// Push appends bytes.
func (q *ByteFIFO) Push(p ...byte) {
	if len(q.buf)+len(p) > cap(q.buf) && q.head*2 >= len(q.buf) {
		// Compact instead of growing, but only once at least half the
		// array is dead space behind head: Pop rewinds only on a full
		// drain, so a FIFO that never quite empties would otherwise
		// slide its window through an ever-growing backing array. The
		// half-dead threshold keeps Push amortised O(1) — after a
		// compaction at least half the capacity is free slack — while
		// pinning the array near 2x the high-water occupancy, so the
		// steady state stops allocating.
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, p...)
	if n := q.Len(); n > q.HighWater {
		q.HighWater = n
	}
}

// Pop removes and returns up to n bytes. The returned slice aliases the
// FIFO's storage: consume it before the next Push, which may compact.
func (q *ByteFIFO) Pop(n int) []byte {
	if n > q.Len() {
		n = q.Len()
	}
	p := q.buf[q.head : q.head+n]
	q.head += n
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p
}

// Peek returns byte i from the front without removing it.
func (q *ByteFIFO) Peek(i int) byte { return q.buf[q.head+i] }

// Reset empties the FIFO (HighWater is preserved).
func (q *ByteFIFO) Reset() {
	q.buf = q.buf[:0]
	q.head = 0
}
