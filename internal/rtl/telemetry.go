package rtl

import "repro/internal/telemetry"

// The kernel's counters (Wire.Transfers/Stalls/Occupied, busy-watch
// cycle counts) are plain integers written only by the simulation
// thread — keeping the hot path free of atomics. Instrumentation
// mirrors them into a telemetry.Registry: each series gets an atomic
// counter that is refreshed from the plain value on every sync, so a
// scraper on another goroutine always reads a consistent recent view
// without ever touching simulation state.

// syncInterval is how often (in cycles) an instrumented Sim refreshes
// its mirror counters. Power of two so the check is a mask.
const syncInterval = 1024

// busyWatch samples one unit's busy predicate each cycle.
type busyWatch struct {
	busy   func() bool
	cycles uint64 // plain; sim thread only
	mirror *telemetry.Counter
}

// wireMirror pairs a wire with its exported series.
type wireMirror struct {
	w                           *Wire
	transfers, stalls, occupied *telemetry.Counter
}

type instrumentation struct {
	cycles  *telemetry.Counter
	wires   []wireMirror
	watches []*busyWatch
}

// Instrument mirrors the simulation's counters into reg. Every wire
// gets <prefix>_wire_{transfers,stalls,occupied_cycles}_total series
// labelled with its name, and the clock is exported as
// <prefix>_cycles_total. Wires created after this call are not
// covered — instrument after wiring. Mirrors refresh automatically
// every syncInterval cycles; call SyncTelemetry for an up-to-date
// view (e.g. after the final cycle).
func (s *Sim) Instrument(reg *telemetry.Registry, prefix string) {
	in := &instrumentation{
		cycles: reg.Counter(prefix+"_cycles_total", "Simulation clock cycles elapsed."),
	}
	for _, w := range s.wires {
		in.wires = append(in.wires, wireMirror{
			w: w,
			transfers: reg.Counter(prefix+"_wire_transfers_total",
				"Flits accepted across the wire.", telemetry.L("wire", w.Name)),
			stalls: reg.Counter(prefix+"_wire_stalls_total",
				"Producer cycles blocked on a full wire (backpressure).", telemetry.L("wire", w.Name)),
			occupied: reg.Counter(prefix+"_wire_occupied_cycles_total",
				"Cycles the wire slot held a flit at the clock edge.", telemetry.L("wire", w.Name)),
		})
	}
	s.instr = in
}

// WatchBusy samples busy every cycle and exports the count of busy
// cycles as <series>; the caller picks the registered counter (so the
// p5 layer can choose its own naming and labels). Only effective after
// Instrument.
func (s *Sim) WatchBusy(mirror *telemetry.Counter, busy func() bool) {
	if s.instr == nil {
		return
	}
	s.instr.watches = append(s.instr.watches, &busyWatch{busy: busy, mirror: mirror})
}

// cycle runs the per-cycle instrumentation work: busy sampling and the
// periodic mirror refresh.
func (in *instrumentation) cycle(now int64) {
	for _, bw := range in.watches {
		if bw.busy() {
			bw.cycles++
		}
	}
	if now&(syncInterval-1) == 0 {
		in.sync(now)
	}
}

func (in *instrumentation) sync(now int64) {
	in.cycles.Set(uint64(now))
	for _, wm := range in.wires {
		wm.transfers.Set(wm.w.Transfers)
		wm.stalls.Set(wm.w.Stalls)
		wm.occupied.Set(wm.w.Occupied)
	}
	for _, bw := range in.watches {
		bw.mirror.Set(bw.cycles)
	}
}

// SyncTelemetry refreshes every mirror counter immediately. No-op when
// the Sim is not instrumented.
func (s *Sim) SyncTelemetry() {
	if s.instr != nil {
		s.instr.sync(s.cycle)
	}
}
