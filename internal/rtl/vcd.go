package rtl

import (
	"fmt"
	"io"
	"strconv"
)

// VCD dumps simulation activity as a Value Change Dump file (IEEE
// 1364), viewable in GTKWave and every other waveform viewer — the
// tooling a hardware engineer would reach for when debugging the P5
// pipelines.
type VCD struct {
	w          io.Writer
	signals    []vcdSignal
	headerDone bool
	time       int64
	err        error
}

type vcdSignal struct {
	name  string
	width int
	id    string
	probe func() (value uint64, valid bool)
	last  uint64
	lastV bool
	first bool
}

// NewVCD creates a dump writing to w. Register signals with Watch and
// WatchWire before the first Sample.
func NewVCD(w io.Writer) *VCD { return &VCD{w: w} }

// Watch registers a probe: each Sample reads it and records changes.
// width is in bits; valid=false renders as x (unknown).
func (v *VCD) Watch(name string, width int, probe func() (uint64, bool)) {
	id := vcdID(len(v.signals))
	v.signals = append(v.signals, vcdSignal{
		name: name, width: width, id: id, probe: probe, first: true,
	})
}

// WatchWire registers a wire's standing flit (data lanes + valid flag).
func (v *VCD) WatchWire(name string, w *Wire, lanes int) {
	v.Watch(name+".data", lanes*8, func() (uint64, bool) {
		f, ok := w.Peek()
		return f.Data, ok
	})
	v.Watch(name+".valid", 1, func() (uint64, bool) {
		_, ok := w.Peek()
		if ok {
			return 1, true
		}
		return 0, true
	})
}

// vcdID maps an index to a short printable identifier.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return string(alphabet[i%len(alphabet)]) + strconv.Itoa(i/len(alphabet))
}

func (v *VCD) header() {
	fmt.Fprintf(v.w, "$timescale 1ns $end\n$scope module p5 $end\n")
	for _, s := range v.signals {
		fmt.Fprintf(v.w, "$var wire %d %s %s $end\n", s.width, s.id, s.name)
	}
	fmt.Fprintf(v.w, "$upscope $end\n$enddefinitions $end\n")
	v.headerDone = true
}

// Sample records the current state at the given cycle; call it once per
// clock after Sim.Cycle.
func (v *VCD) Sample(cycle int64) {
	if v.err != nil {
		return
	}
	if !v.headerDone {
		v.header()
	}
	stamped := false
	for i := range v.signals {
		s := &v.signals[i]
		val, ok := s.probe()
		if !s.first && val == s.last && ok == s.lastV {
			continue
		}
		if !stamped {
			fmt.Fprintf(v.w, "#%d\n", cycle)
			stamped = true
		}
		if ok {
			fmt.Fprintf(v.w, "b%b %s\n", val, s.id)
		} else {
			fmt.Fprintf(v.w, "bx %s\n", s.id)
		}
		s.last, s.lastV, s.first = val, ok, false
	}
	v.time = cycle
}
