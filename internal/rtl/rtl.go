// Package rtl is a small synchronous register-transfer-level simulation
// kernel: clocked modules connected by single-slot registered wires with
// valid/consume handshakes. It gives the P5 model exact cycle semantics —
// words per clock, pipeline fill latency, stalls, and backpressure — the
// properties the paper's evaluation is about.
//
// # Evaluation model
//
// Each cycle has two phases. In the evaluate phase every module's Eval
// runs in downstream-to-upstream order: a module may consume the flit
// standing on its input wire (Take) and push one onto its output wire
// (Push) if the slot will be free. Because consumers run before
// producers, "the slot will be free" is known exactly: a wire accepts a
// push iff it is empty or its current flit was consumed this cycle. In
// the tick phase every wire latches — pushed flits become visible to
// consumers on the next cycle, exactly like a pipeline register.
//
// A module that cannot push simply does not take its input; the stall
// propagates upstream wire by wire, which is precisely the backpressure
// scheme of a ready/valid hardware pipeline with registered outputs.
package rtl

// Flit is one datapath word in flight: up to 8 octets packed
// little-endian (lane 0 = first octet on the wire), a lane count, and
// frame markers.
type Flit struct {
	// Data holds the octets: lane i is byte (Data >> 8i).
	Data uint64
	// N is the number of valid lanes, 1..8. Zero lanes only appear in
	// control-only flits (EOF bubbles).
	N int
	// SOF marks the first flit of a frame, EOF the last.
	SOF, EOF bool
	// Err marks the frame as damaged (overrun, FCS failure); it
	// travels with the frame to the sink.
	Err bool
	// Abort marks a deliberately aborted frame (HDLC abort sequence).
	Abort bool
}

// Byte returns lane i of the flit.
func (f Flit) Byte(i int) byte { return byte(f.Data >> (8 * uint(i))) }

// SetByte stores b into lane i.
func (f *Flit) SetByte(i int, b byte) {
	shift := 8 * uint(i)
	f.Data = f.Data&^(0xFF<<shift) | uint64(b)<<shift
}

// Bytes appends the valid lanes of f to dst.
func (f Flit) Bytes(dst []byte) []byte {
	for i := 0; i < f.N; i++ {
		dst = append(dst, f.Byte(i))
	}
	return dst
}

// FlitOf packs up to 8 bytes into a flit.
func FlitOf(p []byte) Flit {
	var f Flit
	if len(p) > 8 {
		p = p[:8]
	}
	for i, b := range p {
		f.SetByte(i, b)
	}
	f.N = len(p)
	return f
}

// Wire is a single-slot pipeline register between two modules. The zero
// value is an empty wire. Name is used in traces.
type Wire struct {
	Name string

	cur      Flit
	curValid bool
	consumed bool
	next     Flit
	nextOK   bool

	// Transfers counts flits moved through the wire; Stalls counts
	// cycles a producer found the wire blocked (via CanPush queries
	// that returned false); Occupied counts cycles the slot held a
	// flit at the clock edge — Occupied/cycles is the wire's
	// occupancy, the paper's per-stage pipeline utilisation figure.
	Transfers uint64
	Stalls    uint64
	Occupied  uint64
}

// Peek returns the flit standing on the wire, if any, without consuming.
func (w *Wire) Peek() (Flit, bool) {
	if w.curValid && !w.consumed {
		return w.cur, true
	}
	return Flit{}, false
}

// Take consumes the flit standing on the wire. ok is false if the wire is
// empty (or already consumed this cycle).
func (w *Wire) Take() (Flit, bool) {
	if !w.curValid || w.consumed {
		return Flit{}, false
	}
	w.consumed = true
	w.Transfers++
	return w.cur, true
}

// CanPush reports whether a push this cycle will be accepted: the slot is
// empty or being vacated. A false result is counted as a stall.
func (w *Wire) CanPush() bool {
	if w.curValid && !w.consumed {
		w.Stalls++
		return false
	}
	return !w.nextOK
}

// Push places a flit onto the wire for the next cycle. It panics if the
// slot is not free — call CanPush first; pushing without checking is a
// module bug, the hardware analog of driving a bus that is in use.
func (w *Wire) Push(f Flit) {
	if (w.curValid && !w.consumed) || w.nextOK {
		panic("rtl: push onto occupied wire " + w.Name)
	}
	w.next = f
	w.nextOK = true
}

// Tick latches the wire at the clock edge.
func (w *Wire) Tick() {
	if w.consumed {
		w.curValid = false
		w.consumed = false
	}
	if w.nextOK {
		w.cur = w.next
		w.curValid = true
		w.nextOK = false
	}
	if w.curValid {
		w.Occupied++
	}
}

// Empty reports whether the wire holds no flit and none is being latched.
func (w *Wire) Empty() bool { return !(w.curValid && !w.consumed) && !w.nextOK }

// Module is a clocked pipeline stage.
type Module interface {
	// Eval runs the combinational phase for this cycle. Modules are
	// evaluated downstream-first (reverse registration order).
	Eval()
	// Tick latches internal state at the clock edge.
	Tick()
}

// Sim drives a set of modules and wires with a common clock. Register
// modules in upstream-to-downstream order; Sim evaluates them in reverse.
type Sim struct {
	modules []Module
	wires   []*Wire
	cycle   int64
	instr   *instrumentation
}

// Add registers modules in datapath order (source first).
func (s *Sim) Add(m ...Module) { s.modules = append(s.modules, m...) }

// Wire creates and registers a named wire.
func (s *Sim) Wire(name string) *Wire {
	w := &Wire{Name: name}
	s.wires = append(s.wires, w)
	return w
}

// Cycle advances the simulation by one clock.
func (s *Sim) Cycle() {
	for i := len(s.modules) - 1; i >= 0; i-- {
		s.modules[i].Eval()
	}
	for _, m := range s.modules {
		m.Tick()
	}
	for _, w := range s.wires {
		w.Tick()
	}
	s.cycle++
	if s.instr != nil {
		s.instr.cycle(s.cycle)
	}
}

// Run advances n cycles.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Cycle()
	}
}

// RunUntil advances until pred returns true or the budget is exhausted;
// it reports whether pred fired.
func (s *Sim) RunUntil(pred func() bool, budget int) bool {
	for i := 0; i < budget; i++ {
		if pred() {
			return true
		}
		s.Cycle()
	}
	return pred()
}

// Now returns the cycle count.
func (s *Sim) Now() int64 { return s.cycle }

// Drained reports whether every wire is empty — the pipeline has no work
// in flight.
func (s *Sim) Drained() bool {
	for _, w := range s.wires {
		if !w.Empty() {
			return false
		}
	}
	return true
}
