package rtl

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/telemetry"
)

func TestFlitBytes(t *testing.T) {
	f := FlitOf([]byte{1, 2, 3, 4})
	if f.N != 4 || f.Byte(0) != 1 || f.Byte(3) != 4 {
		t.Errorf("flit = %+v", f)
	}
	f.SetByte(2, 0xAA)
	if f.Byte(2) != 0xAA || f.Byte(1) != 2 || f.Byte(3) != 4 {
		t.Errorf("SetByte clobbered lanes: %+v", f)
	}
	got := f.Bytes(nil)
	if !bytes.Equal(got, []byte{1, 2, 0xAA, 4}) {
		t.Errorf("Bytes = % x", got)
	}
}

func TestFlitOfTruncates(t *testing.T) {
	f := FlitOf(bytes.Repeat([]byte{9}, 12))
	if f.N != 8 {
		t.Errorf("N = %d, want 8", f.N)
	}
}

func TestFlitRoundTripProperty(t *testing.T) {
	f := func(p []byte) bool {
		if len(p) > 8 {
			p = p[:8]
		}
		if len(p) == 0 {
			return true
		}
		return bytes.Equal(FlitOf(p).Bytes(nil), p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWireHandshake(t *testing.T) {
	var w Wire
	if _, ok := w.Take(); ok {
		t.Error("take from empty wire")
	}
	if !w.CanPush() {
		t.Error("empty wire must accept push")
	}
	w.Push(FlitOf([]byte{1}))
	if w.CanPush() {
		t.Error("double push in one cycle must be refused")
	}
	if _, ok := w.Peek(); ok {
		t.Error("pushed flit visible before tick")
	}
	w.Tick()
	f, ok := w.Peek()
	if !ok || f.Byte(0) != 1 {
		t.Error("flit not visible after tick")
	}
	// Not consumed: producer must stall.
	if w.CanPush() {
		t.Error("occupied wire must refuse push")
	}
	if w.Stalls != 1 {
		t.Errorf("Stalls = %d", w.Stalls)
	}
	// Consume, then push is allowed again in the same cycle.
	if _, ok := w.Take(); !ok {
		t.Error("take failed")
	}
	if !w.CanPush() {
		t.Error("vacating wire must accept push")
	}
	w.Push(FlitOf([]byte{2}))
	w.Tick()
	f, _ = w.Take()
	if f.Byte(0) != 2 {
		t.Error("second flit lost")
	}
	if w.Transfers != 2 {
		t.Errorf("Transfers = %d", w.Transfers)
	}
}

func TestWirePushPanicsWhenBlocked(t *testing.T) {
	var w Wire
	w.Push(FlitOf([]byte{1}))
	w.Tick()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.Push(FlitOf([]byte{2}))
}

// passthrough copies input to output, used to build deep pipelines.
type passthrough struct{ in, out *Wire }

func (p *passthrough) Eval() {
	if _, ok := p.in.Peek(); !ok {
		return
	}
	if !p.out.CanPush() {
		return
	}
	f, _ := p.in.Take()
	p.out.Push(f)
}
func (p *passthrough) Tick() {}

func TestPipelineLatencyAndThroughput(t *testing.T) {
	// N passthrough stages = N+1 wires = N+1 cycles of latency, and
	// sustained 1 flit/cycle afterwards.
	const stages = 4
	var sim Sim
	src := &Source{Out: sim.Wire("w0")}
	sim.Add(src)
	prev := src.Out
	for i := 0; i < stages; i++ {
		next := sim.Wire("w")
		sim.Add(&passthrough{in: prev, out: next})
		prev = next
	}
	sink := NewSink(prev)
	sim.Add(sink)

	const n = 100
	for i := 0; i < n; i++ {
		src.Feed(FlitOf([]byte{byte(i)}))
	}
	// First flit: pushed at cycle 0, visible on w0 at cycle 1, ...
	// visible on w_stages at cycle stages+1.
	sim.RunUntil(func() bool { return len(sink.Flits) > 0 }, 1000)
	if sink.FirstCycle != stages+1 {
		t.Errorf("first output at cycle %d, want %d", sink.FirstCycle, stages+1)
	}
	sim.RunUntil(func() bool { return len(sink.Flits) == n }, 1000)
	// Total time = fill latency + n-1 further cycles (full throughput).
	if got, want := sim.Now(), int64(stages+1+n); got > want+1 {
		t.Errorf("drained at cycle %d, want ~%d (1 flit/cycle)", got, want)
	}
	for i := range sink.Flits {
		if sink.Flits[i].Byte(0) != byte(i) {
			t.Fatalf("flit %d out of order", i)
		}
	}
}

// throttle consumes only once every k cycles — a slow sink that must
// backpressure the pipeline.
type throttle struct {
	in, out *Wire
	k       int
	c       int
}

func (th *throttle) Eval() {
	th.c++
	if th.c%th.k != 0 {
		return
	}
	if _, ok := th.in.Peek(); !ok {
		return
	}
	if !th.out.CanPush() {
		return
	}
	f, _ := th.in.Take()
	th.out.Push(f)
}
func (th *throttle) Tick() {}

func TestBackpressurePropagates(t *testing.T) {
	var sim Sim
	src := &Source{Out: sim.Wire("w0")}
	w1 := sim.Wire("w1")
	w2 := sim.Wire("w2")
	sim.Add(src, &passthrough{in: src.Out, out: w1}, &throttle{in: w1, out: w2, k: 3})
	sink := NewSink(w2)
	sim.Add(sink)

	const n = 30
	for i := 0; i < n; i++ {
		src.Feed(FlitOf([]byte{byte(i)}))
	}
	sim.RunUntil(func() bool { return len(sink.Flits) == n }, 10000)
	if len(sink.Flits) != n {
		t.Fatalf("only %d flits arrived", len(sink.Flits))
	}
	// The source must have been stalled by upstream-propagated pressure.
	if src.StallCycles == 0 {
		t.Error("no backpressure reached the source")
	}
	if src.Out.Stalls == 0 {
		t.Error("no stalls recorded on the source wire")
	}
	// No flit lost or reordered.
	for i := range sink.Flits {
		if sink.Flits[i].Byte(0) != byte(i) {
			t.Fatalf("flit %d out of order", i)
		}
	}
}

func TestSourceFeedBytes(t *testing.T) {
	var sim Sim
	src := &Source{Out: sim.Wire("w")}
	sink := NewSink(src.Out)
	sim.Add(src, sink)
	src.FeedBytes([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, 4)
	sim.RunUntil(func() bool { return src.Pending() == 0 && sim.Drained() }, 100)
	if len(sink.Flits) != 3 {
		t.Fatalf("flits = %d, want 3", len(sink.Flits))
	}
	if !sink.Flits[0].SOF || sink.Flits[0].EOF {
		t.Error("first flit markers")
	}
	if !sink.Flits[2].EOF || sink.Flits[2].N != 1 {
		t.Errorf("last flit = %+v", sink.Flits[2])
	}
	if !bytes.Equal(sink.Data, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}) {
		t.Errorf("data = % x", sink.Data)
	}
}

func TestByteFIFO(t *testing.T) {
	var q ByteFIFO
	q.Push(1, 2, 3)
	if q.Len() != 3 || q.Peek(0) != 1 || q.Peek(2) != 3 {
		t.Error("push/peek")
	}
	p := q.Pop(2)
	if !bytes.Equal(p, []byte{1, 2}) || q.Len() != 1 {
		t.Error("pop")
	}
	q.Push(4, 5)
	if q.HighWater != 3 {
		t.Errorf("HighWater = %d", q.HighWater)
	}
	p = q.Pop(10)
	if !bytes.Equal(p, []byte{3, 4, 5}) || q.Len() != 0 {
		t.Errorf("drain pop = % x", p)
	}
	q.Push(9)
	q.Reset()
	if q.Len() != 0 || q.HighWater != 3 {
		t.Error("reset")
	}
}

func TestSimDrained(t *testing.T) {
	var sim Sim
	w := sim.Wire("w")
	if !sim.Drained() {
		t.Error("fresh sim not drained")
	}
	w.Push(FlitOf([]byte{1}))
	if sim.Drained() {
		t.Error("pending push must count as in flight")
	}
	sim.Cycle()
	if sim.Drained() {
		t.Error("standing flit must count as in flight")
	}
	w.Take()
	sim.Cycle()
	if !sim.Drained() {
		t.Error("consumed wire must drain")
	}
}

func TestVCDDump(t *testing.T) {
	var sim Sim
	src := &Source{Out: sim.Wire("w")}
	sink := NewSink(src.Out)
	sim.Add(src, sink)

	var buf bytes.Buffer
	vcd := NewVCD(&buf)
	vcd.WatchWire("line", src.Out, 4)
	occ := 0
	vcd.Watch("occupancy", 8, func() (uint64, bool) { return uint64(occ), true })

	src.FeedBytes([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	for i := 0; i < 6; i++ {
		sim.Cycle()
		occ = i
		vcd.Sample(sim.Now())
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale", "$var wire 32 ! line.data $end",
		"$var wire 1 \" line.valid $end", "$enddefinitions", "#1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The first data word 0x04030201 must appear in binary.
	if !strings.Contains(out, fmt.Sprintf("b%b !", 0x04030201)) {
		t.Errorf("first word value missing:\n%s", out)
	}
	// Unknown marker after the stream drains.
	if !strings.Contains(out, "bx !") {
		t.Errorf("no x state after drain:\n%s", out)
	}
	// Change-only encoding: occupancy value 3 appears exactly once.
	if strings.Count(out, "b11 #") != 1 {
		t.Errorf("occupancy not change-encoded:\n%s", out)
	}
}

func TestWireOccupiedCounts(t *testing.T) {
	var w Wire
	w.Push(FlitOf([]byte{1}))
	w.Tick() // flit latched: occupied
	w.Tick() // still standing: occupied again
	w.Take()
	w.Tick() // vacated at the edge: not occupied
	if w.Occupied != 2 {
		t.Errorf("Occupied = %d, want 2", w.Occupied)
	}
}

func TestSinkGapHistogram(t *testing.T) {
	// Throttle at k=3: words arrive every 3rd cycle, so every
	// inter-word gap is 3 and LastCycle tracks the final arrival.
	var sim Sim
	src := &Source{Out: sim.Wire("w0")}
	w1 := sim.Wire("w1")
	sim.Add(src, &throttle{in: src.Out, out: w1, k: 3})
	sink := NewSink(w1)
	sim.Add(sink)

	const n = 10
	for i := 0; i < n; i++ {
		src.Feed(FlitOf([]byte{byte(i)}))
	}
	sim.RunUntil(func() bool { return len(sink.Flits) == n }, 1000)
	if len(sink.Flits) != n {
		t.Fatalf("only %d flits arrived", len(sink.Flits))
	}
	if sink.LastCycle <= sink.FirstCycle {
		t.Errorf("LastCycle = %d, FirstCycle = %d", sink.LastCycle, sink.FirstCycle)
	}
	if sink.GapCounts[3] != n-1 {
		t.Errorf("GapCounts = %v, want %d gaps of 3", sink.GapCounts, n-1)
	}
	if sink.MaxGap != 3 {
		t.Errorf("MaxGap = %d, want 3", sink.MaxGap)
	}
}

func TestSinkGapOverflowBucket(t *testing.T) {
	var sim Sim
	src := &Source{Out: sim.Wire("w")}
	sink := NewSink(src.Out)
	sim.Add(src, sink)
	src.Feed(FlitOf([]byte{1}))
	sim.Run(20) // first word arrives, then a long idle gap
	src.Feed(FlitOf([]byte{2}))
	sim.RunUntil(func() bool { return len(sink.Flits) == 2 }, 100)
	if sink.GapCounts[8] != 1 {
		t.Errorf("GapCounts = %v, want the long gap in the overflow bucket", sink.GapCounts)
	}
	if sink.MaxGap < 9 {
		t.Errorf("MaxGap = %d, want >8", sink.MaxGap)
	}
}

func TestSimInstrument(t *testing.T) {
	var sim Sim
	src := &Source{Out: sim.Wire("w0")}
	w1 := sim.Wire("w1")
	w2 := sim.Wire("w2")
	sim.Add(src, &passthrough{in: src.Out, out: w1}, &throttle{in: w1, out: w2, k: 3})
	sink := NewSink(w2)
	sim.Add(sink)

	reg := telemetry.NewRegistry()
	sim.Instrument(reg, "kern")
	busySrc := reg.Counter("kern_unit_busy_cycles_total", "", telemetry.L("unit", "source"))
	sim.WatchBusy(busySrc, func() bool { return src.Pending() > 0 })

	const n = 30
	for i := 0; i < n; i++ {
		src.Feed(FlitOf([]byte{byte(i)}))
	}
	sim.RunUntil(func() bool { return len(sink.Flits) == n }, 10000)
	sim.SyncTelemetry()

	snap := reg.Snapshot("t")
	mustGet := func(series string) float64 {
		v, ok := snap.Get(series)
		if !ok {
			t.Fatalf("series %s missing; have %v", series, snap.Samples())
		}
		return v
	}
	if v := mustGet("kern_cycles_total"); int64(v) != sim.Now() {
		t.Errorf("cycles = %v, want %d", v, sim.Now())
	}
	if v := mustGet(`kern_wire_transfers_total{wire="w2"}`); v != n {
		t.Errorf("w2 transfers = %v, want %d", v, n)
	}
	// The throttle backpressures w1 — stalls must be visible.
	if v := mustGet(`kern_wire_stalls_total{wire="w1"}`); v == 0 {
		t.Error("no stalls exported for the throttled wire")
	}
	if v := mustGet(`kern_wire_occupied_cycles_total{wire="w1"}`); v == 0 {
		t.Error("no occupancy exported")
	}
	if busySrc.Value() == 0 {
		t.Error("busy watch never sampled busy")
	}
}
