// Package pos couples the cycle-accurate P5 to the SDH/SONET transport
// — the "PHY" boxes of the paper's Figure 2 — with correct relative
// timing. At 78.125 MHz a W-octet datapath moves exactly the STM line
// rate, but a fraction of every transport frame is section/line/path
// overhead, so the payload the P5 may inject per clock is slightly less
// than W octets. The PHY models this: it serialises W line octets per
// clock, pulling payload from a one-frame staging buffer and pushing
// back on the P5 when the buffer is full. The ~3.7% SONET overhead tax
// on goodput emerges rather than being configured.
package pos

import (
	"repro/internal/rtl"
	"repro/internal/sonet"
)

// TxPHY consumes raw line words from a P5 transmitter and emits STM-N
// transport frames.
type TxPHY struct {
	In *rtl.Wire
	// Level selects the transport rate; it must match the datapath
	// width for nominal timing (W=4 ↔ STM-16, W=1 ↔ STM-4).
	Level sonet.Level
	// W is the datapath width in octets (line octets serialised per
	// clock).
	W int
	// EmitFrame receives each completed transport frame.
	EmitFrame func([]byte)

	framer  *sonet.Framer
	staging rtl.ByteFIFO
	budget  int // line octets still to serialise this frame period

	// Counters.
	Frames      uint64
	FillOctets  uint64
	InputStalls uint64
}

// frameCycles is the clock budget for one transport frame: the PHY
// serialises W line octets per clock.
func (t *TxPHY) frameCycles() int {
	return t.Level.FrameBytes() / t.W
}

// stagingCap bounds the payload buffer: one frame's worth.
func (t *TxPHY) stagingCap() int { return t.Level.PayloadBytes() }

// Eval implements rtl.Module.
func (t *TxPHY) Eval() {
	if t.framer == nil {
		t.framer = sonet.NewFramer(t.Level, func() (byte, bool) {
			if t.staging.Len() == 0 {
				return 0, false
			}
			return t.staging.Pop(1)[0], true
		})
		t.budget = t.Level.FrameBytes()
	}
	// Accept payload while the staging buffer has room.
	if f, ok := t.In.Peek(); ok {
		if t.staging.Len()+f.N <= t.stagingCap() {
			t.In.Take()
			for i := 0; i < f.N; i++ {
				t.staging.Push(f.Byte(i))
			}
		} else {
			t.InputStalls++
		}
	}
	// Serialise W line octets per clock; at each whole-frame boundary
	// cut a transport frame.
	t.budget -= t.W
	if t.budget <= 0 {
		before := t.framer.FillOctets
		frame := t.framer.NextFrame()
		t.FillOctets += t.framer.FillOctets - before
		t.Frames++
		if t.EmitFrame != nil {
			t.EmitFrame(frame)
		}
		t.budget += t.Level.FrameBytes()
	}
}

// Tick implements rtl.Module.
func (t *TxPHY) Tick() {}

// RxPHY deframes received transport frames and feeds the recovered line
// octets to a P5 receiver, W per clock.
type RxPHY struct {
	Out *rtl.Wire
	// Level and W as for TxPHY.
	Level sonet.Level
	W     int

	deframer *sonet.Deframer
	payload  rtl.ByteFIFO

	// Counters.
	Frames uint64
}

// Feed accepts one received transport frame (call from the channel
// model between the PHYs).
func (r *RxPHY) Feed(frame []byte) {
	if r.deframer == nil {
		r.deframer = sonet.NewDeframer(r.Level, func(b byte) {
			r.payload.Push(b)
		})
	}
	r.deframer.Feed(frame)
	r.Frames++
}

// Eval implements rtl.Module: emit up to W recovered octets per clock.
func (r *RxPHY) Eval() {
	n := r.payload.Len()
	if n == 0 {
		return
	}
	if n > r.W {
		n = r.W
	}
	if !r.Out.CanPush() {
		return
	}
	r.Out.Push(rtl.FlitOf(r.payload.Pop(n)))
}

// Tick implements rtl.Module.
func (r *RxPHY) Tick() {}

// Deframer exposes the inner deframer's monitoring counters.
func (r *RxPHY) Deframer() *sonet.Deframer { return r.deframer }
