package pos

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/p5"
	"repro/internal/ppp"
	"repro/internal/rtl"
	"repro/internal/sonet"
)

// buildPOSSystem assembles P5 Tx → TxPHY → (frame channel) → RxPHY →
// P5 Rx on one clock.
type posSystem struct {
	sim   *rtl.Sim
	tx    *p5.Transmitter
	rx    *p5.Receiver
	txPHY *TxPHY
	rxPHY *RxPHY
}

func newPOSSystem(w int, level sonet.Level) *posSystem {
	s := &posSystem{sim: &rtl.Sim{}}
	regs := p5.NewRegs()
	// Continuous line fill so the PHY always has octets (real POS).
	s.tx = p5.NewTransmitter(s.sim, w, regs)
	s.tx.Escape.IdleFill = true
	s.txPHY = &TxPHY{In: s.tx.Out, Level: level, W: w}
	s.sim.Add(s.txPHY)
	// The RxPHY registers before the receiver so the delineator (which
	// evaluates later-registered-first) vacates the line wire before
	// the PHY pushes — full one-word-per-cycle line rate.
	line := s.sim.Wire("phy.line")
	s.rxPHY = &RxPHY{Out: line, Level: level, W: w}
	s.sim.Add(s.rxPHY)
	s.rx = p5.NewReceiverOn(s.sim, w, regs, line)
	// Channel: deliver each transport frame directly.
	s.txPHY.EmitFrame = func(f []byte) { s.rxPHY.Feed(f) }
	return s
}

func TestPOSEndToEnd(t *testing.T) {
	s := newPOSSystem(4, sonet.STM16)
	gen := netsim.NewGen(5, netsim.IMIX{}, 0.03)
	var want [][]byte
	for i := 0; i < 30; i++ {
		d := gen.Next()
		want = append(want, d)
		s.tx.Framer.Enqueue(p5.TxJob{Protocol: ppp.ProtoIPv4, Payload: d})
	}
	ok := s.sim.RunUntil(func() bool {
		return len(s.rx.Control.Queue) >= len(want)
	}, 10_000_000)
	if !ok {
		t.Fatalf("delivered %d/%d", len(s.rx.Control.Queue), len(want))
	}
	for i, f := range s.rx.Control.Queue[:len(want)] {
		if f.Err != nil {
			t.Fatalf("frame %d: %v", i, f.Err)
		}
		if !bytes.Equal(f.Frame.Payload, want[i]) {
			t.Fatalf("frame %d payload mismatch", i)
		}
	}
	if s.rxPHY.Deframer().B1Errors != 0 {
		t.Error("parity errors on a clean channel")
	}
}

func TestPOSOverheadThrottlesGoodput(t *testing.T) {
	// Saturate the transmitter: the SONET overhead tax must show up as
	// goodput ≈ payload/line ratio (~96.3%), enforced by backpressure,
	// not data loss.
	s := newPOSSystem(4, sonet.STM16)
	payload := make([]byte, 1496)
	for i := range payload {
		payload[i] = 0x42
	}
	// Enough traffic to span many transport frames, so pipeline fill
	// and drain latency amortise away; goodput is measured over the
	// steady-state middle (frame 60 → frame 540).
	const n = 600
	for i := 0; i < n; i++ {
		s.tx.Framer.Enqueue(p5.TxJob{Protocol: ppp.ProtoIPv4, Payload: payload})
	}
	var startCycle int64
	ok := s.sim.RunUntil(func() bool {
		if startCycle == 0 && len(s.rx.Control.Queue) >= 60 {
			startCycle = s.sim.Now()
		}
		return len(s.rx.Control.Queue) >= 540
	}, 50_000_000)
	if !ok {
		t.Fatalf("delivered %d/%d", len(s.rx.Control.Queue), n)
	}
	cycles := float64(s.sim.Now() - startCycle)
	payloadBits := float64(480 * (len(payload) + 8) * 8) // + header+FCS
	gotBitsPerCycle := payloadBits / cycles
	// Ideal without SONET overhead: 32 bits/cycle (minus PPP flags);
	// with the transport tax: ×(PayloadBytes/FrameBytes) ≈ ×0.963.
	// Delivery arrives in per-transport-frame bursts, so the window
	// edges add ±1 SONET frame of quantisation (~±4% over 20 frames).
	ratio := float64(sonet.STM16.PayloadBytes()) / float64(sonet.STM16.FrameBytes())
	ideal := 32 * ratio
	if gotBitsPerCycle < ideal*0.93 || gotBitsPerCycle > ideal*1.05 {
		t.Errorf("goodput %.2f bits/cycle, want ≈ %.2f ±5%% (overhead ratio %.4f)",
			gotBitsPerCycle, ideal, ratio)
	}
	// The throttle is backpressure, visible at the PHY input.
	if s.txPHY.InputStalls == 0 {
		t.Error("no backpressure recorded at the PHY")
	}
}

func TestPOSIdleLinkCarriesFlags(t *testing.T) {
	s := newPOSSystem(4, sonet.STM16)
	s.sim.Run(2 * s.txPHY.frameCycles())
	if s.txPHY.Frames < 2 {
		t.Fatalf("frames = %d", s.txPHY.Frames)
	}
	// No data queued: every payload octet is inter-frame fill. The P5's
	// idle fill feeds the PHY, so the framer itself should rarely fill.
	if s.rxPHY.Deframer() == nil {
		t.Fatal("no frames reached the receiver PHY")
	}
	if got := s.rxPHY.Deframer().FramesOK; got < 1 {
		t.Errorf("deframed %d", got)
	}
}
