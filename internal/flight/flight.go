// Package flight is the always-on flight recorder and per-frame latency
// observatory. Where internal/telemetry answers "how much, how often",
// flight answers "where did the time go, and what was on the wire when
// it went wrong":
//
//   - a per-frame latency pipe: datagrams are tagged when they depart a
//     link's transmit path and matched FIFO at the far end, feeding an
//     end-to-end latency histogram (virtual ticks) with *exemplars* —
//     the concrete frame ID, arrival time and trace-ring sequence
//     behind each bucket, so a p99 spike resolves to a real frame;
//   - sampled per-stage wall-clock stamps (encode, tokenize, FCS check,
//     VJ, deliver) at 1-in-2^SampleShift frames, bounding overhead;
//   - a black-box recorder: bounded rings of recent raw HDLC wire
//     bytes, structured events and register snapshots, dumped
//     atomically to a self-describing capture file (capture.go) on
//     defect escalation, APS switch, FCS-error burst, supervisor
//     restart or an explicit OAM register write;
//   - an SLO evaluator (slo.go) turning the recorded series into
//     rolling error budgets and burn-rate gauges.
//
// Steady-state cost is deliberately asymmetric: the transmit path pays
// one ring store and one atomic add per frame (no wall-clock read, no
// wire copy unless Config.TapTx is set), keeping the PR-4 zero-alloc
// encode benchmark within its overhead gate; the receive path adds the
// wire-ring memcpy, the FIFO match and the sampled stamps. Nothing on
// either path allocates.
//
// Ownership follows the Link rules (DESIGN.md §8): Depart/Arrive/Tap*
// and Trigger must be called from the goroutine that owns the link (or
// while the simulation is quiesced); the histograms and counters behind
// them are atomic and the exemplar store is mutex-protected, so HTTP
// scrapes and the /slo board are safe at any time.
package flight

import (
	"math"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Stage identifies one stamped segment of the frame path.
type Stage uint8

// The stamped stages, in pipeline order.
const (
	// StageEncode spans ppp.AppendFrame on the transmit side.
	StageEncode Stage = iota
	// StageTokenize spans hdlc.Tokenizer.Feed for one input chunk.
	StageTokenize
	// StageFCS spans ppp.DecodeBodyInto (FCS check + header parse).
	StageFCS
	// StageVJ spans Van Jacobson decompression, when active.
	StageVJ
	// StageDeliver spans the copy into the receive datagram arena.
	StageDeliver

	numStages
)

var stageNames = [numStages]string{"encode", "tokenize", "fcs", "vj", "deliver"}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// E2EBounds are the end-to-end latency histogram bounds, in virtual
// ticks (1 tick = one 125 µs frame slot in the SONET-paced sims).
var E2EBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// StageBounds are the per-stage latency histogram bounds, in
// wall-clock nanoseconds.
var StageBounds = []int64{250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 1000000}

// Config sizes a Recorder. The zero value is usable: every field has a
// working default.
type Config struct {
	// WireBytes is the per-direction raw wire ring capacity in octets
	// (default 8192, rounded up to a power of two).
	WireBytes int
	// Events is the event ring capacity (default 256).
	Events int
	// PipeDepth bounds the in-flight frame matcher (default 1024,
	// rounded up to a power of two). When it overflows the oldest
	// departure is counted lost.
	PipeDepth int
	// SampleShift selects 1-in-2^SampleShift frames for wall-clock
	// stage stamping (default 3 → every 8th frame).
	SampleShift uint
	// Horizon is the age in ticks after which an unmatched departure
	// is declared lost (default 1024).
	Horizon int64
	// SlowTicks is the end-to-end latency at or above which an arrival
	// emits a slow-frame event into the black box (default 32).
	SlowTicks int64
	// TapTx also records transmitted wire octets. Off by default: the
	// extra memcpy is the one recorder cost the steady-state encode
	// overhead gate would notice.
	TapTx bool
	// Dir, when non-empty, is the directory capture files are written
	// to (one file per trigger). Empty keeps captures in memory only.
	Dir string
	// RecentCaptures bounds the in-memory capture list (default 8).
	RecentCaptures int
	// Clock supplies wall-clock nanoseconds for stage stamps (default
	// time.Now().UnixNano).
	Clock func() int64
	// Profiler, when set, observes every capture after it is recorded
	// (and after any capture file is written), so a runtime profile
	// snapshot can land next to the .p5fr evidence — p5sim -prof wires
	// this to prof.WriteSnapshot. Called on the triggering goroutine;
	// runs after OnCapture.
	Profiler func(*Capture)
}

func (c Config) withDefaults() Config {
	if c.WireBytes <= 0 {
		c.WireBytes = 8192
	}
	if c.Events <= 0 {
		c.Events = 256
	}
	if c.PipeDepth <= 0 {
		c.PipeDepth = 1024
	}
	if c.SampleShift == 0 {
		c.SampleShift = 3
	}
	if c.Horizon <= 0 {
		c.Horizon = 1024
	}
	if c.SlowTicks <= 0 {
		c.SlowTicks = 32
	}
	if c.RecentCaptures <= 0 {
		c.RecentCaptures = 8
	}
	if c.Clock == nil {
		c.Clock = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

func pow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Exemplar is the concrete frame behind a latency bucket: enough to
// find the frame again in the trace ring and the wire dump.
type Exemplar struct {
	// LE is the bucket's inclusive upper bound in ticks;
	// math.MaxInt64 marks the overflow (+Inf) bucket.
	LE int64 `json:"le"`
	// ID is the frame's departure sequence number (1-based per link).
	ID uint64 `json:"id"`
	// Value is the observed end-to-end latency in ticks.
	Value int64 `json:"value"`
	// At is the arrival virtual time.
	At int64 `json:"at"`
	// Seq is the black-box event sequence current at arrival, linking
	// the exemplar into the trace ring.
	Seq uint64 `json:"seq"`
}

type departure struct {
	id uint64
	at int64
}

// byteRing is a bounded ring over a raw octet stream. Invariant:
// buf[i%len(buf)] holds stream byte i for i in [n-len(buf), n).
type byteRing struct {
	buf []byte
	n   uint64 // total stream bytes ever written
}

func (r *byteRing) write(p []byte) {
	size := len(r.buf)
	if size == 0 || len(p) == 0 {
		r.n += uint64(len(p))
		return
	}
	if len(p) > size {
		r.n += uint64(len(p) - size)
		p = p[len(p)-size:]
	}
	off := int(r.n % uint64(size))
	k := copy(r.buf[off:], p)
	if k < len(p) {
		copy(r.buf, p[k:])
	}
	r.n += uint64(len(p))
}

// snapshot returns the retained octets oldest-first plus the stream
// offset of the first returned byte.
func (r *byteRing) snapshot() (base uint64, data []byte) {
	size := uint64(len(r.buf))
	if size == 0 || r.n == 0 {
		return r.n, nil
	}
	if r.n <= size {
		return 0, append([]byte(nil), r.buf[:r.n]...)
	}
	start := r.n % size
	data = make([]byte, 0, size)
	data = append(data, r.buf[start:]...)
	data = append(data, r.buf[:start]...)
	return r.n - size, data
}

// Recorder is one link's flight recorder: latency pipe, stage
// histograms, wire/event black box and capture trigger. Obtain one
// with NewRecorder and arm it on a Link.
type Recorder struct {
	name string
	cfg  Config

	// FIFO departure matcher. Single-writer: owned by the link's
	// goroutine (Depart on TX, Arrive driven by the peer's RX — the
	// same goroutine in every deployment here).
	ring   []departure
	mask   uint64
	head   uint64 // oldest live entry
	tail   uint64 // next free slot
	nextID uint64

	e2e     *telemetry.Histogram
	stage   [numStages]*telemetry.Histogram
	tracked *telemetry.Counter
	lost    *telemetry.Counter
	capsC   *telemetry.Counter
	wireRx  *telemetry.Counter
	wireTx  *telemetry.Counter

	exMu sync.Mutex
	ex   []Exemplar // one slot per e2e bucket, zero ID = empty

	rx, tx byteRing
	events *telemetry.Tracer

	now         int64 // latest virtual time seen (SetNow)
	sampleCount uint64
	sampleMask  uint64

	capMu    sync.Mutex
	recent   []*Capture
	capSeq   uint64
	byReason map[string]uint64
	lastErr  error

	// Correlate, when set, stamps correlation metadata onto every
	// capture — incident ID, clock/tick offset estimates, peer trigger
	// context — before the capture file is written, so the .p5fr a
	// distributed trigger leaves behind carries everything p5trace
	// -join needs. The TransportPort wires this to its freeze channel.
	// Set before arming; called on the triggering goroutine.
	Correlate func(*Capture)
	// OnCapture, when set, observes every capture after it is recorded
	// (the OAM block raises its interrupt here). Set before arming.
	OnCapture func(*Capture)
	// RegDump, when set, appends register snapshots to each capture.
	// Set before arming; called on the triggering goroutine.
	RegDump func([]RegSample) []RegSample
}

// NewRecorder builds a recorder named for its link and registers its
// series (flight_* family, labelled link=name) in reg. reg may be nil
// for an unexposed recorder (tests, tools).
func NewRecorder(reg *telemetry.Registry, name string, cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	depth := pow2(cfg.PipeDepth)
	lk := telemetry.L("link", name)
	r := &Recorder{
		name:       name,
		cfg:        cfg,
		ring:       make([]departure, depth),
		mask:       uint64(depth - 1),
		sampleMask: (1 << cfg.SampleShift) - 1,
		ex:         make([]Exemplar, len(E2EBounds)+1),
		events:     telemetry.NewTracer(cfg.Events),
		byReason:   make(map[string]uint64),
		e2e: reg.Histogram("flight_e2e_latency_ticks",
			"end-to-end frame latency, departure to delivery, virtual ticks", E2EBounds, lk),
		tracked: reg.Counter("flight_frames_tracked_total", "frames tagged at departure", lk),
		lost:    reg.Counter("flight_frames_lost_total", "tagged frames never delivered (horizon or overflow)", lk),
		capsC:   reg.Counter("flight_captures_total", "black-box captures triggered", lk),
		wireRx:  reg.Counter("flight_wire_octets_total", "raw wire octets through the black box", lk, telemetry.L("dir", "rx")),
		wireTx:  reg.Counter("flight_wire_octets_total", "raw wire octets through the black box", lk, telemetry.L("dir", "tx")),
	}
	r.rx.buf = make([]byte, pow2(cfg.WireBytes))
	if cfg.TapTx {
		r.tx.buf = make([]byte, pow2(cfg.WireBytes))
	}
	for s := Stage(0); s < numStages; s++ {
		r.stage[s] = reg.Histogram("flight_stage_latency_ns",
			"sampled per-stage frame latency, wall-clock ns", StageBounds, lk, telemetry.L("stage", s.String()))
	}
	return r
}

// Name returns the link name the recorder was built for.
func (r *Recorder) Name() string { return r.name }

// SetNow records the link's virtual time; captures and events are
// stamped with the latest value.
func (r *Recorder) SetNow(now int64) { r.now = now }

// Depart tags one transmitted frame at virtual time now and returns
// its frame ID. When the pipe is full the oldest in-flight entry is
// retired as lost.
func (r *Recorder) Depart(now int64) uint64 {
	if r.tail-r.head > r.mask {
		r.head++
		r.lost.Inc()
	}
	r.nextID++
	r.ring[r.tail&r.mask] = departure{id: r.nextID, at: now}
	r.tail++
	r.tracked.Add(1)
	return r.nextID
}

// Arrive matches one delivered frame FIFO against the oldest live
// departure, observes the end-to-end latency and updates the bucket
// exemplar. Departures older than the horizon are retired as lost
// first. Returns the matched latency in ticks, or ok=false when
// nothing was in flight.
func (r *Recorder) Arrive(now int64) (lat int64, ok bool) {
	r.expire(now)
	if r.head == r.tail {
		return 0, false
	}
	d := r.ring[r.head&r.mask]
	r.head++
	lat = now - d.at
	if lat < 0 {
		lat = 0
	}
	r.e2e.Observe(lat)
	r.noteExemplar(d.id, lat, now)
	if lat >= r.cfg.SlowTicks {
		r.events.Emit(now, r.name, "slow-frame", "", int64(d.id), lat)
	}
	return lat, true
}

// Expire retires departures older than the horizon as lost. Arrive
// does this implicitly; call it from the link's periodic service so
// losses surface during quiet periods too.
func (r *Recorder) Expire(now int64) { r.expire(now) }

func (r *Recorder) expire(now int64) {
	for r.head != r.tail {
		d := r.ring[r.head&r.mask]
		if now-d.at <= r.cfg.Horizon {
			return
		}
		r.head++
		r.lost.Inc()
	}
}

// Flush retires every in-flight departure as lost — the transport was
// reset, nothing tagged before this point can arrive anymore.
func (r *Recorder) Flush() {
	for r.head != r.tail {
		r.head++
		r.lost.Inc()
	}
}

// InFlight returns the number of tagged, unmatched departures.
func (r *Recorder) InFlight() int { return int(r.tail - r.head) }

// Tracked returns the total tagged departures.
func (r *Recorder) Tracked() uint64 { return r.tracked.Value() }

// Lost returns the total departures retired without a match.
func (r *Recorder) Lost() uint64 { return r.lost.Value() }

// P99 returns the current end-to-end p99 latency estimate in ticks.
func (r *Recorder) P99() int64 { return r.e2e.Quantile(0.99) }

func (r *Recorder) noteExemplar(id uint64, lat int64, at int64) {
	i := 0
	for i < len(E2EBounds) && lat > E2EBounds[i] {
		i++
	}
	le := int64(math.MaxInt64)
	if i < len(E2EBounds) {
		le = E2EBounds[i]
	}
	r.exMu.Lock()
	r.ex[i] = Exemplar{LE: le, ID: id, Value: lat, At: at, Seq: r.events.Total()}
	r.exMu.Unlock()
}

// Exemplars returns the populated bucket exemplars, lowest bucket
// first.
func (r *Recorder) Exemplars() []Exemplar {
	r.exMu.Lock()
	defer r.exMu.Unlock()
	out := make([]Exemplar, 0, len(r.ex))
	for _, e := range r.ex {
		if e.ID != 0 {
			out = append(out, e)
		}
	}
	return out
}

// Exemplar returns the exemplar for the bucket a latency of v ticks
// falls in, if one has been recorded.
func (r *Recorder) Exemplar(v int64) (Exemplar, bool) {
	i := 0
	for i < len(E2EBounds) && v > E2EBounds[i] {
		i++
	}
	r.exMu.Lock()
	defer r.exMu.Unlock()
	e := r.ex[i]
	return e, e.ID != 0
}

// Sampled reports whether the current frame is selected for wall-clock
// stage stamping (one in 2^SampleShift).
func (r *Recorder) Sampled() bool {
	r.sampleCount++
	return r.sampleCount&r.sampleMask == 0
}

// Clock returns the wall-clock in nanoseconds for stage stamping.
func (r *Recorder) Clock() int64 { return r.cfg.Clock() }

// ObserveStage records one sampled stage duration in nanoseconds.
func (r *Recorder) ObserveStage(s Stage, ns int64) {
	if ns < 0 {
		ns = 0
	}
	r.stage[s].Observe(ns)
}

// StageHistogram exposes a stage's histogram (for boards and tests).
func (r *Recorder) StageHistogram(s Stage) *telemetry.Histogram { return r.stage[s] }

// TapRx records received raw wire octets into the black box.
func (r *Recorder) TapRx(p []byte) {
	r.rx.write(p)
	r.wireRx.Add(uint64(len(p)))
}

// TapTx records transmitted raw wire octets, when Config.TapTx armed
// the TX ring; otherwise it only counts.
func (r *Recorder) TapTx(p []byte) {
	if r.tx.buf != nil {
		r.tx.write(p)
	}
	r.wireTx.Add(uint64(len(p)))
}

// RxStream returns the total RX octets ever tapped (the stream offset
// just past the newest retained byte).
func (r *Recorder) RxStream() uint64 { return r.rx.n }

// Event records one structured event into the black box ring.
func (r *Recorder) Event(at int64, name, detail string, v1, v2 int64) {
	r.events.Emit(at, r.name, name, detail, v1, v2)
}

// Events returns the retained black-box events, oldest first.
func (r *Recorder) Events() []telemetry.Event { return r.events.Events() }

// Trigger dumps the black box: wire rings, event ring and register
// snapshot are captured atomically into a Capture, appended to the
// bounded in-memory list, written to Config.Dir (when set) and handed
// to OnCapture. Must run on the owning goroutine (or quiesced sim).
func (r *Recorder) Trigger(reason string) *Capture {
	r.capMu.Lock()
	r.capSeq++
	seq := r.capSeq
	r.byReason[reason]++
	r.capMu.Unlock()

	c := &Capture{
		Link:   r.name,
		Reason: reason,
		Seq:    seq,
		Now:    r.now,
		WallNs: r.cfg.Clock(),
	}
	c.RxBase, c.RxWire = r.rx.snapshot()
	c.TxBase, c.TxWire = r.tx.snapshot()
	c.Events = r.events.Events()
	if r.RegDump != nil {
		c.Regs = r.RegDump(c.Regs)
	}
	r.capsC.Inc()
	if r.Correlate != nil {
		r.Correlate(c)
	}

	var err error
	if r.cfg.Dir != "" {
		err = c.WriteFile(r.cfg.Dir)
	}
	r.capMu.Lock()
	r.recent = append(r.recent, c)
	if len(r.recent) > r.cfg.RecentCaptures {
		r.recent = r.recent[len(r.recent)-r.cfg.RecentCaptures:]
	}
	r.lastErr = err
	r.capMu.Unlock()

	r.events.Emit(r.now, r.name, "capture", reason, int64(seq), int64(len(c.RxWire)))
	if r.OnCapture != nil {
		r.OnCapture(c)
	}
	if r.cfg.Profiler != nil {
		r.cfg.Profiler(c)
	}
	return c
}

// AdoptIncident back-stamps a shared incident ID onto the most recent
// correlatable capture when a peer's freeze ping lands within the loss
// horizon. Three cases resolve, newest-first within the horizon:
//
//  1. An uncorrelated capture with the freeze's reason — a correlation
//     follower held its Incident at 0 for exactly this (or the local
//     trigger simply raced the ping); adopt the ID onto it.
//  2. Failing that, the newest uncorrelated capture of any reason.
//  3. A same-reason capture that already minted its own ID locally
//     (crossed pings: both ends triggered for one symmetric event and
//     both thought they led). The pair converges deterministically on
//     the smaller ID — the end holding the larger rewrites, the other
//     ignores the ping. Either way the ping is consumed.
//
// An on-disk capture is rewritten in place so the file pair matches.
// Returns false when no capture qualified (the caller should trigger a
// fresh peer capture instead). Must run on the owning goroutine, like
// Trigger.
func (r *Recorder) AdoptIncident(incident uint64, reason string, peerNow, peerWall int64) bool {
	r.capMu.Lock()
	var target, fallback, crossed *Capture
	for i := len(r.recent) - 1; i >= 0; i-- {
		c := r.recent[i]
		if r.now-c.Now > r.cfg.Horizon {
			continue
		}
		if c.Incident == 0 {
			if c.Reason == reason {
				target = c
				break
			}
			if fallback == nil {
				fallback = c
			}
			continue
		}
		if crossed == nil && !c.FromPeer && c.Reason == reason && c.Incident != incident {
			crossed = c
		}
	}
	if target == nil {
		target = fallback
	}
	if target == nil {
		if crossed == nil {
			r.capMu.Unlock()
			return false
		}
		if incident >= crossed.Incident {
			// The peer holds the larger ID and converges to ours.
			r.capMu.Unlock()
			return true
		}
		target = crossed
	}
	target.Incident = incident
	target.PeerNow = peerNow
	target.PeerWallNs = peerWall
	path := target.Path
	r.capMu.Unlock()

	if path != "" {
		err := target.WriteFile(filepath.Dir(path))
		r.capMu.Lock()
		r.lastErr = err
		r.capMu.Unlock()
	}
	r.events.Emit(r.now, r.name, "incident-adopted", target.Reason, int64(target.Seq), int64(incident))
	return true
}

// Captures returns the total number of triggers since arming.
func (r *Recorder) Captures() uint64 {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	return r.capSeq
}

// CapturesFor returns how many captures a given trigger reason
// produced.
func (r *Recorder) CapturesFor(reason string) uint64 {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	return r.byReason[reason]
}

// Recent returns the bounded in-memory capture list, oldest first.
func (r *Recorder) Recent() []*Capture {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	return append([]*Capture(nil), r.recent...)
}

// LastErr returns the most recent capture-file write error, if any.
func (r *Recorder) LastErr() error {
	r.capMu.Lock()
	defer r.capMu.Unlock()
	return r.lastErr
}

// BurstDetector fires once per burst when Threshold events land inside
// a sliding Window of ticks — the FCS-error-burst capture trigger.
type BurstDetector struct {
	// Window is the burst window in ticks.
	Window int64
	// Threshold is the number of events within Window that constitutes
	// a burst.
	Threshold int

	start int64
	count int
	fired bool
}

// Note records one event at virtual time now and reports whether this
// event completed a fresh burst. After firing, the detector re-arms
// when a new window opens.
func (b *BurstDetector) Note(now int64) bool {
	if b.count == 0 || now-b.start > b.Window {
		b.start = now
		b.count = 0
		b.fired = false
	}
	b.count++
	if !b.fired && b.count >= b.Threshold {
		b.fired = true
		return true
	}
	return false
}
