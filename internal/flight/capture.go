package flight

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/telemetry"
)

// Capture file format ("p5fr", read by p5trace -capture):
//
//	header   "P5FR" ver=1 pad[3]
//	sections { type u16, flags u16, length u32, payload[length] }*
//
// all integers little-endian. Section types:
//
//	1 meta     seq u64, now i64, wallns i64, link str16, reason str16
//	2 wire     dir u8 (0 rx, 1 tx), pad[7], base u64, octets...
//	3 events   JSON event array (telemetry.Event encoding)
//	4 regs     count u32, { name str16, value u64 }*
//	5 incident incident u64, origin u8 (1 = peer-triggered), pad[7],
//	           peernow i64, peerwall i64, clockoff i64, tickoff i64
//
// str16 is u16 length + bytes. Unknown section types are skipped on
// decode, so the format is self-describing and forward-compatible —
// the incident section (distributed correlation, DESIGN.md §16) rides
// under version 1 for exactly that reason.
const (
	captureMagic   = "P5FR"
	captureVersion = 1

	secMeta     = 1
	secWire     = 2
	secEvents   = 3
	secRegs     = 4
	secIncident = 5
)

// RegSample is one named register value snapshotted into a capture.
type RegSample struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Capture is one black-box dump: everything the recorder retained at
// the moment a trigger fired.
type Capture struct {
	// Link names the recorder that produced the dump.
	Link string
	// Reason is the trigger ("supervisor-restart", "aps-switch",
	// "defect-outage", "fcs-burst", "oam", ...).
	Reason string
	// Seq is the per-recorder capture sequence number (1-based).
	Seq uint64
	// Now is the link's virtual time at the dump.
	Now int64
	// WallNs is the wall clock at the dump, nanoseconds.
	WallNs int64
	// RxBase is the RX stream offset of RxWire[0]; RxWire holds the
	// most recent received raw HDLC octets.
	RxBase uint64
	RxWire []byte
	// TxBase/TxWire mirror the transmit direction when it was tapped.
	TxBase uint64
	TxWire []byte
	// Events is the retained black-box event ring, oldest first.
	Events []telemetry.Event
	// Regs are register snapshots contributed by the link and OAM.
	Regs []RegSample

	// Incident is the shared correlation ID stamped across the capture
	// pair a distributed trigger produces (0 = uncorrelated). The
	// correlation leader mints it; the peer adopts it from the freeze
	// ping.
	Incident uint64
	// FromPeer marks a capture whose trigger arrived over the wire (a
	// peer freeze ping) rather than from local detection.
	FromPeer bool
	// PeerNow/PeerWallNs are the peer's virtual time and wall clock at
	// its trigger, as carried by the freeze ping (0 when local).
	PeerNow    int64
	PeerWallNs int64
	// ClockOffsetNS is the transport's estimated peer-minus-local wall
	// clock offset at the dump, the p5trace -join alignment input.
	ClockOffsetNS int64
	// TickOffset is the estimated peer-minus-local virtual tick offset
	// (a lower bound from the max filter; 0 when unknown).
	TickOffset int64

	// Path is the on-disk location of the capture once WriteFile has
	// landed it (empty for in-memory captures). Not serialised; runners
	// surface it so a failing drill points straight at its black box.
	Path string
}

// Filename is the canonical capture file name:
// <link>-<seq>-<reason>.p5fr.
func (c *Capture) Filename() string {
	return fmt.Sprintf("%s-%05d-%s.p5fr", fileSafe(c.Link), c.Seq, fileSafe(c.Reason))
}

func fileSafe(s string) string {
	if s == "" {
		return "x"
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9', ch == '-', ch == '_', ch == '.':
			b.WriteByte(ch)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

type sectionWriter struct{ buf []byte }

func (w *sectionWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *sectionWriter) pad(n int)    { w.buf = append(w.buf, make([]byte, n)...) }
func (w *sectionWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *sectionWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *sectionWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *sectionWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *sectionWriter) str16(s string) {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *sectionWriter) section(typ uint16, payload []byte) {
	w.u16(typ)
	w.u16(0)
	w.u32(uint32(len(payload)))
	w.buf = append(w.buf, payload...)
}

// Encode serialises the capture into the p5fr byte format.
func (c *Capture) Encode() ([]byte, error) {
	var out sectionWriter
	out.buf = append(out.buf, captureMagic...)
	out.u8(captureVersion)
	out.pad(3)

	var meta sectionWriter
	meta.u64(c.Seq)
	meta.i64(c.Now)
	meta.i64(c.WallNs)
	meta.str16(c.Link)
	meta.str16(c.Reason)
	out.section(secMeta, meta.buf)

	wire := func(dir uint8, base uint64, octets []byte) {
		var w sectionWriter
		w.u8(dir)
		w.pad(7)
		w.u64(base)
		w.buf = append(w.buf, octets...)
		out.section(secWire, w.buf)
	}
	wire(0, c.RxBase, c.RxWire)
	if len(c.TxWire) > 0 {
		wire(1, c.TxBase, c.TxWire)
	}

	if len(c.Events) > 0 {
		js, err := json.Marshal(c.Events)
		if err != nil {
			return nil, fmt.Errorf("flight: encode events: %w", err)
		}
		out.section(secEvents, js)
	}

	if len(c.Regs) > 0 {
		var w sectionWriter
		w.u32(uint32(len(c.Regs)))
		for _, r := range c.Regs {
			w.str16(r.Name)
			w.u64(r.Value)
		}
		out.section(secRegs, w.buf)
	}

	if c.Incident != 0 || c.ClockOffsetNS != 0 || c.TickOffset != 0 {
		var w sectionWriter
		w.u64(c.Incident)
		origin := uint8(0)
		if c.FromPeer {
			origin = 1
		}
		w.u8(origin)
		w.pad(7)
		w.i64(c.PeerNow)
		w.i64(c.PeerWallNs)
		w.i64(c.ClockOffsetNS)
		w.i64(c.TickOffset)
		out.section(secIncident, w.buf)
	}
	return out.buf, nil
}

type sectionReader struct{ buf []byte }

func (r *sectionReader) need(n int) bool { return len(r.buf) >= n }
func (r *sectionReader) u8() uint8       { v := r.buf[0]; r.buf = r.buf[1:]; return v }
func (r *sectionReader) skip(n int)      { r.buf = r.buf[n:] }
func (r *sectionReader) u16() uint16 {
	v := binary.LittleEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v
}
func (r *sectionReader) u32() uint32 {
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}
func (r *sectionReader) u64() uint64 {
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}
func (r *sectionReader) str16() (string, error) {
	if !r.need(2) {
		return "", fmt.Errorf("flight: truncated string")
	}
	n := int(r.u16())
	if !r.need(n) {
		return "", fmt.Errorf("flight: truncated string body")
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}

// Decode parses a p5fr byte stream back into a Capture. Unknown
// section types are skipped.
func Decode(data []byte) (*Capture, error) {
	if len(data) < 8 || string(data[:4]) != captureMagic {
		return nil, fmt.Errorf("flight: not a p5fr capture (bad magic)")
	}
	if data[4] != captureVersion {
		return nil, fmt.Errorf("flight: unsupported capture version %d", data[4])
	}
	c := &Capture{}
	r := sectionReader{buf: data[8:]}
	for len(r.buf) > 0 {
		if !r.need(8) {
			return nil, fmt.Errorf("flight: truncated section header")
		}
		typ := r.u16()
		r.u16() // flags
		n := int(r.u32())
		if !r.need(n) {
			return nil, fmt.Errorf("flight: truncated section %d (%d of %d bytes)", typ, len(r.buf), n)
		}
		body := sectionReader{buf: r.buf[:n]}
		r.skip(n)
		switch typ {
		case secMeta:
			if !body.need(24) {
				return nil, fmt.Errorf("flight: short meta section")
			}
			c.Seq = body.u64()
			c.Now = int64(body.u64())
			c.WallNs = int64(body.u64())
			var err error
			if c.Link, err = body.str16(); err != nil {
				return nil, err
			}
			if c.Reason, err = body.str16(); err != nil {
				return nil, err
			}
		case secWire:
			if !body.need(16) {
				return nil, fmt.Errorf("flight: short wire section")
			}
			dir := body.u8()
			body.skip(7)
			base := body.u64()
			octets := append([]byte(nil), body.buf...)
			if dir == 0 {
				c.RxBase, c.RxWire = base, octets
			} else {
				c.TxBase, c.TxWire = base, octets
			}
		case secEvents:
			if err := json.Unmarshal(body.buf, &c.Events); err != nil {
				return nil, fmt.Errorf("flight: decode events: %w", err)
			}
		case secRegs:
			if !body.need(4) {
				return nil, fmt.Errorf("flight: short regs section")
			}
			n := int(body.u32())
			for i := 0; i < n; i++ {
				name, err := body.str16()
				if err != nil {
					return nil, err
				}
				if !body.need(8) {
					return nil, fmt.Errorf("flight: truncated register value")
				}
				c.Regs = append(c.Regs, RegSample{Name: name, Value: body.u64()})
			}
		case secIncident:
			if !body.need(48) {
				return nil, fmt.Errorf("flight: short incident section")
			}
			c.Incident = body.u64()
			c.FromPeer = body.u8() == 1
			body.skip(7)
			c.PeerNow = int64(body.u64())
			c.PeerWallNs = int64(body.u64())
			c.ClockOffsetNS = int64(body.u64())
			c.TickOffset = int64(body.u64())
		}
	}
	return c, nil
}

// WriteFile writes the capture into dir under its canonical Filename,
// atomically: the encoding lands in a temp file first and is renamed
// into place, so a reader never observes a torn capture.
func (c *Capture) WriteFile(dir string) error {
	data, err := c.Encode()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".p5fr-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	dst := filepath.Join(dir, c.Filename())
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return err
	}
	c.Path = dst
	return nil
}

// ReadFile loads and decodes a capture file.
func ReadFile(path string) (*Capture, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
