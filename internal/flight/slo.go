package flight

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// SLOConfig sets the service-level objectives a link is held to. The
// zero value gives the repo's defaults: loss ≤ 1e-3, p99 end-to-end
// latency ≤ 8 ticks (1 ms at 125 µs/tick), failover ≤ 400 ticks (the
// GR-253 50 ms protection budget).
type SLOConfig struct {
	// Window is the rolling evaluation window in virtual ticks
	// (default 2048). Burn rates are computed over the trailing
	// window with Window/8 granularity.
	Window int64
	// FrameLossTarget is the objective's maximum frame-loss ratio
	// (default 1e-3).
	FrameLossTarget float64
	// P99BudgetTicks is the end-to-end p99 latency budget (default 8).
	P99BudgetTicks int64
	// FailoverBudgetTicks is the protection-switch duration budget
	// (default 400 ticks = 50 ms).
	FailoverBudgetTicks int64
	// AlarmBurn is the worst-objective burn rate at which the SLO
	// alarms (default 4; clears below half that, for hysteresis).
	AlarmBurn float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = 2048
	}
	if c.FrameLossTarget <= 0 {
		c.FrameLossTarget = 1e-3
	}
	if c.P99BudgetTicks <= 0 {
		c.P99BudgetTicks = 8
	}
	if c.FailoverBudgetTicks <= 0 {
		c.FailoverBudgetTicks = 400
	}
	if c.AlarmBurn <= 0 {
		c.AlarmBurn = 4
	}
	return c
}

// Sources supply the cumulative series an SLO evaluates. All funcs
// must be safe to call from the sampling goroutine; nil funcs read as
// zero.
type Sources struct {
	// Frames is the cumulative count of frames the objective covers
	// (delivered + lost).
	Frames func() uint64
	// Errors is the cumulative count of lost or errored frames.
	Errors func() uint64
	// P99 is the current end-to-end p99 latency in ticks.
	P99 func() int64
	// Failover is the most recent protection-switch duration in
	// ticks (0 = no switch yet).
	Failover func() int64
}

type sloPoint struct {
	at             int64
	frames, errors uint64
}

// SLO evaluates rolling error budgets and burn rates for one link.
// Sample is called from the link's service loop; the published values
// are atomic and may be read (or scraped) from anywhere. A burn rate
// of 1.0 means the objective is being consumed exactly at target; 4x
// sustained exhausts a budget 4x early and raises the alarm.
type SLO struct {
	name string
	cfg  SLOConfig
	src  Sources

	// rolling checkpoints, Window/8 apart, oldest first
	points []sloPoint

	lossBurnM atomic.Int64 // milli-units
	p99BurnM  atomic.Int64
	failBurnM atomic.Int64
	worstM    atomic.Int64
	budgetM   atomic.Int64 // remaining lifetime error budget, 0..1000
	p99Ticks  atomic.Int64
	failTicks atomic.Int64
	alarmed   atomic.Bool

	// OnAlarm, when set, fires once on each rising alarm edge with the
	// worst-burning objective's name. Set before sampling starts.
	OnAlarm func(objective string)
}

// NewSLO builds an evaluator named for its link and registers its
// gauges (slo_* family, labelled slo=name) in reg; reg may be nil.
func NewSLO(reg *telemetry.Registry, name string, cfg SLOConfig, src Sources) *SLO {
	s := &SLO{name: name, cfg: cfg.withDefaults(), src: src}
	s.budgetM.Store(1000)
	if reg != nil {
		lk := telemetry.L("slo", name)
		milli := func(v *atomic.Int64) func() float64 {
			return func() float64 { return float64(v.Load()) / 1000 }
		}
		reg.GaugeFunc("slo_burn_rate", "rolling error-budget burn rate",
			milli(&s.lossBurnM), lk, telemetry.L("objective", "frame_loss"))
		reg.GaugeFunc("slo_burn_rate", "rolling error-budget burn rate",
			milli(&s.p99BurnM), lk, telemetry.L("objective", "p99_latency"))
		reg.GaugeFunc("slo_burn_rate", "rolling error-budget burn rate",
			milli(&s.failBurnM), lk, telemetry.L("objective", "failover"))
		reg.GaugeFunc("slo_worst_burn_rate", "max burn rate across objectives", milli(&s.worstM), lk)
		reg.GaugeFunc("slo_error_budget_remaining", "lifetime frame-loss budget left (1 = untouched)", milli(&s.budgetM), lk)
		reg.GaugeFunc("slo_alarm", "1 while the worst burn rate exceeds the alarm threshold",
			func() float64 {
				if s.alarmed.Load() {
					return 1
				}
				return 0
			}, lk)
		reg.GaugeFunc("slo_p99_latency_ticks", "current end-to-end p99 estimate", func() float64 { return float64(s.p99Ticks.Load()) }, lk)
	}
	return s
}

// Name returns the SLO's link name.
func (s *SLO) Name() string { return s.name }

// Config returns the effective (defaulted) objective configuration.
func (s *SLO) Config() SLOConfig { return s.cfg }

func milliClamp(v float64) int64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > math.MaxInt64/2048 {
		return math.MaxInt64 / 2048
	}
	return int64(v * 1000)
}

// Sample re-evaluates the objectives at virtual time now. Cheap when
// called often: checkpoints advance only every Window/8 ticks, but the
// instantaneous gauges refresh on every call.
func (s *SLO) Sample(now int64) {
	frames, errors := uint64(0), uint64(0)
	if s.src.Frames != nil {
		frames = s.src.Frames()
	}
	if s.src.Errors != nil {
		errors = s.src.Errors()
	}

	gran := s.cfg.Window / 8
	if gran < 1 {
		gran = 1
	}
	if len(s.points) == 0 || now-s.points[len(s.points)-1].at >= gran {
		s.points = append(s.points, sloPoint{at: now, frames: frames, errors: errors})
		// Keep one point older than the window as the subtrahend.
		for len(s.points) > 2 && now-s.points[1].at >= s.cfg.Window {
			s.points = s.points[1:]
		}
	}
	base := s.points[0]

	// Frame-loss burn: windowed loss ratio over target.
	dF := frames - base.frames
	dE := errors - base.errors
	lossRatio := 0.0
	if dF > 0 {
		lossRatio = float64(dE) / float64(dF)
	} else if dE > 0 {
		lossRatio = 1
	}
	lossBurn := lossRatio / s.cfg.FrameLossTarget
	s.lossBurnM.Store(milliClamp(lossBurn))

	// p99 latency burn: current estimate over budget.
	p99 := int64(0)
	if s.src.P99 != nil {
		p99 = s.src.P99()
	}
	s.p99Ticks.Store(p99)
	p99Burn := float64(p99) / float64(s.cfg.P99BudgetTicks)
	s.p99BurnM.Store(milliClamp(p99Burn))

	// Failover burn: last switch duration over the 50 ms budget.
	fo := int64(0)
	if s.src.Failover != nil {
		fo = s.src.Failover()
	}
	s.failTicks.Store(fo)
	failBurn := float64(fo) / float64(s.cfg.FailoverBudgetTicks)
	s.failBurnM.Store(milliClamp(failBurn))

	worst, objective := lossBurn, "frame_loss"
	if p99Burn > worst {
		worst, objective = p99Burn, "p99_latency"
	}
	if failBurn > worst {
		worst, objective = failBurn, "failover"
	}
	s.worstM.Store(milliClamp(worst))

	// Lifetime error budget: fraction of the allowed loss not yet
	// consumed.
	budget := 1.0
	if frames > 0 {
		allowed := s.cfg.FrameLossTarget * float64(frames)
		if allowed > 0 {
			budget = 1 - float64(errors)/allowed
		}
		if budget < 0 {
			budget = 0
		}
	}
	s.budgetM.Store(milliClamp(budget))

	// Alarm with hysteresis: raise at AlarmBurn, clear below half.
	if worst >= s.cfg.AlarmBurn {
		if !s.alarmed.Swap(true) && s.OnAlarm != nil {
			s.OnAlarm(objective)
		}
	} else if worst < s.cfg.AlarmBurn/2 {
		s.alarmed.Store(false)
	}
}

// WorstBurnMilli returns the worst objective's burn rate in
// milli-units (1000 = burning exactly at target) — the value the OAM
// block exposes in RegSLOBurn.
func (s *SLO) WorstBurnMilli() int64 { return s.worstM.Load() }

// Alarmed reports whether the SLO alarm is currently raised.
func (s *SLO) Alarmed() bool { return s.alarmed.Load() }

// snapshot renders the SLO for the /slo board.
func (s *SLO) snapshot() SLOJSON {
	return SLOJSON{
		Name:            s.name,
		WindowTicks:     s.cfg.Window,
		LossTarget:      s.cfg.FrameLossTarget,
		P99BudgetTicks:  s.cfg.P99BudgetTicks,
		FailBudgetTicks: s.cfg.FailoverBudgetTicks,
		LossBurn:        float64(s.lossBurnM.Load()) / 1000,
		P99Burn:         float64(s.p99BurnM.Load()) / 1000,
		FailoverBurn:    float64(s.failBurnM.Load()) / 1000,
		WorstBurn:       float64(s.worstM.Load()) / 1000,
		BudgetRemaining: float64(s.budgetM.Load()) / 1000,
		P99Ticks:        s.p99Ticks.Load(),
		FailoverTicks:   s.failTicks.Load(),
		Alarm:           s.alarmed.Load(),
	}
}

// SLOJSON is one SLO's entry in the /slo board document.
type SLOJSON struct {
	Name            string  `json:"name"`
	WindowTicks     int64   `json:"window_ticks"`
	LossTarget      float64 `json:"loss_target"`
	P99BudgetTicks  int64   `json:"p99_budget_ticks"`
	FailBudgetTicks int64   `json:"failover_budget_ticks"`
	LossBurn        float64 `json:"loss_burn"`
	P99Burn         float64 `json:"p99_burn"`
	FailoverBurn    float64 `json:"failover_burn"`
	WorstBurn       float64 `json:"worst_burn"`
	BudgetRemaining float64 `json:"budget_remaining"`
	P99Ticks        int64   `json:"p99_ticks"`
	FailoverTicks   int64   `json:"failover_ticks"`
	Alarm           bool    `json:"alarm"`
}

// LinkJSON is one recorder's entry in the /slo board document.
type LinkJSON struct {
	Link      string     `json:"link"`
	Tracked   uint64     `json:"tracked"`
	Lost      uint64     `json:"lost"`
	InFlight  int        `json:"in_flight"`
	P99Ticks  int64      `json:"p99_ticks"`
	Captures  uint64     `json:"captures"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// BoardJSON is the /slo document: every SLO and every recorder
// attached to the board.
type BoardJSON struct {
	SLOs  []SLOJSON  `json:"slos"`
	Links []LinkJSON `json:"links"`
}

// Board aggregates recorders and SLOs for the /slo endpoint.
type Board struct {
	mu   sync.Mutex
	recs []*Recorder
	slos []*SLO
}

// NewBoard returns an empty board.
func NewBoard() *Board { return &Board{} }

// Attach adds a recorder to the board.
func (b *Board) Attach(r *Recorder) {
	b.mu.Lock()
	b.recs = append(b.recs, r)
	b.mu.Unlock()
}

// AttachSLO adds an SLO to the board.
func (b *Board) AttachSLO(s *SLO) {
	b.mu.Lock()
	b.slos = append(b.slos, s)
	b.mu.Unlock()
}

// Snapshot renders the board document.
func (b *Board) Snapshot() BoardJSON {
	b.mu.Lock()
	recs := append([]*Recorder(nil), b.recs...)
	slos := append([]*SLO(nil), b.slos...)
	b.mu.Unlock()
	doc := BoardJSON{SLOs: []SLOJSON{}, Links: []LinkJSON{}}
	for _, s := range slos {
		doc.SLOs = append(doc.SLOs, s.snapshot())
	}
	for _, r := range recs {
		doc.Links = append(doc.Links, LinkJSON{
			Link:      r.Name(),
			Tracked:   r.Tracked(),
			Lost:      r.Lost(),
			InFlight:  r.InFlight(),
			P99Ticks:  r.P99(),
			Captures:  r.Captures(),
			Exemplars: r.Exemplars(),
		})
	}
	return doc
}

// WriteJSON writes the board document to w.
func (b *Board) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(b.Snapshot())
}

// Handler serves the board as JSON — mount it at /slo on a
// telemetry.Mux.
func (b *Board) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		b.WriteJSON(w)
	})
}

// ReadBoard decodes a board document previously served by Handler —
// the p5stat -slo input.
func ReadBoard(r io.Reader) (BoardJSON, error) {
	var doc BoardJSON
	err := json.NewDecoder(r).Decode(&doc)
	return doc, err
}
