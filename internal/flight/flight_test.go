package flight

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func testCfg() Config {
	n := int64(0)
	return Config{Clock: func() int64 { n += 1000; return n }}
}

func TestPipeMatchesFIFO(t *testing.T) {
	r := NewRecorder(nil, "a", testCfg())
	id1 := r.Depart(10)
	id2 := r.Depart(11)
	if id1 != 1 || id2 != 2 {
		t.Fatalf("ids = %d,%d", id1, id2)
	}
	lat, ok := r.Arrive(12)
	if !ok || lat != 2 {
		t.Fatalf("first arrival lat=%d ok=%v, want 2", lat, ok)
	}
	lat, ok = r.Arrive(15)
	if !ok || lat != 4 {
		t.Fatalf("second arrival lat=%d ok=%v, want 4", lat, ok)
	}
	if _, ok := r.Arrive(16); ok {
		t.Fatal("arrival with empty pipe matched")
	}
	if r.Tracked() != 2 || r.Lost() != 0 {
		t.Fatalf("tracked=%d lost=%d", r.Tracked(), r.Lost())
	}
}

func TestPipeHorizonCountsLoss(t *testing.T) {
	cfg := testCfg()
	cfg.Horizon = 100
	r := NewRecorder(nil, "a", cfg)
	r.Depart(0)   // will expire
	r.Depart(950) // still live at 1000
	r.Expire(1000)
	if r.Lost() != 1 {
		t.Fatalf("lost = %d, want 1", r.Lost())
	}
	lat, ok := r.Arrive(1000)
	if !ok || lat != 50 {
		t.Fatalf("lat=%d ok=%v, want 50 (matched the live departure)", lat, ok)
	}

	// Flush retires everything still in flight.
	r.Depart(1001)
	r.Depart(1002)
	r.Flush()
	if r.Lost() != 3 || r.InFlight() != 0 {
		t.Fatalf("after flush lost=%d inflight=%d", r.Lost(), r.InFlight())
	}
}

func TestPipeOverflowRetiresOldest(t *testing.T) {
	cfg := testCfg()
	cfg.PipeDepth = 4
	r := NewRecorder(nil, "a", cfg)
	for i := 0; i < 6; i++ {
		r.Depart(int64(i))
	}
	if r.Lost() != 2 || r.InFlight() != 4 {
		t.Fatalf("lost=%d inflight=%d, want 2/4", r.Lost(), r.InFlight())
	}
	// Oldest live departure is #3 (at=2).
	lat, ok := r.Arrive(10)
	if !ok || lat != 8 {
		t.Fatalf("lat=%d ok=%v, want 8", lat, ok)
	}
}

func TestExemplarsResolve(t *testing.T) {
	r := NewRecorder(nil, "a", testCfg())
	r.Depart(0)
	r.Depart(0)
	r.Arrive(1)   // fast frame
	r.Arrive(100) // slow frame, bucket le=128
	ex, ok := r.Exemplar(100)
	if !ok {
		t.Fatal("no exemplar for the slow bucket")
	}
	if ex.ID != 2 || ex.Value != 100 || ex.At != 100 || ex.LE != 128 {
		t.Fatalf("exemplar = %+v", ex)
	}
	all := r.Exemplars()
	if len(all) != 2 {
		t.Fatalf("exemplars = %d, want 2", len(all))
	}
	// A slow frame (≥ SlowTicks) leaves a black-box event carrying its ID.
	found := false
	for _, e := range r.Events() {
		if e.Name == "slow-frame" && e.V1 == 2 && e.V2 == 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slow-frame event for frame 2 in %v", r.Events())
	}
}

func TestByteRingInvariant(t *testing.T) {
	var r byteRing
	r.buf = make([]byte, 8)
	r.write([]byte("abc"))
	base, data := r.snapshot()
	if base != 0 || string(data) != "abc" {
		t.Fatalf("base=%d data=%q", base, data)
	}
	r.write([]byte("defghij")) // 10 total, wraps
	base, data = r.snapshot()
	if base != 2 || string(data) != "cdefghij" {
		t.Fatalf("after wrap base=%d data=%q", base, data)
	}
	// Oversized write keeps only the tail and stays aligned.
	r.write(bytes.Repeat([]byte("x"), 20))
	r.write([]byte("YZ"))
	base, data = r.snapshot()
	if base != 24 || string(data) != "xxxxxxYZ" {
		t.Fatalf("after oversize base=%d data=%q", base, data)
	}
}

func TestCaptureRoundTripByteIdentical(t *testing.T) {
	c := &Capture{
		Link:   "b",
		Reason: "supervisor-restart",
		Seq:    3,
		Now:    4242,
		WallNs: 1234567890,
		RxBase: 9000,
		RxWire: []byte{0x7E, 0xFF, 0x03, 0x00, 0x21, 0x45, 0x7D, 0x5E, 0x7E},
		TxBase: 100,
		TxWire: []byte{0x7E, 0x01, 0x02},
		Events: []telemetry.Event{
			{Seq: 1, At: 10, Scope: "b", Name: "restart", Detail: "backoff", V1: 2, V2: 8},
			{Seq: 2, At: 11, Scope: "b", Name: "capture", Detail: "supervisor-restart"},
		},
		Regs: []RegSample{{Name: "rx_frames", Value: 77}, {Name: "alarm", Value: 0x30}},
	}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.RxWire, c.RxWire) || !bytes.Equal(got.TxWire, c.TxWire) {
		t.Fatalf("wire stream not byte-identical:\n got %x / %x\nwant %x / %x",
			got.RxWire, got.TxWire, c.RxWire, c.TxWire)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}

	// Re-encoding the decoded capture is byte-identical too.
	data2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encode differs from original encoding")
	}
}

func TestCaptureDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a capture")); err == nil {
		t.Fatal("bad magic accepted")
	}
	c := &Capture{Link: "a", Reason: "oam"}
	data, _ := c.Encode()
	if _, err := Decode(data[:len(data)-1]); err == nil {
		t.Fatal("truncated capture accepted")
	}
	// Unknown sections are skipped, not fatal.
	var w sectionWriter
	w.buf = append(w.buf, data...)
	w.section(0x7FFF, []byte("future extension"))
	got, err := Decode(w.buf)
	if err != nil {
		t.Fatalf("unknown section not skipped: %v", err)
	}
	if got.Link != "a" || got.Reason != "oam" {
		t.Fatalf("meta lost around unknown section: %+v", got)
	}
}

func TestCaptureFileAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg()
	cfg.Dir = dir
	r := NewRecorder(nil, "w0", cfg)
	r.TapRx([]byte{0x7E, 0x11, 0x22, 0x7E})
	r.SetNow(99)
	c := r.Trigger("fcs-burst")
	if err := r.LastErr(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, c.Filename())
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.RxWire, []byte{0x7E, 0x11, 0x22, 0x7E}) || got.Now != 99 || got.Reason != "fcs-burst" {
		t.Fatalf("file capture = %+v", got)
	}
	// No temp litter.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".p5fr-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestTriggerBookkeeping(t *testing.T) {
	cfg := testCfg()
	cfg.RecentCaptures = 2
	r := NewRecorder(nil, "a", cfg)
	r.RegDump = func(dst []RegSample) []RegSample {
		return append(dst, RegSample{Name: "x", Value: 1})
	}
	seen := 0
	r.OnCapture = func(c *Capture) { seen++ }
	r.Trigger("oam")
	r.Trigger("oam")
	r.Trigger("aps-switch")
	if r.Captures() != 3 || r.CapturesFor("oam") != 2 || r.CapturesFor("aps-switch") != 1 {
		t.Fatalf("counts: total=%d oam=%d aps=%d", r.Captures(), r.CapturesFor("oam"), r.CapturesFor("aps-switch"))
	}
	if seen != 3 {
		t.Fatalf("OnCapture fired %d times", seen)
	}
	rec := r.Recent()
	if len(rec) != 2 || rec[0].Seq != 2 || rec[1].Seq != 3 {
		t.Fatalf("recent ring not bounded oldest-out: %d entries", len(rec))
	}
	if len(rec[1].Regs) != 1 || rec[1].Regs[0].Name != "x" {
		t.Fatalf("RegDump not applied: %+v", rec[1].Regs)
	}
}

// TestTriggerProfilerHook: the Config.Profiler hook observes every
// capture after OnCapture and after the capture file is written, so a
// runtime profile snapshot can land next to the .p5fr evidence.
func TestTriggerProfilerHook(t *testing.T) {
	cfg := testCfg()
	cfg.Dir = t.TempDir()
	order := []string{}
	cfg.Profiler = func(c *Capture) {
		if c.Reason != "aps-switch" {
			t.Errorf("profiler saw reason %q", c.Reason)
		}
		order = append(order, "profiler")
	}
	r := NewRecorder(nil, "a", cfg)
	r.OnCapture = func(c *Capture) { order = append(order, "capture") }
	c := r.Trigger("aps-switch")
	if len(order) != 2 || order[0] != "capture" || order[1] != "profiler" {
		t.Fatalf("hook order = %v, want [capture profiler]", order)
	}
	// The .p5fr file exists by the time the profiler runs, so tagged
	// snapshots written beside it always pair up.
	if c.Path == "" {
		t.Error("capture file not on disk before the profiler hook ran")
	}
}

func TestBurstDetectorFiresOncePerBurst(t *testing.T) {
	b := BurstDetector{Window: 10, Threshold: 3}
	if b.Note(0) || b.Note(1) {
		t.Fatal("fired below threshold")
	}
	if !b.Note(2) {
		t.Fatal("did not fire at threshold")
	}
	if b.Note(3) || b.Note(4) {
		t.Fatal("re-fired inside the same burst")
	}
	// Quiet period re-arms.
	if b.Note(100) || b.Note(101) {
		t.Fatal("fired below threshold after re-arm")
	}
	if !b.Note(102) {
		t.Fatal("did not fire on second burst")
	}
}

func TestSLOBurnRates(t *testing.T) {
	var frames, errors uint64
	var p99, fo int64
	alarms := []string{}
	s := NewSLO(nil, "b", SLOConfig{Window: 80, FrameLossTarget: 0.01, P99BudgetTicks: 8, FailoverBudgetTicks: 400, AlarmBurn: 4},
		Sources{
			Frames:   func() uint64 { return frames },
			Errors:   func() uint64 { return errors },
			P99:      func() int64 { return p99 },
			Failover: func() int64 { return fo },
		})
	s.OnAlarm = func(obj string) { alarms = append(alarms, obj) }

	// Clean window: 1000 frames, no loss.
	s.Sample(0)
	frames = 1000
	s.Sample(100)
	if s.WorstBurnMilli() != 0 || s.Alarmed() {
		t.Fatalf("clean window burn=%d alarmed=%v", s.WorstBurnMilli(), s.Alarmed())
	}

	// 5% loss against a 1% target → loss burn 5, alarm fires once.
	frames, errors = 2000, 50
	s.Sample(200)
	if got := s.WorstBurnMilli(); got < 4000 {
		t.Fatalf("loss burn = %dm, want ≥ 4000m", got)
	}
	if !s.Alarmed() || len(alarms) != 1 || alarms[0] != "frame_loss" {
		t.Fatalf("alarm state: %v %v", s.Alarmed(), alarms)
	}
	doc := s.snapshot()
	if !doc.Alarm || doc.LossBurn < 4 {
		t.Fatalf("snapshot = %+v", doc)
	}
	if doc.BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %v, want 0 (2.5x overspent)", doc.BudgetRemaining)
	}

	// Loss stops; after the window rolls past the errored span the
	// burn decays and the alarm clears with hysteresis.
	for at := int64(300); at <= 900; at += 10 {
		frames += 100
		s.Sample(at)
	}
	if s.WorstBurnMilli() >= 4000 || s.Alarmed() {
		t.Fatalf("burn did not decay: %dm alarmed=%v", s.WorstBurnMilli(), s.Alarmed())
	}
	if len(alarms) != 1 {
		t.Fatalf("alarm edge fired %d times", len(alarms))
	}

	// Latency and failover objectives burn independently.
	p99, fo = 16, 800
	s.Sample(1000)
	doc = s.snapshot()
	if doc.P99Burn != 2 || doc.FailoverBurn != 2 {
		t.Fatalf("p99 burn=%v failover burn=%v, want 2/2", doc.P99Burn, doc.FailoverBurn)
	}
}

func TestBoardSnapshotAndJSON(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRecorder(reg, "port0", testCfg())
	r.Depart(0)
	r.Arrive(3)
	s := NewSLO(reg, "port0", SLOConfig{}, Sources{Frames: r.Tracked, Errors: r.Lost, P99: r.P99})
	s.Sample(10)
	b := NewBoard()
	b.Attach(r)
	b.AttachSLO(s)

	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadBoard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.SLOs) != 1 || len(doc.Links) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Links[0].Link != "port0" || doc.Links[0].Tracked != 1 || len(doc.Links[0].Exemplars) != 1 {
		t.Fatalf("link entry = %+v", doc.Links[0])
	}
	if doc.SLOs[0].Name != "port0" || doc.SLOs[0].WindowTicks != 2048 {
		t.Fatalf("slo entry = %+v", doc.SLOs[0])
	}

	// The registered gauges flatten into a scrape.
	snap := reg.Snapshot("t")
	if _, ok := snap.Get(`slo_worst_burn_rate{slo="port0"}`); !ok {
		t.Fatal("slo_worst_burn_rate not registered")
	}
	if v, ok := snap.Get(`flight_frames_tracked_total{link="port0"}`); !ok || v != 1 {
		t.Fatalf("flight_frames_tracked_total = %v %v", v, ok)
	}
}

func TestExemplarOverflowBucketLE(t *testing.T) {
	cfg := testCfg()
	cfg.Horizon = 1 << 40 // keep the matcher from declaring it lost first
	r := NewRecorder(nil, "a", cfg)
	r.Depart(0)
	r.Arrive(100000) // beyond the last finite bound
	ex, ok := r.Exemplar(100000)
	if !ok || ex.LE != math.MaxInt64 {
		t.Fatalf("overflow exemplar = %+v ok=%v", ex, ok)
	}
	// And the histogram's p99 clamps to the highest finite bound.
	if got := r.P99(); got != E2EBounds[len(E2EBounds)-1] {
		t.Fatalf("p99 = %d, want clamp to %d", got, E2EBounds[len(E2EBounds)-1])
	}
}
