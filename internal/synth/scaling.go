package synth

import "fmt"

// ScalingRow is one width point of the datapath scaling study: the
// natural extension of the paper's 8-vs-32-bit comparison to 16- and
// 64-bit datapaths (the conclusion's "throughput rates beyond 2.5 Gbps"
// direction).
type ScalingRow struct {
	Bits      int // datapath width in bits
	LUTs      int
	FFs       int
	Depth     int
	FMaxPost  float64 // Virtex-II -6, post-layout
	LineGbps  float64 // width × achievable clock
	MeetsSTM  string  // highest standard rate the point can carry
	EscapeLUT int     // escape-generate share
}

// ScalingTable evaluates the P5 at datapath widths of 8..64 bits.
func ScalingTable() []ScalingRow {
	var rows []ScalingRow
	for _, w := range []int{1, 2, 4, 8} {
		tot := Total(Inventory(w))
		fmax := VirtexII.FMaxMHz(tot.Depth, true)
		gbps := LineRateGbps(fmax, w)
		rows = append(rows, ScalingRow{
			Bits:      w * 8,
			LUTs:      tot.LUTs,
			FFs:       tot.FFs,
			Depth:     tot.Depth,
			FMaxPost:  fmax,
			LineGbps:  gbps,
			MeetsSTM:  highestSTM(gbps),
			EscapeLUT: EscapeGenerate(w).LUTs,
		})
	}
	return rows
}

func highestSTM(gbps float64) string {
	switch {
	case gbps >= 9.95:
		return "STM-64 (10 Gb/s)"
	case gbps >= 2.488:
		return "STM-16 (2.5 Gb/s)"
	case gbps >= 0.622:
		return "STM-4 (622 Mb/s)"
	case gbps >= 0.155:
		return "STM-1 (155 Mb/s)"
	default:
		return "sub-STM-1"
	}
}

// FormatScalingTable renders the scaling study.
func FormatScalingTable(rows []ScalingRow) string {
	out := "Datapath scaling study (Virtex-II -6, post-layout)\n"
	out += fmt.Sprintf("%6s %8s %6s %6s %10s %10s %10s  %s\n",
		"width", "LUTs", "FFs", "depth", "fMax", "line rate", "escape", "carries")
	for _, r := range rows {
		out += fmt.Sprintf("%4d-b %8d %6d %6d %7.1f MHz %7.2f Gb/s %6d LUT  %s\n",
			r.Bits, r.LUTs, r.FFs, r.Depth, r.FMaxPost, r.LineGbps, r.EscapeLUT, r.MeetsSTM)
	}
	return out
}
