package synth

// Tech is an FPGA technology/speed-grade delay model. The paper's timing
// analysis found the same 6-LUT critical path on Virtex and Virtex-II,
// attributing the Virtex-II speed-up purely to per-LUT delay — exactly
// the structure of this model: the clock period is depth LUT delays,
// depth+1 net hops, and a fixed clock-to-out + setup overhead. Routing
// delay rises after place-and-route (the pre/post-layout split of the
// paper's tables).
type Tech struct {
	Name     string
	TLUT     float64 // LUT propagation delay, ns
	TNetPre  float64 // estimated (pre-layout) net delay per hop, ns
	TNetPost float64 // routed (post-layout) net delay per hop, ns
	TFixed   float64 // clock-to-out + setup, ns
}

// The two device families the paper targets. Delays follow the Virtex
// (-4 speed grade) and Virtex-II (-6) datasheet classes.
var (
	Virtex   = Tech{Name: "Virtex -4", TLUT: 0.66, TNetPre: 0.35, TNetPost: 1.15, TFixed: 1.2}
	VirtexII = Tech{Name: "Virtex-II -6", TLUT: 0.38, TNetPre: 0.28, TNetPost: 0.60, TFixed: 0.9}
)

// FMaxMHz returns the achievable clock for the given logic depth.
func (t Tech) FMaxMHz(depth int, postLayout bool) float64 {
	if depth < 1 {
		depth = 1
	}
	net := t.TNetPre
	if postLayout {
		net = t.TNetPost
	}
	period := float64(depth)*t.TLUT + float64(depth+1)*net + t.TFixed
	return 1000.0 / period
}

// LineRateGbps converts a clock and datapath width into line throughput.
func LineRateGbps(fMaxMHz float64, wOctets int) float64 {
	return fMaxMHz * 1e6 * float64(wOctets) * 8 / 1e9
}

// RequiredMHz is the clock both P5 variants must reach: 78.125 MHz,
// which is 2.5 Gb/s on the 32-bit datapath and 625 Mb/s on the 8-bit
// one (the paper's stated targets — line rate scales with width at a
// fixed clock).
const RequiredMHz = 2500.0 / 32.0 // 78.125

// Device is an FPGA part with its LUT4/FF capacity.
type Device struct {
	Name string
	LUTs int
	FFs  int
	Tech Tech
}

// The parts used in the paper's Tables 1–3.
var (
	XCV50    = Device{Name: "XCV50-4", LUTs: 1536, FFs: 1536, Tech: Virtex}
	XCV600   = Device{Name: "XCV600-4", LUTs: 13824, FFs: 13824, Tech: Virtex}
	XC2V40   = Device{Name: "XC2V40-6", LUTs: 512, FFs: 512, Tech: VirtexII}
	XC2V1000 = Device{Name: "XC2V1000-6", LUTs: 10240, FFs: 10240, Tech: VirtexII}
)

// UtilPct returns n as a percentage of cap.
func UtilPct(n, cap int) float64 {
	if cap == 0 {
		return 0
	}
	return 100 * float64(n) / float64(cap)
}
