package synth

import (
	"strings"
	"testing"
)

func TestCostAlgebra(t *testing.T) {
	a := Cost{LUTs: 10, FFs: 5, Depth: 2}
	b := Cost{LUTs: 3, FFs: 1, Depth: 4}
	if got := a.Add(b); got != (Cost{13, 6, 4}) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Chain(b); got != (Cost{13, 6, 6}) {
		t.Errorf("Chain = %+v", got)
	}
	if got := a.Times(3); got != (Cost{30, 15, 2}) {
		t.Errorf("Times = %+v", got)
	}
}

func TestPrimitiveFormulas(t *testing.T) {
	if Register(16) != (Cost{FFs: 16}) {
		t.Error("Register")
	}
	// 8-input function: ceil(7/3) = 3 LUTs, depth 2.
	if got := LUTTree(8); got.LUTs != 3 || got.Depth != 2 {
		t.Errorf("LUTTree(8) = %+v", got)
	}
	if got := LUTTree(1); got.LUTs != 0 {
		t.Errorf("LUTTree(1) = %+v", got)
	}
	// 4-input: a single LUT.
	if got := LUTTree(4); got.LUTs != 1 || got.Depth != 1 {
		t.Errorf("LUTTree(4) = %+v", got)
	}
	// 2:1 mux of 8 bits: 8 LUTs, depth 1.
	if got := Mux(2, 8); got.LUTs != 8 || got.Depth != 1 {
		t.Errorf("Mux(2,8) = %+v", got)
	}
	// 8:1 mux: 7 LUTs per bit, depth 3.
	if got := Mux(8, 1); got.LUTs != 7 || got.Depth != 3 {
		t.Errorf("Mux(8,1) = %+v", got)
	}
	if Mux(1, 8).LUTs != 0 {
		t.Error("Mux(1) must be free")
	}
	if got := Counter(16); got.LUTs != 16 || got.FFs != 16 {
		t.Errorf("Counter = %+v", got)
	}
	if PriorityEncoder(1).LUTs != 0 {
		t.Error("PriorityEncoder(1)")
	}
}

// The published anchors of Tables 1-3. We assert our structural model
// lands within a tolerance of each, and exactly on the ordering claims.
func TestEscapeGenerateMatchesPaperTable3(t *testing.T) {
	e8 := EscapeGenerate(1)
	e32 := EscapeGenerate(4)
	// Paper: 8-bit = 22 LUTs, 6 FFs.
	if e8.LUTs != 22 || e8.FFs != 6 {
		t.Errorf("8-bit escape generate = %d LUT / %d FF, paper 22/6", e8.LUTs, e8.FFs)
	}
	// Paper: 32-bit = 492 LUTs, 168 FFs; allow 15%.
	within := func(got, want int, tol float64) bool {
		d := float64(got-want) / float64(want)
		return d >= -tol && d <= tol
	}
	if !within(e32.LUTs, 492, 0.15) {
		t.Errorf("32-bit escape generate LUTs = %d, paper 492", e32.LUTs)
	}
	if !within(e32.FFs, 168, 0.15) {
		t.Errorf("32-bit escape generate FFs = %d, paper 168", e32.FFs)
	}
}

func TestAreaRatiosMatchPaper(t *testing.T) {
	r := ComputeRatios()
	// Paper: escape module 25x LUTs, 28x FFs. Allow ±20%.
	if r.EscapeGenLUT < 20 || r.EscapeGenLUT > 30 {
		t.Errorf("escape LUT ratio = %.1f, paper 25x", r.EscapeGenLUT)
	}
	if r.EscapeGenFF < 22 || r.EscapeGenFF > 34 {
		t.Errorf("escape FF ratio = %.1f, paper 28x", r.EscapeGenFF)
	}
	// Paper: whole system ~11x. Our richer 8-bit baseline (full OAM
	// and control) dilutes this; the ordering and superlinearity must
	// still hold: ratio well above the 4x a linear scaling would give.
	if r.SystemLUT <= 1 || r.DatapathLUT <= r.SystemLUT {
		t.Errorf("ratio ordering wrong: system %.1f datapath %.1f", r.SystemLUT, r.DatapathLUT)
	}
	if r.DatapathLUT < 4.0 {
		t.Errorf("datapath LUT ratio = %.1f, must exceed linear 4x", r.DatapathLUT)
	}
}

func TestCriticalPathDepthIsSix(t *testing.T) {
	// Paper: "the critical path is the same for each device and in
	// each case passes through 6 [LUTs]".
	tot := Total(Inventory(4))
	if tot.Depth != 6 {
		t.Errorf("32-bit system depth = %d, paper 6", tot.Depth)
	}
	// The sorter owns the critical path.
	if EscapeGenerate(4).Depth != 6 {
		t.Errorf("escape generate depth = %d", EscapeGenerate(4).Depth)
	}
	if CRCUnit(4, 0).Depth >= 6 {
		t.Errorf("CRC depth %d should be off the critical path", CRCUnit(4, 0).Depth)
	}
}

func TestTimingModelOrdering(t *testing.T) {
	// Virtex-II is faster than Virtex at every depth, pre and post.
	for d := 2; d <= 10; d++ {
		for _, post := range []bool{false, true} {
			if VirtexII.FMaxMHz(d, post) <= Virtex.FMaxMHz(d, post) {
				t.Errorf("depth %d post=%v: Virtex-II not faster", d, post)
			}
		}
	}
	// Post-layout is always slower than pre-layout.
	if VirtexII.FMaxMHz(6, true) >= VirtexII.FMaxMHz(6, false) {
		t.Error("post-layout must be slower")
	}
}

func TestLineRateHeadline(t *testing.T) {
	// Paper headline: the 32-bit system on Virtex-II meets 78.125 MHz
	// (2.5 Gb/s); plain Virtex does not after layout.
	depth := Total(Inventory(4)).Depth
	if VirtexII.FMaxMHz(depth, true) < RequiredMHz {
		t.Errorf("Virtex-II post-layout %.1f MHz misses the 78.125 MHz bar",
			VirtexII.FMaxMHz(depth, true))
	}
	if Virtex.FMaxMHz(depth, true) >= RequiredMHz {
		t.Errorf("Virtex post-layout %.1f MHz should miss the bar (paper: met only with Virtex-II)",
			Virtex.FMaxMHz(depth, true))
	}
	// 78.125 MHz x 32 bits = 2.5 Gb/s; x 8 bits = 625 Mb/s.
	if g := LineRateGbps(RequiredMHz, 4); g < 2.49 || g > 2.51 {
		t.Errorf("32-bit line rate = %v Gb/s", g)
	}
	if g := LineRateGbps(RequiredMHz, 1); g < 0.62 || g > 0.63 {
		t.Errorf("8-bit line rate = %v Gb/s", g)
	}
}

func TestVirtexIISpeedupIsTechnologyNotDepth(t *testing.T) {
	// Paper: same 6-LUT path on both parts; speed-up comes from per-LUT
	// delay. Verify the model's speed-up at fixed depth matches the
	// LUT+net delay ratio direction and is in the observed ~1.4-1.8x.
	s := VirtexII.FMaxMHz(6, true) / Virtex.FMaxMHz(6, true)
	if s < 1.3 || s > 2.0 {
		t.Errorf("Virtex-II speed-up = %.2fx, expected 1.3-2.0x", s)
	}
}

func TestDeviceFit(t *testing.T) {
	// Paper: the complete 32-bit system uses ~25% of an XC2V1000.
	tot := Total(Inventory(4))
	pct := UtilPct(tot.LUTs, XC2V1000.LUTs)
	if pct < 10 || pct > 40 {
		t.Errorf("XC2V1000 utilisation = %.0f%%, paper ~25%%", pct)
	}
	// The 32-bit escape generate nearly fills an XC2V40 (paper: 96%).
	eg := EscapeGenerate(4)
	if p := UtilPct(eg.LUTs, XC2V40.LUTs); p < 80 {
		t.Errorf("escape generate on XC2V40 = %.0f%%, paper 96%%", p)
	}
	// The 8-bit system fits an XCV50 with room (paper: 12%).
	t8 := Total(Inventory(1))
	if p := UtilPct(t8.LUTs, XCV50.LUTs); p > 50 {
		t.Errorf("8-bit system on XCV50 = %.0f%%", p)
	}
}

func TestCoreTotalSubset(t *testing.T) {
	inv := Inventory(4)
	core := CoreTotal(inv)
	dp := DatapathTotal(inv)
	tot := Total(inv)
	if !(core.LUTs < dp.LUTs && dp.LUTs < tot.LUTs) {
		t.Errorf("totals not nested: core %d, datapath %d, total %d",
			core.LUTs, dp.LUTs, tot.LUTs)
	}
}

func TestSystemTableRows(t *testing.T) {
	rows := SystemTable(4, XCV600, XC2V1000)
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	if rows[0].Device.Name != "XCV600-4" || rows[1].Device.Name != "XC2V1000-6" {
		t.Error("device order")
	}
	if rows[0].MeetsRate {
		t.Error("Virtex row should miss line rate post-layout")
	}
	if !rows[1].MeetsRate {
		t.Error("Virtex-II row should meet line rate")
	}
	out := FormatSystemTable("Table 2", rows)
	if !strings.Contains(out, "XC2V1000-6") || !strings.Contains(out, "MHz") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestEscapeGenerateTableFormat(t *testing.T) {
	rows := EscapeGenerateTable(XC2V40)
	if len(rows) != 2 || rows[0].Width != 4 || rows[1].Width != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	out := FormatModuleTable(XC2V40, rows)
	if !strings.Contains(out, "escape-generate 32-bit") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestScalingTable(t *testing.T) {
	rows := ScalingTable()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Area grows superlinearly with width; line rate grows sublinearly
	// (depth increases eat into fMax).
	for i := 1; i < len(rows); i++ {
		if rows[i].LUTs <= rows[i-1].LUTs {
			t.Errorf("LUTs not monotone at %d bits", rows[i].Bits)
		}
		if rows[i].LineGbps <= rows[i-1].LineGbps {
			t.Errorf("line rate not monotone at %d bits", rows[i].Bits)
		}
	}
	// The escape unit's share of area grows with width — the paper's
	// central scaling observation extended.
	first := float64(rows[0].EscapeLUT) / float64(rows[0].LUTs)
	last := float64(rows[3].EscapeLUT) / float64(rows[3].LUTs)
	if last <= first {
		t.Errorf("escape share did not grow: %.2f → %.2f", first, last)
	}
	// 32-bit carries STM-16; 64-bit must reach beyond.
	if rows[2].MeetsSTM != "STM-16 (2.5 Gb/s)" {
		t.Errorf("32-bit carries %s", rows[2].MeetsSTM)
	}
	if rows[3].LineGbps <= rows[2].LineGbps {
		t.Error("64-bit not faster than 32-bit")
	}
	out := FormatScalingTable(rows)
	if !strings.Contains(out, "64-b") {
		t.Errorf("format:\n%s", out)
	}
}
