package synth

import (
	"math/bits"

	"repro/internal/crc"
)

// ModuleCost names one block of the P5 and its estimated cost.
type ModuleCost struct {
	Name string
	Cost Cost
}

// EscapeGenerate estimates the Escape Generate unit for a W-octet
// datapath, mirroring the structure simulated in internal/p5:
//
//   - detect: two 8-bit equal-to-constant comparators per lane
//     (flag and escape);
//   - expand (W>1): a crossbar writing up to 2W output octets, each
//     selected from the W input lanes or the escape constant, steered
//     by a prefix count of the escape mask;
//   - merge/align (W>1): a 2W-1 octet residue register and a W-octet
//     output crossbar selecting across residue and expanded octets —
//     the "byte sorter mechanisms built with large decision-making
//     combinational logic" the paper identifies as the area driver;
//   - for W == 1 the whole unit is one comparator pair, an output
//     2:1 multiplexer and a small hold FSM, the classic 8-bit design.
func EscapeGenerate(w int) Cost {
	detect := EqConst(8).Times(2 * w)
	if w == 1 {
		out := Mux(2, 8)            // data / escaped-data selection
		ctl := FSM(3, 3)            // idle / escape-pending / stuffing
		hold := LUTTree(4).Times(2) // handshake + hold-input gating
		hs := Register(3)           // valid/ready handshake flops
		c := detect.Add(out).Add(ctl.Add(hold)).Add(hs)
		c.Depth = detect.Depth + out.Depth + 1 // compare → select → gate
		return c
	}
	// Stage registers: input word + mask (stage A), expanded octets +
	// count (stage B).
	regs := Register(w*8 + w).Add(Register(2*w*8 + bits.Len(uint(2*w))))
	// Expansion crossbar: 2W output octets, each choosing among the W
	// lanes or the escape/XORed constants.
	expand := Mux(w+1, 8).Times(2 * w)
	// Prefix-population count of the mask steers the crossbar.
	steer := PriorityEncoder(w).Times(2)
	// Merge/align: residue register plus the W-octet output crossbar
	// over 2W candidate sources.
	residue := Register((2*w - 1) * 8)
	align := Mux(2*w, 8).Times(w)
	ctl := FSM(4, 4).Add(Counter(bits.Len(uint(4 * w))).Times(2))
	c := detect.Add(regs).Add(expand).Add(steer).Add(residue).Add(align).Add(ctl)
	// The unit is pipelined, so its critical path is the worst single
	// stage, not the sum: the expand stage chains the mask steering
	// into the crossbar selects plus the register-enable gating —
	// the paper's six LUT levels.
	c.Depth = maxInt(detect.Depth+1,
		steer.Depth+expand.Depth+1,
		align.Depth+2)
	return c
}

func maxInt(vs ...int) int {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// EscapeDetect estimates the receive-side unit; structurally the mirror
// image (deletion instead of insertion), with the same sorter skeleton.
func EscapeDetect(w int) Cost {
	detect := EqConst(8).Times(w) // only the escape octet is hunted here
	if w == 1 {
		out := Mux(2, 8) // pass / XOR-restored
		ctl := FSM(3, 3)
		hs := Register(3)
		c := detect.Add(out).Add(ctl).Add(hs)
		c.Depth = detect.Depth + out.Depth + 1
		return c
	}
	regs := Register(w*8 + w).Add(Register(w*8 + bits.Len(uint(w))))
	compact := Mux(w, 8).Times(w) // bubble-collapse crossbar
	steer := PriorityEncoder(w).Times(2)
	residue := Register((2*w - 1) * 8)
	align := Mux(2*w, 8).Times(w)
	ctl := FSM(4, 4).Add(Counter(bits.Len(uint(4 * w))).Times(2))
	c := detect.Add(regs).Add(compact).Add(steer).Add(residue).Add(align).Add(ctl)
	c.Depth = maxInt(detect.Depth+1,
		steer.Depth+compact.Depth+1,
		align.Depth+2)
	return c
}

// CRCUnit estimates the parallel CRC core for a W-octet datapath
// directly from the real GF(2) matrices: output bit i is an XOR tree
// over the state and data bits in row i of [Mstate | Mdata].
func CRCUnit(w int, mode crc.Size) Cost {
	if mode == crc.FCS16Mode {
		// Half the state width: approximate as half the XOR network.
		c32 := crcMatrixCost(w)
		return Cost{LUTs: c32.LUTs / 2, FFs: 16 + w*8, Depth: c32.Depth}
	}
	c := crcMatrixCost(w)
	c.FFs = 32 + w*8 // state register + pipeline register for the word
	return c
}

func crcMatrixCost(w int) Cost {
	e := crc.NewParallel32(8 * w)
	ms, md := e.StateMatrix(), e.DataMatrix()
	var c Cost
	for r := 0; r < 32; r++ {
		fanin := bits.OnesCount64(ms.Row(r)) + bits.OnesCount64(md.Row(r))
		c = c.Add(XORTree(fanin)) // LUTs accumulate; depth takes the max row
	}
	return c
}

// FramerControl estimates the transmitter control unit: header
// insertion multiplexers, length counters, and the framing FSM driven
// by OAM commands.
func FramerControl(w int) Cost {
	hdr := Mux(3, 8).Times(w)   // header byte / payload / idle per lane
	cnt := Counter(16).Times(2) // offset and length
	ctl := FSM(5, 5)            // idle/header/payload/close/stall
	c := hdr.Add(cnt).Add(ctl)
	c.Depth = ctl.Depth + hdr.Depth
	return c
}

// RxControlUnit estimates the receiver control unit: frame assembly
// pointers, address/length policing comparators, status generation.
func RxControlUnit(w int) Cost {
	police := EqConst(8).Times(2).Add(LUTTree(16)) // address ×2 + MRU compare
	cnt := Counter(16).Times(2)
	ctl := FSM(5, 5)
	c := police.Add(cnt).Add(ctl)
	c.Depth = ctl.Depth + police.Depth
	return c
}

// OAMBlock estimates the Protocol OAM: configuration registers, the
// interrupt cell, the host bus decoder, and the status counters.
func OAMBlock() Cost {
	cfg := Register(32 + 8 + 8 + 32 + 3 + 16) // ctrl/addr/control/accm/fcs/mru
	ints := Register(8 + 8).Add(LUTTree(8))   // status+mask+reduce
	dec := LUTTree(6).Times(16)               // address decode for 16 registers
	counters := Counter(16).Times(8)          // rolling status counters
	return cfg.Add(ints).Add(dec).Add(counters)
}

// Inventory lists every block of a width-w P5 (w octets per clock: 1 =
// the paper's 8-bit system, 4 = the 32-bit system).
func Inventory(w int) []ModuleCost {
	return []ModuleCost{
		{"escape-generate", EscapeGenerate(w)},
		{"escape-detect", EscapeDetect(w)},
		{"tx-crc", CRCUnit(w, crc.FCS32Mode)},
		{"rx-crc", CRCUnit(w, crc.FCS32Mode)},
		{"tx-control", FramerControl(w)},
		{"rx-control", RxControlUnit(w)},
		{"protocol-oam", OAMBlock()},
	}
}

// Total sums an inventory.
func Total(inv []ModuleCost) Cost {
	var c Cost
	for _, m := range inv {
		c = c.Add(m.Cost)
	}
	return c
}

// DatapathTotal sums an inventory excluding the Protocol OAM — the
// paper's stated focus ("the main focus of this paper is on the
// data-path implementation").
func DatapathTotal(inv []ModuleCost) Cost {
	var c Cost
	for _, m := range inv {
		if m.Name == "protocol-oam" {
			continue
		}
		c = c.Add(m.Cost)
	}
	return c
}

// CoreTotal sums only the four per-word datapath engines — the escape
// units and CRC units. The paper's 8-bit flip-flop count (84) is almost
// exactly two CRC cores plus the escape pair, indicating its "system"
// figures cover this core; CoreTotal is therefore the closest
// like-for-like comparison against Tables 1 and 2.
func CoreTotal(inv []ModuleCost) Cost {
	var c Cost
	for _, m := range inv {
		switch m.Name {
		case "escape-generate", "escape-detect", "tx-crc", "rx-crc":
			c = c.Add(m.Cost)
		}
	}
	return c
}
