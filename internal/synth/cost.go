// Package synth estimates FPGA implementation cost — 4-input LUTs,
// flip-flops, and logic depth — for the P5 architecture, standing in for
// the Synplicity/Xilinx synthesis flow of the paper's evaluation
// (Tables 1–3). Every datapath module is described as an inventory of
// mapped primitives (comparators, crossbar multiplexers, XOR trees taken
// from the real CRC matrices, registers, FSMs) using standard
// technology-mapping formulas, so the area *ratios* the paper highlights
// (the 32-bit system ≈ 11× the 8-bit system; the 32-bit Escape Generate
// ≈ 25× LUTs / 28× FFs of the 8-bit one) emerge from structure rather
// than curve fitting.
package synth

// Cost is an implementation cost: 4-input LUT count, flip-flop count,
// and combinational depth in LUT levels.
type Cost struct {
	LUTs  int
	FFs   int
	Depth int
}

// Add sums areas and takes the maximum depth (parallel composition).
func (c Cost) Add(o Cost) Cost {
	d := c.Depth
	if o.Depth > d {
		d = o.Depth
	}
	return Cost{LUTs: c.LUTs + o.LUTs, FFs: c.FFs + o.FFs, Depth: d}
}

// Chain sums areas and depths (series composition).
func (c Cost) Chain(o Cost) Cost {
	return Cost{LUTs: c.LUTs + o.LUTs, FFs: c.FFs + o.FFs, Depth: c.Depth + o.Depth}
}

// Times replicates a cost n times in parallel.
func (c Cost) Times(n int) Cost {
	return Cost{LUTs: c.LUTs * n, FFs: c.FFs * n, Depth: c.Depth}
}

// Register is n flip-flops.
func Register(bits int) Cost { return Cost{FFs: bits} }

// LUTTree is a single-output boolean function of k inputs mapped onto a
// tree of 4-input LUTs: each LUT absorbs 4 inputs and emits 1, so the
// tree needs ceil((k-1)/3) LUTs at depth ceil(log4(k)).
func LUTTree(k int) Cost {
	if k <= 1 {
		return Cost{}
	}
	luts := (k - 1 + 2) / 3
	depth := 0
	for n := k; n > 1; n = (n + 3) / 4 {
		depth++
	}
	return Cost{LUTs: luts, Depth: depth}
}

// EqConst compares a bits-wide value against a constant.
func EqConst(bits int) Cost { return LUTTree(bits) }

// XORTree is a parity/XOR reduction of k inputs (CRC next-state bit).
func XORTree(k int) Cost { return LUTTree(k) }

// Mux is an n-to-1 multiplexer of the given width: each output bit is a
// tree of 2:1 muxes (one LUT4 each), n-1 per bit, depth ceil(log2 n).
func Mux(n, width int) Cost {
	if n <= 1 {
		return Cost{}
	}
	depth := 0
	for v := n - 1; v > 0; v >>= 1 {
		depth++
	}
	return Cost{LUTs: (n - 1) * width, Depth: depth}
}

// Counter is an n-bit synchronous counter (carry chain absorbed into
// one LUT per bit on Virtex-class parts).
func Counter(bits int) Cost { return Cost{LUTs: bits, FFs: bits, Depth: 1} }

// FSM estimates a one-hot finite state machine with the given number of
// states and condition inputs.
func FSM(states, inputs int) Cost {
	next := LUTTree(inputs + 2).Times(states) // next-state logic per state bit
	next.FFs = states
	return next
}

// PriorityEncoder finds the first set bit among n inputs, emitting a
// log2(n)-bit index — the "first offending lane" logic of the sorter.
func PriorityEncoder(n int) Cost {
	if n <= 1 {
		return Cost{}
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	c := LUTTree(n).Times(bits)
	// Multi-output prefix logic is a level deeper than a single tree.
	c.Depth = bits
	return c
}
