package synth

import (
	"fmt"
	"strings"
)

// SystemRow is one device row of a Table 1/2-style synthesis summary.
type SystemRow struct {
	Device     Device
	LUTs       int
	LUTPct     float64
	FFs        int
	FFPct      float64
	FMaxPre    float64
	FMaxPost   float64
	MeetsRate  bool // post-layout fMax clears 78.125 MHz
	Depth      int
	LineGbpsAt float64 // line rate at the required clock
}

// SystemTable computes the paper's Table 1 (w = 1) or Table 2 (w = 4)
// for the given devices.
func SystemTable(w int, devices ...Device) []SystemRow {
	inv := Inventory(w)
	tot := Total(inv)
	rows := make([]SystemRow, 0, len(devices))
	for _, d := range devices {
		pre := d.Tech.FMaxMHz(tot.Depth, false)
		post := d.Tech.FMaxMHz(tot.Depth, true)
		rows = append(rows, SystemRow{
			Device:     d,
			LUTs:       tot.LUTs,
			LUTPct:     UtilPct(tot.LUTs, d.LUTs),
			FFs:        tot.FFs,
			FFPct:      UtilPct(tot.FFs, d.FFs),
			FMaxPre:    pre,
			FMaxPost:   post,
			MeetsRate:  post >= RequiredMHz,
			Depth:      tot.Depth,
			LineGbpsAt: LineRateGbps(RequiredMHz, w),
		})
	}
	return rows
}

// ModuleRow is one entry of the Table 3-style module comparison.
type ModuleRow struct {
	Name   string
	Width  int
	LUTs   int
	LUTPct float64
	FFs    int
	FFPct  float64
}

// EscapeGenerateTable computes the paper's Table 3: the Escape Generate
// module alone, both widths, utilisation against one device.
func EscapeGenerateTable(d Device) []ModuleRow {
	var rows []ModuleRow
	for _, w := range []int{4, 1} {
		c := EscapeGenerate(w)
		rows = append(rows, ModuleRow{
			Name:   fmt.Sprintf("escape-generate %d-bit", w*8),
			Width:  w,
			LUTs:   c.LUTs,
			LUTPct: UtilPct(c.LUTs, d.LUTs),
			FFs:    c.FFs,
			FFPct:  UtilPct(c.FFs, d.FFs),
		})
	}
	return rows
}

// Ratios reports the paper's headline area ratios.
type Ratios struct {
	SystemLUT, SystemFF       float64 // full system, 32-bit / 8-bit
	DatapathLUT, DatapathFF   float64 // excluding OAM
	EscapeGenLUT, EscapeGenFF float64 // escape generate module alone
}

// ComputeRatios derives the 32-bit/8-bit area ratios from the
// inventories.
func ComputeRatios() Ratios {
	i8, i32 := Inventory(1), Inventory(4)
	t8, t32 := Total(i8), Total(i32)
	d8, d32 := DatapathTotal(i8), DatapathTotal(i32)
	e8, e32 := EscapeGenerate(1), EscapeGenerate(4)
	div := func(a, b int) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	return Ratios{
		SystemLUT:    div(t32.LUTs, t8.LUTs),
		SystemFF:     div(t32.FFs, t8.FFs),
		DatapathLUT:  div(d32.LUTs, d8.LUTs),
		DatapathFF:   div(d32.FFs, d8.FFs),
		EscapeGenLUT: div(e32.LUTs, e8.LUTs),
		EscapeGenFF:  div(e32.FFs, e8.FFs),
	}
}

// FormatSystemTable renders rows in the paper's layout.
func FormatSystemTable(title string, rows []SystemRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %10s %10s %12s %13s %8s\n",
		"Device", "LUTs", "FFs", "fMax pre", "fMax post", "≥78.1?")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %5d (%2.0f%%) %4d (%2.0f%%) %8.1f MHz %9.1f MHz %8v\n",
			r.Device.Name, r.LUTs, r.LUTPct, r.FFs, r.FFPct,
			r.FMaxPre, r.FMaxPost, r.MeetsRate)
	}
	return b.String()
}

// FormatModuleTable renders a Table 3-style comparison.
func FormatModuleTable(d Device, rows []ModuleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Escape Generate module on %s\n", d.Name)
	fmt.Fprintf(&b, "%-28s %12s %12s\n", "Implementation", "LUTs", "FFs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %6d (%2.0f%%) %6d (%2.0f%%)\n",
			r.Name, r.LUTs, r.LUTPct, r.FFs, r.FFPct)
	}
	return b.String()
}
