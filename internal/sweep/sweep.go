// Package sweep is a small parallel parameter-sweep harness: it fans a
// grid of independent simulation points out over a worker pool and
// collects results in input order. The cycle-accurate P5 simulations
// are single-threaded by nature (one synchronous clock), but the
// evaluation grid — width × escape-density × buffer-depth — is
// embarrassingly parallel across points, which is where the speedup
// lives.
package sweep

import (
	"runtime"
	"sync"
)

// Point is one cell of a sweep grid.
type Point struct {
	// Width is the datapath width in octets.
	Width int
	// Density is the payload escape density.
	Density float64
	// BufCap is the resynchronisation buffer capacity (0 = default).
	BufCap int
}

// Result pairs a point with its measured outcome.
type Result struct {
	Point
	// BitsPerCycle is the measured goodput.
	BitsPerCycle float64
	// Stalls counts transmit backpressure stalls.
	Stalls uint64
	// HighWater is the peak resynchronisation-buffer occupancy.
	HighWater int
	// Err reports a failed run.
	Err error
}

// Grid builds the cross product of the parameter lists.
func Grid(widths []int, densities []float64, bufCaps []int) []Point {
	if len(bufCaps) == 0 {
		bufCaps = []int{0}
	}
	var pts []Point
	for _, w := range widths {
		for _, d := range densities {
			for _, b := range bufCaps {
				pts = append(pts, Point{Width: w, Density: d, BufCap: b})
			}
		}
	}
	return pts
}

// Run evaluates fn over every point using up to workers goroutines
// (0 = GOMAXPROCS) and returns results in point order.
func Run(points []Point, workers int, fn func(Point) Result) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	results := make([]Result, len(points))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = fn(points[i])
			}
		}()
	}
	for i := range points {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}
