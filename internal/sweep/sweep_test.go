package sweep

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestGridCrossProduct(t *testing.T) {
	pts := Grid([]int{1, 4}, []float64{0, 0.5}, []int{8, 16})
	if len(pts) != 8 {
		t.Fatalf("grid size = %d", len(pts))
	}
	// First point is the first of every list; last is the last.
	if pts[0] != (Point{Width: 1, Density: 0, BufCap: 8}) {
		t.Errorf("first = %+v", pts[0])
	}
	if pts[7] != (Point{Width: 4, Density: 0.5, BufCap: 16}) {
		t.Errorf("last = %+v", pts[7])
	}
	// Empty bufCaps defaults to a single zero entry.
	if got := Grid([]int{1}, []float64{0}, nil); len(got) != 1 || got[0].BufCap != 0 {
		t.Errorf("default bufcaps: %+v", got)
	}
}

func TestRunPreservesOrderAndRunsAll(t *testing.T) {
	pts := Grid([]int{1, 2, 4, 8}, []float64{0, 0.1, 0.2}, []int{8, 32})
	var calls int64
	results := Run(pts, 4, func(p Point) Result {
		atomic.AddInt64(&calls, 1)
		return Result{Point: p, BitsPerCycle: float64(p.Width)}
	})
	if int(calls) != len(pts) {
		t.Fatalf("calls = %d", calls)
	}
	for i, r := range results {
		if r.Point != pts[i] {
			t.Fatalf("result %d out of order: %+v vs %+v", i, r.Point, pts[i])
		}
		if r.BitsPerCycle != float64(pts[i].Width) {
			t.Fatalf("result %d value mismatch", i)
		}
	}
}

func TestRunWorkerClamping(t *testing.T) {
	pts := Grid([]int{1}, []float64{0}, nil)
	// More workers than points, and the zero default, must both work.
	for _, w := range []int{0, 1, 100} {
		res := Run(pts, w, func(p Point) Result { return Result{Point: p} })
		if len(res) != 1 {
			t.Fatalf("workers=%d: %d results", w, len(res))
		}
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	pts := Grid([]int{1, 2}, []float64{0}, nil)
	res := Run(pts, 2, func(p Point) Result {
		if p.Width == 2 {
			return Result{Point: p, Err: boom}
		}
		return Result{Point: p}
	})
	if res[0].Err != nil || res[1].Err != boom {
		t.Fatalf("errors not propagated: %+v", res)
	}
}
