package ipcp

import (
	"testing"

	"repro/internal/lcp"
)

type pipe struct {
	a, b   *lcp.Automaton
	aq, bq []*lcp.Packet
}

func newPipe(pa, pb lcp.Policy) *pipe {
	l := &pipe{}
	cp := func(p *lcp.Packet) *lcp.Packet {
		return &lcp.Packet{Code: p.Code, ID: p.ID, Data: append([]byte(nil), p.Data...)}
	}
	l.a = lcp.NewAutomaton(func(p *lcp.Packet) { l.bq = append(l.bq, cp(p)) }, pa, lcp.Hooks{})
	l.b = lcp.NewAutomaton(func(p *lcp.Packet) { l.aq = append(l.aq, cp(p)) }, pb, lcp.Hooks{})
	return l
}

func (l *pipe) run(t *testing.T) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if len(l.aq) == 0 && len(l.bq) == 0 {
			return
		}
		if len(l.bq) > 0 {
			p := l.bq[0]
			l.bq = l.bq[1:]
			l.b.Receive(p)
		}
		if len(l.aq) > 0 {
			p := l.aq[0]
			l.aq = l.aq[1:]
			l.a.Receive(p)
		}
	}
	t.Fatal("pipe did not quiesce")
}

func open(t *testing.T, l *pipe) {
	t.Helper()
	l.a.Open()
	l.b.Open()
	l.a.Up()
	l.b.Up()
	l.run(t)
}

func TestAddrString(t *testing.T) {
	if got := (Addr{192, 168, 1, 7}).String(); got != "192.168.1.7" {
		t.Errorf("String = %q", got)
	}
	if got := (Addr{}).String(); got != "0.0.0.0" {
		t.Errorf("zero String = %q", got)
	}
	if got := (Addr{10, 0, 200, 255}).String(); got != "10.0.200.255" {
		t.Errorf("String = %q", got)
	}
}

func TestU32RoundTrip(t *testing.T) {
	a := Addr{1, 2, 3, 4}
	if FromU32(a.U32()) != a {
		t.Error("U32 round trip")
	}
}

func TestStaticAddressesNegotiate(t *testing.T) {
	pa := NewPolicy(Addr{10, 0, 0, 1})
	pb := NewPolicy(Addr{10, 0, 0, 2})
	l := newPipe(pa, pb)
	open(t, l)
	if l.a.State() != lcp.Opened || l.b.State() != lcp.Opened {
		t.Fatalf("states %v/%v", l.a.State(), l.b.State())
	}
	if pa.LocalAddr != (Addr{10, 0, 0, 1}) || pa.PeerAddr != (Addr{10, 0, 0, 2}) {
		t.Errorf("a: local=%v peer=%v", pa.LocalAddr, pa.PeerAddr)
	}
	if pb.LocalAddr != (Addr{10, 0, 0, 2}) || pb.PeerAddr != (Addr{10, 0, 0, 1}) {
		t.Errorf("b: local=%v peer=%v", pb.LocalAddr, pb.PeerAddr)
	}
}

func TestDynamicAssignmentViaNak(t *testing.T) {
	pa := NewPolicy(Addr{}) // ask for assignment
	pb := NewPolicy(Addr{10, 0, 0, 2})
	pb.AssignPeer = Addr{10, 0, 0, 99}
	l := newPipe(pa, pb)
	open(t, l)
	if l.a.State() != lcp.Opened {
		t.Fatalf("a state %v", l.a.State())
	}
	if pa.LocalAddr != (Addr{10, 0, 0, 99}) {
		t.Errorf("assigned addr = %v, want 10.0.0.99", pa.LocalAddr)
	}
	if pb.PeerAddr != (Addr{10, 0, 0, 99}) {
		t.Errorf("b sees peer = %v", pb.PeerAddr)
	}
}

func TestZeroAddrWithNoAssignmentRejected(t *testing.T) {
	pa := NewPolicy(Addr{}) // ask for assignment
	pb := NewPolicy(Addr{10, 0, 0, 2})
	// pb has no AssignPeer: it rejects the option; link still opens but
	// a gets no address.
	l := newPipe(pa, pb)
	open(t, l)
	if l.a.State() != lcp.Opened || l.b.State() != lcp.Opened {
		t.Fatalf("states %v/%v", l.a.State(), l.b.State())
	}
	if !pa.LocalAddr.IsZero() {
		t.Errorf("a got %v, want none", pa.LocalAddr)
	}
}

func TestUnknownOptionRejected(t *testing.T) {
	p := NewPolicy(Addr{10, 0, 0, 1})
	naks, rejs := p.CheckRequest([]lcp.Option{{Type: OptIPCompression, Data: []byte{0, 0x2D, 0, 0}}})
	if len(naks) != 0 || len(rejs) != 1 {
		t.Errorf("naks=%d rejs=%d", len(naks), len(rejs))
	}
	naks, rejs = p.CheckRequest([]lcp.Option{{Type: OptIPAddress, Data: []byte{1, 2}}})
	if len(naks) != 0 || len(rejs) != 1 {
		t.Errorf("malformed addr: naks=%d rejs=%d", len(naks), len(rejs))
	}
}

func TestVJNegotiation(t *testing.T) {
	pa := NewPolicy(Addr{10, 0, 0, 1})
	pa.WantVJ = true
	pa.AllowVJ = true
	pb := NewPolicy(Addr{10, 0, 0, 2})
	pb.AllowVJ = true
	l := newPipe(pa, pb)
	open(t, l)
	if !pa.VJFromPeer {
		t.Error("a's VJ request not acknowledged")
	}
	if !pb.VJToPeer {
		t.Error("b did not record permission to compress toward a")
	}
	// b never asked: no VJ in the other direction.
	if pa.VJToPeer || pb.VJFromPeer {
		t.Error("phantom VJ grant")
	}
}

func TestVJRejectedWhenNotAllowed(t *testing.T) {
	pa := NewPolicy(Addr{10, 0, 0, 1})
	pa.WantVJ = true
	pb := NewPolicy(Addr{10, 0, 0, 2}) // AllowVJ false
	l := newPipe(pa, pb)
	open(t, l)
	if pa.VJFromPeer || pb.VJToPeer {
		t.Error("VJ granted despite rejection")
	}
	if l.a.State() != lcp.Opened {
		t.Error("link must still open without VJ")
	}
}

func TestVJOptionEncoding(t *testing.T) {
	p := NewPolicy(Addr{1, 2, 3, 4})
	p.WantVJ = true
	opts := p.LocalOptions()
	if len(opts) != 2 || opts[0].Type != OptIPCompression {
		t.Fatalf("opts = %+v", opts)
	}
	d := opts[0].Data
	if len(d) != 4 || d[0] != 0x00 || d[1] != 0x2D || d[2] != 15 {
		t.Errorf("vj option data = % x", d)
	}
	p.VJSlots = 7
	if p.LocalOptions()[0].Data[2] != 7 {
		t.Error("custom slot count not encoded")
	}
}

func TestVJMalformedOptionRejected(t *testing.T) {
	p := NewPolicy(Addr{1, 2, 3, 4})
	p.AllowVJ = true
	_, rejs := p.CheckRequest([]lcp.Option{{Type: OptIPCompression, Data: []byte{0x00, 0x2D}}})
	if len(rejs) != 1 {
		t.Error("short VJ option accepted")
	}
	_, rejs = p.CheckRequest([]lcp.Option{{Type: OptIPCompression, Data: []byte{0xAA, 0xBB, 15, 0}}})
	if len(rejs) != 1 {
		t.Error("non-VJ compression protocol accepted")
	}
}
