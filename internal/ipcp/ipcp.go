// Package ipcp implements the IP Control Protocol (RFC 1332), the NCP
// that configures IPv4 over an opened PPP link. It reuses the generic
// RFC 1661 automaton from package lcp with an IPCP option policy —
// demonstrating the "family of Network Control Protocols" structure
// the paper's Protocol OAM block mediates.
package ipcp

import (
	"encoding/binary"

	"repro/internal/lcp"
)

// IPCP configuration option types (RFC 1332).
const (
	OptIPAddresses   = 1 // deprecated pairwise form; always rejected
	OptIPCompression = 2 // Van Jacobson; rejected (not implemented)
	OptIPAddress     = 3
)

// Addr is an IPv4 address in host-independent 4-byte form.
type Addr [4]byte

// IsZero reports whether the address is 0.0.0.0.
func (a Addr) IsZero() bool { return a == Addr{} }

func (a Addr) String() string {
	var b []byte
	for i, o := range a {
		if i > 0 {
			b = append(b, '.')
		}
		b = appendUint(b, o)
	}
	return string(b)
}

func appendUint(b []byte, v byte) []byte {
	if v >= 100 {
		b = append(b, '0'+v/100)
	}
	if v >= 10 {
		b = append(b, '0'+v/10%10)
	}
	return append(b, '0'+v%10)
}

// Policy is the IPCP option policy. WantAddr is the address we request
// for ourselves (zero asks the peer to assign one); AssignPeer, when
// non-zero, is the address we insist the peer uses if it proposes none
// (or proposes one we must override).
type Policy struct {
	WantAddr   Addr
	AssignPeer Addr

	// WantVJ requests Van Jacobson TCP/IP header compression for our
	// receive direction (RFC 1332 §4); AllowVJ grants it to the peer.
	WantVJ  bool
	AllowVJ bool
	// VJSlots is the max-slot-id we advertise (default 15).
	VJSlots byte

	// Negotiated results.
	LocalAddr Addr // our address, acknowledged by the peer
	PeerAddr  Addr // the peer's address, acknowledged by us
	// VJToPeer means we may send VJ-compressed packets to the peer;
	// VJFromPeer means the peer may send them to us.
	VJToPeer   bool
	VJFromPeer bool

	rejected map[byte]bool
}

// vjProto is the compression-protocol identifier for VJ (RFC 1332 §4).
const vjProto = 0x002D

func (p *Policy) vjSlots() byte {
	if p.VJSlots == 0 {
		return 15
	}
	return p.VJSlots
}

func (p *Policy) vjOption() lcp.Option {
	// proto(2) max-slot-id(1) comp-slot-id(1).
	return lcp.Option{Type: OptIPCompression,
		Data: []byte{byte(vjProto >> 8), byte(vjProto), p.vjSlots(), 0}}
}

// NewPolicy returns an IPCP policy requesting the given local address.
func NewPolicy(want Addr) *Policy {
	return &Policy{WantAddr: want}
}

// LocalOptions implements lcp.Policy.
func (p *Policy) LocalOptions() []lcp.Option {
	var opts []lcp.Option
	if p.WantVJ && !p.rejected[OptIPCompression] {
		opts = append(opts, p.vjOption())
	}
	if !p.rejected[OptIPAddress] {
		opts = append(opts, lcp.Option{Type: OptIPAddress, Data: append([]byte(nil), p.WantAddr[:]...)})
	}
	return opts
}

// CheckRequest implements lcp.Policy.
func (p *Policy) CheckRequest(opts []lcp.Option) (naks, rejs []lcp.Option) {
	for _, o := range opts {
		switch o.Type {
		case OptIPCompression:
			if !p.AllowVJ || len(o.Data) != 4 ||
				o.Data[0] != byte(vjProto>>8) || o.Data[1] != byte(vjProto) {
				rejs = append(rejs, o)
			}
		case OptIPAddress:
			if len(o.Data) != 4 {
				rejs = append(rejs, o)
				continue
			}
			var a Addr
			copy(a[:], o.Data)
			if a.IsZero() {
				if p.AssignPeer.IsZero() {
					// Peer wants an assignment but we have none to
					// give: reject the option.
					rejs = append(rejs, o)
				} else {
					naks = append(naks, lcp.Option{Type: OptIPAddress, Data: append([]byte(nil), p.AssignPeer[:]...)})
				}
			}
		default:
			rejs = append(rejs, o)
		}
	}
	return naks, rejs
}

// ApplyPeer implements lcp.Policy.
func (p *Policy) ApplyPeer(opts []lcp.Option) {
	for _, o := range opts {
		switch o.Type {
		case OptIPAddress:
			if len(o.Data) == 4 {
				copy(p.PeerAddr[:], o.Data)
			}
		case OptIPCompression:
			// The peer asked to receive compressed packets: we may
			// compress toward it.
			p.VJToPeer = true
		}
	}
}

// PeerAcked implements lcp.Policy.
func (p *Policy) PeerAcked(opts []lcp.Option) {
	for _, o := range opts {
		switch o.Type {
		case OptIPAddress:
			if len(o.Data) == 4 {
				copy(p.LocalAddr[:], o.Data)
			}
		case OptIPCompression:
			p.VJFromPeer = true
		}
	}
}

// HandleNak implements lcp.Policy: adopt the address the peer assigns.
func (p *Policy) HandleNak(opts []lcp.Option) {
	for _, o := range opts {
		if o.Type == OptIPAddress && len(o.Data) == 4 {
			copy(p.WantAddr[:], o.Data)
		}
	}
}

// HandleReject implements lcp.Policy.
func (p *Policy) HandleReject(opts []lcp.Option) {
	if p.rejected == nil {
		p.rejected = make(map[byte]bool)
	}
	for _, o := range opts {
		p.rejected[o.Type] = true
	}
}

// U32 packs an address for test convenience.
func (a Addr) U32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// FromU32 unpacks an address.
func FromU32(v uint32) Addr {
	var a Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}
