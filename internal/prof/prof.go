// Package prof is the hot-path performance observatory: sampled
// per-shard, per-stage cost accounting for the line-card engine's
// worker loop, a pprof capture harness for soaks and benches
// (session.go), and a runtime/metrics exporter (runtime.go).
//
// The paper's P5 wins by keeping every pipeline stage busy; the OAM
// block makes that claim checkable in hardware. This package is the
// software mirror at the engine scale: it answers "which stage of
// which shard burns the cycles" without perturbing the thing it
// measures. The accounting follows the same discipline as the rest of
// the repo's probes — plain fields written by exactly one goroutine
// (the shard worker), zero allocations after arming, telemetry mirrors
// refreshed only at the Run barrier where the engine is quiescent —
// plus one of its own: when disarmed, the hot path takes zero clock
// samples (a nil/bool check is all that remains, and the verify gate
// prices the armed case at ≤2% of the disarmed engine bench).
//
// Sampling: 1 in 2^SampleShift steps is stamped with monotonic
// timestamps around every stage; a sampled step costs one clock read
// per stage boundary, an unsampled step costs one counter increment.
// Per-shard results accumulate in fixed arrays plus a power-of-two
// ring of recent whole-step costs, all single-writer — the "lock-free"
// here is the strongest kind: no shared writes at all, published by
// the Run barrier's happens-before edge.
package prof

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// Stage identifies one segment of the engine worker loop. The taxonomy
// maps onto the paper's pipeline: control (LCP/IPCP timers), encode
// (the fused CRC+stuff transmit kernel), line (TX buffer swap and wire
// move), tokenize (RX delineation, destuff, FCS, VJ and delivery into
// the receive queue), drain (receive-queue copy-out), deliver (payload
// accounting back in the caller), and barrier (the Run join, accounted
// by the Collector rather than stamped in-loop).
type Stage uint8

// The stages, in worker-loop order.
const (
	StageControl Stage = iota
	StageEncode
	StageLine
	StageTokenize
	StageDrain
	StageDeliver
	StageBarrier
	numStages
)

// NumStages is the number of distinct stages (including barrier).
const NumStages = int(numStages)

var stageNames = [numStages]string{
	"control", "encode", "line", "tokenize", "drain", "deliver", "barrier",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage" + strconv.Itoa(int(s))
}

// Config parameterises a Collector.
type Config struct {
	// SampleShift selects 1-in-2^SampleShift steps for stage stamping
	// (default 5 → every 32nd step). Negative samples every step.
	SampleShift int
	// RingSize is the per-shard ring of recent sampled whole-step costs
	// in ns (default 256, rounded up to a power of two).
	RingSize int
	// Clock supplies monotonic wall-clock nanoseconds (default
	// time.Now().UnixNano). Injectable for tests.
	Clock func() int64
}

func (c Config) withDefaults() Config {
	if c.SampleShift == 0 {
		c.SampleShift = 5
	}
	if c.SampleShift < 0 {
		c.SampleShift = 0
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	c.RingSize = pow2(c.RingSize)
	if c.Clock == nil {
		c.Clock = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

func pow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ShardProfile is one shard worker's private accounting. All methods
// except the Collector's are called only by the owning worker between
// StepStart/StepEnd pairs; the Run barrier publishes the fields to the
// Collector. The zero value is unusable — obtain one from a Collector.
type ShardProfile struct {
	clock func() int64
	mask  uint64 // sample when steps&mask == 0
	armed bool

	steps    uint64 // total steps seen
	sampled  uint64 // steps that were stamped
	sampling bool   // current step is being stamped

	stepStart int64 // clock at StepStart of the sampled step
	last      int64 // clock at the previous stamp

	ns    [numStages]uint64 // accumulated ns per stage (sampled steps)
	count [numStages]uint64 // stamps per stage

	ring  []int64 // recent sampled whole-step ns
	ringN uint64  // ring write cursor (monotonic)

	// Batch bookkeeping for barrier accounting: the worker records the
	// wall clock entering and leaving each Run batch; the Collector
	// (driver goroutine, after wg.Wait) turns the spread into barrier
	// wait and imbalance. Reset by Join.
	batchStart, batchEnd int64

	barrierNs    uint64 // accumulated join wait (written by Collector)
	barrierJoins uint64
}

// StepStart opens one engine step. Receivers may be nil (disarmed
// shard): every method is a no-op then.
func (p *ShardProfile) StepStart() {
	if p == nil || !p.armed {
		return
	}
	p.steps++
	if (p.steps-1)&p.mask != 0 {
		p.sampling = false
		return
	}
	p.sampling = true
	p.stepStart = p.clock()
	p.last = p.stepStart
}

// Stamp charges the time since the previous stamp (or StepStart) to
// stage s. Multiple stamps per stage per step accumulate.
func (p *ShardProfile) Stamp(s Stage) {
	if p == nil || !p.sampling {
		return
	}
	now := p.clock()
	p.ns[s] += uint64(now - p.last)
	p.count[s]++
	p.last = now
}

// StepEnd closes the step, recording the whole-step cost into the
// ring. It reuses the final stamp's clock value — closing a sampled
// step costs no extra clock read.
func (p *ShardProfile) StepEnd() {
	if p == nil || !p.sampling {
		return
	}
	p.sampling = false
	p.sampled++
	p.ring[p.ringN&uint64(len(p.ring)-1)] = p.last - p.stepStart
	p.ringN++
}

// BatchStart marks the worker entering a Run batch.
func (p *ShardProfile) BatchStart() {
	if p == nil || !p.armed {
		return
	}
	p.batchStart = p.clock()
}

// BatchEnd marks the worker leaving a Run batch (just before wg.Done).
func (p *ShardProfile) BatchEnd() {
	if p == nil || !p.armed {
		return
	}
	p.batchEnd = p.clock()
}

// StageNs returns the accumulated sampled ns charged to stage s.
func (p *ShardProfile) StageNs(s Stage) uint64 {
	if s == StageBarrier {
		return p.barrierNs
	}
	return p.ns[s]
}

// StageCount returns how many stamps stage s received.
func (p *ShardProfile) StageCount(s Stage) uint64 {
	if s == StageBarrier {
		return p.barrierJoins
	}
	return p.count[s]
}

// Steps returns total steps seen; Sampled the stamped subset.
func (p *ShardProfile) Steps() uint64   { return p.steps }
func (p *ShardProfile) Sampled() uint64 { return p.sampled }

// RecentStepNs returns the retained ring of sampled whole-step costs,
// oldest first. Call only while the shard is quiescent.
func (p *ShardProfile) RecentStepNs() []int64 {
	n := p.ringN
	size := uint64(len(p.ring))
	if n <= size {
		return append([]int64(nil), p.ring[:n]...)
	}
	out := make([]int64, 0, size)
	start := n & (size - 1)
	out = append(out, p.ring[start:]...)
	out = append(out, p.ring[:start]...)
	return out
}

// Collector owns the per-shard profiles of one engine and their
// telemetry mirrors. Construct with New, hand Shard(i) to each worker,
// call Join from the driver after every Run barrier.
type Collector struct {
	cfg    Config
	clock  func() int64
	shards []*ShardProfile

	// Telemetry mirrors, nil when built without a registry.
	stageNs      [][]*telemetry.Counter // [shard][stage]
	stageSamples [][]*telemetry.Counter
	barrierNs    []*telemetry.Counter
	barrierJoins []*telemetry.Counter
	sampledSteps *telemetry.Counter
	imbalance    *telemetry.Gauge
	stepHist     *telemetry.Histogram
	histSynced   []uint64 // per-shard ring cursor already observed

	lastImbalance int64 // per-mille, from the newest Join
}

// stepBounds are the prof_step_ns histogram buckets: 1 µs to 50 ms.
var stepBounds = []int64{
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000,
	500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000, 50_000_000,
}

// New builds a Collector for nShards shard workers. reg may be nil for
// an unexposed collector (tests, tools); name labels the series
// (engine="name"). The collector starts armed.
func New(reg *telemetry.Registry, name string, nShards int, cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{cfg: cfg, clock: cfg.Clock}
	c.shards = make([]*ShardProfile, nShards)
	mask := uint64(1)<<uint(cfg.SampleShift) - 1
	for i := range c.shards {
		c.shards[i] = &ShardProfile{
			clock: cfg.Clock,
			mask:  mask,
			armed: true,
			ring:  make([]int64, cfg.RingSize),
		}
	}
	c.histSynced = make([]uint64, nShards)
	if reg != nil {
		lbl := telemetry.L("engine", name)
		c.stageNs = make([][]*telemetry.Counter, nShards)
		c.stageSamples = make([][]*telemetry.Counter, nShards)
		c.barrierNs = make([]*telemetry.Counter, nShards)
		c.barrierJoins = make([]*telemetry.Counter, nShards)
		for i := 0; i < nShards; i++ {
			shard := telemetry.L("shard", strconv.Itoa(i))
			c.stageNs[i] = make([]*telemetry.Counter, numStages)
			c.stageSamples[i] = make([]*telemetry.Counter, numStages)
			for s := Stage(0); s < StageBarrier; s++ {
				stage := telemetry.L("stage", s.String())
				c.stageNs[i][s] = reg.Counter("prof_stage_ns_total",
					"Sampled wall-clock ns charged to one worker-loop stage.",
					lbl, shard, stage)
				c.stageSamples[i][s] = reg.Counter("prof_stage_samples_total",
					"Stage stamps taken (sampled steps only).", lbl, shard, stage)
			}
			c.barrierNs[i] = reg.Counter("prof_barrier_wait_ns_total",
				"Ns the shard spent finished while the Run barrier waited for stragglers.",
				lbl, shard)
			c.barrierJoins[i] = reg.Counter("prof_barrier_joins_total",
				"Run barriers this shard participated in.", lbl, shard)
		}
		c.sampledSteps = reg.Counter("prof_sampled_steps_total",
			"Engine steps that carried stage stamps, across all shards.", lbl)
		c.imbalance = reg.Gauge("prof_shard_imbalance",
			"Per-mille spread of shard busy time in the newest Run batch (0 = balanced).", lbl)
		c.stepHist = reg.Histogram("prof_step_ns",
			"Sampled whole-step cost distribution across shards.", stepBounds, lbl)
	}
	return c
}

// Shard returns the i'th worker's profile.
func (c *Collector) Shard(i int) *ShardProfile { return c.shards[i] }

// Shards returns the shard count.
func (c *Collector) Shards() int { return len(c.shards) }

// SetArmed arms or disarms every shard profile. Call only while the
// engine is quiescent (between Runs). Disarmed, the hot path takes
// zero clock samples — StepStart/Stamp/Batch* reduce to a bool check —
// and Join is a no-op too.
func (c *Collector) SetArmed(armed bool) {
	for _, p := range c.shards {
		p.armed = armed
	}
}

// Armed reports whether the collector is currently armed.
func (c *Collector) Armed() bool {
	return len(c.shards) > 0 && c.shards[0].armed
}

// Join settles one Run batch: it charges each shard's wait between its
// own finish and the global join to the barrier stage, recomputes the
// imbalance gauge from the batch busy times, and refreshes the
// telemetry mirrors. Call from the driver goroutine after the Run
// barrier (wg.Wait) — the barrier's happens-before edge makes every
// shard field safe to read here.
func (c *Collector) Join() {
	if !c.Armed() {
		return
	}
	join := c.clock()
	var minBusy, maxBusy int64 = -1, 0
	for _, p := range c.shards {
		if p.batchEnd == 0 {
			continue
		}
		p.barrierNs += uint64(join - p.batchEnd)
		p.barrierJoins++
		busy := p.batchEnd - p.batchStart
		if minBusy < 0 || busy < minBusy {
			minBusy = busy
		}
		if busy > maxBusy {
			maxBusy = busy
		}
		p.batchEnd = 0
	}
	if maxBusy > 0 && minBusy >= 0 {
		c.lastImbalance = 1000 * (maxBusy - minBusy) / maxBusy
	}
	c.Sync()
}

// Sync refreshes the telemetry mirrors from the shard profiles. Join
// calls it; standalone use needs the same quiescence.
func (c *Collector) Sync() {
	if c.stepHist != nil {
		for i, p := range c.shards {
			// Observe ring entries written since the last sync; if the
			// ring lapped us, take the retained window.
			n := p.ringN
			from := c.histSynced[i]
			size := uint64(len(p.ring))
			if n-from > size {
				from = n - size
			}
			for ; from < n; from++ {
				c.stepHist.Observe(p.ring[from&(size-1)])
			}
			c.histSynced[i] = n
		}
	}
	if c.stageNs == nil {
		return
	}
	var sampled uint64
	for i, p := range c.shards {
		for s := Stage(0); s < StageBarrier; s++ {
			c.stageNs[i][s].Set(p.ns[s])
			c.stageSamples[i][s].Set(p.count[s])
		}
		c.barrierNs[i].Set(p.barrierNs)
		c.barrierJoins[i].Set(p.barrierJoins)
		sampled += p.sampled
	}
	c.sampledSteps.Set(sampled)
	c.imbalance.Set(c.lastImbalance)
}

// Summary is an aggregate view across shards, for reports and tests.
type Summary struct {
	Shards  int
	Steps   uint64 // per-shard steps, summed
	Sampled uint64
	// StageNs/StageCount index by Stage; StageBarrier holds the join
	// wait and join count.
	StageNs    [NumStages]uint64
	StageCount [NumStages]uint64
	// ImbalancePerMille is the busy-time spread of the newest batch.
	ImbalancePerMille int64
}

// Summary aggregates the per-shard accounting. Call between Runs.
func (c *Collector) Summary() Summary {
	sum := Summary{Shards: len(c.shards), ImbalancePerMille: c.lastImbalance}
	for _, p := range c.shards {
		sum.Steps += p.steps
		sum.Sampled += p.sampled
		for s := Stage(0); s < StageBarrier; s++ {
			sum.StageNs[s] += p.ns[s]
			sum.StageCount[s] += p.count[s]
		}
		sum.StageNs[StageBarrier] += p.barrierNs
		sum.StageCount[StageBarrier] += p.barrierJoins
	}
	return sum
}

// PerStep returns the mean sampled cost of stage s in ns per sampled
// step (0 when nothing was sampled).
func (s Summary) PerStep(st Stage) float64 {
	if s.Sampled == 0 {
		return 0
	}
	return float64(s.StageNs[st]) / float64(s.Sampled)
}

// String renders the summary as one report line per concern.
func (s Summary) String() string {
	out := fmt.Sprintf("shards=%d steps=%d sampled=%d imbalance=%d‰\n",
		s.Shards, s.Steps, s.Sampled, s.ImbalancePerMille)
	for st := Stage(0); st < StageBarrier; st++ {
		out += fmt.Sprintf("  %-8s %12d ns total  %8.0f ns/sampled-step\n",
			st, s.StageNs[st], s.PerStep(st))
	}
	out += fmt.Sprintf("  %-8s %12d ns total  %8d joins\n",
		StageBarrier, s.StageNs[StageBarrier], s.StageCount[StageBarrier])
	return out
}
