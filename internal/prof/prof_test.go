package prof

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// fakeClock advances a fixed step per read, making stamp arithmetic
// exact.
type fakeClock struct{ now, step int64 }

func (c *fakeClock) read() int64 { c.now += c.step; return c.now }

func TestShardProfileStampArithmetic(t *testing.T) {
	c := &fakeClock{step: 10}
	col := New(nil, "t", 1, Config{SampleShift: -1, Clock: c.read})
	p := col.Shard(0)

	p.StepStart()             // clock = 10
	p.Stamp(StageControl)     // 20 → +10
	p.Stamp(StageEncode)      // 30 → +10
	p.Stamp(StageEncode)      // 40 → +10 (second stamp accumulates)
	p.StepEnd()               // no clock read: step cost = last-start = 30
	if got := p.StageNs(StageControl); got != 10 {
		t.Errorf("control ns = %d, want 10", got)
	}
	if got := p.StageNs(StageEncode); got != 20 {
		t.Errorf("encode ns = %d, want 20", got)
	}
	if got := p.StageCount(StageEncode); got != 2 {
		t.Errorf("encode count = %d, want 2", got)
	}
	if got := p.RecentStepNs(); len(got) != 1 || got[0] != 30 {
		t.Errorf("step ring = %v, want [30]", got)
	}
	if p.Sampled() != 1 || p.Steps() != 1 {
		t.Errorf("sampled=%d steps=%d, want 1/1", p.Sampled(), p.Steps())
	}
}

func TestShardProfileSampling(t *testing.T) {
	c := &fakeClock{step: 1}
	col := New(nil, "t", 1, Config{SampleShift: 2, Clock: c.read}) // 1 in 4
	p := col.Shard(0)
	for i := 0; i < 16; i++ {
		p.StepStart()
		p.Stamp(StageEncode)
		p.StepEnd()
	}
	if p.Steps() != 16 {
		t.Fatalf("steps = %d, want 16", p.Steps())
	}
	if p.Sampled() != 4 {
		t.Errorf("sampled = %d, want 4 (1 in 2^2)", p.Sampled())
	}
}

func TestCollectorJoinBarrierAndImbalance(t *testing.T) {
	c := &fakeClock{step: 100}
	col := New(nil, "t", 2, Config{SampleShift: -1, Clock: c.read})
	a, b := col.Shard(0), col.Shard(1)

	a.BatchStart() // clock 100
	a.BatchEnd()   // 200: busy 100
	b.BatchStart() // 300
	b.BatchEnd()   // 400: busy 100
	col.Join()     // join = 500

	// Shard a finished at 200, waited 300; shard b finished at 400,
	// waited 100.
	if got := a.StageNs(StageBarrier); got != 300 {
		t.Errorf("shard 0 barrier ns = %d, want 300", got)
	}
	if got := b.StageNs(StageBarrier); got != 100 {
		t.Errorf("shard 1 barrier ns = %d, want 100", got)
	}
	if a.StageCount(StageBarrier) != 1 || b.StageCount(StageBarrier) != 1 {
		t.Error("barrier join counts not 1/1")
	}
	// Equal busy times → zero imbalance.
	if sum := col.Summary(); sum.ImbalancePerMille != 0 {
		t.Errorf("imbalance = %d‰, want 0", sum.ImbalancePerMille)
	}
}

func TestCollectorDisarmedJoinIsNoop(t *testing.T) {
	c := &fakeClock{step: 1}
	col := New(nil, "t", 1, Config{Clock: c.read})
	col.SetArmed(false)
	p := col.Shard(0)
	p.StepStart()
	p.Stamp(StageEncode)
	p.StepEnd()
	p.BatchStart()
	p.BatchEnd()
	col.Join()
	if c.now != 0 {
		t.Fatalf("disarmed profile read the clock %d times, want 0", c.now)
	}
}

func TestCollectorTelemetryMirrors(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := &fakeClock{step: 10}
	col := New(reg, "mirror", 1, Config{SampleShift: -1, Clock: c.read})
	p := col.Shard(0)
	p.BatchStart()
	p.StepStart()
	p.Stamp(StageEncode)
	p.StepEnd()
	p.BatchEnd()
	col.Join()

	snap := reg.Snapshot("t")
	if v, ok := snap.Get(`prof_stage_ns_total{engine="mirror",shard="0",stage="encode"}`); !ok || v != 10 {
		t.Errorf("encode mirror = %v (ok=%v), want 10", v, ok)
	}
	if v, ok := snap.Get(`prof_sampled_steps_total{engine="mirror"}`); !ok || v != 1 {
		t.Errorf("sampled mirror = %v (ok=%v), want 1", v, ok)
	}
	if _, ok := snap.Get(`prof_barrier_wait_ns_total{engine="mirror",shard="0"}`); !ok {
		t.Error("barrier mirror missing")
	}
}

func TestStepRingLapsAndHistogramSync(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := &fakeClock{step: 1000}
	col := New(reg, "ring", 1, Config{SampleShift: -1, RingSize: 4, Clock: c.read})
	p := col.Shard(0)
	for i := 0; i < 10; i++ {
		p.StepStart()
		p.Stamp(StageEncode)
		p.StepEnd()
	}
	if got := len(p.RecentStepNs()); got != 4 {
		t.Fatalf("ring retains %d entries, want 4", got)
	}
	col.Sync()
	snap := reg.Snapshot("t")
	// Only the retained window is observable after a lap.
	if v, _ := snap.Get(`prof_step_ns_count{engine="ring"}`); v != 4 {
		t.Errorf("histogram count = %v, want 4 (retained window)", v)
	}
	// A second sync with no new steps adds nothing.
	col.Sync()
	snap = reg.Snapshot("t")
	if v, _ := snap.Get(`prof_step_ns_count{engine="ring"}`); v != 4 {
		t.Errorf("histogram count after idle sync = %v, want 4", v)
	}
}

func TestSessionWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	s, err := StartSession(dir, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A little labelled work so the CPU profile has something to hold.
	Do("phase", "test", func() {
		x := 0
		for i := 0; i < 1_000_000; i++ {
			x += i
		}
		_ = x
	})
	files, err := s.Stop()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"cpu.pprof": true, "heap.pprof": true,
		"allocs.pprof": true, "mutex.pprof": true, "block.pprof": true,
		"goroutine.pprof": true}
	for _, f := range files {
		delete(want, f)
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", f)
		}
	}
	for f := range want {
		t.Errorf("session did not report %s", f)
	}
}

func TestWriteSnapshotTagged(t *testing.T) {
	dir := t.TempDir()
	files, err := WriteSnapshot(dir, "flight-oam")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 5 {
		t.Fatalf("wrote %d profiles, want 5: %v", len(files), files)
	}
	for _, f := range files {
		if filepath.Ext(f) != ".pprof" {
			t.Errorf("unexpected file %s", f)
		}
		if got := f[:11]; got != "flight-oam-" {
			t.Errorf("file %s not tagged flight-oam-", f)
		}
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Error(err)
		}
	}
}
