package prof

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Session is one profiling capture window: CPU profiling runs for its
// lifetime, mutex/block sampling is enabled on Start and restored on
// Stop, and Stop writes the point-in-time profiles (heap, allocs,
// mutex, block, goroutine) next to the CPU profile. One session at a
// time per process — runtime/pprof enforces the CPU side.
type Session struct {
	dir string
	cpu *os.File

	prevMutexFraction int
}

// SessionConfig tunes a Session.
type SessionConfig struct {
	// MutexFraction samples 1/n mutex contention events (default 5).
	MutexFraction int
	// BlockRateNs samples blocking events lasting at least this many ns
	// (default 100µs — coarse enough not to distort the run).
	BlockRateNs int
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.MutexFraction <= 0 {
		c.MutexFraction = 5
	}
	if c.BlockRateNs <= 0 {
		c.BlockRateNs = 100_000
	}
	return c
}

// StartSession creates dir (if needed), starts CPU profiling into
// dir/cpu.pprof and enables mutex/block sampling.
func StartSession(dir string, cfg SessionConfig) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: start cpu profile: %w", err)
	}
	s := &Session{dir: dir, cpu: f}
	s.prevMutexFraction = runtime.SetMutexProfileFraction(cfg.MutexFraction)
	runtime.SetBlockProfileRate(cfg.BlockRateNs)
	return s, nil
}

// Stop ends the session: stops the CPU profile, writes the snapshot
// profiles, restores the sampling rates, and returns the files written
// (relative to the session directory).
func (s *Session) Stop() ([]string, error) {
	pprof.StopCPUProfile()
	err := s.cpuClose()
	runtime.SetBlockProfileRate(0)
	runtime.SetMutexProfileFraction(s.prevMutexFraction)
	files := []string{"cpu.pprof"}
	snap, serr := writeSnapshot(s.dir, "")
	if err == nil {
		err = serr
	}
	return append(files, snap...), err
}

func (s *Session) cpuClose() error {
	if s.cpu == nil {
		return nil
	}
	err := s.cpu.Close()
	s.cpu = nil
	return err
}

// Dir returns the session's capture directory.
func (s *Session) Dir() string { return s.dir }

// WriteSnapshot dumps the point-in-time profiles (heap, allocs, mutex,
// block, goroutine) into dir, prefixing each file with tag ("tag-" is
// omitted when tag is empty). It is the on-demand capture behind the
// flight recorder's profile trigger and the OAM prof-dump register —
// no CPU profile, so it is safe while a Session runs. Returns the
// files written (relative to dir).
func WriteSnapshot(dir, tag string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return writeSnapshot(dir, tag)
}

func writeSnapshot(dir, tag string) ([]string, error) {
	prefix := ""
	if tag != "" {
		prefix = tag + "-"
	}
	// A GC pass first so the heap profile reflects live objects rather
	// than garbage awaiting collection.
	runtime.GC()
	var files []string
	var firstErr error
	for _, p := range []struct{ profile, file string }{
		{"heap", "heap.pprof"},
		{"allocs", "allocs.pprof"},
		{"mutex", "mutex.pprof"},
		{"block", "block.pprof"},
		{"goroutine", "goroutine.pprof"},
	} {
		name := prefix + p.file
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		err = pprof.Lookup(p.profile).WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		files = append(files, name)
	}
	return files, firstErr
}

// Do runs f with the given pprof label set on the goroutine, so CPU
// and goroutine profiles attribute its samples (the engine labels each
// shard worker p5_shard=N this way; harnesses label phases).
func Do(key, value string, f func()) {
	pprof.Do(context.Background(), pprof.Labels(key, value), func(context.Context) { f() })
}
