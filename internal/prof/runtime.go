package prof

import (
	"math"
	"runtime/metrics"
	"sync"

	"repro/internal/telemetry"
)

// Runtime exports a curated slice of runtime/metrics into a telemetry
// registry: goroutine count, GC cycle count, GC pause and scheduler
// latency p99s, and live heap size. Values refresh through the
// registry's sampler hook, so every Snapshot or Prometheus scrape sees
// a fresh metrics.Read — the instrumented process never polls in the
// background, and an idle registry costs nothing.
//
// Exposition names (stable; runtime_test.go pins them):
//
//	runtime_goroutines           gauge
//	runtime_gc_cycles_total      counter
//	runtime_gc_pauses_total      counter
//	runtime_gc_pause_p99_ns      gauge
//	runtime_sched_latency_p99_ns gauge
//	runtime_heap_bytes           gauge
type Runtime struct {
	mu      sync.Mutex
	samples []metrics.Sample

	goroutines  *telemetry.Gauge
	gcCycles    *telemetry.Counter
	gcPauses    *telemetry.Counter
	gcPauseP99  *telemetry.Gauge
	schedLatP99 *telemetry.Gauge
	heapBytes   *telemetry.Gauge
}

// Indices into Runtime.samples; keep in sync with runtimeMetricNames.
const (
	rmGoroutines = iota
	rmGCCycles
	rmGCPauses
	rmSchedLat
	rmHeapBytes
)

var runtimeMetricNames = []string{
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
	"/memory/classes/heap/objects:bytes",
}

// ExportRuntime registers the runtime series in reg and hooks the
// refresher into the registry's sampler chain. Safe to call once per
// registry; the series are unlabelled so a second call would collide
// by design.
func ExportRuntime(reg *telemetry.Registry) *Runtime {
	r := &Runtime{samples: make([]metrics.Sample, len(runtimeMetricNames))}
	for i, n := range runtimeMetricNames {
		r.samples[i].Name = n
	}
	r.goroutines = reg.Gauge("runtime_goroutines", "Live goroutines.")
	r.gcCycles = reg.Counter("runtime_gc_cycles_total", "Completed GC cycles.")
	r.gcPauses = reg.Counter("runtime_gc_pauses_total", "Stop-the-world pauses observed.")
	r.gcPauseP99 = reg.Gauge("runtime_gc_pause_p99_ns", "p99 stop-the-world GC pause, ns.")
	r.schedLatP99 = reg.Gauge("runtime_sched_latency_p99_ns",
		"p99 time goroutines spent runnable before running, ns.")
	r.heapBytes = reg.Gauge("runtime_heap_bytes", "Live heap object bytes.")
	reg.AddSampler(r.Sample)
	r.Sample()
	return r
}

// Sample re-reads the runtime metrics and refreshes the mirrors. The
// registry calls it on every exposition; tests call it directly.
func (r *Runtime) Sample() {
	r.mu.Lock()
	defer r.mu.Unlock()
	metrics.Read(r.samples)
	if v := r.samples[rmGoroutines]; v.Value.Kind() == metrics.KindUint64 {
		r.goroutines.Set(int64(v.Value.Uint64()))
	}
	if v := r.samples[rmGCCycles]; v.Value.Kind() == metrics.KindUint64 {
		r.gcCycles.Set(v.Value.Uint64())
	}
	if v := r.samples[rmGCPauses]; v.Value.Kind() == metrics.KindFloat64Histogram {
		h := v.Value.Float64Histogram()
		r.gcPauses.Set(histCount(h))
		r.gcPauseP99.Set(histQuantileNs(h, 0.99))
	}
	if v := r.samples[rmSchedLat]; v.Value.Kind() == metrics.KindFloat64Histogram {
		r.schedLatP99.Set(histQuantileNs(v.Value.Float64Histogram(), 0.99))
	}
	if v := r.samples[rmHeapBytes]; v.Value.Kind() == metrics.KindUint64 {
		r.heapBytes.Set(int64(v.Value.Uint64()))
	}
}

func histCount(h *metrics.Float64Histogram) uint64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// histQuantileNs estimates the q-quantile of a runtime seconds
// histogram in ns, using each bucket's upper boundary (conservative)
// and clamping the +Inf bucket to the highest finite boundary — the
// same rules telemetry.QuantileFromBuckets applies.
func histQuantileNs(h *metrics.Float64Histogram, q float64) int64 {
	total := histCount(h)
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) || rank == 0 {
		rank++
	}
	maxFinite := 0.0
	for _, b := range h.Buckets {
		if !math.IsInf(b, 0) && b > maxFinite {
			maxFinite = b
		}
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Counts[i] covers [Buckets[i], Buckets[i+1]).
			upper := h.Buckets[i+1]
			if math.IsInf(upper, +1) {
				upper = maxFinite
			}
			return int64(upper * 1e9)
		}
	}
	return int64(maxFinite * 1e9)
}
