package prof

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// runtimeSeries are the exporter's exposition names. They are API:
// dashboards and the p5sim report depend on them, so renaming one is a
// breaking change this test makes deliberate.
var runtimeSeries = []struct {
	name string
	kind string
}{
	{"runtime_goroutines", "gauge"},
	{"runtime_gc_cycles_total", "counter"},
	{"runtime_gc_pauses_total", "counter"},
	{"runtime_gc_pause_p99_ns", "gauge"},
	{"runtime_sched_latency_p99_ns", "gauge"},
	{"runtime_heap_bytes", "gauge"},
}

func TestRuntimeExporterNamesStable(t *testing.T) {
	reg := telemetry.NewRegistry()
	ExportRuntime(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, s := range runtimeSeries {
		if !strings.Contains(text, "# TYPE "+s.name+" "+s.kind+"\n") {
			t.Errorf("exposition missing TYPE %s %s", s.name, s.kind)
		}
	}
	// And the scrape side parses what we wrote.
	parsed, err := telemetry.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, s := range parsed {
		got[s.Name] = true
	}
	for _, s := range runtimeSeries {
		if !got[s.name] {
			t.Errorf("parsed exposition missing %s", s.name)
		}
	}
}

// TestRuntimeExporterSnapshotRoundTrip checks the sampler hook: a
// registry Snapshot refreshes the mirrors without anyone calling
// Sample, counters stay monotonic, and a forced GC is visible in the
// next snapshot.
func TestRuntimeExporterSnapshotRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	ExportRuntime(reg)

	s1 := reg.Snapshot("one")
	g, ok := s1.Get("runtime_goroutines")
	if !ok || g < 1 {
		t.Fatalf("runtime_goroutines = %v (ok=%v), want >= 1", g, ok)
	}
	if h, ok := s1.Get("runtime_heap_bytes"); !ok || h <= 0 {
		t.Fatalf("runtime_heap_bytes = %v (ok=%v), want > 0", h, ok)
	}
	c1, _ := s1.Get("runtime_gc_cycles_total")

	runtime.GC()
	runtime.GC()
	s2 := reg.Snapshot("two")
	c2, _ := s2.Get("runtime_gc_cycles_total")
	if c2 < c1+2 {
		t.Errorf("gc cycles %v -> %v: snapshot did not resample after 2 forced GCs", c1, c2)
	}
	if p1, _ := s1.Get("runtime_gc_pauses_total"); p1 > 0 {
		if p2, _ := s2.Get("runtime_gc_pauses_total"); p2 < p1 {
			t.Errorf("gc pauses went backwards: %v -> %v", p1, p2)
		}
	}
}

// TestHistQuantileNs pins the quantile estimator against a
// hand-computed histogram, including the +Inf clamp.
func TestHistQuantileNs(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{90, 9, 1},
		Buckets: []float64{0, 1e-6, 1e-3, inf()},
	}
	// p50 of 100 obs lands in the first bucket → upper bound 1µs.
	if got := histQuantileNs(h, 0.50); got != 1_000 {
		t.Errorf("p50 = %d ns, want 1000", got)
	}
	// p99 (rank 99) lands in the second bucket → 1ms.
	if got := histQuantileNs(h, 0.99); got != 1_000_000 {
		t.Errorf("p99 = %d ns, want 1e6", got)
	}
	// p100 lands in the +Inf bucket → clamped to the highest finite
	// boundary, never a fabricated value.
	if got := histQuantileNs(h, 1.0); got != 1_000_000 {
		t.Errorf("p100 = %d ns, want clamp to 1e6", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := histQuantileNs(empty, 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %d, want 0", got)
	}
}

func inf() float64 { return math.Inf(+1) }
