package sonet

import "repro/internal/telemetry"

// Instrument exports the deframer's section counters to reg under
// prefix and, when the deframer has a defect monitor, mirrors the
// active alarm set and emits a structured trace event for every defect
// raise/clear (chained ahead of any existing OnEvent subscriber, in
// the same style as OAM.AttachSection). tr may be nil to disable
// tracing. The returned sync refreshes the counter mirrors; call it at
// whatever cadence frames are fed.
func (d *Deframer) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer, prefix string) func() {
	taps := []struct {
		c    *telemetry.Counter
		read func() uint64
	}{
		{reg.Counter(prefix+"_frames_ok_total", "Transport frames delivered in sync."),
			func() uint64 { return d.FramesOK }},
		{reg.Counter(prefix+"_frames_errored_total", "Frames delivered despite an errored A1/A2."),
			func() uint64 { return d.FramesErrored }},
		{reg.Counter(prefix+"_b1_errors_total", "Section BIP-8 parity errors."),
			func() uint64 { return d.B1Errors }},
		{reg.Counter(prefix+"_b2_errors_total", "Line BIP-8 parity errors (SD/SF source)."),
			func() uint64 { return d.B2Errors }},
		{reg.Counter(prefix+"_b3_errors_total", "Path BIP-8 parity errors."),
			func() uint64 { return d.B3Errors }},
		{reg.Counter(prefix+"_resyncs_total", "Frame-alignment reacquisitions."),
			func() uint64 { return d.ResyncCount }},
	}
	var alarms *telemetry.Gauge
	if d.Defects != nil {
		alarms = reg.Gauge(prefix+"_alarms", "Active defect set (sonet.Defect bits).")
		raises := reg.Counter(prefix+"_defect_raises_total", "Defect raise transitions.")
		clears := reg.Counter(prefix+"_defect_clears_total", "Defect clear transitions.")
		prev := d.Defects.OnEvent
		d.Defects.OnEvent = func(e DefectEvent) {
			name := "defect-clear"
			if e.Raised {
				raises.Inc()
				name = "defect-raise"
			} else {
				clears.Inc()
			}
			alarms.Set(int64(d.Defects.Active()))
			if tr != nil {
				tr.Emit(e.Octet, "sonet", name, e.Defect.String(), int64(e.Defect), int64(d.Defects.Active()))
			}
			if prev != nil {
				prev(e)
			}
		}
	}
	return func() {
		for _, t := range taps {
			t.c.Set(t.read())
		}
		if alarms != nil {
			alarms.Set(int64(d.Defects.Active()))
		}
	}
}
