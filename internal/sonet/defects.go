package sonet

import (
	"fmt"
	"strings"
)

// This file adds GR-253-style defect supervision to the SONET section:
// instead of a stateless hunt that drops alignment on the first errored
// A1/A2 pattern, the deframer drives a DefectMonitor that models sync
// acquisition and loss as a state machine with integration timers —
// out-of-frame after consecutive errored framing patterns, loss-of-frame
// after a persistence timer, loss-of-signal on a dead line, and
// signal-degrade/fail alarms from measured B2 line parity rates. A supervisor (the
// host behind the P5 OAM block, or a software Link) consumes the
// resulting transitions.

// Defect is a bit set of active section/path defects.
type Defect uint32

// The modelled defects.
const (
	// DefOOF: out of frame — OOFBadFrames consecutive errored A1/A2
	// patterns. The deframer re-hunts while OOF is active.
	DefOOF Defect = 1 << iota
	// DefLOF: loss of frame — OOF persisted LOFFrames frame times.
	DefLOF
	// DefLOS: loss of signal — LOSOctets consecutive zero octets (a
	// dead line; scrambling guarantees a live line is never all-zeros).
	DefLOS
	// DefSD: signal degrade — B2 line-parity errored-frame rate over a
	// window crossed the degrade threshold.
	DefSD
	// DefSF: signal fail — line errored-frame rate crossed the fail
	// threshold.
	DefSF
)

var defectNames = []struct {
	bit  Defect
	name string
}{
	{DefLOS, "LOS"}, {DefLOF, "LOF"}, {DefOOF, "OOF"},
	{DefSF, "SF"}, {DefSD, "SD"},
}

func (d Defect) String() string {
	if d == 0 {
		return "none"
	}
	var parts []string
	for _, n := range defectNames {
		if d&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if rest := d &^ (DefOOF | DefLOF | DefLOS | DefSD | DefSF); rest != 0 {
		parts = append(parts, fmt.Sprintf("%#x", uint32(rest)))
	}
	return strings.Join(parts, "+")
}

// ServiceAffecting is the defect set that makes the line unusable: a
// supervisor should treat these as loss of the physical layer.
const ServiceAffecting = DefLOS | DefLOF | DefSF

// DefectEvent is one alarm transition.
type DefectEvent struct {
	Octet  int64 // line octet index at the transition
	Defect Defect
	Raised bool // true = raise, false = clear
}

func (e DefectEvent) String() string {
	verb := "clear"
	if e.Raised {
		verb = "raise"
	}
	return fmt.Sprintf("%s %v @%d", verb, e.Defect, e.Octet)
}

// DefectConfig sets the integration thresholds. Zero values take the
// GR-253-flavoured defaults scaled to the monitor's Level.
type DefectConfig struct {
	// OOFBadFrames consecutive errored A1/A2 patterns declare OOF
	// (default 4); OOFGoodFrames consecutive clean patterns re-enter
	// the in-frame state (default 2).
	OOFBadFrames, OOFGoodFrames int
	// LOFFrames frame times spent in OOF declare LOF; the same span
	// in-frame clears it (default 24 ≈ 3 ms).
	LOFFrames int
	// LOSOctets consecutive zero octets declare LOS (default one
	// eighth of a transport frame ≈ 15 µs); any nonzero octet clears.
	LOSOctets int
	// WindowFrames is the parity evaluation window (default 16 = 2 ms);
	// SDFrames / SFFrames errored frames within it raise signal
	// degrade / fail (defaults 4 and 12). A window below threshold
	// clears.
	WindowFrames, SDFrames, SFFrames int
}

// DefectMonitor integrates framing, parity and signal observations into
// alarm state. The Deframer drives it; hosts read Active and Events or
// subscribe via OnEvent.
type DefectMonitor struct {
	Level Level
	Cfg   DefectConfig
	// OnEvent, when set, observes every transition as it happens.
	OnEvent func(DefectEvent)
	// Events is the transition log (capped at eventCap entries).
	Events []DefectEvent

	active Defect

	octet     int64
	zeroRun   int
	badRun    int
	goodRun   int
	oofOct    int64 // octets spent in OOF (LOF integration)
	inOct     int64 // octets spent in-frame (LOF clearing)
	lofThresh int64 // cached LOF integration span in octets
	winFrm    int
	winErr    int
	raises    [5]uint64
	clears    [5]uint64
	dropped   uint64 // events not logged because of the cap
}

// eventCap bounds the transition log so a long soak cannot grow it
// unboundedly; counters keep exact totals regardless.
const eventCap = 4096

// NewDefectMonitor returns a monitor with default thresholds for level.
func NewDefectMonitor(level Level) *DefectMonitor {
	return &DefectMonitor{Level: level}
}

func (m *DefectMonitor) oofBad() int {
	if m.Cfg.OOFBadFrames > 0 {
		return m.Cfg.OOFBadFrames
	}
	return 4
}

func (m *DefectMonitor) oofGood() int {
	if m.Cfg.OOFGoodFrames > 0 {
		return m.Cfg.OOFGoodFrames
	}
	return 2
}

func (m *DefectMonitor) lofFrames() int {
	if m.Cfg.LOFFrames > 0 {
		return m.Cfg.LOFFrames
	}
	return 24
}

func (m *DefectMonitor) losOctets() int {
	if m.Cfg.LOSOctets > 0 {
		return m.Cfg.LOSOctets
	}
	n := m.Level.FrameBytes() / 8
	if n < 16 {
		n = 16
	}
	return n
}

func (m *DefectMonitor) windowFrames() int {
	if m.Cfg.WindowFrames > 0 {
		return m.Cfg.WindowFrames
	}
	return 16
}

func (m *DefectMonitor) sdFrames() int {
	if m.Cfg.SDFrames > 0 {
		return m.Cfg.SDFrames
	}
	return 4
}

func (m *DefectMonitor) sfFrames() int {
	if m.Cfg.SFFrames > 0 {
		return m.Cfg.SFFrames
	}
	return 12
}

// Active returns the current defect set.
func (m *DefectMonitor) Active() Defect { return m.active }

// Has reports whether defect d is currently active.
func (m *DefectMonitor) Has(d Defect) bool { return m.active&d != 0 }

// Raises returns how many times defect d has been raised.
func (m *DefectMonitor) Raises(d Defect) uint64 { return m.raises[bitIndex(d)] }

// Clears returns how many times defect d has been cleared.
func (m *DefectMonitor) Clears(d Defect) uint64 { return m.clears[bitIndex(d)] }

// Transitions returns the total raise+clear transition count.
func (m *DefectMonitor) Transitions() (raises, clears uint64) {
	for i := range m.raises {
		raises += m.raises[i]
		clears += m.clears[i]
	}
	return
}

func bitIndex(d Defect) int {
	for i := 0; i < 5; i++ {
		if d&(1<<uint(i)) != 0 {
			return i
		}
	}
	return 0
}

func (m *DefectMonitor) raise(d Defect) {
	if m.active&d != 0 {
		return
	}
	m.active |= d
	m.raises[bitIndex(d)]++
	m.event(DefectEvent{Octet: m.octet, Defect: d, Raised: true})
}

func (m *DefectMonitor) clearDef(d Defect) {
	if m.active&d == 0 {
		return
	}
	m.active &^= d
	m.clears[bitIndex(d)]++
	m.event(DefectEvent{Octet: m.octet, Defect: d, Raised: false})
}

func (m *DefectMonitor) event(e DefectEvent) {
	if len(m.Events) < eventCap {
		m.Events = append(m.Events, e)
	} else {
		m.dropped++
	}
	if m.OnEvent != nil {
		m.OnEvent(e)
	}
}

// Octets observes raw line octets: the LOS zero-run detector and the
// LOF integration timers run at line rate.
func (m *DefectMonitor) Octets(p []byte) {
	for _, b := range p {
		m.OctetIn(b)
	}
}

// OctetIn observes a single line octet. The Deframer calls this for
// every received octet, interleaved with FrameResult at frame
// boundaries, so the LOF persistence timer integrates correctly even
// when a whole outage arrives in one chunk.
func (m *DefectMonitor) OctetIn(b byte) {
	m.octet++
	if b == 0 {
		m.zeroRun++
		if m.zeroRun == m.losOctets() {
			m.raise(DefLOS)
		}
	} else {
		if m.Has(DefLOS) {
			m.clearDef(DefLOS)
		}
		m.zeroRun = 0
	}
	if m.lofThresh == 0 {
		m.lofThresh = int64(m.lofFrames()) * int64(m.Level.FrameBytes())
	}
	if m.Has(DefOOF) {
		m.oofOct++
		if !m.Has(DefLOF) && m.oofOct >= m.lofThresh {
			m.raise(DefLOF)
		}
	} else {
		m.inOct++
		if m.Has(DefLOF) && m.inOct >= m.lofThresh {
			m.clearDef(DefLOF)
		}
	}
}

// FrameResult is FrameResultLine for callers with a single parity
// verdict: the one observation serves both the section and the line.
func (m *DefectMonitor) FrameResult(alignOK, parityErr bool) (inFrame bool) {
	return m.FrameResultLine(alignOK, parityErr, parityErr)
}

// FrameResultLine observes one frame-time's framing and parity verdicts
// and returns whether the deframer should keep frame sync: false means
// OOF is active and this frame's alignment was errored — fall back to
// the hunt. A single errored pattern inside an otherwise good run keeps
// sync (the in-frame hysteresis), so its payload is still delivered.
//
// sectionErr is the B1/B3 verdict (recorded for counters only);
// lineErr is the measured B2 line parity verdict, and is what the
// SD/SF declaration window integrates — signal degrade and signal fail
// are line-layer defects, and they are the triggers a 1+1 APS
// controller switches on.
func (m *DefectMonitor) FrameResultLine(alignOK, sectionErr, lineErr bool) (inFrame bool) {
	if alignOK {
		m.goodRun++
		m.badRun = 0
		if m.Has(DefOOF) && m.goodRun >= m.oofGood() {
			m.clearDef(DefOOF)
			m.inOct = 0
		}
	} else {
		m.badRun++
		m.goodRun = 0
		if !m.Has(DefOOF) && m.badRun >= m.oofBad() {
			m.raise(DefOOF)
			m.oofOct = 0
		}
	}

	m.winFrm++
	if lineErr {
		m.winErr++
	}
	_ = sectionErr // counted by the deframer; SD/SF integrate the line
	if m.winFrm >= m.windowFrames() {
		errs := m.winErr
		m.winFrm, m.winErr = 0, 0
		if errs >= m.sfFrames() {
			m.raise(DefSF)
		} else {
			m.clearDef(DefSF)
		}
		if errs >= m.sdFrames() {
			m.raise(DefSD)
		} else {
			m.clearDef(DefSD)
		}
	}
	return alignOK || !m.Has(DefOOF)
}
