package sonet

import (
	"math/rand"
	"testing"
)

// TestK1K2CarriedAndFiltered: APS bytes set on the framer arrive at the
// deframer, but only after persisting for apsAcceptFrames consecutive
// frames — a one-frame glitch must not be accepted.
func TestK1K2CarriedAndFiltered(t *testing.T) {
	fr := NewFramer(STM1, func() (byte, bool) { return 0x42, true })
	var accepted [][2]byte
	df := NewDeframer(STM1, nil)
	df.OnAPS = func(k1, k2 byte) { accepted = append(accepted, [2]byte{k1, k2}) }

	// Steady zero K1/K2 for a few frames: the zero pair is accepted once.
	for i := 0; i < 4; i++ {
		df.Feed(fr.NextFrame())
	}
	if _, _, ok := df.APSBytes(); !ok {
		t.Fatal("steady K1/K2 never accepted")
	}
	if len(accepted) != 1 || accepted[0] != [2]byte{0, 0} {
		t.Fatalf("accepted = %v, want one zero pair", accepted)
	}

	// A single-frame glitch must be filtered out.
	fr.K1, fr.K2 = 0xC1, 0x15
	df.Feed(fr.NextFrame())
	fr.K1, fr.K2 = 0, 0
	for i := 0; i < 3; i++ {
		df.Feed(fr.NextFrame())
	}
	if len(accepted) != 1 {
		t.Fatalf("glitch accepted: %v", accepted)
	}

	// A persistent change is accepted after exactly apsAcceptFrames.
	fr.K1, fr.K2 = 0xC1, 0x15
	df.Feed(fr.NextFrame())
	df.Feed(fr.NextFrame())
	if len(accepted) != 1 {
		t.Fatal("accepted after only two frames")
	}
	df.Feed(fr.NextFrame())
	if len(accepted) != 2 || accepted[1] != [2]byte{0xC1, 0x15} {
		t.Fatalf("persistent change not accepted: %v", accepted)
	}
	k1, k2, ok := df.APSBytes()
	if !ok || k1 != 0xC1 || k2 != 0x15 {
		t.Errorf("APSBytes = %#x/%#x/%v", k1, k2, ok)
	}
	if df.APSAccepts != 2 {
		t.Errorf("APSAccepts = %d", df.APSAccepts)
	}
}

// TestB2CleanLine: no line parity errors on an unimpaired section.
func TestB2CleanLine(t *testing.T) {
	payload := make([]byte, 8000)
	rand.New(rand.NewSource(9)).Read(payload)
	_, df := pump(t, STM1, payload, 6, nil)
	if df.B2Errors != 0 {
		t.Errorf("B2 errors on clean line: %d", df.B2Errors)
	}
	// K1/K2 carriage must also survive STM-4 geometry.
	fr := NewFramer(STM4, func() (byte, bool) { return 0x11, true })
	fr.K1, fr.K2 = 0xAA, 0x05
	df4 := NewDeframer(STM4, nil)
	for i := 0; i < 4; i++ {
		df4.Feed(fr.NextFrame())
	}
	if k1, k2, ok := df4.APSBytes(); !ok || k1 != 0xAA || k2 != 0x05 {
		t.Errorf("STM-4 APSBytes = %#x/%#x/%v", k1, k2, ok)
	}
	if df4.B2Errors != 0 {
		t.Errorf("STM-4 B2 errors on clean line: %d", df4.B2Errors)
	}
}

// TestB2CatchesLineCorruption: a payload hit shows up in the next
// frame's B2 (and B1); a section-overhead-only hit shows up in B1 but
// NOT in B2, and therefore must not advance the SD/SF window.
func TestB2CatchesLineCorruption(t *testing.T) {
	payload := make([]byte, 9000)
	rand.New(rand.NewSource(10)).Read(payload)
	_, df := pump(t, STM1, payload, 5, func(f []byte, i int) {
		if i == 1 {
			f[len(f)/2] ^= 0x40 // payload region: line + section parity
		}
	})
	if df.B2Errors == 0 {
		t.Error("B2 did not catch payload corruption")
	}
	if df.B1Errors == 0 {
		t.Error("B1 did not catch payload corruption")
	}

	// Section-overhead-only corruption: row 1, an unused overhead byte
	// (inside B1 coverage, outside both the B2 rows and the path).
	row := 270
	_, df2 := pump(t, STM1, payload, 5, func(f []byte, i int) {
		if i >= 1 && i <= 3 {
			f[row+4] ^= 0xFF
		}
	})
	if df2.B1Errors == 0 {
		t.Error("B1 missed section-overhead corruption")
	}
	if df2.B2Errors != 0 {
		t.Errorf("B2 errors from section-only corruption: %d", df2.B2Errors)
	}
}

// TestSDDerivesFromLineParity: SD/SF declaration integrates the
// measured B2 verdicts — sustained line corruption raises SD, while
// the same rate of section-overhead-only corruption does not.
func TestSDDerivesFromLineParity(t *testing.T) {
	mangleLine := func(f []byte, i int) {
		if i >= 1 {
			f[len(f)/2] ^= 0x20 // payload: B2-visible
		}
	}
	mangleSection := func(f []byte, i int) {
		if i >= 1 {
			f[270+4] ^= 0x20 // row-1 overhead: B1-visible only
		}
	}
	payload := make([]byte, 60000)
	rand.New(rand.NewSource(11)).Read(payload)

	_, dfLine := pump(t, STM1, payload, 24, mangleLine)
	if !dfLine.Defects.Has(DefSD) {
		t.Error("sustained line corruption did not raise SD")
	}
	_, dfSec := pump(t, STM1, payload, 24, mangleSection)
	if dfSec.Defects.Has(DefSD) || dfSec.Defects.Has(DefSF) {
		t.Errorf("section-only corruption raised %v", dfSec.Defects.Active())
	}
	if dfSec.B1Errors == 0 {
		t.Error("section corruption not even counted")
	}
}
