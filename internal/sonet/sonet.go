// Package sonet is the SDH/SONET physical-layer substrate: a simplified
// but structurally faithful STM-N framer and deframer carrying the
// byte-synchronous HDLC/PPP payload mapping of RFC 1619/2615 — the
// "PHY" blocks on either side of the P5 in the paper's Figure 2.
//
// A transport frame is 9 rows by 270·N columns repeated every 125 µs.
// The model implements the overhead actually needed to exercise the
// datapath: A1/A2 frame alignment, B1/B3 BIP-8 parity monitoring, the
// C2 path-signal label for PPP, the x^7+x^6+1 frame-synchronous
// scrambler, and a concatenated payload area. Pointers are fixed
// (concatenation with zero offset), which matches the byte-synchronous
// mapping the paper assumes.
package sonet

// Level is the STM level N (STM-1, STM-4, STM-16...). OC-3N equivalent.
type Level int

// Common levels and their line rates.
const (
	STM1  Level = 1  // OC-3,  155.52 Mb/s
	STM4  Level = 4  // OC-12, 622.08 Mb/s
	STM16 Level = 16 // OC-48, 2488.32 Mb/s — the paper's 2.5 Gb/s target
	STM64 Level = 64 // OC-192, 9953.28 Mb/s — the scaling study's ceiling
)

// Geometry constants (per STM-1).
const (
	rows        = 9
	colsPerSTM1 = 270
	sohCols     = 9 // section+line overhead columns per STM-1
	// FramesPerSecond is the 125 µs frame cadence.
	FramesPerSecond = 8000
)

// FrameBytes returns the transport frame size in octets.
func (n Level) FrameBytes() int { return rows * colsPerSTM1 * int(n) }

// LineRate returns the gross line rate in bits per second.
func (n Level) LineRate() float64 {
	return float64(n.FrameBytes()) * 8 * FramesPerSecond
}

// PayloadBytes returns the octets per frame available to the HDLC
// stream: the payload area minus one path-overhead column.
func (n Level) PayloadBytes() int {
	return rows * (colsPerSTM1 - sohCols - 1) * int(n)
}

// PayloadRate returns the HDLC-visible payload rate in bits per second.
func (n Level) PayloadRate() float64 {
	return float64(n.PayloadBytes()) * 8 * FramesPerSecond
}

// Overhead byte values.
const (
	A1 = 0xF6 // frame alignment, first half
	A2 = 0x28 // frame alignment, second half
	// C2PPP is the path signal label for PPP/HDLC payload (RFC 2615).
	C2PPP = 0x16
)

// Scrambler is the frame-synchronous SDH scrambler, generator
// 1 + x^6 + x^7, reset to all ones at the first payload-scrambled byte
// of every frame. Scrambling is an XOR stream, so the same operation
// descrambles.
type Scrambler struct {
	state byte
}

// Reset re-seeds the scrambler (start of frame).
func (s *Scrambler) Reset() { s.state = 0x7F }

// Next returns the next scrambler byte (eight successive LFSR bits).
func (s *Scrambler) Next() byte {
	var out byte
	st := s.state // 7-bit state
	for i := 7; i >= 0; i-- {
		bit := (st >> 6) & 1 // x^7 tap
		out |= bit << uint(i)
		fb := ((st >> 6) ^ (st >> 5)) & 1 // x^7 + x^6
		st = (st<<1 | fb) & 0x7F
	}
	s.state = st
	return out
}

// Apply XORs the scrambler stream over p in place.
func (s *Scrambler) Apply(p []byte) {
	for i := range p {
		p[i] ^= s.Next()
	}
}

// bip8 computes even byte-interleaved parity over p.
func bip8(p []byte) byte {
	var b byte
	for _, x := range p {
		b ^= x
	}
	return b
}

// lineStart returns the octet offset of the line-overhead rows within a
// transport frame: B2 parity coverage starts here (the section overhead
// rows above are excluded, per the B2 definition).
func lineStart(n Level) int { return 3 * colsPerSTM1 * int(n) }

// apsRow is the frame row carrying B2/K1/K2 (row 5 of the standard's
// 1-indexed layout).
const apsRow = 4
