package sonet

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/hdlc"
)

func TestRates(t *testing.T) {
	if got := STM1.LineRate(); got != 155_520_000 {
		t.Errorf("STM-1 line rate = %v", got)
	}
	if got := STM16.LineRate(); got != 2_488_320_000 {
		t.Errorf("STM-16 line rate = %v", got)
	}
	// STM-16 payload must comfortably exceed 2.3 Gb/s.
	if got := STM16.PayloadRate(); got < 2.3e9 || got > 2.49e9 {
		t.Errorf("STM-16 payload rate = %v", got)
	}
	if STM4.FrameBytes() != 9*270*4 {
		t.Errorf("STM-4 frame bytes = %d", STM4.FrameBytes())
	}
	if got := STM64.LineRate(); got != 9_953_280_000 {
		t.Errorf("STM-64 line rate = %v", got)
	}
}

func TestScramblerIsSelfInverse(t *testing.T) {
	data := make([]byte, 1000)
	rand.New(rand.NewSource(1)).Read(data)
	orig := append([]byte(nil), data...)
	var a, b Scrambler
	a.Reset()
	a.Apply(data)
	if bytes.Equal(data, orig) {
		t.Fatal("scrambler did nothing")
	}
	b.Reset()
	b.Apply(data)
	if !bytes.Equal(data, orig) {
		t.Fatal("descramble failed")
	}
}

func TestScramblerPeriod(t *testing.T) {
	// x^7+x^6+1 is maximal length: period 127 bits.
	var s Scrambler
	s.Reset()
	first := make([]byte, 127)
	for i := range first {
		first[i] = s.Next()
	}
	second := make([]byte, 127)
	for i := range second {
		second[i] = s.Next()
	}
	if !bytes.Equal(first, second) {
		t.Error("scrambler stream not 127-byte periodic over 127 bytes*8 bits... pattern mismatch")
	}
	// And it is not trivially constant.
	if bytes.Count(first, []byte{first[0]}) == len(first) {
		t.Error("scrambler output constant")
	}
}

// pump sends the payload stream through framer → deframer and returns
// what was recovered.
func pump(t *testing.T, level Level, payload []byte, frames int, mangle func([]byte, int)) ([]byte, *Deframer) {
	t.Helper()
	pos := 0
	fr := NewFramer(level, func() (byte, bool) {
		if pos < len(payload) {
			b := payload[pos]
			pos++
			return b, true
		}
		return 0, false
	})
	var got []byte
	df := NewDeframer(level, func(b byte) { got = append(got, b) })
	for i := 0; i < frames; i++ {
		f := fr.NextFrame()
		if mangle != nil {
			mangle(f, i)
		}
		df.Feed(f)
	}
	return got, df
}

func TestFramerDeframerRoundTrip(t *testing.T) {
	payload := make([]byte, 3000)
	rand.New(rand.NewSource(2)).Read(payload)
	got, df := pump(t, STM1, payload, 3, nil)
	if df.FramesOK != 3 {
		t.Fatalf("FramesOK = %d", df.FramesOK)
	}
	if !bytes.HasPrefix(got, payload) {
		t.Fatal("payload not recovered in order")
	}
	// Remainder must be flag fill.
	for i := len(payload); i < len(got); i++ {
		if got[i] != hdlc.Flag {
			t.Fatalf("fill octet %d = %#x, want flag", i, got[i])
		}
	}
	if df.B1Errors != 0 || df.B3Errors != 0 {
		t.Errorf("parity errors on clean line: B1=%d B3=%d", df.B1Errors, df.B3Errors)
	}
}

func TestDeframerAlignmentFromMidStream(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 2000)
	pos := 0
	fr := NewFramer(STM1, func() (byte, bool) {
		if pos < len(payload) {
			pos++
			return payload[pos-1], true
		}
		return 0, false
	})
	var got []byte
	df := NewDeframer(STM1, func(b byte) { got = append(got, b) })
	// Lead with garbage: the hunt must slide to the A1/A2 boundary.
	garbage := []byte{0x00, 0xF6, 0xF6, 0x11, 0x22}
	df.Feed(garbage)
	for i := 0; i < 3; i++ {
		df.Feed(fr.NextFrame())
	}
	if !df.Aligned() {
		t.Fatal("never aligned")
	}
	if df.FramesOK != 3 {
		t.Errorf("FramesOK = %d", df.FramesOK)
	}
	if !bytes.Contains(got, payload[:500]) {
		t.Error("payload not recovered after mid-stream alignment")
	}
}

func TestDeframerDetectsParityErrors(t *testing.T) {
	payload := make([]byte, 5000)
	rand.New(rand.NewSource(3)).Read(payload)
	_, df := pump(t, STM1, payload, 4, func(f []byte, i int) {
		if i == 1 {
			f[len(f)/2] ^= 0x10 // flip a payload bit mid-frame
		}
	})
	// The corrupted frame shows up in the NEXT frame's B1 and B3.
	if df.B1Errors == 0 {
		t.Error("B1 did not catch the corruption")
	}
	if df.B3Errors == 0 {
		t.Error("B3 did not catch the corruption")
	}
}

func TestDeframerRealignsAfterFrameLoss(t *testing.T) {
	payload := make([]byte, 20000)
	rand.New(rand.NewSource(4)).Read(payload)
	pos := 0
	fr := NewFramer(STM4, func() (byte, bool) {
		if pos < len(payload) {
			pos++
			return payload[pos-1], true
		}
		return 0, false
	})
	var got []byte
	df := NewDeframer(STM4, func(b byte) { got = append(got, b) })
	df.Feed(fr.NextFrame())
	// Lose half a frame (slip): feed only the tail of the next one.
	f2 := fr.NextFrame()
	df.Feed(f2[len(f2)/3:])
	// Subsequent clean frames must re-align. The defect hysteresis
	// integrates OOFBadFrames errored patterns before re-hunting, so
	// recovery takes a few more frames than a stateless hunt would.
	for i := 0; i < 10; i++ {
		df.Feed(fr.NextFrame())
	}
	if !df.Aligned() {
		t.Fatal("did not realign after slip")
	}
	if df.ResyncCount < 2 {
		t.Errorf("ResyncCount = %d, want ≥ 2", df.ResyncCount)
	}
	if df.FramesOK < 3 {
		t.Errorf("FramesOK = %d after realignment", df.FramesOK)
	}
	if df.Defects.Raises(DefOOF) == 0 {
		t.Error("slip did not raise OOF")
	}
	if df.Defects.Has(DefOOF) {
		t.Error("OOF still active after recovery")
	}
}

func TestHDLCOverSONETEndToEnd(t *testing.T) {
	// Full byte-synchronous mapping: HDLC-framed PPP-ish records over
	// the SONET payload, recovered by tokenizer after the deframer.
	var wire []byte
	for i := 0; i < 10; i++ {
		body := bytes.Repeat([]byte{byte(i), 0x7E, byte(i * 3)}, 5)
		wire = hdlc.Encode(wire, body, hdlc.ACCMNone, true)
	}
	var rec []byte
	got, df := pump(t, STM16, wire, 2, nil)
	rec = got
	if df.FramesOK != 2 {
		t.Fatalf("FramesOK = %d", df.FramesOK)
	}
	var tk hdlc.Tokenizer
	toks := tk.Feed(nil, rec)
	if len(toks) != 10 {
		t.Fatalf("recovered %d frames, want 10", len(toks))
	}
	for i, tok := range toks {
		want := bytes.Repeat([]byte{byte(i), 0x7E, byte(i * 3)}, 5)
		if tok.Err != nil || !bytes.Equal(tok.Body, want) {
			t.Errorf("frame %d: %+v", i, tok)
		}
	}
}

func BenchmarkFramerSTM16(b *testing.B) {
	fr := NewFramer(STM16, func() (byte, bool) { return 0x42, true })
	b.SetBytes(int64(STM16.FrameBytes()))
	for i := 0; i < b.N; i++ {
		fr.NextFrame()
	}
}

func BenchmarkDeframerSTM16(b *testing.B) {
	fr := NewFramer(STM16, func() (byte, bool) { return 0x42, true })
	frames := make([][]byte, 16)
	for i := range frames {
		frames[i] = fr.NextFrame()
	}
	df := NewDeframer(STM16, nil)
	b.SetBytes(int64(STM16.FrameBytes()))
	for i := 0; i < b.N; i++ {
		df.Feed(frames[i%len(frames)])
	}
}
