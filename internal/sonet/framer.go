package sonet

import "repro/internal/hdlc"

// Framer builds transmit STM-N frames around a byte-synchronous HDLC
// payload stream. Pull supplies the next payload octet; when it reports
// no data the framer inserts HDLC flags, because the synchronous payload
// envelope can never pause.
type Framer struct {
	Level Level
	// Pull returns the next HDLC line octet. A nil Pull (or ok ==
	// false) inserts inter-frame flag fill.
	Pull func() (byte, bool)

	// K1 and K2 are the APS signalling bytes carried in the line
	// overhead (row 5 of the transport frame, next to B2). A protection
	// controller rewrites them between frames; zero is "no request".
	K1, K2 byte

	scr       Scrambler
	prevFrame []byte // previous scrambled frame, for B1
	prevPath  []byte // previous payload+POH, for B3
	prevB2    byte   // line BIP-8 of the previous frame's LOH+payload

	FramesBuilt uint64
	FillOctets  uint64
}

// NewFramer returns a framer for the given level.
func NewFramer(level Level, pull func() (byte, bool)) *Framer {
	return &Framer{Level: level, Pull: pull}
}

// rowBytes is the octets per row of the transport frame.
func (f *Framer) rowBytes() int { return colsPerSTM1 * int(f.Level) }

// sohBytes is the overhead octets per row.
func (f *Framer) sohBytes() int { return sohCols * int(f.Level) }

// NextFrame builds one complete scrambled transport frame.
func (f *Framer) NextFrame() []byte {
	n := int(f.Level)
	row := f.rowBytes()
	soh := f.sohBytes()
	frame := make([]byte, f.Level.FrameBytes())

	// Path overhead occupies the first payload column; the remainder
	// carries the HDLC stream.
	pathStart := soh // column index of POH within each row
	var path []byte  // assembled POH+payload for B3 accounting
	for r := 0; r < rows; r++ {
		base := r * row
		// --- Section/line overhead ---
		switch r {
		case 0:
			// A1 ×3N then A2 ×3N, then unused overhead.
			for i := 0; i < 3*n; i++ {
				frame[base+i] = A1
			}
			for i := 3 * n; i < 6*n; i++ {
				frame[base+i] = A2
			}
		case 1:
			// B1: section BIP-8 over the previous scrambled frame.
			frame[base] = bip8(f.prevFrame)
		case 3:
			// H1/H2 pointer: concatenation, zero offset. The standard
			// encoding is 0x6A/0x0A for the first STM-1 and the
			// concatenation indication for the rest; a fixed marker
			// is sufficient for the byte-synchronous mapping.
			frame[base] = 0x6A
			frame[base+1] = 0x0A
		case 4:
			// B2: line BIP-8 over the previous frame's line overhead
			// and payload (everything below the section overhead rows),
			// then the K1/K2 APS signalling channel.
			frame[base] = f.prevB2
			frame[base+1] = f.K1
			frame[base+2] = f.K2
		}
		// --- Path overhead column ---
		var poh byte
		switch r {
		case 0:
			poh = 0x01 // J1 trace (constant)
		case 2:
			poh = bip8(f.prevPath) // B3
		case 4:
			poh = C2PPP
		}
		frame[base+pathStart] = poh
		// --- Payload ---
		for c := pathStart + 1; c < row; c++ {
			b, ok := byte(hdlc.Flag), false
			if f.Pull != nil {
				b, ok = f.Pull()
			}
			if !ok {
				b = hdlc.Flag
				f.FillOctets++
			}
			frame[base+c] = b
		}
		path = append(path, frame[base+pathStart:base+row]...)
	}
	f.prevPath = path
	// B2 covers rows 4-9 (line overhead + payload) of this frame before
	// scrambling; it is inserted into the NEXT frame.
	f.prevB2 = bip8(frame[lineStart(f.Level):])

	// Scramble everything except the first row of section overhead.
	f.scr.Reset()
	f.scr.Apply(frame[soh:]) // row 0 payload onward... see note below
	// Note: the standard leaves only the A1/A2 (and J0/Z0) bytes of row
	// 0 unscrambled; we leave the whole first 9·N overhead octets clear
	// so the alignment hunt is exact.
	f.prevFrame = append(f.prevFrame[:0], frame...)
	f.FramesBuilt++
	return frame
}
