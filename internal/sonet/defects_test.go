package sonet

import (
	"testing"
)

// mon returns a monitor with small thresholds for fast tests.
func mon() *DefectMonitor {
	m := NewDefectMonitor(STM1)
	m.Cfg = DefectConfig{
		OOFBadFrames: 4, OOFGoodFrames: 2,
		LOFFrames: 8, LOSOctets: 32,
		WindowFrames: 8, SDFrames: 2, SFFrames: 6,
	}
	return m
}

func TestOOFNeedsConsecutiveErroredFrames(t *testing.T) {
	m := mon()
	// Three errored patterns, then a good one: no OOF (hysteresis).
	for i := 0; i < 3; i++ {
		if !m.FrameResult(false, false) {
			t.Fatalf("dropped sync on errored frame %d", i)
		}
	}
	m.FrameResult(true, false)
	if m.Has(DefOOF) {
		t.Fatal("OOF after a non-consecutive run")
	}
	// Four consecutive errored patterns: OOF declared, sync dropped.
	for i := 0; i < 3; i++ {
		m.FrameResult(false, false)
	}
	if in := m.FrameResult(false, false); in {
		t.Fatal("kept sync after 4 consecutive errored frames")
	}
	if !m.Has(DefOOF) {
		t.Fatal("OOF not raised")
	}
	// Two consecutive good patterns re-enter the in-frame state.
	m.FrameResult(true, false)
	if !m.Has(DefOOF) {
		t.Fatal("OOF cleared after one good frame")
	}
	m.FrameResult(true, false)
	if m.Has(DefOOF) {
		t.Fatal("OOF not cleared after two good frames")
	}
	if m.Raises(DefOOF) != 1 || m.Clears(DefOOF) != 1 {
		t.Errorf("OOF raises/clears = %d/%d", m.Raises(DefOOF), m.Clears(DefOOF))
	}
}

func TestLOFPersistenceTimer(t *testing.T) {
	m := mon()
	fb := STM1.FrameBytes()
	// Enter OOF.
	for i := 0; i < 4; i++ {
		m.FrameResult(false, false)
	}
	junk := make([]byte, fb)
	for i := range junk {
		junk[i] = 0x42 // live line, just misframed
	}
	// Seven frame times in OOF: LOF not yet.
	for i := 0; i < 7; i++ {
		m.Octets(junk)
	}
	if m.Has(DefLOF) {
		t.Fatal("LOF before the persistence timer")
	}
	m.Octets(junk)
	if !m.Has(DefLOF) {
		t.Fatal("LOF not raised after 8 frame times in OOF")
	}
	// Recover framing; LOF must persist until the clear timer runs.
	m.FrameResult(true, false)
	m.FrameResult(true, false)
	if m.Has(DefOOF) {
		t.Fatal("OOF still active")
	}
	if !m.Has(DefLOF) {
		t.Fatal("LOF cleared instantly")
	}
	for i := 0; i < 8; i++ {
		m.Octets(junk)
	}
	if m.Has(DefLOF) {
		t.Fatal("LOF not cleared after in-frame persistence")
	}
}

func TestLOSZeroRun(t *testing.T) {
	m := mon()
	m.Octets(make([]byte, 31))
	if m.Has(DefLOS) {
		t.Fatal("LOS before threshold")
	}
	m.Octets(make([]byte, 1))
	if !m.Has(DefLOS) {
		t.Fatal("LOS not raised at 32 zero octets")
	}
	m.Octets([]byte{0xF6})
	if m.Has(DefLOS) {
		t.Fatal("LOS not cleared on live line")
	}
	if m.Raises(DefLOS) != 1 || m.Clears(DefLOS) != 1 {
		t.Errorf("LOS raises/clears = %d/%d", m.Raises(DefLOS), m.Clears(DefLOS))
	}
	// A zero run interrupted by live octets never raises.
	for i := 0; i < 10; i++ {
		m.Octets(make([]byte, 20))
		m.Octets([]byte{0x28})
	}
	if m.Raises(DefLOS) != 1 {
		t.Error("interrupted zero runs raised LOS")
	}
}

func TestSignalDegradeAndFailThresholds(t *testing.T) {
	m := mon()
	// Window of 8 frames with 2 parity-errored: SD but not SF.
	for i := 0; i < 8; i++ {
		m.FrameResult(true, i < 2)
	}
	if !m.Has(DefSD) || m.Has(DefSF) {
		t.Fatalf("after degrade window: %v", m.Active())
	}
	// Window with 6 errored: SF joins.
	for i := 0; i < 8; i++ {
		m.FrameResult(true, i < 6)
	}
	if !m.Has(DefSD) || !m.Has(DefSF) {
		t.Fatalf("after fail window: %v", m.Active())
	}
	// Clean window clears both.
	for i := 0; i < 8; i++ {
		m.FrameResult(true, false)
	}
	if m.Has(DefSD) || m.Has(DefSF) {
		t.Fatalf("after clean window: %v", m.Active())
	}
}

func TestDefectEventsAndStrings(t *testing.T) {
	m := mon()
	m.Octets(make([]byte, 64))
	m.Octets([]byte{1})
	if len(m.Events) != 2 {
		t.Fatalf("events = %v", m.Events)
	}
	if !m.Events[0].Raised || m.Events[0].Defect != DefLOS {
		t.Errorf("event 0 = %v", m.Events[0])
	}
	if got := m.Events[0].String(); got == "" {
		t.Error("empty event string")
	}
	if (DefLOS | DefOOF).String() != "LOS+OOF" {
		t.Errorf("String = %q", (DefLOS | DefOOF).String())
	}
	if Defect(0).String() != "none" {
		t.Errorf("zero String = %q", Defect(0).String())
	}
	r, c := m.Transitions()
	if r != 1 || c != 1 {
		t.Errorf("transitions = %d/%d", r, c)
	}
}

// TestDeframerSurvivesSingleErroredPattern is the hysteresis payoff: a
// corrupted A1 byte no longer costs a whole frame of payload.
func TestDeframerSurvivesSingleErroredPattern(t *testing.T) {
	payload := make([]byte, 8000)
	for i := range payload {
		payload[i] = byte(i%251) + 1
	}
	got, df := pump(t, STM1, payload, 4, func(f []byte, i int) {
		if i == 1 {
			f[0] ^= 0xFF // destroy the first A1 byte
		}
	})
	if df.FramesErrored != 1 {
		t.Fatalf("FramesErrored = %d", df.FramesErrored)
	}
	if df.Defects.Has(DefOOF) {
		t.Fatal("OOF from a single errored pattern")
	}
	// All payload delivered: the errored frame's octets were kept.
	if len(got) < len(payload) {
		t.Fatalf("delivered %d of %d payload octets", len(got), len(payload))
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("payload octet %d corrupted", i)
		}
	}
}

// TestDeframerByteSlipRaisesOOFAndRecovers injects a one-octet deletion
// mid-stream: the deframer must integrate the errored patterns, declare
// OOF, re-hunt, and clear the defect after realignment.
func TestDeframerByteSlipRaisesOOFAndRecovers(t *testing.T) {
	pos := 0
	fr := NewFramer(STM1, func() (byte, bool) { pos++; return byte(pos%250) + 1, true })
	var got []byte
	df := NewDeframer(STM1, func(b byte) { got = append(got, b) })
	df.Feed(fr.NextFrame())
	// Delete one octet from the next frame: everything downstream slips.
	f := fr.NextFrame()
	df.Feed(f[1:])
	for i := 0; i < 10; i++ {
		df.Feed(fr.NextFrame())
	}
	if !df.Aligned() {
		t.Fatal("did not realign after slip")
	}
	if df.Defects.Raises(DefOOF) != 1 || df.Defects.Clears(DefOOF) != 1 {
		t.Errorf("OOF raises/clears = %d/%d",
			df.Defects.Raises(DefOOF), df.Defects.Clears(DefOOF))
	}
	if df.Defects.Active() != 0 {
		t.Errorf("defects still active: %v", df.Defects.Active())
	}
	if df.ResyncCount < 2 {
		t.Errorf("ResyncCount = %d", df.ResyncCount)
	}
}

// TestDeframerLOSWindow feeds a dead line mid-stream: LOS (and, as the
// outage persists, OOF then LOF) must raise, then clear after the light
// comes back.
func TestDeframerLOSWindow(t *testing.T) {
	fr := NewFramer(STM1, func() (byte, bool) { return 0x42, true })
	df := NewDeframer(STM1, nil)
	// Small LOF timer; parity thresholds high enough that the outage's
	// few misframed candidates don't also trip SD/SF.
	df.Defects.Cfg = DefectConfig{LOFFrames: 8, WindowFrames: 8, SDFrames: 6, SFFrames: 7}
	for i := 0; i < 3; i++ {
		df.Feed(fr.NextFrame())
	}
	// 14 frame times of dead line.
	df.Feed(make([]byte, 14*STM1.FrameBytes()))
	if !df.Defects.Has(DefLOS) {
		t.Fatal("LOS not raised on dead line")
	}
	if !df.Defects.Has(DefOOF) || !df.Defects.Has(DefLOF) {
		t.Fatalf("outage defects = %v", df.Defects.Active())
	}
	// Light back: resync and clear everything.
	for i := 0; i < 12; i++ {
		df.Feed(fr.NextFrame())
	}
	if df.Defects.Active() != 0 {
		t.Fatalf("defects after recovery: %v", df.Defects.Active())
	}
	if df.Defects.Raises(DefLOS) != 1 || df.Defects.Raises(DefLOF) != 1 {
		t.Errorf("raises LOS=%d LOF=%d",
			df.Defects.Raises(DefLOS), df.Defects.Raises(DefLOF))
	}
}
