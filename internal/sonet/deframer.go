package sonet

// Deframer recovers the HDLC payload stream from a received STM-N octet
// stream: it hunts for the A1/A2 alignment pattern, descrambles,
// verifies B1/B3 parity against its own computation, and emits the
// payload octets.
type Deframer struct {
	Level Level
	// Emit receives recovered payload octets in order.
	Emit func(b byte)

	buf     []byte // accumulating candidate frame
	aligned bool

	scr       Scrambler
	prevFrame []byte
	prevPath  []byte
	// first frame after alignment cannot be parity-checked (no
	// previous frame).
	havePrev bool

	// Counters.
	FramesOK    uint64
	B1Errors    uint64
	B3Errors    uint64
	ResyncCount uint64
}

// NewDeframer returns a deframer for the given level.
func NewDeframer(level Level, emit func(byte)) *Deframer {
	return &Deframer{Level: level, Emit: emit}
}

// Aligned reports whether frame alignment has been acquired.
func (d *Deframer) Aligned() bool { return d.aligned }

// Feed consumes received line octets.
func (d *Deframer) Feed(p []byte) {
	for _, b := range p {
		d.buf = append(d.buf, b)
		if !d.aligned {
			d.hunt()
			continue
		}
		if len(d.buf) == d.Level.FrameBytes() {
			raw := d.buf
			d.buf = nil
			d.frame(raw)
		}
	}
}

// hunt looks for the A1...A1 A2...A2 pattern at the start of buf.
func (d *Deframer) hunt() {
	n := int(d.Level)
	need := 6 * n
	for len(d.buf) >= need {
		if matchAlignment(d.buf, n) {
			// Everything from here is the start of a frame; keep any
			// octets already received beyond the alignment pattern.
			d.aligned = true
			d.ResyncCount++
			return
		}
		// Slide by one octet.
		d.buf = d.buf[1:]
	}
}

func matchAlignment(p []byte, n int) bool {
	for i := 0; i < 3*n; i++ {
		if p[i] != A1 {
			return false
		}
	}
	for i := 3 * n; i < 6*n; i++ {
		if p[i] != A2 {
			return false
		}
	}
	return true
}

// frame processes one aligned transport frame.
func (d *Deframer) frame(raw []byte) {
	n := int(d.Level)
	row := colsPerSTM1 * n
	soh := sohCols * n
	if !matchAlignment(raw, n) {
		// Alignment lost: drop back to hunting.
		d.aligned = false
		d.havePrev = false
		d.buf = append([]byte(nil), raw[1:]...)
		d.hunt()
		return
	}
	frame := append([]byte(nil), raw...)
	d.scr.Reset()
	d.scr.Apply(frame[soh:])

	// Parity checks against the previous frame.
	if d.havePrev {
		wantB1 := bip8(d.prevFrame)
		if frame[row+0] != wantB1 { // row 1, first overhead byte
			d.B1Errors++
		}
		wantB3 := bip8(d.prevPath)
		if frame[2*row+soh] != wantB3 {
			d.B3Errors++
		}
	}

	// Extract POH column + payload.
	var path []byte
	for r := 0; r < rows; r++ {
		base := r * row
		path = append(path, frame[base+soh:base+row]...)
		for c := soh + 1; c < row; c++ {
			if d.Emit != nil {
				d.Emit(frame[base+c])
			}
		}
	}
	d.prevPath = path
	d.prevFrame = append(d.prevFrame[:0], raw...)
	d.havePrev = true
	d.FramesOK++
}
