package sonet

// Deframer recovers the HDLC payload stream from a received STM-N octet
// stream: it hunts for the A1/A2 alignment pattern, descrambles,
// verifies B1/B3 parity against its own computation, and emits the
// payload octets.
//
// Frame sync is supervised by a DefectMonitor (GR-253-style): a single
// errored A1/A2 pattern no longer drops alignment — the frame is still
// delivered at the assumed boundary and only OOFBadFrames consecutive
// errored patterns fall back to the hunt, with LOS/LOF/SD/SF alarms
// raised along the way. Set Defects to nil for the legacy stateless
// behaviour (drop to hunting on the first errored pattern).
type Deframer struct {
	Level Level
	// Emit receives recovered payload octets in order.
	Emit func(b byte)
	// Defects supervises sync state and raises section/path alarms.
	// NewDeframer installs a monitor with default thresholds.
	Defects *DefectMonitor
	// OnAPS, when set, observes every accepted K1/K2 change: a new pair
	// is accepted only after arriving identically in apsAcceptFrames
	// consecutive frames (the GR-253 byte-persistence filter), so a
	// protection controller never acts on a corrupted signalling byte.
	OnAPS func(k1, k2 byte)
	// OnFrame, when set, is called once per delivered frame, before that
	// frame's payload octets are emitted. A slot demultiplexer keys on it
	// to re-anchor its intra-frame payload position after a resync.
	OnFrame func()

	buf     []byte // accumulating candidate frame
	aligned bool

	scr       Scrambler
	prevFrame []byte
	prevPath  []byte
	prevB2    byte // line BIP-8 computed over the previous descrambled frame
	// first frame after alignment cannot be parity-checked (no
	// previous frame).
	havePrev bool

	// APS byte-persistence filter state.
	k1Cand, k2Cand byte
	apsRun         int
	apsK1, apsK2   byte
	apsValid       bool

	// Counters.
	FramesOK      uint64
	FramesErrored uint64 // delivered in-frame despite an errored A1/A2
	B1Errors      uint64
	B2Errors      uint64 // line BIP mismatches (drive SD/SF declaration)
	B3Errors      uint64
	ResyncCount   uint64
	APSAccepts    uint64 // accepted K1/K2 changes
}

// apsAcceptFrames is the K1/K2 persistence requirement: a value must
// repeat in this many consecutive frames before it is accepted.
const apsAcceptFrames = 3

// APSBytes returns the last accepted K1/K2 pair; ok is false until a
// pair has passed the persistence filter.
func (d *Deframer) APSBytes() (k1, k2 byte, ok bool) {
	return d.apsK1, d.apsK2, d.apsValid
}

// NewDeframer returns a deframer for the given level, supervised by a
// DefectMonitor with default thresholds.
func NewDeframer(level Level, emit func(byte)) *Deframer {
	return &Deframer{Level: level, Emit: emit, Defects: NewDefectMonitor(level)}
}

// Aligned reports whether frame alignment has been acquired.
func (d *Deframer) Aligned() bool { return d.aligned }

// Feed consumes received line octets.
func (d *Deframer) Feed(p []byte) {
	for _, b := range p {
		if d.Defects != nil {
			d.Defects.OctetIn(b)
		}
		d.buf = append(d.buf, b)
		if !d.aligned {
			d.hunt()
			continue
		}
		if len(d.buf) == d.Level.FrameBytes() {
			raw := d.buf
			d.buf = nil
			d.frame(raw)
		}
	}
}

// hunt looks for the A1...A1 A2...A2 pattern at the start of buf.
func (d *Deframer) hunt() {
	n := int(d.Level)
	need := 6 * n
	for len(d.buf) >= need {
		if matchAlignment(d.buf, n) {
			// Everything from here is the start of a frame; keep any
			// octets already received beyond the alignment pattern.
			d.aligned = true
			d.ResyncCount++
			return
		}
		// Slide by one octet.
		d.buf = d.buf[1:]
	}
}

func matchAlignment(p []byte, n int) bool {
	for i := 0; i < 3*n; i++ {
		if p[i] != A1 {
			return false
		}
	}
	for i := 3 * n; i < 6*n; i++ {
		if p[i] != A2 {
			return false
		}
	}
	return true
}

// frame processes one frame-time of octets at the assumed alignment.
func (d *Deframer) frame(raw []byte) {
	n := int(d.Level)
	row := colsPerSTM1 * n
	soh := sohCols * n
	alignOK := matchAlignment(raw, n)

	frame := append([]byte(nil), raw...)
	d.scr.Reset()
	d.scr.Apply(frame[soh:])

	// Parity checks against the previous frame. B1/B3 watch the section
	// and path; B2 watches the line and is what SD/SF declaration
	// integrates, feeding the APS SF/SD switch triggers.
	parityErr, lineErr := false, false
	if d.havePrev {
		wantB1 := bip8(d.prevFrame)
		if frame[row+0] != wantB1 { // row 1, first overhead byte
			d.B1Errors++
			parityErr = true
		}
		if frame[apsRow*row] != d.prevB2 {
			d.B2Errors++
			lineErr = true
		}
		wantB3 := bip8(d.prevPath)
		if frame[2*row+soh] != wantB3 {
			d.B3Errors++
			parityErr = true
		}
	}

	inFrame := alignOK
	if d.Defects != nil {
		inFrame = d.Defects.FrameResultLine(alignOK, parityErr, lineErr)
	}
	if !inFrame {
		// Out of frame: drop back to hunting from the next octet — the
		// true boundary may sit inside this very frame after a slip.
		d.aligned = false
		d.havePrev = false
		d.buf = append([]byte(nil), raw[1:]...)
		d.hunt()
		return
	}

	// APS signalling: K1/K2 from the line overhead, gated by the
	// persistence filter.
	d.observeAPS(frame[apsRow*row+1], frame[apsRow*row+2])

	if d.OnFrame != nil {
		d.OnFrame()
	}

	// Extract POH column + payload.
	var path []byte
	for r := 0; r < rows; r++ {
		base := r * row
		path = append(path, frame[base+soh:base+row]...)
		for c := soh + 1; c < row; c++ {
			if d.Emit != nil {
				d.Emit(frame[base+c])
			}
		}
	}
	d.prevPath = path
	d.prevFrame = append(d.prevFrame[:0], raw...)
	d.prevB2 = bip8(frame[lineStart(d.Level):])
	d.havePrev = true
	if alignOK {
		d.FramesOK++
	} else {
		d.FramesErrored++
	}
}

// observeAPS runs the K1/K2 persistence filter over one frame's bytes.
func (d *Deframer) observeAPS(k1, k2 byte) {
	if k1 == d.k1Cand && k2 == d.k2Cand {
		if d.apsRun < apsAcceptFrames {
			d.apsRun++
		}
	} else {
		d.k1Cand, d.k2Cand = k1, k2
		d.apsRun = 1
	}
	if d.apsRun < apsAcceptFrames {
		return
	}
	if d.apsValid && k1 == d.apsK1 && k2 == d.apsK2 {
		return
	}
	d.apsK1, d.apsK2 = k1, k2
	d.apsValid = true
	d.APSAccepts++
	if d.OnAPS != nil {
		d.OnAPS(k1, k2)
	}
}
