package sonet

import (
	"testing"

	"repro/internal/fault"
)

// FuzzDeframer must survive arbitrary line garbage in any chunking and
// still re-acquire alignment on subsequent clean frames. The defect
// hysteresis integrates several errored framing patterns before
// re-hunting, so recovery is given a dozen clean frames.
func FuzzDeframer(f *testing.F) {
	f.Add([]byte{0xF6, 0xF6, 0xF6, 0x28, 0x28, 0x28})
	f.Add(make([]byte, 300))
	f.Fuzz(func(t *testing.T, garbage []byte) {
		df := NewDeframer(STM1, nil)
		df.Feed(garbage)
		fr := NewFramer(STM1, func() (byte, bool) { return 0x42, true })
		before := df.FramesOK
		for i := 0; i < 12; i++ {
			df.Feed(fr.NextFrame())
		}
		if df.FramesOK < before+2 {
			t.Fatalf("did not recover after garbage: %d frames", df.FramesOK-before)
		}
	})
}

// FuzzDeframerByteSlip injects byte insert/delete slips at arbitrary
// offsets so the corpus exercises descrambler realignment and the OOF
// integration, not just in-place corruption: whatever the slip, a run
// of clean frames must always bring the deframer back in frame with no
// latched defects.
func FuzzDeframerByteSlip(f *testing.F) {
	f.Add(uint32(100), true, byte(0))
	f.Add(uint32(2430), false, byte(0xF6))
	f.Add(uint32(7), false, byte(0x28))
	f.Fuzz(func(t *testing.T, at uint32, del bool, ins byte) {
		fr := NewFramer(STM1, func() (byte, bool) { return 0x42, true })
		df := NewDeframer(STM1, nil)

		// Two clean frames, then a slip somewhere in the next three.
		span := int64(3 * STM1.FrameBytes())
		var script fault.Script
		if del {
			script.Delete(int64(at)%span, 1)
		} else {
			script.Insert(int64(at)%span, ins)
		}
		inj := fault.NewInjector(script)
		for i := 0; i < 2; i++ {
			df.Feed(fr.NextFrame())
		}
		for i := 0; i < 3; i++ {
			df.Feed(inj.Apply(fr.NextFrame()))
		}
		before := df.FramesOK
		for i := 0; i < 14; i++ {
			df.Feed(fr.NextFrame())
		}
		if df.FramesOK < before+2 {
			t.Fatalf("did not recover after slip: %d frames", df.FramesOK-before)
		}
		if !df.Aligned() {
			t.Fatal("not aligned after clean tail")
		}
		if d := df.Defects.Active() & (DefOOF | DefLOF | DefLOS); d != 0 {
			t.Fatalf("defects latched after recovery: %v", d)
		}
	})
}
