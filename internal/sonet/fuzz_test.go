package sonet

import "testing"

// FuzzDeframer must survive arbitrary line garbage in any chunking and
// still re-acquire alignment on a subsequent clean frame.
func FuzzDeframer(f *testing.F) {
	f.Add([]byte{0xF6, 0xF6, 0xF6, 0x28, 0x28, 0x28})
	f.Add(make([]byte, 300))
	f.Fuzz(func(t *testing.T, garbage []byte) {
		df := NewDeframer(STM1, nil)
		df.Feed(garbage)
		fr := NewFramer(STM1, func() (byte, bool) { return 0x42, true })
		before := df.FramesOK
		for i := 0; i < 4; i++ {
			df.Feed(fr.NextFrame())
		}
		if df.FramesOK < before+2 {
			t.Fatalf("did not recover after garbage: %d frames", df.FramesOK-before)
		}
	})
}
