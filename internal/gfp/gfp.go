// Package gfp implements the core of the Generic Framing Procedure
// (ITU-T G.7041), the length/HEC-delineated alternative to HDLC
// flag/stuffing framing. The paper's authors' follow-up work
// ("Investigation into Programmability for Layer 2 Protocol Frame
// Delineation Architectures") compares exactly these two delineation
// families: HDLC's per-octet stuffing makes line overhead depend on
// payload content (up to 2×), while GFP pays a fixed 8-octet header
// whatever the payload — the trade quantified in experiment E15.
//
// Implemented: the 4-octet core header (16-bit PLI + CRC-16 cHEC), the
// type header with tHEC, idle frames, the HUNT→PRESYNC→SYNC delineation
// state machine of G.7041 §6.3, and single-bit error correction of the
// core header in SYNC state. The x^43+1 payload self-synchronous
// scrambler is omitted (it exists to break long payload runs on optical
// links and does not affect delineation behaviour, which is what the
// comparison needs); the omission is noted in DESIGN.md.
package gfp

import "errors"

// crc16CCITT computes the GFP HEC: CRC-16 with generator
// x^16+x^12+x^5+1, MSB first, zero init, no complement (G.7041 §6.1.2).
func crc16CCITT(p []byte) uint16 {
	var c uint16
	for _, b := range p {
		c ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if c&0x8000 != 0 {
				c = c<<1 ^ 0x1021
			} else {
				c <<= 1
			}
		}
	}
	return c
}

// coreScramble is the Barker-like word XORed over the core header
// (G.7041 §6.1.2.2): it decorrelates the header from payload content so
// the HEC hunt cannot lock onto in-band data — notably the type header,
// which uses the same CRC and would otherwise alias perfectly.
var coreScramble = [4]byte{0xB6, 0xAB, 0x31, 0xE0}

// Header sizes.
const (
	CoreHeaderLen = 4 // PLI(2) + cHEC(2)
	TypeHeaderLen = 4 // type(2) + tHEC(2)
	// Overhead is the fixed per-frame octet cost.
	Overhead = CoreHeaderLen + TypeHeaderLen
)

// MaxPayload bounds the payload (PLI covers type header + payload).
const MaxPayload = 65535 - TypeHeaderLen

// Payload type field values (simplified: client data / client mgmt).
const (
	TypeClientData = 0x1000
	TypeClientMgmt = 0x2000
)

// Errors.
var (
	ErrTooLong = errors.New("gfp: payload exceeds PLI range")
)

// Encode appends one GFP client-data frame carrying payload to dst.
func Encode(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, ErrTooLong
	}
	pli := uint16(len(payload) + TypeHeaderLen)
	hdr := [4]byte{byte(pli >> 8), byte(pli)}
	chec := crc16CCITT(hdr[:2])
	hdr[2], hdr[3] = byte(chec>>8), byte(chec)
	for i := range hdr {
		hdr[i] ^= coreScramble[i]
	}
	dst = append(dst, hdr[:]...)
	dst = append(dst, byte(TypeClientData>>8), byte(TypeClientData&0xFF))
	thec := crc16CCITT(dst[len(dst)-2:])
	dst = append(dst, byte(thec>>8), byte(thec))
	return append(dst, payload...), nil
}

// EncodeIdle appends one 4-octet idle frame (PLI = 0, scrambled).
func EncodeIdle(dst []byte) []byte {
	return append(dst, coreScramble[0], coreScramble[1], coreScramble[2], coreScramble[3])
}

// Delineation states (G.7041 §6.3.1).
type State int

// The three delineation states.
const (
	Hunt State = iota
	Presync
	Sync
)

func (s State) String() string {
	switch s {
	case Hunt:
		return "HUNT"
	case Presync:
		return "PRESYNC"
	default:
		return "SYNC"
	}
}

// Delta is the number of consecutive correct core headers required to
// move from PRESYNC to SYNC.
const Delta = 1

// Deframer is the streaming GFP delineator.
type Deframer struct {
	// Deliver receives each client-data payload.
	Deliver func([]byte)

	state   State
	buf     []byte
	confirm int // correct headers seen in PRESYNC

	// Counters.
	Frames, Idles, Corrected, HECErrors, Hunts uint64
}

// State reports the delineation state.
func (d *Deframer) State() State { return d.state }

// Feed consumes received octets.
func (d *Deframer) Feed(p []byte) {
	d.buf = append(d.buf, p...)
	for d.step() {
	}
}

// step tries to make progress; reports whether more may be possible.
func (d *Deframer) step() bool {
	switch d.state {
	case Hunt:
		// Slide octet by octet until a core header's cHEC matches.
		for len(d.buf) >= CoreHeaderLen {
			if d.coreHeaderOK(false) {
				d.state = Presync
				d.confirm = 0
				return true
			}
			d.buf = d.buf[1:]
		}
		return false
	case Presync, Sync:
		if len(d.buf) < CoreHeaderLen {
			return false
		}
		correctable := d.state == Sync
		if !d.coreHeaderOK(correctable) {
			// Lost delineation.
			d.HECErrors++
			d.state = Hunt
			d.Hunts++
			d.buf = d.buf[1:]
			return true
		}
		pli := int(d.buf[0]^coreScramble[0])<<8 | int(d.buf[1]^coreScramble[1])
		if pli == 0 {
			// Idle frame.
			d.buf = d.buf[CoreHeaderLen:]
			d.Idles++
			d.advanceSync()
			return true
		}
		if len(d.buf) < CoreHeaderLen+pli {
			return false // frame body still arriving
		}
		body := d.buf[CoreHeaderLen : CoreHeaderLen+pli]
		d.buf = d.buf[CoreHeaderLen+pli:]
		d.advanceSync()
		d.frame(body)
		return true
	}
	return false
}

func (d *Deframer) advanceSync() {
	if d.state == Presync {
		d.confirm++
		if d.confirm >= Delta {
			d.state = Sync
		}
	}
}

// coreHeaderOK verifies (and in SYNC state, single-bit-corrects) the
// descrambled core header at the front of the buffer.
func (d *Deframer) coreHeaderOK(correct bool) bool {
	var h [4]byte
	for i := range h {
		h[i] = d.buf[i] ^ coreScramble[i]
	}
	consistent := func() bool {
		return uint16(h[2])<<8|uint16(h[3]) == crc16CCITT(h[:2])
	}
	if consistent() {
		return true
	}
	if !correct {
		return false
	}
	// Single-bit correction: the syndrome of a 1-bit error in the
	// 32-bit header is unique; try all 32 flips (a hardware
	// implementation uses a syndrome LUT — same mathematics).
	for bit := 0; bit < 32; bit++ {
		h[bit/8] ^= 0x80 >> uint(bit%8)
		if consistent() {
			d.buf[bit/8] ^= 0x80 >> uint(bit%8) // repair in place
			d.Corrected++
			return true
		}
		h[bit/8] ^= 0x80 >> uint(bit%8)
	}
	return false
}

// frame validates the type header and delivers client data.
func (d *Deframer) frame(body []byte) {
	if len(body) < TypeHeaderLen {
		d.HECErrors++
		return
	}
	thec := uint16(body[2])<<8 | uint16(body[3])
	if thec != crc16CCITT(body[:2]) {
		d.HECErrors++
		return
	}
	ptype := int(body[0])<<8 | int(body[1])
	d.Frames++
	if ptype == TypeClientData && d.Deliver != nil {
		d.Deliver(body[TypeHeaderLen:])
	}
}

// LineOverhead returns the line octets needed to carry a payload of n
// octets under GFP (fixed) — for the E15 comparison against HDLC's
// content-dependent stuffing.
func LineOverhead(n int) int { return Overhead }
