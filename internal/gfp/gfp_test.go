package gfp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hdlc"
)

func TestCRC16Vector(t *testing.T) {
	// CRC-16/XMODEM (same generator, zero init, MSB first) of
	// "123456789" is 0x31C3.
	if got := crc16CCITT([]byte("123456789")); got != 0x31C3 {
		t.Errorf("crc = %#04x, want 0x31c3", got)
	}
}

func TestEncodeLayout(t *testing.T) {
	out, err := Encode(nil, []byte{0xAA, 0xBB})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != Overhead+2 {
		t.Fatalf("len = %d", len(out))
	}
	// PLI covers type header + payload = 6 (descrambled).
	if out[0]^0xB6 != 0 || out[1]^0xAB != 6 {
		t.Errorf("PLI = % x", out[:2])
	}
	if _, err := Encode(nil, make([]byte, MaxPayload+1)); err != ErrTooLong {
		t.Error("oversize accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var stream []byte
		var want [][]byte
		for _, p := range payloads {
			if len(p) > MaxPayload {
				p = p[:MaxPayload]
			}
			var err error
			stream, err = Encode(stream, p)
			if err != nil {
				return false
			}
			want = append(want, p)
			stream = EncodeIdle(stream) // idle fill between frames
		}
		var got [][]byte
		d := &Deframer{Deliver: func(p []byte) { got = append(got, append([]byte(nil), p...)) }}
		d.Feed(stream)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDelineationFromMidStream(t *testing.T) {
	var stream []byte
	for i := 0; i < 5; i++ {
		stream, _ = Encode(stream, bytes.Repeat([]byte{byte(i)}, 50))
	}
	var got int
	d := &Deframer{Deliver: func([]byte) { got++ }}
	// Join mid-frame: drop the first 17 octets.
	d.Feed(stream[17:])
	if d.State() != Sync {
		t.Fatalf("state = %v", d.State())
	}
	// The partial first frame is unrecoverable; the rest delineate.
	// Hunting may skip into frame 2 depending on where the cHEC
	// coincidence lands, so require at least 3.
	if got < 3 {
		t.Errorf("delivered %d frames after mid-stream join", got)
	}
}

func TestChunkedFeed(t *testing.T) {
	var stream []byte
	for i := 0; i < 8; i++ {
		stream, _ = Encode(stream, bytes.Repeat([]byte{byte(i + 1)}, 33))
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		var got int
		d := &Deframer{Deliver: func([]byte) { got++ }}
		for off := 0; off < len(stream); {
			n := 1 + rng.Intn(11)
			if off+n > len(stream) {
				n = len(stream) - off
			}
			d.Feed(stream[off : off+n])
			off += n
		}
		if got != 8 {
			t.Fatalf("trial %d: %d frames", trial, got)
		}
	}
}

func TestSingleBitCorrectionInSync(t *testing.T) {
	var stream []byte
	for i := 0; i < 4; i++ {
		stream, _ = Encode(stream, bytes.Repeat([]byte{0x55}, 40))
	}
	// Flip one bit in the THIRD frame's core header (deframer is in
	// SYNC by then).
	frameLen := Overhead + 40
	pos := 2 * frameLen // start of frame 3's core header
	stream[pos] ^= 0x04 // PLI high byte bit
	var got int
	d := &Deframer{Deliver: func([]byte) { got++ }}
	d.Feed(stream)
	if got != 4 {
		t.Fatalf("delivered %d/4 with correctable error", got)
	}
	if d.Corrected != 1 {
		t.Errorf("Corrected = %d", d.Corrected)
	}
	if d.State() != Sync {
		t.Errorf("state = %v", d.State())
	}
}

func TestMultiBitHeaderErrorForcesRehunt(t *testing.T) {
	// Zero payloads parse as idle frames during the hunt, so
	// re-acquisition cannot false-lock on payload bytes (a content-
	// dependent hazard that is inherent to HEC delineation — see
	// TestFalseLockOnPayloadStallsHunt).
	var stream []byte
	for i := 0; i < 6; i++ {
		stream, _ = Encode(stream, make([]byte, 40))
	}
	frameLen := Overhead + 40
	pos := 2 * frameLen
	damageUncorrectably(t, stream[pos:pos+CoreHeaderLen])
	var got int
	d := &Deframer{Deliver: func([]byte) { got++ }}
	d.Feed(stream)
	if d.Hunts == 0 {
		t.Error("no re-hunt recorded")
	}
	// Frames before the damage and after re-acquisition arrive; the
	// damaged frame itself is lost.
	if got < 4 {
		t.Errorf("delivered %d/6 around the damage", got)
	}
}

// damageUncorrectably applies a two-bit error to a core header that no
// single-bit "correction" can (mis-)repair — single-bit correction of
// multi-bit errors is a real GFP mis-correction hazard, so the damage
// pattern must be chosen deterministically.
func damageUncorrectably(t *testing.T, hdr []byte) {
	t.Helper()
	consistent := func(h []byte) bool {
		var u [4]byte
		for i := range u {
			u[i] = h[i] ^ coreScramble[i]
		}
		return uint16(u[2])<<8|uint16(u[3]) == crc16CCITT(u[:2])
	}
	correctable := func(h []byte) bool {
		tmp := append([]byte(nil), h...)
		for bit := 0; bit < 32; bit++ {
			tmp[bit/8] ^= 0x80 >> uint(bit%8)
			if consistent(tmp) {
				return true
			}
			tmp[bit/8] ^= 0x80 >> uint(bit%8)
		}
		return false
	}
	for i := 0; i < 32; i++ {
		for j := i + 1; j < 32; j++ {
			hdr[i/8] ^= 0x80 >> uint(i%8)
			hdr[j/8] ^= 0x80 >> uint(j%8)
			if !consistent(hdr) && !correctable(hdr) {
				return
			}
			hdr[i/8] ^= 0x80 >> uint(i%8)
			hdr[j/8] ^= 0x80 >> uint(j%8)
		}
	}
	t.Fatal("no uncorrectable 2-bit pattern found")
}

func TestFalseLockOnPayloadStallsHunt(t *testing.T) {
	// The known weakness of HEC delineation: hunting through payload
	// bytes can false-lock on a coincidental cHEC match whose garbage
	// PLI then swallows line octets until disproven. Verify the
	// deframer survives (re-disproves) when the line keeps flowing.
	var stream []byte
	for i := 0; i < 3; i++ {
		stream, _ = Encode(stream, bytes.Repeat([]byte{0x66}, 40))
	}
	stream[0] ^= 0xFF // destroy the very first header: hunt from octet 0
	var got int
	d := &Deframer{Deliver: func([]byte) { got++ }}
	d.Feed(stream)
	// Keep the line alive with idle fill until delineation recovers.
	for i := 0; i < 20000 && d.State() != Sync; i++ {
		d.Feed(EncodeIdle(nil))
	}
	if d.State() != Sync {
		t.Fatalf("never re-acquired: %v", d.State())
	}
}

func TestCorruptTypeHeaderDropsOnlyThatFrame(t *testing.T) {
	var stream []byte
	for i := 0; i < 3; i++ {
		stream, _ = Encode(stream, []byte{1, 2, 3})
	}
	// Damage frame 2's type header (core header intact: length still
	// delineates).
	frameLen := Overhead + 3
	stream[frameLen+CoreHeaderLen] ^= 0xFF
	var got int
	d := &Deframer{Deliver: func([]byte) { got++ }}
	d.Feed(stream)
	if got != 2 {
		t.Errorf("delivered %d, want 2", got)
	}
	if d.HECErrors == 0 {
		t.Error("tHEC failure not counted")
	}
	if d.State() != Sync {
		t.Errorf("delineation lost: %v", d.State())
	}
}

func TestIdleFramesCounted(t *testing.T) {
	var stream []byte
	stream = EncodeIdle(stream)
	stream = EncodeIdle(stream)
	stream, _ = Encode(stream, []byte{9})
	var got int
	d := &Deframer{Deliver: func([]byte) { got++ }}
	d.Feed(stream)
	if got != 1 || d.Idles != 2 {
		t.Errorf("frames=%d idles=%d", got, d.Idles)
	}
}

// TestOverheadComparisonVsHDLC is experiment E15: GFP's fixed 8-octet
// overhead versus HDLC's content-dependent stuffing. HDLC wins on clean
// payloads (2 flag octets + no stuffing); GFP wins once escape density
// makes stuffing expand the payload by more than the header difference.
func TestOverheadComparisonVsHDLC(t *testing.T) {
	frame := 1500
	hdlcOverhead := func(density float64) float64 {
		// 2 flags + expected stuffing expansion.
		return 2 + density*float64(frame)
	}
	gfpOverhead := float64(Overhead)
	// Crossover density: where stuffing cost exceeds the 6-octet
	// header difference: (8-2)/1500 = 0.4%.
	cross := (gfpOverhead - 2) / float64(frame)
	if hdlcOverhead(cross/2) > gfpOverhead {
		t.Error("HDLC should win below the crossover")
	}
	if hdlcOverhead(cross*2) < gfpOverhead {
		t.Error("GFP should win above the crossover")
	}
	// And the empirical check with the real encoders at 5% density.
	rng := rand.New(rand.NewSource(9))
	payload := make([]byte, frame)
	for i := range payload {
		if rng.Float64() < 0.05 {
			payload[i] = hdlc.Flag
		} else {
			payload[i] = 0x40
		}
	}
	hdlcLine := hdlc.Encode(nil, payload, hdlc.ACCMNone, false)
	gfpLine, _ := Encode(nil, payload)
	if len(gfpLine) >= len(hdlcLine) {
		t.Errorf("at 5%% density GFP (%d) should beat HDLC (%d)", len(gfpLine), len(hdlcLine))
	}
}
