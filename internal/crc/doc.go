// Package crc implements the cyclic-redundancy-check substrate of the P5
// reproduction: the PPP frame check sequences FCS-16 (RFC 1662 §C.2) and
// FCS-32 (RFC 1662 §C.3) in four interchangeable engines.
//
//   - Bitwise: the 1-bit-per-step LFSR reference, used as ground truth.
//   - Table: the byte-at-a-time Sarwate algorithm (the software mirror of
//     the paper's 8-bit CRC unit).
//   - Slicing: slicing-by-4, a fast software path for bulk checks.
//   - Matrix: the paper's parallel CRC core [Pei & Zukowski 1992] — the
//     next CRC state is computed from the current state and W input bits
//     in one step via a GF(2) matrix, exactly the 8×32 (8-bit P5) and
//     32×32 (32-bit P5) parallel matrices of the paper.
//
// All engines operate on the same reflected polynomial conventions PPP
// uses (FCS-16 poly 0x8408, FCS-32 poly 0xEDB88320, init all-ones,
// complemented transmission, magic residues 0xF0B8 / 0xDEBB20E3).
package crc
