package crc_test

import (
	"fmt"

	"repro/internal/crc"
)

// The parallel matrix engine consumes a whole datapath word per step —
// the paper's single-clock-cycle CRC update.
func ExampleNewParallel32() {
	engine := crc.NewParallel32(32) // the 32-bit P5's 32x32 matrix
	fcs := crc.Init32
	// One Step folds four octets ("1234" packed little-endian).
	fcs = engine.Step(fcs, uint64('1')|uint64('2')<<8|uint64('3')<<16|uint64('4')<<24)
	fcs = engine.Update(fcs, []byte("56789"))
	fmt.Printf("%#08x\n", fcs^0xFFFFFFFF)
	// Output:
	// 0xcbf43926
}

// FCS fields append complemented, LSB first, and verify by magic
// residue (RFC 1662).
func ExampleAppendFCS32() {
	frame := crc.AppendFCS32([]byte{0xFF, 0x03, 0x00, 0x21, 0xDE, 0xAD})
	fmt.Println(crc.Check32(frame))
	frame[4] ^= 0x01
	fmt.Println(crc.Check32(frame))
	// Output:
	// true
	// false
}
