package crc

// PPP uses "reflected" CRCs: bits are shifted out least-significant first,
// matching serial HDLC transmission order. All engines in this package use
// the reflected convention throughout, so no bit reversal is ever needed at
// the interfaces.

// Polynomials in reflected form.
const (
	// Poly16 is the reflected CRC-16/X.25 polynomial x^16+x^12+x^5+1
	// used by the PPP 16-bit FCS (RFC 1662 §C.2).
	Poly16 = 0x8408
	// Poly32 is the reflected CRC-32/ISO-HDLC (a.k.a. IEEE 802.3)
	// polynomial used by the PPP 32-bit FCS (RFC 1662 §C.3).
	Poly32 = 0xEDB88320
)

// Initial register values ("all ones", RFC 1662).
const (
	Init16 = uint16(0xFFFF)
	Init32 = uint32(0xFFFFFFFF)
)

// Good final register values. When a receiver runs the CRC over a frame
// including its (complemented) FCS field, the register ends at this magic
// residue iff the frame is intact.
const (
	Good16 = uint16(0xF0B8)
	Good32 = uint32(0xDEBB20E3)
)

// UpdateBit16 advances a 16-bit FCS register by a single input bit
// (0 or 1). This is the serial LFSR ground truth every other engine is
// verified against.
func UpdateBit16(fcs uint16, bit uint16) uint16 {
	if (fcs^bit)&1 != 0 {
		return (fcs >> 1) ^ Poly16
	}
	return fcs >> 1
}

// UpdateBit32 advances a 32-bit FCS register by a single input bit.
func UpdateBit32(fcs uint32, bit uint32) uint32 {
	if (fcs^bit)&1 != 0 {
		return (fcs >> 1) ^ Poly32
	}
	return fcs >> 1
}

// BitwiseByte16 advances a 16-bit FCS by one data byte, LSB first.
func BitwiseByte16(fcs uint16, b byte) uint16 {
	for i := 0; i < 8; i++ {
		fcs = UpdateBit16(fcs, uint16(b>>i)&1)
	}
	return fcs
}

// BitwiseByte32 advances a 32-bit FCS by one data byte, LSB first.
func BitwiseByte32(fcs uint32, b byte) uint32 {
	for i := 0; i < 8; i++ {
		fcs = UpdateBit32(fcs, uint32(b>>i)&1)
	}
	return fcs
}

// Bitwise16 runs the serial reference over p starting from fcs.
func Bitwise16(fcs uint16, p []byte) uint16 {
	for _, b := range p {
		fcs = BitwiseByte16(fcs, b)
	}
	return fcs
}

// Bitwise32 runs the serial reference over p starting from fcs.
func Bitwise32(fcs uint32, p []byte) uint32 {
	for _, b := range p {
		fcs = BitwiseByte32(fcs, b)
	}
	return fcs
}
