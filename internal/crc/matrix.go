package crc

// Matrix-parallel CRC, after T.-B. Pei and C. Zukowski, "High-speed
// parallel CRC circuits in VLSI", IEEE Trans. Comm. 40(4), 1992 — the
// reference the paper cites for its CRC core.
//
// Pushing W input bits through the LFSR is a linear map over GF(2):
//
//	next = Mstate · state  ⊕  Mdata · data
//
// where Mstate is 32×32 and Mdata is 32×W. In hardware each output bit is
// one XOR tree over the state and data bits whose matrix column is set —
// the "8 x 32-bit parallel matrix" (8-bit P5) and "32 x 32-bit parallel
// matrix" (32-bit P5) of the paper. Here the same matrices drive both the
// functional engine and the synthesis-cost model (each matrix row's
// population count sizes its XOR tree).

// Matrix32 is a GF(2) linear map into 32-bit vectors, stored column-major:
// Cols[i] is the 32-bit output contribution of input bit i. Apply XORs the
// columns selected by the input vector.
type Matrix32 struct {
	Cols []uint32
}

// Apply multiplies the matrix by the input vector v (bit i of v selects
// Cols[i]).
func (m Matrix32) Apply(v uint32) uint32 {
	var out uint32
	for i, c := range m.Cols {
		if v>>uint(i)&1 != 0 {
			out ^= c
		}
	}
	return out
}

// Row returns row r as a bitmask over the input bits: bit i is set iff
// input bit i feeds output bit r. This is the fan-in set of the XOR tree
// that computes output bit r in hardware.
func (m Matrix32) Row(r int) uint64 {
	var row uint64
	for i, c := range m.Cols {
		if c>>uint(r)&1 != 0 {
			row |= 1 << uint(i)
		}
	}
	return row
}

// Parallel32 computes a 32-bit FCS W data bits at a time.
type Parallel32 struct {
	w      int      // data bits consumed per step
	mstate Matrix32 // 32 columns
	mdata  Matrix32 // w columns
}

// NewParallel32 builds the W-bit-per-step parallel engine for the FCS-32
// polynomial. W must be a multiple of 8 between 8 and 64. The matrices are
// derived by probing the serial reference with unit vectors, so they are
// correct by construction for any polynomial change.
func NewParallel32(w int) *Parallel32 {
	if w < 1 || w > 64 || (w%8 != 0 && 8%w != 0) {
		panic("crc: parallel width out of range")
	}
	p := &Parallel32{w: w}
	// step runs the serial LFSR for w bits of data over a given state.
	step := func(state uint32, data uint64) uint32 {
		for i := 0; i < w; i++ {
			state = UpdateBit32(state, uint32(data>>uint(i))&1)
		}
		return state
	}
	p.mstate.Cols = make([]uint32, 32)
	for i := 0; i < 32; i++ {
		p.mstate.Cols[i] = step(1<<uint(i), 0)
	}
	p.mdata.Cols = make([]uint32, w)
	for j := 0; j < w; j++ {
		p.mdata.Cols[j] = step(0, 1<<uint(j))
	}
	return p
}

// Width reports the number of data bits consumed per Step.
func (p *Parallel32) Width() int { return p.w }

// Step advances the FCS by one datapath word. Only the low Width() bits of
// data are consumed. This is the single-clock-cycle operation of the
// hardware CRC core.
func (p *Parallel32) Step(fcs uint32, data uint64) uint32 {
	next := p.mstate.Apply(fcs)
	// Apply the data matrix: bit j of data selects mdata.Cols[j].
	for j := 0; j < p.w; j++ {
		if data>>uint(j)&1 != 0 {
			next ^= p.mdata.Cols[j]
		}
	}
	return next
}

// Update runs the engine over p, consuming Width()/8 bytes per step and
// falling back to the Sarwate table for any tail shorter than one word.
// Bytes are packed little-endian into the data word, matching LSB-first
// serial transmission order.
func (p *Parallel32) Update(fcs uint32, buf []byte) uint32 {
	if p.w%8 != 0 {
		// Sub-byte widths step the matrix engine bit by bit.
		for _, b := range buf {
			for i := 0; i < 8; i += p.w {
				fcs = p.Step(fcs, uint64(b>>uint(i)))
			}
		}
		return fcs
	}
	nb := p.w / 8
	for len(buf) >= nb {
		var word uint64
		for k := 0; k < nb; k++ {
			word |= uint64(buf[k]) << uint(8*k)
		}
		fcs = p.Step(fcs, word)
		buf = buf[nb:]
	}
	return Table32(fcs, buf)
}

// StateMatrix returns the state-transition matrix (for inspection and for
// the synthesis cost model).
func (p *Parallel32) StateMatrix() Matrix32 { return p.mstate }

// DataMatrix returns the data-injection matrix.
func (p *Parallel32) DataMatrix() Matrix32 { return p.mdata }

// Compose returns the engine equivalent to running p twice per step,
// i.e. a 2W-bit-per-step engine, computed by matrix composition:
// M2 = M·M, D2 = [M·D | D]. Used to verify the matrix algebra (an 8-bit
// engine composed twice must equal the directly-built 16-bit engine).
func (p *Parallel32) Compose() *Parallel32 {
	if p.w*2 > 64 {
		panic("crc: composed width exceeds 64 bits")
	}
	q := &Parallel32{w: p.w * 2}
	q.mstate.Cols = make([]uint32, 32)
	for i := 0; i < 32; i++ {
		q.mstate.Cols[i] = p.mstate.Apply(p.mstate.Cols[i])
	}
	q.mdata.Cols = make([]uint32, q.w)
	// First (earlier) w data bits pass through the second application of
	// Mstate; the last w bits are injected directly.
	for j := 0; j < p.w; j++ {
		q.mdata.Cols[j] = p.mstate.Apply(p.mdata.Cols[j])
		q.mdata.Cols[p.w+j] = p.mdata.Cols[j]
	}
	return q
}

// Parallel16 is the 16-bit-FCS counterpart of Parallel32.
type Parallel16 struct {
	w      int
	mstate []uint16
	mdata  []uint16
}

// NewParallel16 builds the W-bit-per-step parallel engine for the FCS-16
// polynomial.
func NewParallel16(w int) *Parallel16 {
	if w < 1 || w > 64 || (w%8 != 0 && 8%w != 0) {
		panic("crc: parallel width out of range")
	}
	p := &Parallel16{w: w}
	step := func(state uint16, data uint64) uint16 {
		for i := 0; i < w; i++ {
			state = UpdateBit16(state, uint16(data>>uint(i))&1)
		}
		return state
	}
	p.mstate = make([]uint16, 16)
	for i := 0; i < 16; i++ {
		p.mstate[i] = step(1<<uint(i), 0)
	}
	p.mdata = make([]uint16, w)
	for j := 0; j < w; j++ {
		p.mdata[j] = step(0, 1<<uint(j))
	}
	return p
}

// Width reports the number of data bits consumed per Step.
func (p *Parallel16) Width() int { return p.w }

// Step advances the FCS by one datapath word.
func (p *Parallel16) Step(fcs uint16, data uint64) uint16 {
	var next uint16
	for i := 0; i < 16; i++ {
		if fcs>>uint(i)&1 != 0 {
			next ^= p.mstate[i]
		}
	}
	for j := 0; j < p.w; j++ {
		if data>>uint(j)&1 != 0 {
			next ^= p.mdata[j]
		}
	}
	return next
}

// Update runs the engine over buf with a Sarwate tail.
func (p *Parallel16) Update(fcs uint16, buf []byte) uint16 {
	if p.w%8 != 0 {
		for _, b := range buf {
			for i := 0; i < 8; i += p.w {
				fcs = p.Step(fcs, uint64(b>>uint(i)))
			}
		}
		return fcs
	}
	nb := p.w / 8
	for len(buf) >= nb {
		var word uint64
		for k := 0; k < nb; k++ {
			word |= uint64(buf[k]) << uint(8*k)
		}
		fcs = p.Step(fcs, word)
		buf = buf[nb:]
	}
	return Table16(fcs, buf)
}
