package crc

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

// The FCS-32 polynomial is the same reflected polynomial as stdlib
// crc32.IEEE, so hash/crc32 is an independent oracle.
func stdlibFCS32(p []byte) uint32 {
	return crc32.ChecksumIEEE(p)
}

func TestBitwise32MatchesStdlib(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},
		{0xFF},
		[]byte("123456789"),
		[]byte("The quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte{0x7E}, 100),
	}
	for _, c := range cases {
		got := Bitwise32(Init32, c) ^ 0xFFFFFFFF
		want := stdlibFCS32(c)
		if got != want {
			t.Errorf("Bitwise32(%q) = %#x, want %#x", c, got, want)
		}
	}
}

func TestKnownVectors16(t *testing.T) {
	// CRC-16/X.25 of "123456789" is 0x906E (complemented register).
	got := FCS16([]byte("123456789"))
	if got != 0x906E {
		t.Errorf("FCS16(123456789) = %#x, want 0x906e", got)
	}
}

func TestKnownVectors32(t *testing.T) {
	// CRC-32/ISO-HDLC of "123456789" is 0xCBF43926.
	got := FCS32([]byte("123456789"))
	if got != 0xCBF43926 {
		t.Errorf("FCS32(123456789) = %#x, want 0xcbf43926", got)
	}
}

func TestTableMatchesBitwise(t *testing.T) {
	f := func(p []byte) bool {
		return Table16(Init16, p) == Bitwise16(Init16, p) &&
			Table32(Init32, p) == Bitwise32(Init32, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlicingMatchesTable(t *testing.T) {
	f := func(p []byte) bool {
		return Slicing32(Init32, p) == Table32(Init32, p) &&
			Slicing16(Init16, p) == Table16(Init16, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlicingArbitraryInit(t *testing.T) {
	f := func(init uint32, p []byte) bool {
		return Slicing32(init, p) == Bitwise32(init, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParallel32MatchesReference(t *testing.T) {
	for _, w := range []int{1, 4, 8, 16, 32, 64} {
		p := NewParallel32(w)
		f := func(init uint32, buf []byte) bool {
			return p.Update(init, buf) == Bitwise32(init, buf)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestParallel16MatchesReference(t *testing.T) {
	for _, w := range []int{8, 16, 32} {
		p := NewParallel16(w)
		f := func(init uint16, buf []byte) bool {
			return p.Update(init, buf) == Bitwise16(init, buf)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestParallelStepSingleWord(t *testing.T) {
	// One Step of the 32-bit engine must equal four Sarwate byte steps —
	// the paper's single-clock-cycle claim for the 32x32 matrix.
	p := NewParallel32(32)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		fcs := rng.Uint32()
		var buf [4]byte
		rng.Read(buf[:])
		word := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24
		got := p.Step(fcs, word)
		want := Table32(fcs, buf[:])
		if got != want {
			t.Fatalf("Step(%#x, % x) = %#x, want %#x", fcs, buf, got, want)
		}
	}
}

func TestComposeMatchesDirect(t *testing.T) {
	// 8-bit engine composed = 16-bit engine; 16 composed = 32.
	e8 := NewParallel32(8)
	e16 := NewParallel32(16)
	e32 := NewParallel32(32)
	c16 := e8.Compose()
	c32 := c16.Compose()
	for i := range e16.mstate.Cols {
		if e16.mstate.Cols[i] != c16.mstate.Cols[i] {
			t.Fatalf("composed 16-bit Mstate col %d differs", i)
		}
		if e32.mstate.Cols[i] != c32.mstate.Cols[i] {
			t.Fatalf("composed 32-bit Mstate col %d differs", i)
		}
	}
	for j := range e16.mdata.Cols {
		if e16.mdata.Cols[j] != c16.mdata.Cols[j] {
			t.Fatalf("composed 16-bit Mdata col %d differs", j)
		}
	}
	for j := range e32.mdata.Cols {
		if e32.mdata.Cols[j] != c32.mdata.Cols[j] {
			t.Fatalf("composed 32-bit Mdata col %d differs", j)
		}
	}
}

func TestMatrixRowColumnDuality(t *testing.T) {
	p := NewParallel32(32)
	m := p.DataMatrix()
	for r := 0; r < 32; r++ {
		row := m.Row(r)
		for i, c := range m.Cols {
			inRow := row>>uint(i)&1 != 0
			inCol := c>>uint(r)&1 != 0
			if inRow != inCol {
				t.Fatalf("row/col mismatch at r=%d i=%d", r, i)
			}
		}
	}
}

func TestCheckRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		ok16 := Check16(AppendFCS16(append([]byte(nil), p...)))
		ok32 := Check32(AppendFCS32(append([]byte(nil), p...)))
		return ok16 && ok32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := make([]byte, 4+rng.Intn(64))
		rng.Read(p)
		framed := AppendFCS32(append([]byte(nil), p...))
		pos := rng.Intn(len(framed))
		bit := byte(1) << uint(rng.Intn(8))
		framed[pos] ^= bit
		if Check32(framed) {
			t.Fatalf("single-bit corruption at %d undetected", pos)
		}
	}
}

func TestCheckRejectsShort(t *testing.T) {
	if Check16([]byte{0x01}) || Check32([]byte{0x01, 0x02, 0x03}) {
		t.Error("short frames must fail FCS check")
	}
}

func TestLinearity(t *testing.T) {
	// CRC over XORed messages: crc(a^b) ^ crc(a) ^ crc(b) == crc(0^0...)
	// for equal lengths with zero init — the defining property the matrix
	// engine relies on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		a := make([]byte, n)
		b := make([]byte, n)
		x := make([]byte, n)
		z := make([]byte, n)
		rng.Read(a)
		rng.Read(b)
		for i := range a {
			x[i] = a[i] ^ b[i]
		}
		return Table32(0, x) == Table32(0, a)^Table32(0, b)^Table32(0, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFCSSizeModes(t *testing.T) {
	p := []byte{1, 2, 3, 4, 5}
	for _, s := range []Size{FCS16Mode, FCS32Mode} {
		out := s.Append(append([]byte(nil), p...))
		if len(out) != len(p)+s.Bytes() {
			t.Fatalf("%v: appended %d bytes, want %d", s, len(out)-len(p), s.Bytes())
		}
		if !s.Check(out) {
			t.Fatalf("%v: round trip failed", s)
		}
	}
	if FCS16Mode.String() != "FCS-16" || FCS32Mode.String() != "FCS-32" {
		t.Error("Size.String mismatch")
	}
}

func TestParallelWidthPanics(t *testing.T) {
	for _, f := range []func(){func() { NewParallel32(0) }, func() { NewParallel32(65) },
		func() { NewParallel16(0) }, func() { NewParallel16(65) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range width")
				}
			}()
			f()
		}()
	}
	p := NewParallel32(32)
	p = p.Compose() // 64 is fine
	defer func() {
		if recover() == nil {
			t.Error("expected panic composing past 64 bits")
		}
	}()
	p.Compose()
}

func BenchmarkTable32(b *testing.B) {
	buf := make([]byte, 1500)
	rand.New(rand.NewSource(1)).Read(buf)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		Table32(Init32, buf)
	}
}

func BenchmarkSlicing32(b *testing.B) {
	buf := make([]byte, 1500)
	rand.New(rand.NewSource(1)).Read(buf)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		Slicing32(Init32, buf)
	}
}

func BenchmarkParallel32x32(b *testing.B) {
	p := NewParallel32(32)
	buf := make([]byte, 1500)
	rand.New(rand.NewSource(1)).Read(buf)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		p.Update(Init32, buf)
	}
}
