package crc

// PPP frame-check-sequence helpers (RFC 1662 appendix C). The FCS is
// computed over address, control, protocol and information fields (after
// any header compression, before any byte stuffing), transmitted
// complemented, least-significant byte first.

// FCS16 returns the 16-bit FCS field value (already complemented, ready to
// append LSB-first) for the given frame contents.
func FCS16(p []byte) uint16 {
	return Table16(Init16, p) ^ 0xFFFF
}

// FCS32 returns the 32-bit FCS field value for the given frame contents.
func FCS32(p []byte) uint32 {
	return Slicing32(Init32, p) ^ 0xFFFFFFFF
}

// AppendFCS16 appends the complemented 16-bit FCS to p, LSB first, and
// returns the extended slice.
func AppendFCS16(p []byte) []byte {
	f := FCS16(p)
	return append(p, byte(f), byte(f>>8))
}

// AppendFCS32 appends the complemented 32-bit FCS to p, LSB first.
func AppendFCS32(p []byte) []byte {
	f := FCS32(p)
	return append(p, byte(f), byte(f>>8), byte(f>>16), byte(f>>24))
}

// Check16 reports whether p — a frame body including its trailing 2-byte
// FCS — is intact: the register over the whole thing must land on the
// magic residue Good16.
func Check16(p []byte) bool {
	return len(p) >= 2 && Table16(Init16, p) == Good16
}

// Check32 reports whether p — a frame body including its trailing 4-byte
// FCS — is intact.
func Check32(p []byte) bool {
	return len(p) >= 4 && Slicing32(Init32, p) == Good32
}

// Size is the FCS mode used on a link.
type Size int

// FCS modes negotiable on a PPP link. The paper's P5 "incorporates 32-bit
// CRC checking" but the OAM register map keeps the mode programmable.
const (
	FCS16Mode Size = 2 // 16-bit FCS, 2 octets on the wire
	FCS32Mode Size = 4 // 32-bit FCS, 4 octets on the wire
)

// Bytes returns the on-the-wire size of the FCS field in octets.
func (s Size) Bytes() int { return int(s) }

// Init returns the initial register value for streaming computation in
// this mode, widened to 32 bits (the FCS16 register lives in the low
// half). Thread the value through Update and finish with AppendFinish —
// the streaming interface the fused stuff-and-CRC transmit kernel uses.
func (s Size) Init() uint32 {
	if s == FCS16Mode {
		return uint32(Init16)
	}
	return Init32
}

// Update folds p into a streaming register started by Init.
func (s Size) Update(fcs uint32, p []byte) uint32 {
	if s == FCS16Mode {
		return uint32(Slicing16(uint16(fcs), p))
	}
	return Slicing32(fcs, p)
}

// UpdateByte folds a single octet into a streaming register.
func (s Size) UpdateByte(fcs uint32, b byte) uint32 {
	if s == FCS16Mode {
		return uint32(TableByte16(uint16(fcs), b))
	}
	return TableByte32(fcs, b)
}

// Finish complements a streaming register into the on-the-wire FCS
// field value (append LSB first).
func (s Size) Finish(fcs uint32) uint32 {
	if s == FCS16Mode {
		return uint32(uint16(fcs) ^ 0xFFFF)
	}
	return fcs ^ 0xFFFFFFFF
}

// ResidueOK reports whether a streaming register (started by Init and
// fed every frame octet including the trailing FCS field) landed on the
// mode's magic residue — the fused receive-side equivalent of Check,
// for callers that fold the CRC during destuffing instead of making a
// second pass over the assembled body.
func (s Size) ResidueOK(fcs uint32) bool {
	if s == FCS16Mode {
		return uint16(fcs) == Good16
	}
	return fcs == Good32
}

// Append appends the FCS of the selected size to p.
func (s Size) Append(p []byte) []byte {
	if s == FCS16Mode {
		return AppendFCS16(p)
	}
	return AppendFCS32(p)
}

// Check verifies a frame body (including trailing FCS) in the selected
// mode.
func (s Size) Check(p []byte) bool {
	if s == FCS16Mode {
		return Check16(p)
	}
	return Check32(p)
}

func (s Size) String() string {
	if s == FCS16Mode {
		return "FCS-16"
	}
	return "FCS-32"
}
