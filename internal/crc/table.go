package crc

import "encoding/binary"

// Sarwate byte-at-a-time tables, built once at package init from the
// bitwise reference. These are the software mirror of a classic 8-bit
// serial-in CRC unit: one table lookup consumes 8 input bits per step.

var (
	table16 [256]uint16
	table32 [256]uint32

	// slice32 holds slicing-by-8 tables: slice32[0] is the plain Sarwate
	// table, slice32[k][b] is the CRC contribution of byte b placed k
	// bytes earlier in the stream.
	slice32 [8][256]uint32
	slice16 [2][256]uint16
)

func init() {
	for i := 0; i < 256; i++ {
		c := uint16(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ Poly16
			} else {
				c >>= 1
			}
		}
		table16[i] = c
	}
	for i := 0; i < 256; i++ {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ Poly32
			} else {
				c >>= 1
			}
		}
		table32[i] = c
	}
	slice32[0] = table32
	for k := 1; k < 8; k++ {
		for i := 0; i < 256; i++ {
			c := slice32[k-1][i]
			slice32[k][i] = (c >> 8) ^ table32[byte(c)]
		}
	}
	slice16[0] = table16
	for i := 0; i < 256; i++ {
		c := slice16[0][i]
		slice16[1][i] = (c >> 8) ^ table16[byte(c)]
	}
}

// TableByte16 advances a 16-bit FCS by one byte using the Sarwate table.
func TableByte16(fcs uint16, b byte) uint16 {
	return (fcs >> 8) ^ table16[byte(fcs)^b]
}

// TableByte32 advances a 32-bit FCS by one byte using the Sarwate table.
func TableByte32(fcs uint32, b byte) uint32 {
	return (fcs >> 8) ^ table32[byte(fcs)^b]
}

// Table16 runs the Sarwate engine over p.
func Table16(fcs uint16, p []byte) uint16 {
	for _, b := range p {
		fcs = TableByte16(fcs, b)
	}
	return fcs
}

// Table32 runs the Sarwate engine over p.
func Table32(fcs uint32, p []byte) uint32 {
	for _, b := range p {
		fcs = TableByte32(fcs, b)
	}
	return fcs
}

// Slicing32 runs slicing-by-8 over p: eight input bytes are folded into
// the register per step, the bulk software analog of the paper's
// parallel-CRC datapath widened to the machine word.
func Slicing32(fcs uint32, p []byte) uint32 {
	for len(p) >= 8 {
		q := binary.LittleEndian.Uint64(p)
		lo := fcs ^ uint32(q)
		hi := uint32(q >> 32)
		fcs = slice32[7][byte(lo)] ^
			slice32[6][byte(lo>>8)] ^
			slice32[5][byte(lo>>16)] ^
			slice32[4][byte(lo>>24)] ^
			slice32[3][byte(hi)] ^
			slice32[2][byte(hi>>8)] ^
			slice32[1][byte(hi>>16)] ^
			slice32[0][byte(hi>>24)]
		p = p[8:]
	}
	if len(p) >= 4 {
		fcs ^= uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
		fcs = slice32[3][byte(fcs)] ^
			slice32[2][byte(fcs>>8)] ^
			slice32[1][byte(fcs>>16)] ^
			slice32[0][byte(fcs>>24)]
		p = p[4:]
	}
	return Table32(fcs, p)
}

// Slicing16 runs slicing-by-2 over p.
func Slicing16(fcs uint16, p []byte) uint16 {
	for len(p) >= 2 {
		fcs ^= uint16(p[0]) | uint16(p[1])<<8
		fcs = slice16[1][byte(fcs)] ^ slice16[0][byte(fcs>>8)]
		p = p[2:]
	}
	return Table16(fcs, p)
}
