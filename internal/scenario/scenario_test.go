package scenario

import (
	"strings"
	"testing"
)

func TestParseValidation(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Name:     "x",
			Ring:     RingSpec{Nodes: 4},
			Circuits: []CircuitSpec{{Name: "c0", A: 0, B: 2, Slot: 0}},
			Duration: 100,
		}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"ok", func(*Scenario) {}, ""},
		{"no name", func(s *Scenario) { s.Name = "" }, "missing name"},
		{"bad mode", func(s *Scenario) { s.Ring.Mode = "ulsr" }, "unknown ring mode"},
		{"bad size", func(s *Scenario) { s.Ring.Nodes = 1 }, "outside 2..16"},
		{"no duration", func(s *Scenario) { s.Duration = 0 }, "duration"},
		{"no circuits", func(s *Scenario) { s.Circuits = nil }, "no circuits"},
		{"dup circuit", func(s *Scenario) {
			s.Circuits = append(s.Circuits, CircuitSpec{Name: "c0", A: 1, B: 3, Slot: 1})
		}, "duplicate circuit"},
		{"bad mix", func(s *Scenario) { s.Traffic.Mix = "elephant" }, "unknown traffic mix"},
		{"bad fixed", func(s *Scenario) { s.Traffic.Mix = "fixed:4" }, "bad traffic mix"},
		{"event too late", func(s *Scenario) {
			s.Events = []Event{{At: 100, Action: "cut", Between: [2]int{0, 1}}}
		}, "outside 0..99"},
		{"cut non-adjacent", func(s *Scenario) {
			s.Events = []Event{{At: 1, Action: "cut", Between: [2]int{0, 2}}}
		}, "non-adjacent"},
		{"noise bad rate", func(s *Scenario) {
			s.Events = []Event{{At: 1, Action: "noise", Between: [2]int{0, 1}, Rate: 0.9}}
		}, "noise rate"},
		{"bad node", func(s *Scenario) {
			s.Events = []Event{{At: 1, Action: "node-fail", Node: 9}}
		}, "references node"},
		{"bad action", func(s *Scenario) {
			s.Events = []Event{{At: 1, Action: "meteor"}}
		}, "unknown action"},
		{"unknown assert circuit", func(s *Scenario) {
			s.Assert.Circuits = []CircuitAssert{{Circuit: "ghost"}}
		}, "unknown circuit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := base()
			c.mut(s)
			err := s.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestTrafficDist(t *testing.T) {
	for _, mix := range []string{"", "imix", "fixed:64", "uniform:40:1500"} {
		if _, _, err := (TrafficSpec{Mix: mix}).dist(); err != nil {
			t.Errorf("mix %q rejected: %v", mix, err)
		}
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	d := mkDatagram(1, 0, 12345, 576)
	if len(d) != 576 || d[0] != 0x45 {
		t.Fatalf("datagram = %d bytes, first %#x", len(d), d[0])
	}
	ep := &endpoint{expect: map[uint32][]byte{12345: d}}
	ep.verify(append([]byte(nil), d...))
	if ep.recv != 1 || ep.corrupt != 0 {
		t.Fatalf("clean verify: recv=%d corrupt=%d", ep.recv, ep.corrupt)
	}
	// Same datagram again: seq no longer outstanding → corrupt.
	ep.verify(d)
	if ep.corrupt != 1 {
		t.Fatalf("duplicate not flagged: corrupt=%d", ep.corrupt)
	}
	// Damaged payload with a known seq.
	d2 := mkDatagram(1, 0, 7, 64)
	ep.expect[7] = d2
	bad := append([]byte(nil), d2...)
	bad[20] ^= 0x40
	ep.verify(bad)
	if ep.corrupt != 2 {
		t.Fatalf("damaged payload not flagged: corrupt=%d", ep.corrupt)
	}
}

// TestFailureProducesCaptures runs a drill whose assertion cannot hold
// and checks the report points at .p5fr capture files — the ergonomics
// satellite: a failed drill must name its black boxes.
func TestFailureProducesCaptures(t *testing.T) {
	zero := uint64(0)
	s := &Scenario{
		Name:     "impossible",
		Ring:     RingSpec{Nodes: 4},
		Circuits: []CircuitSpec{{Name: "c0", A: 0, B: 2, Slot: 0}},
		Duration: 600,
		Events:   []Event{{At: 100, Action: "cut", Between: [2]int{0, 1}}},
		Assert: Assertions{Circuits: []CircuitAssert{
			// A cut always moves the selector once; demanding zero must fail.
			{Circuit: "c0", Switches: &zero},
		}},
	}
	res, err := s.Run(RunConfig{CaptureDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("impossible assertion passed")
	}
	if len(res.Failures) == 0 {
		t.Fatal("no failures reported")
	}
	if len(res.CapturePaths) == 0 {
		t.Fatal("failing drill produced no capture paths")
	}
	found := false
	for _, p := range res.CapturePaths {
		if strings.Contains(p, "scenario-fail") && strings.HasSuffix(p, ".p5fr") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no scenario-fail capture among %v", res.CapturePaths)
	}
}
