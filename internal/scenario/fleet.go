package scenario

import (
	"fmt"

	"repro/internal/obsnet"
)

// FleetSpec extends a drill with distributed SLO assertions: after the
// in-process ring drill, the listed live p5sim instances are scraped
// (/metrics + /status) and graded as one deployment. This is how a
// committed scenario file asserts on a multi-process topology — version
// skew, per-line one-way latency, fleet-wide burn rates — without
// bespoke shell glue.
type FleetSpec struct {
	// Instances are the telemetry addresses (host:port or URL) to
	// scrape.
	Instances []string `json:"instances"`
	// Assert holds the fleet-wide gates; absent fields are unchecked.
	Assert FleetAssert `json:"assert"`
}

// FleetAssert grades the scraped fleet. All checks span every instance.
type FleetAssert struct {
	// RequireUp demands every scraped transport report Up.
	RequireUp *bool `json:"require_up,omitempty"`
	// MaxOneWayP99US bounds each line's one-way latency p99 (lines with
	// no samples yet are skipped — an idle line is not a latency breach).
	MaxOneWayP99US *int64 `json:"max_oneway_p99_us,omitempty"`
	// MaxWorstBurn bounds every instance's slo_worst_burn_rate series.
	MaxWorstBurn *float64 `json:"max_worst_burn,omitempty"`
	// SameWireVersion demands all instances speak one P5LT version.
	SameWireVersion *bool `json:"same_wire_version,omitempty"`
}

// Count reports how many individual checks the fleet block holds.
func (f *FleetSpec) Count() int {
	if f == nil {
		return 0
	}
	n := 0
	for _, set := range []bool{
		f.Assert.RequireUp != nil, f.Assert.MaxOneWayP99US != nil,
		f.Assert.MaxWorstBurn != nil, f.Assert.SameWireVersion != nil,
	} {
		if set {
			n++
		}
	}
	return n
}

// GradeFleet scrapes the fleet block's instances and evaluates its
// assertions, returning one Failure per violation (Circuit carries the
// instance address). An unreachable instance fails every run — a
// distributed drill cannot pass blind.
func (s *Scenario) GradeFleet() []Failure {
	if s.Fleet == nil {
		return nil
	}
	return s.Fleet.grade(obsnet.ScrapeAll(s.Fleet.Instances))
}

// grade is the scrape-free core of GradeFleet, separated so tests can
// feed synthetic instances.
func (f *FleetSpec) grade(instances []obsnet.Instance) []Failure {
	var fails []Failure
	fail := func(instance, format string, args ...any) {
		fails = append(fails, Failure{Circuit: instance, Msg: fmt.Sprintf(format, args...)})
	}
	versions := map[int]bool{}
	for _, in := range instances {
		if in.Err != nil {
			fail(in.Addr, "fleet scrape failed: %v", in.Err)
			continue
		}
		versions[in.Status.Info.WireVersion] = true
		for _, t := range in.Status.Transports {
			if f.Assert.RequireUp != nil && *f.Assert.RequireUp && !t.Up {
				fail(in.Addr, "line %s is down", t.Name)
			}
			if f.Assert.MaxOneWayP99US != nil && t.Latency != nil && t.Latency.Samples > 0 &&
				t.Latency.OneWayP99US > *f.Assert.MaxOneWayP99US {
				fail(in.Addr, "line %s one-way p99 = %dµs, want ≤ %dµs",
					t.Name, t.Latency.OneWayP99US, *f.Assert.MaxOneWayP99US)
			}
		}
		if f.Assert.MaxWorstBurn != nil {
			for _, sr := range in.Series {
				if sr.Name == "slo_worst_burn_rate" && sr.Value > *f.Assert.MaxWorstBurn {
					fail(in.Addr, "slo %s worst burn = %.2f, want ≤ %.2f",
						sr.Label("slo"), sr.Value, *f.Assert.MaxWorstBurn)
				}
			}
		}
	}
	if f.Assert.SameWireVersion != nil && *f.Assert.SameWireVersion && len(versions) > 1 {
		fail("", "wire version skew: %d distinct versions across the fleet", len(versions))
	}
	return fails
}
