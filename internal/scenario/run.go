package scenario

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	gigapos "repro"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// RunConfig parameterises one execution of a scenario.
type RunConfig struct {
	// CaptureDir receives .p5fr flight captures ("" keeps captures in
	// memory only — failure reports then cannot point at files).
	CaptureDir string
}

// Result is the graded outcome of a run.
type Result struct {
	Scenario     string
	Pass         bool
	Failures     []Failure
	Circuits     []CircuitReport
	BringUpTicks int64
	Resyncs      uint64 // span alignment reacquisitions after traffic start
	// CapturePaths lists every .p5fr written during the run (failure
	// triggers and protection-switch dumps alike), oldest first.
	CapturePaths []string
	Board        flight.BoardJSON
}

// Failure is one violated assertion.
type Failure struct {
	Circuit string // "" for global assertions
	Msg     string
}

// CircuitReport is the measured behaviour of one circuit.
type CircuitReport struct {
	Name                string
	Sent, Received      int
	Corrupted, Lost     int
	SwitchesA, SwitchesB uint64
	FailoverA, FailoverB int64 // outage healed by the last switch, per end
	RenegA, RenegB       int   // LCP Opened→down edges after bring-up
	DownA, DownB         bool  // squelched at end of run
	AlarmA, AlarmB       bool  // SLO alarm state at end of run
}

// Summary renders a one-line digest for logs.
func (c CircuitReport) Summary() string {
	return fmt.Sprintf("%s: sent=%d recv=%d corrupt=%d lost=%d switches=%d/%d failover=%d/%d reneg=%d/%d down=%v/%v alarm=%v/%v",
		c.Name, c.Sent, c.Received, c.Corrupted, c.Lost,
		c.SwitchesA, c.SwitchesB, c.FailoverA, c.FailoverB,
		c.RenegA, c.RenegB, c.DownA, c.DownB, c.AlarmA, c.AlarmB)
}

// dist decodes the traffic mix specification.
func (t TrafficSpec) dist() (netsim.SizeDist, string, error) {
	mix := t.Mix
	if mix == "" {
		mix = "imix"
	}
	switch {
	case mix == "imix":
		return netsim.IMIX{}, mix, nil
	case strings.HasPrefix(mix, "fixed:"):
		n, err := strconv.Atoi(mix[len("fixed:"):])
		if err != nil || n < 12 {
			return nil, mix, fmt.Errorf("scenario: bad traffic mix %q (want fixed:N, N ≥ 12)", mix)
		}
		return netsim.Fixed(n), mix, nil
	case strings.HasPrefix(mix, "uniform:"):
		parts := strings.Split(mix[len("uniform:"):], ":")
		if len(parts) == 2 {
			lo, err1 := strconv.Atoi(parts[0])
			hi, err2 := strconv.Atoi(parts[1])
			if err1 == nil && err2 == nil && lo >= 12 && hi >= lo {
				return netsim.Uniform{Min: lo, Max: hi}, mix, nil
			}
		}
		return nil, mix, fmt.Errorf("scenario: bad traffic mix %q (want uniform:MIN:MAX)", mix)
	}
	return nil, mix, fmt.Errorf("scenario: unknown traffic mix %q", mix)
}

// endpoint is one side of a circuit under test.
type endpoint struct {
	link *gigapos.RingLink
	rec  *flight.Recorder
	slo  *flight.SLO

	wasOpen bool
	reneg   int

	// Verification state for the traffic arriving here.
	expect map[uint32][]byte // seq -> expected payload
	seq    uint32            // next seq this end will send
	recv   int
	corrupt int
	sent    int
}

// circuitRun is a circuit plus its two endpoints (a at spec.A, b at
// spec.B).
type circuitRun struct {
	spec CircuitSpec
	a, b *endpoint
}

// Run builds the scenario's ring, brings the links up, injects the
// scripted faults under load, and grades the assertions. The error
// return covers only structural problems (bad document, bring-up
// timeout is a Failure, not an error).
func (s *Scenario) Run(rc RunConfig) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	mode, _ := s.Ring.mode()
	ring, err := topo.NewRing(topo.Config{
		Nodes:        s.Ring.Nodes,
		Slots:        s.Ring.Slots,
		Mode:         mode,
		Delay:        s.Ring.Delay,
		Jitter:       s.Ring.Jitter,
		ReorderEvery: s.Ring.ReorderEvery,
		Seed:         s.Ring.Seed,
		WTR:          s.Ring.WTR,
		AISThreshold: s.Ring.AISThreshold,
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Scenario: s.Name}
	reg := telemetry.NewRegistry()
	board := flight.NewBoard()
	sloCfg := flight.SLOConfig{
		Window:              s.SLO.Window,
		FrameLossTarget:     s.SLO.FrameLossTarget,
		P99BudgetTicks:      s.SLO.P99BudgetTicks,
		FailoverBudgetTicks: s.SLO.FailoverBudgetTicks,
		AlarmBurn:           s.SLO.AlarmBurn,
	}
	notePath := func(c *flight.Capture) {
		if c.Path != "" {
			res.CapturePaths = append(res.CapturePaths, c.Path)
		}
	}

	var runs []*circuitRun
	for i, cs := range s.Circuits {
		pa, pb, err := ring.AddCircuit(topo.Circuit{Name: cs.Name, A: cs.A, B: cs.B, Slot: cs.Slot})
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		mk := func(port *topo.Port, sub string, magic uint32, ip byte) *endpoint {
			cfg := gigapos.LinkConfig{
				Magic:         magic,
				IPAddr:        [4]byte{10, byte(i), 0, ip},
				Supervise:     s.Links.Supervise,
				RestartPeriod: s.Links.RestartPeriod,
			}
			ep := &endpoint{
				link:   gigapos.NewRingLink(cfg, port),
				expect: make(map[uint32][]byte),
			}
			ep.rec = flight.NewRecorder(reg, cs.Name+"_"+sub, flight.Config{Dir: rc.CaptureDir})
			ep.rec.OnCapture = notePath
			ep.link.ArmFlight(ep.rec)
			board.Attach(ep.rec)
			return ep
		}
		cr := &circuitRun{
			spec: cs,
			a:    mk(pa, "a", 0xA0000000+uint32(i)*2, 1),
			b:    mk(pb, "b", 0xB0000000+uint32(i)*2, 2),
		}
		gigapos.JoinFlight(cr.a.link.Link, cr.b.link.Link)
		cr.a.slo = cr.a.link.FlightSLO(reg, cs.Name+"_a", sloCfg)
		cr.b.slo = cr.b.link.FlightSLO(reg, cs.Name+"_b", sloCfg)
		board.AttachSLO(cr.a.slo)
		board.AttachSLO(cr.b.slo)
		runs = append(runs, cr)
	}

	// Bring-up: every link must reach the network phase on the clean
	// ring before the chaos starts.
	budget := s.BringUpBudget
	if budget == 0 {
		budget = 4000
	}
	for _, cr := range runs {
		for _, ep := range []*endpoint{cr.a, cr.b} {
			ep.link.Open()
			ep.link.Up()
		}
	}
	now := int64(0)
	ready := false
	for ; now < budget; now++ {
		ring.Tick(now)
		ready = true
		for _, cr := range runs {
			cr.a.link.Advance(now)
			cr.b.link.Advance(now)
			ready = ready && cr.a.link.IPReady() && cr.b.link.IPReady()
		}
		if ready {
			now++
			break
		}
	}
	if !ready {
		res.Failures = append(res.Failures, Failure{Msg: fmt.Sprintf("bring-up: links not IP-ready within %d ticks", budget)})
		s.failCaptures(res, runs)
		res.Board = board.Snapshot()
		return res, nil
	}
	t0 := now
	res.BringUpTicks = t0
	for _, cr := range runs {
		cr.a.wasOpen, cr.b.wasOpen = true, true
	}

	// Compile span impairments into per-span fault scripts anchored at
	// traffic start (the injector position starts at zero when the
	// script is installed, and every span moves one frame per tick).
	fb := int64(ring.Cfg.Level.FrameBytes())
	scripts := map[*topo.Span]*fault.Script{}
	spanScript := func(sp *topo.Span) *fault.Script {
		if scripts[sp] == nil {
			scripts[sp] = &fault.Script{}
		}
		return scripts[sp]
	}
	var actions []Event // node-fail / node-restore, fired at runtime
	for _, e := range s.Events {
		ticks := e.Ticks
		if ticks == 0 {
			ticks = s.Duration - e.At
		}
		switch e.Action {
		case "cut", "noise":
			uv, vu, err := ring.SpansBetween(e.Between[0], e.Between[1])
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
			}
			for si, sp := range []*topo.Span{uv, vu} {
				sc := spanScript(sp)
				if e.Action == "cut" {
					sc.LOS(e.At*fb, int(ticks*fb))
				} else {
					sc.Noise(e.At*fb, int(ticks*fb), e.Rate, e.Seed+uint64(si)+1)
				}
			}
		default:
			actions = append(actions, e)
		}
	}
	for sp, sc := range scripts {
		sort.SliceStable(sc.Ops, func(i, j int) bool { return sc.Ops[i].At < sc.Ops[j].At })
		sp.SetScript(sc)
	}
	sort.SliceStable(actions, func(i, j int) bool { return actions[i].At < actions[j].At })

	resyncBase := sumResyncs(ring)

	// Traffic: a deterministic size mix, both directions of every
	// circuit, payloads sequence-stamped so corruption and loss are
	// separable on receipt.
	dist, _, err := s.Traffic.dist()
	if err != nil {
		return nil, err
	}
	interval := s.Traffic.Interval
	if interval == 0 {
		interval = 2
	}
	drain := s.Traffic.Drain
	if drain == 0 {
		drain = 100
	}
	if drain >= s.Duration {
		drain = s.Duration / 2
	}
	seed := s.Traffic.Seed
	if seed == 0 {
		seed = 1
	}
	sizes := netsim.NewRand(seed)

	nextAction := 0
	var rxScratch []gigapos.Datagram
	for t := int64(0); t < s.Duration; t++ {
		now = t0 + t
		for nextAction < len(actions) && actions[nextAction].At == t {
			e := actions[nextAction]
			nextAction++
			switch e.Action {
			case "node-fail":
				ring.Node(e.Node).Failed = true
			case "node-restore":
				ring.Node(e.Node).Failed = false
			}
		}
		ring.Tick(now)
		for ci, cr := range runs {
			for di, ep := range []*endpoint{cr.a, cr.b} {
				ep.link.Advance(now)
				if open := ep.link.Opened(); ep.wasOpen && !open {
					ep.reneg++
					ep.wasOpen = false
				} else if open {
					ep.wasOpen = true
				}
				// Send toward the peer; the peer's endpoint verifies.
				if t < s.Duration-drain && t%interval == int64((ci+di))%interval {
					peer := cr.b
					if di == 1 {
						peer = cr.a
					}
					d := mkDatagram(byte(ci), byte(di), ep.seq, dist.Next(sizes))
					if err := ep.link.SendIPv4(d); err == nil {
						peer.expect[ep.seq] = d
						ep.seq++
						ep.sent++
					}
				}
				rxScratch = ep.link.ReceivedInto(rxScratch[:0])
				for _, d := range rxScratch {
					ep.verify(d.Payload)
				}
			}
		}
	}

	// Grade the run.
	for _, cr := range runs {
		rep := CircuitReport{
			Name:      cr.spec.Name,
			Sent:      cr.a.sent + cr.b.sent,
			Received:  cr.a.recv + cr.b.recv,
			Corrupted: cr.a.corrupt + cr.b.corrupt,
			Lost:      len(cr.a.expect) + len(cr.b.expect),
			SwitchesA: cr.a.link.Port.Switches,
			SwitchesB: cr.b.link.Port.Switches,
			FailoverA: cr.a.link.Port.LastFailover,
			FailoverB: cr.b.link.Port.LastFailover,
			RenegA:    cr.a.reneg,
			RenegB:    cr.b.reneg,
			DownA:     cr.a.link.Port.Down(),
			DownB:     cr.b.link.Port.Down(),
			AlarmA:    cr.a.slo.Alarmed(),
			AlarmB:    cr.b.slo.Alarmed(),
		}
		res.Circuits = append(res.Circuits, rep)
	}
	res.Resyncs = sumResyncs(ring) - resyncBase
	s.grade(res)
	if len(res.Failures) > 0 {
		s.failCaptures(res, runs)
	}
	res.Pass = len(res.Failures) == 0
	res.Board = board.Snapshot()
	return res, nil
}

// grade evaluates the assertion block against the measured reports.
func (s *Scenario) grade(res *Result) {
	byName := map[string]*CircuitReport{}
	for i := range res.Circuits {
		byName[res.Circuits[i].Name] = &res.Circuits[i]
	}
	fail := func(circuit, format string, args ...any) {
		res.Failures = append(res.Failures, Failure{Circuit: circuit, Msg: fmt.Sprintf(format, args...)})
	}
	for _, a := range s.Assert.Circuits {
		rep := byName[a.Circuit]
		if rep == nil {
			continue // Validate already rejects unknown names
		}
		switches := rep.SwitchesA + rep.SwitchesB
		if a.Switches != nil && switches != *a.Switches {
			fail(a.Circuit, "selector switches = %d, want exactly %d", switches, *a.Switches)
		}
		if a.MaxSwitches != nil && switches > *a.MaxSwitches {
			fail(a.Circuit, "selector switches = %d, want ≤ %d", switches, *a.MaxSwitches)
		}
		if a.MaxFailoverTicks != nil {
			fo := rep.FailoverA
			if rep.FailoverB > fo {
				fo = rep.FailoverB
			}
			if fo > *a.MaxFailoverTicks {
				fail(a.Circuit, "protection switch healed a %d-tick outage, budget %d", fo, *a.MaxFailoverTicks)
			}
		}
		if a.LCPRenegotiations != nil && rep.RenegA+rep.RenegB != *a.LCPRenegotiations {
			fail(a.Circuit, "LCP renegotiations = %d, want %d", rep.RenegA+rep.RenegB, *a.LCPRenegotiations)
		}
		if a.Corrupted != nil && rep.Corrupted != *a.Corrupted {
			fail(a.Circuit, "corrupted datagrams = %d, want %d", rep.Corrupted, *a.Corrupted)
		}
		if a.MinDeliveryRatio != nil {
			ratio := 1.0
			if rep.Sent > 0 {
				ratio = float64(rep.Received) / float64(rep.Sent)
			}
			if ratio < *a.MinDeliveryRatio {
				fail(a.Circuit, "delivery ratio %.3f (%d of %d), want ≥ %.3f", ratio, rep.Received, rep.Sent, *a.MinDeliveryRatio)
			}
		}
		if a.Down != nil {
			down := rep.DownA || rep.DownB
			if down != *a.Down {
				fail(a.Circuit, "squelched = %v (a=%v b=%v), want %v", down, rep.DownA, rep.DownB, *a.Down)
			}
		}
		if a.SLOGreen != nil && *a.SLOGreen && (rep.AlarmA || rep.AlarmB) {
			fail(a.Circuit, "SLO alarm raised (a=%v b=%v), want green", rep.AlarmA, rep.AlarmB)
		}
	}
	if s.Assert.MinResyncs != nil && res.Resyncs < *s.Assert.MinResyncs {
		fail("", "span resyncs = %d, want ≥ %d", res.Resyncs, *s.Assert.MinResyncs)
	}
}

// failCaptures dumps the black box of every failing circuit (or all of
// them for global failures) so the report can point at .p5fr files.
func (s *Scenario) failCaptures(res *Result, runs []*circuitRun) {
	failing := map[string]bool{}
	global := false
	for _, f := range res.Failures {
		if f.Circuit == "" {
			global = true
		} else {
			failing[f.Circuit] = true
		}
	}
	for _, cr := range runs {
		if !global && !failing[cr.spec.Name] {
			continue
		}
		cr.a.rec.Trigger("scenario-fail")
		cr.b.rec.Trigger("scenario-fail")
	}
}

// sumResyncs totals frame-alignment reacquisitions over every span.
func sumResyncs(r *topo.Ring) uint64 {
	var n uint64
	for rot := topo.East; rot <= topo.West; rot++ {
		for i := 0; i < r.Nodes(); i++ {
			n += r.Span(rot, i).Deframer().ResyncCount
		}
	}
	return n
}

// mkDatagram builds a sequence-stamped pseudo-IPv4 datagram: circuit
// and direction tags plus a seq number, then a pattern derived from the
// seq so any delivered corruption is detectable.
func mkDatagram(circuit, dir byte, seq uint32, size int) []byte {
	if size < 12 {
		size = 12
	}
	d := make([]byte, size)
	d[0] = 0x45
	d[1] = circuit
	d[2] = dir
	binary.BigEndian.PutUint32(d[4:8], seq)
	for i := 8; i < size; i++ {
		d[i] = patternByte(seq, i)
	}
	return d
}

func patternByte(seq uint32, i int) byte {
	return byte((uint32(i)*131 + seq*31 + 7) % 251)
}

// verify grades one delivered datagram against the sender's ledger.
func (ep *endpoint) verify(payload []byte) {
	if len(payload) < 8 || payload[0] != 0x45 {
		ep.corrupt++
		return
	}
	seq := binary.BigEndian.Uint32(payload[4:8])
	want, ok := ep.expect[seq]
	if !ok {
		ep.corrupt++ // unknown or duplicate seq: damaged beyond matching
		return
	}
	delete(ep.expect, seq)
	ep.recv++
	if !bytes.Equal(payload, want) {
		ep.corrupt++
	}
}
