// Package scenario is the declarative chaos-drill format: a JSON file
// describes a ring topology, the circuits over it, a traffic mix, a
// script of failures (fibre cuts, noise bursts, node failures) and the
// pass/fail service-level assertions the drill is held to. The runner
// builds the ring from internal/topo, rides a full PPP RingLink pair
// over every circuit, injects the scripted faults, and grades the run
// with the flight-recorder/SLO machinery — so a new failure drill is a
// committed data file, not a bespoke soak test.
//
// Times are virtual ticks (one SONET frame, 125 µs). Event offsets
// count from the end of bring-up ("traffic start"), so a scenario does
// not depend on how long LCP/IPCP negotiation takes on its topology.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/topo"
)

// Scenario is one failure drill, as committed to scenarios/*.json.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	Ring     RingSpec      `json:"ring"`
	Circuits []CircuitSpec `json:"circuits"`
	Links    LinkSpec      `json:"links,omitempty"`
	Traffic  TrafficSpec   `json:"traffic,omitempty"`
	SLO      SLOSpec       `json:"slo,omitempty"`

	// Duration is how long the drill runs after bring-up, in ticks.
	Duration int64 `json:"duration"`
	// BringUpBudget bounds LCP/IPCP negotiation (default 4000 ticks).
	BringUpBudget int64 `json:"bringup_budget,omitempty"`

	Events []Event    `json:"events,omitempty"`
	Assert Assertions `json:"assert"`

	// Fleet, when present, adds distributed SLO assertions graded by
	// scraping live p5sim instances after the drill (fleet.go).
	Fleet *FleetSpec `json:"fleet,omitempty"`
}

// RingSpec parameterises the topo.Ring under the drill.
type RingSpec struct {
	Nodes        int    `json:"nodes"`
	Mode         string `json:"mode"` // "upsr" (default) or "blsr"
	Slots        int    `json:"slots,omitempty"`
	Delay        int64  `json:"delay,omitempty"`
	Jitter       int64  `json:"jitter,omitempty"`
	ReorderEvery int    `json:"reorder_every,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	WTR          int64  `json:"wtr,omitempty"`
	AISThreshold int    `json:"ais_threshold,omitempty"`
}

// Mode decodes the ring protection mode.
func (r RingSpec) mode() (topo.Mode, error) {
	switch r.Mode {
	case "", "upsr":
		return topo.UPSR, nil
	case "blsr":
		return topo.BLSR, nil
	}
	return 0, fmt.Errorf("scenario: unknown ring mode %q", r.Mode)
}

// CircuitSpec provisions one bidirectional circuit with a PPP link
// pair on its endpoints.
type CircuitSpec struct {
	Name string `json:"name"`
	A    int    `json:"a"`
	B    int    `json:"b"`
	Slot int    `json:"slot"`
}

// LinkSpec tunes the PPP endpoints riding the circuits.
type LinkSpec struct {
	// Supervise arms the self-healing supervisor on every endpoint.
	Supervise bool `json:"supervise,omitempty"`
	// RestartPeriod overrides the LCP/IPCP restart timer (default: the
	// ring-aware 64 ticks).
	RestartPeriod int64 `json:"restart_period,omitempty"`
}

// TrafficSpec is the IMIX-style offered load, sent on both directions
// of every circuit.
type TrafficSpec struct {
	// Mix is "imix" (default), "fixed:N", or "uniform:MIN:MAX".
	Mix string `json:"mix,omitempty"`
	// Interval is the ticks between datagrams per direction (default 2).
	Interval int64 `json:"interval,omitempty"`
	// Seed drives the size draws (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Drain stops the senders this many ticks before the end so
	// in-flight datagrams settle (default 100).
	Drain int64 `json:"drain,omitempty"`
}

// SLOSpec maps onto flight.SLOConfig; zero fields keep the repo
// defaults.
type SLOSpec struct {
	Window              int64   `json:"window,omitempty"`
	FrameLossTarget     float64 `json:"loss_target,omitempty"`
	P99BudgetTicks      int64   `json:"p99_budget_ticks,omitempty"`
	FailoverBudgetTicks int64   `json:"failover_budget_ticks,omitempty"`
	AlarmBurn           float64 `json:"alarm_burn,omitempty"`
}

// Event is one scripted action, At ticks after traffic start.
//
//   - "cut":          LOS both directions of the fibre Between, Ticks long
//   - "noise":        seeded bit errors at Rate, both directions, Ticks long
//   - "node-fail":    Node goes dark (processes nothing, fibres unlit)
//   - "node-restore": Node comes back
//
// Ticks 0 means "until the end of the drill".
type Event struct {
	At      int64   `json:"at"`
	Action  string  `json:"action"`
	Between [2]int  `json:"between,omitempty"`
	Ticks   int64   `json:"ticks,omitempty"`
	Rate    float64 `json:"rate,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
	Node    int     `json:"node,omitempty"`
}

// Assertions are the pass/fail gates evaluated when the drill ends.
type Assertions struct {
	Circuits []CircuitAssert `json:"circuits,omitempty"`
	// MinResyncs requires at least this many span frame-alignment
	// reacquisitions after traffic start (resync-under-noise drills).
	MinResyncs *uint64 `json:"min_resyncs,omitempty"`
}

// Count reports how many individual checks the assertion block holds.
func (a Assertions) Count() int {
	n := 0
	if a.MinResyncs != nil {
		n++
	}
	for _, c := range a.Circuits {
		for _, set := range []bool{
			c.Switches != nil, c.MaxSwitches != nil, c.MaxFailoverTicks != nil,
			c.LCPRenegotiations != nil, c.Corrupted != nil,
			c.MinDeliveryRatio != nil, c.Down != nil, c.SLOGreen != nil,
		} {
			if set {
				n++
			}
		}
	}
	return n
}

// CircuitAssert grades one circuit. Absent (null) fields are not
// checked; counters aggregate both endpoints unless noted.
type CircuitAssert struct {
	Circuit string `json:"circuit"`
	// Switches / MaxSwitches bound total path-selector movements.
	Switches    *uint64 `json:"switches,omitempty"`
	MaxSwitches *uint64 `json:"max_switches,omitempty"`
	// MaxFailoverTicks bounds the longest outage a switch healed — the
	// 50 ms GR-253 budget is 400.
	MaxFailoverTicks *int64 `json:"max_failover_ticks,omitempty"`
	// LCPRenegotiations counts LCP Opened→down edges after bring-up
	// (0 = the drill was hitless at the control plane).
	LCPRenegotiations *int `json:"lcp_renegotiations,omitempty"`
	// Corrupted counts delivered datagrams whose payload did not match
	// what was sent (0 = the FCS caught every damaged frame).
	Corrupted *int `json:"corrupted,omitempty"`
	// MinDeliveryRatio is received/sent across both directions.
	MinDeliveryRatio *float64 `json:"min_delivery_ratio,omitempty"`
	// Down asserts the squelch state at the end of the drill (true:
	// the circuit must be dead at one or both ends).
	Down *bool `json:"down,omitempty"`
	// SLOGreen asserts neither endpoint's SLO alarm is raised at the
	// end of the drill.
	SLOGreen *bool `json:"slo_green,omitempty"`
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse decodes and validates a scenario document.
func Parse(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the document for structural errors before any
// hardware is built.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if _, err := s.Ring.mode(); err != nil {
		return err
	}
	if s.Ring.Nodes < 2 || s.Ring.Nodes > 16 {
		return fmt.Errorf("scenario %s: ring.nodes %d outside 2..16", s.Name, s.Ring.Nodes)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %s: duration must be positive", s.Name)
	}
	if len(s.Circuits) == 0 {
		return fmt.Errorf("scenario %s: no circuits", s.Name)
	}
	names := map[string]bool{}
	for _, c := range s.Circuits {
		if c.Name == "" {
			return fmt.Errorf("scenario %s: circuit with no name", s.Name)
		}
		if names[c.Name] {
			return fmt.Errorf("scenario %s: duplicate circuit %q", s.Name, c.Name)
		}
		names[c.Name] = true
	}
	if _, _, err := s.Traffic.dist(); err != nil {
		return err
	}
	for i, e := range s.Events {
		if e.At < 0 || e.At >= s.Duration {
			return fmt.Errorf("scenario %s: event %d at %d outside 0..%d", s.Name, i, e.At, s.Duration-1)
		}
		switch e.Action {
		case "cut":
			if !adjacent(e.Between[0], e.Between[1], s.Ring.Nodes) {
				return fmt.Errorf("scenario %s: event %d cut between non-adjacent nodes %v", s.Name, i, e.Between)
			}
		case "noise":
			if !adjacent(e.Between[0], e.Between[1], s.Ring.Nodes) {
				return fmt.Errorf("scenario %s: event %d noise between non-adjacent nodes %v", s.Name, i, e.Between)
			}
			if e.Rate <= 0 || e.Rate > 0.5 {
				return fmt.Errorf("scenario %s: event %d noise rate %g outside (0, 0.5]", s.Name, i, e.Rate)
			}
		case "node-fail", "node-restore":
			if e.Node < 0 || e.Node >= s.Ring.Nodes {
				return fmt.Errorf("scenario %s: event %d references node %d of %d", s.Name, i, e.Node, s.Ring.Nodes)
			}
		default:
			return fmt.Errorf("scenario %s: event %d has unknown action %q", s.Name, i, e.Action)
		}
	}
	for _, a := range s.Assert.Circuits {
		if !names[a.Circuit] {
			return fmt.Errorf("scenario %s: assertion references unknown circuit %q", s.Name, a.Circuit)
		}
	}
	if s.Fleet != nil && len(s.Fleet.Instances) == 0 {
		return fmt.Errorf("scenario %s: fleet block with no instances", s.Name)
	}
	return nil
}

func adjacent(u, v, n int) bool {
	if u < 0 || v < 0 || u >= n || v >= n {
		return false
	}
	return (u+1)%n == v || (v+1)%n == u
}
