package scenario

import (
	"strings"
	"testing"

	"repro/internal/obsnet"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func fleetInstance(addr string, up bool, p99 int64, wireVersion int, burn float64) obsnet.Instance {
	return obsnet.Instance{
		Addr: addr,
		Series: []telemetry.Series{
			{Name: "slo_worst_burn_rate", Labels: map[string]string{"slo": "default"}, Value: burn},
		},
		Status: transport.StatusDoc{
			Healthy: up,
			Info:    transport.BoardInfo{WireVersion: wireVersion},
			Transports: []transport.TransportStatus{{
				Name:    "port0_a",
				Up:      up,
				Latency: &transport.Latency{Samples: 10, OneWayP99US: p99},
			}},
		},
	}
}

func TestFleetGrade(t *testing.T) {
	up, same := true, true
	maxP99, maxBurn := int64(500), 2.0
	spec := &FleetSpec{
		Instances: []string{"a:1", "b:2"},
		Assert: FleetAssert{
			RequireUp:       &up,
			MaxOneWayP99US:  &maxP99,
			MaxWorstBurn:    &maxBurn,
			SameWireVersion: &same,
		},
	}
	if spec.Count() != 4 {
		t.Fatalf("Count = %d, want 4", spec.Count())
	}

	// A healthy fleet passes clean.
	good := []obsnet.Instance{
		fleetInstance("a:1", true, 120, 2, 0.3),
		fleetInstance("b:2", true, 400, 2, 1.1),
	}
	if fails := spec.grade(good); len(fails) != 0 {
		t.Fatalf("healthy fleet failed: %v", fails)
	}

	// One degraded instance trips every gate it violates.
	bad := []obsnet.Instance{
		fleetInstance("a:1", true, 120, 2, 0.3),
		fleetInstance("b:2", false, 900, 1, 14.5),
	}
	fails := spec.grade(bad)
	var msgs []string
	for _, f := range fails {
		msgs = append(msgs, f.Circuit+": "+f.Msg)
	}
	all := strings.Join(msgs, "\n")
	for _, want := range []string{"is down", "one-way p99 = 900", "worst burn = 14.50", "wire version skew"} {
		if !strings.Contains(all, want) {
			t.Errorf("missing failure %q in:\n%s", want, all)
		}
	}
	if len(fails) != 4 {
		t.Errorf("failures = %d, want 4:\n%s", len(fails), all)
	}
}

func TestFleetGradeUnreachable(t *testing.T) {
	spec := &FleetSpec{Instances: []string{"c:3"}}
	fails := spec.grade([]obsnet.Instance{{Addr: "c:3", Err: errScrape("connection refused")}})
	if len(fails) != 1 || !strings.Contains(fails[0].Msg, "scrape failed") {
		t.Fatalf("unreachable instance: %v", fails)
	}
}

type errScrape string

func (e errScrape) Error() string { return string(e) }

func TestFleetValidation(t *testing.T) {
	doc := `{
		"name": "fleet-drill", "duration": 100,
		"ring": {"nodes": 2},
		"circuits": [{"name": "c0", "a": 0, "b": 1, "slot": 0}],
		"assert": {},
		"fleet": {"instances": ["127.0.0.1:8080"], "assert": {"require_up": true}}
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Fleet == nil || len(s.Fleet.Instances) != 1 || s.Fleet.Assert.RequireUp == nil {
		t.Fatalf("fleet block decoded wrong: %+v", s.Fleet)
	}

	empty := strings.Replace(doc, `["127.0.0.1:8080"]`, `[]`, 1)
	if _, err := Parse([]byte(empty)); err == nil || !strings.Contains(err.Error(), "no instances") {
		t.Fatalf("empty fleet instances accepted: %v", err)
	}
}
