package scenario

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCommittedScenarios is the data-driven chaos suite: every drill
// under scenarios/ must load and pass its own assertions. Adding a new
// failure drill to the repo is adding a JSON file, not a test.
func TestCommittedScenarios(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("found only %d committed scenarios, expected at least 5", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(strings.TrimSuffix(filepath.Base(f), ".json"), func(t *testing.T) {
			t.Parallel()
			s, err := Load(f)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(RunConfig{CaptureDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.Circuits {
				t.Log(c.Summary())
			}
			t.Logf("bring-up %d ticks, %d resyncs", res.BringUpTicks, res.Resyncs)
			if !res.Pass {
				for _, fl := range res.Failures {
					t.Errorf("assertion failed [%s]: %s", fl.Circuit, fl.Msg)
				}
				for _, p := range res.CapturePaths {
					t.Logf("flight capture: %s", p)
				}
			}
		})
	}
}
