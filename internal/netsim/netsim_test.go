package netsim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Error("different seeds identical")
	}
	// Seed zero must not wedge the generator.
	z := NewRand(0)
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Error("zero seed produced zeros")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Error("Intn on non-positive n")
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// Example from RFC 1071 §3: the checksum of this sequence.
	data := []byte{0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7}
	if got := Checksum(data); got != ^uint16(0xDDF2) {
		t.Errorf("checksum = %#x, want %#x", got, ^uint16(0xDDF2))
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := func(totalLen, id uint16, ttl, proto byte, src, dst [4]byte) bool {
		if totalLen < HeaderLen {
			totalLen = HeaderLen
		}
		h := IPv4Header{TotalLen: totalLen, ID: id, TTL: ttl, Protocol: proto, Src: src, Dst: dst}
		b := h.Marshal(nil)
		// pad to TotalLen so the length check passes
		for len(b) < int(totalLen) {
			b = append(b, 0)
		}
		got, ok := ParseIPv4(b)
		return ok && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsCorruptHeader(t *testing.T) {
	h := IPv4Header{TotalLen: 40, TTL: 64, Protocol: ProtoUDP}
	b := h.Marshal(nil)
	b = append(b, make([]byte, 20)...)
	b[8] ^= 0x01 // TTL flip breaks the checksum
	if _, ok := ParseIPv4(b); ok {
		t.Error("corrupt header accepted")
	}
	if _, ok := ParseIPv4([]byte{1, 2, 3}); ok {
		t.Error("short slice accepted")
	}
}

func TestIMIXDistribution(t *testing.T) {
	r := NewRand(1)
	var mix IMIX
	counts := map[int]int{}
	const n = 12000
	for i := 0; i < n; i++ {
		counts[mix.Next(r)]++
	}
	if len(counts) != 3 {
		t.Fatalf("IMIX produced sizes %v", counts)
	}
	// Expect roughly 7:4:1.
	if counts[40] < 6000 || counts[40] > 8000 {
		t.Errorf("40 B count = %d", counts[40])
	}
	if counts[576] < 3200 || counts[576] > 4800 {
		t.Errorf("576 B count = %d", counts[576])
	}
	if counts[1500] < 600 || counts[1500] > 1400 {
		t.Errorf("1500 B count = %d", counts[1500])
	}
}

func TestSizeDists(t *testing.T) {
	r := NewRand(1)
	if Fixed(10).Next(r) != HeaderLen {
		t.Error("Fixed below header size must clamp")
	}
	if Fixed(100).Next(r) != 100 {
		t.Error("Fixed size")
	}
	u := Uniform{Min: 50, Max: 60}
	for i := 0; i < 100; i++ {
		if v := u.Next(r); v < 50 || v > 60 {
			t.Fatalf("Uniform out of range: %d", v)
		}
	}
	if (Uniform{Min: 5, Max: 3}).Next(r) != HeaderLen {
		t.Error("degenerate uniform")
	}
}

func TestGenProducesValidDatagrams(t *testing.T) {
	g := NewGen(3, IMIX{}, 0.1)
	for i := 0; i < 200; i++ {
		d := g.Next()
		h, ok := ParseIPv4(d)
		if !ok {
			t.Fatalf("datagram %d: invalid header", i)
		}
		if int(h.TotalLen) != len(d) {
			t.Fatalf("datagram %d: TotalLen %d != len %d", i, h.TotalLen, len(d))
		}
	}
}

func TestGenEscapeDensity(t *testing.T) {
	for _, density := range []float64{0, 0.25, 1.0} {
		g := NewGen(9, Fixed(1500), density)
		esc, total := 0, 0
		for i := 0; i < 50; i++ {
			d := g.Next()
			for _, b := range d[HeaderLen:] {
				total++
				if b == 0x7E || b == 0x7D {
					esc++
				}
			}
		}
		got := float64(esc) / float64(total)
		if got < density-0.03 || got > density+0.03 {
			t.Errorf("density %v: measured %v", density, got)
		}
	}
}

func TestBurstTotals(t *testing.T) {
	g := NewGen(5, Fixed(100), 0)
	ds := g.Burst(950)
	total := 0
	for _, d := range ds {
		total += len(d)
	}
	if total < 950 || len(ds) != 10 {
		t.Errorf("burst: %d datagrams, %d octets", len(ds), total)
	}
}
