// Package netsim generates the synthetic IP workloads the evaluation
// runs over: IPv4 datagrams with valid headers and checksums, classic
// IMIX size mixes, and payloads with a controlled density of
// flag/escape octets — the one traffic property the P5 datapath is
// sensitive to. All generation is deterministic from a caller seed.
package netsim

import "encoding/binary"

// Rand is a small deterministic xorshift64* generator, so workloads are
// reproducible without importing math/rand state semantics.
type Rand struct{ s uint64 }

// NewRand seeds a generator (seed 0 is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next raw value.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Byte returns a random octet.
func (r *Rand) Byte() byte { return byte(r.Uint64()) }

// IPv4Header is a minimal IPv4 header (no options).
type IPv4Header struct {
	TotalLen uint16
	ID       uint16
	TTL      byte
	Protocol byte
	Src, Dst [4]byte
}

// HeaderLen is the size of an option-less IPv4 header.
const HeaderLen = 20

// Protocol numbers used by the generators.
const (
	ProtoUDP = 17
	ProtoTCP = 6
)

// Marshal appends the 20-byte header with a valid checksum.
func (h *IPv4Header) Marshal(dst []byte) []byte {
	var b [HeaderLen]byte
	b[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	b[8] = h.TTL
	b[9] = h.Protocol
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:]))
	return append(dst, b[:]...)
}

// ParseIPv4 decodes a datagram's header; ok is false on malformed input
// or checksum failure.
func ParseIPv4(p []byte) (h IPv4Header, ok bool) {
	if len(p) < HeaderLen || p[0] != 0x45 {
		return h, false
	}
	if Checksum(p[:HeaderLen]) != 0 {
		return h, false
	}
	h.TotalLen = binary.BigEndian.Uint16(p[2:])
	h.ID = binary.BigEndian.Uint16(p[4:])
	h.TTL = p[8]
	h.Protocol = p[9]
	copy(h.Src[:], p[12:16])
	copy(h.Dst[:], p[16:20])
	return h, int(h.TotalLen) <= len(p)
}

// Checksum computes the Internet checksum (RFC 1071) over p. Computing
// it over a header whose checksum field is correct yields zero.
func Checksum(p []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(p); i += 2 {
		sum += uint32(p[i])<<8 | uint32(p[i+1])
	}
	if len(p)%2 == 1 {
		sum += uint32(p[len(p)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// SizeDist selects datagram sizes.
type SizeDist interface {
	// Next returns the next datagram size in octets (≥ HeaderLen).
	Next(r *Rand) int
}

// Fixed is a constant-size distribution.
type Fixed int

// Next implements SizeDist.
func (f Fixed) Next(*Rand) int {
	if int(f) < HeaderLen {
		return HeaderLen
	}
	return int(f)
}

// IMIX is the classic simple-IMIX mix: 7×40 B, 4×576 B, 1×1500 B.
type IMIX struct{}

// Next implements SizeDist.
func (IMIX) Next(r *Rand) int {
	switch v := r.Intn(12); {
	case v < 7:
		return 40
	case v < 11:
		return 576
	default:
		return 1500
	}
}

// Uniform picks sizes uniformly in [Min, Max].
type Uniform struct{ Min, Max int }

// Next implements SizeDist.
func (u Uniform) Next(r *Rand) int {
	lo := u.Min
	if lo < HeaderLen {
		lo = HeaderLen
	}
	hi := u.Max
	if hi < lo {
		hi = lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Gen produces IPv4 datagrams.
type Gen struct {
	Rand *Rand
	Size SizeDist
	// EscDensity is the probability that a payload octet is a flag or
	// escape character (0 = clean payload, 1 = worst case).
	EscDensity float64

	id uint16
	// Octets counts total generated datagram bytes.
	Octets uint64
	// EscapableOctets counts payload bytes that will need stuffing.
	EscapableOctets uint64
}

// NewGen returns a generator with the given seed, size mix and escape
// density.
func NewGen(seed uint64, size SizeDist, escDensity float64) *Gen {
	return &Gen{Rand: NewRand(seed), Size: size, EscDensity: escDensity}
}

// Next returns one datagram (header + payload).
func (g *Gen) Next() []byte {
	n := g.Size.Next(g.Rand)
	g.id++
	h := IPv4Header{
		TotalLen: uint16(n),
		ID:       g.id,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      [4]byte{10, 0, 0, 1},
		Dst:      [4]byte{10, 0, 0, 2},
	}
	p := h.Marshal(make([]byte, 0, n))
	for len(p) < n {
		var b byte
		if g.EscDensity > 0 && g.Rand.Float64() < g.EscDensity {
			if g.Rand.Intn(2) == 0 {
				b = 0x7E
			} else {
				b = 0x7D
			}
			g.EscapableOctets++
		} else {
			// Avoid accidental escapes so the density is exact.
			for {
				b = g.Rand.Byte()
				if b != 0x7E && b != 0x7D {
					break
				}
			}
		}
		p = append(p, b)
	}
	g.Octets += uint64(len(p))
	return p
}

// Burst returns datagrams totalling at least total octets.
func (g *Gen) Burst(total int) [][]byte {
	var out [][]byte
	n := 0
	for n < total {
		d := g.Next()
		out = append(out, d)
		n += len(d)
	}
	return out
}
