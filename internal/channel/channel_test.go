package channel

import (
	"fmt"
	"testing"

	"repro/internal/crc"
	"repro/internal/netsim"
)

func TestBERRate(t *testing.T) {
	m := &BER{Rate: 0.01, Rand: netsim.NewRand(1)}
	p := make([]byte, 100000)
	flips := m.Apply(p)
	// 800k bits × 1% = 8000 ± a few hundred.
	if flips < 7500 || flips > 8500 {
		t.Errorf("flips = %d, want ≈8000", flips)
	}
	// The flips are recorded in the buffer.
	set := 0
	for _, b := range p {
		for ; b != 0; b &= b - 1 {
			set++
		}
	}
	if set != flips {
		t.Errorf("buffer bits %d != reported %d", set, flips)
	}
}

func TestBEREdgeRates(t *testing.T) {
	m := &BER{Rate: 0, Rand: netsim.NewRand(1)}
	p := make([]byte, 1000)
	if f := m.Apply(p); f != 0 {
		t.Errorf("rate 0 flipped %d bits", f)
	}
	m = &BER{Rate: 1, Rand: netsim.NewRand(1)}
	if f := m.Apply(p); f != 8000 {
		t.Errorf("rate 1 flipped %d bits, want all", f)
	}
	// Very low rate over a short buffer: almost always zero flips, and
	// the skip must carry across calls without overflow.
	m = &BER{Rate: 1e-12, Rand: netsim.NewRand(2)}
	for i := 0; i < 100; i++ {
		m.Apply(p[:8])
	}
}

// TestBERChunkingInvariant: the geometric skip state carries across
// Apply calls, so the same stream split differently sees the same error
// positions.
func TestBERChunkingInvariant(t *testing.T) {
	whole := &BER{Rate: 1e-3, Rand: netsim.NewRand(9)}
	a := make([]byte, 65536)
	whole.Apply(a)

	split := &BER{Rate: 1e-3, Rand: netsim.NewRand(9)}
	b := make([]byte, 65536)
	for off := 0; off < len(b); off += 777 {
		end := off + 777
		if end > len(b) {
			end = len(b)
		}
		split.Apply(b[off:end])
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunking changed error positions at byte %d", i)
		}
	}
}

// TestBERGeometricMatchesNaiveStatistics: both samplers realise the
// same binomial error process.
func TestBERGeometricMatchesNaiveStatistics(t *testing.T) {
	const n = 1 << 20 // bits
	geo := &BER{Rate: 5e-4, Rand: netsim.NewRand(4)}
	fg := geo.Apply(make([]byte, n/8))
	nai := &BER{Rate: 5e-4, Rand: netsim.NewRand(5)}
	fn := nai.applyNaive(make([]byte, n/8))
	want := 5e-4 * n // ≈ 524
	for _, f := range []int{fg, fn} {
		if float64(f) < want*0.8 || float64(f) > want*1.2 {
			t.Errorf("flips = %d, want ≈%.0f", f, want)
		}
	}
}

// BenchmarkBERApply shows the geometric sampler's win at realistic
// optical error rates: naive work is constant per bit; geometric work
// scales with the number of errors.
func BenchmarkBERApply(b *testing.B) {
	buf := make([]byte, 1<<16)
	for _, rate := range []float64{1e-4, 1e-6, 1e-9} {
		b.Run(fmt.Sprintf("geometric/ber=%g", rate), func(b *testing.B) {
			m := &BER{Rate: rate, Rand: netsim.NewRand(1)}
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				m.Apply(buf)
			}
		})
		b.Run(fmt.Sprintf("naive/ber=%g", rate), func(b *testing.B) {
			m := &BER{Rate: rate, Rand: netsim.NewRand(1)}
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				m.applyNaive(buf)
			}
		})
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	m := &GilbertElliott{
		PGoodToBad: 1e-4, PBadToGood: 0.05,
		BERGood: 0, BERBad: 0.3,
		Rand: netsim.NewRand(2),
	}
	p := make([]byte, 200000)
	flips := m.Apply(p)
	if m.Bursts == 0 || flips == 0 {
		t.Fatalf("bursts=%d flips=%d", m.Bursts, flips)
	}
	// Burstiness: mean flips per burst must far exceed what a uniform
	// channel at the same average rate would cluster.
	perBurst := float64(flips) / float64(m.Bursts)
	if perBurst < 3 {
		t.Errorf("flips per burst = %.1f, not bursty", perBurst)
	}
}

func TestBurstAt(t *testing.T) {
	p := make([]byte, 4)
	BurstAt(p, 6, 4) // bits 6..9
	if p[0] != 0xC0 || p[1] != 0x03 {
		t.Errorf("burst = % x", p)
	}
	// Past the end: no panic, truncated.
	BurstAt(p, 30, 10)
}

// TestFCSDetectionExperiment is experiment E14: the paper chooses FCS-32
// "for accuracy purposes". Measure undetected-error rates for both FCS
// sizes under burst errors longer than 16 bits: FCS-16 lets ≈2^-16 of
// them through; FCS-32 catches everything at an observable scale.
func TestFCSDetectionExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical experiment")
	}
	rng := netsim.NewRand(7)
	frame := make([]byte, 64)
	for i := range frame {
		frame[i] = rng.Byte()
	}
	const trials = 300000
	undetected16, undetected32 := 0, 0
	body16 := crc.AppendFCS16(append([]byte(nil), frame...))
	body32 := crc.AppendFCS32(append([]byte(nil), frame...))
	buf := make([]byte, len(body32))
	for i := 0; i < trials; i++ {
		// A burst of 20-40 flipped bits at a random offset: beyond
		// both the FCS-16 and FCS-32 guaranteed burst lengths.
		bits := 20 + rng.Intn(21)
		off := rng.Intn(len(body16)*8 - bits)
		b16 := append(buf[:0], body16...)
		RandomBurstAt(b16, rng, off, bits)
		if crc.Check16(b16) {
			undetected16++
		}
		b32 := append([]byte(nil), body32...)
		off32 := rng.Intn(len(body32)*8 - bits)
		RandomBurstAt(b32, rng, off32, bits)
		if crc.Check32(b32) {
			undetected32++
		}
	}
	// Expected undetected for FCS-16 ≈ trials × 2^-16 ≈ 4.6.
	if undetected16 == 0 {
		t.Errorf("FCS-16 caught all %d bursts; expected ≈%d escapes — experiment insensitive",
			trials, trials>>16)
	}
	if undetected16 > 20 {
		t.Errorf("FCS-16 escapes = %d, implausibly many", undetected16)
	}
	// FCS-32 escape probability ≈ 2^-32: none expected at this scale.
	if undetected32 != 0 {
		t.Errorf("FCS-32 escapes = %d, want 0 at %d trials", undetected32, trials)
	}
	t.Logf("E14: %d bursts → FCS-16 undetected %d (≈%d expected), FCS-32 undetected %d",
		trials, undetected16, trials>>16, undetected32)
}
