package channel

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/netsim"
)

func TestBERRate(t *testing.T) {
	m := &BER{Rate: 0.01, Rand: netsim.NewRand(1)}
	p := make([]byte, 100000)
	flips := m.Apply(p)
	// 800k bits × 1% = 8000 ± a few hundred.
	if flips < 7500 || flips > 8500 {
		t.Errorf("flips = %d, want ≈8000", flips)
	}
	// The flips are recorded in the buffer.
	set := 0
	for _, b := range p {
		for ; b != 0; b &= b - 1 {
			set++
		}
	}
	if set != flips {
		t.Errorf("buffer bits %d != reported %d", set, flips)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	m := &GilbertElliott{
		PGoodToBad: 1e-4, PBadToGood: 0.05,
		BERGood: 0, BERBad: 0.3,
		Rand: netsim.NewRand(2),
	}
	p := make([]byte, 200000)
	flips := m.Apply(p)
	if m.Bursts == 0 || flips == 0 {
		t.Fatalf("bursts=%d flips=%d", m.Bursts, flips)
	}
	// Burstiness: mean flips per burst must far exceed what a uniform
	// channel at the same average rate would cluster.
	perBurst := float64(flips) / float64(m.Bursts)
	if perBurst < 3 {
		t.Errorf("flips per burst = %.1f, not bursty", perBurst)
	}
}

func TestBurstAt(t *testing.T) {
	p := make([]byte, 4)
	BurstAt(p, 6, 4) // bits 6..9
	if p[0] != 0xC0 || p[1] != 0x03 {
		t.Errorf("burst = % x", p)
	}
	// Past the end: no panic, truncated.
	BurstAt(p, 30, 10)
}

// TestFCSDetectionExperiment is experiment E14: the paper chooses FCS-32
// "for accuracy purposes". Measure undetected-error rates for both FCS
// sizes under burst errors longer than 16 bits: FCS-16 lets ≈2^-16 of
// them through; FCS-32 catches everything at an observable scale.
func TestFCSDetectionExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical experiment")
	}
	rng := netsim.NewRand(7)
	frame := make([]byte, 64)
	for i := range frame {
		frame[i] = rng.Byte()
	}
	const trials = 300000
	undetected16, undetected32 := 0, 0
	body16 := crc.AppendFCS16(append([]byte(nil), frame...))
	body32 := crc.AppendFCS32(append([]byte(nil), frame...))
	buf := make([]byte, len(body32))
	for i := 0; i < trials; i++ {
		// A burst of 20-40 flipped bits at a random offset: beyond
		// both the FCS-16 and FCS-32 guaranteed burst lengths.
		bits := 20 + rng.Intn(21)
		off := rng.Intn(len(body16)*8 - bits)
		b16 := append(buf[:0], body16...)
		RandomBurstAt(b16, rng, off, bits)
		if crc.Check16(b16) {
			undetected16++
		}
		b32 := append([]byte(nil), body32...)
		off32 := rng.Intn(len(body32)*8 - bits)
		RandomBurstAt(b32, rng, off32, bits)
		if crc.Check32(b32) {
			undetected32++
		}
	}
	// Expected undetected for FCS-16 ≈ trials × 2^-16 ≈ 4.6.
	if undetected16 == 0 {
		t.Errorf("FCS-16 caught all %d bursts; expected ≈%d escapes — experiment insensitive",
			trials, trials>>16)
	}
	if undetected16 > 20 {
		t.Errorf("FCS-16 escapes = %d, implausibly many", undetected16)
	}
	// FCS-32 escape probability ≈ 2^-32: none expected at this scale.
	if undetected32 != 0 {
		t.Errorf("FCS-32 escapes = %d, want 0 at %d trials", undetected32, trials)
	}
	t.Logf("E14: %d bursts → FCS-16 undetected %d (≈%d expected), FCS-32 undetected %d",
		trials, undetected16, trials>>16, undetected32)
}
