package channel

import (
	"container/heap"

	"repro/internal/netsim"
)

// This file models the *temporal* impairments of a long-haul line, the
// complement of the bit-error Models in channel.go: fixed propagation
// delay, bounded random jitter, and occasional reordering, all at chunk
// (transport-frame) granularity and clocked in virtual ticks. A ring
// span pushes each transmitted frame into a Line and pops the frames
// due at the current tick; the same seed always produces the same
// delivery schedule, so a chaos scenario that depends on a specific
// reorder pattern is exactly reproducible.

// Line is a deterministic delay/jitter/reorder pipe over byte chunks.
// The zero value is a zero-latency FIFO. Line takes ownership of pushed
// chunks; it never copies or mutates them.
type Line struct {
	// Delay is the fixed propagation delay in ticks added to every
	// chunk (long-haul distance).
	Delay int64
	// Jitter, when nonzero, adds a uniform random extra delay in
	// [0, Jitter] ticks per chunk. Requires Rand.
	Jitter int64
	// ReorderEvery, when nonzero, holds back roughly one chunk in
	// ReorderEvery (uniform draw) by ReorderDelay extra ticks, letting
	// the chunks behind it overtake. Requires Rand.
	ReorderEvery int
	// ReorderDelay is the extra lag of a held-back chunk (default 2).
	ReorderDelay int64
	// InOrder forbids jitter-induced reordering: each chunk's due time
	// is clamped to be no earlier than the previously pushed chunk's
	// (held-back chunks are exempt — reordering is their purpose).
	InOrder bool
	// Rand drives jitter and reorder draws; nil disables both.
	Rand *netsim.Rand

	// Pushed and Held count chunks accepted and chunks held for
	// reordering.
	Pushed, Held uint64

	q       pipeHeap
	seq     uint64
	lastDue int64
}

type pipeItem struct {
	due  int64
	seq  uint64 // FIFO tiebreak for equal due times
	data []byte
}

type pipeHeap []pipeItem

func (h pipeHeap) Len() int { return len(h) }
func (h pipeHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h pipeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pipeHeap) Push(x interface{}) { *h = append(*h, x.(pipeItem)) }
func (h *pipeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = pipeItem{}
	*h = old[:n-1]
	return it
}

// Push enqueues one chunk transmitted at virtual time now.
func (ln *Line) Push(now int64, chunk []byte) {
	due := now + ln.Delay
	held := false
	if ln.Rand != nil {
		if ln.Jitter > 0 {
			due += int64(ln.Rand.Intn(int(ln.Jitter) + 1))
		}
		if ln.ReorderEvery > 0 && ln.Rand.Intn(ln.ReorderEvery) == 0 {
			d := ln.ReorderDelay
			if d <= 0 {
				d = 2
			}
			due += d
			held = true
			ln.Held++
		}
	}
	if ln.InOrder && !held && due < ln.lastDue {
		due = ln.lastDue
	}
	if !held {
		ln.lastDue = due
	}
	ln.seq++
	heap.Push(&ln.q, pipeItem{due: due, seq: ln.seq, data: chunk})
	ln.Pushed++
}

// Pop appends every chunk due at or before now to dst, in delivery
// order (due time, then push order), and returns dst.
func (ln *Line) Pop(now int64, dst [][]byte) [][]byte {
	for len(ln.q) > 0 && ln.q[0].due <= now {
		dst = append(dst, heap.Pop(&ln.q).(pipeItem).data)
	}
	return dst
}

// Pending returns the number of chunks still in flight.
func (ln *Line) Pending() int { return len(ln.q) }
