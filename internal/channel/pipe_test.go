package channel

import (
	"testing"

	"repro/internal/netsim"
)

func popAll(ln *Line, from, to int64) [][]byte {
	var out [][]byte
	for now := from; now <= to; now++ {
		out = ln.Pop(now, out)
	}
	return out
}

func TestLineZeroValueIsFIFO(t *testing.T) {
	var ln Line
	ln.Push(0, []byte{1})
	ln.Push(0, []byte{2})
	ln.Push(1, []byte{3})
	got := ln.Pop(1, nil)
	if len(got) != 3 || got[0][0] != 1 || got[1][0] != 2 || got[2][0] != 3 {
		t.Fatalf("zero-value Line reordered or dropped: %v", got)
	}
	if ln.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", ln.Pending())
	}
}

func TestLineFixedDelay(t *testing.T) {
	ln := Line{Delay: 3}
	ln.Push(10, []byte{42})
	if got := ln.Pop(12, nil); len(got) != 0 {
		t.Fatalf("chunk delivered %d ticks early", 13-12)
	}
	got := ln.Pop(13, nil)
	if len(got) != 1 || got[0][0] != 42 {
		t.Fatalf("chunk not delivered at now+Delay: %v", got)
	}
}

func TestLineJitterBoundedAndDeterministic(t *testing.T) {
	run := func() []int64 {
		ln := Line{Delay: 2, Jitter: 4, Rand: netsim.NewRand(99)}
		type stamp struct{ push, due int64 }
		var stamps []stamp
		for i := int64(0); i < 200; i++ {
			ln.Push(i, []byte{byte(i)})
		}
		var dues []int64
		deliveredAt := make(map[byte]int64)
		for now := int64(0); now < 300; now++ {
			for _, c := range ln.Pop(now, nil) {
				deliveredAt[c[0]] = now
			}
		}
		for i := int64(0); i < 200; i++ {
			at, ok := deliveredAt[byte(i)]
			if !ok {
				t.Fatalf("chunk %d never delivered", i)
			}
			lat := at - i
			if lat < 2 || lat > 2+4 {
				t.Fatalf("chunk %d latency %d outside [Delay, Delay+Jitter]", i, lat)
			}
			dues = append(dues, at)
		}
		_ = stamps
		return dues
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different schedules at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestLineReorderInvertsOrder(t *testing.T) {
	ln := Line{ReorderEvery: 4, ReorderDelay: 3, Rand: netsim.NewRand(7)}
	n := 64
	for i := 0; i < n; i++ {
		ln.Push(int64(i), []byte{byte(i)})
	}
	got := popAll(&ln, 0, int64(n)+16)
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	if ln.Held == 0 {
		t.Fatalf("reorder never fired over %d chunks at ReorderEvery=4", n)
	}
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i][0] < got[i-1][0] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatalf("%d chunks held back but delivery order never inverted", ln.Held)
	}
}

func TestLineInOrderClampsJitter(t *testing.T) {
	ln := Line{Delay: 1, Jitter: 6, InOrder: true, Rand: netsim.NewRand(3)}
	n := 128
	for i := 0; i < n; i++ {
		ln.Push(int64(i), []byte{byte(i)})
	}
	got := popAll(&ln, 0, int64(n)+16)
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i][0] != byte(i) {
			t.Fatalf("InOrder line reordered: position %d holds chunk %d", i, got[i][0])
		}
	}
}
