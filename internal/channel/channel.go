// Package channel models the transmission impairments of the paper's
// physical layer: independent random bit errors (optical links) and the
// Gilbert-Elliott two-state burst model (radio links, the "noisy
// environments" of the paper's §2). It exists to evaluate the framing
// layer's error-detection choices — notably the paper's decision to
// "incorporate 32-bit CRC checking" rather than FCS-16.
package channel

import (
	"math"

	"repro/internal/netsim"
)

// Model corrupts a byte stream in place and reports the bits flipped.
type Model interface {
	// Apply flips bits in p and returns how many it flipped.
	Apply(p []byte) int
}

// BER is a memoryless binary symmetric channel with the given bit error
// rate.
type BER struct {
	Rate float64
	Rand *netsim.Rand

	// Geometric inter-error sampling state: skip is the distance in
	// bits to the next error, carried across Apply calls so chunking
	// does not change the error process.
	skip   int64
	primed bool
	lnq    float64 // cached ln(1-Rate)
	rate   float64 // Rate the cache was computed for
}

// Apply implements Model. Instead of one uniform draw per bit (eight
// per byte), it samples the geometric inter-error distance directly —
// identical error statistics, but the work scales with the number of
// errors rather than the number of bits, which at realistic optical
// rates (BER ≤ 1e-6) is orders of magnitude less.
func (m *BER) Apply(p []byte) int {
	if m.Rate <= 0 || len(p) == 0 {
		return 0
	}
	if m.Rate >= 1 {
		for i := range p {
			p[i] ^= 0xFF
		}
		return len(p) * 8
	}
	if !m.primed || m.rate != m.Rate {
		m.lnq = math.Log1p(-m.Rate)
		m.rate = m.Rate
		m.skip = m.draw()
		m.primed = true
	}
	bits := int64(len(p)) * 8
	flips := 0
	for m.skip < bits {
		pos := m.skip
		p[pos/8] ^= 1 << uint(pos%8)
		flips++
		m.skip += 1 + m.draw()
	}
	m.skip -= bits
	return flips
}

// draw samples a geometric inter-error gap: the number of error-free
// bits before the next flip.
func (m *BER) draw() int64 {
	// 1-Float64() is in (0, 1], keeping the log finite.
	u := 1 - m.Rand.Float64()
	g := math.Log(u) / m.lnq
	if g >= math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(g)
}

// applyNaive is the original eight-draws-per-byte sampler, kept as the
// benchmark baseline for the geometric version.
func (m *BER) applyNaive(p []byte) int {
	flips := 0
	for i := range p {
		for b := 0; b < 8; b++ {
			if m.Rand.Float64() < m.Rate {
				p[i] ^= 1 << uint(b)
				flips++
			}
		}
	}
	return flips
}

// GilbertElliott is the classic two-state burst-error channel: a Good
// state with negligible errors and a Bad state with a high error rate;
// transitions between them create error bursts with geometric lengths.
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are per-bit transition probabilities.
	PGoodToBad, PBadToGood float64
	// BERGood and BERBad are the in-state bit error rates.
	BERGood, BERBad float64
	Rand            *netsim.Rand

	bad bool
	// Bursts counts Good→Bad transitions.
	Bursts uint64
}

// Apply implements Model.
func (m *GilbertElliott) Apply(p []byte) int {
	flips := 0
	for i := range p {
		for b := 0; b < 8; b++ {
			if m.bad {
				if m.Rand.Float64() < m.PBadToGood {
					m.bad = false
				}
			} else if m.Rand.Float64() < m.PGoodToBad {
				m.bad = true
				m.Bursts++
			}
			ber := m.BERGood
			if m.bad {
				ber = m.BERBad
			}
			if m.Rand.Float64() < ber {
				p[i] ^= 1 << uint(b)
				flips++
			}
		}
	}
	return flips
}

// BurstAt flips a run of `bits` consecutive bits starting at the given
// bit offset — a deterministic all-ones burst for targeted tests.
func BurstAt(p []byte, bitOff, bits int) {
	for i := 0; i < bits; i++ {
		pos := bitOff + i
		if pos/8 >= len(p) {
			return
		}
		p[pos/8] ^= 1 << uint(pos%8)
	}
}

// RandomBurstAt applies a classic random burst of the given span: the
// first and last bits are flipped (defining the burst length) and each
// interior bit flips with probability ½ — the error family for which a
// b-bit CRC lets 2^-b of over-length bursts escape.
func RandomBurstAt(p []byte, rng *netsim.Rand, bitOff, bits int) {
	flip := func(pos int) {
		if pos/8 < len(p) {
			p[pos/8] ^= 1 << uint(pos%8)
		}
	}
	flip(bitOff)
	for i := 1; i < bits-1; i++ {
		if rng.Intn(2) == 1 {
			flip(bitOff + i)
		}
	}
	if bits > 1 {
		flip(bitOff + bits - 1)
	}
}
