package transport

import (
	"bytes"
	"testing"
)

func TestWireHeaderRoundTrip(t *testing.T) {
	buf := AppendHeader(nil, TypeData, 1234, 0xDEADBEEF, 0x0102030405060708)
	if len(buf) != HeaderLen {
		t.Fatalf("header length %d, want %d", len(buf), HeaderLen)
	}
	h, err := DecodeHeader(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Type != TypeData || h.Len != 1234 || h.Epoch != 0xDEADBEEF || h.Seq != 0x0102030405060708 {
		t.Fatalf("round trip mismatch: %+v", h)
	}
}

func TestWireHeaderRejections(t *testing.T) {
	good := AppendHeader(nil, TypeKeepalive, 0, 7, 9)
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"short", func(b []byte) []byte { return b[:HeaderLen-1] }, ErrShortHeader},
		{"magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadMagic},
		{"version", func(b []byte) []byte { b[4] = 99; return b }, ErrBadVersion},
		{"type", func(b []byte) []byte { b[5] = 42; return b }, ErrBadType},
	}
	for _, tc := range cases {
		b := tc.mut(append([]byte(nil), good...))
		if _, err := DecodeHeader(b); err != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// A datagram whose declared length overruns the received octets.
	b := AppendHeader(nil, TypeData, 10, 7, 9)
	b = append(b, 1, 2, 3) // only 3 of the declared 10
	if _, _, err := DecodeDatagram(b); err != ErrBadLength {
		t.Errorf("overrun: got %v, want %v", err, ErrBadLength)
	}
}

func TestDecodeDatagramPayloadSpan(t *testing.T) {
	payload := []byte("the quick brown fox")
	b := AppendHeader(nil, TypeData, len(payload), 1, 2)
	b = append(b, payload...)
	h, got, err := DecodeDatagram(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Len != len(payload) || !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
}

// FuzzWireHeader fuzzes the UDP wire codec: no input may panic, and any
// input that decodes must re-encode to an identical header.
func FuzzWireHeader(f *testing.F) {
	f.Add(AppendHeader(nil, TypeData, 5, 0xABCD, 42))
	f.Add(AppendHeader(nil, TypeKeepalive, 0, 1, 1))
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x35, 0x4C, 0x54})
	f.Fuzz(func(t *testing.T, p []byte) {
		h, payload, err := DecodeDatagram(p)
		if err != nil {
			return
		}
		if h.Len != len(payload) {
			t.Fatalf("declared %d octets, span %d", h.Len, len(payload))
		}
		re := AppendHeader(nil, h.Type, h.Len, h.Epoch, h.Seq)
		if !bytes.Equal(re, p[:HeaderLen]) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", p[:HeaderLen], re)
		}
	})
}
