package transport

import (
	"bytes"
	"testing"
)

func TestWireHeaderRoundTrip(t *testing.T) {
	buf := AppendHeader(nil, TypeData, 1234, 0xDEADBEEF, 0x0102030405060708, -7, 987654321)
	if len(buf) != HeaderLen {
		t.Fatalf("header length %d, want %d", len(buf), HeaderLen)
	}
	h, err := DecodeHeader(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Type != TypeData || h.Len != 1234 || h.Epoch != 0xDEADBEEF || h.Seq != 0x0102030405060708 {
		t.Fatalf("round trip mismatch: %+v", h)
	}
	if h.Tick != -7 || h.Wall != 987654321 {
		t.Fatalf("tick/wall mismatch: %+v", h)
	}
}

func TestWireHeaderRejections(t *testing.T) {
	good := AppendHeader(nil, TypeKeepalive, 0, 7, 9, 0, 0)
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"short", func(b []byte) []byte { return b[:HeaderLen-1] }, ErrShortHeader},
		{"magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadMagic},
		{"version", func(b []byte) []byte { b[4] = 99; return b }, ErrBadVersion},
		{"old-version", func(b []byte) []byte { b[4] = 1; return b }, ErrBadVersion},
		{"type", func(b []byte) []byte { b[5] = 42; return b }, ErrBadType},
	}
	for _, tc := range cases {
		b := tc.mut(append([]byte(nil), good...))
		if _, err := DecodeHeader(b); err != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// A datagram whose declared length overruns the received octets.
	b := AppendHeader(nil, TypeData, 10, 7, 9, 0, 0)
	b = append(b, 1, 2, 3) // only 3 of the declared 10
	if _, _, err := DecodeDatagram(b); err != ErrBadLength {
		t.Errorf("overrun: got %v, want %v", err, ErrBadLength)
	}
}

func TestDecodeDatagramPayloadSpan(t *testing.T) {
	payload := []byte("the quick brown fox")
	b := AppendHeader(nil, TypeData, len(payload), 1, 2, 3, 4)
	b = append(b, payload...)
	h, got, err := DecodeDatagram(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Len != len(payload) || !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
}

func TestKeepaliveReplyPayloadRoundTrip(t *testing.T) {
	p := AppendKeepaliveReplyPayload(nil, 111, -222, 333)
	if len(p) != KeepaliveReplyLen {
		t.Fatalf("payload length %d, want %d", len(p), KeepaliveReplyLen)
	}
	t1, t2, t3, err := DecodeKeepaliveReply(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if t1 != 111 || t2 != -222 || t3 != 333 {
		t.Fatalf("round trip mismatch: %d %d %d", t1, t2, t3)
	}
	if _, _, _, err := DecodeKeepaliveReply(p[:KeepaliveReplyLen-1]); err == nil {
		t.Fatal("short reply accepted")
	}
}

func TestFreezePayloadRoundTrip(t *testing.T) {
	p := AppendFreezePayload(nil, 0xFEEDBEEF, 42, -99, "transport-los")
	inc, tick, wall, reason, err := DecodeFreeze(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if inc != 0xFEEDBEEF || tick != 42 || wall != -99 || reason != "transport-los" {
		t.Fatalf("round trip mismatch: %x %d %d %q", inc, tick, wall, reason)
	}
	// Oversized reasons are truncated to the wire cap, not rejected.
	p = AppendFreezePayload(nil, 1, 0, 0, "a-very-long-capture-reason-that-overflows")
	if _, _, _, reason, err = DecodeFreeze(p); err != nil || len(reason) != freezeReasonMax {
		t.Fatalf("truncation: reason %q err %v", reason, err)
	}
	if _, _, _, _, err := DecodeFreeze(p[:10]); err == nil {
		t.Fatal("short freeze accepted")
	}
}

// FuzzWireHeader fuzzes the UDP wire codec: no input may panic, and any
// input that decodes must re-encode to an identical header.
func FuzzWireHeader(f *testing.F) {
	f.Add(AppendHeader(nil, TypeData, 5, 0xABCD, 42, 17, 1234567))
	f.Add(AppendHeader(nil, TypeKeepalive, 0, 1, 1, 0, 0))
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x35, 0x4C, 0x54})
	f.Fuzz(func(t *testing.T, p []byte) {
		h, payload, err := DecodeDatagram(p)
		if err != nil {
			return
		}
		if h.Len != len(payload) {
			t.Fatalf("declared %d octets, span %d", h.Len, len(payload))
		}
		re := AppendHeader(nil, h.Type, h.Len, h.Epoch, h.Seq, h.Tick, h.Wall)
		if !bytes.Equal(re, p[:HeaderLen]) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", p[:HeaderLen], re)
		}
	})
}
