// Package transport provides pluggable line transports for the
// software PPP stack: the layer that moves HDLC wire octets between
// two link endpoints. Three implementations share one contract — an
// in-process Pipe for single-process engines and tests, and UDP and
// TCP socket transports so two p5sim instances interconnect across
// processes and hosts.
//
// The socket transports are built for hostile networks, not the happy
// path: connection supervision with capped exponential backoff and
// seeded jitter on dial and re-dial, keepalive probes with dead-peer
// detection (surfaced through Up so the link supervisor can escalate a
// transport loss-of-signal defect), bounded send queues with
// drop-oldest backpressure so a stalled socket never blocks or grows
// the engine, and sequence/epoch-stamped datagrams so duplicated or
// reordered packets are discarded instead of corrupting the HDLC byte
// stream. A lost chunk surfaces to PPP as at most one damaged frame
// (the tokenizer resyncs on the next flag and the FCS rejects the
// partial) — never as silent corruption.
//
// Ownership rules, which every implementation honours:
//
//   - Send does not retain p: the caller may recycle the buffer (it is
//     typically a Link.Output double buffer) immediately on return.
//   - Recv appends received chunks to dst and returns it; the chunk
//     payloads stay valid until the second-following Recv on the same
//     transport, so a caller may feed them straight to Link.InputBatch
//     and drain again next tick without copying.
//   - Send, Recv and Tick are called from one owning goroutine (the
//     engine shard that owns the link). Stats and Up may be called
//     concurrently (telemetry scrapes, /status).
package transport

import "errors"

// LineTransport moves wire octets between two PPP endpoints.
type LineTransport interface {
	// Send queues one chunk of wire bytes toward the peer. p is not
	// retained. A down or congested transport drops rather than blocks:
	// Send only returns an error for a closed transport.
	Send(p []byte) error
	// Recv appends the chunks received since the previous Recv to dst
	// and returns it. Payloads stay valid until the second-following
	// Recv.
	Recv(dst [][]byte) [][]byte
	// Tick advances transport housekeeping at virtual time now: send
	// queue flush, keepalive probes, dead-peer accounting, dial and
	// re-dial scheduling.
	Tick(now int64)
	// Up reports transport liveness: false once dead-peer detection has
	// given up on the far end (or, for connection-oriented transports,
	// while disconnected). The link supervisor maps a true→false
	// transition to a transport-LOS defect.
	Up() bool
	// Stats returns a snapshot of the transport's counters.
	Stats() Stats
	// Close releases sockets and background goroutines. The transport
	// must not be used afterwards.
	Close() error
}

// ErrClosed is returned by Send on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Muter is implemented by transports that can simulate a full line cut
// — no transmit, not even keepalive probes, and no receive — without
// tearing the socket down. The UDP and TCP transports implement it;
// the chaos adapter drives it for scripted blackout windows.
type Muter interface {
	Mute(on bool)
}

// Stats is the observable record of one transport endpoint.
type Stats struct {
	// TxChunks/TxBytes count chunks actually written to the line
	// (queued chunks dropped by backpressure are counted in TxDropped,
	// not here).
	TxChunks, TxBytes uint64
	// RxChunks/RxBytes count chunks delivered to Recv callers.
	RxChunks, RxBytes uint64
	// TxDropped counts chunks dropped by the bounded send queue
	// (drop-oldest backpressure) or by socket write errors.
	TxDropped uint64
	// RxDropped counts received datagrams discarded before delivery:
	// bad magic or header, duplicates, and reordered (stale-sequence)
	// arrivals.
	RxDropped uint64
	// RxBadVersion counts arrivals rejected for a wire-version mismatch
	// (also included in RxDropped) — the fleet's version-skew signal.
	RxBadVersion uint64
	// Reconnects counts successful connection establishments after the
	// first (TCP re-dials and accepted replacement conns; UDP peer
	// epoch changes).
	Reconnects uint64
	// Resets counts connection losses: read/write errors, replaced
	// conns, and keepalive dead-peer declarations.
	Resets uint64
	// KeepaliveProbes/KeepaliveMisses count probe datagrams sent and
	// silent probe periods observed.
	KeepaliveProbes, KeepaliveMisses uint64
	// QueueDepth and QueueHighWater observe the bounded send queue.
	QueueDepth, QueueHighWater int
}

// Config tunes the socket transports. The zero value is usable; every
// field has a default.
type Config struct {
	// QueueLimit bounds the send queue in chunks (default 256). When
	// full the oldest queued chunk is dropped — the transport degrades,
	// it never blocks the engine.
	QueueLimit int
	// MaxChunk bounds one chunk's payload octets (default 60000, under
	// the 64 KiB UDP datagram ceiling). Oversized Sends are split.
	MaxChunk int
	// KeepalivePeriod, when non-zero, sends a keepalive probe every
	// this many ticks and checks for inbound traffic; KeepaliveMisses
	// consecutive silent periods (default 3) declare the peer dead
	// (Up() turns false) until traffic resumes.
	KeepalivePeriod int64
	// KeepaliveMisses is the silent-period limit (default 3).
	KeepaliveMisses int
	// RetryMin and RetryMax bound the capped exponential dial/re-dial
	// backoff in ticks (defaults 8 and 1024). Each delay carries ±20%
	// seeded jitter so a fleet of transports sharing one dead peer does
	// not re-dial in lockstep.
	RetryMin, RetryMax int64
	// JitterSeed seeds the backoff jitter (0 derives a per-process
	// default). Distinct transports should use distinct seeds.
	JitterSeed uint64
	// ReadBuffer/WriteBuffer request socket buffer sizes in bytes
	// (0 keeps the kernel default; the P5_SOCK_RBUF and P5_SOCK_WBUF
	// environment variables override zero values, the udpx idiom of
	// env-tuned buffers).
	ReadBuffer, WriteBuffer int
	// LatencySampleShift controls the one-way latency wall-stamp rate:
	// one data datagram in 2^shift carries a transmit wall stamp
	// (default 6, 1 in 64). Sampling keeps the stamp cost off most of
	// the hot path while the histograms still converge in seconds.
	LatencySampleShift int
}

// defaultLatencySampleShift is the 1-in-64 default sampling rate.
const defaultLatencySampleShift = 6

func (c Config) queueLimit() int {
	if c.QueueLimit <= 0 {
		return 256
	}
	return c.QueueLimit
}

func (c Config) maxChunk() int {
	if c.MaxChunk <= 0 {
		return 60000
	}
	return c.MaxChunk
}

func (c Config) keepaliveMisses() int {
	if c.KeepaliveMisses <= 0 {
		return 3
	}
	return c.KeepaliveMisses
}

func (c Config) retryMin() int64 {
	if c.RetryMin <= 0 {
		return 8
	}
	return c.RetryMin
}

func (c Config) retryMax() int64 {
	if c.RetryMax <= 0 {
		return 1024
	}
	return c.RetryMax
}
