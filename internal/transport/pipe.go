package transport

import "sync"

// Pipe is the in-process line transport: a pair of directly-connected
// endpoints whose Send lands in the peer's receive queue. It is the
// loopback transport the sharded engine uses by default, and the
// baseline the socket transports are measured against — the steady
// state allocates nothing (chunks are copied into a double-buffered
// receive arena, recycled at every second drain, exactly the Link
// receive-queue discipline).
//
// A Pipe pair must be driven from one goroutine (the engine shard that
// owns both ends); Stats and Up are safe to call concurrently with the
// owner (telemetry scrapes).
type Pipe struct {
	peer *Pipe

	mu     sync.Mutex
	closed bool
	st     Stats

	// Receive queue: chunk spans into an arena, double-buffered at
	// drain time so returned payloads survive until the
	// second-following Recv.
	rx pipeBuf
	// spare is the other half of the double buffer.
	spare pipeBuf
}

// pipeBuf is one half of a Pipe's receive double buffer.
type pipeBuf struct {
	ends  []int // cumulative chunk end offsets into arena
	arena []byte
}

func (b *pipeBuf) reset() {
	b.ends = b.ends[:0]
	b.arena = b.arena[:0]
}

// NewPipePair returns the two connected endpoints of an in-process
// line.
func NewPipePair() (a, z *Pipe) {
	a, z = &Pipe{}, &Pipe{}
	a.peer, z.peer = z, a
	return a, z
}

// Send copies p into the peer's receive queue.
func (p *Pipe) Send(b []byte) error {
	q := p.peer
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		p.mu.Lock()
		closed := p.closed
		p.st.TxDropped++
		p.mu.Unlock()
		if closed {
			return ErrClosed
		}
		return nil
	}
	q.rx.arena = append(q.rx.arena, b...)
	q.rx.ends = append(q.rx.ends, len(q.rx.arena))
	q.st.RxChunks++
	q.st.RxBytes += uint64(len(b))
	q.mu.Unlock()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.st.TxChunks++
	p.st.TxBytes += uint64(len(b))
	p.mu.Unlock()
	return nil
}

// Recv appends the queued chunks to dst and returns it. Payloads stay
// valid until the second-following Recv.
func (p *Pipe) Recv(dst [][]byte) [][]byte {
	p.mu.Lock()
	full := p.rx
	p.rx, p.spare = p.spare, full
	p.rx.reset()
	p.mu.Unlock()
	start := 0
	for _, end := range full.ends {
		dst = append(dst, full.arena[start:end:end])
		start = end
	}
	return dst
}

// Tick is a no-op: the pipe has no housekeeping.
func (p *Pipe) Tick(now int64) {}

// Up always reports true: an in-process line cannot lose its peer.
// Inject transport faults through fault.Transport to model loss.
func (p *Pipe) Up() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.closed
}

// Stats returns a snapshot of the endpoint's counters.
func (p *Pipe) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// Close marks the endpoint closed; subsequent Sends from either end
// fail or drop.
func (p *Pipe) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return nil
}
