package transport

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// UDP is the datagram socket transport: one chunk of wire octets per
// UDP datagram, each stamped with the wire header so the receiver can
// discard duplicated, reordered and foreign datagrams before they
// scramble the HDLC stream. Loss is accepted (PPP's FCS and the
// tokenizer's flag resync absorb it); ordering is enforced by dropping
// stale sequence numbers.
//
// A UDP endpoint runs in one of two roles, the gateway/client split:
// a listener binds ListenAddr and latches its peer from the first
// valid datagram (re-latching whenever the peer's epoch changes, so a
// restarted or rebound dialer reconnects transparently); a dialer
// binds an ephemeral port and sends to DialAddr. Keepalive probes flow
// both ways; dead-peer detection is symmetric. Probes double as the
// NTP-style clock-offset exchange (the peer answers each with a
// TypeKeepaliveReply), and sampled data headers carry a transmit wall
// stamp, so the endpoint measures one-way latency, jitter, RTT and
// clock offset against its peer (LatencyMeter). It also carries the
// capture-correlation freeze channel (Freezer).
type UDP struct {
	cfg      Config
	conn     *net.UDPConn
	listener bool

	mu     sync.Mutex
	closed bool
	muted  bool
	st     Stats
	peer   netip.AddrPort

	sq       chunkQueue
	rq       rxQueue
	flushTmp [][]byte

	epoch uint32
	seq   uint64

	peerEpoch uint32
	gotEpoch  bool
	peerSeq   uint64

	alive   bool
	rxCount uint64
	tickNow int64

	kaNext   int64
	kaLastRx uint64
	kaMisses int

	lm meter
	fz freezeBox

	// probeBuf and replyBuf are preallocated so the keepalive exchange
	// never allocates (stack arrays would escape into the socket write).
	probeBuf  [HeaderLen]byte
	replyBuf  [HeaderLen + KeepaliveReplyLen]byte
	freezeBuf [HeaderLen + 64]byte
}

// UDPConfig places a UDP endpoint.
type UDPConfig struct {
	Config
	// ListenAddr, when non-empty, binds this address (the listener
	// role). The peer address is learned from the first valid datagram.
	ListenAddr string
	// DialAddr, when non-empty, is the peer address (the dialer role).
	// With ListenAddr empty the local port is ephemeral.
	DialAddr string
}

// NewUDP opens a UDP line endpoint and starts its reader.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	if cfg.ListenAddr == "" && cfg.DialAddr == "" {
		return nil, fmt.Errorf("transport: UDP needs ListenAddr or DialAddr")
	}
	var laddr *net.UDPAddr
	var err error
	if cfg.ListenAddr != "" {
		if laddr, err = net.ResolveUDPAddr("udp", cfg.ListenAddr); err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.ListenAddr, err)
		}
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: bind: %w", err)
	}
	if n := envBuffer(cfg.ReadBuffer, "P5_SOCK_RBUF"); n > 0 {
		conn.SetReadBuffer(n)
	}
	if n := envBuffer(cfg.WriteBuffer, "P5_SOCK_WBUF"); n > 0 {
		conn.SetWriteBuffer(n)
	}
	t := &UDP{
		cfg:      cfg.Config,
		conn:     conn,
		listener: cfg.DialAddr == "",
		epoch:    uint32(time.Now().UnixNano()) | 1,
		lm:       newMeter(cfg.LatencySampleShift),
	}
	t.sq.limit = cfg.queueLimit()
	if cfg.DialAddr != "" {
		raddr, err := net.ResolveUDPAddr("udp", cfg.DialAddr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: dial %s: %w", cfg.DialAddr, err)
		}
		t.peer = raddr.AddrPort()
	}
	go t.reader()
	return t, nil
}

// LocalAddr returns the bound socket address (useful with ":0").
func (t *UDP) LocalAddr() net.Addr { return t.conn.LocalAddr() }

// Send splits p into MaxChunk-sized datagrams and queues them; the
// queue is flushed inline when the peer is known, so in the steady
// state a Send is its own batched syscall burst.
func (t *UDP) Send(p []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	maxChunk := t.cfg.maxChunk()
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		buf := t.sq.get()
		t.seq++
		wall := int64(0)
		if t.lm.stampWall(t.seq) {
			wall = time.Now().UnixNano()
		}
		buf = AppendHeader(buf, TypeData, n, t.epoch, t.seq, t.tickNow, wall)
		buf = append(buf, p[:n]...)
		p = p[n:]
		t.sq.push(buf)
	}
	t.flushLocked()
	return nil
}

// Mute simulates a line cut at this endpoint: while muted nothing is
// written to the socket — data holds in the bounded queue (oldest
// dropped), keepalive probes are suppressed — and everything received
// is discarded before liveness accounting, so both ends' dead-peer
// detection sees a genuinely dark line. The chaos adapter drives this
// for scripted blackout windows.
func (t *UDP) Mute(on bool) {
	t.mu.Lock()
	t.muted = on
	t.mu.Unlock()
}

// flushLocked writes every queued datagram to the peer (no-op while
// the peer is unknown or the line is muted — the bounded queue holds,
// and drops oldest).
func (t *UDP) flushLocked() {
	if t.muted || !t.peer.IsValid() || len(t.sq.bufs) == 0 {
		return
	}
	t.flushTmp = t.sq.drainInto(t.flushTmp[:0], 0)
	for _, buf := range t.flushTmp {
		if _, err := t.conn.WriteToUDPAddrPort(buf, t.peer); err != nil {
			t.st.TxDropped++
		} else {
			t.st.TxChunks++
			t.st.TxBytes += uint64(len(buf) - HeaderLen)
		}
		t.sq.put(buf)
	}
}

// Recv appends the datagram payloads received since the previous Recv.
func (t *UDP) Recv(dst [][]byte) [][]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append(dst, t.rq.drain()...)
}

// Tick runs keepalive probing, dead-peer accounting and pending freeze
// transmission, and flushes anything still queued.
func (t *UDP) Tick(now int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.tickNow = now
	t.flushLocked()
	t.flushFreezeLocked(now)
	period := t.cfg.KeepalivePeriod
	if period <= 0 {
		return
	}
	if t.kaNext == 0 {
		t.kaNext = now + period
		t.kaLastRx = t.rxCount
		return
	}
	if now < t.kaNext {
		return
	}
	t.kaNext = now + period
	if t.rxCount == t.kaLastRx {
		t.kaMisses++
		t.st.KeepaliveMisses++
		if t.kaMisses >= t.cfg.keepaliveMisses() && t.alive {
			t.alive = false
			t.st.Resets++
		}
	} else {
		t.kaMisses = 0
	}
	t.kaLastRx = t.rxCount
	if t.peer.IsValid() && !t.muted {
		// The probe's wall stamp is the NTP t1 origin.
		probe := AppendHeader(t.probeBuf[:0], TypeKeepalive, 0, t.epoch, t.seq,
			now, time.Now().UnixNano())
		t.conn.WriteToUDPAddrPort(probe, t.peer)
		t.st.KeepaliveProbes++
	}
}

// flushFreezeLocked transmits one due pending freeze. Retries are
// gated on the line being alive, so a freeze raised during a blackout
// waits the dark window out instead of exhausting its tries into it.
func (t *UDP) flushFreezeLocked(now int64) {
	fi := t.fz.due(now, t.alive && !t.muted && t.peer.IsValid(), t.cfg.KeepalivePeriod)
	if fi == nil {
		return
	}
	payload := AppendFreezePayload(t.freezeBuf[HeaderLen:HeaderLen], fi.Incident, fi.Tick, fi.WallNs, fi.Reason)
	buf := AppendHeader(t.freezeBuf[:0], TypeFreeze, len(payload), t.epoch, t.seq, now, 0)
	buf = buf[:HeaderLen+len(payload)]
	t.conn.WriteToUDPAddrPort(buf, t.peer)
}

// SendFreeze queues a capture-correlation freeze toward the peer.
func (t *UDP) SendFreeze(info FreezeInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.fz.queue(info)
	t.flushFreezeLocked(t.tickNow)
}

// Freezes appends and returns the freezes received since the last call.
func (t *UDP) Freezes(dst []FreezeInfo) []FreezeInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fz.drain(dst)
}

// CorrelationLeader reports whether this end assigns shared incident
// IDs (epoch comparison; the listener wins ties).
func (t *UDP) CorrelationLeader() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return leader(t.epoch, t.peerEpoch, t.gotEpoch, t.listener)
}

// Latency returns the endpoint's latency summary.
func (t *UDP) Latency() Latency {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lm.latency()
}

// LatencyHist returns the live latency histograms (µs).
func (t *UDP) LatencyHist() (oneWay, jitter, rtt *telemetry.Histogram) {
	return t.lm.oneWay, t.lm.jitter, t.lm.rtt
}

// reader is the receive goroutine: it validates, deduplicates and
// copies datagrams into the pooled receive queue, answers keepalive
// probes, and folds latency samples into the meter.
func (t *UDP) reader() {
	buf := make([]byte, 65536)
	for {
		n, addr, err := t.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		rxWall := time.Now().UnixNano()
		h, payload, derr := DecodeDatagram(buf[:n])
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		if t.muted {
			// The line is cut: what arrives anyway is lost in the dark
			// window, invisible even to liveness accounting.
			t.st.RxDropped++
			t.mu.Unlock()
			continue
		}
		if derr != nil {
			// A version-skewed peer fails here on every datagram and
			// never marks the line alive — keepalive supervision reports
			// it dead, RxBadVersion names the cause.
			if derr == ErrBadVersion {
				t.st.RxBadVersion++
			}
			t.st.RxDropped++
			t.mu.Unlock()
			continue
		}
		t.rxCount++
		t.alive = true
		epochChanged := !t.gotEpoch || h.Epoch != t.peerEpoch
		if epochChanged {
			if t.gotEpoch {
				// The peer restarted (or re-bound): resynchronise and
				// count the reconnection.
				t.st.Reconnects++
			}
			t.gotEpoch = true
			t.peerEpoch = h.Epoch
			t.peerSeq = 0
		}
		if t.listener && (!t.peer.IsValid() || epochChanged) {
			// Latch (or re-latch) the return path.
			t.peer = addr
		}
		t.lm.noteTick(h.Tick, t.tickNow)
		switch h.Type {
		case TypeKeepalive:
			// Answer with the NTP triple: t1 echoed from the probe's
			// wall stamp, t2 our receive clock, t3 our transmit clock.
			// Replying straight to the source keeps the exchange alive
			// even before the return path is latched.
			if h.Wall != 0 {
				reply := AppendHeader(t.replyBuf[:0], TypeKeepaliveReply, KeepaliveReplyLen,
					t.epoch, t.seq, t.tickNow, 0)
				reply = AppendKeepaliveReplyPayload(reply, h.Wall, rxWall, time.Now().UnixNano())
				t.conn.WriteToUDPAddrPort(reply, addr)
			}
			t.mu.Unlock()
			continue
		case TypeKeepaliveReply:
			if t1, t2, t3, perr := DecodeKeepaliveReply(payload); perr == nil {
				t.lm.noteReply(t1, t2, t3, rxWall)
			}
			t.mu.Unlock()
			continue
		case TypeFreeze:
			if inc, trigTick, trigWall, reason, perr := DecodeFreeze(payload); perr == nil {
				t.fz.note(FreezeInfo{Incident: inc, Reason: reason, Tick: trigTick, WallNs: trigWall})
			}
			t.mu.Unlock()
			continue
		}
		if h.Seq <= t.peerSeq {
			// Duplicate or reordered behind the delivery cursor: a
			// stale chunk spliced into the HDLC stream would corrupt
			// framing, so it is dropped (loss PPP already absorbs).
			t.st.RxDropped++
			t.mu.Unlock()
			continue
		}
		t.peerSeq = h.Seq
		t.lm.noteData(h.Wall, rxWall)
		t.rq.push(t.rq.get(payload))
		t.st.RxChunks++
		t.st.RxBytes += uint64(len(payload))
		t.mu.Unlock()
	}
}

// Up reports dead-peer status: true once the peer has been heard from
// and keepalive has not given up on it.
func (t *UDP) Up() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.alive && !t.closed
}

// Stats returns a snapshot of the endpoint's counters.
func (t *UDP) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st
	st.TxDropped += t.sq.dropped // write errors + queue overflow drops
	st.QueueDepth = len(t.sq.bufs)
	st.QueueHighWater = t.sq.highWater
	return st
}

// Close shuts the socket down and stops the reader.
func (t *UDP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	return t.conn.Close()
}
