package transport

import "repro/internal/telemetry"

// This file is the per-line latency meter shared by the socket
// transports: one-way delay and jitter from the sampled wall stamps on
// TypeData headers, probe RTT and NTP-style clock offset from the
// TypeKeepalive/TypeKeepaliveReply exchange, and a tick-domain offset
// estimate for correlating captures across processes. The meter is
// embedded in the transport and mutated only under the transport's
// mutex; the histograms are the telemetry package's atomic kind, so
// Instrument can expose them directly and a scrape never takes the
// transport lock.

// latencyBoundsUS are the histogram bucket upper bounds in µs, spanning
// loopback (tens of µs) out to WAN-scale (100 ms).
var latencyBoundsUS = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}

// Latency is a point-in-time summary of a line's latency meter.
type Latency struct {
	// Samples counts one-way measurements (sampled data datagrams).
	Samples uint64
	// OneWayP50US / OneWayP99US summarise the one-way delay in µs.
	OneWayP50US, OneWayP99US int64
	// JitterP99US is the p99 of successive one-way deltas in µs.
	JitterP99US int64
	// RTTSamples counts completed probe/reply round trips.
	RTTSamples uint64
	// RTTP50US / RTTP99US summarise the probe RTT in µs.
	RTTP50US, RTTP99US int64
	// ClockOffsetNS is the EWMA estimate of (peer wall − local wall).
	ClockOffsetNS int64
	// TickOffset is the estimated (peer tick − local tick), a max-filter
	// lower bound; valid only once Samples or RTTSamples is nonzero.
	TickOffset int64
}

// LatencyMeter is implemented by transports that measure wire-level
// latency (UDP, TCP; the in-process Pipe does not — its delay is one
// tick by construction).
type LatencyMeter interface {
	// Latency returns the current summary.
	Latency() Latency
	// LatencyHist returns the live one-way, jitter and RTT histograms
	// (µs) for exposition via telemetry.AttachHistogram.
	LatencyHist() (oneWay, jitter, rtt *telemetry.Histogram)
}

// meter is the embedded implementation. All fields are guarded by the
// owning transport's mutex except the histograms, which are internally
// atomic.
type meter struct {
	oneWay *telemetry.Histogram // µs
	jitter *telemetry.Histogram // µs
	rtt    *telemetry.Histogram // µs

	sampleMask uint64 // stamp wall when seq&sampleMask == 0
	samples    uint64
	rttSamples uint64
	lastOneWay int64 // µs, for jitter
	haveOneWay bool

	// offsetNS is the EWMA clock offset (peer − local) from the
	// keepalive exchange; offsetSet latches the first sample.
	offsetNS  int64
	offsetSet bool

	// tickOff is a max-filter over (header.Tick − local tick at
	// receive). Each sample understates the true peer−local tick delta
	// by the one-way flight time, so the maximum is the tightest lower
	// bound observed.
	tickOff    int64
	tickOffSet bool
}

func newMeter(sampleShift int) meter {
	if sampleShift <= 0 {
		sampleShift = defaultLatencySampleShift
	}
	return meter{
		oneWay:     telemetry.NewHistogram(latencyBoundsUS),
		jitter:     telemetry.NewHistogram(latencyBoundsUS),
		rtt:        telemetry.NewHistogram(latencyBoundsUS),
		sampleMask: 1<<uint(sampleShift) - 1,
	}
}

// stampWall reports whether the datagram with this seq should carry a
// wall stamp (1 in 2^shift).
func (m *meter) stampWall(seq uint64) bool { return seq&m.sampleMask == 0 }

// noteTick feeds the tick-domain max-filter from any valid arrival.
func (m *meter) noteTick(headerTick, localTick int64) {
	d := headerTick - localTick
	if !m.tickOffSet || d > m.tickOff {
		m.tickOff, m.tickOffSet = d, true
	}
}

// noteData records a one-way sample from a stamped data datagram.
// txWall is the header's wall stamp, nowNS the local receive wall
// clock.
func (m *meter) noteData(txWall, nowNS int64) {
	if txWall == 0 {
		return
	}
	ow := nowNS - txWall + m.offsetNS
	if ow < 0 {
		ow = 0
	}
	owUS := ow / 1000
	m.oneWay.Observe(owUS)
	if m.haveOneWay {
		j := owUS - m.lastOneWay
		if j < 0 {
			j = -j
		}
		m.jitter.Observe(j)
	}
	m.lastOneWay, m.haveOneWay = owUS, true
	m.samples++
}

// noteReply folds one completed probe exchange: t1 the probe's origin
// wall stamp, t2/t3 the peer's receive/transmit stamps, t4 the local
// wall clock when the reply arrived.
func (m *meter) noteReply(t1, t2, t3, t4 int64) {
	rtt := (t4 - t1) - (t3 - t2)
	if rtt < 0 {
		rtt = 0
	}
	m.rtt.Observe(rtt / 1000)
	m.rttSamples++
	theta := ((t2 - t1) + (t3 - t4)) / 2
	if !m.offsetSet {
		m.offsetNS, m.offsetSet = theta, true
	} else {
		m.offsetNS += (theta - m.offsetNS) / 8
	}
}

// latency builds the summary snapshot. Callers hold the transport
// mutex for the scalar fields; the histogram reads are atomic.
func (m *meter) latency() Latency {
	return Latency{
		Samples:       m.samples,
		OneWayP50US:   m.oneWay.Quantile(0.5),
		OneWayP99US:   m.oneWay.Quantile(0.99),
		JitterP99US:   m.jitter.Quantile(0.99),
		RTTSamples:    m.rttSamples,
		RTTP50US:      m.rtt.Quantile(0.5),
		RTTP99US:      m.rtt.Quantile(0.99),
		ClockOffsetNS: m.offsetNS,
		TickOffset:    m.tickOff,
	}
}
