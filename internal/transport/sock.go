package transport

import (
	"os"
	"strconv"
	"time"

	"repro/internal/netsim"
)

// This file holds the machinery the socket transports share: the
// capped exponential backoff with seeded jitter that paces dial and
// re-dial attempts, the bounded drop-oldest send queue, and the pooled
// receive queue that carries datagrams from the reader goroutine to
// the owning tick loop.

// backoff paces reconnection attempts: capped exponential doubling
// with ±20% seeded jitter, so N transports orphaned by one dead peer
// spread their re-dials instead of thundering in lockstep.
type backoff struct {
	cur, min, max int64
	rng           *netsim.Rand
}

func newBackoff(cfg Config) backoff {
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) | 1
	}
	return backoff{min: cfg.retryMin(), max: cfg.retryMax(), rng: netsim.NewRand(seed)}
}

// next returns the delay before the next attempt, doubling the base
// interval up to the cap and jittering the result by ±20%.
func (b *backoff) next() int64 {
	if b.cur == 0 {
		b.cur = b.min
	} else {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	d := b.cur * int64(80+b.rng.Intn(41)) / 100
	if d < 1 {
		d = 1
	}
	return d
}

// reset re-arms the backoff after a successful connection.
func (b *backoff) reset() { b.cur = 0 }

// chunkQueue is the bounded send queue: encoded wire records awaiting
// the socket, with a free list recycling their buffers. When the queue
// is full the oldest record is dropped — backpressure degrades the
// line (PPP retransmits control packets; data loss surfaces as FCS
// drops), it never blocks the engine or grows without bound. The
// caller provides locking.
type chunkQueue struct {
	limit     int
	bufs      [][]byte
	free      [][]byte
	highWater int
	dropped   uint64
}

// get pops a recycled buffer (nil when the free list is empty).
func (q *chunkQueue) get() []byte {
	if n := len(q.free); n > 0 {
		b := q.free[n-1]
		q.free = q.free[:n-1]
		return b[:0]
	}
	return nil
}

// put recycles a drained buffer.
func (q *chunkQueue) put(b []byte) {
	if len(q.free) < q.limit {
		q.free = append(q.free, b)
	}
}

// push appends a record, dropping the oldest when the queue is full.
func (q *chunkQueue) push(b []byte) {
	if len(q.bufs) >= q.limit {
		old := q.bufs[0]
		copy(q.bufs, q.bufs[1:])
		q.bufs = q.bufs[:len(q.bufs)-1]
		q.put(old)
		q.dropped++
	}
	q.bufs = append(q.bufs, b)
	if d := len(q.bufs); d > q.highWater {
		q.highWater = d
	}
}

// drainInto moves up to max records (all of them when max <= 0) into
// dst and returns it; the caller writes them to the socket and then
// recycles each with put.
func (q *chunkQueue) drainInto(dst [][]byte, max int) [][]byte {
	n := len(q.bufs)
	if max > 0 && n > max {
		n = max
	}
	dst = append(dst, q.bufs[:n]...)
	rest := copy(q.bufs, q.bufs[n:])
	q.bufs = q.bufs[:rest]
	return dst
}

// rxQueue carries received payloads from the reader goroutine to the
// owner's Recv. Buffers are pooled across three generations so a chunk
// handed out by Recv stays valid until the second-following Recv — the
// same ownership rule as Link's receive queue. The caller provides
// locking.
type rxQueue struct {
	chunks   [][]byte // filled by the reader, awaiting Recv
	lent     [][]byte // handed out by the latest Recv
	lentPrev [][]byte // handed out by the one before; recycled next
	free     [][]byte
}

// rxFreeCap bounds the receive free list.
const rxFreeCap = 256

// get returns a pooled buffer holding a copy of p.
func (q *rxQueue) get(p []byte) []byte {
	if n := len(q.free); n > 0 {
		b := q.free[n-1]
		q.free = q.free[:n-1]
		return append(b[:0], p...)
	}
	return append(make([]byte, 0, max(len(p), 2048)), p...)
}

// push appends a filled buffer for the next Recv.
func (q *rxQueue) push(b []byte) { q.chunks = append(q.chunks, b) }

// drain rotates the generations and returns the chunks received since
// the previous drain. The returned slice aliases the queue's lent
// generation; the caller must copy the headers out before releasing
// its lock.
func (q *rxQueue) drain() [][]byte {
	for _, b := range q.lentPrev {
		if len(q.free) < rxFreeCap {
			q.free = append(q.free, b)
		}
	}
	q.lentPrev = q.lentPrev[:0]
	q.lentPrev, q.lent = q.lent, q.lentPrev
	q.lent, q.chunks = q.chunks, q.lent[:0]
	return q.lent
}

// envBuffer resolves a socket buffer size: the configured value wins,
// else the environment variable (the udpx idiom — buffer tuning
// without a rebuild), else 0 for the kernel default.
func envBuffer(configured int, env string) int {
	if configured > 0 {
		return configured
	}
	if v := os.Getenv(env); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 0
}
