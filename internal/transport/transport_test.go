package transport

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"
)

// collect drives a transport's Recv until want chunks have arrived or
// the deadline passes, ticking both ends each poll (socket transports
// deliver from a reader goroutine).
func collect(t *testing.T, rx, tx LineTransport, want int, now *int64) [][]byte {
	t.Helper()
	var got [][]byte
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/%d chunks", len(got), want)
		}
		*now++
		tx.Tick(*now)
		rx.Tick(*now)
		for _, c := range rx.Recv(nil) {
			got = append(got, append([]byte(nil), c...))
		}
		time.Sleep(100 * time.Microsecond)
	}
	return got
}

func TestPipePairExchange(t *testing.T) {
	a, z := NewPipePair()
	defer a.Close()
	defer z.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send([]byte{byte(i), byte(i + 1)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	got := z.Recv(nil)
	if len(got) != 10 {
		t.Fatalf("got %d chunks, want 10", len(got))
	}
	for i, c := range got {
		if !bytes.Equal(c, []byte{byte(i), byte(i + 1)}) {
			t.Fatalf("chunk %d: %x", i, c)
		}
	}
	st := a.Stats()
	if st.TxChunks != 10 || st.TxBytes != 20 {
		t.Fatalf("a stats: %+v", st)
	}
	if st := z.Stats(); st.RxChunks != 10 || st.RxBytes != 20 {
		t.Fatalf("z stats: %+v", st)
	}
}

// TestPipeOwnershipGenerations: a chunk returned by Recv must stay
// intact until the second-following Recv, the Link receive-queue rule.
func TestPipeOwnershipGenerations(t *testing.T) {
	a, z := NewPipePair()
	a.Send([]byte("generation-0"))
	gen0 := z.Recv(nil)
	a.Send([]byte("generation-1"))
	_ = z.Recv(nil) // first following Recv: gen0 must survive
	if !bytes.Equal(gen0[0], []byte("generation-0")) {
		t.Fatalf("chunk invalidated by the first following Recv: %q", gen0[0])
	}
}

func TestPipeZeroAllocSteadyState(t *testing.T) {
	a, z := NewPipePair()
	payload := bytes.Repeat([]byte{0x7E}, 512)
	var dst [][]byte
	// Warm the arenas to steady-state capacity.
	for i := 0; i < 64; i++ {
		a.Send(payload)
		z.Send(payload)
		dst = a.Recv(dst[:0])
		dst = z.Recv(dst)
	}
	allocs := testing.AllocsPerRun(200, func() {
		a.Send(payload)
		z.Send(payload)
		dst = a.Recv(dst[:0])
		dst = z.Recv(dst)
	})
	if allocs != 0 {
		t.Fatalf("steady-state pipe exchange allocates %.1f/op, want 0", allocs)
	}
}

func TestUDPPairExchange(t *testing.T) {
	cfg := Config{}
	ln, err := NewUDP(UDPConfig{Config: cfg, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	dl, err := NewUDP(UDPConfig{Config: cfg, DialAddr: ln.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Close()

	now := int64(0)
	for i := 0; i < 20; i++ {
		if err := dl.Send([]byte(fmt.Sprintf("chunk-%02d", i))); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	got := collect(t, ln, dl, 20, &now)
	for i, c := range got {
		if want := fmt.Sprintf("chunk-%02d", i); string(c) != want {
			t.Fatalf("chunk %d: %q, want %q", i, c, want)
		}
	}

	// The listener latched the dialer: the reverse path works too.
	for i := 0; i < 5; i++ {
		ln.Send([]byte("pong"))
	}
	back := collect(t, dl, ln, 5, &now)
	if string(back[0]) != "pong" {
		t.Fatalf("reverse chunk: %q", back[0])
	}
}

func TestUDPKeepaliveDeadPeer(t *testing.T) {
	cfg := Config{KeepalivePeriod: 4, KeepaliveMisses: 2}
	ln, err := NewUDP(UDPConfig{Config: cfg, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	dl, err := NewUDP(UDPConfig{Config: cfg, DialAddr: ln.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}

	now := int64(0)
	dl.Send([]byte("hello"))
	collect(t, ln, dl, 1, &now)
	if !ln.Up() {
		t.Fatal("listener not up after traffic")
	}

	// Kill the dialer: the listener's keepalive gives up within
	// KeepalivePeriod*(KeepaliveMisses+1) silent ticks.
	dl.Close()
	for i := 0; i < 4*(2+2); i++ {
		now++
		ln.Tick(now)
	}
	if ln.Up() {
		t.Fatal("listener still up across a dead peer")
	}
	st := ln.Stats()
	if st.KeepaliveMisses == 0 || st.Resets == 0 {
		t.Fatalf("stats after dead peer: %+v", st)
	}
}

func TestUDPDialerEpochResetReconnects(t *testing.T) {
	cfg := Config{}
	ln, err := NewUDP(UDPConfig{Config: cfg, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	now := int64(0)
	d1, err := NewUDP(UDPConfig{Config: cfg, DialAddr: ln.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	d1.Send([]byte("first"))
	collect(t, ln, d1, 1, &now)
	d1.Close()

	// A restarted dialer has a fresh epoch and restarts seq at 1; the
	// listener must re-latch instead of discarding the "stale" seq.
	d2, err := NewUDP(UDPConfig{Config: cfg, DialAddr: ln.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	d2.Send([]byte("second"))
	got := collect(t, ln, d2, 1, &now)
	if string(got[0]) != "second" {
		t.Fatalf("after peer restart got %q", got[0])
	}
	if st := ln.Stats(); st.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want 1", st.Reconnects)
	}
}

func TestTCPPairExchange(t *testing.T) {
	cfg := Config{}
	ln, err := NewTCP(TCPConfig{Config: cfg, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	dl, err := NewTCP(TCPConfig{Config: cfg, DialAddr: ln.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Close()

	now := int64(0)
	deadline := time.Now().Add(5 * time.Second)
	for !dl.Up() {
		if time.Now().After(deadline) {
			t.Fatal("dialer never connected")
		}
		now++
		dl.Tick(now)
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		dl.Send([]byte(fmt.Sprintf("stream-%02d", i)))
	}
	got := collect(t, ln, dl, 20, &now)
	for i, c := range got {
		if want := fmt.Sprintf("stream-%02d", i); string(c) != want {
			t.Fatalf("chunk %d: %q, want %q", i, c, want)
		}
	}
	ln.Send([]byte("pong"))
	back := collect(t, dl, ln, 1, &now)
	if string(back[0]) != "pong" {
		t.Fatalf("reverse chunk: %q", back[0])
	}
}

func TestTCPRedialAfterReset(t *testing.T) {
	cfg := Config{RetryMin: 1, RetryMax: 4}
	ln, err := NewTCP(TCPConfig{Config: cfg, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	dl, err := NewTCP(TCPConfig{Config: cfg, DialAddr: ln.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Close()

	now := int64(0)
	dl.Send([]byte("before"))
	collect(t, ln, dl, 1, &now)

	// Sever the server-side connection; the dialer must notice the
	// read failure and re-dial on its backoff schedule.
	ln.mu.Lock()
	c := ln.conn
	ln.mu.Unlock()
	c.Close()

	// First the dialer must notice the failure (reader EOF), then
	// re-dial on its backoff schedule.
	deadline := time.Now().Add(5 * time.Second)
	for dl.Stats().Resets == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dialer never noticed the reset")
		}
		now++
		dl.Tick(now)
		time.Sleep(time.Millisecond)
	}
	for !dl.Up() {
		if time.Now().After(deadline) {
			t.Fatal("dialer never re-dialed")
		}
		now++
		dl.Tick(now)
		ln.Tick(now)
		time.Sleep(time.Millisecond)
	}
	if err := dl.Send([]byte("after")); err != nil {
		t.Fatalf("send after redial: %v", err)
	}
	if got := collect(t, ln, dl, 1, &now); string(got[0]) != "after" {
		t.Fatalf("after redial got %q", got[0])
	}
}

func TestChunkQueueDropsOldest(t *testing.T) {
	q := chunkQueue{limit: 3}
	for i := 0; i < 5; i++ {
		q.push([]byte{byte(i)})
	}
	if q.dropped != 2 || len(q.bufs) != 3 {
		t.Fatalf("dropped=%d depth=%d", q.dropped, len(q.bufs))
	}
	got := q.drainInto(nil, 0)
	if len(got) != 3 || got[0][0] != 2 || got[2][0] != 4 {
		t.Fatalf("drain after overflow: %v", got)
	}
	if q.highWater != 3 {
		t.Fatalf("highWater=%d, want 3", q.highWater)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	cfg := Config{RetryMin: 8, RetryMax: 64, JitterSeed: 12345}
	b := newBackoff(cfg)
	expect := []int64{8, 16, 32, 64, 64, 64}
	var varied bool
	for i, base := range expect {
		d := b.next()
		lo, hi := base*80/100, base*120/100
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %d outside [%d,%d]", i, d, lo, hi)
		}
		if d != base {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never moved a delay off its base value")
	}
	b.reset()
	if d := b.next(); d > 8*120/100 {
		t.Fatalf("post-reset delay %d not back at RetryMin scale", d)
	}
}

// TestUDPSeqDedup crafts raw wire datagrams — duplicated and reordered
// at the socket, after sequence stamping — and asserts the receiver
// delivers only the in-order subset: the defense that keeps a chaotic
// network from splicing stale octets into the HDLC stream.
func TestUDPSeqDedup(t *testing.T) {
	ln, err := NewUDP(UDPConfig{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	raw, err := net.Dial("udp", ln.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	const epoch = 0xBEEF
	send := func(seq uint64, payload string) {
		b := AppendHeader(nil, TypeData, len(payload), epoch, seq, 0, 0)
		b = append(b, payload...)
		if _, err := raw.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	// seq 1, 2, 2 (dup), 4, 3 (reordered behind 4), 5.
	for _, m := range []struct {
		seq uint64
		p   string
	}{{1, "s1"}, {2, "s2"}, {2, "s2-dup"}, {4, "s4"}, {3, "s3-stale"}, {5, "s5"}} {
		send(m.seq, m.p)
	}

	now := int64(0)
	var got [][]byte
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/4 chunks: %q", len(got), got)
		}
		now++
		ln.Tick(now)
		for _, c := range ln.Recv(nil) {
			got = append(got, append([]byte(nil), c...))
		}
		time.Sleep(100 * time.Microsecond)
	}
	want := []string{"s1", "s2", "s4", "s5"}
	for i, c := range got {
		if string(c) != want[i] {
			t.Fatalf("delivered %q, want %v", got, want)
		}
	}
	// Give the stale datagrams time to land, then confirm they stayed
	// dropped rather than late-delivered.
	time.Sleep(10 * time.Millisecond)
	ln.Tick(now + 1)
	if extra := ln.Recv(nil); len(extra) != 0 {
		t.Fatalf("stale datagrams delivered late: %q", extra)
	}
	if st := ln.Stats(); st.RxDropped != 2 {
		t.Fatalf("RxDropped = %d, want 2 (one dup, one stale)", st.RxDropped)
	}
}

// TestUDPBadVersionRejected: a datagram carrying an unknown wire
// version is counted and dropped without latching the sender as a live
// peer — the clean failure mode for version skew across a fleet.
func TestUDPBadVersionRejected(t *testing.T) {
	ln, err := NewUDP(UDPConfig{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	raw, err := net.Dial("udp", ln.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	b := AppendHeader(nil, TypeData, 2, 1, 1, 0, 0)
	b[4] = 1 // the v1 header a stale peer would send
	b = append(b, 'h', 'i')
	if _, err := raw.Write(b); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ln.Stats().RxBadVersion == 0 {
		if time.Now().After(deadline) {
			t.Fatal("bad-version datagram never counted")
		}
		ln.Tick(0)
		time.Sleep(100 * time.Microsecond)
	}
	st := ln.Stats()
	if st.RxBadVersion != 1 || st.RxDropped != 1 {
		t.Fatalf("stats after version skew: %+v", st)
	}
	if ln.Up() || len(ln.Recv(nil)) != 0 {
		t.Fatal("skewed peer latched as alive")
	}
}

// TestUDPLatencyExchange drives a real loopback pair and asserts the
// latency meter fills from both channels: one-way samples from sampled
// wall stamps on data chunks, RTT samples from the keepalive
// probe/reply exchange.
func TestUDPLatencyExchange(t *testing.T) {
	cfg := Config{KeepalivePeriod: 2, LatencySampleShift: 1}
	ln, err := NewUDP(UDPConfig{Config: cfg, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	dl, err := NewUDP(UDPConfig{Config: cfg, DialAddr: ln.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Close()

	now := int64(0)
	for i := 0; i < 16; i++ {
		dl.Send([]byte("tick"))
	}
	collect(t, ln, dl, 16, &now)
	if lat := ln.Latency(); lat.Samples == 0 {
		t.Fatalf("no one-way samples after 16 stamped chunks: %+v", lat)
	}

	// Reverse traffic marks the dialer's peer alive, after which its
	// keepalive probes (wall-stamped) earn RTT samples from replies.
	ln.Send([]byte("back"))
	collect(t, dl, ln, 1, &now)
	deadline := time.Now().Add(5 * time.Second)
	for dl.Latency().RTTSamples == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no RTT samples: %+v", dl.Latency())
		}
		now++
		dl.Tick(now)
		ln.Tick(now)
		time.Sleep(100 * time.Microsecond)
	}
	lat := dl.Latency()
	if lat.ClockOffsetNS > 1e9 || lat.ClockOffsetNS < -1e9 {
		t.Fatalf("loopback clock offset estimate off by >1s: %+v", lat)
	}
}

// TestUDPFreezeExchange: a freeze ping queued on one end surfaces on
// the peer exactly once — retransmissions are deduplicated by incident.
func TestUDPFreezeExchange(t *testing.T) {
	cfg := Config{KeepalivePeriod: 2}
	ln, err := NewUDP(UDPConfig{Config: cfg, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	dl, err := NewUDP(UDPConfig{Config: cfg, DialAddr: ln.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Close()

	// Two-way traffic so both ends see a live peer.
	now := int64(0)
	dl.Send([]byte("fwd"))
	collect(t, ln, dl, 1, &now)
	ln.Send([]byte("rev"))
	collect(t, dl, ln, 1, &now)

	want := FreezeInfo{Incident: 0xC0FFEE, Reason: "transport-los", Tick: 41, WallNs: 1234}
	dl.SendFreeze(want)
	var got []FreezeInfo
	deadline := time.Now().Add(5 * time.Second)
	for len(got) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("freeze never arrived")
		}
		now++
		dl.Tick(now)
		ln.Tick(now)
		got = ln.Freezes(got)
		time.Sleep(100 * time.Microsecond)
	}
	if got[0] != want {
		t.Fatalf("freeze round trip: got %+v, want %+v", got[0], want)
	}
	// Let every retransmission land; dedup must keep the count at one.
	for i := 0; i < 4*int(cfg.KeepalivePeriod)+4; i++ {
		now++
		dl.Tick(now)
		ln.Tick(now)
		time.Sleep(100 * time.Microsecond)
	}
	if extra := ln.Freezes(nil); len(extra) != 0 {
		t.Fatalf("retransmitted freeze delivered twice: %+v", extra)
	}
	if len(got) != 1 {
		t.Fatalf("freeze count %d, want 1", len(got))
	}
}

// TestCorrelationLeader pins the freeze leader election: higher epoch
// wins, the listener breaks ties, and an end that never heard a peer
// epoch leads by default.
func TestCorrelationLeader(t *testing.T) {
	cases := []struct {
		local, peer        uint32
		gotEpoch, listener bool
		want               bool
	}{
		{5, 3, true, false, true},  // higher epoch leads
		{3, 5, true, true, false},  // lower epoch follows even as listener
		{7, 7, true, true, true},   // tie: listener leads
		{7, 7, true, false, false}, // tie: dialer follows
		{1, 9, false, false, true}, // no peer epoch yet: lead
	}
	for i, tc := range cases {
		if got := leader(tc.local, tc.peer, tc.gotEpoch, tc.listener); got != tc.want {
			t.Errorf("case %d (%+v): leader = %v", i, tc, got)
		}
	}
}

// TestMeterEstimates pins the meter arithmetic against hand-computed
// NTP timestamps: RTT excludes peer hold time, the first offset sample
// seeds the EWMA, and the tick offset is a max-filter.
func TestMeterEstimates(t *testing.T) {
	m := newMeter(1)
	if !m.stampWall(2) || m.stampWall(3) {
		t.Fatal("sample mask wrong for shift 1")
	}
	// t1=0 t2=600µs t3=700µs t4=300µs: RTT = 300µs - 100µs hold = 200µs,
	// offset θ = ((t2-t1)+(t3-t4))/2 = 500µs.
	m.noteReply(0, 600_000, 700_000, 300_000)
	lat := m.latency()
	if lat.RTTSamples != 1 || lat.ClockOffsetNS != 500_000 {
		t.Fatalf("after reply: %+v", lat)
	}
	if lat.RTTP50US != 250 {
		t.Fatalf("RTT p50 bucket = %d, want 250 (200µs sample)", lat.RTTP50US)
	}
	// One-way: rx-tx = -400µs, corrected by the +500µs offset to 100µs.
	m.noteData(1_000_000, 600_000)
	lat = m.latency()
	if lat.Samples != 1 || lat.OneWayP50US != 100 {
		t.Fatalf("after data: %+v", lat)
	}
	m.noteTick(10, 3)
	m.noteTick(5, 3)
	if lat := m.latency(); lat.TickOffset != 7 {
		t.Fatalf("tick offset = %d, want max-filtered 7", lat.TickOffset)
	}
	// A zero wall stamp (unsampled chunk) must be ignored.
	m.noteData(0, 999)
	if lat := m.latency(); lat.Samples != 1 {
		t.Fatalf("unsampled chunk counted: %+v", lat)
	}
}
