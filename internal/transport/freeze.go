package transport

// This file is the capture-correlation side channel: a flight trigger
// on one end of a socket line sends a TypeFreeze datagram carrying a
// shared incident ID so the peer dumps its own black box. The freeze
// box is embedded in the socket transports and mutated only under
// their mutex; delivery is best-effort with alive-gated retransmits —
// during a blackout the sender's own dead-peer detection holds the
// pending freeze back, so the retries land once the line returns
// instead of being exhausted into a dark line.

// FreezeInfo is one freeze request, sent or received.
type FreezeInfo struct {
	// Incident is the shared incident ID (nonzero).
	Incident uint64
	// Reason is the triggering end's capture reason (truncated to 16
	// octets on the wire).
	Reason string
	// Tick and WallNs are the triggering end's virtual clock and wall
	// clock at the trigger.
	Tick, WallNs int64
}

// Freezer is implemented by transports that carry the freeze side
// channel (UDP, TCP). The in-process Pipe does not: both ends live in
// one process and JoinFlight already correlates them.
type Freezer interface {
	// SendFreeze queues a freeze for transmission to the peer
	// (best-effort, retransmitted while the line is alive).
	SendFreeze(FreezeInfo)
	// Freezes appends and returns the freezes received since the last
	// call, oldest first.
	Freezes(dst []FreezeInfo) []FreezeInfo
	// CorrelationLeader reports whether this end assigns incident IDs
	// when both ends trigger for the same line event (larger epoch
	// wins; the follower waits to adopt the peer's ID instead).
	CorrelationLeader() bool
}

// freezeTries bounds retransmission of one pending freeze; spacing is
// the keepalive period (tries are counted only while the line is
// alive, so a blackout does not burn them).
const freezeTries = 4

// freezeDedup is the receive-side dedup ring size.
const freezeDedup = 16

// pendingFreeze is one queued outbound freeze.
type pendingFreeze struct {
	info   FreezeInfo
	tries  int
	nextAt int64
}

// freezeBox is the embedded implementation, guarded by the owning
// transport's mutex.
type freezeBox struct {
	pending []pendingFreeze
	rxq     []FreezeInfo
	seen    [freezeDedup]uint64
	seenN   int
}

// queue adds an outbound freeze (transmitted from the transport's
// Tick).
func (f *freezeBox) queue(info FreezeInfo) {
	f.pending = append(f.pending, pendingFreeze{info: info})
}

// due returns the next pending freeze ready for transmission at tick
// now (nil when none), advancing its retry state. alive gates both
// transmission and try counting.
func (f *freezeBox) due(now int64, alive bool, period int64) *FreezeInfo {
	if !alive || len(f.pending) == 0 {
		return nil
	}
	if period <= 0 {
		period = 64
	}
	for i := range f.pending {
		p := &f.pending[i]
		if now < p.nextAt {
			continue
		}
		p.tries++
		p.nextAt = now + period
		info := p.info
		if p.tries >= freezeTries {
			f.pending = append(f.pending[:i], f.pending[i+1:]...)
		}
		return &info
	}
	return nil
}

// note records a received freeze, deduplicating by incident ID against
// the recent-window ring.
func (f *freezeBox) note(info FreezeInfo) {
	for _, id := range f.seen {
		if id == info.Incident {
			return
		}
	}
	f.seen[f.seenN%freezeDedup] = info.Incident
	f.seenN++
	f.rxq = append(f.rxq, info)
}

// drain moves the received freezes into dst.
func (f *freezeBox) drain(dst []FreezeInfo) []FreezeInfo {
	dst = append(dst, f.rxq...)
	f.rxq = f.rxq[:0]
	return dst
}

// leader decides incident-ID ownership from the epoch exchange:
// the larger epoch assigns. Before the peer's epoch is known the local
// end assumes leadership — a one-sided trigger must not wait.
func leader(localEpoch, peerEpoch uint32, gotEpoch, isListener bool) bool {
	if !gotEpoch {
		return true
	}
	if localEpoch != peerEpoch {
		return localEpoch > peerEpoch
	}
	return isListener
}
