package transport

import "errors"

// The socket transports frame every chunk with a fixed 20-octet header
// so the receiver can reject foreign traffic (magic), resynchronise
// after a peer restart (epoch), and discard duplicated or reordered
// datagrams before they scramble the HDLC byte stream (seq):
//
//	octets 0..3   magic  "P5LT" (0x50354C54), big endian
//	octet  4      version (wireVersion)
//	octet  5      type: TypeData | TypeKeepalive
//	octets 6..7   payload length, big endian
//	octets 8..11  epoch — random per transport instance
//	octets 12..19 seq — per-instance monotonic datagram counter
//
// Over UDP each datagram is one header plus payload; over TCP the same
// records are concatenated on the stream and the magic doubles as a
// desync detector (a mid-stream magic mismatch resets the connection).

// Wire header constants.
const (
	Magic       = 0x50354C54 // "P5LT"
	wireVersion = 1
	// HeaderLen is the fixed wire header size in octets.
	HeaderLen = 20
)

// Wire datagram types.
const (
	// TypeData carries a chunk of HDLC wire octets.
	TypeData = 0
	// TypeKeepalive is an empty liveness probe.
	TypeKeepalive = 1
)

// Header is one decoded wire header.
type Header struct {
	Version byte
	Type    byte
	Len     int
	Epoch   uint32
	Seq     uint64
}

// Wire header decode errors.
var (
	ErrShortHeader = errors.New("transport: short wire header")
	ErrBadMagic    = errors.New("transport: bad wire magic")
	ErrBadVersion  = errors.New("transport: unsupported wire version")
	ErrBadType     = errors.New("transport: unknown wire datagram type")
	ErrBadLength   = errors.New("transport: wire length exceeds datagram")
)

// AppendHeader appends the encoded header for a payload of length n to
// dst and returns it.
func AppendHeader(dst []byte, typ byte, n int, epoch uint32, seq uint64) []byte {
	return append(dst,
		byte(Magic>>24), byte(Magic>>16&0xFF), byte(Magic>>8&0xFF), byte(Magic&0xFF),
		wireVersion, typ,
		byte(n>>8), byte(n),
		byte(epoch>>24), byte(epoch>>16), byte(epoch>>8), byte(epoch),
		byte(seq>>56), byte(seq>>48), byte(seq>>40), byte(seq>>32),
		byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq))
}

// DecodeHeader parses the wire header at the front of p. For UDP the
// remainder of the datagram must hold exactly the declared payload; for
// TCP the caller reads the declared length off the stream, so only the
// header octets are required here.
func DecodeHeader(p []byte) (Header, error) {
	var h Header
	if len(p) < HeaderLen {
		return h, ErrShortHeader
	}
	if uint32(p[0])<<24|uint32(p[1])<<16|uint32(p[2])<<8|uint32(p[3]) != Magic {
		return h, ErrBadMagic
	}
	h.Version = p[4]
	if h.Version != wireVersion {
		return h, ErrBadVersion
	}
	h.Type = p[5]
	if h.Type != TypeData && h.Type != TypeKeepalive {
		return h, ErrBadType
	}
	h.Len = int(p[6])<<8 | int(p[7])
	h.Epoch = uint32(p[8])<<24 | uint32(p[9])<<16 | uint32(p[10])<<8 | uint32(p[11])
	h.Seq = uint64(p[12])<<56 | uint64(p[13])<<48 | uint64(p[14])<<40 | uint64(p[15])<<32 |
		uint64(p[16])<<24 | uint64(p[17])<<16 | uint64(p[18])<<8 | uint64(p[19])
	return h, nil
}

// DecodeDatagram parses one complete datagram (header plus payload, the
// UDP shape) and returns the header and the payload span within p.
func DecodeDatagram(p []byte) (Header, []byte, error) {
	h, err := DecodeHeader(p)
	if err != nil {
		return h, nil, err
	}
	if h.Len > len(p)-HeaderLen {
		return h, nil, ErrBadLength
	}
	return h, p[HeaderLen : HeaderLen+h.Len], nil
}
