package transport

import "errors"

// The socket transports frame every chunk with a fixed 36-octet header
// so the receiver can reject foreign traffic (magic), resynchronise
// after a peer restart (epoch), discard duplicated or reordered
// datagrams before they scramble the HDLC byte stream (seq), and
// measure cross-process latency (tick, wall):
//
//	octets 0..3   magic  "P5LT" (0x50354C54), big endian
//	octet  4      version (WireVersion)
//	octet  5      type: TypeData | TypeKeepalive | TypeKeepaliveReply | TypeFreeze
//	octets 6..7   payload length, big endian
//	octets 8..11  epoch — random per transport instance
//	octets 12..19 seq — per-instance monotonic datagram counter
//	octets 20..27 tick — sender's virtual clock at transmit (signed)
//	octets 28..35 wall — sampled transmit wall clock, ns (0 = unsampled)
//
// Over UDP each datagram is one header plus payload; over TCP the same
// records are concatenated on the stream and the magic doubles as a
// desync detector (a mid-stream magic mismatch resets the connection).
//
// Version 2 added the tick/wall trailer and the keepalive-reply and
// freeze types. The header carries no compatibility machinery on
// purpose: a v1 peer's datagrams fail DecodeHeader with ErrBadVersion,
// the receiver counts them in Stats.RxBadVersion and never marks the
// line alive, so a version-skewed deployment looks like a dead peer —
// detected by keepalive supervision, visible in /status — instead of a
// corrupted byte stream.

// Wire header constants.
const (
	Magic = 0x50354C54 // "P5LT"
	// WireVersion is the protocol version this build speaks, exported
	// so status boards can surface it for fleet version-skew checks.
	WireVersion = 2
	// HeaderLen is the fixed wire header size in octets.
	HeaderLen = 36
)

// Wire datagram types.
const (
	// TypeData carries a chunk of HDLC wire octets.
	TypeData = 0
	// TypeKeepalive is a liveness probe; its header tick/wall double as
	// the NTP-style t1 origin stamp.
	TypeKeepalive = 1
	// TypeKeepaliveReply answers a probe with the three timestamps the
	// initiator needs for offset/RTT estimation (see the payload codec
	// below).
	TypeKeepaliveReply = 2
	// TypeFreeze asks the peer to dump its flight recorder under a
	// shared incident ID (see AppendFreezePayload).
	TypeFreeze = 3
)

// KeepaliveReplyLen is the TypeKeepaliveReply payload size: t1 (echoed
// origin wall ns), t2 (receive wall ns), t3 (transmit wall ns), each
// i64 big endian.
const KeepaliveReplyLen = 24

// Header is one decoded wire header.
type Header struct {
	Version byte
	Type    byte
	Len     int
	Epoch   uint32
	Seq     uint64
	// Tick is the sender's virtual clock at transmit.
	Tick int64
	// Wall is the sampled transmit wall clock in ns, 0 when the sender
	// did not stamp this datagram.
	Wall int64
}

// Wire header decode errors.
var (
	ErrShortHeader = errors.New("transport: short wire header")
	ErrBadMagic    = errors.New("transport: bad wire magic")
	ErrBadVersion  = errors.New("transport: unsupported wire version")
	ErrBadType     = errors.New("transport: unknown wire datagram type")
	ErrBadLength   = errors.New("transport: wire length exceeds datagram")
)

// AppendHeader appends the encoded header for a payload of length n to
// dst and returns it. tick is the sender's virtual clock; wall is the
// sampled transmit wall stamp in ns (pass 0 on unsampled datagrams).
func AppendHeader(dst []byte, typ byte, n int, epoch uint32, seq uint64, tick, wall int64) []byte {
	return append(dst,
		byte(Magic>>24), byte(Magic>>16&0xFF), byte(Magic>>8&0xFF), byte(Magic&0xFF),
		WireVersion, typ,
		byte(n>>8), byte(n),
		byte(epoch>>24), byte(epoch>>16), byte(epoch>>8), byte(epoch),
		byte(seq>>56), byte(seq>>48), byte(seq>>40), byte(seq>>32),
		byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq),
		byte(tick>>56), byte(tick>>48), byte(tick>>40), byte(tick>>32),
		byte(tick>>24), byte(tick>>16), byte(tick>>8), byte(tick),
		byte(wall>>56), byte(wall>>48), byte(wall>>40), byte(wall>>32),
		byte(wall>>24), byte(wall>>16), byte(wall>>8), byte(wall))
}

// DecodeHeader parses the wire header at the front of p. For UDP the
// remainder of the datagram must hold exactly the declared payload; for
// TCP the caller reads the declared length off the stream, so only the
// header octets are required here.
func DecodeHeader(p []byte) (Header, error) {
	var h Header
	if len(p) < HeaderLen {
		return h, ErrShortHeader
	}
	if uint32(p[0])<<24|uint32(p[1])<<16|uint32(p[2])<<8|uint32(p[3]) != Magic {
		return h, ErrBadMagic
	}
	h.Version = p[4]
	if h.Version != WireVersion {
		return h, ErrBadVersion
	}
	h.Type = p[5]
	if h.Type > TypeFreeze {
		return h, ErrBadType
	}
	h.Len = int(p[6])<<8 | int(p[7])
	h.Epoch = uint32(p[8])<<24 | uint32(p[9])<<16 | uint32(p[10])<<8 | uint32(p[11])
	h.Seq = uint64(p[12])<<56 | uint64(p[13])<<48 | uint64(p[14])<<40 | uint64(p[15])<<32 |
		uint64(p[16])<<24 | uint64(p[17])<<16 | uint64(p[18])<<8 | uint64(p[19])
	h.Tick = int64(be64(p[20:]))
	h.Wall = int64(be64(p[28:]))
	return h, nil
}

func be64(p []byte) uint64 {
	return uint64(p[0])<<56 | uint64(p[1])<<48 | uint64(p[2])<<40 | uint64(p[3])<<32 |
		uint64(p[4])<<24 | uint64(p[5])<<16 | uint64(p[6])<<8 | uint64(p[7])
}

func appendBE64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// DecodeDatagram parses one complete datagram (header plus payload, the
// UDP shape) and returns the header and the payload span within p.
func DecodeDatagram(p []byte) (Header, []byte, error) {
	h, err := DecodeHeader(p)
	if err != nil {
		return h, nil, err
	}
	if h.Len > len(p)-HeaderLen {
		return h, nil, ErrBadLength
	}
	return h, p[HeaderLen : HeaderLen+h.Len], nil
}

// AppendKeepaliveReplyPayload appends the TypeKeepaliveReply payload:
// t1 is the probe's echoed origin wall stamp, t2 the wall clock when
// the probe arrived, t3 the wall clock when the reply left.
func AppendKeepaliveReplyPayload(dst []byte, t1, t2, t3 int64) []byte {
	dst = appendBE64(dst, uint64(t1))
	dst = appendBE64(dst, uint64(t2))
	return appendBE64(dst, uint64(t3))
}

// DecodeKeepaliveReply parses a TypeKeepaliveReply payload.
func DecodeKeepaliveReply(p []byte) (t1, t2, t3 int64, err error) {
	if len(p) < KeepaliveReplyLen {
		return 0, 0, 0, ErrShortHeader
	}
	return int64(be64(p)), int64(be64(p[8:])), int64(be64(p[16:])), nil
}

// freezeReasonMax bounds the reason string carried in a TypeFreeze
// payload; longer reasons are truncated on encode.
const freezeReasonMax = 32

// AppendFreezePayload appends the TypeFreeze payload: the shared
// incident ID, the triggering end's virtual tick and wall clock at the
// trigger, and a short reason tag.
func AppendFreezePayload(dst []byte, incident uint64, trigTick, trigWall int64, reason string) []byte {
	if len(reason) > freezeReasonMax {
		reason = reason[:freezeReasonMax]
	}
	dst = appendBE64(dst, incident)
	dst = appendBE64(dst, uint64(trigTick))
	dst = appendBE64(dst, uint64(trigWall))
	dst = append(dst, byte(len(reason)))
	return append(dst, reason...)
}

// DecodeFreeze parses a TypeFreeze payload.
func DecodeFreeze(p []byte) (incident uint64, trigTick, trigWall int64, reason string, err error) {
	if len(p) < 25 {
		return 0, 0, 0, "", ErrShortHeader
	}
	n := int(p[24])
	if n > freezeReasonMax || len(p) < 25+n {
		return 0, 0, 0, "", ErrBadLength
	}
	return be64(p), int64(be64(p[8:])), int64(be64(p[16:])), string(p[25 : 25+n]), nil
}
