package transport

import "repro/internal/telemetry"

// Instrument registers the transport_* series for t under the line
// label and keeps them refreshed at scrape time via the registry's
// sampler hook. Counters are sync-mirrors of the transport's Stats
// snapshot — the same pattern the engine uses for link counters. When
// t measures latency (LatencyMeter) the one-way/jitter/RTT histograms
// are adopted into the registry directly — they are already atomic, so
// no mirroring is needed — alongside the clock/tick offset gauges.
func Instrument(reg *telemetry.Registry, line string, t LineTransport) {
	l := telemetry.L("line", line)
	up := reg.Gauge("transport_up", "transport link liveness (1 = peer alive)", l)
	reconnects := reg.Counter("transport_reconnects_total", "peer reconnections observed", l)
	resets := reg.Counter("transport_resets_total", "connection resets (dead peer, stream desync, write failure)", l)
	kaProbes := reg.Counter("transport_keepalive_probes_total", "keepalive probes sent", l)
	kaMisses := reg.Counter("transport_keepalive_misses_total", "keepalive periods with no traffic from the peer", l)
	txChunks := reg.Counter("transport_tx_chunks_total", "wire chunks written to the line", l)
	txBytes := reg.Counter("transport_tx_bytes_total", "payload octets written to the line", l)
	rxChunks := reg.Counter("transport_rx_chunks_total", "wire chunks accepted from the line", l)
	rxBytes := reg.Counter("transport_rx_bytes_total", "payload octets accepted from the line", l)
	txDropped := reg.Counter("transport_tx_dropped_total", "chunks dropped before the wire (queue overflow, write errors)", l)
	rxDropped := reg.Counter("transport_rx_dropped_total", "chunks rejected on receive (bad header, duplicate, reordered)", l)
	rxBadVer := reg.Counter("transport_rx_bad_version_total", "arrivals rejected for a wire-version mismatch (version skew)", l)
	depth := reg.Gauge("transport_queue_depth", "send queue depth at last scrape", l)
	highWater := reg.Gauge("transport_queue_high_water", "send queue high-water mark", l)
	reg.AddSampler(func() {
		st := t.Stats()
		if t.Up() {
			up.Set(1)
		} else {
			up.Set(0)
		}
		reconnects.Set(st.Reconnects)
		resets.Set(st.Resets)
		kaProbes.Set(st.KeepaliveProbes)
		kaMisses.Set(st.KeepaliveMisses)
		txChunks.Set(st.TxChunks)
		txBytes.Set(st.TxBytes)
		rxChunks.Set(st.RxChunks)
		rxBytes.Set(st.RxBytes)
		txDropped.Set(st.TxDropped)
		rxDropped.Set(st.RxDropped)
		rxBadVer.Set(st.RxBadVersion)
		depth.Set(int64(st.QueueDepth))
		highWater.Set(int64(st.QueueHighWater))
	})
	lm, ok := t.(LatencyMeter)
	if !ok {
		return
	}
	oneWay, jitter, rtt := lm.LatencyHist()
	if oneWay == nil {
		// A wrapper (fault.Transport) around a non-measuring inner
		// transport satisfies the interface but carries no meter.
		return
	}
	reg.AttachHistogram("transport_oneway_latency_us", "one-way delay from peer wall stamps, µs", oneWay, l)
	reg.AttachHistogram("transport_oneway_jitter_us", "successive one-way delay deltas, µs", jitter, l)
	reg.AttachHistogram("transport_rtt_us", "keepalive probe round-trip time, µs", rtt, l)
	clockOff := reg.Gauge("transport_clock_offset_ns", "estimated peer-minus-local wall clock offset, ns", l)
	tickOff := reg.Gauge("transport_tick_offset", "estimated peer-minus-local virtual tick offset (lower bound)", l)
	reg.Gauge("transport_wire_version", "P5LT wire header version this endpoint speaks", l).Set(WireVersion)
	reg.AddSampler(func() {
		lat := lm.Latency()
		clockOff.Set(lat.ClockOffsetNS)
		tickOff.Set(lat.TickOffset)
	})
}
