package transport

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// StatusBoard aggregates named transports behind the /health and
// /status endpoints of a telemetry mux. Registration is concurrency-
// safe; the handlers only call Up and Stats, which every transport
// guarantees safe against its owner goroutine.
type StatusBoard struct {
	mu    sync.Mutex
	ts    map[string]LineTransport
	start time.Time
	info  BoardInfo
}

// BoardInfo is the process-identity block of the /status document —
// what a fleet scraper needs to tell instances apart and spot version
// skew before it bites: when the process started, which P5LT wire
// version it speaks, and which observability subsystems are armed.
type BoardInfo struct {
	// Start is the process start time, RFC 3339.
	Start string `json:"start"`
	// UptimeSeconds is seconds since Start, computed per request.
	UptimeSeconds int64 `json:"uptime_seconds"`
	// WireVersion is the P5LT header version this build speaks.
	WireVersion int `json:"wire_version"`
	// FlightArmed reports whether flight recorders are armed.
	FlightArmed bool `json:"flight_armed"`
	// ProfArmed reports whether the runtime profiler harness is armed.
	ProfArmed bool `json:"prof_armed"`
	// LatencyTracing reports whether wire-level latency tracing is
	// active (true whenever a socket transport carries the line — the
	// v2 header always stamps ticks and sampled wall clocks).
	LatencyTracing bool `json:"latency_tracing"`
}

// NewStatusBoard returns an empty board stamped with the current time
// as process start.
func NewStatusBoard() *StatusBoard {
	return &StatusBoard{
		ts:    make(map[string]LineTransport),
		start: time.Now(),
		info:  BoardInfo{WireVersion: WireVersion},
	}
}

// Add registers t under name (replacing any previous holder).
func (b *StatusBoard) Add(name string, t LineTransport) {
	b.mu.Lock()
	b.ts[name] = t
	b.mu.Unlock()
}

// SetInfo records which observability subsystems the process armed
// (shown under /status "info"). Start, uptime and wire version are
// filled by the board itself.
func (b *StatusBoard) SetInfo(flightArmed, profArmed, latencyTracing bool) {
	b.mu.Lock()
	b.info.FlightArmed = flightArmed
	b.info.ProfArmed = profArmed
	b.info.LatencyTracing = latencyTracing
	b.mu.Unlock()
}

// snapshot returns the registered transports in name order.
func (b *StatusBoard) snapshot() []struct {
	name string
	t    LineTransport
} {
	b.mu.Lock()
	out := make([]struct {
		name string
		t    LineTransport
	}, 0, len(b.ts))
	for n, t := range b.ts {
		out = append(out, struct {
			name string
			t    LineTransport
		}{n, t})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// TransportStatus is one transport's entry in the /status document.
type TransportStatus struct {
	Name  string `json:"name"`
	Up    bool   `json:"up"`
	Stats Stats  `json:"stats"`
	// Latency is the transport's latency snapshot when it measures one
	// (socket transports; absent for pipes).
	Latency *Latency `json:"latency,omitempty"`
}

// StatusDoc is the /status response body.
type StatusDoc struct {
	Healthy    bool              `json:"healthy"`
	Info       BoardInfo         `json:"info"`
	Transports []TransportStatus `json:"transports"`
}

// Status assembles the current status document.
func (b *StatusBoard) Status() StatusDoc {
	b.mu.Lock()
	info := b.info
	start := b.start
	b.mu.Unlock()
	info.Start = start.UTC().Format(time.RFC3339)
	info.UptimeSeconds = int64(time.Since(start) / time.Second)

	doc := StatusDoc{Healthy: true, Info: info}
	for _, e := range b.snapshot() {
		up := e.t.Up()
		if !up {
			doc.Healthy = false
		}
		ts := TransportStatus{
			Name:  e.name,
			Up:    up,
			Stats: e.t.Stats(),
		}
		if lm, ok := e.t.(LatencyMeter); ok {
			if oneWay, _, _ := lm.LatencyHist(); oneWay != nil {
				lat := lm.Latency()
				ts.Latency = &lat
			}
		}
		doc.Transports = append(doc.Transports, ts)
	}
	return doc
}

// Mount wires /health (200 when every transport is up, 503 otherwise)
// and /status (the JSON document) onto mux.
func (b *StatusBoard) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		doc := b.Status()
		w.Header().Set("Content-Type", "application/json")
		if !doc.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]bool{"healthy": doc.Healthy})
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(b.Status())
	})
}
